package rustprobe

import (
	"math/rand"
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/dfree"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/interiormut"
	"rustprobe/internal/detect/lockorder"
	"rustprobe/internal/detect/race"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/detect/uninit"
	"rustprobe/internal/interp"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

// soupWords is a vocabulary of lexically valid fragments likely to build
// deep, weird-but-parseable programs.
var soupWords = []string{
	"fn", "f", "g", "(", ")", "{", "}", "let", "mut", "x", "y", "=", "1",
	";", "match", "if", "else", "unsafe", "impl", "struct", "S", "enum",
	"E", "&", "*", "->", "::", ".", ",", "<", ">", "[", "]", "loop",
	"while", "for", "in", "return", "break", "continue", "|", "move",
	"self", "Some", "None", "Ok", "Err", "=>", "_", "'a", "#", "+", "-",
	"lock", "unwrap", "drop", "Vec", "new", "Mutex", "Arc", "as",
	"*mut", "u8", "i32", "vec", "!", "..", "?", "trait", "pub", "static",
	"const", "use", "mod", "0..10", "true", "false", `"s"`,
}

func soup(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	n := 1 + r.Intn(120)
	for i := 0; i < n; i++ {
		b.WriteString(soupWords[r.Intn(len(soupWords))])
		b.WriteByte(' ')
	}
	return b.String()
}

// TestPipelineNeverPanics pushes random token soup through the whole
// pipeline — parse, resolve, lower, every static detector, and the
// dynamic explorer. Diagnostics are fine; panics are not.
func TestPipelineNeverPanics(t *testing.T) {
	detectors := []detect.Detector{
		uaf.New(), doublelock.New(), lockorder.New(), blocking.New(),
		dfree.New(), uninit.New(), interiormut.New(), race.New(),
	}
	for seed := int64(0); seed < 400; seed++ {
		src := soup(seed)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v\nsource: %s", seed, r, src)
				}
			}()
			fset := source.NewFileSet()
			f := fset.Add("soup.rs", src)
			diags := source.NewDiagnostics(fset)
			crate := parser.ParseFile(f, diags)
			prog := resolve.Crates(fset, diags, crate)
			bodies := lower.Program(prog, diags)
			ctx := detect.NewContext(prog, bodies)
			for _, d := range detectors {
				d.Run(ctx)
			}
			interp.RunAll(bodies, interp.Config{MaxSteps: 512, MaxPaths: 16})
		}()
	}
}

// TestPipelineNeverPanicsOnMutatedCorpus mutates real corpus files by
// deleting random byte ranges — realistic partial programs.
func TestPipelineNeverPanicsOnMutatedCorpus(t *testing.T) {
	res, err := AnalyzeCorpus("patterns")
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	files := corpusContents(t)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		base := files[r.Intn(len(files))]
		if len(base) < 10 {
			continue
		}
		lo := r.Intn(len(base) - 1)
		hi := lo + r.Intn(len(base)-lo)
		mutated := base[:lo] + base[hi:]
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("trial %d panicked: %v\nsource:\n%s", trial, rec, mutated)
				}
			}()
			fset := source.NewFileSet()
			f := fset.Add("mut.rs", mutated)
			diags := source.NewDiagnostics(fset)
			crate := parser.ParseFile(f, diags)
			prog := resolve.Crates(fset, diags, crate)
			bodies := lower.Program(prog, diags)
			ctx := detect.NewContext(prog, bodies)
			uaf.New().Run(ctx)
			doublelock.New().Run(ctx)
			race.New().Run(ctx)
		}()
	}
}

func corpusContents(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, g := range []string{"patterns", "detector-eval", "unsafe"} {
		res, err := AnalyzeCorpus(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Fset.Files() {
			out = append(out, f.Content)
		}
	}
	return out
}

// FuzzPipeline is the native-fuzzing entry point behind the CI smoke
// step (go test -run=^$ -fuzz=FuzzPipeline -fuzztime=30s .): seeded with
// the deterministic token soup above plus lock-heavy hand seeds, it
// pushes arbitrary inputs through parse → resolve → lower → every static
// detector, so detector panics (like the nil-body points-to crash) are
// caught before merge.
func FuzzPipeline(f *testing.F) {
	for seed := int64(0); seed < 40; seed++ {
		f.Add(soup(seed))
	}
	f.Add(`
struct S { m: Mutex<i32> }
impl S {
    fn a(&self) { let g = self.m.lock().unwrap(); self.b(); }
    fn b(&self) { self.a(); }
}
`)
	f.Add("fn f(mu: Mutex<i32>) { let g = mu.lock().unwrap(); let h = mu.lock().unwrap(); }")
	f.Add(`
struct T { n: u64 }
fn r(s: Arc<T>) {
    let h = Arc::clone(&s);
    thread::spawn(move || { h.n += 1; });
    s.n += 1;
}
`)
	f.Add("fn s() { thread::spawn(move || { thread::spawn(move || { x += 1; }); }); }")
	f.Add("fn c() { let (tx, rx) = mpsc::channel(); drop(tx); let v = rx.recv().unwrap(); }")
	f.Add(`
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn w(&self) { let g = self.ready.lock().unwrap(); let h = self.cv.wait(g); }
    fn n(&self) { self.cv.notify_all(); }
}
fn o(once: Once) { once.call_once(|| { o(once); }); }
`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		fset := source.NewFileSet()
		file := fset.Add("fuzz.rs", src)
		diags := source.NewDiagnostics(fset)
		crate := parser.ParseFile(file, diags)
		prog := resolve.Crates(fset, diags, crate)
		bodies := lower.Program(prog, diags)
		ctx := detect.NewContext(prog, bodies)
		for _, d := range []detect.Detector{
			uaf.New(), doublelock.New(), lockorder.New(), blocking.New(),
			dfree.New(), uninit.New(), interiormut.New(), race.New(),
		} {
			d.Run(ctx)
		}
		// Unknown-function points-to must return empty, never panic.
		ctx.PointsTo("no_such_function")
	})
}
