package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rustprobe"
	"rustprobe/internal/engine"
)

// figure5Src is the paper's Figure 5 shape: a pointer obtained from an
// owned buffer, the owner dropped, the stale pointer dereferenced.
const figure5Src = `fn grow(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
`

func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 5 * time.Second}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func postAnalyze(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestAnalyzeEndpointGolden(t *testing.T) {
	srv, _ := newTestServer(t)

	reqBody, err := json.Marshal(engine.Request{Files: map[string]string{"fig5.rs": figure5Src}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postAnalyze(t, srv.URL, string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}

	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON response: %v\n%s", err, body)
	}
	// elapsed_ms varies run to run; golden-check everything else.
	delete(got, "elapsed_ms")
	want := map[string]any{
		"findings": []any{
			map[string]any{
				"kind":     "use-after-free",
				"severity": "error",
				"function": "grow",
				"file":     "fig5.rs",
				"line":     float64(4),
				"column":   float64(14),
				"message":  "pointer _3(p) may dereference storage of _1(v) after it is dead",
				"notes":    []any{"_1(v)'s storage ends before this use"},
			},
		},
		"unsafe": map[string]any{
			"regions": float64(1),
			"fns":     float64(0),
			"traits":  float64(0),
			"total":   float64(1),
		},
		"cache_hit": false,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("analyze payload diverged from golden\n got: %#v\nwant: %#v", got, want)
	}

	// Resubmission of identical sources is served from the cache.
	resp2, body2 := postAnalyze(t, srv.URL, string(reqBody))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	var second analyzeResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical POST was not a cache hit")
	}
	if len(second.Findings) != 1 || second.Findings[0].Kind != "use-after-free" {
		t.Errorf("cached findings = %+v", second.Findings)
	}
}

func TestAnalyzeEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},                                       // malformed JSON
		{`{}`, http.StatusBadRequest},                                      // no input
		{`{"corpus": "nope"}`, http.StatusBadRequest},                      // unknown group
		{`{"files": {"x.rs": "fn f() {}"}, "detectors": ["zap"]}`, http.StatusBadRequest},
		{`{"files": {"bad.rs": "fn broken( {"}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := postAnalyze(t, srv.URL, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("POST %s: status = %d, want %d (%s)", c.body, resp.StatusCode, c.status, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error payload = %s", c.body, body)
		}
		if c.status == http.StatusUnprocessableEntity && !strings.Contains(e.Diagnostics, "bad.rs") {
			t.Errorf("syntax-error response missing diagnostics: %s", body)
		}
	}

	if resp, _ := http.Get(srv.URL + "/v1/analyze"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status = %d", resp.StatusCode)
	}
}

func TestDetectorsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/detectors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got["detectors"], rustprobe.DetectorNames()) {
		t.Errorf("detectors = %v, want %v", got["detectors"], rustprobe.DetectorNames())
	}
}

func TestHealthzAndStatsEndpoints(t *testing.T) {
	srv, eng := newTestServer(t)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	// Drive one analysis through HTTP, then check the counters line up.
	reqBody, _ := json.Marshal(engine.Request{Files: map[string]string{"fig5.rs": figure5Src}})
	if resp, body := postAnalyze(t, srv.URL, string(reqBody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}

	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats engine.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.JobsSubmitted != 1 || stats.JobsCompleted != 1 || stats.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 submitted/completed/miss", stats)
	}
	if stats.Workers != 2 || stats.CacheCapacity != 256 {
		t.Errorf("config stats = %+v", stats)
	}
	if want := eng.Stats(); want.JobsCompleted != stats.JobsCompleted {
		t.Errorf("HTTP stats diverge from engine snapshot: %+v vs %+v", stats, want)
	}
}
