package main

// HTTP-level robustness tests: the daemon's behaviour when the engine
// underneath is saturated (503), panicking (500), past its deadline
// (504), or handed identical concurrent work (singleflight). These sit
// on httptest servers with small, deliberately constrained engines and
// drive the failure paths through the real handler stack.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rustprobe/internal/engine"
)

// waitForStat polls an engine-stats condition; the deadline is generous
// because CI machines stall, but every wait in practice is microseconds.
func waitForStat(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// analyzeBody builds a /v1/analyze payload over a single file.
func analyzeBody(t *testing.T, name, src string) string {
	t.Helper()
	b, err := json.Marshal(engine.Request{Files: map[string]string{name: src}})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServerQueueFull503(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }

	eng := engine.New(engine.Config{
		Workers:     1,
		QueueDepth:  1,
		QueueReject: true,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			if _, slow := req.Files["slow.rs"]; slow {
				select {
				case <-gate:
				case <-ctx.Done():
				}
			}
		},
	})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second}))
	defer srv.Close()
	defer eng.Close()
	defer release() // LIFO: unblock the worker before Close drains it

	var wg sync.WaitGroup
	slowPost := func(i int) {
		defer wg.Done()
		body := analyzeBody(t, "slow.rs", fmt.Sprintf("fn f_%d() {}\n", i))
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Errorf("slow post %d: %v", i, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Fill the single worker, then the single queue slot — staggered so
	// the worker's queue pop cannot race the depth we are counting on.
	wg.Add(1)
	go slowPost(0)
	waitForStat(t, "first job on the worker", func() bool { return eng.Stats().JobsInFlight == 1 })
	wg.Add(1)
	go slowPost(1)
	waitForStat(t, "second job queued", func() bool { return eng.Stats().QueueDepth == 1 })

	// The next distinct request must be rejected immediately, not block.
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		strings.NewReader(analyzeBody(t, "slow.rs", "fn f_reject() {}\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("queue-full rejection took %s, want fast-fail", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "queue is full") {
		t.Errorf("error payload = %+v (%v)", e, err)
	}
	if got := eng.Stats().QueueRejected; got != 1 {
		t.Errorf("QueueRejected = %d, want 1", got)
	}

	release()
	wg.Wait()
}

func TestServerDetectorPanic500(t *testing.T) {
	eng := engine.New(engine.Config{
		Workers: 2,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			if _, boom := req.Files["boom.rs"]; boom {
				panic("injected detector panic")
			}
		},
	})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second}))
	defer srv.Close()
	defer eng.Close()

	// Quiet the panic's server-side stack log for the duration.
	var logBuf bytes.Buffer
	log.SetOutput(&logBuf)
	defer log.SetOutput(os.Stderr)

	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		strings.NewReader(analyzeBody(t, "boom.rs", "fn f() {}\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "panicked") {
		t.Errorf("error payload = %+v", e)
	}
	// The stack trace stays server-side: logged, never in the response.
	if !strings.Contains(logBuf.String(), "injected detector panic") {
		t.Errorf("panic not logged server-side: %q", logBuf.String())
	}
	if strings.Contains(e.Error, "injected detector panic") {
		t.Errorf("panic detail leaked to the client: %+v", e)
	}

	// The pool survived: /metrics records the panic and the very next
	// request is served normally by the same workers.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), "rustprobed_panics_total 1") {
		t.Errorf("metrics missing panic count:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "rustprobed_workers 2") {
		t.Errorf("metrics missing worker gauge:\n%s", metrics)
	}

	ok, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		strings.NewReader(analyzeBody(t, "fine.rs", "fn g() {}\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(ok.Body)
		t.Fatalf("post-panic request status = %d: %s", ok.StatusCode, body)
	}
	if st := eng.Stats(); st.Panics != 1 || st.JobsCompleted != 1 || st.JobsInFlight != 0 {
		t.Errorf("stats after panic = %+v", st)
	}
}

func TestServerTimeout504CancelsWork(t *testing.T) {
	cancelled := make(chan struct{}, 1)
	eng := engine.New(engine.Config{
		Workers: 1,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			if _, slow := req.Files["slow.rs"]; slow {
				<-ctx.Done() // hold the worker until the request deadline fires
				cancelled <- struct{}{}
			}
		},
	})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 100 * time.Millisecond}))
	defer srv.Close()
	defer eng.Close()

	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		strings.NewReader(analyzeBody(t, "slow.rs", "fn f() {}\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "timed out") {
		t.Errorf("error payload = %+v (%v)", e, err)
	}
	// The deadline propagated into the analysis: the in-flight work saw
	// ctx.Done, not just the HTTP layer.
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("analysis never observed the cancellation")
	}
	waitForStat(t, "worker freed after timeout", func() bool {
		s := eng.Stats()
		return s.JobsCanceled == 1 && s.JobsInFlight == 0
	})

	// The freed worker serves the next request.
	ok, err := http.Post(srv.URL+"/v1/analyze", "application/json",
		strings.NewReader(analyzeBody(t, "fine.rs", "fn g() {}\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout request status = %d", ok.StatusCode)
	}
}

func TestServerSingleflight16Identical(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }

	eng := engine.New(engine.Config{
		Workers: 4,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			select {
			case <-gate:
			case <-ctx.Done():
			}
		},
	})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second}))
	defer srv.Close()
	defer eng.Close()
	defer release()

	const clients = 16
	body := analyzeBody(t, "shared.rs", "fn shared() -> i32 { 7 }\n")
	statuses := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				statuses <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Hold the one leader at the gate until all 15 followers have
	// coalesced onto its flight; only then let the analysis finish.
	waitForStat(t, "15 followers deduped", func() bool { return eng.Stats().DedupHits == clients-1 })
	release()
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK {
			t.Errorf("status = %d, want 200", st)
		}
	}
	if st := eng.Stats(); st.JobsCompleted != 1 {
		t.Errorf("JobsCompleted = %d, want exactly 1 analysis for %d identical requests (stats %+v)",
			st.JobsCompleted, clients, st)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	// Run one real analysis so per-detector series exist.
	if resp, body := postAnalyze(t, srv.URL, analyzeBody(t, "fig5.rs", figure5Src)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, series := range []string{
		"rustprobed_jobs_submitted_total 1",
		"rustprobed_jobs_completed_total 1",
		"rustprobed_panics_total 0",
		"rustprobed_queue_rejected_total 0",
		"rustprobed_dedup_hits_total 0",
		"rustprobed_queue_depth 0",
		"rustprobed_workers 2",
		"rustprobed_cache_misses_total 1",
		"# TYPE rustprobed_jobs_submitted_total counter",
		"# TYPE rustprobed_queue_depth gauge",
		"# HELP rustprobed_panics_total",
		`rustprobed_detector_wall_ms_total{detector="use-after-free"}`,
		`rustprobed_detector_wall_ms_total{detector="blocking"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q:\n%s", series, text)
		}
	}
	if resp, _ := http.Post(srv.URL+"/metrics", "text/plain", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d", resp.StatusCode)
	}
}

func TestServerPprofFlag(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()

	on := httptest.NewServer(newServer(eng, serverOptions{pprof: true}))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status = %d, want 200", resp.StatusCode)
	}

	off := httptest.NewServer(newServer(eng, serverOptions{}))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}
}

func TestServerRequestIDHeader(t *testing.T) {
	srv, _ := newTestServer(t)
	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("missing X-Request-ID header")
		}
		if ids[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		ids[id] = true
	}
}

func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)

	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, make(chan int)) // channels are not JSON-encodable
	if !strings.Contains(buf.String(), "encode failed") {
		t.Errorf("encode failure not logged: %q", buf.String())
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d (header was already committed before the body failed)", rec.Code)
	}
}
