// Command rustprobed serves the rustprobe analysis pipeline as a
// long-running HTTP JSON daemon backed by the concurrent engine
// (bounded worker pool + per-detector parallelism + content-hash LRU
// result cache).
//
// Endpoints:
//
//	POST /v1/analyze        {"files": {"lib.rs": "..."}} or {"corpus": "patterns"},
//	                        optional {"detectors": ["use-after-free", ...]}
//	POST /v1/analyze-batch  {"files": {"a.rs": "...", "b.rs": "..."}}: many named
//	                        files analyzed independently, per-file findings and
//	                        isolated per-file errors
//	POST /v1/sessions/{repo}/push  repo-keyed incremental analysis: push the full
//	                        file map ({"files": ...}) or a body-only diff
//	                        ({"changed": ..., "removed": [...]}) against the live
//	                        session; warm pushes re-run only the dirty callgraph
//	                        closure and replay cached findings
//	GET  /v1/detectors      detector registry
//	GET  /healthz       liveness
//	GET  /stats         engine counters (cache, queue, per-stage latency)
//	GET  /metrics       the same counters in Prometheus text format
//	GET  /debug/pprof/  net/http/pprof (only with -pprof)
//
// The serving layer is hardened for real traffic: a panicking analysis
// pass costs only its own request (500) and never a pool worker, a full
// queue fails fast with 503 + Retry-After (-queue-reject), identical
// in-flight requests are singleflighted into one analysis, and a client
// that times out or disconnects cancels its job instead of burning a
// worker.
//
// With -store-dir the daemon keeps a persistent content-addressed result
// store under the in-memory LRU: results survive restarts, a fresh
// process serves previously-analyzed content from disk (visible as
// rustprobed_store_hits_total in /metrics), and replicas sharing the
// directory share each other's work. Entries are versioned against the
// analyzer + detector set, so upgrading the binary self-invalidates
// stale results, and corrupt or truncated entries are quarantined
// instead of failing startup or serving garbage.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests finish, then the engine drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rustprobe/internal/difftest"
	"rustprobe/internal/engine"
	"rustprobe/internal/sessionpool"
	"rustprobe/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8642", "listen address")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker pool size")
		queue    = flag.Int("queue", 64, "pending-job queue depth")
		cacheCap = flag.Int("cache", 256, "result cache capacity in entries (LRU; negative disables)")
		timeout  = flag.Duration("request-timeout", 30*time.Second, "per-request analysis budget (0 disables)")
		reject   = flag.Bool("queue-reject", true, "fail fast with 503 + Retry-After when the job queue is full (false blocks instead)")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		storeDir = flag.String("store-dir", "", "directory for the persistent content-addressed result store (empty disables; results then live only in the in-memory LRU)")
		selftest   = flag.Bool("selftest", false, "run the differential self-check through the configured engine and exit; non-zero on any violation")
		seeds      = flag.Int64("seeds", 200, "seed count for -selftest")
		precise    = flag.Bool("precise", false, "force the SafeDrop-style path-sensitive precise mode for every request (clients can also opt in per request with \"precise\": true); also applies to -selftest")
		sessions   = flag.Int("sessions", sessionpool.DefaultMaxSessions, "max live incremental analysis sessions for /v1/sessions (LRU-evicted beyond this; 0 disables the endpoint)")
		sessionTTL = flag.Duration("session-ttl", 30*time.Minute, "evict a session idle longer than this (0 disables idle eviction)")
	)
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, engine.StoreVersion())
		if err != nil {
			log.Fatalf("rustprobed: open result store %s: %v", *storeDir, err)
		}
		log.Printf("rustprobed: result store at %s (version %s, %d entries)", *storeDir, engine.StoreVersion(), st.Len())
	}

	eng := engine.New(engine.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheCapacity: *cacheCap,
		QueueReject:   *reject,
		Store:         st,
	})

	if *selftest {
		// Preflight: the generated-corpus cross-check runs through the
		// exact pool/cache configuration the daemon would serve with.
		s := difftest.RunWithEngineMode(0, *seeds, eng, *precise)
		fmt.Print(s.Table())
		eng.Close()
		if v := s.Violations(); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "rustprobed: selftest failed with %d violation(s)\n", len(v))
			os.Exit(2)
		}
		return
	}
	var pool *sessionpool.Pool
	if *sessions > 0 {
		pool = sessionpool.New(sessionpool.Config{
			MaxSessions: *sessions,
			IdleTTL:     *sessionTTL,
			Store:       st,
			Precise:     *precise,
		})
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng, serverOptions{timeout: *timeout, pprof: *pprofOn, precise: *precise, pool: pool}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("rustprobed: listening on %s (workers=%d queue=%d cache=%d timeout=%s queue-reject=%t pprof=%t)",
			*addr, *workers, *queue, *cacheCap, *timeout, *reject, *pprofOn)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			eng.Close()
			log.Fatalf("rustprobed: %v", err)
		}
	case <-ctx.Done():
		log.Printf("rustprobed: signal received, shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rustprobed: shutdown: %v\n", err)
		}
	}
	if pool != nil {
		pool.Close()
	}
	eng.Close()
	log.Printf("rustprobed: stopped")
}
