package main

// Session-service tests: the stateful /v1/sessions/{repo}/push tier.
//
// The correctness spine is TestSessionEquivalenceSweep, a gen-driven
// differential sweep: scripted repo histories (body edits, structural
// edits, file adds/removes, reverts) are pushed through the session
// endpoint — mixing full-map and diff pushes — and after every step the
// session's findings must be byte-identical, file by file, to a
// stateless /v1/analyze-batch of the same tree. The session service may
// replay, restore, and dirty-closure its way through the history, but
// it may never *show* it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"rustprobe/internal/engine"
	"rustprobe/internal/gen"
	"rustprobe/internal/incrstate"
	"rustprobe/internal/sessionpool"
	"rustprobe/internal/store"
)

// Fixture tree: one interprocedural use-after-free file and one
// double-lock file, so body edits in one leave replayable findings in
// the other.
var (
	sessUtilSrc = `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn sess_helper(x: i32) -> i32 {
    x + 1
}
`
	sessLibSrc = `struct Guarded { mu: Mutex<i32> }
impl Guarded {
    fn twice(&self) {
        let a = self.mu.lock().unwrap();
        let b = self.mu.lock().unwrap();
    }
}
`
)

func sessionBaseTree() map[string]string {
	return map[string]string{"util.rs": sessUtilSrc, "lib.rs": sessLibSrc}
}

// newSessionServer mounts the full daemon handler with a session pool
// (and optionally a shared persistent store) on an httptest listener.
func newSessionServer(t *testing.T, st *store.Store) (*httptest.Server, *sessionpool.Pool) {
	t.Helper()
	eng := engine.New(engine.Config{Workers: 2, Store: st})
	pool := sessionpool.New(sessionpool.Config{Store: st})
	srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second, pool: pool}))
	t.Cleanup(func() {
		srv.Close()
		pool.Close()
		eng.Close()
	})
	return srv, pool
}

func postSessionPush(t *testing.T, url, repo, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sessions/"+repo+"/push", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// pushOK sends one push (full map or diff) and decodes the 200 response.
func pushOK(t *testing.T, url, repo string, req sessionPushRequest) sessionPushResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postSessionPush(t, url, repo, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status = %d, body = %s", resp.StatusCode, raw)
	}
	var out sessionPushResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("invalid push response: %v\n%s", err, raw)
	}
	return out
}

// batchOracle analyzes files statelessly through /v1/analyze-batch and
// returns per-file findings in the session wire shape.
func batchOracle(t *testing.T, url string, files map[string]string) map[string][]incrstate.Finding {
	t.Helper()
	reqBody, err := json.Marshal(engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postBatch(t, url, string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle batch status = %d: %s", resp.StatusCode, raw)
	}
	var got batchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]incrstate.Finding, len(files))
	for name, entry := range got.Results {
		if entry.Error != "" {
			t.Fatalf("oracle batch: %s failed: %s", name, entry.Error)
		}
		fs := make([]incrstate.Finding, 0, len(entry.Findings))
		for _, f := range entry.Findings {
			fs = append(fs, incrstate.Finding{
				Kind: f.Kind, Severity: f.Severity, Function: f.Function,
				File: f.File, Line: f.Line, Column: f.Column, Message: f.Message, Notes: f.Notes,
			})
		}
		out[name] = fs
	}
	return out
}

// requireEquivalent byte-compares the session findings, grouped per
// file, against the stateless batch oracle of the same tree. ctx labels
// the failure (seed + step for the sweep).
func requireEquivalent(t *testing.T, url string, files map[string]string, sessionFindings []incrstate.Finding, ctx string) {
	t.Helper()
	oracle := batchOracle(t, url, files)
	byFile := make(map[string][]incrstate.Finding)
	for _, f := range sessionFindings {
		byFile[f.File] = append(byFile[f.File], f)
	}
	for name := range files {
		got, err := json.Marshal(byFile[name])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(oracle[name])
		if err != nil {
			t.Fatal(err)
		}
		if gs, ws := string(got), string(want); gs != ws && !(gs == "null" && ws == "[]") {
			t.Errorf("%s: session findings diverge from stateless batch for %s\n session: %s\n   batch: %s", ctx, name, gs, ws)
		}
	}
	for name := range byFile {
		if _, ok := files[name]; !ok {
			t.Errorf("%s: session reported findings for %s, which is not in the tree", ctx, name)
		}
	}
}

// TestSessionEndpointPushAndDiff is the endpoint's acceptance pin: a
// full push builds the session, and a 1-file body-diff re-push runs
// dirty-closure detection only — incremental, strictly fewer roots than
// functions, with cached findings replayed — while staying equivalent
// to the stateless oracle.
func TestSessionEndpointPushAndDiff(t *testing.T) {
	srv, _ := newSessionServer(t, nil)
	tree := sessionBaseTree()

	res := pushOK(t, srv.URL, "org/base", sessionPushRequest{Files: tree})
	if !res.Stats.Full || res.Stats.SessionHit {
		t.Fatalf("first push stats: %+v", res.Stats)
	}
	requireEquivalent(t, srv.URL, tree, res.Findings, "full push")

	// 1-file body edit via diff push: only the dirty closure re-detects.
	edited := strings.Replace(sessUtilSrc, "x + 1", "x + 41", 1)
	tree["util.rs"] = edited
	res = pushOK(t, srv.URL, "org/base", sessionPushRequest{Changed: map[string]string{"util.rs": edited}})
	if res.Stats.Full || !res.Stats.SessionHit {
		t.Fatalf("diff push stats: %+v", res.Stats)
	}
	if res.Stats.ChangedFns != 1 {
		t.Fatalf("1-file body edit changed %d functions, want 1: %+v", res.Stats.ChangedFns, res.Stats)
	}
	if res.Stats.RootsDetected == 0 || res.Stats.RootsDetected >= res.Stats.FuncsTotal {
		t.Fatalf("diff push did not run dirty-closure-only detection: %+v", res.Stats)
	}
	if res.Stats.FindingsReused == 0 {
		t.Fatalf("diff push replayed no cached findings: %+v", res.Stats)
	}
	requireEquivalent(t, srv.URL, tree, res.Findings, "diff push")

	// Diff removal: structural, still equivalent.
	delete(tree, "lib.rs")
	res = pushOK(t, srv.URL, "org/base", sessionPushRequest{Removed: []string{"lib.rs"}})
	requireEquivalent(t, srv.URL, tree, res.Findings, "removal push")

	// URL-escaped repo names route to their own sessions.
	res = pushOK(t, srv.URL, "org%2Fother", sessionPushRequest{Files: sessionBaseTree()})
	if res.Stats.SessionHit {
		t.Fatal("escaped repo name aliased an existing session")
	}
}

// TestSessionEndpointErrors covers the request-level failure mapping.
func TestSessionEndpointErrors(t *testing.T) {
	srv, _ := newSessionServer(t, nil)

	if resp, err := http.Get(srv.URL + "/v1/sessions/x/push"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET session push: %v %d", err, resp.StatusCode)
	}
	for _, path := range []string{"/v1/sessions/", "/v1/sessions/norepo"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(`{"files":{"a.rs":"fn a() {}"}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("POST %s status = %d, want 404", path, resp.StatusCode)
		}
	}

	badBodies := []string{
		`{`,                  // malformed JSON
		`{}`,                 // neither form
		`{"files": {}}`,      // full push with no files
		`{"bogus": 1}`,       // unknown field
		`{"files": {"a.rs": "fn a() {}"}, "changed": {"b.rs": "fn b() {}"}}`, // both forms
	}
	for _, body := range badBodies {
		resp, raw := postSessionPush(t, srv.URL, "r", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status = %d, want 400 (%s)", body, resp.StatusCode, raw)
		}
	}

	// Diff push with no live session: 409, client should re-push in full.
	resp, raw := postSessionPush(t, srv.URL, "never-seen", `{"changed": {"a.rs": "fn a() {}"}}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("diff without session: status = %d (%s)", resp.StatusCode, raw)
	}

	// Syntax errors: 422 with diagnostics, and the session survives.
	pushOK(t, srv.URL, "r2", sessionPushRequest{Files: sessionBaseTree()})
	resp, raw = postSessionPush(t, srv.URL, "r2", `{"changed": {"util.rs": "fn broken( {"}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken push status = %d (%s)", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Diagnostics, "util.rs") {
		t.Errorf("broken push diagnostics = %s", raw)
	}
	// The failed push did not poison the session: the diff base is still
	// the last good tree, so a follow-up body diff stays incremental.
	res := pushOK(t, srv.URL, "r2", sessionPushRequest{Changed: map[string]string{"util.rs": strings.Replace(sessUtilSrc, "x + 1", "x + 5", 1)}})
	if res.Stats.Full {
		t.Fatalf("session lost its state after a rejected push: %+v", res.Stats)
	}
}

// TestSessionStatsAndMetrics: pool counters surface under the stats
// "sessions" key and as rustprobed_session_* series; a daemon without
// the session service exposes neither.
func TestSessionStatsAndMetrics(t *testing.T) {
	srv, _ := newSessionServer(t, nil)
	pushOK(t, srv.URL, "m", sessionPushRequest{Files: sessionBaseTree()})
	edited := strings.Replace(sessUtilSrc, "x + 1", "x + 7", 1)
	pushOK(t, srv.URL, "m", sessionPushRequest{Changed: map[string]string{"util.rs": edited}})

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sessions == nil {
		t.Fatal("/stats is missing the sessions block")
	}
	if st.Sessions.Pushes != 2 || st.Sessions.Hits != 1 || st.Sessions.Misses != 1 || st.Sessions.Live != 1 {
		t.Fatalf("session stats: %+v", st.Sessions)
	}
	if st.Sessions.FullRounds != 1 || st.Sessions.IncrementalRounds != 1 || st.Sessions.FindingsReplayed == 0 {
		t.Fatalf("session round stats: %+v", st.Sessions)
	}

	if v := scrapeMetric(t, srv.URL, "rustprobed_session_pushes_total"); v != 2 {
		t.Errorf("rustprobed_session_pushes_total = %v, want 2", v)
	}
	if v := scrapeMetric(t, srv.URL, "rustprobed_session_incremental_rounds_total"); v != 1 {
		t.Errorf("rustprobed_session_incremental_rounds_total = %v, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, "rustprobed_sessions_live"); v != 1 {
		t.Errorf("rustprobed_sessions_live = %v, want 1", v)
	}
	if v := scrapeMetric(t, srv.URL, "rustprobed_session_findings_replayed_total"); v == 0 {
		t.Error("rustprobed_session_findings_replayed_total = 0 after an incremental round")
	}

	// Pool-less daemon: no session route, no session series.
	bare, _ := newTestServer(t)
	if resp, err := http.Post(bare.URL+"/v1/sessions/x/push", "application/json", strings.NewReader(`{"files":{"a.rs":"fn a() {}"}}`)); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("pool-less session push: %v %d, want 404", err, resp.StatusCode)
	}
	mresp, err := http.Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if strings.Contains(buf.String(), "rustprobed_session") {
		t.Error("pool-less daemon exposes session metrics")
	}
}

// --- the gen-driven equivalence sweep ---

// topLevelName matches every declared top-level-ish identifier (fns,
// structs, impl targets) in a generated program. The sweep combines
// several generated programs into one tree, and the session analyzes
// that tree as a single program while the batch oracle analyzes each
// file alone — so programs sharing a struct or function name would
// legitimately diverge (cross-file resolution, global lock-order
// aliasing). Disjoint names make the two views semantically identical,
// which is exactly the property the sweep verifies.
var topLevelName = regexp.MustCompile(`(?m)^\s*(?:(?:pub|unsafe|async|const)\s+)*(?:fn|struct|trait|enum|impl)\s+([A-Za-z_][A-Za-z0-9_]*)`)

// sweepProgram is one admitted program: the generated variant and its
// buggy/clean twin, used as the "body edit" mutation.
type sweepProgram struct {
	main, twin *gen.Program
}

func (p sweepProgram) src(alt bool) string {
	s := p.main.Source
	if alt {
		s = p.twin.Source
	}
	// Strip the generated-header comment: it names the variant, so with
	// it in place a variant toggle would differ outside function bodies
	// and force a full round. Without it, toggling a body-stable twin is
	// a body-only edit the session analyzes incrementally — the rounds
	// the sweep's fact-reuse and graph-patch assertions exercise.
	if i := strings.Index(s, "\n"); i >= 0 && strings.HasPrefix(s, "// generated:") {
		s = s[i+1:]
	}
	return s
}

// disjointPrograms admits up to n generated programs whose declared
// names (across both variants) are pairwise disjoint.
func disjointPrograms(seed int64, n int) []sweepProgram {
	taken := map[string]bool{}
	var out []sweepProgram
	for sub := int64(0); sub < 400 && len(out) < n; sub++ {
		main := gen.Generate(seed*1000 + sub)
		twin := gen.New(main.Seed, main.Kind, !main.Buggy)
		names := topLevelName.FindAllStringSubmatch(main.Source+"\n"+twin.Source, -1)
		ok := true
		for _, m := range names {
			if taken[m[1]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, m := range names {
			taken[m[1]] = true
		}
		out = append(out, sweepProgram{main: main, twin: twin})
	}
	return out
}

// sweepFile is one tree entry's state: which pool program it holds,
// which variant, and any structural suffix appended by an "extend"
// mutation.
type sweepFile struct {
	prog   int
	alt    bool
	suffix string
}

func sweepSeedCount(t *testing.T) int {
	if s := os.Getenv("RUSTPROBED_SWEEP_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("RUSTPROBED_SWEEP_SEEDS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 40
}

// TestSessionEquivalenceSweep drives scripted mutation sequences — body
// edits (buggy/clean variant toggles), structural edits (appended
// functions), file adds and removes, and reverts to earlier snapshots —
// through /v1/sessions, mixing full-map and diff pushes, and demands
// byte-identical per-file findings against /v1/analyze-batch at every
// step. Any discrepancy reports its seed, step, and mutation op.
func TestSessionEquivalenceSweep(t *testing.T) {
	// Every incremental round cross-checks the patched call graph against
	// a from-scratch rebuild (fingerprint mismatch panics the round), so
	// the sweep's byte-identity bar also anchors the graph-patching layer.
	t.Setenv("RUSTPROBE_GRAPH_CHECK", "1")
	seeds := sweepSeedCount(t)
	srv, _ := newSessionServer(t, nil)

	var steps, diffPushes, incrementalRounds, factsReused int
	for seed := 0; seed < seeds; seed++ {
		s, d, incr, reused := runMutationScript(t, srv.URL, int64(seed))
		steps += s
		diffPushes += d
		incrementalRounds += incr
		factsReused += reused
		if t.Failed() {
			t.Fatalf("equivalence sweep aborted at seed %d", seed)
		}
	}
	// The sweep must actually exercise the incremental machinery, not
	// degenerate into all-full rounds.
	if diffPushes == 0 || incrementalRounds == 0 {
		t.Fatalf("sweep was degenerate: %d steps, %d diff pushes, %d incremental rounds", steps, diffPushes, incrementalRounds)
	}
	// And the incremental rounds must actually reuse global-detector
	// facts — a sweep where every round re-extracts everything would pass
	// the byte-identity bar while proving nothing about the caches.
	if factsReused == 0 {
		t.Fatalf("no global-detector facts reused across %d incremental rounds", incrementalRounds)
	}
	t.Logf("sweep: %d seeds, %d steps, %d diff pushes, %d incremental rounds, %d global facts reused — zero discrepancies", seeds, steps, diffPushes, incrementalRounds, factsReused)
}

// runMutationScript plays one seed's scripted history against its own
// session, returning (steps, diff pushes, incremental rounds, global
// facts reused on incremental rounds).
func runMutationScript(t *testing.T, url string, seed int64) (int, int, int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := disjointPrograms(seed, 5)
	if len(pool) < 3 {
		t.Fatalf("seed %d: only %d disjoint programs found", seed, len(pool))
	}

	tree := map[string]*sweepFile{
		"m0.rs": {prog: 0},
		"m1.rs": {prog: 1},
	}
	render := func() map[string]string {
		files := make(map[string]string, len(tree))
		for path, f := range tree {
			files[path] = pool[f.prog].src(f.alt) + f.suffix
		}
		return files
	}
	snapshot := func() map[string]*sweepFile {
		cp := make(map[string]*sweepFile, len(tree))
		for k, v := range tree {
			c := *v
			cp[k] = &c
		}
		return cp
	}
	// Deterministic random path choice (map iteration order is not).
	pickPath := func() string {
		paths := make([]string, 0, len(tree))
		for p := range tree {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		return paths[rng.Intn(len(paths))]
	}

	repo := fmt.Sprintf("sweep/%d", seed)
	prev := render()
	res := pushOK(t, url, repo, sessionPushRequest{Files: prev})
	requireEquivalent(t, url, prev, res.Findings, fmt.Sprintf("seed %d step 0 (initial full push)", seed))

	snapshots := []map[string]*sweepFile{snapshot()}
	steps, diffPushes, incremental, factsReused := 1, 0, 0, 0
	for step := 1; step <= 6 && !t.Failed(); step++ {
		op := ""
		switch rng.Intn(5) {
		case 0: // body edit: toggle the buggy/clean twin
			p := pickPath()
			tree[p].alt = !tree[p].alt
			op = "body-toggle " + p
		case 1: // structural edit: append a fresh function
			p := pickPath()
			tree[p].suffix += fmt.Sprintf("\nfn sweep_extra_%d_%d(x: i32) -> i32 { x + %d }\n", seed, step, step)
			op = "extend " + p
		case 2: // add an unused pool program as a new file
			added := false
			for i := range pool {
				path := fmt.Sprintf("m%d.rs", i)
				if _, ok := tree[path]; !ok {
					tree[path] = &sweepFile{prog: i}
					op = "add " + path
					added = true
					break
				}
			}
			if !added {
				p := pickPath()
				tree[p].alt = !tree[p].alt
				op = "body-toggle(full-pool) " + p
			}
		case 3: // remove a file, keeping the tree non-empty
			if len(tree) > 1 {
				p := pickPath()
				delete(tree, p)
				op = "remove " + p
			} else {
				tree["m2.rs"] = &sweepFile{prog: 2}
				op = "add(min-tree) m2.rs"
			}
		case 4: // revert to an earlier snapshot (copied, so later ops don't mutate history)
			saved := snapshots[rng.Intn(len(snapshots))]
			tree = make(map[string]*sweepFile, len(saved))
			for k, v := range saved {
				c := *v
				tree[k] = &c
			}
			op = "revert"
		}

		files := render()
		changed := map[string]string{}
		var removed []string
		for path, src := range files {
			if prev[path] != src {
				changed[path] = src
			}
		}
		for path := range prev {
			if _, ok := files[path]; !ok {
				removed = append(removed, path)
			}
		}
		sort.Strings(removed)

		var res sessionPushResponse
		if rng.Intn(2) == 0 || len(changed)+len(removed) == 0 {
			// Full push (also the only wire shape for a no-op step, e.g. a
			// revert back to the current tree — which exercises pure replay).
			res = pushOK(t, url, repo, sessionPushRequest{Files: files})
			op += " [full push]"
		} else {
			res = pushOK(t, url, repo, sessionPushRequest{Changed: changed, Removed: removed})
			diffPushes++
			op += " [diff push]"
		}
		if !res.Stats.Full {
			incremental++
			// Incremental rounds that re-analyzed anything patch the
			// previous round's call graph instead of rebuilding; the stats
			// must say so. (Pure-replay rounds — no changed functions —
			// never reach the detectors or the graph.)
			if res.Stats.ChangedFns > 0 && !res.Stats.GraphPatched {
				t.Errorf("seed %d step %d (%s): incremental round did not patch the call graph", seed, step, op)
			}
			factsReused += res.Stats.GlobalFactsReused
		}
		t.Logf("seed %d step %d: %s stats=%+v", seed, step, op, res.Stats)
		requireEquivalent(t, url, files, res.Findings, fmt.Sprintf("seed %d step %d (%s)", seed, step, op))
		prev = files
		snapshots = append(snapshots, snapshot())
		steps++
	}
	return steps, diffPushes, incremental, factsReused
}

// --- restart persistence ---

// TestSessionRestartPersistence: with -store-dir, session state
// survives daemon restarts. A second daemon epoch sharing the store
// directory restores the repo's session from disk, so a 1-file body
// diff after restart runs only the dirty closure — pinned through
// /metrics (one restore, zero full rounds, replayed findings) and the
// round stats. Corrupt or version-stale snapshots degrade to a clean
// full round instead.
func TestSessionRestartPersistence(t *testing.T) {
	openStore := func(dir string) *store.Store {
		st, err := store.Open(dir, engine.StoreVersion())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// One daemon epoch: engine + pool + server over the shared store.
	epoch := func(dir string) (*httptest.Server, func()) {
		st := openStore(dir)
		eng := engine.New(engine.Config{Workers: 2, Store: st})
		pool := sessionpool.New(sessionpool.Config{Store: st})
		srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second, pool: pool}))
		return srv, func() {
			srv.Close()
			pool.Close()
			eng.Close()
		}
	}

	t.Run("warm restart runs dirty closure only", func(t *testing.T) {
		dir := t.TempDir()
		srv1, close1 := epoch(dir)
		res := pushOK(t, srv1.URL, "persist/repo", sessionPushRequest{Files: sessionBaseTree()})
		if !res.Stats.Full {
			t.Fatalf("cold push stats: %+v", res.Stats)
		}
		close1()

		srv2, close2 := epoch(dir)
		defer close2()
		tree := sessionBaseTree()
		tree["util.rs"] = strings.Replace(sessUtilSrc, "x + 1", "x + 99", 1)
		res = pushOK(t, srv2.URL, "persist/repo", sessionPushRequest{Files: tree})
		if res.Stats.Full || !res.Stats.Restored || res.Stats.SessionHit {
			t.Fatalf("post-restart push stats: %+v", res.Stats)
		}
		if res.Stats.ChangedFns != 1 || res.Stats.RootsDetected >= res.Stats.FuncsTotal || res.Stats.FindingsReused == 0 {
			t.Fatalf("post-restart push not dirty-closure-only: %+v", res.Stats)
		}
		requireEquivalent(t, srv2.URL, tree, res.Findings, "post-restart push")

		if v := scrapeMetric(t, srv2.URL, "rustprobed_session_restores_total"); v != 1 {
			t.Errorf("rustprobed_session_restores_total = %v, want 1", v)
		}
		if v := scrapeMetric(t, srv2.URL, "rustprobed_session_full_rounds_total"); v != 0 {
			t.Errorf("rustprobed_session_full_rounds_total = %v, want 0", v)
		}
		if v := scrapeMetric(t, srv2.URL, "rustprobed_session_findings_replayed_total"); v == 0 {
			t.Error("rustprobed_session_findings_replayed_total = 0 after restored round")
		}
		if v := scrapeMetric(t, srv2.URL, "rustprobed_session_roots_detected_total"); v == 0 || int(v) >= res.Stats.FuncsTotal {
			t.Errorf("rustprobed_session_roots_detected_total = %v, want in (0, %d)", v, res.Stats.FuncsTotal)
		}

		// A diff push right after restart has no in-memory base: 409.
		resp, _ := postSessionPush(t, srv2.URL, "persist/other", `{"changed": {"util.rs": "fn f() {}"}}`)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("post-restart diff status = %d, want 409", resp.StatusCode)
		}
	})

	t.Run("corrupt snapshot degrades to full round", func(t *testing.T) {
		dir := t.TempDir()
		srv1, close1 := epoch(dir)
		pushOK(t, srv1.URL, "persist/corrupt", sessionPushRequest{Files: sessionBaseTree()})
		close1()

		smashed := 0
		filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.Contains(path, "sess-") {
				return err
			}
			smashed++
			return os.WriteFile(path, []byte("not json"), 0o644)
		})
		if smashed == 0 {
			t.Fatal("no persisted session snapshot found to corrupt")
		}

		srv2, close2 := epoch(dir)
		defer close2()
		res := pushOK(t, srv2.URL, "persist/corrupt", sessionPushRequest{Files: sessionBaseTree()})
		if !res.Stats.Full || res.Stats.Restored {
			t.Fatalf("push over corrupt snapshot: %+v", res.Stats)
		}
		requireEquivalent(t, srv2.URL, sessionBaseTree(), res.Findings, "corrupt-snapshot push")
		if v := scrapeMetric(t, srv2.URL, "rustprobed_session_restores_total"); v != 0 {
			t.Errorf("corrupt snapshot counted as a restore: %v", v)
		}
	})

	t.Run("stale-version snapshot degrades to full round", func(t *testing.T) {
		dir := t.TempDir()
		st := openStore(dir)
		stale := &incrstate.State{
			Version: "0:ancient", Files: map[string]string{}, Interfaces: map[string]string{},
			FnBodies: map[string]string{}, FnPos: map[string]string{},
		}
		payload, err := incrstate.Encode(stale)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(sessionpool.SessionKey("persist/stale"), payload); err != nil {
			t.Fatal(err)
		}

		eng := engine.New(engine.Config{Workers: 2, Store: st})
		pool := sessionpool.New(sessionpool.Config{Store: st})
		srv := httptest.NewServer(newServer(eng, serverOptions{timeout: 30 * time.Second, pool: pool}))
		defer func() { srv.Close(); pool.Close(); eng.Close() }()

		res := pushOK(t, srv.URL, "persist/stale", sessionPushRequest{Files: sessionBaseTree()})
		if !res.Stats.Full || res.Stats.Restored {
			t.Fatalf("push over stale snapshot: %+v", res.Stats)
		}
		if v := scrapeMetric(t, srv.URL, "rustprobed_session_restores_total"); v != 0 {
			t.Errorf("stale snapshot counted as a restore: %v", v)
		}
	})
}
