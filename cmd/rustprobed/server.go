package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rustprobe"
	"rustprobe/internal/engine"
)

// maxBodyBytes bounds a single /v1/analyze payload (sources are text;
// 32 MiB is far beyond any crate the subset frontend will see).
const maxBodyBytes = 32 << 20

// server routes the rustprobed HTTP API onto an engine.
type server struct {
	eng     *engine.Engine
	timeout time.Duration // per-request analysis budget; 0 = none
	started time.Time
}

// newServer builds the daemon's HTTP handler; tests mount it on
// net/http/httptest listeners.
func newServer(eng *engine.Engine, timeout time.Duration) http.Handler {
	s := &server{eng: eng, timeout: timeout, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/detectors", s.handleDetectors)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// analyzeResponse is the wire shape of a successful analysis.
type analyzeResponse struct {
	Findings []engine.Finding     `json:"findings"`
	Unsafe   engine.UnsafeSummary `json:"unsafe"`
	CacheHit bool                 `json:"cache_hit"`
	ElapsedMS float64             `json:"elapsed_ms"`
}

// errorResponse is the wire shape of every failure.
type errorResponse struct {
	Error       string `json:"error"`
	Diagnostics string `json:"diagnostics,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", "")
		return
	}
	var req engine.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err), "")
		return
	}

	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	resp, err := s.eng.Analyze(ctx, req)
	if err != nil {
		var reqErr *engine.RequestError
		var srcErr *engine.SourceError
		switch {
		case errors.As(err, &reqErr):
			writeError(w, http.StatusBadRequest, reqErr.Error(), "")
		case errors.As(err, &srcErr):
			writeError(w, http.StatusUnprocessableEntity, srcErr.Error(), srcErr.Diags)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "analysis timed out", "")
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		return
	}
	writeJSON(w, http.StatusOK, analyzeResponse{
		Findings:  resp.Findings,
		Unsafe:    resp.Unsafe,
		CacheHit:  resp.CacheHit,
		ElapsedMS: float64(resp.Elapsed) / float64(time.Millisecond),
	})
}

func (s *server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"detectors": rustprobe.DetectorNames()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg, diags string) {
	writeJSON(w, status, errorResponse{Error: msg, Diagnostics: diags})
}
