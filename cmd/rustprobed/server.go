package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"net/url"

	"rustprobe"
	"rustprobe/internal/engine"
	"rustprobe/internal/incrstate"
	"rustprobe/internal/sessionpool"
)

// maxBodyBytes bounds a single /v1/analyze payload (sources are text;
// 32 MiB is far beyond any crate the subset frontend will see).
const maxBodyBytes = 32 << 20

// serverOptions configures the daemon's HTTP handler.
type serverOptions struct {
	timeout time.Duration // per-request analysis budget; 0 = none
	pprof   bool          // mount net/http/pprof under /debug/pprof/
	precise bool          // force path-sensitive detectors on every request

	// pool, when non-nil, serves the stateful session API under
	// /v1/sessions/; nil (e.g. -sessions 0) leaves the route unmounted.
	pool *sessionpool.Pool
}

// server routes the rustprobed HTTP API onto an engine.
type server struct {
	eng     *engine.Engine
	opts    serverOptions
	started time.Time
}

// newServer builds the daemon's HTTP handler; tests mount it on
// net/http/httptest listeners. Every request gets an X-Request-ID and
// one structured access-log line.
func newServer(eng *engine.Engine, opts serverOptions) http.Handler {
	s := &server{eng: eng, opts: opts, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyze-batch", s.handleAnalyzeBatch)
	if opts.pool != nil {
		mux.HandleFunc("/v1/sessions/", s.handleSessions)
	}
	mux.HandleFunc("/v1/detectors", s.handleDetectors)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if opts.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return withRequestID(mux)
}

// --- request IDs + access log ----------------------------------------------

type requestIDKey struct{}

// reqPrefix distinguishes daemon restarts in aggregated logs; reqSeq
// orders requests within one process.
var (
	reqPrefix = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	reqSeq atomic.Uint64
)

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// withRequestID stamps every request with a unique ID (echoed in the
// X-Request-ID response header and threaded through the context for
// handler logs) and emits one key=value access-log line per request.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
		log.Printf("rustprobed: req=%s method=%s path=%s status=%d elapsed=%s",
			id, r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

// requestID recovers the middleware's ID for handler-level log lines.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// --- handlers ---------------------------------------------------------------

// analyzeResponse is the wire shape of a successful analysis.
type analyzeResponse struct {
	Findings []engine.Finding     `json:"findings"`
	Unsafe   engine.UnsafeSummary `json:"unsafe"`
	CacheHit bool                 `json:"cache_hit"`
	// StoreHit marks a result read from the persistent store rather
	// than recomputed — the restart/replica fast path.
	StoreHit  bool    `json:"store_hit,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// errorResponse is the wire shape of every failure.
type errorResponse struct {
	Error       string `json:"error"`
	Diagnostics string `json:"diagnostics,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", "")
		return
	}
	var req engine.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err), "")
		return
	}
	if s.opts.precise {
		req.Precise = true
	}

	ctx := r.Context()
	if s.opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.timeout)
		defer cancel()
	}
	resp, err := s.eng.Analyze(ctx, req)
	if err != nil {
		var reqErr *engine.RequestError
		var srcErr *engine.SourceError
		var intErr *engine.InternalError
		switch {
		case errors.As(err, &reqErr):
			writeError(w, http.StatusBadRequest, reqErr.Error(), "")
		case errors.As(err, &srcErr):
			writeError(w, http.StatusUnprocessableEntity, srcErr.Error(), srcErr.Diags)
		case errors.Is(err, engine.ErrQueueFull):
			// Backpressure, not failure: tell the client to retry.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "analysis queue is full, retry later", "")
		case errors.Is(err, engine.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "server is shutting down", "")
		case errors.As(err, &intErr):
			// The panic was isolated to this request; the worker pool
			// is intact. Stack goes to the log, not the client.
			log.Printf("rustprobed: req=%s analysis panicked: %s\n%s",
				requestID(r.Context()), intErr.Panic, intErr.Stack)
			writeError(w, http.StatusInternalServerError, "internal error: analysis pass panicked", "")
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "analysis timed out", "")
		case errors.Is(err, context.Canceled):
			// Client went away; 499 is the de-facto code for that.
			writeError(w, 499, "client closed request", "")
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		return
	}
	writeJSON(w, http.StatusOK, analyzeResponse{
		Findings:  resp.Findings,
		Unsafe:    resp.Unsafe,
		CacheHit:  resp.CacheHit,
		StoreHit:  resp.StoreHit,
		ElapsedMS: float64(resp.Elapsed) / float64(time.Millisecond),
	})
}

// batchResponse is the wire shape of a batch analysis: per-file results
// (findings or an isolated error classification), never a partial map.
type batchResponse struct {
	Results     map[string]*engine.BatchEntry `json:"results"`
	Files       int                           `json:"files"`
	Errors      int                           `json:"errors"`
	SetCacheHit bool                          `json:"set_cache_hit"`
	ElapsedMS   float64                       `json:"elapsed_ms"`
}

// handleAnalyzeBatch serves POST /v1/analyze-batch: many named files in
// one request, analyzed independently. Request-level failures (bad JSON,
// empty set, unknown detector, timeout, saturation) map to the same
// status codes as /v1/analyze; per-file failures are isolated inside
// their entries with an error_kind clients can branch on.
func (s *server) handleAnalyzeBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", "")
		return
	}
	var req engine.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err), "")
		return
	}
	if s.opts.precise {
		req.Precise = true
	}

	ctx := r.Context()
	if s.opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.timeout)
		defer cancel()
	}
	resp, err := s.eng.AnalyzeBatch(ctx, req)
	if err != nil {
		var reqErr *engine.RequestError
		switch {
		case errors.As(err, &reqErr):
			writeError(w, http.StatusBadRequest, reqErr.Error(), "")
		case errors.Is(err, engine.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "server is shutting down", "")
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "batch analysis timed out", "")
		case errors.Is(err, context.Canceled):
			writeError(w, 499, "client closed request", "")
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Results:     resp.Results,
		Files:       resp.Files,
		Errors:      resp.Errors,
		SetCacheHit: resp.SetCacheHit,
		ElapsedMS:   float64(resp.Elapsed) / float64(time.Millisecond),
	})
}

// sessionPushRequest is the wire shape of POST /v1/sessions/{repo}/push.
// Exactly one of two forms: a full file map ("files"), or a diff
// ("changed" and/or "removed") applied over the repo's last successfully
// pushed tree. A diff push against a repo with no live session (first
// contact, evicted, daemon restarted) fails with 409 — the client then
// re-pushes the full map.
type sessionPushRequest struct {
	Files   map[string]string `json:"files,omitempty"`
	Changed map[string]string `json:"changed,omitempty"`
	Removed []string          `json:"removed,omitempty"`
}

// sessionPushResponse is one session round: resolved findings plus the
// round's stats (dirty-closure size, replayed findings, full/incremental,
// restore and hit flags).
type sessionPushResponse struct {
	Findings  []incrstate.Finding   `json:"findings"`
	Stats     sessionpool.PushStats `json:"stats"`
	ElapsedMS float64               `json:"elapsed_ms"`
}

// handleSessions serves the stateful session API:
//
//	POST /v1/sessions/{repo}/push
//
// {repo} is URL-escaped and may contain slashes ("org/repo"). Unlike the
// stateless endpoints, repeated pushes for one repo land on the same
// live Session, so a re-push with a small diff pays one dirty-closure
// detection instead of a per-file sweep.
func (s *server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", "")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	repo, ok := strings.CutSuffix(rest, "/push")
	if !ok || repo == "" {
		writeError(w, http.StatusNotFound, "unknown session endpoint; use POST /v1/sessions/{repo}/push", "")
		return
	}
	if unescaped, err := url.PathUnescape(repo); err == nil {
		repo = unescaped
	}
	if len(repo) > 512 {
		writeError(w, http.StatusBadRequest, "repo name exceeds 512 bytes", "")
		return
	}

	var req sessionPushRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid JSON: %v", err), "")
		return
	}
	fullPush := req.Files != nil
	diffPush := req.Changed != nil || req.Removed != nil
	switch {
	case fullPush && diffPush:
		writeError(w, http.StatusBadRequest, `push either "files" (full map) or "changed"/"removed" (diff), not both`, "")
		return
	case !fullPush && !diffPush:
		writeError(w, http.StatusBadRequest, `empty push: provide "files" or "changed"/"removed"`, "")
		return
	case fullPush && len(req.Files) == 0:
		writeError(w, http.StatusBadRequest, "full push with no files", "")
		return
	}

	ctx := r.Context()
	if s.opts.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.timeout)
		defer cancel()
	}
	start := time.Now()
	var res *sessionpool.Result
	var err error
	if fullPush {
		res, err = s.opts.pool.Push(ctx, repo, req.Files)
	} else {
		res, err = s.opts.pool.PushDiff(ctx, repo, req.Changed, req.Removed)
	}
	if err != nil {
		var synErr *rustprobe.SyntaxError
		switch {
		case errors.Is(err, sessionpool.ErrNoSession):
			writeError(w, http.StatusConflict, "no live session for this repo; push the full file map", "")
		case errors.As(err, &synErr):
			writeError(w, http.StatusUnprocessableEntity, "sources failed to parse or resolve", synErr.Diags)
		case errors.Is(err, sessionpool.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "server is shutting down", "")
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "session push timed out", "")
		case errors.Is(err, context.Canceled):
			writeError(w, 499, "client closed request", "")
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		return
	}
	writeJSON(w, http.StatusOK, sessionPushResponse{
		Findings:  res.Findings,
		Stats:     res.Stats,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"detectors": rustprobe.DetectorNames()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// statsResponse embeds the engine stats (flat, wire-compatible with
// pre-session clients) and adds the session pool's counters when the
// session service is mounted.
type statsResponse struct {
	engine.Stats
	Sessions *sessionpool.Stats `json:"sessions,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	resp := statsResponse{Stats: s.eng.Stats()}
	if s.opts.pool != nil {
		ps := s.opts.pool.Stats()
		resp.Sessions = &ps
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the engine counters in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", "")
		return
	}
	st := s.eng.Stats()
	var b strings.Builder
	metric := func(name, typ, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	metric("rustprobed_jobs_submitted_total", "counter", "Requests accepted after validation.", float64(st.JobsSubmitted))
	metric("rustprobed_jobs_completed_total", "counter", "Analyses run to completion.", float64(st.JobsCompleted))
	metric("rustprobed_jobs_failed_total", "counter", "Jobs failed (frontend errors and panics).", float64(st.JobsFailed))
	metric("rustprobed_jobs_canceled_total", "counter", "Jobs abandoned by every waiter before completion.", float64(st.JobsCanceled))
	metric("rustprobed_panics_total", "counter", "Analysis passes that panicked (isolated per request; pool intact).", float64(st.Panics))
	metric("rustprobed_queue_rejected_total", "counter", "Submissions fast-failed with 503 because the queue was full.", float64(st.QueueRejected))
	metric("rustprobed_dedup_hits_total", "counter", "Submissions coalesced onto an identical in-flight analysis.", float64(st.DedupHits))
	metric("rustprobed_queue_depth", "gauge", "Jobs waiting in the queue.", float64(st.QueueDepth))
	metric("rustprobed_queue_capacity", "gauge", "Queue slot capacity.", float64(st.QueueCapacity))
	metric("rustprobed_workers", "gauge", "Analysis worker pool size.", float64(st.Workers))
	metric("rustprobed_jobs_in_flight", "gauge", "Jobs currently on a worker.", float64(st.JobsInFlight))
	metric("rustprobed_cache_hits_total", "counter", "Result-cache hits.", float64(st.CacheHits))
	metric("rustprobed_cache_misses_total", "counter", "Result-cache misses.", float64(st.CacheMisses))
	ratio := 0.0
	if st.CacheHits+st.CacheMisses > 0 {
		ratio = float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	metric("rustprobed_cache_hit_ratio", "gauge", "Cache hits / lookups since start.", ratio)
	metric("rustprobed_cache_size", "gauge", "Result-cache entries.", float64(st.CacheSize))
	metric("rustprobed_cache_entries", "gauge", "Result-cache entries (alias of rustprobed_cache_size).", float64(st.CacheEntries))
	metric("rustprobed_cache_capacity", "gauge", "Result-cache entry bound.", float64(st.CacheCapacity))
	metric("rustprobed_cache_evictions_total", "counter", "LRU entries evicted under capacity pressure.", float64(st.CacheEvictions))
	metric("rustprobed_store_hits_total", "counter", "Persistent-store hits (results served from disk, e.g. after a restart).", float64(st.StoreHits))
	metric("rustprobed_store_misses_total", "counter", "Persistent-store misses.", float64(st.StoreMisses))
	metric("rustprobed_store_puts_total", "counter", "Results persisted write-behind to the store.", float64(st.StorePuts))
	metric("rustprobed_store_put_errors_total", "counter", "Failed store writes.", float64(st.StorePutErrors))
	metric("rustprobed_store_quarantined_total", "counter", "Corrupt, truncated, or version-mismatched store entries quarantined at read.", float64(st.StoreQuarantined))
	metric("rustprobed_store_entries", "gauge", "Entries in the persistent store (this handle's view).", float64(st.StoreEntries))
	metric("rustprobed_batch_requests_total", "counter", "Batch submissions accepted.", float64(st.BatchSubmitted))
	metric("rustprobed_batch_set_hits_total", "counter", "Whole-set batch cache hits (unchanged repo resubmissions).", float64(st.BatchSetHits))
	metric("rustprobed_batch_files_total", "counter", "Files fanned out by batch requests.", float64(st.BatchFiles))
	metric("rustprobed_batch_file_errors_total", "counter", "Per-file errors isolated inside batch responses.", float64(st.BatchFileErrors))
	metric("rustprobed_frontend_ms_total", "counter", "Cumulative frontend wall time (ms).", st.FrontendMSTotal)
	metric("rustprobed_detect_ms_total", "counter", "Cumulative detector fan-out wall time (ms).", st.DetectMSTotal)
	metric("rustprobed_unsafe_scan_ms_total", "counter", "Cumulative unsafe-scan wall time (ms).", st.UnsafeScanMSTotal)
	metric("rustprobed_analyze_ms_total", "counter", "Cumulative end-to-end analysis wall time (ms).", st.AnalyzeMSTotal)
	metric("rustprobed_uptime_seconds", "gauge", "Seconds since the daemon started.", time.Since(s.started).Seconds())
	if s.opts.pool != nil {
		ps := s.opts.pool.Stats()
		metric("rustprobed_sessions_live", "gauge", "Live repo sessions in the pool.", float64(ps.Live))
		metric("rustprobed_session_pushes_total", "counter", "Session pushes accepted (full map or diff).", float64(ps.Pushes))
		metric("rustprobed_session_hits_total", "counter", "Pushes served by an already-live session.", float64(ps.Hits))
		metric("rustprobed_session_misses_total", "counter", "Pushes that created a session entry.", float64(ps.Misses))
		metric("rustprobed_session_restores_total", "counter", "Sessions seeded from persisted store state (survived a restart or eviction).", float64(ps.Restores))
		metric("rustprobed_session_evictions_lru_total", "counter", "Sessions evicted by the LRU cap.", float64(ps.EvictionsLRU))
		metric("rustprobed_session_evictions_ttl_total", "counter", "Sessions evicted after idling past the TTL.", float64(ps.EvictionsTTL))
		metric("rustprobed_session_full_rounds_total", "counter", "Session rounds that ran a full from-scratch analysis.", float64(ps.FullRounds))
		metric("rustprobed_session_incremental_rounds_total", "counter", "Session rounds that reused prior state (dirty-closure or replay).", float64(ps.IncrementalRounds))
		metric("rustprobed_session_roots_detected_total", "counter", "Function roots re-detected across incremental session rounds (dirty-closure size).", float64(ps.RootsDetected))
		metric("rustprobed_session_findings_replayed_total", "counter", "Cached findings replayed instead of recomputed across session rounds.", float64(ps.FindingsReplayed))
		metric("rustprobed_session_state_save_errors_total", "counter", "Failed persists of session state to the store.", float64(ps.StateSaveErrors))
		metric("rustprobed_session_global_facts_reused_total", "counter", "Per-function fact extractions the global detectors skipped by reusing carried caches.", float64(ps.GlobalFactsReused))
		metric("rustprobed_session_graph_patched_total", "counter", "Session rounds whose call graph was patched from the previous round instead of rebuilt.", float64(ps.GraphPatchedRounds))
	}
	if len(st.DetectorMSTotal) > 0 {
		fmt.Fprintf(&b, "# HELP rustprobed_detector_wall_ms_total Cumulative wall time per detector pass (ms).\n")
		fmt.Fprintf(&b, "# TYPE rustprobed_detector_wall_ms_total counter\n")
		names := make([]string, 0, len(st.DetectorMSTotal))
		for name := range st.DetectorMSTotal {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "rustprobed_detector_wall_ms_total{detector=%q} %g\n", name, st.DetectorMSTotal[name])
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := fmt.Fprint(w, b.String()); err != nil {
		log.Printf("rustprobed: metrics write failed: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status header and any partial body are already on the
		// wire; logging is all that makes the truncation diagnosable.
		log.Printf("rustprobed: response encode failed (status=%d): %v", status, err)
	}
}

func writeError(w http.ResponseWriter, status int, msg, diags string) {
	writeJSON(w, status, errorResponse{Error: msg, Diagnostics: diags})
}
