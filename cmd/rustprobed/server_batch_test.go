package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rustprobe/internal/engine"
	"rustprobe/internal/store"
)

func postBatch(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze-batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestBatchEndpoint drives a mixed repo through /v1/analyze-batch: buggy
// and clean files come back with findings, the unparseable file gets an
// isolated error entry, and the set as a whole succeeds.
func TestBatchEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	reqBody, err := json.Marshal(engine.BatchRequest{Files: map[string]string{
		"fig5.rs":   figure5Src,
		"clean.rs":  "fn tidy(x: i32) -> i32 { x + 1 }\n",
		"broken.rs": "fn broken( {",
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBatch(t, srv.URL, string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}

	var got batchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON response: %v\n%s", err, body)
	}
	if got.Files != 3 || got.Errors != 1 {
		t.Fatalf("files=%d errors=%d, want 3/1", got.Files, got.Errors)
	}
	fig5 := got.Results["fig5.rs"]
	if fig5 == nil || fig5.Error != "" || len(fig5.Findings) != 1 || fig5.Findings[0].Kind != "use-after-free" {
		t.Fatalf("fig5.rs entry = %+v, want one use-after-free finding", fig5)
	}
	if clean := got.Results["clean.rs"]; clean == nil || clean.Error != "" || len(clean.Findings) != 0 {
		t.Fatalf("clean.rs entry = %+v, want clean success", clean)
	}
	broken := got.Results["broken.rs"]
	if broken == nil || broken.ErrorKind != engine.BatchErrSource || !strings.Contains(broken.Diagnostics, "broken.rs") {
		t.Fatalf("broken.rs entry = %+v, want isolated source error with diagnostics", broken)
	}

	// Identical resubmission: the whole set is a cache hit.
	resp2, body2 := postBatch(t, srv.URL, string(reqBody))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status = %d", resp2.StatusCode)
	}
	var second batchResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.SetCacheHit {
		t.Error("identical batch resubmission missed the set cache")
	}
}

// TestBatchEndpointErrors covers request-level failures: these fail the
// batch as a unit with the same status-code mapping as /v1/analyze.
func TestBatchEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		body   string
		status int
	}{
		{`{`, http.StatusBadRequest},  // malformed JSON
		{`{}`, http.StatusBadRequest}, // empty set
		{`{"files": {"a.rs": "fn f() {}"}, "detectors": ["zap"]}`, http.StatusBadRequest},
		{`{"files": {"a.rs": "fn f() {}"}, "bogus": 1}`, http.StatusBadRequest}, // unknown field
	}
	for _, c := range cases {
		resp, body := postBatch(t, srv.URL, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("POST %s: status = %d, want %d (%s)", c.body, resp.StatusCode, c.status, body)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error payload = %s", c.body, body)
		}
	}

	if resp, _ := http.Get(srv.URL + "/v1/analyze-batch"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze-batch status = %d", resp.StatusCode)
	}
}

// scrapeMetric pulls one series value out of the /metrics text format.
func scrapeMetric(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics output", name)
	return 0
}

// TestDaemonRestartServesFromStore is the acceptance shape for the
// persistent tier: a first daemon lifetime analyzes a repo and persists
// the results; a second lifetime sharing the store directory serves the
// same content from disk, observable as rustprobed_store_hits_total on
// /metrics and zero fresh jobs.
func TestDaemonRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	version := engine.StoreVersion()
	openTestStore := func() *store.Store {
		st, err := store.Open(dir, version)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	reqBody, _ := json.Marshal(engine.BatchRequest{Files: map[string]string{
		"fig5.rs":  figure5Src,
		"clean.rs": "fn tidy(x: i32) -> i32 { x + 1 }\n",
	}})

	// First lifetime: compute and persist write-behind.
	eng1 := engine.New(engine.Config{Workers: 2, Store: openTestStore()})
	srv1 := httptest.NewServer(newServer(eng1, serverOptions{timeout: 5 * time.Second}))
	if resp, body := postBatch(t, srv1.URL, string(reqBody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first lifetime batch status = %d: %s", resp.StatusCode, body)
	}
	if hits := scrapeMetric(t, srv1.URL, "rustprobed_store_hits_total"); hits != 0 {
		t.Fatalf("cold daemon reported %v store hits", hits)
	}
	srv1.Close()
	eng1.Close() // drains write-behind puts

	// Second lifetime: fresh engine + LRU, same store directory.
	eng2 := engine.New(engine.Config{Workers: 2, Store: openTestStore()})
	srv2 := httptest.NewServer(newServer(eng2, serverOptions{timeout: 5 * time.Second}))
	defer srv2.Close()
	defer eng2.Close()

	resp, body := postBatch(t, srv2.URL, string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart batch status = %d: %s", resp.StatusCode, body)
	}
	var got batchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	for name, entry := range got.Results {
		if entry.Error != "" {
			t.Fatalf("%s after restart: %s", name, entry.Error)
		}
		if !entry.StoreHit {
			t.Fatalf("%s not served from the persistent tier after restart", name)
		}
	}
	if fig5 := got.Results["fig5.rs"]; len(fig5.Findings) != 1 || fig5.Findings[0].Kind != "use-after-free" {
		t.Fatalf("persisted findings corrupted across restart: %+v", fig5)
	}

	if hits := scrapeMetric(t, srv2.URL, "rustprobed_store_hits_total"); hits < 2 {
		t.Fatalf("rustprobed_store_hits_total = %v after restart, want >= 2", hits)
	}
	if jobs := scrapeMetric(t, srv2.URL, "rustprobed_jobs_completed_total"); jobs != 0 {
		t.Fatalf("restart replay ran %v fresh jobs, want 0", jobs)
	}
	if entries := scrapeMetric(t, srv2.URL, "rustprobed_store_entries"); entries < 2 {
		t.Fatalf("rustprobed_store_entries = %v, want >= 2", entries)
	}
}
