// Command benchrecord runs the repo's serving-path benchmarks and emits
// a machine-readable record (BENCH_6.json at the repo root) so perf
// claims are pinned to a committed artifact instead of a prose number.
// CI regenerates it as a build artifact; the committed copy is the
// reference trajectory later PRs compare against.
//
// The record covers:
//
//   - the fixed embedded corpus groups (frontend + full detector suite),
//   - a generated fleet of seeded programs analyzed cold (empty result
//     store: every request pays the full pipeline) and warm (same store
//     directory, fresh engine — the restart shape: every request is an
//     LRU miss served from disk),
//   - the warm/cold ratio, which -check gates at >= 10x.
//
// Usage:
//
//	benchrecord -o BENCH_6.json -seeds 1000 -check
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rustprobe"
	"rustprobe/internal/corpus"
	"rustprobe/internal/engine"
	"rustprobe/internal/gen"
	"rustprobe/internal/sessionpool"
	"rustprobe/internal/store"
)

type benchResult struct {
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type record struct {
	Schema          int                    `json:"schema"`
	AnalyzerVersion string                 `json:"analyzer_version"`
	StoreVersion    string                 `json:"store_version"`
	GoVersion       string                 `json:"go_version"`
	GOMAXPROCS      int                    `json:"gomaxprocs"`
	Seeds           int                    `json:"seeds"`
	Benchmarks      map[string]benchResult `json:"benchmarks"`
	// WarmColdRatio is cold ns/op divided by warm ns/op for the
	// generated fleet: how much faster an unchanged repo re-analyzes
	// through the persistent store after a restart.
	WarmColdRatio float64 `json:"warm_cold_ratio"`
	// SessionBatchRatio is cold-batch ns/op divided by warm-session-push
	// ns/op for an evolving tree (one file's body changes every round):
	// how much a repo's live session saves over re-batching the whole
	// tree statelessly on each push.
	SessionBatchRatio float64 `json:"session_batch_ratio"`
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		N:           r.N,
		NsPerOp:     r.NsPerOp(),
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// fleet pre-generates the seeded programs once so the benchmarks measure
// analysis, not generation.
func fleet(seeds int) []map[string]string {
	out := make([]map[string]string, seeds)
	for i := range out {
		p := gen.Generate(int64(i))
		out[i] = map[string]string{"gen.rs": p.Source}
	}
	return out
}

// analyzeFleet pushes every program through a fresh engine backed by the
// store at dir. Each program is a distinct request key, so the in-memory
// LRU never answers within one pass — hits come from the store or not at
// all.
func analyzeFleet(b *testing.B, dir string, programs []map[string]string) {
	st, err := store.Open(dir, engine.StoreVersion())
	if err != nil {
		b.Fatal(err)
	}
	e := engine.New(engine.Config{Store: st})
	defer e.Close()
	ctx := context.Background()
	for _, files := range programs {
		if _, err := e.Analyze(ctx, engine.Request{Files: files}); err != nil {
			b.Fatal(err)
		}
	}
}

// seedStore runs one untimed pass so the warm benchmark starts against a
// fully populated store.
func seedStore(dir string, programs []map[string]string) error {
	st, err := store.Open(dir, engine.StoreVersion())
	if err != nil {
		return err
	}
	e := engine.New(engine.Config{Store: st})
	defer e.Close()
	ctx := context.Background()
	for _, files := range programs {
		if _, err := e.Analyze(ctx, engine.Request{Files: files}); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		out    = flag.String("o", "BENCH_6.json", "output path for the benchmark record")
		seeds  = flag.Int("seeds", 1000, "generated-program count for the fleet benchmarks")
		check  = flag.Bool("check", false, "exit non-zero unless the warm/cold ratio is >= 10")
		groups = flag.String("corpus", "detector-eval,patterns,unsafe", "comma-separated embedded corpus groups to time")
	)
	flag.Parse()

	rec := record{
		Schema:          1,
		AnalyzerVersion: rustprobe.AnalyzerVersion,
		StoreVersion:    engine.StoreVersion(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Seeds:           *seeds,
		Benchmarks:      map[string]benchResult{},
	}

	for _, g := range splitList(*groups) {
		g := g
		fmt.Fprintf(os.Stderr, "bench corpus/%s...\n", g)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := rustprobe.AnalyzeCorpus(g)
				if err != nil {
					b.Fatal(err)
				}
				res.Detect()
			}
		})
		rec.Benchmarks["corpus/"+g] = toResult(r)
	}

	// Per-detector trajectory record for the §6.1 blocking pass: time the
	// wait-for-graph detector alone over the patterns corpus (where its six
	// seeded bugs live). No regression gate yet — the committed number is
	// the baseline later records compare against.
	fmt.Fprintln(os.Stderr, "bench detect/blocking...")
	{
		res, err := rustprobe.AnalyzeCorpus("patterns")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(res.Detect("blocking")) == 0 {
					b.Fatal("blocking detector found nothing on the patterns corpus")
				}
			}
		})
		rec.Benchmarks["detect/blocking"] = toResult(r)
	}

	programs := fleet(*seeds)

	fmt.Fprintf(os.Stderr, "bench gen%d/cold-store...\n", *seeds)
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "benchrecord-cold-")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			analyzeFleet(b, dir, programs)
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	})
	rec.Benchmarks[fmt.Sprintf("gen%d/cold-store", *seeds)] = toResult(cold)

	// Warm: one cold pass seeds the store, then every iteration restarts
	// the engine over the same directory — the daemon-restart shape the
	// store exists for.
	warmDir, err := os.MkdirTemp("", "benchrecord-warm-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(warmDir)
	if err := seedStore(warmDir, programs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "bench gen%d/warm-store...\n", *seeds)
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			analyzeFleet(b, warmDir, programs)
		}
	})
	rec.Benchmarks[fmt.Sprintf("gen%d/warm-store", *seeds)] = toResult(warm)

	if warm.NsPerOp() > 0 {
		rec.WarmColdRatio = float64(cold.NsPerOp()) / float64(warm.NsPerOp())
	}

	// Session tier: an evolving repo — the patterns corpus as the hot,
	// finding-dense core, padded with cold lock-free modules to app scale,
	// plus one churn file whose function body changes every round — pushed
	// through a live session (dirty-closure detection + finding replay)
	// versus re-batched statelessly with caching disabled. This is the
	// CI-fleet shape the /v1/sessions service exists for.
	patternFiles, err := corpus.Files(corpus.GroupPatterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tree := make(map[string]string, len(patternFiles)+61)
	for _, f := range patternFiles {
		tree[f.Path] = f.Content
	}
	for m := 0; m < 60; m++ {
		var sb []byte
		for fn := 0; fn < 5; fn++ {
			sb = append(sb, fmt.Sprintf(
				"fn pad_%d_%d(x: i32) -> i32 {\n    let y = x + %d;\n    y * %d\n}\n\n",
				m, fn, m+fn, fn+2)...)
		}
		tree[fmt.Sprintf("pad_%02d.rs", m)] = string(sb)
	}
	churn := func(i int) string {
		return fmt.Sprintf("fn bench_churn_probe(x: i32) -> i32 {\n    x + %d\n}\n", i%97)
	}
	tree["bench_churn.rs"] = churn(0)

	fmt.Fprintln(os.Stderr, "bench session/warm-push...")
	pool := sessionpool.New(sessionpool.Config{})
	if _, err := pool.Push(context.Background(), "bench", tree); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warmSess := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pool.PushDiff(context.Background(), "bench",
				map[string]string{"bench_churn.rs": churn(i + 1)}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	pool.Close()
	rec.Benchmarks["session/warm-push"] = toResult(warmSess)

	// One worker: the ratio compares total analysis work per push (the
	// fleet-throughput currency), not one batch's parallel wall-clock,
	// so the record is stable across runner core counts.
	fmt.Fprintln(os.Stderr, "bench session/cold-batch...")
	coldEng := engine.New(engine.Config{Workers: 1, CacheCapacity: -1})
	coldBatch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree["bench_churn.rs"] = churn(i + 1)
			if _, err := coldEng.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: tree}); err != nil {
				b.Fatal(err)
			}
		}
	})
	coldEng.Close()
	rec.Benchmarks["session/cold-batch"] = toResult(coldBatch)

	if warmSess.NsPerOp() > 0 {
		rec.SessionBatchRatio = float64(coldBatch.NsPerOp()) / float64(warmSess.NsPerOp())
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: warm/cold ratio %.1fx over %d seeds, session/batch ratio %.1fx\n",
		*out, rec.WarmColdRatio, *seeds, rec.SessionBatchRatio)

	if *check && rec.WarmColdRatio < 10 {
		fmt.Fprintf(os.Stderr, "benchrecord: warm/cold ratio %.1fx is below the 10x floor\n", rec.WarmColdRatio)
		os.Exit(1)
	}
	// The warm push patches the previous round's call graph and reuses
	// the global detectors' per-function fact caches, so a one-body edit
	// pays frontend + detection proportional to its dirty closure, not
	// the tree (measured ~5x over the stateless batch on the padded
	// patterns tree; the old ~2x ceiling came from re-running the global
	// detectors and the callgraph build from scratch every round). The
	// floor sits below the measurement to absorb benchmark noise.
	if *check && rec.SessionBatchRatio < 4 {
		fmt.Fprintf(os.Stderr, "benchrecord: session/batch ratio %.1fx is below the 4x floor\n", rec.SessionBatchRatio)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
