package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"rustprobe"
	"rustprobe/internal/incrstate"
)

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// oracle runs a from-scratch analysis of the same tree and returns the
// formatted findings, sorted — what every incremental outcome must match.
func oracle(t *testing.T, files map[string]string) []string {
	t.Helper()
	res, err := rustprobe.AnalyzeFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, jf := range toJSONFindings(res, res.Detect()) {
		out = append(out, jf.Format())
	}
	sort.Strings(out)
	return out
}

func formatted(fs []incrstate.Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Format())
	}
	sort.Strings(out)
	return out
}

func TestRunIncremental(t *testing.T) {
	base := map[string]string{
		"src/lib.rs": `struct Shared { mu: Mutex<i32> }
impl Shared {
    fn twice(&self) {
        let a = self.mu.lock().unwrap();
        let b = self.mu.lock().unwrap();
    }
}
`,
		"src/util.rs": `fn helper(x: i32) -> i32 {
    x + 1
}
fn caller() {
    let y = helper(2);
}
`,
	}
	dir := t.TempDir()
	writeTree(t, dir, base)
	statePath := filepath.Join(dir, ".rustprobe-state.json")

	// First run: full, creates the state file.
	got, note, err := runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "full analysis (no prior state)") {
		t.Fatalf("first run note = %q, want full analysis", note)
	}
	if want := oracle(t, base); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("first run findings = %v, want %v", formatted(got), want)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// Second run, nothing changed: replay without analyzing.
	got, note, err = runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "unchanged") || !strings.Contains(note, "0 functions re-analyzed") {
		t.Fatalf("unchanged run note = %q, want replay", note)
	}
	if want := oracle(t, base); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("replayed findings diverge: %v vs %v", formatted(got), want)
	}

	// Third run: body-only edit adds a use-after-free to helper. The
	// double-lock in the untouched file must survive via the cached state,
	// and the new bug must appear.
	edited := map[string]string{
		"src/util.rs": `fn helper(x: i32) -> i32 {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    unsafe { let z = *p; }
    x + 1
}
fn caller() {
    let y = helper(2);
}
`,
	}
	writeTree(t, dir, edited)
	after := map[string]string{"src/lib.rs": base["src/lib.rs"], "src/util.rs": edited["src/util.rs"]}

	got, note, err = runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "incremental:") {
		t.Fatalf("body-only edit note = %q, want incremental", note)
	}
	if !strings.Contains(note, "finding(s) reused") || strings.Contains(note, "0 finding(s) reused") {
		t.Fatalf("note = %q, want cached double-lock finding reused", note)
	}
	if want := oracle(t, after); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("incremental findings diverge\n got: %v\nwant: %v", formatted(got), want)
	}

	// Fourth run: interface change (new function) falls back to full.
	iface := map[string]string{
		"src/util.rs": after["src/util.rs"] + "fn fresh() {}\n",
	}
	writeTree(t, dir, iface)
	after["src/util.rs"] = iface["src/util.rs"]

	got, note, err = runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "full analysis (structure changed)") {
		t.Fatalf("interface change note = %q, want structural full rebuild", note)
	}
	if want := oracle(t, after); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("post-rebuild findings diverge: %v vs %v", formatted(got), want)
	}
}

// TestRunIncrementalShiftedPositions: growing a function's body shifts
// the line numbers of every function below it in the same file. Cached
// findings for those functions carry File/Line resolved against the old
// revision, so they must be recomputed, not replayed — the output must
// equal a from-scratch run byte for byte.
func TestRunIncrementalShiftedPositions(t *testing.T) {
	mk := func(padBody string) map[string]string {
		return map[string]string{"x.rs": "fn pad() {\n" + padBody + "}\nfn buggy(v: Vec<i32>) {\n    let p = v.as_ptr();\n    drop(v);\n    unsafe { let z = *p; }\n}\n"}
	}
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")

	base := mk("    let a = 1;\n")
	writeTree(t, dir, base)
	if _, _, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	}

	// pad() grows; buggy()'s body is untouched but moves down two lines.
	grown := mk("    let a = 1;\n    let b = 2;\n    let c = 3;\n")
	writeTree(t, dir, grown)
	got, note, err := runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "incremental:") {
		t.Fatalf("body-only edit note = %q, want incremental", note)
	}
	if want := oracle(t, grown); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("shifted finding replayed at stale position\n got: %v\nwant: %v", formatted(got), want)
	}

	// Same-byte-length edit that removes a newline: offsets are identical,
	// line numbers still shift.
	moved := mk("    let a = 1;     let b = 2;\n    let c = 3;\n")
	if len(moved["x.rs"]) != len(grown["x.rs"]) {
		t.Fatalf("test invariant: len=%d vs %d, want equal", len(moved["x.rs"]), len(grown["x.rs"]))
	}
	writeTree(t, dir, moved)
	got, note, err = runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "incremental:") {
		t.Fatalf("same-length edit note = %q, want incremental", note)
	}
	if want := oracle(t, moved); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("same-length newline move replayed stale positions\n got: %v\nwant: %v", formatted(got), want)
	}
}

func TestRunIncrementalStaleState(t *testing.T) {
	files := map[string]string{"a.rs": "fn f() {}\n"}
	dir := t.TempDir()
	writeTree(t, dir, files)
	statePath := filepath.Join(dir, ".rustprobe-state.json")

	// Corrupt state: must be ignored, not trusted or fatal.
	if err := os.WriteFile(statePath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, note, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(note, "full analysis (no prior state)") {
		t.Fatalf("corrupt state note = %q, want full analysis", note)
	}

	// Wrong version: same story — a detector-set or analyzer bump must
	// invalidate the cache rather than replay findings from old logic.
	if _, _, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), rustprobe.StateVersion(), "0:none", 1)
	if err := os.WriteFile(statePath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, note, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(note, "full analysis (no prior state)") {
		t.Fatalf("version-mismatch note = %q, want full analysis", note)
	}
}

// TestRunIncrementalLegacyStateWithoutFnPos: a state file from before
// the fn_pos field (right version string, no position fingerprints)
// must trigger a clean full run — replaying its findings can't be
// position-safe.
func TestRunIncrementalLegacyStateWithoutFnPos(t *testing.T) {
	files := map[string]string{"a.rs": "fn f(v: Vec<i32>) {\n    let p = v.as_ptr();\n    drop(v);\n    unsafe { let z = *p; }\n}\n"}
	dir := t.TempDir()
	writeTree(t, dir, files)
	statePath := filepath.Join(dir, "state.json")
	if _, _, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Strip the fn_pos key, keeping everything else (incl. the version)
	// intact — the shape a pre-fn_pos binary would have written.
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "fn_pos")
	stripped, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statePath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	// The tree changed (body edit), so the unchanged-replay path doesn't
	// trigger; the legacy state must be discarded, not used incrementally.
	edited := map[string]string{"a.rs": strings.Replace(files["a.rs"], "let z = *p", "let zz = *p", 1)}
	writeTree(t, dir, edited)
	got, note, err := runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "full analysis (no prior state)") {
		t.Fatalf("legacy-state note = %q, want full analysis", note)
	}
	if want := oracle(t, edited); !reflect.DeepEqual(formatted(got), want) {
		t.Fatalf("findings after legacy fallback = %v, want %v", formatted(got), want)
	}
}

func TestRunIncrementalFileAddRemove(t *testing.T) {
	files := map[string]string{
		"a.rs": "fn f() {}\n",
		"b.rs": "fn g() {}\n",
	}
	dir := t.TempDir()
	writeTree(t, dir, files)
	statePath := filepath.Join(dir, "state.json")
	if _, _, err := runIncremental(dir, statePath, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Removing a file is a structural change.
	if err := os.Remove(filepath.Join(dir, "b.rs")); err != nil {
		t.Fatal(err)
	}
	got, note, err := runIncremental(dir, statePath, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note, "full analysis (structure changed)") {
		t.Fatalf("file removal note = %q, want structural rebuild", note)
	}
	want := oracle(t, map[string]string{"a.rs": files["a.rs"]})
	gotStrs := formatted(got)
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(gotStrs, want) {
		t.Fatalf("findings after removal = %v, want %v", gotStrs, want)
	}
}
