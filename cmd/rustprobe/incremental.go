package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rustprobe"
)

// incrState is the cross-run record for -incremental: enough hashes to
// decide what changed since the previous run, and enough findings to
// avoid re-deriving the unchanged ones. It lives next to the analyzed
// tree (or wherever -state points) and is versioned on the analyzer
// version plus the detector set, so upgrading either silently falls back
// to a full run instead of replaying stale results.
type incrState struct {
	Version    string                   `json:"version"`
	Files      map[string]string        `json:"files"`      // file -> content hash
	Interfaces map[string]string        `json:"interfaces"` // file -> interface hash (bodies excised)
	FnBodies   map[string]string        `json:"fn_bodies"`  // qualified fn -> body hash
	FnPos      map[string]string        `json:"fn_pos"`     // qualified fn -> decl position fingerprint
	Findings   []jsonFinding            `json:"findings"`   // merged, sorted; replayed when nothing changed
	Local      map[string][]jsonFinding `json:"local_findings"`
}

// incrVersion ties a state file to the analyzer + detector set that
// produced it, mirroring the daemon store's version key.
func incrVersion() string {
	return rustprobe.AnalyzerVersion + ":" + strings.Join(rustprobe.DetectorNames(), ",")
}

func loadIncrState(path string) *incrState {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var st incrState
	if err := json.Unmarshal(data, &st); err != nil || st.Version != incrVersion() {
		return nil
	}
	return &st
}

// saveIncrState writes atomically (temp + rename) so a crash mid-write
// leaves either the old state or the new one, never a torn file the next
// run would have to distrust.
func saveIncrState(path string, st *incrState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rustprobe-state-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func contentHashes(files map[string]string) map[string]string {
	out := make(map[string]string, len(files))
	for name, src := range files {
		sum := sha256.Sum256([]byte(src))
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sameKeys(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func toJSONFindings(res *rustprobe.Result, fs []rustprobe.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		pos := res.Fset.Position(f.Span.Start)
		out = append(out, jsonFinding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    f.Notes,
		})
	}
	return out
}

// sortJSONFindings matches the library's resolved-position order, which
// is what lets findings cached from an earlier process merge with fresh
// ones deterministically.
func sortJSONFindings(fs []jsonFinding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Message < b.Message
	})
}

func (jf jsonFinding) format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: %s: [%s] %s (in %s)",
		jf.File, jf.Line, jf.Column, jf.Severity, jf.Kind, jf.Message, jf.Function)
	for _, n := range jf.Notes {
		fmt.Fprintf(&b, "\n    note: %s", n)
	}
	return b.String()
}

// runIncremental is the -incremental entry point: analyze dir reusing as
// much of the previous run (recorded in the state file) as the diff
// allows. Three outcomes, decided by comparing hashes:
//
//   - nothing changed: replay the cached findings without analyzing;
//   - only function bodies changed (every file's interface hash is
//     intact): run the frontend, then re-run the local detectors only
//     over the dirty callgraph closure and merge cached findings for
//     every other root;
//   - anything else (first run, state version bump, file added/removed,
//     interface edit): full analysis, which reseeds the state.
//
// Whatever the path, the returned findings equal a from-scratch
// `rustprobe dir` of the same tree; the state file is advisory and a
// corrupt or stale one only costs a full run.
func runIncremental(dir, statePath string, out io.Writer) ([]jsonFinding, string, error) {
	files, err := rustprobe.LoadDir(dir)
	if err != nil {
		return nil, "", err
	}
	cur := contentHashes(files)
	prev := loadIncrState(statePath)

	if prev != nil && mapsEqual(prev.Files, cur) {
		return prev.Findings, fmt.Sprintf("unchanged: replayed %d cached finding(s), 0 functions re-analyzed", len(prev.Findings)), nil
	}

	res, err := rustprobe.AnalyzeFiles(files)
	if err != nil {
		return nil, "", err
	}
	ifaces := res.FileInterfaceHashes()
	fnBodies := res.FuncBodyHashes()
	fnPos := res.FuncDeclPositions()

	// Body-only diff? Then the previous run's per-root local findings are
	// still valid outside the dirty closure. (States from before the
	// fn_pos field have a nil FnPos and fall back to a full run.)
	incremental := prev != nil &&
		sameKeys(prev.Files, cur) &&
		mapsEqual(prev.Interfaces, ifaces) &&
		sameKeys(prev.FnBodies, fnBodies) &&
		sameKeys(prev.FnPos, fnPos)

	// A function counts as changed when its body text changed OR its
	// position fingerprint did: prev.Local findings carry File/Line
	// resolved against the previous revision, so a function shifted by an
	// edit above it in the same file must be recomputed (along with its
	// transitive callers, whose cached notes can reference it) rather
	// than replayed at stale positions.
	var changed []string
	if incremental {
		for q, h := range fnBodies {
			if prev.FnBodies[q] != h || prev.FnPos[q] != fnPos[q] {
				changed = append(changed, q)
			}
		}
	} else {
		for q := range fnBodies {
			changed = append(changed, q)
		}
	}
	sort.Strings(changed)

	local, global, recomputed := res.DetectIncremental(changed)

	merged := toJSONFindings(res, local)
	newLocal := map[string][]jsonFinding{}
	for _, jf := range merged {
		newLocal[jf.Function] = append(newLocal[jf.Function], jf)
	}
	reusedFindings := 0
	if incremental {
		for root, fs := range prev.Local {
			if recomputed[root] {
				continue
			}
			newLocal[root] = fs
			merged = append(merged, fs...)
			reusedFindings += len(fs)
		}
	}
	merged = append(merged, toJSONFindings(res, global)...)
	sortJSONFindings(merged)

	st := &incrState{
		Version:    incrVersion(),
		Files:      cur,
		Interfaces: ifaces,
		FnBodies:   fnBodies,
		FnPos:      fnPos,
		Findings:   merged,
		Local:      newLocal,
	}
	if err := saveIncrState(statePath, st); err != nil {
		fmt.Fprintf(out, "rustprobe: warning: could not save state: %v\n", err)
	}

	var note string
	if incremental {
		note = fmt.Sprintf("incremental: %d function(s) changed, %d of %d re-analyzed, %d finding(s) reused",
			len(changed), len(recomputed), len(res.Bodies), reusedFindings)
	} else {
		reason := "no prior state"
		if prev != nil {
			reason = "structure changed"
		}
		note = fmt.Sprintf("full analysis (%s): %d function(s)", reason, len(res.Bodies))
	}
	return merged, note, nil
}
