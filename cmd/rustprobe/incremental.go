package main

import (
	"fmt"
	"io"

	"rustprobe"
	"rustprobe/internal/incrstate"
)

// toJSONFindings materializes findings in the shared resolved wire shape
// (incrstate.Finding), which -json emits and the state file records.
func toJSONFindings(res *rustprobe.Result, fs []rustprobe.Finding) []incrstate.Finding {
	out := make([]incrstate.Finding, 0, len(fs))
	for _, f := range fs {
		pos := res.Fset.Position(f.Span.Start)
		out = append(out, incrstate.Finding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    f.Notes,
		})
	}
	return out
}

// runIncremental is the -incremental entry point: analyze dir reusing as
// much of the previous run (recorded in the state file) as the diff
// allows. The heavy lifting lives in rustprobe.Session — the same
// restore path the daemon's session service uses — and the state file is
// the shared incrstate codec, versioned on the analyzer + detector set
// (rustprobe.StateVersion()). Three outcomes:
//
//   - nothing changed: replay the cached findings without analyzing;
//   - only function bodies changed (every file's interface hash is
//     intact): rebuild the frontend, then re-run the local detectors
//     only over the dirty callgraph closure and merge cached findings
//     for every other root;
//   - anything else (first run, state version bump, file added/removed,
//     interface edit): full analysis, which reseeds the state.
//
// Whatever the path, the returned findings equal a from-scratch
// `rustprobe dir` of the same tree; the state file is advisory and a
// corrupt or stale one only costs a full run.
func runIncremental(dir, statePath string, out io.Writer) ([]incrstate.Finding, string, error) {
	files, err := rustprobe.LoadDir(dir)
	if err != nil {
		return nil, "", err
	}
	prev := incrstate.Load(statePath, rustprobe.StateVersion())
	if prev.UnchangedFrom(files) {
		return prev.Findings, fmt.Sprintf("unchanged: replayed %d cached finding(s), 0 functions re-analyzed", len(prev.Findings)), nil
	}

	s := rustprobe.NewSession()
	if prev != nil {
		if err := s.Restore(prev); err != nil {
			prev = nil
		}
	}
	up, err := s.Analyze(files)
	if err != nil {
		return nil, "", err
	}
	st := s.ExportState()
	if err := incrstate.Save(statePath, st); err != nil {
		fmt.Fprintf(out, "rustprobe: warning: could not save state: %v\n", err)
	}

	var note string
	if up.Stats.Full {
		reason := "no prior state"
		if prev != nil {
			reason = "structure changed"
		}
		note = fmt.Sprintf("full analysis (%s): %d function(s)", reason, up.Stats.FuncsTotal)
	} else {
		note = fmt.Sprintf("incremental: %d function(s) changed, %d of %d re-analyzed, %d finding(s) reused",
			up.Stats.ChangedFns, up.Stats.RootsDetected, up.Stats.FuncsTotal, up.Stats.FindingsReused)
	}
	return st.Findings, note, nil
}
