// Command rustprobe parses Rust-subset sources, lowers them to MIR, and
// runs the paper's static bug detectors over them.
//
// Usage:
//
//	rustprobe [flags] [path ...]
//
//	rustprobe file.rs                 # run all detectors on one file
//	rustprobe -detect uaf,double-lock src/
//	rustprobe -corpus detector-eval   # run on the embedded §7 corpus
//	rustprobe -mir 'Engine::step' file.rs   # dump a function's MIR
//	rustprobe -fail-on-findings src/  # CI gate: exit 2 when findings exist
//	rustprobe -selftest               # differential self-check over 200 seeds
//	rustprobe -incremental src/       # re-analyze only what changed since last run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rustprobe"
	"rustprobe/internal/difftest"
	"rustprobe/internal/interp"
	"rustprobe/internal/visualize"
)

func main() {
	var (
		detectors = flag.String("detect", "", "comma-separated detector names (default: all); available: "+strings.Join(rustprobe.DetectorNames(), ", "))
		corpusGrp = flag.String("corpus", "", "analyze an embedded corpus group (detector-eval, patterns, unsafe, all) instead of paths")
		mirDump   = flag.String("mir", "", "dump the MIR of the named function and exit")
		explain   = flag.String("explain", "", "render the named function's source annotated with lifetime events (acquire/implicit-unlock/drop) and exit")
		dynamic   = flag.Bool("dynamic", false, "run the bounded dynamic explorer (Miri-style) instead of the static detectors")
		asJSON    = flag.Bool("json", false, "emit findings as JSON")
		failOn    = flag.Bool("fail-on-findings", false, "exit with code 2 when any finding (or dynamic error) is reported, for use as a CI gate")
		list      = flag.Bool("list", false, "list available detectors and exit")
		selftest  = flag.Bool("selftest", false, "run the differential self-check (seeded bug-injecting generator vs static detectors vs dynamic oracle) and exit; non-zero on any violation")
		seeds     = flag.Int64("seeds", 200, "seed count for -selftest")
		incr      = flag.Bool("incremental", false, "analyze a directory incrementally, persisting hashes and findings to a state file so unchanged functions are not re-analyzed on the next run")
		stateFile = flag.String("state", "", "state file for -incremental (default: <dir>/.rustprobe-state.json)")
		precise   = flag.Bool("precise", false, "enable the SafeDrop-style path-sensitive precise mode: memory-detector findings refuted by the shared drop-and-alias analysis are suppressed (also applies to -selftest)")
	)
	flag.Parse()

	if *list {
		for _, n := range rustprobe.DetectorNames() {
			fmt.Println(n)
		}
		return
	}

	if *selftest {
		s := difftest.RunMode(0, *seeds, *precise)
		fmt.Print(s.Table())
		if v := s.Violations(); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "rustprobe: selftest failed with %d violation(s)\n", len(v))
			os.Exit(2)
		}
		return
	}

	if *incr {
		if *detectors != "" || *dynamic || *mirDump != "" || *explain != "" || *corpusGrp != "" {
			fmt.Fprintln(os.Stderr, "rustprobe: -incremental always runs the full detector suite over a directory; it cannot be combined with -detect, -dynamic, -mir, -explain or -corpus")
			os.Exit(1)
		}
		if len(flag.Args()) != 1 {
			fmt.Fprintln(os.Stderr, "rustprobe: -incremental needs exactly one directory argument")
			os.Exit(1)
		}
		dir := flag.Arg(0)
		statePath := *stateFile
		if statePath == "" {
			statePath = filepath.Join(dir, ".rustprobe-state.json")
		}
		findings, note, err := runIncremental(dir, statePath, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(findings); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		} else {
			for _, f := range findings {
				fmt.Println(f.Format())
			}
			fmt.Printf("%d finding(s); %s\n", len(findings), note)
		}
		if *failOn && len(findings) > 0 {
			os.Exit(2)
		}
		return
	}

	res, err := load(*corpusGrp, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.Precise = *precise

	if *mirDump != "" {
		body := res.MIR(*mirDump)
		if body == nil {
			fmt.Fprintf(os.Stderr, "rustprobe: no function %q; available:\n", *mirDump)
			for _, fd := range res.Program.SortedFuncs() {
				fmt.Fprintf(os.Stderr, "  %s\n", fd.Qualified)
			}
			os.Exit(1)
		}
		fmt.Print(body.String())
		return
	}

	if *explain != "" {
		body := res.MIR(*explain)
		if body == nil {
			fmt.Fprintf(os.Stderr, "rustprobe: no function %q\n", *explain)
			os.Exit(1)
		}
		fmt.Print(visualize.Render(body, res.Fset))
		for lock, rng := range visualize.CriticalSections(body, res.Fset) {
			fmt.Printf("critical section of %q: lines %d-%d\n", lock, rng[0], rng[1])
		}
		return
	}

	if *dynamic {
		total := 0
		for _, r := range interp.RunAll(res.Bodies, interp.Config{}) {
			for _, e := range r.Errors {
				pos := res.Fset.Position(e.Span.Start)
				fmt.Printf("%s: %s\n", pos, e)
				total++
			}
		}
		fmt.Printf("%d dynamic error(s)\n", total)
		if *failOn && total > 0 {
			os.Exit(2)
		}
		return
	}

	var names []string
	if *detectors != "" {
		names = strings.Split(*detectors, ",")
	}
	findings := res.Detect(names...)
	if *asJSON {
		emitJSON(res, findings)
	} else {
		for _, f := range findings {
			fmt.Println(f.Format(res.Fset))
		}
		fmt.Printf("%d finding(s)\n", len(findings))
	}
	if *failOn && len(findings) > 0 {
		os.Exit(2)
	}
}

func emitJSON(res *rustprobe.Result, findings []rustprobe.Finding) {
	out := toJSONFindings(res, findings)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func load(corpusGrp string, paths []string) (*rustprobe.Result, error) {
	if corpusGrp != "" {
		return rustprobe.AnalyzeCorpus(corpusGrp)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("rustprobe: no input; pass .rs files, a directory, or -corpus")
	}
	files := map[string]string{}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			return rustprobe.AnalyzeDir(p)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		files[p] = string(data)
	}
	return rustprobe.AnalyzeFiles(files)
}
