// Command unsafescan reproduces the paper's §4 unsafe-usage study over a
// directory of Rust-subset sources (or the embedded corpus): counts of
// unsafe regions/functions/traits, operation-kind and purpose breakdowns,
// removable markers, and the interior-unsafe encapsulation audit.
package main

import (
	"flag"
	"fmt"
	"os"

	"rustprobe"
	"rustprobe/internal/advisor"
	"rustprobe/internal/unsafety"
)

func main() {
	corpusGrp := flag.String("corpus", "", "scan an embedded corpus group instead of paths")
	verbose := flag.Bool("v", false, "list every usage site")
	advise := flag.Bool("advise", false, "emit prioritized advice (paper section 8) from the scan and the detectors")
	diff := flag.Bool("diff", false, "compare two directories (before after): classify unsafe removals as in paper section 4.2")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: unsafescan -diff <before-dir> <after-dir>")
			os.Exit(1)
		}
		before, err := rustprobe.AnalyzeDir(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		after, err := rustprobe.AnalyzeDir(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep := unsafety.CompareScans(before.ScanUnsafe(), after.ScanUnsafe())
		fmt.Print(rep.String())
		return
	}

	var res *rustprobe.Result
	var err error
	if *corpusGrp != "" {
		res, err = rustprobe.AnalyzeCorpus(*corpusGrp)
	} else if flag.NArg() == 1 {
		res, err = rustprobe.AnalyzeDir(flag.Arg(0))
	} else {
		err = fmt.Errorf("usage: unsafescan [-v] <dir> | unsafescan -corpus <group>")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := res.ScanUnsafe()
	fmt.Printf("unsafe usages: %d (%d regions, %d fns, %d traits; %d unsafe impls)\n",
		rep.TotalUsages(), rep.Regions, rep.Fns, rep.Traits, rep.Impls)

	fmt.Println("operations:")
	ops := rep.CountOps()
	for _, k := range []unsafety.OpKind{unsafety.OpRawPointer, unsafety.OpStaticMut, unsafety.OpCallUnsafe, unsafety.OpUnsafeTrait, unsafety.OpUnionField, unsafety.OpNoOp} {
		if ops[k] > 0 {
			fmt.Printf("  %-16s %d\n", k, ops[k])
		}
	}
	fmt.Println("purposes:")
	purposes := rep.CountPurposes()
	for _, p := range []unsafety.Purpose{unsafety.PurposeReuse, unsafety.PurposePerf, unsafety.PurposeSharing, unsafety.PurposeOther} {
		if purposes[p] > 0 {
			fmt.Printf("  %-16s %d\n", p, purposes[p])
		}
	}

	removable := rep.Removable()
	fmt.Printf("removable markers (no unsafe operation inside): %d\n", len(removable))
	for _, u := range removable {
		pos := res.Fset.Position(u.Span.Start)
		label := ""
		if u.CtorLabel {
			label = " (constructor label)"
		}
		fmt.Printf("  %s %s%s\n", pos, u.Function, label)
	}

	fmt.Printf("interior-unsafe functions: %d (%d without explicit checks)\n",
		len(rep.InteriorFns), len(rep.UncheckedInterior()))
	for _, f := range rep.InteriorFns {
		check := "unchecked"
		if f.ExplicitCheck {
			check = "checked"
		}
		fmt.Printf("  %-32s %s (%d unsafe region(s))\n", f.Name, check, f.UnsafeRegions)
	}

	if *advise {
		findings := res.Detect()
		advice := advisor.Advise(rep, findings)
		fmt.Println("\nadvice:")
		for _, a := range advice {
			fmt.Println("  " + a.Format(res.Fset))
		}
		fmt.Println(advisor.Summary(advice))
	}

	if *verbose {
		fmt.Println("all usages:")
		for _, u := range rep.Usages {
			pos := res.Fset.Position(u.Span.Start)
			fmt.Printf("  %s %-7s %-14s ops=%v\n", pos, u.Kind, u.Purpose, u.Ops)
		}
	}
}
