// Command bugstudy regenerates every table and figure of the paper from
// the study database and the corpus-measured detector results.
//
// Usage:
//
//	bugstudy -all
//	bugstudy -table 2
//	bugstudy -figure 1
//	bugstudy -section unsafe|removals|interior|memfix|blkfix|nblkfix|detectors|mining
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rustprobe"
	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/race"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/report"
	"rustprobe/internal/study"
)

func main() {
	var (
		table   = flag.Int("table", 0, "print table N (1-4)")
		figure  = flag.Int("figure", 0, "print figure N (1-2)")
		section = flag.String("section", "", "print a text-section report")
		all     = flag.Bool("all", false, "print everything")
		csvOut  = flag.String("csv", "", "write a figure's data series as CSV: figure1 or figure2")
		precise = flag.Bool("precise", false, "with -section detectors (or -all): also measure the SafeDrop-style precise UAF mode and print the §7 precision delta")
	)
	flag.Parse()

	db := study.Build()
	printed := false

	emitTable := func(n int) {
		printed = true
		switch n {
		case 1:
			fmt.Print(report.Table1(db))
		case 2:
			fmt.Print(report.Table2(db))
		case 3:
			fmt.Print(report.Table3(db))
		case 4:
			fmt.Print(report.Table4(db))
		default:
			fmt.Fprintf(os.Stderr, "bugstudy: no table %d\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}
	emitFigure := func(n int) {
		printed = true
		switch n {
		case 1:
			fmt.Print(report.Figure1())
		case 2:
			fmt.Print(report.Figure2(db))
		default:
			fmt.Fprintf(os.Stderr, "bugstudy: no figure %d\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}
	emitSection := func(name string) {
		printed = true
		switch name {
		case "unsafe":
			fmt.Print(report.UnsafeUsageSection())
		case "removals":
			fmt.Print(report.RemovalSection())
		case "interior":
			fmt.Print(report.InteriorSection())
		case "memfix":
			fmt.Print(report.MemFixSection(db))
		case "blkfix":
			fmt.Print(report.BlkFixSection(db))
		case "nblkfix":
			fmt.Print(report.NBlkFixSection(db))
		case "detectors":
			uafTP, uafFP, dlTP, dlFP := measureDetectors()
			raceTP, raceFP := measureRaceDetector()
			blkTP, blkFP := measureBlockingDetector()
			fmt.Print(report.DetectorSection(uafTP, uafFP, dlTP, dlFP, raceTP, raceFP, blkTP, blkFP))
			if *precise {
				preTP, preFP := measurePreciseUAF()
				fmt.Println()
				fmt.Print(report.DetectorPreciseSection(uafTP, uafFP, preTP, preFP))
			}
		case "insights":
			fmt.Print(report.InsightsSection())
		case "mining":
			commits := corpus.SyntheticCommits(db)
			_, funnel := study.Mine(commits)
			fmt.Printf("Section 3. Commit mining funnel.\n")
			fmt.Printf("  commits scanned   %5d\n", funnel.Total)
			fmt.Printf("  keyword survivors %5d\n", funnel.Filtered)
			fmt.Printf("  by class: memory %d, blocking %d, non-blocking %d\n",
				funnel.ByClass[study.MemoryBug], funnel.ByClass[study.BlockingBug], funnel.ByClass[study.NonBlockingBug])
		default:
			fmt.Fprintf(os.Stderr, "bugstudy: unknown section %q\n", name)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *csvOut != "" {
		emitCSV(db, *csvOut)
		return
	}

	if *all {
		for n := 1; n <= 4; n++ {
			emitTable(n)
		}
		for n := 1; n <= 2; n++ {
			emitFigure(n)
		}
		for _, s := range []string{"unsafe", "removals", "interior", "memfix", "blkfix", "nblkfix", "insights", "mining", "detectors"} {
			emitSection(s)
		}
		return
	}
	if *table != 0 {
		emitTable(*table)
	}
	if *figure != 0 {
		emitFigure(*figure)
	}
	if *section != "" {
		emitSection(*section)
	}
	if !printed {
		flag.Usage()
		os.Exit(2)
	}
}

// emitCSV writes a figure's underlying series for external plotting.
func emitCSV(db *study.Database, which string) {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch which {
	case "figure1":
		w.Write([]string{"version", "date", "feature_changes", "kloc"})
		for _, r := range study.ReleaseHistory {
			w.Write([]string{r.Version, r.Date.Format("2006-01-02"),
				strconv.Itoa(r.Changes), strconv.Itoa(r.KLOC)})
		}
	case "figure2":
		projs := append(append([]study.Project{}, study.Projects...), study.Advisories)
		header := []string{"quarter"}
		for _, p := range projs {
			header = append(header, p.String())
		}
		w.Write(header)
		for _, b := range db.Figure2Buckets() {
			row := []string{fmt.Sprintf("%d-Q%d", b.Start.Year(), (int(b.Start.Month())-1)/3+1)}
			for _, p := range projs {
				row = append(row, strconv.Itoa(b.Counts[p]))
			}
			w.Write(row)
		}
	default:
		fmt.Fprintf(os.Stderr, "bugstudy: unknown csv target %q (figure1, figure2)\n", which)
		os.Exit(1)
	}
}

// measureDetectors runs the two §7 detectors over the evaluation corpus
// and splits findings into true/false positives by the corpus's naming
// convention (fp_* functions are the planted false-positive patterns;
// *_fixed and other clean variants count as false positives for the
// double-lock detector).
func measureDetectors() (uafTP, uafFP, dlTP, dlFP int) {
	res, err := rustprobe.AnalyzeCorpus("detector-eval")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := res.Context()
	for _, f := range uaf.New().Run(ctx) {
		if f.Kind != detect.KindUseAfterFree {
			continue
		}
		if strings.Contains(f.Function, "fp_") {
			uafFP++
		} else {
			uafTP++
		}
	}
	for _, f := range doublelock.New().Run(ctx) {
		if f.Kind != detect.KindDoubleLock {
			continue
		}
		if strings.Contains(f.Function, "fixed") {
			dlFP++
		} else {
			dlTP++
		}
	}
	return
}

// measurePreciseUAF reruns the §7 UAF measurement with the path-sensitive
// precise detector, splitting by the same fp_ naming convention.
func measurePreciseUAF() (tp, fp int) {
	res, err := rustprobe.AnalyzeCorpus("detector-eval")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range uaf.NewPrecise().Run(res.Context()) {
		if f.Kind != detect.KindUseAfterFree {
			continue
		}
		if strings.Contains(f.Function, "fp_") {
			fp++
		} else {
			tp++
		}
	}
	return
}

// measureRaceDetector runs the §6.2 data-race detector over the patterns
// corpus, which seeds one racy sharing shape per studied project next to
// its synchronized fix; findings in *_fixed (or other clean) functions
// count as false positives.
func measureRaceDetector() (raceTP, raceFP int) {
	res, err := rustprobe.AnalyzeCorpus("patterns")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range race.New().Run(res.Context()) {
		if f.Kind != detect.KindDataRace {
			continue
		}
		if strings.Contains(f.Function, "fixed") || strings.Contains(f.Function, "fp_") {
			raceFP++
		} else {
			raceTP++
		}
	}
	return
}

// measureBlockingDetector runs the §6.1 blocking-bug detector over the
// patterns corpus, which seeds the channel hold-and-wait, orphaned-recv,
// condvar lost-signal, and Once-reentrancy shapes next to their fixed
// variants; findings in *_fixed (or other clean) functions count as
// false positives.
func measureBlockingDetector() (blkTP, blkFP int) {
	res, err := rustprobe.AnalyzeCorpus("patterns")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range blocking.New().Run(res.Context()) {
		if f.Kind != detect.KindBlocking {
			continue
		}
		if strings.Contains(f.Function, "fixed") || strings.Contains(f.Function, "fp_") {
			blkFP++
		} else {
			blkTP++
		}
	}
	return
}
