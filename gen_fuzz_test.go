package rustprobe

import (
	"testing"

	"rustprobe/internal/gen"
	"rustprobe/internal/interp"
)

// FuzzGen drives the seeded generator from arbitrary seeds: every
// generated program — buggy or clean — must make it through parse →
// resolve → lower → every static detector → the dynamic explorer with no
// panic, and must be diagnostics-clean (the generator only emits
// well-formed programs, so any diagnostic is a generator bug). Run under
// CI as a smoke step: go test -run=^$ -fuzz=FuzzGen -fuzztime=30s .
func FuzzGen(f *testing.F) {
	for seed := int64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	// One explicit seed per kind and variant so the corpus always covers
	// the full injection menu even before the fuzzer mutates anything.
	f.Add(int64(1 << 20))
	f.Add(int64(-1))
	f.Add(int64(1) << 40)
	f.Fuzz(func(t *testing.T, seed int64) {
		p := gen.Generate(seed)
		res, err := AnalyzeSource("gen.rs", p.Source)
		if err != nil {
			t.Fatalf("%s: generated program has diagnostics: %v\n%s", p, err, p.Source)
		}
		res.Detect()
		interp.RunAll(res.Bodies, interp.Config{MaxSteps: 1024, MaxPaths: 32})
	})
}
