// Quickstart: analyze a Rust snippet with the public API and print every
// finding. This is the double-lock bug of the paper's Figure 8 (TiKV):
// the read guard acquired in the match scrutinee lives until the end of
// the match, so the write() in the Ok arm deadlocks.
package main

import (
	"fmt"
	"log"

	"rustprobe"
)

const src = `
struct Inner { m: i32 }

fn connect(m: i32) -> Result<i32, i32> { Ok(m) }

pub fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`

func main() {
	res, err := rustprobe.AnalyzeSource("figure8.rs", src)
	if err != nil {
		log.Fatal(err)
	}

	findings := res.Detect()
	fmt.Printf("rustprobe found %d issue(s):\n\n", len(findings))
	for _, f := range findings {
		fmt.Println(f.Format(res.Fset))
	}

	// The MIR behind the diagnosis: guard drops at the end of the match.
	fmt.Println("\nLowered MIR of do_request:")
	fmt.Print(res.MIR("do_request").String())
}
