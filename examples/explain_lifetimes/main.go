// explain_lifetimes demonstrates the paper's Suggestion 6 (IDE tools that
// visualize critical sections and implicit unlocks) and its "dynamic
// detectors" direction: it renders Figure 8's source annotated with every
// lifetime event, then cross-checks the static double-lock diagnosis with
// the bounded dynamic explorer.
package main

import (
	"fmt"
	"log"

	"rustprobe"
	"rustprobe/internal/interp"
	"rustprobe/internal/visualize"
)

const src = `
struct Inner { m: i32 }

fn connect(m: i32) -> Result<i32, i32> { Ok(m) }

pub fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`

func main() {
	res, err := rustprobe.AnalyzeSource("figure8.rs", src)
	if err != nil {
		log.Fatal(err)
	}
	body := res.MIR("do_request")

	// 1. The IDE view: where the guard is acquired and implicitly
	// released. The RELEASE annotation at the match's closing brace is
	// precisely the invisible semantics the buggy code misjudged.
	fmt.Print(visualize.Render(body, res.Fset))
	for lock, rng := range visualize.CriticalSections(body, res.Fset) {
		fmt.Printf("\ncritical section of %q spans lines %d-%d\n", lock, rng[0], rng[1])
	}

	// 2. The dynamic cross-check: the bounded path explorer hits the
	// deadlock on the Ok path and reports the branch trace.
	fmt.Println("\ndynamic exploration:")
	r := interp.Run(body, interp.Config{})
	for _, e := range r.Errors {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("  (%d paths explored)\n", r.Paths)
}
