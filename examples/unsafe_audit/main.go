// unsafe_audit reproduces the paper's §4 methodology on the embedded
// unsafe-usage corpus: count unsafe regions/functions/traits, classify
// their operations and purposes, flag removable markers (including the
// constructor-labelling idiom), and audit interior-unsafe functions for
// explicit precondition checks.
package main

import (
	"fmt"
	"log"

	"rustprobe"
	"rustprobe/internal/unsafety"
)

func main() {
	res, err := rustprobe.AnalyzeCorpus("unsafe")
	if err != nil {
		log.Fatal(err)
	}
	rep := res.ScanUnsafe()

	fmt.Printf("unsafe usages: %d (%d regions, %d fns, %d traits)\n",
		rep.TotalUsages(), rep.Regions, rep.Fns, rep.Traits)

	fmt.Println("\nwhy unsafe is used (§4.1 taxonomy):")
	for p, n := range rep.CountPurposes() {
		fmt.Printf("  %-16s %d\n", p, n)
	}

	fmt.Println("\nremovable unsafe markers (the 5% class):")
	for _, u := range rep.Removable() {
		kind := "consistency/warning"
		if u.CtorLabel {
			kind = "constructor label (String::from_utf8_unchecked idiom)"
		}
		fmt.Printf("  %-36s %s\n", u.Function, kind)
	}

	fmt.Println("\ninterior-unsafe encapsulation audit (§4.3):")
	for _, f := range rep.InteriorFns {
		verdict := "relies on caller environment (58% class)"
		if f.ExplicitCheck {
			verdict = "explicit precondition check"
		}
		fmt.Printf("  %-36s %s\n", f.Name, verdict)
	}
	_ = unsafety.OpRawPointer // keep the taxonomy import for docs readers
}
