// detect_uaf walks the paper's §7.1 evaluation: it runs the
// use-after-free detector over the embedded Redox-style corpus and
// separates the four true positives from the three planted
// false-positive patterns, mirroring Table-free §7.1 numbers.
package main

import (
	"fmt"
	"log"
	"strings"

	"rustprobe"
)

func main() {
	res, err := rustprobe.AnalyzeCorpus("detector-eval")
	if err != nil {
		log.Fatal(err)
	}

	findings := res.Detect("use-after-free")
	var tp, fp int
	fmt.Println("use-after-free findings on the evaluation corpus:")
	for _, f := range findings {
		tag := "TRUE POSITIVE "
		if strings.Contains(f.Function, "fp_") {
			tag = "FALSE POSITIVE"
			fp++
		} else {
			tp++
		}
		fmt.Printf("  [%s] %s\n", tag, f.Format(res.Fset))
	}
	fmt.Printf("\npaper (§7.1): 4 previously-unknown bugs, 3 false positives\n")
	fmt.Printf("measured:     %d previously-unknown bugs, %d false positives\n", tp, fp)
}
