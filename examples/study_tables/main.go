// study_tables regenerates the paper's headline artifacts in one run:
// Tables 1-4 and Figure 2 from the bug database, and the §3 mining funnel
// over synthetic commit histories.
package main

import (
	"fmt"

	"rustprobe/internal/corpus"
	"rustprobe/internal/report"
	"rustprobe/internal/study"
)

func main() {
	db := study.Build()

	fmt.Print(report.Table1(db))
	fmt.Println()
	fmt.Print(report.Table2(db))
	fmt.Println()
	fmt.Print(report.Table3(db))
	fmt.Println()
	fmt.Print(report.Table4(db))
	fmt.Println()
	fmt.Print(report.Figure2(db))
	fmt.Println()

	commits := corpus.SyntheticCommits(db)
	cands, funnel := study.Mine(commits)
	fmt.Printf("§3 mining: %d commits -> %d candidates (%d memory, %d blocking, %d non-blocking)\n",
		funnel.Total, funnel.Filtered,
		funnel.ByClass[study.MemoryBug], funnel.ByClass[study.BlockingBug], funnel.ByClass[study.NonBlockingBug])
	fmt.Printf("first candidate: %s %q\n", cands[0].Commit.Hash, cands[0].Commit.Message)
}
