// detect_deadlock reproduces §7.2: the double-lock detector over the
// parity-ethereum-style corpus (six bugs across intra-procedural,
// inter-procedural, match-scrutinee, if-condition, RwLock-upgrade and
// loop shapes), plus the conflicting-lock-order companion detector.
package main

import (
	"fmt"
	"log"

	"rustprobe"
)

func main() {
	res, err := rustprobe.AnalyzeCorpus("detector-eval")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("double-lock findings:")
	dl := res.Detect("double-lock")
	for _, f := range dl {
		fmt.Println("  " + f.Format(res.Fset))
	}
	fmt.Printf("paper (§7.2): 6 bugs, 0 false positives; measured: %d findings\n\n", len(dl))

	// The AB-BA companion analysis over the pattern corpus.
	pat, err := rustprobe.AnalyzeCorpus("patterns")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conflicting-lock-order findings on the pattern corpus:")
	for _, f := range pat.Detect("conflicting-lock-order") {
		fmt.Println("  " + f.Format(pat.Fset))
	}
}
