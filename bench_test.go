package rustprobe

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Table/figure benches
// rebuild the study database and render the artifact; the §4.1 benches
// measure the checked-vs-unchecked access and copy gaps the paper reports
// (4-5x and ~23%); the §7 benches time the two detectors over the
// evaluation corpus.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"strings"
	"testing"

	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/lower"
	"rustprobe/internal/report"
	"rustprobe/internal/rtsim"
	"rustprobe/internal/study"
	"rustprobe/internal/unsafety"
)

// --- Tables 1-4 and Figures 1-2 --------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if len(report.Table1(db)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Table2(db), "70") {
			b.Fatal("table 2 lost its total")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Table3(db), "59") {
			b.Fatal("table 3 lost its total")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if len(report.Table4(db)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(report.Figure1(), "Stable since") {
			b.Fatal("figure 1 malformed")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Figure2(db), "145 of 170") {
			b.Fatal("figure 2 lost its headline")
		}
	}
}

// --- §3 mining funnel -------------------------------------------------------

func BenchmarkMiningPipeline(b *testing.B) {
	db := study.Build()
	commits := corpus.SyntheticCommits(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, funnel := study.Mine(commits)
		if funnel.Filtered != 170 {
			b.Fatalf("funnel = %+v", funnel)
		}
	}
}

// --- §4 unsafe scanner ------------------------------------------------------

func BenchmarkUnsafeScan(b *testing.B) {
	res, err := AnalyzeCorpus("unsafe")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := unsafety.Scan(res.Program)
		if rep.TotalUsages() == 0 {
			b.Fatal("no usages")
		}
	}
}

// --- §4.1 performance claims ------------------------------------------------

const perfN = 64 * 1024

// BenchmarkCheckedAccess is the safe `slice[i]` baseline: the paper
// measures unchecked access 4-5x faster.
func BenchmarkCheckedAccess(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumChecked()
	}
	_ = sink
}

// BenchmarkUncheckedAccess is `slice::get_unchecked`.
func BenchmarkUncheckedAccess(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumUnchecked()
	}
	_ = sink
}

// BenchmarkPointerTraversal is ptr::offset-style traversal.
func BenchmarkPointerTraversal(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumPointer()
	}
	_ = sink
}

// BenchmarkCopyFromSlice is the safe slice::copy_from_slice model, swept
// over sizes: the paper's ~23% unsafe win concentrates at small copies
// where the length-check branch dominates.
func BenchmarkCopyFromSlice(b *testing.B) {
	for _, size := range rtsim.CopySweepSizes {
		b.Run(fmtSize(size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				rtsim.CopyFromSlice(dst, src)
			}
		})
	}
}

// BenchmarkCopyNonoverlapping is the unsafe ptr::copy_nonoverlapping
// model (paper: ~23% faster in some cases).
func BenchmarkCopyNonoverlapping(b *testing.B) {
	for _, size := range rtsim.CopySweepSizes {
		b.Run(fmtSize(size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				rtsim.CopyNonoverlapping(dst, src)
			}
		})
	}
}

func fmtSize(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKiB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// --- §7 detectors -----------------------------------------------------------

func evalCtx(b *testing.B) *detect.Context {
	b.Helper()
	prog, diags, err := corpus.Load(corpus.GroupDetectorEval)
	if err != nil {
		b.Fatal(err)
	}
	bodies := lower.Program(prog, diags)
	return detect.NewContext(prog, bodies)
}

func BenchmarkDetectUAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := evalCtx(b)
		b.StartTimer()
		findings := uaf.New().Run(ctx)
		if len(findings) != study.UAFBugsFound+study.UAFFalsePositives {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

func BenchmarkDetectDoubleLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := evalCtx(b)
		b.StartTimer()
		findings := doublelock.New().Run(ctx)
		if len(findings) != study.DoubleLockBugsFound {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

// BenchmarkFrontend times the full parse+resolve+lower pipeline over the
// whole corpus (the compiler-side cost of an analysis run).
func BenchmarkFrontend(b *testing.B) {
	files, err := corpus.Files(corpus.GroupAll)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, f := range files {
		total += len(f.Content)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := corpus.Load(corpus.GroupAll); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullAnalysis times end-to-end analysis incl. every detector.
func BenchmarkFullAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AnalyzeCorpus("all")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Detect()) == 0 {
			b.Fatal("no findings on the buggy corpus")
		}
	}
}
