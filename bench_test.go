package rustprobe_test

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Table/figure benches
// rebuild the study database and render the artifact; the §4.1 benches
// measure the checked-vs-unchecked access and copy gaps the paper reports
// (4-5x and ~23%); the §7 benches time the two detectors over the
// evaluation corpus; the engine benches compare serial analysis against
// the concurrent engine on the same job set.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"rustprobe"
	"rustprobe/internal/callgraph"
	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/race"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/engine"
	"rustprobe/internal/lower"
	"rustprobe/internal/report"
	"rustprobe/internal/rtsim"
	"rustprobe/internal/study"
	"rustprobe/internal/summary"
	"rustprobe/internal/unsafety"
)

// --- Tables 1-4 and Figures 1-2 --------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if len(report.Table1(db)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Table2(db), "70") {
			b.Fatal("table 2 lost its total")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Table3(db), "59") {
			b.Fatal("table 3 lost its total")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if len(report.Table4(db)) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(report.Figure1(), "Stable since") {
			b.Fatal("figure 1 malformed")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		db := study.Build()
		if !strings.Contains(report.Figure2(db), "145 of 170") {
			b.Fatal("figure 2 lost its headline")
		}
	}
}

// --- §3 mining funnel -------------------------------------------------------

func BenchmarkMiningPipeline(b *testing.B) {
	db := study.Build()
	commits := corpus.SyntheticCommits(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, funnel := study.Mine(commits)
		if funnel.Filtered != 170 {
			b.Fatalf("funnel = %+v", funnel)
		}
	}
}

// --- §4 unsafe scanner ------------------------------------------------------

func BenchmarkUnsafeScan(b *testing.B) {
	res, err := rustprobe.AnalyzeCorpus("unsafe")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := unsafety.Scan(res.Program)
		if rep.TotalUsages() == 0 {
			b.Fatal("no usages")
		}
	}
}

// --- §4.1 performance claims ------------------------------------------------

const perfN = 64 * 1024

// BenchmarkCheckedAccess is the safe `slice[i]` baseline: the paper
// measures unchecked access 4-5x faster.
func BenchmarkCheckedAccess(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumChecked()
	}
	_ = sink
}

// BenchmarkUncheckedAccess is `slice::get_unchecked`.
func BenchmarkUncheckedAccess(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumUnchecked()
	}
	_ = sink
}

// BenchmarkPointerTraversal is ptr::offset-style traversal.
func BenchmarkPointerTraversal(b *testing.B) {
	s := rtsim.NewSlice(perfN)
	b.SetBytes(perfN)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.SumPointer()
	}
	_ = sink
}

// BenchmarkCopyFromSlice is the safe slice::copy_from_slice model, swept
// over sizes: the paper's ~23% unsafe win concentrates at small copies
// where the length-check branch dominates.
func BenchmarkCopyFromSlice(b *testing.B) {
	for _, size := range rtsim.CopySweepSizes {
		b.Run(fmtSize(size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				rtsim.CopyFromSlice(dst, src)
			}
		})
	}
}

// BenchmarkCopyNonoverlapping is the unsafe ptr::copy_nonoverlapping
// model (paper: ~23% faster in some cases).
func BenchmarkCopyNonoverlapping(b *testing.B) {
	for _, size := range rtsim.CopySweepSizes {
		b.Run(fmtSize(size), func(b *testing.B) {
			src := make([]byte, size)
			dst := make([]byte, size)
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				rtsim.CopyNonoverlapping(dst, src)
			}
		})
	}
}

func fmtSize(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKiB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// --- §7 detectors -----------------------------------------------------------

func evalCtx(b *testing.B) *detect.Context {
	b.Helper()
	prog, diags, err := corpus.Load(corpus.GroupDetectorEval)
	if err != nil {
		b.Fatal(err)
	}
	bodies := lower.Program(prog, diags)
	return detect.NewContext(prog, bodies)
}

func BenchmarkDetectUAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := evalCtx(b)
		b.StartTimer()
		findings := uaf.New().Run(ctx)
		if len(findings) != study.UAFBugsFound+study.UAFFalsePositives {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

func BenchmarkDetectDoubleLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := evalCtx(b)
		b.StartTimer()
		findings := doublelock.New().Run(ctx)
		if len(findings) != study.DoubleLockBugsFound {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

// BenchmarkDetectRace times the §6.2 data-race detector (thread-escape +
// inter-procedural locksets + pairing) over the patterns corpus, where it
// must find exactly the five seeded races.
func BenchmarkDetectRace(b *testing.B) {
	prog, diags, err := corpus.Load(corpus.GroupPatterns)
	if err != nil {
		b.Fatal(err)
	}
	bodies := lower.Program(prog, diags)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := detect.NewContext(prog, bodies)
		b.StartTimer()
		findings := race.New().Run(ctx)
		if len(findings) != study.RaceBugsFound {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

// BenchmarkDetectBlocking times the §6.1 wait-for-graph blocking-bug
// detector (channel hold-and-wait, orphaned recv, condvar lost signal,
// Once reentrancy) over the patterns corpus, where it must find exactly
// the six seeded blocking bugs and stay silent on their negative pairs.
func BenchmarkDetectBlocking(b *testing.B) {
	prog, diags, err := corpus.Load(corpus.GroupPatterns)
	if err != nil {
		b.Fatal(err)
	}
	bodies := lower.Program(prog, diags)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctx := detect.NewContext(prog, bodies)
		b.StartTimer()
		findings := blocking.New().Run(ctx)
		if len(findings) != study.BlockingBugsFound {
			b.Fatalf("findings = %d", len(findings))
		}
	}
}

// BenchmarkSummaryFixpoint isolates the SCC-fixpoint summary framework
// both detectors build on: a lockset-style union transfer over the whole
// corpus call graph (including the recursive registry_cycle SCC).
func BenchmarkSummaryFixpoint(b *testing.B) {
	prog, diags, err := corpus.Load(corpus.GroupAll)
	if err != nil {
		b.Fatal(err)
	}
	bodies := lower.Program(prog, diags)
	g := callgraph.Build(bodies)
	prob := &summary.Problem[map[string]bool]{
		Bottom: func(string) map[string]bool { return nil },
		Transfer: func(fn string, get summary.Lookup[map[string]bool]) map[string]bool {
			out := map[string]bool{fn: true}
			for _, e := range g.Callees[fn] {
				s, _ := get(e.Callee)
				for k := range s {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := summary.Compute(g, prob)
		if len(res.Summaries) == 0 || res.TruncatedSCCs != 0 {
			b.Fatalf("summaries = %d, truncated SCCs = %d", len(res.Summaries), res.TruncatedSCCs)
		}
	}
}

// BenchmarkFrontend times the full parse+resolve+lower pipeline over the
// whole corpus (the compiler-side cost of an analysis run).
func BenchmarkFrontend(b *testing.B) {
	files, err := corpus.Files(corpus.GroupAll)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, f := range files {
		total += len(f.Content)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := corpus.Load(corpus.GroupAll); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullAnalysis times end-to-end analysis incl. every detector.
func BenchmarkFullAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := rustprobe.AnalyzeCorpus("all")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Detect()) == 0 {
			b.Fatal("no findings on the buggy corpus")
		}
	}
}

// --- concurrent analysis engine ---------------------------------------------

// engineJobSet is the shared workload for the serial-vs-parallel engine
// comparison: every corpus group plus each group resubmitted under a
// narrowed detector selection, i.e. independent jobs of uneven cost.
func engineJobSet() []engine.Request {
	groups := []string{"detector-eval", "patterns", "unsafe", "apps"}
	var jobs []engine.Request
	for _, g := range groups {
		jobs = append(jobs,
			engine.Request{Corpus: g},
			engine.Request{Corpus: g, Detectors: []string{"use-after-free", "double-lock"}},
		)
	}
	return jobs
}

// BenchmarkEngineSerial analyzes the job set one request at a time on the
// plain pipeline — the baseline the engine's worker pool must beat.
func BenchmarkEngineSerial(b *testing.B) {
	jobs := engineJobSet()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			res, err := rustprobe.AnalyzeCorpus(j.Corpus)
			if err != nil {
				b.Fatal(err)
			}
			res.Detect(j.Detectors...)
			res.ScanUnsafe()
		}
	}
}

// BenchmarkEngineParallel pushes the same job set through the concurrent
// engine (one worker per core, caching disabled so every job really
// runs). On a multi-core machine this demonstrates >1.5x the serial
// throughput; jobs parallelize across the pool and detectors within one
// job overlap.
func BenchmarkEngineParallel(b *testing.B) {
	jobs := engineJobSet()
	eng := engine.New(engine.Config{
		Workers:       runtime.GOMAXPROCS(0),
		QueueDepth:    len(jobs),
		CacheCapacity: -1, // disabled: measure analysis, not memoization
	})
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j engine.Request) {
				defer wg.Done()
				if _, err := eng.Analyze(context.Background(), j); err != nil {
					b.Error(err)
				}
			}(j)
		}
		wg.Wait()
	}
}

// BenchmarkEngineCached measures the content-hash cache fast path:
// steady-state resubmission of unchanged code.
func BenchmarkEngineCached(b *testing.B) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	req := engine.Request{Corpus: "detector-eval"}
	if _, err := eng.Analyze(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Analyze(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}
