package rustprobe_test

// FuzzEngineAnalyze drives arbitrary source text through the full
// serving path — validation, singleflight, queue, worker pool, frontend,
// detector fan-out, cache — and fails on the two regressions this
// engine was hardened against: an analysis that panics past the
// isolation layer (surfacing as *engine.InternalError) and a request
// that hangs past its deadline (worker loss).

import (
	"context"
	"errors"
	"testing"
	"time"

	"rustprobe/internal/engine"
)

func FuzzEngineAnalyze(f *testing.F) {
	f.Add("clean.rs", "fn add(a: i32, b: i32) -> i32 { a + b }\n")
	f.Add("dlock.rs", `fn double(m: Mutex<i32>) {
    let a = m.lock().unwrap();
    let b = m.lock().unwrap();
}
`)
	f.Add("uaf.rs", `fn grow(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
`)
	f.Add("weird.rs", "fn \x00\xff{unsafe{")

	eng := engine.New(engine.Config{Workers: 2, QueueDepth: 8, CacheCapacity: 64})
	f.Cleanup(eng.Close)

	f.Fuzz(func(t *testing.T, name, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		resp, err := eng.Analyze(ctx, engine.Request{Files: map[string]string{name: src}})
		if err == nil {
			if resp == nil {
				t.Fatal("nil response with nil error")
			}
			return
		}
		// Malformed inputs are rejected with typed, recoverable errors;
		// anything else is a robustness regression.
		var reqErr *engine.RequestError
		var srcErr *engine.SourceError
		var intErr *engine.InternalError
		switch {
		case errors.As(err, &reqErr), errors.As(err, &srcErr):
		case errors.As(err, &intErr):
			t.Fatalf("analysis panicked on %q: %s\n%s", name, intErr.Panic, intErr.Stack)
		case errors.Is(err, context.DeadlineExceeded):
			t.Fatalf("analysis hung past 60s on %q", name)
		default:
			t.Fatalf("unexpected error class on %q: %v", name, err)
		}
	})
}
