package rustprobe

// White-box tests for the context-aware detector fan-out: panic
// isolation (a panicking pass becomes a typed *PanicError instead of
// killing the process or a pool worker) and cancellation (a dead
// request stops the fan-out at detector granularity). These live in
// package rustprobe to reach the testDetectors seam.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rustprobe/internal/detect"
)

type panickyDetector struct{}

func (panickyDetector) Name() string                  { return "test-panic" }
func (panickyDetector) Run(*detect.Context) []Finding { panic("injected pass panic") }

type countingDetector struct{ ran *bool }

func (countingDetector) Name() string                    { return "test-count" }
func (d countingDetector) Run(*detect.Context) []Finding { *d.ran = true; return nil }

func analyzeClean(t *testing.T) *Result {
	t.Helper()
	res, err := AnalyzeSource("clean.rs", "fn add(a: i32, b: i32) -> i32 { a + b }\n")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDetectParallelCtxPanicIsolation(t *testing.T) {
	testDetectors = []Detector{panickyDetector{}}
	defer func() { testDetectors = nil }()

	res := analyzeClean(t)
	fs, times, err := res.DetectParallelTimedCtx(context.Background())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Detector != "test-panic" {
		t.Errorf("Detector = %q", pe.Detector)
	}
	if pe.Value != "injected pass panic" {
		t.Errorf("Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panickyDetector") {
		t.Errorf("stack not captured: %q", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "test-panic") {
		t.Errorf("Error() = %q", pe.Error())
	}
	if fs != nil {
		t.Errorf("findings returned alongside a panic: %+v", fs)
	}
	// The healthy passes still ran and were timed.
	if _, ok := times["use-after-free"]; !ok {
		t.Errorf("times missing healthy detectors: %+v", times)
	}
}

func TestDetectParallelCtxCancelled(t *testing.T) {
	ran := false
	testDetectors = []Detector{countingDetector{ran: &ran}}
	defer func() { testDetectors = nil }()

	res := analyzeClean(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before the fan-out starts
	fs, _, err := res.DetectParallelTimedCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fs != nil {
		t.Errorf("cancelled fan-out returned findings: %+v", fs)
	}
	if ran {
		t.Error("detector ran despite pre-cancelled context")
	}
}

// TestDetectParallelTimedRepanics: the non-context entry point keeps the
// historical contract — a detector panic surfaces as a panic to the
// caller, not as a silently dropped error.
func TestDetectParallelTimedRepanics(t *testing.T) {
	testDetectors = []Detector{panickyDetector{}}
	defer func() { testDetectors = nil }()

	res := analyzeClean(t)
	defer func() {
		if recover() == nil {
			t.Error("DetectParallelTimed swallowed a detector panic")
		}
	}()
	res.DetectParallelTimed()
}
