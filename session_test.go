package rustprobe

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rustprobe/internal/gen"
)

// fullDetect runs a from-scratch analysis and returns the formatted
// findings, sorted — the oracle every incremental round must match.
func fullDetect(t *testing.T, files map[string]string) []string {
	t.Helper()
	res, err := AnalyzeFiles(files)
	if err != nil {
		t.Fatalf("full analysis: %v", err)
	}
	findings := res.Detect()
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.Format(res.Fset)
	}
	sort.Strings(out)
	return out
}

// TestSessionMatchesFullOnMutations drives a multi-file repo through a
// scripted edit sequence and checks every incremental round's findings
// equal a from-scratch analysis of the same sources.
func TestSessionMatchesFullOnMutations(t *testing.T) {
	base := map[string]string{
		"lib.rs": `struct Shared { mu: Mutex<i32> }
impl Shared {
    fn twice(&self) {
        let a = self.mu.lock().unwrap();
        let b = self.mu.lock().unwrap();
    }
}
`,
		"util.rs": `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn helper(x: i32) -> i32 {
    x + 1
}
fn caller() {
    let y = helper(2);
}
`,
		"main.rs": `fn main() {
    caller();
}
`,
	}

	s := NewSession()
	check := func(step string, files map[string]string, up *Update) {
		t.Helper()
		want := fullDetect(t, files)
		got := sessionStrings(up)
		if !equalStrings(got, want) {
			t.Fatalf("%s: incremental findings diverge from full analysis\n got: %v\nwant: %v", step, got, want)
		}
	}

	up, err := s.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Stats.Full || up.Stats.FullReason != "first analysis" {
		t.Fatalf("first round stats = %+v, want full build", up.Stats)
	}
	check("initial", base, up)

	// Round 2: identical resubmission — nothing recomputed.
	up, err = s.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full || up.Stats.FilesReparsed != 0 || up.Stats.FuncsLowered != 0 {
		t.Fatalf("no-change round stats = %+v, want pure reuse", up.Stats)
	}
	check("no-change", base, up)

	// Round 3: body-only edit introducing a new bug in one function.
	r3 := clone(base)
	r3["util.rs"] = `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn helper(x: i32) -> i32 {
    let w = Vec::new();
    let q = w.as_ptr();
    drop(w);
    unsafe { let z = *q; }
    x + 1
}
fn caller() {
    let y = helper(2);
}
`
	up, err = s.Analyze(r3)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("body-only edit forced a full build: %+v", up.Stats)
	}
	if up.Stats.FilesReparsed != 1 {
		t.Fatalf("FilesReparsed = %d, want 1", up.Stats.FilesReparsed)
	}
	if up.Stats.FuncsLowered == 0 || up.Stats.BodiesReused == 0 {
		t.Fatalf("stats = %+v, want partial lowering with reuse", up.Stats)
	}
	check("introduce-bug", r3, up)

	// Round 4: revert — the bug disappears again, still incrementally.
	up, err = s.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("revert forced a full build: %+v", up.Stats)
	}
	check("revert", base, up)

	// Round 5: interface change (new function) falls back to full.
	r5 := clone(base)
	r5["main.rs"] = `fn main() {
    caller();
}
fn fresh() {}
`
	up, err = s.Analyze(r5)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Stats.Full {
		t.Fatalf("interface change did not rebuild: %+v", up.Stats)
	}
	check("interface-change", r5, up)

	// Round 6: file added falls back to full.
	r6 := clone(r5)
	r6["extra.rs"] = "fn extra_fn() {}\n"
	up, err = s.Analyze(r6)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Stats.Full || up.Stats.FullReason != "file set changed" {
		t.Fatalf("file add stats = %+v, want full(file set changed)", up.Stats)
	}
	check("file-add", r6, up)
}

// TestSessionCrossFileInvalidation is the inter-procedural core case: a
// body-only edit to a callee in one file must re-analyze its transitive
// callers in other files, without reparsing those files.
func TestSessionCrossFileInvalidation(t *testing.T) {
	outer := `struct S { mu: Mutex<i32> }
impl S {
    fn outer(&self) {
        let g = self.mu.lock().unwrap();
        self.inner();
    }
}
`
	files := map[string]string{
		"a.rs": outer,
		"b.rs": `impl S {
    fn inner(&self) {
        let x = 1;
    }
}
`,
	}
	s := NewSession()
	up, err := s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(up.Findings, "double-lock"); n != 0 {
		t.Fatalf("clean repo reported %d double-locks", n)
	}

	// inner now re-locks the mutex outer already holds: outer (in the
	// unchanged file) must be re-examined and gain a finding.
	mutated := clone(files)
	mutated["b.rs"] = `impl S {
    fn inner(&self) {
        let g = self.mu.lock().unwrap();
    }
}
`
	up, err = s.Analyze(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("callee body edit forced full build: %+v", up.Stats)
	}
	if up.Stats.FilesReparsed != 1 {
		t.Fatalf("FilesReparsed = %d, want 1 (only b.rs)", up.Stats.FilesReparsed)
	}
	want := fullDetect(t, mutated)
	got := sessionStrings(up)
	if !equalStrings(got, want) {
		t.Fatalf("cross-file invalidation diverged from full analysis\n got: %v\nwant: %v", got, want)
	}
	if countKind(up.Findings, "double-lock") == 0 {
		t.Fatal("caller in unchanged file did not pick up the callee's new lock")
	}

	// Reverting the callee clears the caller's finding again.
	up, err = s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(up.Findings, "double-lock"); n != 0 {
		t.Fatalf("stale caller finding survived revert: %d double-locks", n)
	}
}

// TestSessionSpawnClosureEditRerunsBlocking: blocking is a global
// detector (its verdicts depend on every function's summaries), so a
// body-only edit inside a spawn closure in one file must re-run it —
// here the closure's unconditional notify turns conditional, which makes
// the condvar wait in the SAME file lose its only guaranteed signaller —
// while the local-detector finding in the other, untouched file is
// replayed rather than recomputed.
func TestSessionSpawnClosureEditRerunsBlocking(t *testing.T) {
	hub := `struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
    fn start(&self, go: bool) {
        thread::spawn(move || { self.cv.notify_all(); });
    }
}
`
	files := map[string]string{
		"hub.rs": hub,
		"util.rs": `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
`,
	}
	s := NewSession()
	up, err := s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(up.Findings, "blocking"); n != 0 {
		t.Fatalf("guaranteed closure notify should rescue the wait, got %d blocking findings", n)
	}
	if n := countKind(up.Findings, "use-after-free"); n != 1 {
		t.Fatalf("baseline use-after-free findings = %d, want 1", n)
	}

	// Body-only edit inside the spawn closure: the notify moves behind a
	// condition, so W::wait's signal is no longer guaranteed.
	mutated := clone(files)
	mutated["hub.rs"] = `struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
    fn start(&self, go: bool) {
        thread::spawn(move || { if go { self.cv.notify_all(); } });
    }
}
`
	up, err = s.Analyze(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("closure body edit forced a full build: %+v", up.Stats)
	}
	if up.Stats.FilesReparsed != 1 {
		t.Fatalf("FilesReparsed = %d, want 1 (only hub.rs)", up.Stats.FilesReparsed)
	}
	want := fullDetect(t, mutated)
	got := sessionStrings(up)
	if !equalStrings(got, want) {
		t.Fatalf("spawn-closure edit diverged from full analysis\n got: %v\nwant: %v", got, want)
	}
	if countKind(up.Findings, "blocking") != 1 {
		t.Fatal("blocking did not re-run after the spawn-closure body edit")
	}
	if countKind(up.Findings, "use-after-free") != 1 {
		t.Fatal("local use-after-free finding in the untouched file was not replayed")
	}

	// Reverting the closure body clears the blocking finding again.
	up, err = s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(up.Findings, "blocking"); n != 0 {
		t.Fatalf("stale blocking finding survived revert: %d", n)
	}
}

// TestSessionShiftedPositionsMatchFull is the stale-span regression: an
// edited function sits ABOVE an unrelated buggy function in the same
// file, so the buggy function's body text is unchanged but its line
// numbers shift. Replaying its cached finding verbatim would report the
// bug at the previous revision's position; every round must instead
// match a from-scratch analysis exactly (the formatted comparison
// includes resolved file:line:col).
func TestSessionShiftedPositionsMatchFull(t *testing.T) {
	mk := func(padBody string) map[string]string {
		return map[string]string{"x.rs": "fn pad() {\n" + padBody + "}\nfn buggy(v: Vec<i32>) {\n    let p = v.as_ptr();\n    drop(v);\n    unsafe { let x = *p; }\n}\n"}
	}
	bodyA := "    let a = 1;\n    let b = 2;\n"
	// Same byte length as bodyA, one fewer newline: buggy()'s byte offset
	// stays identical while its line numbers shift up — the case a pure
	// offset comparison would miss.
	bodyB := "    let a = 1;     let b = 2;\n"
	if len(bodyA) != len(bodyB) {
		t.Fatalf("test invariant: len(bodyA)=%d len(bodyB)=%d, want equal", len(bodyA), len(bodyB))
	}
	bodyGrown := bodyA + "    let c = 3;\n    let d = 4;\n"

	s := NewSession()
	up, err := s.Analyze(mk(bodyA))
	if err != nil {
		t.Fatal(err)
	}
	if n := countKind(up.Findings, "use-after-free"); n != 1 {
		t.Fatalf("initial round found %d use-after-free, want 1", n)
	}

	for _, step := range []struct {
		name string
		body string
	}{
		{"same-length newline move", bodyB},
		{"grow pad above buggy", bodyGrown},
		{"shrink back", bodyA},
	} {
		files := mk(step.body)
		up, err = s.Analyze(files)
		if err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		if up.Stats.Full {
			t.Fatalf("%s: body-only edit forced a full build: %+v", step.name, up.Stats)
		}
		want := fullDetect(t, files)
		if got := sessionStrings(up); !equalStrings(got, want) {
			t.Fatalf("%s: cached finding replayed at stale position\n got: %v\nwant: %v", step.name, got, want)
		}
	}
}

// TestSessionUpdateIsCallerOwned: mutating a returned Update's findings
// (sorting, appending, editing Notes) must not corrupt the session's
// cached state for later rounds.
func TestSessionUpdateIsCallerOwned(t *testing.T) {
	files := map[string]string{"a.rs": `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn other(w: Vec<i32>) {
    let q = w.as_ptr();
    drop(w);
    unsafe { let y = *q; }
}
`}
	s := NewSession()
	up, err := s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	want := fullDetect(t, files)

	// Vandalize the returned round: reverse order, overwrite contents.
	for i, j := 0, len(up.Findings)-1; i < j; i, j = i+1, j-1 {
		up.Findings[i], up.Findings[j] = up.Findings[j], up.Findings[i]
	}
	for i := range up.Findings {
		up.Findings[i].Message = "vandalized"
		for j := range up.Findings[i].Notes {
			up.Findings[i].Notes[j] = "vandalized"
		}
	}

	// The no-change fast path must replay the pristine cached view.
	up2, err := s.Analyze(files)
	if err != nil {
		t.Fatal(err)
	}
	if got := sessionStrings(up2); !equalStrings(got, want) {
		t.Fatalf("caller mutation leaked into cached state\n got: %v\nwant: %v", got, want)
	}
}

// TestSessionErrorKeepsState: a round with syntax errors fails without
// corrupting the session; the next good round still diffs against the
// last successful one.
func TestSessionErrorKeepsState(t *testing.T) {
	files := map[string]string{
		"a.rs": "fn f(x: i32) -> i32 {\n    x + 1\n}\n",
		"b.rs": "fn g() {\n    let y = f(1);\n}\n",
	}
	s := NewSession()
	if _, err := s.Analyze(files); err != nil {
		t.Fatal(err)
	}

	broken := clone(files)
	broken["a.rs"] = "fn f(x: i32) -> i32 { x +\n"
	filesBefore := len(s.fset.Files())
	sizeBefore := s.fset.Size()
	if _, err := s.Analyze(broken); err == nil {
		t.Fatal("syntax error round succeeded")
	}
	// The failed round's speculative registrations must be rolled back:
	// they belong to no retained artifact.
	if n, sz := len(s.fset.Files()), s.fset.Size(); n != filesBefore || sz != sizeBefore {
		t.Fatalf("error round leaked FileSet state: files %d->%d, size %d->%d",
			filesBefore, n, sizeBefore, sz)
	}

	fixed := clone(files)
	fixed["a.rs"] = "fn f(x: i32) -> i32 {\n    x + 2\n}\n"
	up, err := s.Analyze(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("post-error round lost incremental state: %+v", up.Stats)
	}
	want := fullDetect(t, fixed)
	if got := sessionStrings(up); !equalStrings(got, want) {
		t.Fatalf("post-error round diverged\n got: %v\nwant: %v", got, want)
	}
}

// TestSessionFileSetCompaction: the persistent FileSet grows with every
// reparse; once it dwarfs the live sources a round must fall back to a
// full rebuild (reseeding a one-registration-per-file set) instead of
// pinning old revisions forever — with findings still equal to a
// from-scratch analysis throughout.
func TestSessionFileSetCompaction(t *testing.T) {
	oldFactor, oldMin := fsetCompactFactor, fsetCompactMinBytes
	fsetCompactFactor, fsetCompactMinBytes = 2, 1
	defer func() { fsetCompactFactor, fsetCompactMinBytes = oldFactor, oldMin }()

	mk := func(round int) map[string]string {
		return map[string]string{"a.rs": fmt.Sprintf("fn f(x: i32) -> i32 {\n    x + %d\n}\n", round)}
	}
	s := NewSession()
	if _, err := s.Analyze(mk(0)); err != nil {
		t.Fatal(err)
	}
	compacted := false
	for round := 1; round <= 8; round++ {
		files := mk(round)
		up, err := s.Analyze(files)
		if err != nil {
			t.Fatal(err)
		}
		if up.Stats.Full && up.Stats.FullReason == "state compaction" {
			compacted = true
			if live := len(files["a.rs"]); s.fset.Size() > 2*live+2 {
				t.Fatalf("compaction did not reseed the FileSet: size %d for %d live bytes", s.fset.Size(), live)
			}
		}
		want := fullDetect(t, files)
		if got := sessionStrings(up); !equalStrings(got, want) {
			t.Fatalf("round %d diverged\n got: %v\nwant: %v", round, got, want)
		}
	}
	if !compacted {
		t.Fatal("no round compacted the FileSet despite tightened thresholds")
	}
}

// TestSessionGeneratedSeeds replays generated programs through one
// session (each round replaces the file wholesale) and cross-checks every
// round against a from-scratch analysis — a randomized equivalence sweep
// over the full detector surface.
func TestSessionGeneratedSeeds(t *testing.T) {
	s := NewSession()
	for seed := int64(0); seed < 40; seed++ {
		p := gen.Generate(seed)
		files := map[string]string{"gen.rs": p.Source}
		up, err := s.Analyze(files)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := fullDetect(t, files)
		if got := sessionStrings(up); !equalStrings(got, want) {
			t.Fatalf("seed %d: incremental diverged\n got: %v\nwant: %v", seed, got, want)
		}
	}
}

// TestAnalyzeDirSkipsJunk: the walk must ignore .git, target/ and hidden
// directories — real checkouts keep generated or vendored .rs files there
// that would otherwise collide with the real sources.
func TestAnalyzeDirSkipsJunk(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("src/lib.rs", "fn real_entry() {}\n")
	// Junk trees: a conflicting duplicate and outright garbage. If the
	// walk picked these up, analysis would fail or grow extra functions.
	write("target/debug/build/lib.rs", "fn real_entry() { broken(\n")
	write(".git/objects/blob.rs", "fn from_git_object( {\n")
	write(".cargo-cache/registry/vendored.rs", "fn vendored() {}\n")

	res, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Program.Funcs["real_entry"]; !ok {
		t.Fatal("real source not analyzed")
	}
	if _, ok := res.Program.Funcs["vendored"]; ok {
		t.Fatal("hidden-directory file leaked into the analysis")
	}
	files := res.Fset.Files()
	if len(files) != 1 || files[0].Name != "src/lib.rs" {
		var names []string
		for _, f := range files {
			names = append(names, f.Name)
		}
		t.Fatalf("analyzed files = %v, want [src/lib.rs]", names)
	}
}

func sessionStrings(up *Update) []string {
	out := make([]string, len(up.Findings))
	for i, f := range up.Findings {
		out[i] = f.Format(up.Result.Fset)
	}
	sort.Strings(out)
	return out
}

func countKind(fs []Finding, kind string) int {
	n := 0
	for _, f := range fs {
		if string(f.Kind) == kind {
			n++
		}
	}
	return n
}

func clone(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
