package rustprobe

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"rustprobe/internal/ast"
	"rustprobe/internal/callgraph"
	"rustprobe/internal/detect"
	"rustprobe/internal/incrstate"
	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

// Session is an incremental analyzer for a repository analyzed many
// times with small diffs between rounds (the CI-fleet shape). It keeps
// the previous round's frontend artifacts, MIR bodies, and per-function
// findings, and on each Analyze call:
//
//   - re-lexes/parses only files whose content changed (unchanged files
//     reuse their parsed AST; the persistent FileSet keeps spans valid),
//   - re-lowers only functions whose body text changed — plus the
//     functions in edited files that sit at or after the first changed
//     byte, whose body text may be identical but whose source positions
//     shifted: reusing their MIR or cached findings would replay spans
//     that resolve against the old revision's line numbers,
//   - re-runs the local detectors only over the dirty callgraph closure —
//     the changed functions, their transitive callers (whose summaries
//     can observe the change), and the transitive callees of those (so
//     every summary lookup stays in-set) — reusing cached findings for
//     all other roots,
//   - always re-runs the global detectors (lock-order, data-race,
//     interior-mutability), whose findings pair facts across unrelated
//     functions.
//
// Any structural change falls back to a full build: a file added or
// removed, a file's interface hash changing (anything outside function
// bodies: signatures, types, statics, impls, even comments between
// items), or the first call. The fallback is the correctness anchor —
// incremental results are always equal to a from-scratch AnalyzeFiles +
// Detect of the same sources, which the test suite checks directly.
//
// The persistent FileSet is append-only: every reparse of a changed file
// registers a fresh copy while reused artifacts keep the old ones alive.
// When the accumulated span space outgrows the live sources (see
// fsetCompactFactor) a round falls back to a full build, which reseeds a
// fresh FileSet with exactly one registration per file, bounding the
// memory a long-lived session can pin.
//
// A Session is safe for concurrent use; calls serialize internally.
type Session struct {
	mu      sync.Mutex
	precise bool
	fset    *source.FileSet
	arts    map[string]*fileArtifact
	res     *Result
	src     map[string]string // last successfully analyzed content
	local   map[string][]Finding
	last    *Update

	// carries holds each incremental global detector's opaque fact
	// cache (per-function extractions plus summary fixpoints), keyed by
	// detector name. Seeded by every full round, threaded through
	// incremental rounds, and process-local: persisted state (Restore)
	// starts with an empty map whose first round reseeds it.
	carries map[string]detect.Carry

	// prior is persisted state from an earlier process (Restore), armed
	// on an otherwise empty session. The first Analyze round consumes it:
	// the frontend runs in full (a fresh process has no ASTs or MIR to
	// reuse), but if the tree's structure still matches the recorded
	// hashes, detection runs only over the dirty closure and the
	// recorded findings are replayed for every clean root.
	prior *incrstate.State
}

// Update is one Session.Analyze round: the full analysis view, the
// merged findings (equal to a from-scratch Detect of the same sources),
// and what the round actually had to recompute.
type Update struct {
	Result   *Result
	Findings []Finding
	Stats    UpdateStats
}

// UpdateStats quantifies one incremental round.
type UpdateStats struct {
	// Full marks a from-scratch build; FullReason says why ("first
	// analysis", "file set changed", "interface changed", ...).
	Full       bool   `json:"full"`
	FullReason string `json:"full_reason,omitempty"`

	// Restored marks a round whose reuse came from persisted state
	// (Session.Restore) rather than a live previous round: the frontend
	// ran in full, but detection covered only the dirty closure.
	Restored bool `json:"restored,omitempty"`

	Files          int `json:"files"`
	FilesReparsed  int `json:"files_reparsed"`
	FuncsLowered   int `json:"funcs_lowered"`
	BodiesReused   int `json:"bodies_reused"`
	RootsDetected  int `json:"roots_detected"`
	FindingsReused int `json:"findings_reused"`
	ChangedFns     int `json:"changed_fns"`
	FuncsTotal     int `json:"funcs_total"`

	// GlobalFactsReused counts per-function fact extractions the global
	// detectors (lock-order, blocking, interior-mutability, data-race)
	// skipped this round by reusing their carried caches, summed across
	// detectors. GraphPatched marks a round whose call graph was patched
	// from the previous round's instead of rebuilt from scratch.
	GlobalFactsReused int  `json:"global_facts_reused,omitempty"`
	GraphPatched      bool `json:"graph_patched,omitempty"`
}

// graphCrossCheckEnabled reports whether the debug byte-equality anchor
// is on: every patched call graph is compared (by fingerprint) against a
// from-scratch rebuild of the same bodies, and a mismatch panics — the
// patch is wrong, and silently continuing would poison every downstream
// detector. Checked per round so tests can flip RUSTPROBE_GRAPH_CHECK in
// the environment; the equivalence sweeps set it so CI exercises the
// anchor on every mutation round.
func graphCrossCheckEnabled() bool { return os.Getenv("RUSTPROBE_GRAPH_CHECK") != "" }

// FileSet compaction thresholds (vars so tests can tighten them): an
// incremental round falls back to a full rebuild once the session's
// append-only FileSet exceeds both fsetCompactMinBytes and
// fsetCompactFactor times the live source bytes.
var (
	fsetCompactFactor   = 8
	fsetCompactMinBytes = 1 << 20
)

// NewSession returns an empty incremental session.
func NewSession() *Session {
	return &Session{}
}

// NewPreciseSession returns a session whose rounds run the path-sensitive
// (dropflow-refuting) variants of the memory detectors.
func NewPreciseSession() *Session {
	return &Session{precise: true}
}

// AnalyzeDir loads dir (see LoadDir for the walk rules) and runs an
// incremental round over its files.
func (s *Session) AnalyzeDir(dir string) (*Update, error) {
	files, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return s.Analyze(files)
}

// Analyze runs one round over the given sources, reusing as much of the
// previous round as the diff allows. On error (syntax errors in the new
// sources) the session keeps its previous good state, so a later call
// with fixed sources diffs against the last successful round.
func (s *Session) Analyze(files map[string]string) (*Update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.res == nil {
		if s.prior != nil {
			return s.restoreRound(files)
		}
		return s.full(files, "first analysis")
	}
	if len(files) != len(s.src) {
		return s.full(files, "file set changed")
	}
	var changed []string
	for name, src := range files {
		old, ok := s.src[name]
		if !ok {
			return s.full(files, "file set changed")
		}
		if old != src {
			changed = append(changed, name)
		}
	}
	if len(changed) == 0 {
		// Nothing to do: replay the last round's view.
		up := &Update{Result: s.last.Result, Findings: s.last.Findings}
		up.Stats = UpdateStats{
			Files:          len(files),
			BodiesReused:   len(s.res.Bodies),
			FindingsReused: len(s.last.Findings),
		}
		return snapshotUpdate(up), nil
	}
	sort.Strings(changed)

	// Compact before the FileSet pins another round of re-registrations.
	live := 0
	for _, src := range files {
		live += len(src)
	}
	if s.fset.Size() > fsetCompactMinBytes && s.fset.Size() > fsetCompactFactor*live {
		return s.full(files, "state compaction")
	}

	// Per-file frontend for the changed files only. The persistent
	// FileSet means spans in reused ASTs and cached findings stay valid.
	// The new registrations are rolled back if this round aborts: error
	// rounds must not leak entries that belong to no retained artifact.
	mark := s.fset.Mark()
	diags := source.NewDiagnostics(s.fset)
	newArts := make(map[string]*fileArtifact, len(changed))
	for _, name := range changed {
		newArts[name] = parseArtifact(s.fset, diags, name, files[name])
	}
	if diags.HasErrors() {
		// Render before rollback: the diagnostics resolve their positions
		// through the fset entries the rollback is about to discard.
		msg := diags.String()
		s.fset.Rollback(mark)
		return nil, &SyntaxError{Diags: msg}
	}

	// Anything outside a function body changed — signatures, items,
	// statics — can shift types and resolution program-wide: rebuild.
	for _, name := range changed {
		if newArts[name].interfaceHash != s.arts[name].interfaceHash ||
			len(newArts[name].fnBodyHashes) != len(s.arts[name].fnBodyHashes) {
			return s.full(files, "interface changed: "+name)
		}
	}

	// Link phase: resolve over reused + fresh ASTs in the same sorted
	// order a full build uses.
	arts := make([]*fileArtifact, 0, len(files))
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if a, ok := newArts[n]; ok {
			arts = append(arts, a)
		} else {
			arts = append(arts, s.arts[n])
		}
	}
	crates := make([]*ast.Crate, len(arts))
	for i, a := range arts {
		crates[i] = a.crate
	}
	prog := resolve.Crates(s.fset, diags, crates...)
	if diags.HasErrors() {
		// Render before rollback: the diagnostics resolve their positions
		// through the fset entries the rollback is about to discard.
		msg := diags.String()
		s.fset.Rollback(mark)
		return nil, &SyntaxError{Diags: msg}
	}

	// Diff function bodies at matching declaration indexes (the index
	// correspondence is pinned by the unchanged interface hash), then map
	// the changed items to qualified names through the fresh registry.
	// A function whose body text is unchanged but that is not entirely
	// within the two revisions' common byte prefix is treated as changed
	// too: bytes at or after the first differing byte may have shifted
	// line or column (even under a same-length edit that moves a newline),
	// and replaying its cached findings — or reusing MIR spans bound to
	// the old registration — would report positions from the old revision.
	bySyntax := map[*ast.FnItem]string{}
	for _, fd := range prog.Funcs {
		if fd.Syntax != nil {
			bySyntax[fd.Syntax] = fd.Qualified
		}
	}
	changedFns := map[string]bool{}
	for _, name := range changed {
		oldA, newA := s.arts[name], newArts[name]
		stable := commonPrefixLen(oldA.file.Content, newA.file.Content)
		for i, h := range newA.fnBodyHashes {
			it := newA.fnItems[i]
			if h == oldA.fnBodyHashes[i] && it.Span().End-newA.file.Base <= stable {
				continue
			}
			if q, ok := bySyntax[it]; ok {
				changedFns[q] = true
			}
		}
	}

	// Re-lower exactly the changed functions (closures ride along); every
	// other body is reused from the previous round.
	lowered := lower.ProgramFiltered(prog, diags, func(q string) bool { return changedFns[q] })
	if diags.HasErrors() {
		// Render before rollback: the diagnostics resolve their positions
		// through the fset entries the rollback is about to discard.
		msg := diags.String()
		s.fset.Rollback(mark)
		return nil, &SyntaxError{Diags: msg}
	}
	bodies := make(map[string]*mir.Body, len(s.res.Bodies))
	reused := 0
	for bname, b := range s.res.Bodies {
		if !changedFns[closureBase(bname)] {
			bodies[bname] = b
			reused++
		}
	}
	for bname, b := range lowered {
		bodies[bname] = b
	}

	res := &Result{Program: prog, Bodies: bodies, Fset: s.fset, Diags: diags, Precise: s.precise}

	// Patch the previous round's call graph instead of rebuilding:
	// only re-lowered bodies are rescanned for edges (plus callers whose
	// unresolved callee names could have flipped, which body-only edits
	// cannot cause). The from-scratch rebuild remains the correctness
	// anchor — structural changes take the full() path above, and the
	// debug cross-check compares fingerprints on every patched round.
	relowered := make(map[string]bool, len(lowered))
	for bname := range lowered {
		relowered[bname] = true
	}
	prevGraph := s.res.Context().Graph
	graph := callgraph.Patch(prevGraph, bodies, relowered)
	if graphCrossCheckEnabled() {
		if want := callgraph.Build(bodies).Fingerprint(); graph.Fingerprint() != want {
			panic(fmt.Sprintf("rustprobe: patched call graph diverged from rebuild (patched %x, rebuilt %x)",
				graph.Fingerprint(), want))
		}
	}
	res.graph = graph

	// Incremental detection: local detectors over the dirty callgraph
	// closure, cached findings for every root outside it, global
	// detectors incrementally over their carried fact caches.
	changedList := make([]string, 0, len(changedFns))
	for q := range changedFns {
		changedList = append(changedList, q)
	}
	fresh, global, restricted, globalReused := res.detectIncremental(changedList, s.carries)
	merged := append([]Finding(nil), fresh...)
	reusedFindings := 0
	local := make(map[string][]Finding, len(s.local))
	for fn, fs := range s.local {
		if restricted[fn] {
			continue
		}
		local[fn] = fs
		merged = append(merged, fs...)
		reusedFindings += len(fs)
	}
	for _, f := range fresh {
		local[f.Function] = append(local[f.Function], f)
	}
	merged = append(merged, global...)
	sortFindingsByPosition(s.fset, merged)

	// Commit.
	for name, a := range newArts {
		s.arts[name] = a
		s.src[name] = files[name]
	}
	s.res = res
	s.local = local
	up := &Update{Result: res, Findings: merged}
	up.Stats = UpdateStats{
		Files:             len(files),
		FilesReparsed:     len(changed),
		FuncsLowered:      len(lowered),
		BodiesReused:      reused,
		RootsDetected:     len(restricted),
		FindingsReused:    reusedFindings,
		ChangedFns:        len(changedFns),
		FuncsTotal:        len(res.Bodies),
		GlobalFactsReused: globalReused,
		GraphPatched:      true,
	}
	s.last = up
	return snapshotUpdate(up), nil
}

// full rebuilds the session from scratch and reseeds the reuse state.
func (s *Session) full(files map[string]string, reason string) (*Update, error) {
	fset := source.NewFileSet()
	diags := source.NewDiagnostics(fset)
	res, arts, err := analyzeArtifacts(fset, diags, files)
	if err != nil {
		if diags.HasErrors() {
			return nil, &SyntaxError{Diags: diags.String()}
		}
		return nil, err
	}
	return s.commitFull(files, fset, res, arts, reason), nil
}

// commitFull finishes a full round over an already-built frontend: it
// runs every detector from scratch and reseeds the session's reuse
// state. Shared by full() and the restore path's structural fallback
// (which has already paid for the frontend and must not rebuild it).
func (s *Session) commitFull(files map[string]string, fset *source.FileSet, res *Result, arts map[string]*fileArtifact, reason string) *Update {
	res.Precise = s.precise

	ctx := res.Context()
	var findings []Finding
	local := map[string][]Finding{}
	for _, d := range localDetectors(s.precise) {
		for _, f := range d.Run(ctx) {
			findings = append(findings, f)
			local[f.Function] = append(local[f.Function], f)
		}
	}
	// A full round runs the global detectors from scratch but still seeds
	// their carries, so the very next incremental round reuses facts.
	s.carries = map[string]detect.Carry{}
	for _, d := range globalDetectors() {
		if inc, ok := d.(detect.Incremental); ok {
			fs, nc, _ := inc.RunIncremental(ctx, nil, nil)
			findings = append(findings, fs...)
			s.carries[d.Name()] = nc
			continue
		}
		findings = append(findings, d.Run(ctx)...)
	}
	sortFindingsByPosition(fset, findings)

	s.fset = fset
	s.arts = arts
	s.res = res
	s.local = local
	s.src = make(map[string]string, len(files))
	for n, src := range files {
		s.src[n] = src
	}
	s.prior = nil
	up := &Update{Result: res, Findings: findings}
	up.Stats = UpdateStats{
		Full:          true,
		FullReason:    reason,
		Files:         len(files),
		FilesReparsed: len(files),
		FuncsLowered:  len(res.Bodies),
		RootsDetected: len(res.Bodies),
		ChangedFns:    len(res.Bodies),
		FuncsTotal:    len(res.Bodies),
	}
	s.last = up
	return snapshotUpdate(up)
}

// Restore arms an empty session with state persisted by an earlier
// process (Session.ExportState, saved via the incrstate codec). The next
// Analyze round rebuilds the frontend — ASTs and MIR cannot be persisted
// — but if the tree's structural hashes still match the recorded state,
// detection runs only over the dirty closure of the functions whose body
// hash or declaration position changed, and the recorded findings are
// replayed for every clean root. Callers must validate st against
// StateVersion() (incrstate.Load/Decode do) before restoring.
//
// Restore fails on a session that has already analyzed: live state is
// strictly better than persisted state, and silently replacing it would
// discard valid MIR reuse.
func (s *Session) Restore(st *incrstate.State) error {
	if st == nil {
		return fmt.Errorf("rustprobe: Restore: nil state")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.res != nil {
		return fmt.Errorf("rustprobe: Restore: session has already analyzed")
	}
	if st.FnPos == nil {
		// Legacy pre-fn_pos state cannot prove positions didn't shift.
		return fmt.Errorf("rustprobe: Restore: state has no declaration-position fingerprints")
	}
	s.prior = st
	return nil
}

// ExportState snapshots the session's last successful round in the
// persistable incrstate form: content/interface/body/position hashes
// plus the merged and per-root findings, fully resolved to file:line:col
// so a later process can replay them without this FileSet. Returns nil
// if the session has no successful round to export.
func (s *Session) ExportState() *incrstate.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.res == nil || s.last == nil {
		return nil
	}
	st := &incrstate.State{
		Version:    StateVersion(),
		Files:      incrstate.ContentHashes(s.src),
		Interfaces: s.res.FileInterfaceHashes(),
		FnBodies:   s.res.FuncBodyHashes(),
		FnPos:      s.res.FuncDeclPositions(),
		Findings:   resolveFindings(s.fset, s.last.Findings),
		Local:      make(map[string][]incrstate.Finding, len(s.local)),
	}
	for fn, fs := range s.local {
		st.Local[fn] = resolveFindings(s.fset, fs)
	}
	// Manifest only: the fact caches hold pointers into live MIR and
	// cannot survive the process; record their sizes for observability.
	for name, c := range s.carries {
		if fc, ok := c.(detect.FactCounter); ok {
			if st.GlobalFacts == nil {
				st.GlobalFacts = map[string]int{}
			}
			st.GlobalFacts[name] = fc.FactCount()
		}
	}
	return st
}

// restoreRound is the first Analyze after Restore: a full frontend
// (nothing in-memory to reuse) followed by dirty-closure-only detection
// against the persisted hashes. Structural drift from the recorded
// state — different file set, any interface change, a function added or
// removed — falls back to full detection on the same frontend. The
// persisted state is consumed only by a successful round, so a syntax
// error keeps it armed for the next push.
func (s *Session) restoreRound(files map[string]string) (*Update, error) {
	prior := s.prior
	fset := source.NewFileSet()
	diags := source.NewDiagnostics(fset)
	res, arts, err := analyzeArtifacts(fset, diags, files)
	if err != nil {
		if diags.HasErrors() {
			return nil, &SyntaxError{Diags: diags.String()}
		}
		return nil, err
	}

	ifaces := res.FileInterfaceHashes()
	fnBodies := res.FuncBodyHashes()
	fnPos := res.FuncDeclPositions()
	if !sameKeysStr(prior.Files, incrstate.ContentHashes(files)) ||
		!mapsEqualStr(prior.Interfaces, ifaces) ||
		!sameKeysStr(prior.FnBodies, fnBodies) ||
		!sameKeysStr(prior.FnPos, fnPos) {
		up := s.commitFull(files, fset, res, arts, "restored state structure changed")
		up.Stats.Restored = true
		s.last.Stats.Restored = true
		return up, nil
	}
	res.Precise = s.precise

	// A function is dirty if its body text changed or its declaration
	// moved (an edit above it shifted every recorded position in it).
	var changed []string
	for q, h := range fnBodies {
		if prior.FnBodies[q] != h || prior.FnPos[q] != fnPos[q] {
			changed = append(changed, q)
		}
	}
	sort.Strings(changed)

	// Restored carries do not exist — fact caches are process-local — so
	// the first round's global detectors extract from scratch and seed
	// the map for every later round.
	s.carries = map[string]detect.Carry{}
	local, global, restricted, _ := res.detectIncremental(changed, s.carries)
	byName := map[string]*source.File{}
	for _, f := range fset.Files() {
		byName[f.Name] = f
	}
	merged := append([]Finding(nil), local...)
	localMap := make(map[string][]Finding, len(prior.Local))
	for _, f := range local {
		localMap[f.Function] = append(localMap[f.Function], f)
	}
	reusedFindings := 0
	roots := make([]string, 0, len(prior.Local))
	for root := range prior.Local {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		if restricted[root] {
			continue
		}
		rfs := prior.Local[root]
		fs := make([]Finding, 0, len(rfs))
		for _, rf := range rfs {
			fs = append(fs, findingFromResolved(byName, rf))
		}
		localMap[root] = fs
		merged = append(merged, fs...)
		reusedFindings += len(rfs)
	}
	merged = append(merged, global...)
	sortFindingsByPosition(fset, merged)

	s.fset = fset
	s.arts = arts
	s.res = res
	s.local = localMap
	s.src = make(map[string]string, len(files))
	for n, src := range files {
		s.src[n] = src
	}
	s.prior = nil
	up := &Update{Result: res, Findings: merged}
	up.Stats = UpdateStats{
		Restored:       true,
		Files:          len(files),
		FilesReparsed:  len(files),
		FuncsLowered:   len(res.Bodies),
		RootsDetected:  len(restricted),
		FindingsReused: reusedFindings,
		ChangedFns:     len(changed),
		FuncsTotal:     len(res.Bodies),
	}
	s.last = up
	return snapshotUpdate(up), nil
}

// resolveFindings materializes findings' span starts to file:line:col in
// the incrstate wire form.
func resolveFindings(fset *source.FileSet, fs []Finding) []incrstate.Finding {
	out := make([]incrstate.Finding, 0, len(fs))
	for _, f := range fs {
		pos := fset.Position(f.Span.Start)
		out = append(out, incrstate.Finding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    append([]string(nil), f.Notes...),
		})
	}
	return out
}

// findingFromResolved rebuilds a detector finding from its persisted
// resolved form, re-anchoring the span into the current registration of
// the same (byte-identical, per the content-hash precondition) file so
// position resolution and sorting work exactly as for fresh findings.
func findingFromResolved(byName map[string]*source.File, rf incrstate.Finding) Finding {
	var span source.Span
	if f := byName[rf.File]; f != nil {
		off := f.Base + f.OffsetOf(rf.Line, rf.Column)
		span = source.Span{Start: off, End: off}
	}
	sev := detect.SeverityWarning
	if rf.Severity == detect.SeverityError.String() {
		sev = detect.SeverityError
	}
	return Finding{
		Kind:     detect.Kind(rf.Kind),
		Severity: sev,
		Function: rf.Function,
		Span:     span,
		Message:  rf.Message,
		Notes:    append([]string(nil), rf.Notes...),
	}
}

// sameKeysStr reports whether two maps have identical key sets.
func sameKeysStr(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// mapsEqualStr reports whether two maps are identical.
func mapsEqualStr(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// snapshotUpdate returns a caller-owned copy of an update. The session
// keeps the original (and the finding slices behind it) as reuse state
// for later rounds, so the copy clones the findings slice and each
// finding's Notes — a caller that sorts, filters, appends to, or
// annotates the returned findings cannot corrupt subsequent rounds'
// merged output (mirroring the engine cache tier's defensive copies).
func snapshotUpdate(up *Update) *Update {
	return &Update{Result: up.Result, Findings: cloneFindings(up.Findings), Stats: up.Stats}
}

func cloneFindings(fs []Finding) []Finding {
	out := make([]Finding, len(fs))
	copy(out, fs)
	for i := range out {
		out[i].Notes = append([]string(nil), out[i].Notes...)
	}
	return out
}

// commonPrefixLen reports the length of the longest common byte prefix of
// a and b — positions at offsets strictly below it resolve identically in
// both revisions.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// DetectIncremental runs the detector suite incrementally: changedFns
// names the functions whose MIR changed since a previous round of this
// same Result shape (body-only edits; interfaces must be unchanged).
// Callers replaying cached findings for the untouched roots must also
// include every function whose resolved source position shifted (an edit
// above it in the same file), or the replayed findings carry positions
// from the old revision. It
// returns the local-detector findings recomputed over the dirty
// callgraph closure, the always-recomputed global-detector findings, and
// the recomputed root set — every root outside it kept its previous
// local findings, which the caller merges back in.
//
// The dirty closure is: the changed functions, their transitive callers
// (whose summaries can observe the change), and the transitive callees
// of all of those (so every summary or body lookup a local detector
// makes stays in-set), closed over closure families (a closure body
// changes exactly when its owner's body text does).
func (r *Result) DetectIncremental(changedFns []string) (local, global []Finding, recomputed map[string]bool) {
	local, global, recomputed, _ = r.detectIncremental(changedFns, nil)
	return local, global, recomputed
}

// detectIncremental is DetectIncremental threading the global detectors'
// fact caches: carries maps detector name to the carry its last run
// returned (missing or nil entries degrade to full extraction) and is
// updated in place. globalReused sums the per-function fact extractions
// skipped across all global detectors. A nil carries map runs every
// global detector from scratch without caching.
func (r *Result) detectIncremental(changedFns []string, carries map[string]detect.Carry) (local, global []Finding, recomputed map[string]bool, globalReused int) {
	changed := make(map[string]bool, len(changedFns))
	for _, q := range changedFns {
		changed[q] = true
	}
	ctx := r.Context()

	seeds := make([]string, 0, len(changedFns))
	for bname := range r.Bodies {
		if changed[closureBase(bname)] {
			seeds = append(seeds, bname)
		}
	}
	sort.Strings(seeds)
	recomputed = ctx.Graph.TransitiveCallers(seeds...)
	for _, bname := range seeds {
		recomputed[bname] = true
	}
	family := map[string][]string{}
	for bname := range r.Bodies {
		b := closureBase(bname)
		family[b] = append(family[b], bname)
	}
	var work []string
	add := func(n string) {
		if !recomputed[n] {
			recomputed[n] = true
		} else {
			return
		}
		work = append(work, n)
	}
	for n := range recomputed {
		work = append(work, n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range family[closureBase(n)] {
			add(m)
		}
		for _, e := range ctx.Graph.Callees[n] {
			add(e.Callee)
		}
	}

	restrictedBodies := make(map[string]*mir.Body, len(recomputed))
	for n := range recomputed {
		if b, ok := r.Bodies[n]; ok {
			restrictedBodies[n] = b
		}
	}
	localCtx := detect.NewContext(r.Program, restrictedBodies)
	for _, d := range localDetectors(r.Precise) {
		local = append(local, d.Run(localCtx)...)
	}
	// The dirty set handed to the global detectors is the re-lowered
	// body set (the seeds, closures included) — facts of any other
	// function are derived from an unchanged body object. The detectors
	// widen their summary recomputation to the caller closure themselves.
	dirty := make(map[string]bool, len(seeds))
	for _, bname := range seeds {
		dirty[bname] = true
	}
	for _, d := range globalDetectors() {
		inc, ok := d.(detect.Incremental)
		if !ok || carries == nil {
			global = append(global, d.Run(ctx)...)
			continue
		}
		fs, nc, n := inc.RunIncremental(ctx, carries[d.Name()], dirty)
		carries[d.Name()] = nc
		globalReused += n
		global = append(global, fs...)
	}
	return local, global, recomputed, globalReused
}

// closureBase strips the "::closure#N..." suffix lowering appends, naming
// the source-level function a body belongs to. Closures change exactly
// when their owner's body text changes, so reuse and dirtiness decisions
// work at this granularity.
func closureBase(name string) string {
	if i := strings.Index(name, "::closure#"); i >= 0 {
		return name[:i]
	}
	return name
}

// sortFindingsByPosition orders findings by resolved position (file,
// line, column) then kind and message. For a single FileSet this matches
// detect.SortFindings' span ordering; incremental rounds need the
// resolved form because cached findings carry spans from earlier file-set
// entries whose raw offsets are not comparable with fresh ones.
func sortFindingsByPosition(fset *source.FileSet, fs []Finding) {
	type entry struct {
		f         Finding
		file      string
		line, col int
	}
	entries := make([]entry, len(fs))
	for i, f := range fs {
		pos := fset.Position(f.Span.Start)
		entries[i] = entry{f: f, file: pos.File, line: pos.Line, col: pos.Column}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		if a.f.Kind != b.f.Kind {
			return a.f.Kind < b.f.Kind
		}
		return a.f.Message < b.f.Message
	})
	for i, e := range entries {
		fs[i] = e.f
	}
}
