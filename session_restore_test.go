package rustprobe

import (
	"strings"
	"testing"

	"rustprobe/internal/gen"
	"rustprobe/internal/incrstate"
)

// restoreBase is a three-file repo with a planted UAF in util.rs, a
// double-lock in lib.rs, and an independent clean function in main.rs —
// enough findings spread across files that a restore round has both
// findings to replay and a closure to recompute.
func restoreBase() map[string]string {
	return map[string]string{
		"lib.rs": `struct Shared { mu: Mutex<i32> }
impl Shared {
    fn twice(&self) {
        let a = self.mu.lock().unwrap();
        let b = self.mu.lock().unwrap();
    }
}
`,
		"util.rs": `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn helper(x: i32) -> i32 {
    x + 1
}
`,
		"main.rs": `fn main() {
    let y = helper(2);
}
`,
	}
}

// exportThrough runs one full round in a throwaway session and returns
// its exported state — the "previous daemon epoch".
func exportThrough(t *testing.T, files map[string]string) *incrstate.State {
	t.Helper()
	s := NewSession()
	if _, err := s.Analyze(files); err != nil {
		t.Fatalf("seed round: %v", err)
	}
	st := s.ExportState()
	if st == nil {
		t.Fatal("ExportState returned nil after a successful round")
	}
	return st
}

// TestSessionRestoreBodyDiff is the dirty-closure pin the issue asks
// for: after a restore, a 1-file body-only diff must run detection over
// only the dirty closure (RootsDetected < FuncsTotal), replay the
// untouched roots' findings (FindingsReused > 0), and still produce
// exactly the findings a from-scratch analysis of the edited tree does.
func TestSessionRestoreBodyDiff(t *testing.T) {
	base := restoreBase()
	st := exportThrough(t, base)

	edited := clone(base)
	edited["util.rs"] = strings.Replace(base["util.rs"], "x + 1", "x + 2", 1)

	s := NewSession()
	if err := s.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	up, err := s.Analyze(edited)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full {
		t.Fatalf("restored body-diff round ran full (%q); stats %+v", up.Stats.FullReason, up.Stats)
	}
	if !up.Stats.Restored {
		t.Fatalf("round not marked restored: %+v", up.Stats)
	}
	if up.Stats.RootsDetected >= up.Stats.FuncsTotal {
		t.Fatalf("restored round detected %d of %d roots — not dirty-closure-only", up.Stats.RootsDetected, up.Stats.FuncsTotal)
	}
	if up.Stats.FindingsReused == 0 {
		t.Fatalf("restored round replayed no findings: %+v", up.Stats)
	}
	if up.Stats.ChangedFns != 1 {
		t.Fatalf("ChangedFns = %d, want 1 (only helper's body changed)", up.Stats.ChangedFns)
	}
	got := sessionStrings(up)
	want := fullDetect(t, edited)
	if !equalStrings(got, want) {
		t.Fatalf("restored round diverges from full analysis\n got: %v\nwant: %v", got, want)
	}

	// The session is live now: a follow-up edit takes the normal
	// in-memory incremental path.
	again := clone(edited)
	again["util.rs"] = strings.Replace(edited["util.rs"], "x + 2", "x + 3", 1)
	up2, err := s.Analyze(again)
	if err != nil {
		t.Fatal(err)
	}
	if up2.Stats.Full || up2.Stats.Restored || up2.Stats.FilesReparsed != 1 {
		t.Fatalf("post-restore round should be plain incremental: %+v", up2.Stats)
	}
	if !equalStrings(sessionStrings(up2), fullDetect(t, again)) {
		t.Fatal("post-restore incremental round diverges from full analysis")
	}
}

// TestSessionRestoreUnchangedTree: re-pushing the identical tree after a
// restore replays every cached finding and recomputes no roots.
func TestSessionRestoreUnchangedTree(t *testing.T) {
	base := restoreBase()
	st := exportThrough(t, base)

	s := NewSession()
	if err := s.Restore(st); err != nil {
		t.Fatal(err)
	}
	up, err := s.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full || !up.Stats.Restored || up.Stats.ChangedFns != 0 || up.Stats.RootsDetected != 0 {
		t.Fatalf("unchanged restore round stats: %+v", up.Stats)
	}
	if !equalStrings(sessionStrings(up), fullDetect(t, base)) {
		t.Fatal("unchanged restore round diverges from full analysis")
	}
}

// TestSessionRestoreStructuralFallback: structural drift — a file
// added, an interface edit — must fall back to a clean full round, not
// replay stale findings.
func TestSessionRestoreStructuralFallback(t *testing.T) {
	base := restoreBase()

	t.Run("file added", func(t *testing.T) {
		st := exportThrough(t, base)
		edited := clone(base)
		edited["extra.rs"] = "fn extra() {}\n"
		s := NewSession()
		if err := s.Restore(st); err != nil {
			t.Fatal(err)
		}
		up, err := s.Analyze(edited)
		if err != nil {
			t.Fatal(err)
		}
		if !up.Stats.Full || !up.Stats.Restored {
			t.Fatalf("want full+restored fallback, got %+v", up.Stats)
		}
		if !equalStrings(sessionStrings(up), fullDetect(t, edited)) {
			t.Fatal("fallback round diverges from full analysis")
		}
	})

	t.Run("interface changed", func(t *testing.T) {
		st := exportThrough(t, base)
		edited := clone(base)
		edited["util.rs"] = strings.Replace(base["util.rs"], "fn helper(x: i32)", "fn helper(x: i64)", 1)
		s := NewSession()
		if err := s.Restore(st); err != nil {
			t.Fatal(err)
		}
		up, err := s.Analyze(edited)
		if err != nil {
			t.Fatal(err)
		}
		if !up.Stats.Full {
			t.Fatalf("interface edit after restore should run full, got %+v", up.Stats)
		}
		if !equalStrings(sessionStrings(up), fullDetect(t, edited)) {
			t.Fatal("fallback round diverges from full analysis")
		}
	})
}

// TestSessionRestoreErrors: Restore rejects nil state, legacy state,
// and live sessions; a syntax-error round keeps the armed state usable.
func TestSessionRestoreErrors(t *testing.T) {
	base := restoreBase()
	st := exportThrough(t, base)

	s := NewSession()
	if err := s.Restore(nil); err == nil {
		t.Fatal("Restore(nil) succeeded")
	}
	legacy := *st
	legacy.FnPos = nil
	if err := s.Restore(&legacy); err == nil {
		t.Fatal("Restore accepted a legacy fn_pos-less state")
	}
	if err := s.Restore(st); err != nil {
		t.Fatal(err)
	}

	// A broken push consumes nothing: the armed state still powers an
	// incremental round once the sources are fixed.
	broken := clone(base)
	broken["util.rs"] = "fn oops( {"
	if _, err := s.Analyze(broken); err == nil {
		t.Fatal("syntax-error round succeeded")
	}
	up, err := s.Analyze(base)
	if err != nil {
		t.Fatal(err)
	}
	if up.Stats.Full || !up.Stats.Restored {
		t.Fatalf("round after failed restore push: %+v", up.Stats)
	}

	// Live session: Restore must refuse.
	if err := s.Restore(st); err == nil {
		t.Fatal("Restore succeeded on a live session")
	}
}

// TestSessionRestoreGeneratedSeeds round-trips generated programs
// through export/restore with a body edit, checking findings against
// the from-scratch oracle each time.
func TestSessionRestoreGeneratedSeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := gen.Generate(seed)
		files := map[string]string{"gen.rs": p.Source}
		st := exportThrough(t, files)

		s := NewSession()
		if err := s.Restore(st); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		up, err := s.Analyze(files)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if up.Stats.Full || !up.Stats.Restored {
			t.Fatalf("seed %d: unchanged restore round stats %+v", seed, up.Stats)
		}
		if !equalStrings(sessionStrings(up), fullDetect(t, files)) {
			t.Fatalf("seed %d: restored findings diverge from full analysis", seed)
		}
	}
}

// TestExportStateShape: the exported record is versioned, carries the
// position fingerprints, and round-trips through the codec.
func TestExportStateShape(t *testing.T) {
	base := restoreBase()
	st := exportThrough(t, base)
	if st.Version != StateVersion() {
		t.Fatalf("exported version %q, want %q", st.Version, StateVersion())
	}
	if len(st.Files) != len(base) || len(st.FnPos) == 0 || len(st.FnBodies) == 0 {
		t.Fatalf("exported state incomplete: %d files, %d fn_pos, %d fn_bodies", len(st.Files), len(st.FnPos), len(st.FnBodies))
	}
	if !st.UnchangedFrom(base) {
		t.Fatal("exported content hashes do not match the exported tree")
	}
	data, err := incrstate.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if incrstate.Decode(data, StateVersion()) == nil {
		t.Fatal("exported state does not survive the codec round-trip")
	}
	if incrstate.Decode(data, "other-version") != nil {
		t.Fatal("codec accepted a mismatched version")
	}

	if NewSession().ExportState() != nil {
		t.Fatal("ExportState on an empty session should return nil")
	}
}
