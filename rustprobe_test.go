package rustprobe

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnalyzeSourceAndDetect(t *testing.T) {
	res, err := AnalyzeSource("t.rs", `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	findings := res.Detect()
	if len(findings) != 1 || findings[0].Kind != "double-lock" {
		t.Fatalf("findings = %+v", findings)
	}
	// Named selection.
	if n := len(res.Detect("use-after-free")); n != 0 {
		t.Errorf("uaf findings = %d", n)
	}
	if n := len(res.Detect("double-lock")); n != 1 {
		t.Errorf("double-lock findings = %d", n)
	}
}

func TestAnalyzeSourceSyntaxError(t *testing.T) {
	res, err := AnalyzeSource("bad.rs", "fn broken( {")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	if res == nil || !res.Diags.HasErrors() {
		t.Error("partial result should carry diagnostics")
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.rs"), []byte(`
fn f() {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := res.Detect("use-after-free")
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if _, err := AnalyzeDir(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

// AnalyzeDir must key files relative to the scanned root so findings and
// content-hash cache keys for identical trees match across machines.
func TestAnalyzeDirRelativePaths(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "a.rs"), []byte("fn f() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := res.Fset.Files()
	if len(files) != 1 || files[0].Name != "sub/a.rs" {
		var names []string
		for _, f := range files {
			names = append(names, f.Name)
		}
		t.Errorf("file names = %v, want [sub/a.rs]", names)
	}
}

// DetectParallel must produce findings identical to the serial Detect,
// for every selection shape the engine submits.
func TestDetectParallelMatchesDetect(t *testing.T) {
	for _, group := range []string{"detector-eval", "patterns", "unsafe", "all"} {
		res, err := AnalyzeCorpus(group)
		if err != nil {
			t.Fatal(err)
		}
		for _, names := range [][]string{nil, {"use-after-free"}, {"double-lock", "conflicting-lock-order"}} {
			serial := res.Detect(names...)
			parallel := res.DetectParallel(names...)
			if len(serial) != len(parallel) {
				t.Fatalf("%s %v: serial %d findings, parallel %d", group, names, len(serial), len(parallel))
			}
			for i := range serial {
				if serial[i].Format(res.Fset) != parallel[i].Format(res.Fset) {
					t.Errorf("%s %v: finding %d diverges:\n serial:   %s\n parallel: %s",
						group, names, i, serial[i].Format(res.Fset), parallel[i].Format(res.Fset))
				}
			}
		}
	}
}

func TestAnalyzeCorpusGroups(t *testing.T) {
	for _, g := range []string{"detector-eval", "patterns", "unsafe", "all"} {
		res, err := AnalyzeCorpus(g)
		if err != nil {
			t.Fatalf("corpus %s: %v", g, err)
		}
		if len(res.Bodies) == 0 {
			t.Errorf("corpus %s lowered no bodies", g)
		}
	}
	if _, err := AnalyzeCorpus("nope"); err == nil {
		t.Error("unknown group should error")
	}
}

func TestDetectorRegistry(t *testing.T) {
	names := DetectorNames()
	want := []string{"use-after-free", "double-lock", "conflicting-lock-order", "blocking", "drop-bugs", "uninitialized-read", "interior-mutability", "race", "dynamic"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestMIRAccess(t *testing.T) {
	res, err := AnalyzeSource("t.rs", `fn g() { let x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	body := res.MIR("g")
	if body == nil {
		t.Fatal("no MIR for g")
	}
	if !strings.Contains(body.String(), "StorageLive") {
		t.Error("MIR dump missing storage markers")
	}
	if res.MIR("missing") != nil {
		t.Error("missing function should be nil")
	}
}

func TestScanUnsafeViaFacade(t *testing.T) {
	res, err := AnalyzeSource("u.rs", `
fn f() { unsafe { let p = 0 as *mut u8; *p = 1; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.ScanUnsafe()
	if rep.Regions != 1 {
		t.Errorf("regions = %d", rep.Regions)
	}
	if len(rep.InteriorFns) != 1 {
		t.Errorf("interior fns = %d", len(rep.InteriorFns))
	}
}

func TestDynamicDetectorOptIn(t *testing.T) {
	res, err := AnalyzeSource("t.rs", `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Default suite: one static double-lock finding, no dynamic ones.
	def := res.Detect()
	if len(def) != 1 {
		t.Fatalf("default findings = %d: %+v", len(def), def)
	}
	// Named: the dynamic explorer confirms the same deadlock.
	dyn := res.Detect("dynamic")
	if len(dyn) != 1 || dyn[0].Kind != "double-lock" {
		t.Fatalf("dynamic findings = %+v", dyn)
	}
	if !strings.Contains(dyn[0].Message, "(dynamic)") {
		t.Errorf("dynamic finding unmarked: %q", dyn[0].Message)
	}
}

// ExampleAnalyzeSource demonstrates the public API on the paper's
// Figure 8 double-lock bug.
func ExampleAnalyzeSource() {
	src := `
struct Inner { m: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
pub fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`
	res, err := AnalyzeSource("figure8.rs", src)
	if err != nil {
		panic(err)
	}
	for _, f := range res.Detect("double-lock") {
		fmt.Printf("%s in %s\n", f.Kind, f.Function)
	}
	// Output:
	// double-lock in do_request
}
