// Package token defines the lexical token kinds of the Rust subset accepted
// by rustprobe, together with keyword and operator tables used by the lexer
// and parser.
package token

import "rustprobe/internal/source"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation names follow rustc's lexer where practical.
const (
	EOF Kind = iota
	Illegal
	Comment // retained only when the lexer is configured to keep comments

	// Literals and identifiers.
	Ident
	Lifetime // 'a (includes the leading quote)
	Int
	Float
	Str
	RawStr
	Char
	Byte
	ByteStr

	// Keywords.
	KwAs
	KwBreak
	KwConst
	KwContinue
	KwCrate
	KwDyn
	KwElse
	KwEnum
	KwExtern
	KwFalse
	KwFn
	KwFor
	KwIf
	KwImpl
	KwIn
	KwLet
	KwLoop
	KwMatch
	KwMod
	KwMove
	KwMut
	KwPub
	KwRef
	KwReturn
	KwSelfValue // self
	KwSelfType  // Self
	KwStatic
	KwStruct
	KwSuper
	KwTrait
	KwTrue
	KwType
	KwUnion
	KwUnsafe
	KwUse
	KwWhere
	KwWhile

	// Punctuation and operators.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Comma     // ,
	Semi      // ;
	Colon     // :
	PathSep   // ::
	Arrow     // ->
	FatArrow  // =>
	Pound     // #
	Dollar    // $
	Question  // ?
	Dot       // .
	DotDot    // ..
	DotDotEq  // ..=
	DotDotDot // ...
	At        // @
	Underscore

	Eq        // =
	EqEq      // ==
	Ne        // !=
	Lt        // <
	Le        // <=
	Gt        // >
	Ge        // >=
	AndAnd    // &&
	OrOr      // ||
	Not       // !
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Caret     // ^
	And       // &
	Or        // |
	Shl       // <<
	Shr       // >>
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	CaretEq   // ^=
	AndEq     // &=
	OrEq      // |=
	ShlEq     // <<=
	ShrEq     // >>=
)

var kindNames = map[Kind]string{
	EOF:         "EOF",
	Illegal:     "Illegal",
	Comment:     "Comment",
	Ident:       "Ident",
	Lifetime:    "Lifetime",
	Int:         "Int",
	Float:       "Float",
	Str:         "Str",
	RawStr:      "RawStr",
	Char:        "Char",
	Byte:        "Byte",
	ByteStr:     "ByteStr",
	KwAs:        "as",
	KwBreak:     "break",
	KwConst:     "const",
	KwContinue:  "continue",
	KwCrate:     "crate",
	KwDyn:       "dyn",
	KwElse:      "else",
	KwEnum:      "enum",
	KwExtern:    "extern",
	KwFalse:     "false",
	KwFn:        "fn",
	KwFor:       "for",
	KwIf:        "if",
	KwImpl:      "impl",
	KwIn:        "in",
	KwLet:       "let",
	KwLoop:      "loop",
	KwMatch:     "match",
	KwMod:       "mod",
	KwMove:      "move",
	KwMut:       "mut",
	KwPub:       "pub",
	KwRef:       "ref",
	KwReturn:    "return",
	KwSelfValue: "self",
	KwSelfType:  "Self",
	KwStatic:    "static",
	KwStruct:    "struct",
	KwSuper:     "super",
	KwTrait:     "trait",
	KwTrue:      "true",
	KwType:      "type",
	KwUnion:     "union",
	KwUnsafe:    "unsafe",
	KwUse:       "use",
	KwWhere:     "where",
	KwWhile:     "while",
	LParen:      "(",
	RParen:      ")",
	LBrace:      "{",
	RBrace:      "}",
	LBracket:    "[",
	RBracket:    "]",
	Comma:       ",",
	Semi:        ";",
	Colon:       ":",
	PathSep:     "::",
	Arrow:       "->",
	FatArrow:    "=>",
	Pound:       "#",
	Dollar:      "$",
	Question:    "?",
	Dot:         ".",
	DotDot:      "..",
	DotDotEq:    "..=",
	DotDotDot:   "...",
	At:          "@",
	Underscore:  "_",
	Eq:          "=",
	EqEq:        "==",
	Ne:          "!=",
	Lt:          "<",
	Le:          "<=",
	Gt:          ">",
	Ge:          ">=",
	AndAnd:      "&&",
	OrOr:        "||",
	Not:         "!",
	Plus:        "+",
	Minus:       "-",
	Star:        "*",
	Slash:       "/",
	Percent:     "%",
	Caret:       "^",
	And:         "&",
	Or:          "|",
	Shl:         "<<",
	Shr:         ">>",
	PlusEq:      "+=",
	MinusEq:     "-=",
	StarEq:      "*=",
	SlashEq:     "/=",
	PercentEq:   "%=",
	CaretEq:     "^=",
	AndEq:       "&=",
	OrEq:        "|=",
	ShlEq:       "<<=",
	ShrEq:       ">>=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(?)"
}

// Keywords maps source text to keyword kinds.
var Keywords = map[string]Kind{
	"as":       KwAs,
	"break":    KwBreak,
	"const":    KwConst,
	"continue": KwContinue,
	"crate":    KwCrate,
	"dyn":      KwDyn,
	"else":     KwElse,
	"enum":     KwEnum,
	"extern":   KwExtern,
	"false":    KwFalse,
	"fn":       KwFn,
	"for":      KwFor,
	"if":       KwIf,
	"impl":     KwImpl,
	"in":       KwIn,
	"let":      KwLet,
	"loop":     KwLoop,
	"match":    KwMatch,
	"mod":      KwMod,
	"move":     KwMove,
	"mut":      KwMut,
	"pub":      KwPub,
	"ref":      KwRef,
	"return":   KwReturn,
	"self":     KwSelfValue,
	"Self":     KwSelfType,
	"static":   KwStatic,
	"struct":   KwStruct,
	"super":    KwSuper,
	"trait":    KwTrait,
	"true":     KwTrue,
	"type":     KwType,
	"union":    KwUnion,
	"unsafe":   KwUnsafe,
	"use":      KwUse,
	"where":    KwWhere,
	"while":    KwWhile,
}

// IsKeyword reports whether k is a keyword kind.
func (k Kind) IsKeyword() bool { return k >= KwAs && k <= KwWhile }

// IsLiteral reports whether k is a literal or identifier-class kind.
func (k Kind) IsLiteral() bool { return k >= Ident && k <= ByteStr }

// IsAssignOp reports whether k is a compound assignment operator.
func (k Kind) IsAssignOp() bool { return k >= PlusEq && k <= ShrEq }

// AssignBase returns the non-assigning operator underlying a compound
// assignment (PlusEq → Plus). It returns Illegal for other kinds.
func (k Kind) AssignBase() Kind {
	switch k {
	case PlusEq:
		return Plus
	case MinusEq:
		return Minus
	case StarEq:
		return Star
	case SlashEq:
		return Slash
	case PercentEq:
		return Percent
	case CaretEq:
		return Caret
	case AndEq:
		return And
	case OrEq:
		return Or
	case ShlEq:
		return Shl
	case ShrEq:
		return Shr
	default:
		return Illegal
	}
}

// Token is one lexeme with its span and raw text.
type Token struct {
	Kind Kind
	Text string
	Span source.Span
}

func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return t.Kind.String() + "(" + t.Text + ")"
	}
	return t.Kind.String()
}

// Is reports whether the token has the given kind.
func (t Token) Is(k Kind) bool { return t.Kind == k }
