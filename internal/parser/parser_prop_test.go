package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rustprobe/internal/ast"
)

// TestParserTotal: the parser never panics and always terminates, for
// arbitrary input including garbage.
func TestParserTotal(t *testing.T) {
	prop := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		crate, _, _ := ParseString("fuzz.rs", src)
		return crate != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserTotalOnTokenSoup: same, with lexically valid but structurally
// random token streams (more likely to reach deep parser paths).
func TestParserTotalOnTokenSoup(t *testing.T) {
	words := []string{
		"fn", "f", "(", ")", "{", "}", "let", "x", "=", "1", ";", "match",
		"if", "else", "unsafe", "impl", "struct", "S", "&", "mut", "*",
		"->", "::", ".", ",", "<", ">", "[", "]", "loop", "while", "for",
		"in", "return", "break", "|", "move", "self", "Some", "None",
		"=>", "_", "'a", "#",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := 1 + r.Intn(80)
		for i := 0; i < n; i++ {
			b.WriteString(words[r.Intn(len(words))])
			b.WriteByte(' ')
		}
		crate, _, _ := ParseString("soup.rs", b.String())
		return crate != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestSpansNest: every walked node's span is contained in its crate span,
// on a corpus of realistic programs.
func TestSpansNest(t *testing.T) {
	srcs := []string{
		`fn f(x: Arc<Mutex<i32>>) -> Option<i32> { if c { Some(1) } else { None } }`,
		`struct S { a: Vec<u8> } impl S { fn m(&self) -> u8 { self.a[0] } }`,
		`fn g() { for i in 0..10 { match i { 0 => {}, _ => break } } }`,
		`unsafe fn h(p: *mut u8) { *p = 1; }`,
	}
	for _, src := range srcs {
		crate, _, diags := ParseString("t.rs", src)
		if diags.HasErrors() {
			t.Fatalf("parse errors: %s", diags.String())
		}
		ast.Inspect(crate, func(n ast.Node) {
			sp := n.Span()
			if sp.Len() == 0 && sp.Start == 0 {
				return // synthesized node without position
			}
			if !crate.Span().ContainsSpan(sp) {
				t.Errorf("node %T span %v escapes crate span %v in %q", n, sp, crate.Span(), src)
			}
		})
	}
}

// TestDeterministicParse: parsing the same input twice yields structurally
// identical ASTs (verified via the walk sequence of node types and spans).
func TestDeterministicParse(t *testing.T) {
	src := `
struct Engine { state: Mutex<i32> }
impl Engine {
    fn run(&self) {
        let g = self.state.lock().unwrap();
        match *g { 0 => idle(), n => work(n) }
    }
}
`
	sig := func() []string {
		crate, _, _ := ParseString("d.rs", src)
		var out []string
		ast.Inspect(crate, func(n ast.Node) {
			out = append(out, nodeSig(n))
		})
		return out
	}
	a, b := sig(), sig()
	if len(a) != len(b) {
		t.Fatal("nondeterministic walk length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func nodeSig(n ast.Node) string {
	return fmt.Sprintf("%T:%d:%d", n, n.Span().Start, n.Span().End)
}
