package parser

import (
	"rustprobe/internal/ast"
	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

// Binding powers for the Pratt expression parser, low to high. Assignment
// is right-associative and handled separately; ranges are non-associative.
const (
	precLowest = iota
	precAssign
	precRange
	precOrOr
	precAndAnd
	precCompare
	precBitOr
	precBitXor
	precBitAnd
	precShift
	precAdd
	precMul
	precCast
)

func binPrec(k token.Kind) int {
	switch k {
	case token.Eq:
		return precAssign
	case token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq, token.PercentEq,
		token.CaretEq, token.AndEq, token.OrEq, token.ShlEq, token.ShrEq:
		return precAssign
	case token.DotDot, token.DotDotEq:
		return precRange
	case token.OrOr:
		return precOrOr
	case token.AndAnd:
		return precAndAnd
	case token.EqEq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge:
		return precCompare
	case token.Or:
		return precBitOr
	case token.Caret:
		return precBitXor
	case token.And:
		return precBitAnd
	case token.Shl, token.Shr:
		return precShift
	case token.Plus, token.Minus:
		return precAdd
	case token.Star, token.Slash, token.Percent:
		return precMul
	case token.KwAs:
		return precCast
	default:
		return precLowest
	}
}

func binOpFor(k token.Kind) ast.BinOp {
	switch k {
	case token.Plus:
		return ast.BinAdd
	case token.Minus:
		return ast.BinSub
	case token.Star:
		return ast.BinMul
	case token.Slash:
		return ast.BinDiv
	case token.Percent:
		return ast.BinRem
	case token.AndAnd:
		return ast.BinAnd
	case token.OrOr:
		return ast.BinOr
	case token.And:
		return ast.BinBitAnd
	case token.Or:
		return ast.BinBitOr
	case token.Caret:
		return ast.BinBitXor
	case token.Shl:
		return ast.BinShl
	case token.Shr:
		return ast.BinShr
	case token.EqEq:
		return ast.BinEq
	case token.Ne:
		return ast.BinNe
	case token.Lt:
		return ast.BinLt
	case token.Le:
		return ast.BinLe
	case token.Gt:
		return ast.BinGt
	case token.Ge:
		return ast.BinGe
	}
	return ast.BinAdd
}

// parseExpr parses a full expression.
func (p *Parser) parseExpr() ast.Expr { return p.parseExprBP(precLowest) }

// parseExprNoStruct parses an expression with struct literals disabled
// (used for if/while/match/for head positions).
func (p *Parser) parseExprNoStruct() ast.Expr {
	save := p.noStruct
	p.noStruct = true
	e := p.parseExprBP(precLowest)
	p.noStruct = save
	return e
}

func (p *Parser) parseExprBP(minPrec int) ast.Expr {
	start := p.cur().Span
	var lhs ast.Expr

	// Prefix range `..x` / `..=x` / `..`.
	if p.at(token.DotDot) || p.at(token.DotDotEq) {
		inclusive := p.at(token.DotDotEq)
		p.bump()
		var hi ast.Expr
		if p.startsExpr() {
			hi = p.parseExprBP(precRange + 1)
		}
		return &ast.RangeExpr{Hi: hi, Inclusive: inclusive, Sp: p.span(start)}
	}

	lhs = p.parseUnary()

	for {
		k := p.cur().Kind
		prec := binPrec(k)
		if prec == precLowest || prec < minPrec {
			return lhs
		}
		switch {
		case k == token.KwAs:
			p.bump()
			ty := p.parseType()
			lhs = &ast.CastExpr{X: lhs, Ty: ty, Sp: p.span(start)}
		case k == token.Eq:
			p.bump()
			rhs := p.parseExprBP(precAssign) // right-assoc
			lhs = &ast.AssignExpr{L: lhs, R: rhs, Sp: p.span(start)}
		case k.IsAssignOp():
			p.bump()
			op := binOpFor(k.AssignBase())
			rhs := p.parseExprBP(precAssign)
			lhs = &ast.AssignExpr{L: lhs, R: rhs, Op: &op, Sp: p.span(start)}
		case k == token.DotDot || k == token.DotDotEq:
			inclusive := k == token.DotDotEq
			p.bump()
			var hi ast.Expr
			if p.startsExpr() {
				hi = p.parseExprBP(precRange + 1)
			}
			lhs = &ast.RangeExpr{Lo: lhs, Hi: hi, Inclusive: inclusive, Sp: p.span(start)}
		default:
			p.bump()
			rhs := p.parseExprBP(prec + 1)
			lhs = &ast.BinaryExpr{Op: binOpFor(k), L: lhs, R: rhs, Sp: p.span(start)}
		}
	}
}

// startsExpr reports whether the current token can begin an expression;
// used to decide whether a range has an upper bound.
func (p *Parser) startsExpr() bool {
	switch p.cur().Kind {
	case token.Ident, token.Int, token.Float, token.Str, token.RawStr, token.Char,
		token.Byte, token.ByteStr, token.KwTrue, token.KwFalse, token.LParen,
		token.LBracket, token.LBrace, token.Minus, token.Not, token.Star,
		token.And, token.AndAnd, token.KwSelfValue, token.KwSelfType, token.KwCrate,
		token.KwIf, token.KwMatch, token.KwUnsafe, token.KwLoop, token.KwWhile,
		token.KwFor, token.KwMove, token.Or, token.OrOr, token.KwReturn,
		token.KwBreak, token.KwContinue, token.KwSuper:
		return true
	}
	return false
}

func (p *Parser) parseUnary() ast.Expr {
	start := p.cur().Span
	switch p.cur().Kind {
	case token.Minus:
		p.bump()
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: ast.UnNeg, X: x, Sp: p.span(start)}
	case token.Not:
		p.bump()
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: ast.UnNot, X: x, Sp: p.span(start)}
	case token.Star:
		p.bump()
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: ast.UnDeref, X: x, Sp: p.span(start)}
	case token.And, token.AndAnd:
		double := p.at(token.AndAnd)
		p.bump()
		mut := p.eat(token.KwMut)
		x := p.parseUnary()
		b := &ast.BorrowExpr{Mut: mut, X: x, Sp: p.span(start)}
		if double {
			return &ast.BorrowExpr{X: b, Sp: p.span(start)}
		}
		return b
	default:
		return p.parsePostfix()
	}
}

func (p *Parser) parsePostfix() ast.Expr {
	start := p.cur().Span
	e := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.bump()
			switch {
			case p.at(token.Ident):
				name := p.bump().Text
				if name == "await" {
					e = &ast.AwaitExpr{X: e, Sp: p.span(start)}
					continue
				}
				var generics []ast.Type
				if p.at(token.PathSep) && p.peekN(1).Kind == token.Lt {
					p.bump()
					generics, _ = p.parseGenericArgs()
				}
				if p.at(token.LParen) {
					args := p.parseCallArgs()
					e = &ast.MethodCallExpr{Recv: e, Name: name, Generics: generics, Args: args, Sp: p.span(start)}
				} else {
					e = &ast.FieldExpr{X: e, Name: name, Sp: p.span(start)}
				}
			case p.at(token.Int):
				idx := p.bump().Text
				e = &ast.FieldExpr{X: e, Name: idx, Sp: p.span(start)}
			case p.at(token.Float):
				// `t.0.1` lexes the tail as a float "0.1": split it.
				t := p.bump()
				parts := splitFloatField(t.Text)
				for _, part := range parts {
					e = &ast.FieldExpr{X: e, Name: part, Sp: p.span(start)}
				}
			default:
				p.errorf("expected field or method name after `.`")
				return e
			}
		case token.LParen:
			args := p.parseCallArgs()
			e = &ast.CallExpr{Fn: e, Args: args, Sp: p.span(start)}
		case token.LBracket:
			p.bump()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			e = &ast.IndexExpr{X: e, Index: idx, Sp: p.span(start)}
		case token.Question:
			p.bump()
			e = &ast.TryExpr{X: e, Sp: p.span(start)}
		default:
			return e
		}
	}
}

func splitFloatField(text string) []string {
	var parts []string
	cur := ""
	for i := 0; i < len(text); i++ {
		if text[i] == '.' {
			parts = append(parts, cur)
			cur = ""
		} else {
			cur += string(text[i])
		}
	}
	parts = append(parts, cur)
	return parts
}

func (p *Parser) parseCallArgs() []ast.Expr {
	p.expect(token.LParen)
	var args []ast.Expr
	save := p.noStruct
	p.noStruct = false // parentheses re-enable struct literals
	for !p.at(token.RParen) && !p.at(token.EOF) {
		args = append(args, p.parseExpr())
		if !p.eat(token.Comma) {
			break
		}
	}
	p.noStruct = save
	p.expect(token.RParen)
	return args
}

func (p *Parser) parsePrimary() ast.Expr {
	start := p.cur().Span
	switch p.cur().Kind {
	case token.Int:
		return &ast.LitExpr{Kind: ast.LitInt, Text: p.bump().Text, Sp: p.span(start)}
	case token.Float:
		return &ast.LitExpr{Kind: ast.LitFloat, Text: p.bump().Text, Sp: p.span(start)}
	case token.Str, token.RawStr:
		return &ast.LitExpr{Kind: ast.LitStr, Text: p.bump().Text, Sp: p.span(start)}
	case token.Char:
		return &ast.LitExpr{Kind: ast.LitChar, Text: p.bump().Text, Sp: p.span(start)}
	case token.Byte:
		return &ast.LitExpr{Kind: ast.LitByte, Text: p.bump().Text, Sp: p.span(start)}
	case token.ByteStr:
		return &ast.LitExpr{Kind: ast.LitByteStr, Text: p.bump().Text, Sp: p.span(start)}
	case token.KwTrue, token.KwFalse:
		return &ast.LitExpr{Kind: ast.LitBool, Text: p.bump().Text, Sp: p.span(start)}
	case token.Ident, token.KwSelfValue, token.KwSelfType, token.KwCrate, token.KwSuper:
		return p.parsePathOrStructExpr()
	case token.Lt:
		// Qualified path expression `<T as Trait>::f(...)`.
		p.bump()
		p.parseType()
		var traitSeg string
		if p.eat(token.KwAs) {
			traitSeg = p.parsePathText()
		}
		_ = traitSeg
		p.splitGtIfClosing()
		p.expect(token.PathSep)
		return p.parsePathOrStructExpr()
	case token.LParen:
		p.bump()
		save := p.noStruct
		p.noStruct = false
		if p.at(token.RParen) {
			p.bump()
			p.noStruct = save
			return &ast.TupleExpr{Sp: p.span(start)} // unit
		}
		first := p.parseExpr()
		if p.at(token.Comma) {
			elems := []ast.Expr{first}
			for p.eat(token.Comma) {
				if p.at(token.RParen) {
					break
				}
				elems = append(elems, p.parseExpr())
			}
			p.expect(token.RParen)
			p.noStruct = save
			return &ast.TupleExpr{Elems: elems, Sp: p.span(start)}
		}
		p.expect(token.RParen)
		p.noStruct = save
		return &ast.ParenExpr{X: first, Sp: p.span(start)}
	case token.LBracket:
		p.bump()
		save := p.noStruct
		p.noStruct = false
		arr := &ast.ArrayExpr{}
		if !p.at(token.RBracket) {
			first := p.parseExpr()
			if p.eat(token.Semi) {
				arr.Elems = []ast.Expr{first}
				arr.Repeat = p.parseExpr()
			} else {
				arr.Elems = append(arr.Elems, first)
				for p.eat(token.Comma) {
					if p.at(token.RBracket) {
						break
					}
					arr.Elems = append(arr.Elems, p.parseExpr())
				}
			}
		}
		p.noStruct = save
		p.expect(token.RBracket)
		arr.Sp = p.span(start)
		return arr
	case token.LBrace:
		return p.parseBlock()
	case token.KwUnsafe:
		p.bump()
		b := p.parseBlock()
		b.Unsafety = true
		b.Sp = p.span(start)
		return b
	case token.KwIf:
		return p.parseIf()
	case token.KwMatch:
		return p.parseMatch()
	case token.KwWhile:
		return p.parseWhile("")
	case token.KwLoop:
		return p.parseLoop("")
	case token.KwFor:
		return p.parseFor("")
	case token.Lifetime:
		// Loop label: 'a: loop { ... }
		label := p.bump().Text
		p.expect(token.Colon)
		switch p.cur().Kind {
		case token.KwLoop:
			return p.parseLoop(label)
		case token.KwWhile:
			return p.parseWhile(label)
		case token.KwFor:
			return p.parseFor(label)
		default:
			p.errorf("expected loop after label")
			return p.parseExpr()
		}
	case token.KwReturn:
		p.bump()
		var x ast.Expr
		if p.startsExpr() {
			x = p.parseExpr()
		}
		return &ast.ReturnExpr{X: x, Sp: p.span(start)}
	case token.KwBreak:
		p.bump()
		label := ""
		if p.at(token.Lifetime) {
			label = p.bump().Text
		}
		var x ast.Expr
		if p.startsExpr() && !p.at(token.LBrace) {
			x = p.parseExpr()
		}
		return &ast.BreakExpr{Label: label, X: x, Sp: p.span(start)}
	case token.KwContinue:
		p.bump()
		label := ""
		if p.at(token.Lifetime) {
			label = p.bump().Text
		}
		return &ast.ContinueExpr{Label: label, Sp: p.span(start)}
	case token.Or, token.OrOr, token.KwMove:
		return p.parseClosure()
	case token.DotDot, token.DotDotEq:
		// Handled in parseExprBP; defensive here.
		inclusive := p.at(token.DotDotEq)
		p.bump()
		var hi ast.Expr
		if p.startsExpr() {
			hi = p.parseExprBP(precRange + 1)
		}
		return &ast.RangeExpr{Hi: hi, Inclusive: inclusive, Sp: p.span(start)}
	default:
		p.errorf("expected expression, found %q", p.cur().Text)
		p.bump()
		return &ast.LitExpr{Kind: ast.LitInt, Text: "0", Sp: p.span(start)}
	}
}

// parsePathOrStructExpr parses a path expression, a macro call, or a struct
// literal when struct literals are enabled.
func (p *Parser) parsePathOrStructExpr() ast.Expr {
	start := p.cur().Span
	var segs []string
	var generics []ast.Type
	for {
		switch p.cur().Kind {
		case token.Ident, token.KwSelfValue, token.KwSelfType, token.KwCrate, token.KwSuper:
			segs = append(segs, p.bump().Text)
		default:
			p.errorf("expected path segment, found %q", p.cur().Text)
			return &ast.PathExpr{Segments: segs, Sp: p.span(start)}
		}
		// Macro call: name!(...), name![...], name!{...}
		if p.at(token.Not) && len(segs) >= 1 {
			switch p.peekN(1).Kind {
			case token.LParen, token.LBracket, token.LBrace:
				return p.parseMacroCall(segs, start)
			}
		}
		if p.at(token.PathSep) {
			if p.peekN(1).Kind == token.Lt {
				p.bump()
				generics, _ = p.parseGenericArgs()
				if p.at(token.PathSep) {
					p.bump()
					continue
				}
				break
			}
			p.bump()
			continue
		}
		break
	}
	// Struct literal: Path { field: ..., .. } — only when enabled.
	if p.at(token.LBrace) && !p.noStruct && isTypeLikePath(segs) {
		return p.parseStructLiteral(segs, start)
	}
	return &ast.PathExpr{Segments: segs, Generics: generics, Sp: p.span(start)}
}

// isTypeLikePath reports whether a path plausibly names a struct type for
// struct-literal purposes: its last segment begins with an uppercase letter
// or is `Self`.
func isTypeLikePath(segs []string) bool {
	if len(segs) == 0 {
		return false
	}
	last := segs[len(segs)-1]
	if last == "" {
		return false
	}
	return last == "Self" || last[0] >= 'A' && last[0] <= 'Z'
}

func (p *Parser) parseStructLiteral(segs []string, start source.Span) ast.Expr {
	p.expect(token.LBrace)
	se := &ast.StructExpr{Segments: segs}
	save := p.noStruct
	p.noStruct = false
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		if p.at(token.DotDot) {
			p.bump()
			se.Base = p.parseExpr()
			break
		}
		fname := ""
		if p.at(token.Ident) {
			fname = p.bump().Text
		} else if p.at(token.Int) {
			fname = p.bump().Text
		} else {
			p.errorf("expected field name in struct literal")
			break
		}
		var val ast.Expr
		if p.eat(token.Colon) {
			val = p.parseExpr()
		} else {
			val = &ast.PathExpr{Segments: []string{fname}, Sp: p.span(start)}
		}
		se.Fields = append(se.Fields, ast.StructExprField{Name: fname, Value: val})
		if !p.eat(token.Comma) {
			break
		}
	}
	p.noStruct = save
	p.expect(token.RBrace)
	se.Sp = p.span(start)
	return se
}

// parseMacroCall parses `name!(...)`: for known expression-list macros the
// arguments are parsed as expressions; otherwise the body is skipped and
// retained as raw text.
func (p *Parser) parseMacroCall(segs []string, start source.Span) ast.Expr {
	name := segs[len(segs)-1]
	p.expect(token.Not)
	open := p.cur().Kind
	var close token.Kind
	switch open {
	case token.LParen:
		close = token.RParen
	case token.LBracket:
		close = token.RBracket
	default:
		close = token.RBrace
	}
	p.bump()
	mc := &ast.MacroCallExpr{Name: name}
	rawStart := p.cur().Span.Start

	parseAsExprs := true
	switch name {
	case "vec", "println", "print", "eprintln", "eprint", "panic", "assert",
		"assert_eq", "assert_ne", "format", "write", "writeln", "dbg", "matches",
		"unreachable", "debug_assert", "todo", "unimplemented", "Box":
	default:
		parseAsExprs = false
	}

	if parseAsExprs {
		save := p.noStruct
		p.noStruct = false
		for !p.at(close) && !p.at(token.EOF) {
			// vec![x; n] repeat form.
			mc.Args = append(mc.Args, p.parseExpr())
			if !p.eat(token.Comma) && !p.eat(token.Semi) {
				break
			}
		}
		p.noStruct = save
		end := p.cur().Span.Start
		mc.Raw = p.textBetween(rawStart, end)
		p.expect(close)
	} else {
		depth := 1
		end := rawStart
		for depth > 0 && !p.at(token.EOF) {
			t := p.bump()
			switch t.Kind {
			case open:
				depth++
			case close:
				depth--
			case token.LParen, token.LBracket, token.LBrace:
				depth++
			case token.RParen, token.RBracket, token.RBrace:
				depth--
			}
			if depth > 0 {
				end = t.Span.End
			}
		}
		mc.Raw = p.textBetween(rawStart, end)
	}
	mc.Sp = p.span(start)
	return mc
}

func (p *Parser) parseClosure() ast.Expr {
	start := p.cur().Span
	move := p.eat(token.KwMove)
	cl := &ast.ClosureExpr{Move: move}
	if p.eat(token.OrOr) {
		// no params
	} else {
		p.expect(token.Or)
		for !p.at(token.Or) && !p.at(token.EOF) {
			pstart := p.cur().Span
			pat := p.parsePatternNoAlt()
			prm := &ast.Param{Pat: pat, Sp: pstart}
			if bp, ok := pat.(*ast.BindPat); ok {
				prm.Name = bp.Name
			}
			if p.eat(token.Colon) {
				prm.Ty = p.parseType()
			}
			prm.Sp = p.span(pstart)
			cl.Params = append(cl.Params, prm)
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.Or)
	}
	if p.eat(token.Arrow) {
		p.parseType()
		cl.Body = p.parseBlock()
	} else {
		cl.Body = p.parseExpr()
	}
	cl.Sp = p.span(start)
	return cl
}

func (p *Parser) parseIf() ast.Expr {
	start := p.cur().Span
	p.expect(token.KwIf)
	ie := &ast.IfExpr{}
	if p.eat(token.KwLet) {
		ie.LetPat = p.parsePattern()
		p.expect(token.Eq)
	}
	ie.Cond = p.parseExprNoStruct()
	ie.Then = p.parseBlock()
	if p.eat(token.KwElse) {
		if p.at(token.KwIf) {
			ie.Else = p.parseIf()
		} else {
			ie.Else = p.parseBlock()
		}
	}
	ie.Sp = p.span(start)
	return ie
}

func (p *Parser) parseMatch() ast.Expr {
	start := p.cur().Span
	p.expect(token.KwMatch)
	scrut := p.parseExprNoStruct()
	me := &ast.MatchExpr{Scrutinee: scrut}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		astart := p.cur().Span
		arm := &ast.MatchArm{}
		arm.Pat = p.parsePattern()
		if p.eat(token.KwIf) {
			arm.Guard = p.parseExprNoStruct()
		}
		p.expect(token.FatArrow)
		arm.Body = p.parseExpr()
		arm.Sp = p.span(astart)
		me.Arms = append(me.Arms, arm)
		if !p.eat(token.Comma) {
			// Block-bodied arms may omit the comma.
			if p.at(token.RBrace) {
				break
			}
		}
	}
	p.expect(token.RBrace)
	me.Sp = p.span(start)
	return me
}

func (p *Parser) parseWhile(label string) ast.Expr {
	start := p.cur().Span
	p.expect(token.KwWhile)
	we := &ast.WhileExpr{Label: label}
	if p.eat(token.KwLet) {
		we.LetPat = p.parsePattern()
		p.expect(token.Eq)
	}
	we.Cond = p.parseExprNoStruct()
	we.Body = p.parseBlock()
	we.Sp = p.span(start)
	return we
}

func (p *Parser) parseLoop(label string) ast.Expr {
	start := p.cur().Span
	p.expect(token.KwLoop)
	body := p.parseBlock()
	return &ast.LoopExpr{Body: body, Label: label, Sp: p.span(start)}
}

func (p *Parser) parseFor(label string) ast.Expr {
	start := p.cur().Span
	p.expect(token.KwFor)
	pat := p.parsePattern()
	p.expect(token.KwIn)
	iter := p.parseExprNoStruct()
	body := p.parseBlock()
	return &ast.ForExpr{Pat: pat, Iter: iter, Body: body, Label: label, Sp: p.span(start)}
}

// parseBlock parses `{ stmt* tail? }`.
func (p *Parser) parseBlock() *ast.BlockExpr {
	start := p.cur().Span
	b := &ast.BlockExpr{}
	p.expect(token.LBrace)
	save := p.noStruct
	p.noStruct = false
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		st := p.parseStmt()
		if st != nil {
			b.Stmts = append(b.Stmts, st)
		}
		if p.pos == before {
			p.bump()
		}
	}
	p.noStruct = save
	p.expect(token.RBrace)
	b.Sp = p.span(start)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	start := p.cur().Span
	switch p.cur().Kind {
	case token.Semi:
		p.bump()
		return &ast.EmptyStmt{Sp: p.span(start)}
	case token.KwLet:
		return p.parseLet()
	case token.KwFn, token.KwStruct, token.KwEnum, token.KwImpl, token.KwTrait,
		token.KwUse, token.KwMod, token.KwStatic, token.KwConst, token.KwType:
		// `const` could begin a const item; treat it as an item in stmt
		// position (const closures are out of subset).
		it := p.parseItem()
		if it == nil {
			return nil
		}
		return &ast.ItemStmt{It: it, Sp: it.Span()}
	case token.KwPub:
		it := p.parseItem()
		if it == nil {
			return nil
		}
		return &ast.ItemStmt{It: it, Sp: it.Span()}
	case token.Pound:
		p.parseAttrs()
		return p.parseStmt()
	case token.KwUnsafe:
		// Could be `unsafe fn` item or `unsafe {}` expression.
		if p.peek().Kind == token.KwFn || p.peek().Kind == token.KwImpl || p.peek().Kind == token.KwTrait {
			it := p.parseItem()
			if it == nil {
				return nil
			}
			return &ast.ItemStmt{It: it, Sp: it.Span()}
		}
		fallthrough
	case token.KwIf, token.KwMatch, token.KwWhile, token.KwLoop, token.KwFor,
		token.LBrace, token.Lifetime:
		// Block-like expressions in statement position end the statement
		// (Rust's rule): `if c { }` followed by `*buf` is two statements,
		// not a multiplication.
		e := p.parsePrimary()
		// A block-like expression can still be followed by `?` or method
		// calls only in expression position; in statement position Rust
		// stops here. Accept an optional semicolon.
		semi := p.eat(token.Semi)
		return &ast.ExprStmt{X: e, Semi: semi, Sp: p.span(start)}
	default:
		e := p.parseExpr()
		semi := p.eat(token.Semi)
		return &ast.ExprStmt{X: e, Semi: semi, Sp: p.span(start)}
	}
}

func (p *Parser) parseLet() ast.Stmt {
	start := p.cur().Span
	p.expect(token.KwLet)
	ls := &ast.LetStmt{}
	ls.Pat = p.parsePattern()
	if p.eat(token.Colon) {
		ls.Ty = p.parseType()
	}
	if p.eat(token.Eq) {
		ls.Init = p.parseExpr()
		if p.at(token.KwElse) {
			p.bump()
			ls.Else = p.parseBlock()
		}
	}
	p.expect(token.Semi)
	ls.Sp = p.span(start)
	return ls
}
