package parser

import (
	"rustprobe/internal/ast"
	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

// parsePattern parses a pattern including top-level `|` alternatives.
func (p *Parser) parsePattern() ast.Pat {
	start := p.cur().Span
	p.eat(token.Or) // leading `|` is allowed
	first := p.parsePatternNoAlt()
	if !p.at(token.Or) {
		return first
	}
	alts := []ast.Pat{first}
	for p.eat(token.Or) {
		alts = append(alts, p.parsePatternNoAlt())
	}
	return &ast.OrPat{Alts: alts, Sp: p.span(start)}
}

func (p *Parser) parsePatternNoAlt() ast.Pat {
	start := p.cur().Span
	switch p.cur().Kind {
	case token.Underscore:
		p.bump()
		return &ast.WildPat{Sp: p.span(start)}
	case token.And, token.AndAnd:
		double := p.at(token.AndAnd)
		p.bump()
		mut := p.eat(token.KwMut)
		sub := p.parsePatternNoAlt()
		rp := &ast.RefPat{Mut: mut, Sub: sub, Sp: p.span(start)}
		if double {
			return &ast.RefPat{Sub: rp, Sp: p.span(start)}
		}
		return rp
	case token.LParen:
		p.bump()
		var elems []ast.Pat
		trailing := false
		for !p.at(token.RParen) && !p.at(token.EOF) {
			if p.at(token.DotDot) {
				p.bump()
				continue
			}
			elems = append(elems, p.parsePattern())
			if p.eat(token.Comma) {
				trailing = true
			} else {
				break
			}
		}
		p.expect(token.RParen)
		if len(elems) == 1 && !trailing {
			return elems[0]
		}
		return &ast.TuplePat{Elems: elems, Sp: p.span(start)}
	case token.KwRef, token.KwMut:
		ref := p.eat(token.KwRef)
		mut := p.eat(token.KwMut)
		name := p.expect(token.Ident).Text
		bp := &ast.BindPat{Name: name, Ref: ref, Mut: mut, Sp: p.span(start)}
		if p.eat(token.At) {
			bp.Sub = p.parsePatternNoAlt()
		}
		return bp
	case token.Int, token.Float, token.Str, token.Char, token.Byte, token.KwTrue, token.KwFalse, token.Minus:
		lit := p.parseLiteralForPat()
		if p.at(token.DotDot) || p.at(token.DotDotEq) || p.at(token.DotDotDot) {
			p.bump()
			hi := p.parseLiteralForPat()
			return &ast.RangePat{Lo: lit, Hi: hi, Sp: p.span(start)}
		}
		return &ast.LitPat{Value: lit, Sp: p.span(start)}
	case token.Ident, token.KwSelfType, token.KwCrate, token.KwSuper, token.KwSelfValue:
		return p.parsePathPattern(start)
	case token.DotDot:
		p.bump()
		return &ast.WildPat{Sp: p.span(start)}
	case token.LBracket:
		// Slice pattern: treat elementwise.
		p.bump()
		var elems []ast.Pat
		for !p.at(token.RBracket) && !p.at(token.EOF) {
			if p.at(token.DotDot) {
				p.bump()
			} else {
				elems = append(elems, p.parsePattern())
			}
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RBracket)
		return &ast.TuplePat{Elems: elems, Sp: p.span(start)}
	default:
		p.errorf("expected pattern, found %q", p.cur().Text)
		p.bump()
		return &ast.WildPat{Sp: p.span(start)}
	}
}

func (p *Parser) parseLiteralForPat() ast.Expr {
	start := p.cur().Span
	neg := p.eat(token.Minus)
	t := p.bump()
	var kind ast.LitKind
	switch t.Kind {
	case token.Int:
		kind = ast.LitInt
	case token.Float:
		kind = ast.LitFloat
	case token.Str, token.RawStr:
		kind = ast.LitStr
	case token.Char:
		kind = ast.LitChar
	case token.Byte:
		kind = ast.LitByte
	case token.KwTrue, token.KwFalse:
		kind = ast.LitBool
	default:
		p.diags.Errorf(t.Span, "expected literal in pattern, found %q", t.Text)
	}
	text := t.Text
	if neg {
		text = "-" + text
	}
	return &ast.LitExpr{Kind: kind, Text: text, Sp: p.span(start)}
}

// parsePathPattern disambiguates among a binding, unit path pattern,
// tuple-struct pattern, and struct pattern.
func (p *Parser) parsePathPattern(start source.Span) ast.Pat {
	var segs []string
	for {
		switch p.cur().Kind {
		case token.Ident, token.KwSelfType, token.KwCrate, token.KwSuper, token.KwSelfValue:
			segs = append(segs, p.bump().Text)
		default:
			segs = append(segs, "_")
		}
		if p.at(token.PathSep) && p.peekN(1).Kind != token.Lt {
			p.bump()
			continue
		}
		break
	}
	switch {
	case p.at(token.LParen):
		p.bump()
		ts := &ast.TupleStructPat{Segments: segs}
		for !p.at(token.RParen) && !p.at(token.EOF) {
			if p.at(token.DotDot) {
				p.bump()
			} else {
				ts.Elems = append(ts.Elems, p.parsePattern())
			}
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
		ts.Sp = p.span(start)
		return ts
	case p.at(token.LBrace) && !p.noStruct:
		p.bump()
		sp := &ast.StructPat{Segments: segs}
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			if p.at(token.DotDot) {
				p.bump()
				sp.Rest = true
				break
			}
			fstart := p.cur().Span
			ref := p.eat(token.KwRef)
			mut := p.eat(token.KwMut)
			fname := p.expect(token.Ident).Text
			var fpat ast.Pat
			if p.eat(token.Colon) {
				fpat = p.parsePattern()
			} else {
				fpat = &ast.BindPat{Name: fname, Ref: ref, Mut: mut, Sp: p.span(fstart)}
			}
			sp.Fields = append(sp.Fields, ast.StructPatField{Name: fname, Pat: fpat})
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
		sp.Sp = p.span(start)
		return sp
	case len(segs) > 1:
		return &ast.PathPat{Segments: segs, Sp: p.span(start)}
	default:
		name := segs[0]
		// A single capitalized segment that is a known unit-variant-like
		// name is still treated as a binding unless qualified; rustc uses
		// resolution for this. We bind identifiers that start lowercase or
		// `_` and treat capitalized ones as unit path patterns, matching
		// Rust convention closely enough for the corpus.
		if name != "" && (name[0] >= 'A' && name[0] <= 'Z') {
			return &ast.PathPat{Segments: segs, Sp: p.span(start)}
		}
		bp := &ast.BindPat{Name: name, Sp: p.span(start)}
		if p.eat(token.At) {
			bp.Sub = p.parsePatternNoAlt()
		}
		return bp
	}
}
