package parser_test

import (
	"fmt"
	"testing"

	"rustprobe/internal/ast"
	"rustprobe/internal/corpus"
	"rustprobe/internal/parser"
)

// shape returns the node-type walk sequence of a crate, ignoring
// ParenExpr wrappers (the printer parenthesizes defensively).
func shape(c *ast.Crate) []string {
	var out []string
	ast.Inspect(c, func(n ast.Node) {
		if _, isParen := n.(*ast.ParenExpr); isParen {
			return
		}
		out = append(out, fmt.Sprintf("%T", n))
	})
	return out
}

// TestPrintParseRoundTrip: for every corpus file, parse -> Print ->
// re-parse yields a structurally identical tree.
func TestPrintParseRoundTrip(t *testing.T) {
	files, err := corpus.Files(corpus.GroupAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		crate, _, diags := parser.ParseString(f.Path, f.Content)
		if diags.HasErrors() {
			t.Fatalf("%s: original parse failed:\n%s", f.Path, diags.String())
		}
		printed := ast.Print(crate)
		crate2, _, diags2 := parser.ParseString(f.Path+".printed", printed)
		if diags2.HasErrors() {
			t.Errorf("%s: printed source does not re-parse:\n%s\n--- printed:\n%s", f.Path, diags2.String(), printed)
			continue
		}
		s1, s2 := shape(crate), shape(crate2)
		if len(s1) != len(s2) {
			t.Errorf("%s: round-trip changed node count %d -> %d\n--- printed:\n%s", f.Path, len(s1), len(s2), printed)
			continue
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Errorf("%s: round-trip diverges at node %d: %s vs %s", f.Path, i, s1[i], s2[i])
				break
			}
		}
	}
}

// TestPrintIdempotent: printing the re-parsed tree reproduces the same
// text (print is a normal form).
func TestPrintIdempotent(t *testing.T) {
	files, err := corpus.Files(corpus.GroupPatterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		crate, _, diags := parser.ParseString(f.Path, f.Content)
		if diags.HasErrors() {
			t.Fatal(diags.String())
		}
		once := ast.Print(crate)
		crate2, _, diags2 := parser.ParseString(f.Path, once)
		if diags2.HasErrors() {
			t.Fatalf("%s: %s", f.Path, diags2.String())
		}
		twice := ast.Print(crate2)
		if once != twice {
			t.Errorf("%s: print not idempotent\n--- once:\n%s\n--- twice:\n%s", f.Path, once, twice)
		}
	}
}
