package parser

import (
	"rustprobe/internal/ast"
	"rustprobe/internal/token"
)

// parseType parses a type in the subset grammar.
func (p *Parser) parseType() ast.Type {
	start := p.cur().Span
	switch p.cur().Kind {
	case token.And, token.AndAnd:
		double := p.at(token.AndAnd)
		p.bump()
		inner := func() ast.Type {
			lifetime := ""
			if p.at(token.Lifetime) {
				lifetime = p.bump().Text
			}
			mut := p.eat(token.KwMut)
			elem := p.parseType()
			return &ast.RefType{Lifetime: lifetime, Mut: mut, Elem: elem, Sp: p.span(start)}
		}
		if double {
			// && => & &
			in := inner()
			return &ast.RefType{Elem: in, Sp: p.span(start)}
		}
		return inner()
	case token.Star:
		p.bump()
		mut := false
		if p.eat(token.KwMut) {
			mut = true
		} else if !p.eat(token.KwConst) {
			p.errorf("expected `const` or `mut` after `*` in raw pointer type")
		}
		elem := p.parseType()
		return &ast.RawPtrType{Mut: mut, Elem: elem, Sp: p.span(start)}
	case token.LParen:
		p.bump()
		var elems []ast.Type
		trailing := false
		for !p.at(token.RParen) && !p.at(token.EOF) {
			elems = append(elems, p.parseType())
			if p.eat(token.Comma) {
				trailing = true
			} else {
				break
			}
		}
		p.expect(token.RParen)
		if len(elems) == 1 && !trailing {
			return elems[0] // parenthesized type
		}
		return &ast.TupleType{Elems: elems, Sp: p.span(start)}
	case token.LBracket:
		p.bump()
		elem := p.parseType()
		if p.eat(token.Semi) {
			ln := p.parseExpr()
			p.expect(token.RBracket)
			return &ast.ArrayType{Elem: elem, Len: ln, Sp: p.span(start)}
		}
		p.expect(token.RBracket)
		return &ast.SliceType{Elem: elem, Sp: p.span(start)}
	case token.KwFn:
		p.bump()
		ft := &ast.FnPtrType{Sp: start}
		p.expect(token.LParen)
		for !p.at(token.RParen) && !p.at(token.EOF) {
			ft.Params = append(ft.Params, p.parseType())
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
		if p.eat(token.Arrow) {
			ft.Ret = p.parseType()
		}
		ft.Sp = p.span(start)
		return ft
	case token.KwExtern:
		// extern "C" fn(...) -> ...
		p.bump()
		if p.at(token.Str) {
			p.bump()
		}
		return p.parseType()
	case token.KwUnsafe:
		// unsafe fn(...) pointer type
		p.bump()
		return p.parseType()
	case token.Underscore:
		p.bump()
		return &ast.InferType{Sp: p.span(start)}
	case token.KwDyn:
		p.bump()
		name := p.parsePathText()
		p.skipPlusBounds()
		return &ast.DynType{TraitName: name, Sp: p.span(start)}
	case token.KwImpl:
		p.bump()
		name := p.parsePathText()
		if p.at(token.LParen) { // impl Fn(..)
			depth := 0
			for !p.at(token.EOF) {
				t := p.bump()
				if t.Kind == token.LParen {
					depth++
				} else if t.Kind == token.RParen {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if p.eat(token.Arrow) {
				p.parseType()
			}
		}
		p.skipPlusBounds()
		return &ast.DynType{TraitName: name, Sp: p.span(start)}
	case token.Not:
		// Never type `!`.
		p.bump()
		return &ast.PathType{Segments: []string{"!"}, Sp: p.span(start)}
	case token.Ident, token.KwSelfType, token.KwCrate, token.KwSuper, token.KwSelfValue:
		return p.parsePathType()
	case token.Lt:
		// Qualified path <T as Trait>::Assoc — skip qualifier, keep tail.
		p.bump()
		p.parseType()
		if p.eat(token.KwAs) {
			p.parsePathText()
		}
		p.splitGtIfClosing()
		p.eat(token.PathSep)
		return p.parsePathType()
	default:
		p.errorf("expected type, found %q", p.cur().Text)
		p.bump()
		return &ast.InferType{Sp: p.span(start)}
	}
}

func (p *Parser) skipPlusBounds() {
	for p.eat(token.Plus) {
		if p.at(token.Lifetime) {
			p.bump()
			continue
		}
		p.parsePathText()
	}
}

// parsePathType parses `a::b::C<'x, T, U>` style types.
func (p *Parser) parsePathType() ast.Type {
	start := p.cur().Span
	pt := &ast.PathType{Sp: start}
	for {
		switch p.cur().Kind {
		case token.Ident, token.KwSelfType, token.KwCrate, token.KwSuper, token.KwSelfValue:
			pt.Segments = append(pt.Segments, p.bump().Text)
		default:
			p.errorf("expected path segment, found %q", p.cur().Text)
			pt.Sp = p.span(start)
			return pt
		}
		if p.at(token.Lt) {
			pt.Args, pt.Lifetimes = p.parseGenericArgs()
		}
		if !p.at(token.PathSep) {
			break
		}
		// A `::` followed by generic args (`Vec::<u8>`): consume and parse.
		if p.peek().Kind == token.Lt {
			p.bump()
			pt.Args, pt.Lifetimes = p.parseGenericArgs()
			break
		}
		p.bump()
		// Reset generic args gathered at a non-final segment: the final
		// segment's arguments are the ones that matter for analysis.
		pt.Args, pt.Lifetimes = nil, nil
	}
	pt.Sp = p.span(start)
	return pt
}

// parseGenericArgs parses `<...>` type and lifetime arguments.
func (p *Parser) parseGenericArgs() ([]ast.Type, []string) {
	p.expect(token.Lt)
	var args []ast.Type
	var lifetimes []string
	for !p.at(token.EOF) {
		if p.splitGtIfClosing() {
			return args, lifetimes
		}
		switch p.cur().Kind {
		case token.Lifetime:
			lifetimes = append(lifetimes, p.bump().Text)
		case token.Ident:
			// Could be an associated-type binding `Item = T`.
			if p.peek().Kind == token.Eq {
				p.bump()
				p.bump()
				p.parseType()
			} else {
				args = append(args, p.parseType())
			}
		case token.Int:
			// const generic argument
			p.bump()
		case token.LBrace:
			// const generic block argument; skip
			depth := 0
			for !p.at(token.EOF) {
				t := p.bump()
				if t.Kind == token.LBrace {
					depth++
				} else if t.Kind == token.RBrace {
					depth--
					if depth == 0 {
						break
					}
				}
			}
		default:
			args = append(args, p.parseType())
		}
		if !p.eat(token.Comma) {
			p.splitGtIfClosing()
			return args, lifetimes
		}
	}
	return args, lifetimes
}
