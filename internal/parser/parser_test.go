package parser

import (
	"testing"

	"rustprobe/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Crate {
	t.Helper()
	crate, _, diags := ParseString("test.rs", src)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s\nsource:\n%s", diags.String(), src)
	}
	return crate
}

func firstFn(t *testing.T, c *ast.Crate) *ast.FnItem {
	t.Helper()
	for _, it := range c.Items {
		if f, ok := it.(*ast.FnItem); ok {
			return f
		}
	}
	t.Fatal("no function item")
	return nil
}

func TestParseSimpleFn(t *testing.T) {
	c := parseOK(t, "fn main() { let x = 1 + 2 * 3; }")
	f := firstFn(t, c)
	if f.Name != "main" {
		t.Errorf("name = %q", f.Name)
	}
	if len(f.Body.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Body.Stmts))
	}
	let := f.Body.Stmts[0].(*ast.LetStmt)
	bin := let.Init.(*ast.BinaryExpr)
	if bin.Op != ast.BinAdd {
		t.Errorf("top op = %v, want Add (precedence)", bin.Op)
	}
	if inner, ok := bin.R.(*ast.BinaryExpr); !ok || inner.Op != ast.BinMul {
		t.Errorf("rhs is not Mul: %#v", bin.R)
	}
}

func TestParseStructAndImpl(t *testing.T) {
	src := `
struct TestCell { value: i32 }
unsafe impl Sync for TestCell {}
impl TestCell {
    fn set(&self, i: i32) {
        let p = &self.value as *const i32 as *mut i32;
        unsafe { *p = i };
    }
}
`
	c := parseOK(t, src)
	if len(c.Items) != 3 {
		t.Fatalf("items = %d", len(c.Items))
	}
	st := c.Items[0].(*ast.StructItem)
	if st.Name != "TestCell" || len(st.Fields) != 1 {
		t.Errorf("struct parse: %+v", st)
	}
	im := c.Items[1].(*ast.ImplItem)
	if !im.Unsafety || im.TraitName != "Sync" {
		t.Errorf("unsafe impl Sync: unsafety=%v trait=%q", im.Unsafety, im.TraitName)
	}
	inherent := c.Items[2].(*ast.ImplItem)
	if inherent.TraitName != "" || len(inherent.Items) != 1 {
		t.Errorf("inherent impl: %+v", inherent)
	}
	m := inherent.Items[0].(*ast.FnItem)
	if m.Decl.Params[0].SelfKind != ast.SelfRef {
		t.Errorf("receiver kind = %v", m.Decl.Params[0].SelfKind)
	}
	// The let init must be a double cast.
	let := m.Body.Stmts[0].(*ast.LetStmt)
	outer := let.Init.(*ast.CastExpr)
	if _, ok := outer.X.(*ast.CastExpr); !ok {
		t.Errorf("expected nested cast, got %#v", outer.X)
	}
	// The unsafe block statement.
	es := m.Body.Stmts[1].(*ast.ExprStmt)
	blk := es.X.(*ast.BlockExpr)
	if !blk.Unsafety {
		t.Error("block should be unsafe")
	}
}

func TestParseGenericsAndNestedClose(t *testing.T) {
	src := `
fn f(x: Arc<Mutex<HashMap<String, Vec<u8>>>>) -> Option<i32> { None }
struct Wrapper<'a, T: Send + Sync> { inner: &'a mut T }
`
	c := parseOK(t, src)
	f := firstFn(t, c)
	pt := f.Decl.Params[0].Ty.(*ast.PathType)
	if pt.Name() != "Arc" || len(pt.Args) != 1 {
		t.Fatalf("param type: %+v", pt)
	}
	inner := pt.Args[0].(*ast.PathType)
	if inner.Name() != "Mutex" {
		t.Errorf("inner = %q", inner.Name())
	}
	st := c.Items[1].(*ast.StructItem)
	if len(st.Generics) != 2 || !st.Generics[0].IsLifetime {
		t.Errorf("generics: %+v", st.Generics)
	}
	rt := st.Fields[0].Ty.(*ast.RefType)
	if !rt.Mut || rt.Lifetime != "'a" {
		t.Errorf("ref type: %+v", rt)
	}
}

func TestParseMatch(t *testing.T) {
	src := `
fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(_) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`
	c := parseOK(t, src)
	f := firstFn(t, c)
	es := f.Body.Stmts[0].(*ast.ExprStmt)
	m := es.X.(*ast.MatchExpr)
	if len(m.Arms) != 2 {
		t.Fatalf("arms = %d", len(m.Arms))
	}
	if ts, ok := m.Arms[0].Pat.(*ast.TupleStructPat); !ok || ts.Name() != "Ok" {
		t.Errorf("arm 0 pat: %#v", m.Arms[0].Pat)
	}
}

func TestParseIfLetAndWhileLet(t *testing.T) {
	src := `
fn f(x: Option<i32>) {
    if let Some(v) = x { use_it(v); } else { other(); }
    while let Some(v) = iter.next() { body(v); }
}
`
	c := parseOK(t, src)
	f := firstFn(t, c)
	ife := f.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.IfExpr)
	if ife.LetPat == nil || ife.Else == nil {
		t.Errorf("if let parse: %+v", ife)
	}
	we := f.Body.Stmts[1].(*ast.ExprStmt).X.(*ast.WhileExpr)
	if we.LetPat == nil {
		t.Errorf("while let parse: %+v", we)
	}
}

func TestParseNoStructLiteralInCondition(t *testing.T) {
	// `if x { }` must not parse `x {` as a struct literal start; struct
	// literals need a type-like (capitalized) path anyway, but also check
	// capitalized paths in conditions.
	src := `
fn f() {
    if ready { go(); }
    match state { Running => {} _ => {} }
}
`
	parseOK(t, src)
}

func TestParseStructLiteral(t *testing.T) {
	src := `fn f() { let t = Test { v: 0 }; let u = Point { x, y, ..base }; }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	se := f.Body.Stmts[0].(*ast.LetStmt).Init.(*ast.StructExpr)
	if se.Name() != "Test" || len(se.Fields) != 1 {
		t.Errorf("struct expr: %+v", se)
	}
	se2 := f.Body.Stmts[1].(*ast.LetStmt).Init.(*ast.StructExpr)
	if len(se2.Fields) != 2 || se2.Base == nil {
		t.Errorf("struct expr with base: %+v", se2)
	}
}

func TestParseMethodChainsAndTry(t *testing.T) {
	src := `fn f() -> Result<(), E> { let x = a.b().c::<T>(1)?.d; Ok(()) }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	let := f.Body.Stmts[0].(*ast.LetStmt)
	fe := let.Init.(*ast.FieldExpr)
	if fe.Name != "d" {
		t.Errorf("field: %q", fe.Name)
	}
	tr := fe.X.(*ast.TryExpr)
	mc := tr.X.(*ast.MethodCallExpr)
	if mc.Name != "c" || len(mc.Generics) != 1 || len(mc.Args) != 1 {
		t.Errorf("method call: %+v", mc)
	}
}

func TestParseClosures(t *testing.T) {
	src := `fn f() { let g = move |x: i32| x + 1; spawn(|| { work(); }); }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	cl := f.Body.Stmts[0].(*ast.LetStmt).Init.(*ast.ClosureExpr)
	if !cl.Move || len(cl.Params) != 1 {
		t.Errorf("closure: %+v", cl)
	}
}

func TestParseMacros(t *testing.T) {
	src := `fn f() { let v = vec![0u8; 100]; println!("{:?}", t0); custom_macro!{ arbitrary tokens }; }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	mc := f.Body.Stmts[0].(*ast.LetStmt).Init.(*ast.MacroCallExpr)
	if mc.Name != "vec" || len(mc.Args) != 2 {
		t.Errorf("vec!: %+v", mc)
	}
}

func TestParseEnum(t *testing.T) {
	src := `
pub enum Seal {
    None,
    Regular(Vec<u8>),
    Named { id: u32, data: Vec<u8> },
}
`
	c := parseOK(t, src)
	en := c.Items[0].(*ast.EnumItem)
	if len(en.Variants) != 3 {
		t.Fatalf("variants = %d", len(en.Variants))
	}
	if !en.Variants[0].IsUnit || !en.Variants[1].IsTuple || en.Variants[2].IsTuple {
		t.Errorf("variant kinds wrong: %+v", en.Variants)
	}
}

func TestParseTraitWithDefaultMethod(t *testing.T) {
	src := `
pub trait Engine: Send + Sync {
    fn generate_seal(&self) -> Seal;
    fn name(&self) -> String { String::new() }
}
unsafe trait Searcher {}
`
	c := parseOK(t, src)
	tr := c.Items[0].(*ast.TraitItem)
	if tr.Name != "Engine" || len(tr.Items) != 2 {
		t.Fatalf("trait: %+v", tr)
	}
	m0 := tr.Items[0].(*ast.FnItem)
	if m0.Body != nil {
		t.Error("declaration should have no body")
	}
	tr2 := c.Items[1].(*ast.TraitItem)
	if !tr2.Unsafety {
		t.Error("unsafe trait flag lost")
	}
}

func TestParseStaticsAndConsts(t *testing.T) {
	src := `
static mut COUNTER: u32 = 0;
pub const MAX: usize = 1 << 16;
`
	c := parseOK(t, src)
	s0 := c.Items[0].(*ast.StaticItem)
	if !s0.Mut || s0.IsConst {
		t.Errorf("static mut: %+v", s0)
	}
	s1 := c.Items[1].(*ast.StaticItem)
	if !s1.IsConst || s1.Vis != ast.VisPub {
		t.Errorf("const: %+v", s1)
	}
}

func TestParseRawPointerTypes(t *testing.T) {
	src := `unsafe fn _fdopen(f: *mut FILE) -> *const u8 { ptr::null() }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	if !f.Unsafety {
		t.Error("unsafe fn flag lost")
	}
	in := f.Decl.Params[0].Ty.(*ast.RawPtrType)
	if !in.Mut {
		t.Error("param should be *mut")
	}
	out := f.Decl.Ret.(*ast.RawPtrType)
	if out.Mut {
		t.Error("ret should be *const")
	}
}

func TestParseForRangeLoop(t *testing.T) {
	src := `fn f() { for i in 0..n { body(i); } for x in &items {} 'outer: loop { break 'outer; } }`
	c := parseOK(t, src)
	f := firstFn(t, c)
	fe := f.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.ForExpr)
	if _, ok := fe.Iter.(*ast.RangeExpr); !ok {
		t.Errorf("iter: %#v", fe.Iter)
	}
	le := f.Body.Stmts[2].(*ast.ExprStmt).X.(*ast.LoopExpr)
	if le.Label != "'outer" {
		t.Errorf("label: %q", le.Label)
	}
}

func TestParseAttributesSkipped(t *testing.T) {
	src := `
#[derive(Debug, Clone)]
struct Test { v: i32 }
#[cfg(test)]
mod tests {
    #[test]
    fn it_works() { assert_eq!(1, 1); }
}
`
	c := parseOK(t, src)
	st := c.Items[0].(*ast.StructItem)
	if len(st.Attrs) != 1 || st.Attrs[0].Name != "derive" {
		t.Errorf("attrs: %+v", st.Attrs)
	}
	md := c.Items[1].(*ast.ModItem)
	if md.Name != "tests" || len(md.Items) != 1 {
		t.Errorf("mod: %+v", md)
	}
}

func TestParseShiftVsGenerics(t *testing.T) {
	// `1 << 16` must stay a shift; `Vec<Vec<u8>>` must close properly.
	src := `fn f() { let a = 1 << 16; let b: Vec<Vec<u8>> = Vec::new(); let c = x >> 2; }`
	parseOK(t, src)
}

func TestParsePaperFigure7(t *testing.T) {
	src := `
pub fn sign(data: Option<&[u8]>) {
    let p = match data {
        Some(data) => BioSlice::new(data).as_ptr(),
        None => ptr::null_mut(),
    };
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}
`
	c := parseOK(t, src)
	f := firstFn(t, c)
	if len(f.Body.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(f.Body.Stmts))
	}
}

func TestParseRecoversFromBadItem(t *testing.T) {
	src := `
@@@ garbage @@@
fn good() {}
`
	crate, _, diags := ParseString("test.rs", src)
	if !diags.HasErrors() {
		t.Error("expected errors")
	}
	found := false
	for _, it := range crate.Items {
		if f, ok := it.(*ast.FnItem); ok && f.Name == "good" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to find fn good")
	}
}

func TestParseTupleStructAndIndex(t *testing.T) {
	src := `
struct Pair(i32, String);
fn f(p: Pair) -> i32 { p.0 }
fn g(t: ((u8, u8), u8)) -> u8 { t.0.1 }
`
	c := parseOK(t, src)
	st := c.Items[0].(*ast.StructItem)
	if !st.IsTuple || len(st.Fields) != 2 {
		t.Errorf("tuple struct: %+v", st)
	}
}

func TestParseUseAndExtern(t *testing.T) {
	src := `
use std::sync::{Arc, Mutex};
use std::ptr;
extern "C" { fn malloc(size: usize) -> *mut u8; }
fn f() {}
`
	c := parseOK(t, src)
	u := c.Items[0].(*ast.UseItem)
	if u.Path == "" {
		t.Error("use path empty")
	}
}
