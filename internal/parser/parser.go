// Package parser implements a recursive-descent parser (with a Pratt
// expression core) for the Rust subset defined in DESIGN.md. It produces
// the ast package's tree and reports syntax errors through
// source.Diagnostics, recovering at item boundaries so one bad item does
// not abort a whole file.
package parser

import (
	"fmt"
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/lexer"
	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

// Parser consumes a token stream and builds a Crate.
type Parser struct {
	file  *source.File
	toks  []token.Token
	pos   int
	diags *source.Diagnostics

	// noStruct disables struct-literal parsing, as Rust does inside
	// `if`/`while`/`match`/`for` head expressions.
	noStruct bool
}

// ParseFile lexes and parses one registered file.
func ParseFile(file *source.File, diags *source.Diagnostics) *ast.Crate {
	lx := lexer.New(file, diags)
	p := &Parser{file: file, toks: lx.Tokenize(), diags: diags}
	return p.parseCrate()
}

// ParseString is a convenience for tests: it parses src as filename inside
// a fresh FileSet and returns the crate, the fileset, and diagnostics.
func ParseString(filename, src string) (*ast.Crate, *source.FileSet, *source.Diagnostics) {
	fset := source.NewFileSet()
	f := fset.Add(filename, src)
	diags := source.NewDiagnostics(fset)
	return ParseFile(f, diags), fset, diags
}

// --- token plumbing ---------------------------------------------------------

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) peekN(n int) token.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) bump() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) eat(k token.Kind) bool {
	if p.at(k) {
		p.bump()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.bump()
	}
	p.errorf("expected %q, found %q", k.String(), p.cur().Text)
	return token.Token{Kind: k, Span: p.cur().Span}
}

func (p *Parser) errorf(format string, args ...any) {
	p.diags.Errorf(p.cur().Span, format, args...)
}

func (p *Parser) span(start source.Span) source.Span {
	if p.pos == 0 {
		return start
	}
	return start.Join(p.toks[p.pos-1].Span)
}

// splitGt splits a `>>`, `>=`, or `>>=` token so nested generics like
// `Arc<Mutex<T>>` close correctly.
func (p *Parser) splitGt() bool {
	t := p.cur()
	switch t.Kind {
	case token.Gt:
		p.bump()
		return true
	case token.Shr:
		p.toks[p.pos] = token.Token{Kind: token.Gt, Text: ">", Span: source.NewSpan(t.Span.Start+1, t.Span.End)}
		return true
	case token.Ge:
		p.toks[p.pos] = token.Token{Kind: token.Eq, Text: "=", Span: source.NewSpan(t.Span.Start+1, t.Span.End)}
		return true
	case token.ShrEq:
		p.toks[p.pos] = token.Token{Kind: token.Ge, Text: ">=", Span: source.NewSpan(t.Span.Start+1, t.Span.End)}
		return true
	default:
		return false
	}
}

// --- crate and items --------------------------------------------------------

func (p *Parser) parseCrate() *ast.Crate {
	start := p.cur().Span
	c := &ast.Crate{FileName: p.file.Name}
	// Skip inner attributes `#![...]`.
	for p.at(token.Pound) && p.peek().Kind == token.Not {
		p.skipAttr()
	}
	for !p.at(token.EOF) {
		before := p.pos
		it := p.parseItem()
		if it != nil {
			c.Items = append(c.Items, it)
		}
		if p.pos == before {
			// No progress: skip a token to avoid livelock.
			p.bump()
		}
	}
	c.Sp = p.span(start)
	return c
}

func (p *Parser) skipAttr() {
	p.expect(token.Pound)
	p.eat(token.Not)
	if !p.eat(token.LBracket) {
		return
	}
	depth := 1
	for depth > 0 && !p.at(token.EOF) {
		switch p.bump().Kind {
		case token.LBracket:
			depth++
		case token.RBracket:
			depth--
		}
	}
}

func (p *Parser) parseAttrs() []*ast.Attr {
	var attrs []*ast.Attr
	for p.at(token.Pound) {
		start := p.cur().Span
		p.bump()
		if !p.eat(token.LBracket) {
			break
		}
		var name string
		if p.at(token.Ident) || p.cur().Kind.IsKeyword() {
			name = p.cur().Text
		}
		textStart := p.cur().Span.Start
		depth := 1
		end := textStart
		for depth > 0 && !p.at(token.EOF) {
			t := p.bump()
			switch t.Kind {
			case token.LBracket:
				depth++
			case token.RBracket:
				depth--
			}
			if depth > 0 {
				end = t.Span.End
			}
		}
		attrs = append(attrs, &ast.Attr{Name: name, Text: p.textBetween(textStart, end), Sp: p.span(start)})
	}
	return attrs
}

func (p *Parser) textBetween(start, end int) string {
	lo, hi := start-p.file.Base, end-p.file.Base
	if lo < 0 || hi > len(p.file.Content) || lo > hi {
		return ""
	}
	return p.file.Content[lo:hi]
}

func (p *Parser) parseVisibility() ast.Visibility {
	if !p.at(token.KwPub) {
		return ast.VisPrivate
	}
	p.bump()
	if p.at(token.LParen) {
		// pub(crate), pub(super), pub(in path)
		depth := 0
		for !p.at(token.EOF) {
			t := p.bump()
			if t.Kind == token.LParen {
				depth++
			} else if t.Kind == token.RParen {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		return ast.VisPubCrate
	}
	return ast.VisPub
}

func (p *Parser) parseItem() ast.Item {
	attrs := p.parseAttrs()
	vis := p.parseVisibility()
	start := p.cur().Span
	unsafety := false
	if p.at(token.KwUnsafe) {
		switch p.peek().Kind {
		case token.KwFn, token.KwImpl, token.KwTrait:
			unsafety = true
			p.bump()
		}
	}
	if p.at(token.KwExtern) && p.peek().Kind == token.Str && p.peekN(2).Kind == token.KwFn {
		// `extern "C" fn` prefix.
		p.bump()
		p.bump()
	}
	switch p.cur().Kind {
	case token.KwFn:
		return p.parseFn(attrs, vis, unsafety, start)
	case token.KwStruct:
		return p.parseStruct(attrs, vis, start)
	case token.KwEnum:
		return p.parseEnum(attrs, vis, start)
	case token.KwImpl:
		return p.parseImpl(attrs, unsafety, start)
	case token.KwTrait:
		return p.parseTrait(attrs, vis, unsafety, start)
	case token.KwStatic, token.KwConst:
		return p.parseStatic(attrs, vis, start)
	case token.KwUse:
		return p.parseUse(vis, start)
	case token.KwMod:
		return p.parseMod(vis, start)
	case token.KwType:
		return p.parseTypeAlias(vis, start)
	case token.KwExtern:
		p.skipExternBlock()
		return nil
	case token.EOF:
		return nil
	default:
		p.errorf("expected item, found %q", p.cur().Text)
		p.recoverToItem()
		return nil
	}
}

func (p *Parser) recoverToItem() {
	depth := 0
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			if depth == 0 {
				p.bump()
				return
			}
			depth--
		case token.Semi:
			if depth == 0 {
				p.bump()
				return
			}
		case token.KwFn, token.KwStruct, token.KwEnum, token.KwImpl, token.KwTrait, token.KwUse, token.KwMod, token.KwPub:
			if depth == 0 {
				return
			}
		}
		p.bump()
	}
}

func (p *Parser) skipExternBlock() {
	p.bump() // extern
	if p.at(token.Str) {
		p.bump()
	}
	if p.at(token.LBrace) {
		depth := 0
		for !p.at(token.EOF) {
			t := p.bump()
			if t.Kind == token.LBrace {
				depth++
			} else if t.Kind == token.RBrace {
				depth--
				if depth == 0 {
					return
				}
			}
		}
	} else {
		for !p.at(token.EOF) && !p.eat(token.Semi) {
			p.bump()
		}
	}
}

func (p *Parser) parseGenerics() []*ast.GenericParam {
	if !p.at(token.Lt) {
		return nil
	}
	p.bump()
	var out []*ast.GenericParam
	for !p.at(token.EOF) {
		if p.splitGtIfClosing() {
			break
		}
		start := p.cur().Span
		gp := &ast.GenericParam{Sp: start}
		switch p.cur().Kind {
		case token.Lifetime:
			gp.Name = p.bump().Text
			gp.IsLifetime = true
		case token.KwConst:
			p.bump()
			gp.Name = p.expect(token.Ident).Text
			if p.eat(token.Colon) {
				p.parseType()
			}
		case token.Ident:
			gp.Name = p.bump().Text
		default:
			p.errorf("expected generic parameter, found %q", p.cur().Text)
			p.bump()
			continue
		}
		if p.eat(token.Colon) {
			gp.Bounds = p.parseBoundList()
		}
		if p.eat(token.Eq) {
			p.parseType() // default type, discarded
		}
		gp.Sp = p.span(start)
		out = append(out, gp)
		if !p.eat(token.Comma) {
			p.splitGtIfClosing()
			break
		}
	}
	return out
}

func (p *Parser) splitGtIfClosing() bool {
	switch p.cur().Kind {
	case token.Gt, token.Shr, token.Ge, token.ShrEq:
		return p.splitGt()
	}
	return false
}

func (p *Parser) parseBoundList() []string {
	var bounds []string
	for {
		var b strings.Builder
		if p.at(token.Lifetime) {
			b.WriteString(p.bump().Text)
		} else if p.at(token.Question) {
			p.bump()
			b.WriteString("?")
			b.WriteString(p.parsePathText())
		} else if p.at(token.Ident) || p.at(token.KwFn) {
			b.WriteString(p.parsePathText())
			if p.at(token.LParen) { // Fn(..) -> .. bound
				depth := 0
				for !p.at(token.EOF) {
					t := p.bump()
					if t.Kind == token.LParen {
						depth++
					} else if t.Kind == token.RParen {
						depth--
						if depth == 0 {
							break
						}
					}
				}
				if p.eat(token.Arrow) {
					p.parseType()
				}
			}
		} else {
			break
		}
		if b.Len() > 0 {
			bounds = append(bounds, b.String())
		}
		if !p.eat(token.Plus) {
			break
		}
	}
	return bounds
}

// parsePathText reads a path (with optional generic args) and returns its
// head segment text; used for trait bounds where we keep names only.
func (p *Parser) parsePathText() string {
	name := ""
	for {
		if p.at(token.Ident) || p.at(token.KwCrate) || p.at(token.KwSuper) || p.at(token.KwSelfValue) || p.at(token.KwSelfType) {
			name = p.bump().Text
		} else {
			break
		}
		if p.at(token.Lt) {
			p.skipGenericArgs()
		}
		if !p.eat(token.PathSep) {
			break
		}
	}
	return name
}

func (p *Parser) skipGenericArgs() {
	if !p.at(token.Lt) {
		return
	}
	depth := 0
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.Lt:
			depth++
			p.bump()
		case token.Gt:
			depth--
			p.bump()
			if depth == 0 {
				return
			}
		case token.Shr:
			depth -= 2
			p.bump()
			if depth <= 0 {
				return
			}
		case token.Semi, token.LBrace, token.EOF:
			return
		default:
			p.bump()
		}
	}
}

func (p *Parser) parseWhere() {
	if !p.at(token.KwWhere) {
		return
	}
	p.bump()
	for !p.at(token.LBrace) && !p.at(token.Semi) && !p.at(token.EOF) {
		p.bump()
	}
}

func (p *Parser) parseFn(attrs []*ast.Attr, vis ast.Visibility, unsafety bool, start source.Span) ast.Item {
	p.expect(token.KwFn)
	name := p.expect(token.Ident).Text
	generics := p.parseGenerics()
	decl := p.parseFnDecl()
	p.parseWhere()
	var body *ast.BlockExpr
	if p.at(token.LBrace) {
		body = p.parseBlock()
	} else {
		p.expect(token.Semi)
	}
	return &ast.FnItem{
		Attrs: attrs, Vis: vis, Unsafety: unsafety, Name: name,
		Generics: generics, Decl: decl, Body: body, Sp: p.span(start),
	}
}

func (p *Parser) parseFnDecl() *ast.FnDecl {
	decl := &ast.FnDecl{}
	p.expect(token.LParen)
	for !p.at(token.RParen) && !p.at(token.EOF) {
		decl.Params = append(decl.Params, p.parseParam())
		if !p.eat(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	if p.eat(token.Arrow) {
		decl.Ret = p.parseType()
	}
	return decl
}

func (p *Parser) parseParam() *ast.Param {
	start := p.cur().Span
	// Receiver forms: self | &self | &mut self | mut self | self: Ty
	if p.at(token.KwSelfValue) {
		p.bump()
		prm := &ast.Param{Name: "self", SelfKind: ast.SelfValue, Sp: p.span(start)}
		if p.eat(token.Colon) {
			prm.Ty = p.parseType()
		}
		return prm
	}
	if p.at(token.And) || p.at(token.AndAnd) {
		save := p.pos
		double := p.at(token.AndAnd)
		p.bump()
		if double {
			// Treat && as two borrows; only the receiver case matters here.
			if p.at(token.Lifetime) {
				p.bump()
			}
		}
		if p.at(token.Lifetime) {
			p.bump()
		}
		mut := p.eat(token.KwMut)
		if p.at(token.KwSelfValue) {
			p.bump()
			kind := ast.SelfRef
			if mut {
				kind = ast.SelfRefMut
			}
			return &ast.Param{Name: "self", SelfKind: kind, Sp: p.span(start)}
		}
		p.pos = save
	}
	if p.at(token.KwMut) && p.peek().Kind == token.KwSelfValue {
		p.bump()
		p.bump()
		return &ast.Param{Name: "self", SelfKind: ast.SelfValue, Sp: p.span(start)}
	}
	// Ordinary parameter: pat: Ty. Common case is a plain identifier.
	pat := p.parsePattern()
	prm := &ast.Param{Pat: pat, Sp: start}
	if bp, ok := pat.(*ast.BindPat); ok && bp.Sub == nil {
		prm.Name = bp.Name
	} else if _, ok := pat.(*ast.WildPat); ok {
		prm.Name = "_"
	}
	if p.eat(token.Colon) {
		prm.Ty = p.parseType()
	}
	prm.Sp = p.span(start)
	return prm
}

func (p *Parser) parseStruct(attrs []*ast.Attr, vis ast.Visibility, start source.Span) ast.Item {
	p.expect(token.KwStruct)
	name := p.expect(token.Ident).Text
	generics := p.parseGenerics()
	st := &ast.StructItem{Attrs: attrs, Vis: vis, Name: name, Generics: generics}
	switch {
	case p.at(token.LParen):
		st.IsTuple = true
		p.bump()
		i := 0
		for !p.at(token.RParen) && !p.at(token.EOF) {
			fstart := p.cur().Span
			fvis := p.parseVisibility()
			ty := p.parseType()
			st.Fields = append(st.Fields, &ast.FieldDef{Vis: fvis, Name: fmt.Sprint(i), Ty: ty, Sp: p.span(fstart)})
			i++
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
		p.parseWhere()
		p.expect(token.Semi)
	case p.at(token.Semi):
		st.IsUnit = true
		p.bump()
	default:
		p.parseWhere()
		p.expect(token.LBrace)
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			p.parseAttrs()
			fstart := p.cur().Span
			fvis := p.parseVisibility()
			fname := p.expect(token.Ident).Text
			p.expect(token.Colon)
			ty := p.parseType()
			st.Fields = append(st.Fields, &ast.FieldDef{Vis: fvis, Name: fname, Ty: ty, Sp: p.span(fstart)})
			if !p.eat(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
	}
	st.Sp = p.span(start)
	return st
}

func (p *Parser) parseEnum(attrs []*ast.Attr, vis ast.Visibility, start source.Span) ast.Item {
	p.expect(token.KwEnum)
	name := p.expect(token.Ident).Text
	generics := p.parseGenerics()
	p.parseWhere()
	en := &ast.EnumItem{Attrs: attrs, Vis: vis, Name: name, Generics: generics}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		p.parseAttrs()
		vstart := p.cur().Span
		vname := p.expect(token.Ident).Text
		vd := &ast.VariantDef{Name: vname}
		switch {
		case p.at(token.LParen):
			vd.IsTuple = true
			p.bump()
			i := 0
			for !p.at(token.RParen) && !p.at(token.EOF) {
				ty := p.parseType()
				vd.Fields = append(vd.Fields, &ast.FieldDef{Name: fmt.Sprint(i), Ty: ty, Sp: ty.Span()})
				i++
				if !p.eat(token.Comma) {
					break
				}
			}
			p.expect(token.RParen)
		case p.at(token.LBrace):
			p.bump()
			for !p.at(token.RBrace) && !p.at(token.EOF) {
				fname := p.expect(token.Ident).Text
				p.expect(token.Colon)
				ty := p.parseType()
				vd.Fields = append(vd.Fields, &ast.FieldDef{Name: fname, Ty: ty, Sp: ty.Span()})
				if !p.eat(token.Comma) {
					break
				}
			}
			p.expect(token.RBrace)
		default:
			vd.IsUnit = true
			if p.eat(token.Eq) {
				p.parseExpr()
			}
		}
		vd.Sp = p.span(vstart)
		en.Variants = append(en.Variants, vd)
		if !p.eat(token.Comma) {
			break
		}
	}
	p.expect(token.RBrace)
	en.Sp = p.span(start)
	return en
}

func (p *Parser) parseImpl(attrs []*ast.Attr, unsafety bool, start source.Span) ast.Item {
	p.expect(token.KwImpl)
	generics := p.parseGenerics()
	im := &ast.ImplItem{Attrs: attrs, Unsafety: unsafety, Generics: generics}
	firstTy := p.parseType()
	if p.eat(token.KwFor) {
		if pt, ok := firstTy.(*ast.PathType); ok {
			im.TraitName = pt.Name()
		}
		im.SelfTy = p.parseType()
	} else {
		im.SelfTy = firstTy
	}
	p.parseWhere()
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		it := p.parseItem()
		if it != nil {
			im.Items = append(im.Items, it)
		}
		if p.pos == before {
			p.bump()
		}
	}
	p.expect(token.RBrace)
	im.Sp = p.span(start)
	return im
}

func (p *Parser) parseTrait(attrs []*ast.Attr, vis ast.Visibility, unsafety bool, start source.Span) ast.Item {
	p.expect(token.KwTrait)
	name := p.expect(token.Ident).Text
	generics := p.parseGenerics()
	tr := &ast.TraitItem{Attrs: attrs, Vis: vis, Unsafety: unsafety, Name: name, Generics: generics}
	if p.eat(token.Colon) {
		p.parseBoundList()
	}
	p.parseWhere()
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		it := p.parseItem()
		if it != nil {
			tr.Items = append(tr.Items, it)
		}
		if p.pos == before {
			p.bump()
		}
	}
	p.expect(token.RBrace)
	tr.Sp = p.span(start)
	return tr
}

func (p *Parser) parseStatic(attrs []*ast.Attr, vis ast.Visibility, start source.Span) ast.Item {
	isConst := p.at(token.KwConst)
	p.bump()
	mut := p.eat(token.KwMut)
	var name string
	if p.at(token.Underscore) {
		name = p.bump().Text
	} else {
		name = p.expect(token.Ident).Text
	}
	var ty ast.Type
	if p.eat(token.Colon) {
		ty = p.parseType()
	}
	var init ast.Expr
	if p.eat(token.Eq) {
		init = p.parseExpr()
	}
	p.expect(token.Semi)
	return &ast.StaticItem{Attrs: attrs, Vis: vis, IsConst: isConst, Mut: mut, Name: name, Ty: ty, Init: init, Sp: p.span(start)}
}

func (p *Parser) parseUse(vis ast.Visibility, start source.Span) ast.Item {
	p.expect(token.KwUse)
	var b strings.Builder
	depth := 0
	for !p.at(token.EOF) {
		if p.at(token.Semi) && depth == 0 {
			break
		}
		t := p.bump()
		switch t.Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
		}
		b.WriteString(t.Text)
	}
	p.expect(token.Semi)
	return &ast.UseItem{Vis: vis, Path: b.String(), Sp: p.span(start)}
}

func (p *Parser) parseMod(vis ast.Visibility, start source.Span) ast.Item {
	p.expect(token.KwMod)
	name := p.expect(token.Ident).Text
	m := &ast.ModItem{Vis: vis, Name: name}
	if p.eat(token.Semi) {
		m.Sp = p.span(start)
		return m
	}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		it := p.parseItem()
		if it != nil {
			m.Items = append(m.Items, it)
		}
		if p.pos == before {
			p.bump()
		}
	}
	p.expect(token.RBrace)
	m.Sp = p.span(start)
	return m
}

func (p *Parser) parseTypeAlias(vis ast.Visibility, start source.Span) ast.Item {
	p.expect(token.KwType)
	name := p.expect(token.Ident).Text
	p.parseGenerics()
	p.expect(token.Eq)
	ty := p.parseType()
	p.expect(token.Semi)
	return &ast.TypeAliasItem{Vis: vis, Name: name, Ty: ty, Sp: p.span(start)}
}
