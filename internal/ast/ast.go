// Package ast defines the abstract syntax tree for the Rust subset parsed
// by rustprobe. The tree intentionally mirrors rustc's AST nomenclature
// (Item, Expr, Pat, ...) so the paper's MIR-level analyses read naturally.
package ast

import "rustprobe/internal/source"

// Node is implemented by every syntax node.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------------------
// Crate and items

// Crate is one parsed source file.
type Crate struct {
	FileName string
	Items    []Item
	Sp       source.Span
}

// Span implements Node.
func (c *Crate) Span() source.Span { return c.Sp }

// Item is a top-level (or impl/trait-nested) declaration.
type Item interface {
	Node
	itemNode()
}

// Attr is a parsed `#[...]` attribute; the content is kept as raw text.
type Attr struct {
	Name string // first path segment inside the brackets, e.g. "derive"
	Text string // full bracketed text
	Sp   source.Span
}

// Span implements Node.
func (a *Attr) Span() source.Span { return a.Sp }

// Visibility is a simplified pub-ness flag.
type Visibility int

// Visibility values.
const (
	VisPrivate Visibility = iota
	VisPub
	VisPubCrate
)

// GenericParam is a declared lifetime or type parameter.
type GenericParam struct {
	Name       string // includes leading ' for lifetimes
	IsLifetime bool
	Bounds     []string // textual trait bounds, e.g. "Send"
	Sp         source.Span
}

// FnDecl is a function signature.
type FnDecl struct {
	Params []*Param
	Ret    Type // nil means unit
}

// Param is one function parameter. For a `self` receiver, Name is "self"
// and SelfKind records the receiver form.
type Param struct {
	Name     string
	Pat      Pat // nil for plain-ident / self params
	Ty       Type
	SelfKind SelfKind
	Sp       source.Span
}

// SelfKind classifies the `self` receiver form of a method.
type SelfKind int

// SelfKind values.
const (
	SelfNone   SelfKind = iota // not a receiver
	SelfValue                  // self
	SelfRef                    // &self
	SelfRefMut                 // &mut self
)

// FnItem is a function or method definition.
type FnItem struct {
	Attrs    []*Attr
	Vis      Visibility
	Unsafety bool // declared `unsafe fn`
	Name     string
	Generics []*GenericParam
	Decl     *FnDecl
	Body     *BlockExpr // nil for trait method declarations without bodies
	Sp       source.Span
}

func (f *FnItem) itemNode() {}

// Span implements Node.
func (f *FnItem) Span() source.Span { return f.Sp }

// FieldDef is a named struct/enum-variant field.
type FieldDef struct {
	Vis  Visibility
	Name string
	Ty   Type
	Sp   source.Span
}

// StructItem is a struct definition (named-field or tuple form).
type StructItem struct {
	Attrs    []*Attr
	Vis      Visibility
	Name     string
	Generics []*GenericParam
	Fields   []*FieldDef
	IsTuple  bool
	IsUnit   bool
	Sp       source.Span
}

func (s *StructItem) itemNode() {}

// Span implements Node.
func (s *StructItem) Span() source.Span { return s.Sp }

// VariantDef is one enum variant.
type VariantDef struct {
	Name    string
	Fields  []*FieldDef // tuple fields get names "0","1",...
	IsTuple bool
	IsUnit  bool
	Sp      source.Span
}

// EnumItem is an enum definition.
type EnumItem struct {
	Attrs    []*Attr
	Vis      Visibility
	Name     string
	Generics []*GenericParam
	Variants []*VariantDef
	Sp       source.Span
}

func (e *EnumItem) itemNode() {}

// Span implements Node.
func (e *EnumItem) Span() source.Span { return e.Sp }

// ImplItem is an `impl` block, inherent (TraitName == "") or trait.
type ImplItem struct {
	Attrs     []*Attr
	Unsafety  bool // `unsafe impl`
	Generics  []*GenericParam
	TraitName string // "" for inherent impls
	SelfTy    Type
	Items     []Item
	Sp        source.Span
}

func (i *ImplItem) itemNode() {}

// Span implements Node.
func (i *ImplItem) Span() source.Span { return i.Sp }

// TraitItem is a trait definition.
type TraitItem struct {
	Attrs    []*Attr
	Vis      Visibility
	Unsafety bool // `unsafe trait`
	Name     string
	Generics []*GenericParam
	Items    []Item
	Sp       source.Span
}

func (t *TraitItem) itemNode() {}

// Span implements Node.
func (t *TraitItem) Span() source.Span { return t.Sp }

// StaticItem is a `static` or `const` item.
type StaticItem struct {
	Attrs   []*Attr
	Vis     Visibility
	IsConst bool
	Mut     bool // `static mut`
	Name    string
	Ty      Type
	Init    Expr
	Sp      source.Span
}

func (s *StaticItem) itemNode() {}

// Span implements Node.
func (s *StaticItem) Span() source.Span { return s.Sp }

// UseItem is a `use` declaration, path kept textually.
type UseItem struct {
	Vis  Visibility
	Path string
	Sp   source.Span
}

func (u *UseItem) itemNode() {}

// Span implements Node.
func (u *UseItem) Span() source.Span { return u.Sp }

// ModItem is an inline module.
type ModItem struct {
	Vis   Visibility
	Name  string
	Items []Item
	Sp    source.Span
}

func (m *ModItem) itemNode() {}

// Span implements Node.
func (m *ModItem) Span() source.Span { return m.Sp }

// TypeAliasItem is `type X = T;`.
type TypeAliasItem struct {
	Vis  Visibility
	Name string
	Ty   Type
	Sp   source.Span
}

func (t *TypeAliasItem) itemNode() {}

// Span implements Node.
func (t *TypeAliasItem) Span() source.Span { return t.Sp }

// ---------------------------------------------------------------------------
// Types

// Type is a syntactic type.
type Type interface {
	Node
	typeNode()
}

// PathType is a (possibly generic) named type like `Vec<T>` or
// `std::sync::Arc<Mutex<i32>>`.
type PathType struct {
	Segments  []string
	Args      []Type   // generic type arguments of the final segment
	Lifetimes []string // lifetime arguments of the final segment
	Sp        source.Span
}

func (p *PathType) typeNode() {}

// Span implements Node.
func (p *PathType) Span() source.Span { return p.Sp }

// Name returns the final path segment.
func (p *PathType) Name() string {
	if len(p.Segments) == 0 {
		return ""
	}
	return p.Segments[len(p.Segments)-1]
}

// RefType is `&'a mut T`.
type RefType struct {
	Lifetime string
	Mut      bool
	Elem     Type
	Sp       source.Span
}

func (r *RefType) typeNode() {}

// Span implements Node.
func (r *RefType) Span() source.Span { return r.Sp }

// RawPtrType is `*const T` or `*mut T`.
type RawPtrType struct {
	Mut  bool
	Elem Type
	Sp   source.Span
}

func (r *RawPtrType) typeNode() {}

// Span implements Node.
func (r *RawPtrType) Span() source.Span { return r.Sp }

// TupleType is `(A, B, ...)`; empty means unit.
type TupleType struct {
	Elems []Type
	Sp    source.Span
}

func (t *TupleType) typeNode() {}

// Span implements Node.
func (t *TupleType) Span() source.Span { return t.Sp }

// SliceType is `[T]`.
type SliceType struct {
	Elem Type
	Sp   source.Span
}

func (s *SliceType) typeNode() {}

// Span implements Node.
func (s *SliceType) Span() source.Span { return s.Sp }

// ArrayType is `[T; N]` with the length kept as an expression.
type ArrayType struct {
	Elem Type
	Len  Expr
	Sp   source.Span
}

func (a *ArrayType) typeNode() {}

// Span implements Node.
func (a *ArrayType) Span() source.Span { return a.Sp }

// FnPtrType is `fn(A) -> B`.
type FnPtrType struct {
	Params []Type
	Ret    Type
	Sp     source.Span
}

func (f *FnPtrType) typeNode() {}

// Span implements Node.
func (f *FnPtrType) Span() source.Span { return f.Sp }

// InferType is `_` in type position.
type InferType struct {
	Sp source.Span
}

func (i *InferType) typeNode() {}

// Span implements Node.
func (i *InferType) Span() source.Span { return i.Sp }

// DynType is `dyn Trait` or `impl Trait` in type position.
type DynType struct {
	TraitName string
	Sp        source.Span
}

func (d *DynType) typeNode() {}

// Span implements Node.
func (d *DynType) Span() source.Span { return d.Sp }

// ---------------------------------------------------------------------------
// Patterns

// Pat is a match/let pattern.
type Pat interface {
	Node
	patNode()
}

// BindPat binds a name, optionally by-reference or mutably, with an
// optional subpattern (`x @ p`).
type BindPat struct {
	Name string
	Ref  bool
	Mut  bool
	Sub  Pat
	Sp   source.Span
}

func (b *BindPat) patNode() {}

// Span implements Node.
func (b *BindPat) Span() source.Span { return b.Sp }

// WildPat is `_`.
type WildPat struct {
	Sp source.Span
}

func (w *WildPat) patNode() {}

// Span implements Node.
func (w *WildPat) Span() source.Span { return w.Sp }

// LitPat matches a literal.
type LitPat struct {
	Value Expr
	Sp    source.Span
}

func (l *LitPat) patNode() {}

// Span implements Node.
func (l *LitPat) Span() source.Span { return l.Sp }

// PathPat matches a unit variant or const, e.g. `None`.
type PathPat struct {
	Segments []string
	Sp       source.Span
}

func (p *PathPat) patNode() {}

// Span implements Node.
func (p *PathPat) Span() source.Span { return p.Sp }

// Name returns the final path segment.
func (p *PathPat) Name() string {
	if len(p.Segments) == 0 {
		return ""
	}
	return p.Segments[len(p.Segments)-1]
}

// TupleStructPat matches `Some(x)` / `Ok(v)` style patterns.
type TupleStructPat struct {
	Segments []string
	Elems    []Pat
	Sp       source.Span
}

func (t *TupleStructPat) patNode() {}

// Span implements Node.
func (t *TupleStructPat) Span() source.Span { return t.Sp }

// Name returns the final path segment.
func (t *TupleStructPat) Name() string {
	if len(t.Segments) == 0 {
		return ""
	}
	return t.Segments[len(t.Segments)-1]
}

// StructPat matches `Point { x, y }`.
type StructPat struct {
	Segments []string
	Fields   []StructPatField
	Rest     bool // `..`
	Sp       source.Span
}

// StructPatField is one `name: pat` element of a StructPat.
type StructPatField struct {
	Name string
	Pat  Pat
}

func (s *StructPat) patNode() {}

// Span implements Node.
func (s *StructPat) Span() source.Span { return s.Sp }

// TuplePat matches `(a, b)`.
type TuplePat struct {
	Elems []Pat
	Sp    source.Span
}

func (t *TuplePat) patNode() {}

// Span implements Node.
func (t *TuplePat) Span() source.Span { return t.Sp }

// RefPat matches `&p` / `&mut p`.
type RefPat struct {
	Mut bool
	Sub Pat
	Sp  source.Span
}

func (r *RefPat) patNode() {}

// Span implements Node.
func (r *RefPat) Span() source.Span { return r.Sp }

// OrPat matches `p | q`.
type OrPat struct {
	Alts []Pat
	Sp   source.Span
}

func (o *OrPat) patNode() {}

// Span implements Node.
func (o *OrPat) Span() source.Span { return o.Sp }

// RangePat matches `a..=b` in pattern position.
type RangePat struct {
	Lo, Hi Expr
	Sp     source.Span
}

func (r *RangePat) patNode() {}

// Span implements Node.
func (r *RangePat) Span() source.Span { return r.Sp }

// ---------------------------------------------------------------------------
// Statements

// Stmt is a block-level statement.
type Stmt interface {
	Node
	stmtNode()
}

// LetStmt is `let pat: Ty = init;` with optional `else` block.
type LetStmt struct {
	Pat  Pat
	Ty   Type // may be nil
	Init Expr // may be nil
	Else *BlockExpr
	Sp   source.Span
}

func (l *LetStmt) stmtNode() {}

// Span implements Node.
func (l *LetStmt) Span() source.Span { return l.Sp }

// ExprStmt is an expression statement; Semi records whether it was
// terminated by a semicolon (a block's final non-semi expression is its
// value).
type ExprStmt struct {
	X    Expr
	Semi bool
	Sp   source.Span
}

func (e *ExprStmt) stmtNode() {}

// Span implements Node.
func (e *ExprStmt) Span() source.Span { return e.Sp }

// ItemStmt nests an item inside a block.
type ItemStmt struct {
	It Item
	Sp source.Span
}

func (i *ItemStmt) stmtNode() {}

// Span implements Node.
func (i *ItemStmt) Span() source.Span { return i.Sp }

// EmptyStmt is a stray `;`.
type EmptyStmt struct {
	Sp source.Span
}

func (e *EmptyStmt) stmtNode() {}

// Span implements Node.
func (e *EmptyStmt) Span() source.Span { return e.Sp }

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// LitKind classifies literal expressions.
type LitKind int

// LitKind values.
const (
	LitInt LitKind = iota
	LitFloat
	LitBool
	LitStr
	LitChar
	LitByte
	LitByteStr
)

// LitExpr is a literal.
type LitExpr struct {
	Kind LitKind
	Text string // raw source text
	Sp   source.Span
}

func (l *LitExpr) exprNode() {}

// Span implements Node.
func (l *LitExpr) Span() source.Span { return l.Sp }

// PathExpr is a (possibly qualified) name: `x`, `Vec::new`, `Seal::None`.
type PathExpr struct {
	Segments []string
	Generics []Type // turbofish `::<T>` args, if any
	Sp       source.Span
}

func (p *PathExpr) exprNode() {}

// Span implements Node.
func (p *PathExpr) Span() source.Span { return p.Sp }

// Name returns the final path segment.
func (p *PathExpr) Name() string {
	if len(p.Segments) == 0 {
		return ""
	}
	return p.Segments[len(p.Segments)-1]
}

// IsLocal reports whether the path is a bare single-segment name.
func (p *PathExpr) IsLocal() bool { return len(p.Segments) == 1 }

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	UnNeg   UnOp = iota // -x
	UnNot               // !x
	UnDeref             // *x
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op UnOp
	X  Expr
	Sp source.Span
}

func (u *UnaryExpr) exprNode() {}

// Span implements Node.
func (u *UnaryExpr) Span() source.Span { return u.Sp }

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd // &&
	BinOr  // ||
	BinBitAnd
	BinBitOr
	BinBitXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
	Sp   source.Span
}

func (b *BinaryExpr) exprNode() {}

// Span implements Node.
func (b *BinaryExpr) Span() source.Span { return b.Sp }

// BorrowExpr is `&x` / `&mut x`.
type BorrowExpr struct {
	Mut bool
	X   Expr
	Sp  source.Span
}

func (b *BorrowExpr) exprNode() {}

// Span implements Node.
func (b *BorrowExpr) Span() source.Span { return b.Sp }

// AssignExpr is `lhs = rhs` or a compound assignment when Op != nil.
type AssignExpr struct {
	L, R Expr
	Op   *BinOp // nil for plain `=`
	Sp   source.Span
}

func (a *AssignExpr) exprNode() {}

// Span implements Node.
func (a *AssignExpr) Span() source.Span { return a.Sp }

// CallExpr is `f(a, b)`.
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Sp   source.Span
}

func (c *CallExpr) exprNode() {}

// Span implements Node.
func (c *CallExpr) Span() source.Span { return c.Sp }

// MethodCallExpr is `recv.name::<T>(args)`.
type MethodCallExpr struct {
	Recv     Expr
	Name     string
	Generics []Type
	Args     []Expr
	Sp       source.Span
}

func (m *MethodCallExpr) exprNode() {}

// Span implements Node.
func (m *MethodCallExpr) Span() source.Span { return m.Sp }

// MacroCallExpr is `name!(...)`; arguments are parsed as expressions when
// they are comma-separated expressions (vec!, println!, panic!, write!).
type MacroCallExpr struct {
	Name string
	Args []Expr
	Raw  string // raw text between the delimiters
	Sp   source.Span
}

func (m *MacroCallExpr) exprNode() {}

// Span implements Node.
func (m *MacroCallExpr) Span() source.Span { return m.Sp }

// FieldExpr is `x.f` or `x.0`.
type FieldExpr struct {
	X    Expr
	Name string
	Sp   source.Span
}

func (f *FieldExpr) exprNode() {}

// Span implements Node.
func (f *FieldExpr) Span() source.Span { return f.Sp }

// IndexExpr is `x[i]`.
type IndexExpr struct {
	X, Index Expr
	Sp       source.Span
}

func (i *IndexExpr) exprNode() {}

// Span implements Node.
func (i *IndexExpr) Span() source.Span { return i.Sp }

// CastExpr is `x as T`.
type CastExpr struct {
	X  Expr
	Ty Type
	Sp source.Span
}

func (c *CastExpr) exprNode() {}

// Span implements Node.
func (c *CastExpr) Span() source.Span { return c.Sp }

// BlockExpr is `{ stmts; tail }`; Unsafety marks `unsafe { ... }`.
type BlockExpr struct {
	Unsafety bool
	Stmts    []Stmt
	Sp       source.Span
}

func (b *BlockExpr) exprNode() {}

// Span implements Node.
func (b *BlockExpr) Span() source.Span { return b.Sp }

// Tail returns the trailing non-semicolon expression of the block, or nil.
func (b *BlockExpr) Tail() Expr {
	if len(b.Stmts) == 0 {
		return nil
	}
	if es, ok := b.Stmts[len(b.Stmts)-1].(*ExprStmt); ok && !es.Semi {
		return es.X
	}
	return nil
}

// IfExpr is `if cond { } else { }`; Let is non-nil for `if let pat = expr`.
type IfExpr struct {
	LetPat Pat // nil unless `if let`
	Cond   Expr
	Then   *BlockExpr
	Else   Expr // *BlockExpr, *IfExpr, or nil
	Sp     source.Span
}

func (i *IfExpr) exprNode() {}

// Span implements Node.
func (i *IfExpr) Span() source.Span { return i.Sp }

// MatchArm is one `pat (if guard) => body` arm.
type MatchArm struct {
	Pat   Pat
	Guard Expr
	Body  Expr
	Sp    source.Span
}

// MatchExpr is `match scrutinee { arms }`.
type MatchExpr struct {
	Scrutinee Expr
	Arms      []*MatchArm
	Sp        source.Span
}

func (m *MatchExpr) exprNode() {}

// Span implements Node.
func (m *MatchExpr) Span() source.Span { return m.Sp }

// WhileExpr is `while cond { }`; LetPat non-nil for `while let`.
type WhileExpr struct {
	LetPat Pat
	Cond   Expr
	Body   *BlockExpr
	Label  string
	Sp     source.Span
}

func (w *WhileExpr) exprNode() {}

// Span implements Node.
func (w *WhileExpr) Span() source.Span { return w.Sp }

// LoopExpr is `loop { }`.
type LoopExpr struct {
	Body  *BlockExpr
	Label string
	Sp    source.Span
}

func (l *LoopExpr) exprNode() {}

// Span implements Node.
func (l *LoopExpr) Span() source.Span { return l.Sp }

// ForExpr is `for pat in iter { }`.
type ForExpr struct {
	Pat   Pat
	Iter  Expr
	Body  *BlockExpr
	Label string
	Sp    source.Span
}

func (f *ForExpr) exprNode() {}

// Span implements Node.
func (f *ForExpr) Span() source.Span { return f.Sp }

// ReturnExpr is `return x?`.
type ReturnExpr struct {
	X  Expr // may be nil
	Sp source.Span
}

func (r *ReturnExpr) exprNode() {}

// Span implements Node.
func (r *ReturnExpr) Span() source.Span { return r.Sp }

// BreakExpr is `break 'label value?`.
type BreakExpr struct {
	Label string
	X     Expr
	Sp    source.Span
}

func (b *BreakExpr) exprNode() {}

// Span implements Node.
func (b *BreakExpr) Span() source.Span { return b.Sp }

// ContinueExpr is `continue 'label?`.
type ContinueExpr struct {
	Label string
	Sp    source.Span
}

func (c *ContinueExpr) exprNode() {}

// Span implements Node.
func (c *ContinueExpr) Span() source.Span { return c.Sp }

// StructExpr is `Name { f: e, ..base }`.
type StructExpr struct {
	Segments []string
	Fields   []StructExprField
	Base     Expr // `..base`, may be nil
	Sp       source.Span
}

// StructExprField is one `name: value` initializer.
type StructExprField struct {
	Name  string
	Value Expr
}

func (s *StructExpr) exprNode() {}

// Span implements Node.
func (s *StructExpr) Span() source.Span { return s.Sp }

// Name returns the final path segment of the struct name.
func (s *StructExpr) Name() string {
	if len(s.Segments) == 0 {
		return ""
	}
	return s.Segments[len(s.Segments)-1]
}

// TupleExpr is `(a, b)`; a single-element tuple requires a trailing comma,
// which the parser distinguishes from parenthesization.
type TupleExpr struct {
	Elems []Expr
	Sp    source.Span
}

func (t *TupleExpr) exprNode() {}

// Span implements Node.
func (t *TupleExpr) Span() source.Span { return t.Sp }

// ArrayExpr is `[a, b]` or `[v; n]` (Repeat non-nil).
type ArrayExpr struct {
	Elems  []Expr
	Repeat Expr // count for `[v; n]`
	Sp     source.Span
}

func (a *ArrayExpr) exprNode() {}

// Span implements Node.
func (a *ArrayExpr) Span() source.Span { return a.Sp }

// RangeExpr is `a..b`, `a..=b`, `..b`, `a..`, `..`.
type RangeExpr struct {
	Lo, Hi    Expr
	Inclusive bool
	Sp        source.Span
}

func (r *RangeExpr) exprNode() {}

// Span implements Node.
func (r *RangeExpr) Span() source.Span { return r.Sp }

// ClosureExpr is `move? |params| body`.
type ClosureExpr struct {
	Move   bool
	Params []*Param
	Body   Expr
	Sp     source.Span
}

func (c *ClosureExpr) exprNode() {}

// Span implements Node.
func (c *ClosureExpr) Span() source.Span { return c.Sp }

// TryExpr is `x?`.
type TryExpr struct {
	X  Expr
	Sp source.Span
}

func (t *TryExpr) exprNode() {}

// Span implements Node.
func (t *TryExpr) Span() source.Span { return t.Sp }

// AwaitExpr is `x.await` (accepted, treated as a no-op wrapper).
type AwaitExpr struct {
	X  Expr
	Sp source.Span
}

func (a *AwaitExpr) exprNode() {}

// Span implements Node.
func (a *AwaitExpr) Span() source.Span { return a.Sp }

// ParenExpr preserves explicit grouping.
type ParenExpr struct {
	X  Expr
	Sp source.Span
}

func (p *ParenExpr) exprNode() {}

// Span implements Node.
func (p *ParenExpr) Span() source.Span { return p.Sp }

// Unparen strips ParenExpr wrappers.
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
