package ast

// Visitor is called for every node during Walk. Returning false prunes the
// subtree below the node.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first source order.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch n := n.(type) {
	case *Crate:
		for _, it := range n.Items {
			Walk(it, v)
		}
	case *FnItem:
		for _, p := range n.Decl.Params {
			if p.Pat != nil {
				Walk(p.Pat, v)
			}
			if p.Ty != nil {
				Walk(p.Ty, v)
			}
		}
		if n.Decl.Ret != nil {
			Walk(n.Decl.Ret, v)
		}
		if n.Body != nil {
			Walk(n.Body, v)
		}
	case *StructItem:
		for _, f := range n.Fields {
			Walk(f.Ty, v)
		}
	case *EnumItem:
		for _, vd := range n.Variants {
			for _, f := range vd.Fields {
				Walk(f.Ty, v)
			}
		}
	case *ImplItem:
		Walk(n.SelfTy, v)
		for _, it := range n.Items {
			Walk(it, v)
		}
	case *TraitItem:
		for _, it := range n.Items {
			Walk(it, v)
		}
	case *StaticItem:
		if n.Ty != nil {
			Walk(n.Ty, v)
		}
		if n.Init != nil {
			Walk(n.Init, v)
		}
	case *ModItem:
		for _, it := range n.Items {
			Walk(it, v)
		}
	case *TypeAliasItem:
		Walk(n.Ty, v)
	case *UseItem:

	// Types
	case *PathType:
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *RefType:
		Walk(n.Elem, v)
	case *RawPtrType:
		Walk(n.Elem, v)
	case *TupleType:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	case *SliceType:
		Walk(n.Elem, v)
	case *ArrayType:
		Walk(n.Elem, v)
		if n.Len != nil {
			Walk(n.Len, v)
		}
	case *FnPtrType:
		for _, p := range n.Params {
			Walk(p, v)
		}
		if n.Ret != nil {
			Walk(n.Ret, v)
		}
	case *InferType, *DynType:

	// Patterns
	case *BindPat:
		if n.Sub != nil {
			Walk(n.Sub, v)
		}
	case *WildPat, *PathPat:
	case *LitPat:
		Walk(n.Value, v)
	case *TupleStructPat:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	case *StructPat:
		for _, f := range n.Fields {
			if f.Pat != nil {
				Walk(f.Pat, v)
			}
		}
	case *TuplePat:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	case *RefPat:
		Walk(n.Sub, v)
	case *OrPat:
		for _, a := range n.Alts {
			Walk(a, v)
		}
	case *RangePat:
		if n.Lo != nil {
			Walk(n.Lo, v)
		}
		if n.Hi != nil {
			Walk(n.Hi, v)
		}

	// Statements
	case *LetStmt:
		Walk(n.Pat, v)
		if n.Ty != nil {
			Walk(n.Ty, v)
		}
		if n.Init != nil {
			Walk(n.Init, v)
		}
		if n.Else != nil {
			Walk(n.Else, v)
		}
	case *ExprStmt:
		Walk(n.X, v)
	case *ItemStmt:
		Walk(n.It, v)
	case *EmptyStmt:

	// Expressions
	case *LitExpr, *PathExpr, *ContinueExpr:
	case *UnaryExpr:
		Walk(n.X, v)
	case *BinaryExpr:
		Walk(n.L, v)
		Walk(n.R, v)
	case *BorrowExpr:
		Walk(n.X, v)
	case *AssignExpr:
		Walk(n.L, v)
		Walk(n.R, v)
	case *CallExpr:
		Walk(n.Fn, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *MethodCallExpr:
		Walk(n.Recv, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *MacroCallExpr:
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *FieldExpr:
		Walk(n.X, v)
	case *IndexExpr:
		Walk(n.X, v)
		Walk(n.Index, v)
	case *CastExpr:
		Walk(n.X, v)
		Walk(n.Ty, v)
	case *BlockExpr:
		for _, s := range n.Stmts {
			Walk(s, v)
		}
	case *IfExpr:
		if n.LetPat != nil {
			Walk(n.LetPat, v)
		}
		Walk(n.Cond, v)
		Walk(n.Then, v)
		if n.Else != nil {
			Walk(n.Else, v)
		}
	case *MatchExpr:
		Walk(n.Scrutinee, v)
		for _, arm := range n.Arms {
			Walk(arm.Pat, v)
			if arm.Guard != nil {
				Walk(arm.Guard, v)
			}
			Walk(arm.Body, v)
		}
	case *WhileExpr:
		if n.LetPat != nil {
			Walk(n.LetPat, v)
		}
		Walk(n.Cond, v)
		Walk(n.Body, v)
	case *LoopExpr:
		Walk(n.Body, v)
	case *ForExpr:
		Walk(n.Pat, v)
		Walk(n.Iter, v)
		Walk(n.Body, v)
	case *ReturnExpr:
		if n.X != nil {
			Walk(n.X, v)
		}
	case *BreakExpr:
		if n.X != nil {
			Walk(n.X, v)
		}
	case *StructExpr:
		for _, f := range n.Fields {
			Walk(f.Value, v)
		}
		if n.Base != nil {
			Walk(n.Base, v)
		}
	case *TupleExpr:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	case *ArrayExpr:
		for _, e := range n.Elems {
			Walk(e, v)
		}
		if n.Repeat != nil {
			Walk(n.Repeat, v)
		}
	case *RangeExpr:
		if n.Lo != nil {
			Walk(n.Lo, v)
		}
		if n.Hi != nil {
			Walk(n.Hi, v)
		}
	case *ClosureExpr:
		Walk(n.Body, v)
	case *TryExpr:
		Walk(n.X, v)
	case *AwaitExpr:
		Walk(n.X, v)
	case *ParenExpr:
		Walk(n.X, v)
	}
}

// Inspect is a convenience wrapper over Walk that never prunes.
func Inspect(n Node, f func(Node)) {
	Walk(n, func(n Node) bool {
		f(n)
		return true
	})
}
