package ast

import (
	"fmt"
	"strings"
)

// Print renders the crate back to Rust-subset source. The output
// re-parses to a structurally identical tree (modulo spans); the parser
// tests pin that round-trip.
func Print(c *Crate) string {
	p := &printer{}
	for i, it := range c.Items {
		if i > 0 {
			p.nl()
		}
		p.item(it)
	}
	return p.b.String()
}

// PrintExpr renders one expression.
func PrintExpr(e Expr) string {
	p := &printer{}
	p.expr(e)
	return p.b.String()
}

// PrintType renders one type.
func PrintType(t Type) string {
	p := &printer{}
	p.typ(t)
	return p.b.String()
}

// PrintPat renders one pattern.
func PrintPat(pat Pat) string {
	p := &printer{}
	p.pat(pat)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) w(s string)                   { p.b.WriteString(s) }
func (p *printer) f(format string, args ...any) { fmt.Fprintf(&p.b, format, args...) }

func (p *printer) nl() {
	p.w("\n")
	p.w(strings.Repeat("    ", p.indent))
}

func (p *printer) vis(v Visibility) {
	switch v {
	case VisPub:
		p.w("pub ")
	case VisPubCrate:
		p.w("pub(crate) ")
	}
}

func (p *printer) generics(gs []*GenericParam) {
	if len(gs) == 0 {
		return
	}
	p.w("<")
	for i, g := range gs {
		if i > 0 {
			p.w(", ")
		}
		p.w(g.Name)
		if len(g.Bounds) > 0 {
			p.w(": ")
			p.w(strings.Join(g.Bounds, " + "))
		}
	}
	p.w(">")
}

func (p *printer) item(it Item) {
	switch it := it.(type) {
	case *FnItem:
		p.fnItem(it)
	case *StructItem:
		p.vis(it.Vis)
		p.f("struct %s", it.Name)
		p.generics(it.Generics)
		switch {
		case it.IsUnit:
			p.w(";")
		case it.IsTuple:
			p.w("(")
			for i, f := range it.Fields {
				if i > 0 {
					p.w(", ")
				}
				p.vis(f.Vis)
				p.typ(f.Ty)
			}
			p.w(");")
		default:
			p.w(" {")
			p.indent++
			for _, f := range it.Fields {
				p.nl()
				p.vis(f.Vis)
				p.f("%s: ", f.Name)
				p.typ(f.Ty)
				p.w(",")
			}
			p.indent--
			p.nl()
			p.w("}")
		}
	case *EnumItem:
		p.vis(it.Vis)
		p.f("enum %s", it.Name)
		p.generics(it.Generics)
		p.w(" {")
		p.indent++
		for _, v := range it.Variants {
			p.nl()
			p.w(v.Name)
			switch {
			case v.IsTuple:
				p.w("(")
				for i, f := range v.Fields {
					if i > 0 {
						p.w(", ")
					}
					p.typ(f.Ty)
				}
				p.w(")")
			case !v.IsUnit:
				p.w(" { ")
				for i, f := range v.Fields {
					if i > 0 {
						p.w(", ")
					}
					p.f("%s: ", f.Name)
					p.typ(f.Ty)
				}
				p.w(" }")
			}
			p.w(",")
		}
		p.indent--
		p.nl()
		p.w("}")
	case *ImplItem:
		if it.Unsafety {
			p.w("unsafe ")
		}
		p.w("impl")
		p.generics(it.Generics)
		p.w(" ")
		if it.TraitName != "" {
			p.f("%s for ", it.TraitName)
		}
		p.typ(it.SelfTy)
		p.w(" {")
		p.indent++
		for _, sub := range it.Items {
			p.nl()
			p.item(sub)
		}
		p.indent--
		p.nl()
		p.w("}")
	case *TraitItem:
		p.vis(it.Vis)
		if it.Unsafety {
			p.w("unsafe ")
		}
		p.f("trait %s", it.Name)
		p.generics(it.Generics)
		p.w(" {")
		p.indent++
		for _, sub := range it.Items {
			p.nl()
			p.item(sub)
		}
		p.indent--
		p.nl()
		p.w("}")
	case *StaticItem:
		p.vis(it.Vis)
		if it.IsConst {
			p.w("const ")
		} else {
			p.w("static ")
		}
		if it.Mut {
			p.w("mut ")
		}
		p.w(it.Name)
		if it.Ty != nil {
			p.w(": ")
			p.typ(it.Ty)
		}
		if it.Init != nil {
			p.w(" = ")
			p.expr(it.Init)
		}
		p.w(";")
	case *UseItem:
		p.vis(it.Vis)
		p.f("use %s;", it.Path)
	case *ModItem:
		p.vis(it.Vis)
		p.f("mod %s {", it.Name)
		p.indent++
		for _, sub := range it.Items {
			p.nl()
			p.item(sub)
		}
		p.indent--
		p.nl()
		p.w("}")
	case *TypeAliasItem:
		p.vis(it.Vis)
		p.f("type %s = ", it.Name)
		p.typ(it.Ty)
		p.w(";")
	}
}

func (p *printer) fnItem(it *FnItem) {
	p.vis(it.Vis)
	if it.Unsafety {
		p.w("unsafe ")
	}
	p.f("fn %s", it.Name)
	p.generics(it.Generics)
	p.w("(")
	for i, prm := range it.Decl.Params {
		if i > 0 {
			p.w(", ")
		}
		switch prm.SelfKind {
		case SelfValue:
			p.w("self")
		case SelfRef:
			p.w("&self")
		case SelfRefMut:
			p.w("&mut self")
		default:
			if prm.Pat != nil && prm.Name == "" {
				p.pat(prm.Pat)
			} else {
				p.w(prm.Name)
			}
			if prm.Ty != nil {
				p.w(": ")
				p.typ(prm.Ty)
			}
		}
	}
	p.w(")")
	if it.Decl.Ret != nil {
		p.w(" -> ")
		p.typ(it.Decl.Ret)
	}
	if it.Body == nil {
		p.w(";")
		return
	}
	p.w(" ")
	p.block(it.Body)
}

func (p *printer) typ(t Type) {
	switch t := t.(type) {
	case nil:
		p.w("_")
	case *PathType:
		p.w(strings.Join(t.Segments, "::"))
		if len(t.Args) > 0 || len(t.Lifetimes) > 0 {
			p.w("<")
			n := 0
			for _, lt := range t.Lifetimes {
				if n > 0 {
					p.w(", ")
				}
				p.w(lt)
				n++
			}
			for _, a := range t.Args {
				if n > 0 {
					p.w(", ")
				}
				p.typ(a)
				n++
			}
			p.w(">")
		}
	case *RefType:
		p.w("&")
		if t.Lifetime != "" {
			p.w(t.Lifetime)
			p.w(" ")
		}
		if t.Mut {
			p.w("mut ")
		}
		p.typ(t.Elem)
	case *RawPtrType:
		if t.Mut {
			p.w("*mut ")
		} else {
			p.w("*const ")
		}
		p.typ(t.Elem)
	case *TupleType:
		p.w("(")
		for i, e := range t.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.typ(e)
		}
		if len(t.Elems) == 1 {
			p.w(",")
		}
		p.w(")")
	case *SliceType:
		p.w("[")
		p.typ(t.Elem)
		p.w("]")
	case *ArrayType:
		p.w("[")
		p.typ(t.Elem)
		p.w("; ")
		p.expr(t.Len)
		p.w("]")
	case *FnPtrType:
		p.w("fn(")
		for i, prm := range t.Params {
			if i > 0 {
				p.w(", ")
			}
			p.typ(prm)
		}
		p.w(")")
		if t.Ret != nil {
			p.w(" -> ")
			p.typ(t.Ret)
		}
	case *InferType:
		p.w("_")
	case *DynType:
		p.f("dyn %s", t.TraitName)
	}
}

func (p *printer) pat(pat Pat) {
	switch pat := pat.(type) {
	case *BindPat:
		if pat.Ref {
			p.w("ref ")
		}
		if pat.Mut {
			p.w("mut ")
		}
		p.w(pat.Name)
		if pat.Sub != nil {
			p.w(" @ ")
			p.pat(pat.Sub)
		}
	case *WildPat:
		p.w("_")
	case *LitPat:
		p.expr(pat.Value)
	case *PathPat:
		p.w(strings.Join(pat.Segments, "::"))
	case *TupleStructPat:
		p.w(strings.Join(pat.Segments, "::"))
		p.w("(")
		for i, e := range pat.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.pat(e)
		}
		p.w(")")
	case *StructPat:
		p.w(strings.Join(pat.Segments, "::"))
		p.w(" { ")
		for i, f := range pat.Fields {
			if i > 0 {
				p.w(", ")
			}
			p.f("%s: ", f.Name)
			p.pat(f.Pat)
		}
		if pat.Rest {
			if len(pat.Fields) > 0 {
				p.w(", ")
			}
			p.w("..")
		}
		p.w(" }")
	case *TuplePat:
		p.w("(")
		for i, e := range pat.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.pat(e)
		}
		if len(pat.Elems) == 1 {
			p.w(",")
		}
		p.w(")")
	case *RefPat:
		p.w("&")
		if pat.Mut {
			p.w("mut ")
		}
		p.pat(pat.Sub)
	case *OrPat:
		for i, a := range pat.Alts {
			if i > 0 {
				p.w(" | ")
			}
			p.pat(a)
		}
	case *RangePat:
		if pat.Lo != nil {
			p.expr(pat.Lo)
		}
		p.w("..=")
		if pat.Hi != nil {
			p.expr(pat.Hi)
		}
	}
}

// postfixOperand prints e as the receiver of a postfix operation (field,
// method, index, try), parenthesizing prefix forms like `*p` so the
// grouping survives re-parsing.
func (p *printer) postfixOperand(e Expr) {
	switch Unparen(e).(type) {
	case *UnaryExpr, *BorrowExpr, *CastExpr, *RangeExpr, *ClosureExpr:
		p.w("(")
		p.expr(Unparen(e))
		p.w(")")
	default:
		p.expr(e)
	}
}

var binOpText = map[BinOp]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinRem: "%",
	BinAnd: "&&", BinOr: "||", BinBitAnd: "&", BinBitOr: "|", BinBitXor: "^",
	BinShl: "<<", BinShr: ">>", BinEq: "==", BinNe: "!=",
	BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=",
}

func (p *printer) block(b *BlockExpr) {
	if b.Unsafety {
		p.w("unsafe ")
	}
	p.w("{")
	p.indent++
	for _, st := range b.Stmts {
		p.nl()
		p.stmt(st)
	}
	p.indent--
	p.nl()
	p.w("}")
}

func (p *printer) stmt(st Stmt) {
	switch st := st.(type) {
	case *LetStmt:
		p.w("let ")
		p.pat(st.Pat)
		if st.Ty != nil {
			p.w(": ")
			p.typ(st.Ty)
		}
		if st.Init != nil {
			p.w(" = ")
			p.expr(st.Init)
		}
		if st.Else != nil {
			p.w(" else ")
			p.block(st.Else)
		}
		p.w(";")
	case *ExprStmt:
		p.expr(st.X)
		if st.Semi {
			p.w(";")
		}
	case *ItemStmt:
		p.item(st.It)
	case *EmptyStmt:
		p.w(";")
	}
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *LitExpr:
		p.w(e.Text)
	case *PathExpr:
		p.w(strings.Join(e.Segments, "::"))
		if len(e.Generics) > 0 {
			p.w("::<")
			for i, g := range e.Generics {
				if i > 0 {
					p.w(", ")
				}
				p.typ(g)
			}
			p.w(">")
		}
	case *UnaryExpr:
		switch e.Op {
		case UnNeg:
			p.w("-")
		case UnNot:
			p.w("!")
		case UnDeref:
			p.w("*")
		}
		p.expr(e.X)
	case *BinaryExpr:
		p.w("(")
		p.expr(e.L)
		p.f(" %s ", binOpText[e.Op])
		p.expr(e.R)
		p.w(")")
	case *BorrowExpr:
		p.w("&")
		if e.Mut {
			p.w("mut ")
		}
		p.expr(e.X)
	case *AssignExpr:
		p.expr(e.L)
		if e.Op != nil {
			p.f(" %s= ", binOpText[*e.Op])
		} else {
			p.w(" = ")
		}
		p.expr(e.R)
	case *CallExpr:
		p.postfixOperand(e.Fn)
		p.w("(")
		for i, a := range e.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a)
		}
		p.w(")")
	case *MethodCallExpr:
		p.postfixOperand(e.Recv)
		p.f(".%s", e.Name)
		if len(e.Generics) > 0 {
			p.w("::<")
			for i, g := range e.Generics {
				if i > 0 {
					p.w(", ")
				}
				p.typ(g)
			}
			p.w(">")
		}
		p.w("(")
		for i, a := range e.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a)
		}
		p.w(")")
	case *MacroCallExpr:
		p.f("%s!(", e.Name)
		if len(e.Args) > 0 {
			for i, a := range e.Args {
				if i > 0 {
					p.w(", ")
				}
				p.expr(a)
			}
		} else {
			p.w(e.Raw)
		}
		p.w(")")
	case *FieldExpr:
		p.postfixOperand(e.X)
		p.f(".%s", e.Name)
	case *IndexExpr:
		p.postfixOperand(e.X)
		p.w("[")
		p.expr(e.Index)
		p.w("]")
	case *CastExpr:
		p.w("(")
		p.expr(e.X)
		p.w(" as ")
		p.typ(e.Ty)
		p.w(")")
	case *BlockExpr:
		p.block(e)
	case *IfExpr:
		p.w("if ")
		if e.LetPat != nil {
			p.w("let ")
			p.pat(e.LetPat)
			p.w(" = ")
		}
		p.expr(e.Cond)
		p.w(" ")
		p.block(e.Then)
		if e.Else != nil {
			p.w(" else ")
			p.expr(e.Else)
		}
	case *MatchExpr:
		p.w("match ")
		p.expr(e.Scrutinee)
		p.w(" {")
		p.indent++
		for _, arm := range e.Arms {
			p.nl()
			p.pat(arm.Pat)
			if arm.Guard != nil {
				p.w(" if ")
				p.expr(arm.Guard)
			}
			p.w(" => ")
			p.expr(arm.Body)
			p.w(",")
		}
		p.indent--
		p.nl()
		p.w("}")
	case *WhileExpr:
		if e.Label != "" {
			p.f("%s: ", e.Label)
		}
		p.w("while ")
		if e.LetPat != nil {
			p.w("let ")
			p.pat(e.LetPat)
			p.w(" = ")
		}
		p.expr(e.Cond)
		p.w(" ")
		p.block(e.Body)
	case *LoopExpr:
		if e.Label != "" {
			p.f("%s: ", e.Label)
		}
		p.w("loop ")
		p.block(e.Body)
	case *ForExpr:
		if e.Label != "" {
			p.f("%s: ", e.Label)
		}
		p.w("for ")
		p.pat(e.Pat)
		p.w(" in ")
		p.expr(e.Iter)
		p.w(" ")
		p.block(e.Body)
	case *ReturnExpr:
		p.w("return")
		if e.X != nil {
			p.w(" ")
			p.expr(e.X)
		}
	case *BreakExpr:
		p.w("break")
		if e.Label != "" {
			p.f(" %s", e.Label)
		}
		if e.X != nil {
			p.w(" ")
			p.expr(e.X)
		}
	case *ContinueExpr:
		p.w("continue")
		if e.Label != "" {
			p.f(" %s", e.Label)
		}
	case *StructExpr:
		p.w(strings.Join(e.Segments, "::"))
		p.w(" { ")
		for i, f := range e.Fields {
			if i > 0 {
				p.w(", ")
			}
			p.f("%s: ", f.Name)
			p.expr(f.Value)
		}
		if e.Base != nil {
			if len(e.Fields) > 0 {
				p.w(", ")
			}
			p.w("..")
			p.expr(e.Base)
		}
		p.w(" }")
	case *TupleExpr:
		p.w("(")
		for i, el := range e.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.expr(el)
		}
		if len(e.Elems) == 1 {
			p.w(",")
		}
		p.w(")")
	case *ArrayExpr:
		p.w("[")
		if e.Repeat != nil {
			p.expr(e.Elems[0])
			p.w("; ")
			p.expr(e.Repeat)
		} else {
			for i, el := range e.Elems {
				if i > 0 {
					p.w(", ")
				}
				p.expr(el)
			}
		}
		p.w("]")
	case *RangeExpr:
		if e.Lo != nil {
			p.expr(e.Lo)
		}
		if e.Inclusive {
			p.w("..=")
		} else {
			p.w("..")
		}
		if e.Hi != nil {
			p.expr(e.Hi)
		}
	case *ClosureExpr:
		if e.Move {
			p.w("move ")
		}
		p.w("|")
		for i, prm := range e.Params {
			if i > 0 {
				p.w(", ")
			}
			if prm.Pat != nil && prm.Name == "" {
				p.pat(prm.Pat)
			} else {
				p.w(prm.Name)
			}
			if prm.Ty != nil {
				p.w(": ")
				p.typ(prm.Ty)
			}
		}
		p.w("| ")
		p.expr(e.Body)
	case *TryExpr:
		p.postfixOperand(e.X)
		p.w("?")
	case *AwaitExpr:
		p.postfixOperand(e.X)
		p.w(".await")
	case *ParenExpr:
		// The printer parenthesizes binaries and casts itself, so source
		// grouping is dropped; re-printing stays idempotent.
		p.expr(e.X)
	}
}
