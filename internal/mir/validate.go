package mir

import (
	"fmt"
	"strings"
)

// Validate checks structural invariants of a lowered body and returns the
// violations found. The lower package's tests run it over everything it
// produces; an empty slice means the body is well-formed.
//
// Checked invariants:
//
//  1. every block except possibly trailing empty ones has a terminator;
//  2. every terminator targets an existing block;
//  3. statement and terminator locals are in range;
//  4. no statement follows in a block after its terminator (structural by
//     construction, but kept for future builders);
//  5. a StorageDead for a local only appears when the local was made live
//     somewhere (arguments and the return place are implicitly live);
//  6. the entry block exists and the body has a return place.
func Validate(b *Body) []string {
	var errs []string
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if len(b.Locals) == 0 {
		report("body has no locals (missing return place)")
		return errs
	}
	if len(b.Blocks) == 0 {
		report("body has no blocks")
		return errs
	}

	validBlock := func(id BlockID) bool { return id >= 0 && int(id) < len(b.Blocks) }
	validLocal := func(id LocalID) bool { return id >= 0 && int(id) < len(b.Locals) }

	checkPlace := func(where string, p Place) {
		if !validLocal(p.Local) {
			report("%s: place references out-of-range local _%d", where, p.Local)
		}
	}
	checkOperand := func(where string, op Operand) {
		if pl, ok := OperandPlace(op); ok {
			checkPlace(where, pl)
		}
	}

	everLive := map[LocalID]bool{ReturnLocal: true}
	for i := 0; i < b.ArgCount && i+1 < len(b.Locals); i++ {
		everLive[LocalID(i+1)] = true
	}
	for _, l := range b.Locals {
		if strings.HasPrefix(l.Name, "static ") {
			everLive[l.ID] = true
		}
	}
	for _, blk := range b.Blocks {
		for _, st := range blk.Stmts {
			if sl, ok := st.(StorageLive); ok {
				everLive[sl.Local] = true
			}
		}
	}

	for _, blk := range b.Blocks {
		where := fmt.Sprintf("bb%d", blk.ID)
		for i, st := range blk.Stmts {
			sw := fmt.Sprintf("%s[%d]", where, i)
			switch st := st.(type) {
			case StorageLive:
				if !validLocal(st.Local) {
					report("%s: StorageLive of out-of-range local _%d", sw, st.Local)
				}
			case StorageDead:
				if !validLocal(st.Local) {
					report("%s: StorageDead of out-of-range local _%d", sw, st.Local)
				} else if !everLive[st.Local] {
					report("%s: StorageDead of local _%d that is never StorageLive", sw, st.Local)
				}
			case Assign:
				checkPlace(sw, st.Place)
				forEachOperand(st.Rvalue, func(op Operand) { checkOperand(sw, op) })
				switch rv := st.Rvalue.(type) {
				case Ref:
					checkPlace(sw, rv.Place)
				case AddrOf:
					checkPlace(sw, rv.Place)
				case Discriminant:
					checkPlace(sw, rv.Place)
				}
			}
		}
		if blk.Term == nil {
			report("%s: missing terminator", where)
			continue
		}
		for _, succ := range blk.Term.Successors() {
			if !validBlock(succ) {
				report("%s: terminator targets invalid bb%d", where, succ)
			}
		}
		switch term := blk.Term.(type) {
		case Call:
			checkPlace(where, term.Dest)
			for _, a := range term.Args {
				checkOperand(where, a)
			}
		case Drop:
			checkPlace(where, term.Place)
		case SwitchInt:
			checkOperand(where, term.Disc)
		}
	}
	return errs
}

func forEachOperand(rv Rvalue, f func(Operand)) {
	switch rv := rv.(type) {
	case Use:
		f(rv.X)
	case Cast:
		f(rv.X)
	case BinaryOp:
		f(rv.L)
		f(rv.R)
	case UnaryOp:
		f(rv.X)
	case Aggregate:
		for _, op := range rv.Ops {
			f(op)
		}
	}
}
