package mir

import (
	"strings"
	"testing"

	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

func TestPlaceStringAndKey(t *testing.T) {
	p := PlaceOf(3).
		WithProj(DerefProj{}).
		WithProj(FieldProj{Name: "value"}).
		WithProj(IndexProj{})
	if p.String() != "_3.*.value[_]" {
		t.Errorf("String = %q", p.String())
	}
	if p.Key() != p.String() {
		t.Error("Key must equal String")
	}
	if !p.HasDeref() {
		t.Error("HasDeref lost the deref")
	}
	if p.IsLocal() {
		t.Error("projected place is not a bare local")
	}
	if !PlaceOf(1).IsLocal() {
		t.Error("bare local misdetected")
	}
}

func TestWithProjDoesNotAlias(t *testing.T) {
	base := PlaceOf(1).WithProj(FieldProj{Name: "a"})
	p1 := base.WithProj(FieldProj{Name: "x"})
	p2 := base.WithProj(FieldProj{Name: "y"})
	if p1.String() == p2.String() {
		t.Errorf("projection slices alias: %s vs %s", p1, p2)
	}
	if base.String() != "_1.a" {
		t.Errorf("base mutated: %s", base)
	}
}

func TestOperandHelpers(t *testing.T) {
	pl := PlaceOf(2)
	if p, ok := OperandPlace(Copy{Place: pl}); !ok || p.Local != 2 {
		t.Error("OperandPlace(Copy) wrong")
	}
	if p, ok := OperandPlace(Move{Place: pl}); !ok || p.Local != 2 {
		t.Error("OperandPlace(Move) wrong")
	}
	if _, ok := OperandPlace(Const{Text: "1"}); ok {
		t.Error("Const has no place")
	}
	if !IsMove(Move{Place: pl}) || IsMove(Copy{Place: pl}) {
		t.Error("IsMove wrong")
	}
}

func TestTerminatorSuccessors(t *testing.T) {
	if got := (Goto{Target: 4}).Successors(); len(got) != 1 || got[0] != 4 {
		t.Errorf("Goto successors = %v", got)
	}
	sw := SwitchInt{
		Targets:   []SwitchTarget{{Value: "a", Block: 1}, {Value: "b", Block: 2}},
		Otherwise: 3,
	}
	if got := sw.Successors(); len(got) != 3 {
		t.Errorf("SwitchInt successors = %v", got)
	}
	swNoOther := SwitchInt{Targets: []SwitchTarget{{Block: 1}}, Otherwise: InvalidBlock}
	if got := swNoOther.Successors(); len(got) != 1 {
		t.Errorf("SwitchInt w/o otherwise = %v", got)
	}
	if got := (Return{}).Successors(); got != nil {
		t.Errorf("Return successors = %v", got)
	}
	if got := (Call{Target: 7}).Successors(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Call successors = %v", got)
	}
	if got := (Drop{Target: 9}).Successors(); len(got) != 1 || got[0] != 9 {
		t.Errorf("Drop successors = %v", got)
	}
	if got := (Unreachable{}).Successors(); got != nil {
		t.Errorf("Unreachable successors = %v", got)
	}
}

func TestBodyPrinting(t *testing.T) {
	b := &Body{}
	b.NewLocal("", types.UnitType, false, source.Span{}) // return place
	x := b.NewLocal("x", types.I32Type, false, source.Span{})
	blk := b.NewBlock()
	blk.Stmts = []Statement{
		StorageLive{Local: x.ID},
		Assign{Place: PlaceOf(x.ID), Rvalue: Use{X: Const{Text: "1", Ty: types.I32Type}}},
		StorageDead{Local: x.ID},
	}
	blk.Term = Return{}
	out := b.String()
	for _, want := range []string{"StorageLive(_1)", "_1 = const 1", "StorageDead(_1)", "return", "let _1: i32"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed body missing %q:\n%s", want, out)
		}
	}
}

func TestRvalueStrings(t *testing.T) {
	pl := PlaceOf(1)
	tests := []struct {
		rv   Rvalue
		want string
	}{
		{Use{X: Move{Place: pl}}, "move _1"},
		{Ref{Mut: true, Place: pl}, "&mut _1"},
		{Ref{Place: pl}, "&_1"},
		{AddrOf{Mut: true, Place: pl}, "&raw mut _1"},
		{Cast{X: Copy{Place: pl}, To: types.USizeType}, "copy _1 as usize"},
		{BinaryOp{Op: "Add", L: Copy{Place: pl}, R: Const{Text: "2"}}, "Add(copy _1, const 2)"},
		{Discriminant{Place: pl}, "discriminant(_1)"},
	}
	for _, tt := range tests {
		if got := tt.rv.rvalueString(); got != tt.want {
			t.Errorf("rvalueString = %q, want %q", got, tt.want)
		}
	}
	agg := Aggregate{Kind: AggStruct, Name: "Point", Fields: []string{"x"}, Ops: []Operand{Const{Text: "1"}}}
	if got := agg.rvalueString(); got != "Point { x: const 1 }" {
		t.Errorf("aggregate = %q", got)
	}
}

func TestLocalString(t *testing.T) {
	l := &Local{ID: 2, Name: "inner"}
	if l.String() != "_2(inner)" {
		t.Errorf("named local = %q", l.String())
	}
	tmp := &Local{ID: 5}
	if tmp.String() != "_5" {
		t.Errorf("temp = %q", tmp.String())
	}
}
