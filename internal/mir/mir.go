// Package mir defines rustprobe's mid-level intermediate representation,
// modeled on rustc's MIR: a control-flow graph of basic blocks over a flat
// list of locals, with explicit StorageLive/StorageDead statements and Drop
// terminators. The paper's detectors (§7) are lifetime/ownership analyses
// over exactly these facts.
package mir

import (
	"fmt"
	"strings"

	"rustprobe/internal/hir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// LocalID indexes Body.Locals. Local 0 is always the return place.
type LocalID int

// ReturnLocal is the LocalID of the return place.
const ReturnLocal LocalID = 0

// BlockID indexes Body.Blocks.
type BlockID int

// InvalidBlock marks a missing block target.
const InvalidBlock BlockID = -1

// Local is one MIR local: an argument, user variable, or temporary.
type Local struct {
	ID     LocalID
	Name   string // user-visible name; "" for temporaries
	Ty     types.Type
	IsArg  bool
	IsTemp bool
	// IsCapture marks the pseudo-arguments of a closure body that stand
	// for its captured variables; they share the captured local's name.
	IsCapture bool
	Span      source.Span
}

func (l *Local) String() string {
	if l.Name != "" {
		return fmt.Sprintf("_%d(%s)", l.ID, l.Name)
	}
	return fmt.Sprintf("_%d", l.ID)
}

// Body is the MIR of one function.
type Body struct {
	Func     *hir.FuncDef
	Locals   []*Local
	Blocks   []*Block
	ArgCount int
	// Captures lists, for closure bodies, the names of the enclosing-
	// function variables the closure captures (in first-use order). The
	// same names appear as trailing IsCapture arguments so capture-rooted
	// paths translate across the spawn boundary like ordinary parameters.
	Captures []string
	Span     source.Span
}

// Local returns the local with the given id.
func (b *Body) Local(id LocalID) *Local { return b.Locals[id] }

// Block returns the block with the given id.
func (b *Body) Block(id BlockID) *Block { return b.Blocks[id] }

// NewLocal appends a local and returns it.
func (b *Body) NewLocal(name string, ty types.Type, isTemp bool, sp source.Span) *Local {
	l := &Local{ID: LocalID(len(b.Locals)), Name: name, Ty: ty, IsTemp: isTemp, Span: sp}
	b.Locals = append(b.Locals, l)
	return l
}

// NewBlock appends an empty block and returns it.
func (b *Body) NewBlock() *Block {
	blk := &Block{ID: BlockID(len(b.Blocks))}
	b.Blocks = append(b.Blocks, blk)
	return blk
}

// Block is one basic block: straight-line statements plus a terminator.
type Block struct {
	ID    BlockID
	Stmts []Statement
	Term  Terminator
}

// ---------------------------------------------------------------------------
// Places

// Projection is one step of a place path.
type Projection interface {
	projString() string
}

// DerefProj dereferences a reference or raw pointer.
type DerefProj struct{}

func (DerefProj) projString() string { return ".*" }

// FieldProj projects a named (or numbered, for tuples) field.
type FieldProj struct {
	Name string
	Ty   types.Type
}

func (f FieldProj) projString() string { return "." + f.Name }

// IndexProj projects an element of a slice/array/Vec; the index operand is
// deliberately not tracked (all elements alias for analysis purposes).
type IndexProj struct{}

func (IndexProj) projString() string { return "[_]" }

// Place names a memory location: a local plus a projection path.
type Place struct {
	Local LocalID
	Proj  []Projection
}

// PlaceOf builds a projection-free place.
func PlaceOf(l LocalID) Place { return Place{Local: l} }

// WithProj returns a copy of p with one more projection appended.
func (p Place) WithProj(pr Projection) Place {
	proj := make([]Projection, len(p.Proj)+1)
	copy(proj, p.Proj)
	proj[len(p.Proj)] = pr
	return Place{Local: p.Local, Proj: proj}
}

// IsLocal reports whether the place is a bare local.
func (p Place) IsLocal() bool { return len(p.Proj) == 0 }

// HasDeref reports whether the place path goes through a dereference.
func (p Place) HasDeref() bool {
	for _, pr := range p.Proj {
		if _, ok := pr.(DerefProj); ok {
			return true
		}
	}
	return false
}

// String renders the place in rustc-like notation (e.g. `(_1.value).*`).
func (p Place) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "_%d", p.Local)
	for _, pr := range p.Proj {
		b.WriteString(pr.projString())
	}
	return b.String()
}

// Key renders a stable identity string for alias bookkeeping; two places
// with equal keys name the same path.
func (p Place) Key() string { return p.String() }

// Base returns the place stripped of trailing projections after the last
// deref, i.e. the shallowest prefix that still determines the storage.
func (p Place) Base() Place { return Place{Local: p.Local} }

// ---------------------------------------------------------------------------
// Operands and rvalues

// Operand is a value consumed by an rvalue or call.
type Operand interface {
	operandString() string
}

// Copy reads a place without invalidating it.
type Copy struct{ Place Place }

func (c Copy) operandString() string { return "copy " + c.Place.String() }

// Move reads a place and transfers ownership out of it.
type Move struct{ Place Place }

func (m Move) operandString() string { return "move " + m.Place.String() }

// Const is a literal or path constant.
type Const struct {
	Text string
	Ty   types.Type
}

func (c Const) operandString() string { return "const " + c.Text }

// OperandPlace extracts the place read by an operand, if any.
func OperandPlace(op Operand) (Place, bool) {
	switch op := op.(type) {
	case Copy:
		return op.Place, true
	case Move:
		return op.Place, true
	default:
		return Place{}, false
	}
}

// IsMove reports whether the operand is a move.
func IsMove(op Operand) bool {
	_, ok := op.(Move)
	return ok
}

// Rvalue is the right-hand side of an assignment.
type Rvalue interface {
	rvalueString() string
}

// Use forwards an operand.
type Use struct{ X Operand }

func (u Use) rvalueString() string { return u.X.operandString() }

// Ref takes a reference to a place (`&p` / `&mut p`).
type Ref struct {
	Mut   bool
	Place Place
}

func (r Ref) rvalueString() string {
	if r.Mut {
		return "&mut " + r.Place.String()
	}
	return "&" + r.Place.String()
}

// AddrOf takes a raw pointer to a place (`&p as *const T` chains and
// `ptr::addr_of!`).
type AddrOf struct {
	Mut   bool
	Place Place
}

func (a AddrOf) rvalueString() string {
	if a.Mut {
		return "&raw mut " + a.Place.String()
	}
	return "&raw const " + a.Place.String()
}

// Cast converts an operand to another type. Pointer-to-pointer casts
// preserve points-to facts.
type Cast struct {
	X  Operand
	To types.Type
}

func (c Cast) rvalueString() string { return c.X.operandString() + " as " + c.To.String() }

// BinaryOp applies a binary operation.
type BinaryOp struct {
	Op   string
	L, R Operand
}

func (b BinaryOp) rvalueString() string {
	return fmt.Sprintf("%s(%s, %s)", b.Op, b.L.operandString(), b.R.operandString())
}

// UnaryOp applies a unary operation.
type UnaryOp struct {
	Op string
	X  Operand
}

func (u UnaryOp) rvalueString() string { return fmt.Sprintf("%s(%s)", u.Op, u.X.operandString()) }

// AggregateKind classifies an aggregate construction.
type AggregateKind int

// Aggregate kinds.
const (
	AggStruct AggregateKind = iota
	AggTuple
	AggArray
	AggVariant
	AggClosure
)

// Aggregate builds a struct, tuple, array, enum variant, or closure.
type Aggregate struct {
	Kind   AggregateKind
	Name   string // struct or "Enum::Variant" name
	Fields []string
	Ops    []Operand
}

func (a Aggregate) rvalueString() string {
	parts := make([]string, len(a.Ops))
	for i, op := range a.Ops {
		if i < len(a.Fields) && a.Fields[i] != "" {
			parts[i] = a.Fields[i] + ": " + op.operandString()
		} else {
			parts[i] = op.operandString()
		}
	}
	name := a.Name
	if name == "" {
		name = "tuple"
	}
	return name + " { " + strings.Join(parts, ", ") + " }"
}

// Discriminant reads an enum discriminant for switching.
type Discriminant struct{ Place Place }

func (d Discriminant) rvalueString() string { return "discriminant(" + d.Place.String() + ")" }

// ---------------------------------------------------------------------------
// Statements

// Statement is a non-terminator MIR statement.
type Statement interface {
	stmtString() string
	StmtSpan() source.Span
}

// StorageLive marks the start of a local's live storage range.
type StorageLive struct {
	Local LocalID
	Span  source.Span
}

func (s StorageLive) stmtString() string { return fmt.Sprintf("StorageLive(_%d)", s.Local) }

// StmtSpan implements Statement.
func (s StorageLive) StmtSpan() source.Span { return s.Span }

// StorageDead marks the end of a local's live storage range; reading memory
// owned by the local (directly or through pointers) after this point is a
// use-after-free.
type StorageDead struct {
	Local LocalID
	Span  source.Span
}

func (s StorageDead) stmtString() string { return fmt.Sprintf("StorageDead(_%d)", s.Local) }

// StmtSpan implements Statement.
func (s StorageDead) StmtSpan() source.Span { return s.Span }

// Assign writes an rvalue to a place.
type Assign struct {
	Place  Place
	Rvalue Rvalue
	Span   source.Span
}

func (a Assign) stmtString() string { return a.Place.String() + " = " + a.Rvalue.rvalueString() }

// StmtSpan implements Statement.
func (a Assign) StmtSpan() source.Span { return a.Span }

// Nop is an erased statement.
type Nop struct{ Span source.Span }

func (n Nop) stmtString() string { return "nop" }

// StmtSpan implements Statement.
func (n Nop) StmtSpan() source.Span { return n.Span }

// ---------------------------------------------------------------------------
// Terminators

// Terminator ends a basic block.
type Terminator interface {
	termString() string
	Successors() []BlockID
	TermSpan() source.Span
}

// Goto jumps unconditionally.
type Goto struct {
	Target BlockID
	Span   source.Span
}

func (g Goto) termString() string { return fmt.Sprintf("goto -> bb%d", g.Target) }

// Successors implements Terminator.
func (g Goto) Successors() []BlockID { return []BlockID{g.Target} }

// TermSpan implements Terminator.
func (g Goto) TermSpan() source.Span { return g.Span }

// SwitchTarget is one value arm of a SwitchInt.
type SwitchTarget struct {
	Value string // matched constant / variant name; "" unused
	Block BlockID
}

// SwitchInt branches on an operand.
type SwitchInt struct {
	Disc      Operand
	Targets   []SwitchTarget
	Otherwise BlockID
	Span      source.Span
}

func (s SwitchInt) termString() string {
	parts := make([]string, 0, len(s.Targets)+1)
	for _, t := range s.Targets {
		parts = append(parts, fmt.Sprintf("%s: bb%d", t.Value, t.Block))
	}
	if s.Otherwise != InvalidBlock {
		parts = append(parts, fmt.Sprintf("otherwise: bb%d", s.Otherwise))
	}
	return fmt.Sprintf("switchInt(%s) -> [%s]", s.Disc.operandString(), strings.Join(parts, ", "))
}

// Successors implements Terminator.
func (s SwitchInt) Successors() []BlockID {
	var out []BlockID
	for _, t := range s.Targets {
		out = append(out, t.Block)
	}
	if s.Otherwise != InvalidBlock {
		out = append(out, s.Otherwise)
	}
	return out
}

// TermSpan implements Terminator.
func (s SwitchInt) TermSpan() source.Span { return s.Span }

// Intrinsic identifies a modeled std function with special semantics.
type Intrinsic int

// Modeled intrinsics; see lower/intrinsics.go for the name table.
const (
	IntrinsicNone        Intrinsic = iota
	IntrinsicLock                  // Mutex::lock -> MutexGuard
	IntrinsicRead                  // RwLock::read -> RwLockReadGuard
	IntrinsicWrite                 // RwLock::write -> RwLockWriteGuard
	IntrinsicTryLock               // try_lock/try_read/try_write (non-blocking)
	IntrinsicDrop                  // mem::drop / drop
	IntrinsicForget                // mem::forget
	IntrinsicBoxNew                // Box::new and friends: heap-owning ctor
	IntrinsicArcClone              // Arc::clone / Rc::clone: alias, not move
	IntrinsicPtrRead               // ptr::read: duplicates ownership
	IntrinsicPtrWrite              // ptr::write: writes without dropping dest
	IntrinsicAlloc                 // alloc(): fresh uninitialized memory
	IntrinsicDealloc               // dealloc/free
	IntrinsicAsPtr                 // as_ptr/as_mut_ptr: pointer derived from recv
	IntrinsicUnwrap                // Result/Option unwrap/expect: forwards inner
	IntrinsicClone                 // .clone(): fresh value, no alias
	IntrinsicCondvarWait           // Condvar::wait(guard): releases+reacquires
	IntrinsicChanSend
	IntrinsicChanRecv
	IntrinsicSpawn        // thread::spawn
	IntrinsicGetUnchecked // slice::get_unchecked
	IntrinsicTransmute
	IntrinsicFromRaw // Box/Arc/CString::from_raw: adopts ownership of ptr
	IntrinsicIntoRaw // into_raw: releases ownership as pointer
)

// Call invokes a function and, when it returns, stores the result to Dest
// and continues at Target.
type Call struct {
	Callee    string       // display/qualified name
	Def       *hir.FuncDef // resolved callee, if known
	Intrinsic Intrinsic
	Args      []Operand
	Dest      Place
	Target    BlockID
	Span      source.Span
	// RecvPath is the source-level path of the receiver for lock
	// intrinsics ("self.client", "queue"), used as the lock identity.
	RecvPath string
}

func (c Call) termString() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.operandString()
	}
	return fmt.Sprintf("%s = %s(%s) -> bb%d", c.Dest.String(), c.Callee, strings.Join(parts, ", "), c.Target)
}

// Successors implements Terminator.
func (c Call) Successors() []BlockID { return []BlockID{c.Target} }

// TermSpan implements Terminator.
func (c Call) TermSpan() source.Span { return c.Span }

// Drop runs a place's destructor; for lock guards this is the unlock point,
// for owning containers the free point.
type Drop struct {
	Place  Place
	Target BlockID
	Span   source.Span
}

func (d Drop) termString() string { return fmt.Sprintf("drop(%s) -> bb%d", d.Place.String(), d.Target) }

// Successors implements Terminator.
func (d Drop) Successors() []BlockID { return []BlockID{d.Target} }

// TermSpan implements Terminator.
func (d Drop) TermSpan() source.Span { return d.Span }

// Return ends the function.
type Return struct{ Span source.Span }

func (r Return) termString() string { return "return" }

// Successors implements Terminator.
func (r Return) Successors() []BlockID { return nil }

// TermSpan implements Terminator.
func (r Return) TermSpan() source.Span { return r.Span }

// Unreachable marks dead control flow.
type Unreachable struct{ Span source.Span }

func (u Unreachable) termString() string { return "unreachable" }

// Successors implements Terminator.
func (u Unreachable) Successors() []BlockID { return nil }

// TermSpan implements Terminator.
func (u Unreachable) TermSpan() source.Span { return u.Span }

// ---------------------------------------------------------------------------
// Printing

// String renders the body in rustc's MIR dump style; tests snapshot this.
func (b *Body) String() string {
	var sb strings.Builder
	name := "?"
	if b.Func != nil {
		name = b.Func.Qualified
	}
	fmt.Fprintf(&sb, "fn %s {\n", name)
	for _, l := range b.Locals {
		role := ""
		switch {
		case l.ID == ReturnLocal:
			role = " // return place"
		case l.IsArg:
			role = " // arg"
		case l.IsTemp:
			role = " // temp"
		}
		name := ""
		if l.Name != "" {
			name = " " + l.Name
		}
		fmt.Fprintf(&sb, "    let _%d: %s;%s%s\n", l.ID, l.Ty, role, name)
	}
	for _, blk := range b.Blocks {
		fmt.Fprintf(&sb, "  bb%d:\n", blk.ID)
		for _, st := range blk.Stmts {
			fmt.Fprintf(&sb, "    %s\n", st.stmtString())
		}
		if blk.Term != nil {
			fmt.Fprintf(&sb, "    %s\n", blk.Term.termString())
		} else {
			sb.WriteString("    <no terminator>\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
