package gen

import (
	"strings"
	"testing"
)

// The determinism contract: Generate(seed) is byte-identical forever
// within a build, and across repeated calls.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ", seed)
		}
		if a.Kind != b.Kind || a.Buggy != b.Buggy || a.Template != b.Template ||
			a.FuncName != b.FuncName || a.Line != b.Line || a.DynVisible != b.DynVisible {
			t.Fatalf("seed %d: labels differ: %s vs %s", seed, a, b)
		}
	}
}

// New must agree with Generate when asked for the same (kind, variant):
// both burn the same rng draws, so template and identifier choices match.
func TestNewMatchesGenerate(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		want := Generate(seed)
		got := New(seed, want.Kind, want.Buggy)
		if got.Source != want.Source || got.Template != want.Template || got.Line != want.Line {
			t.Fatalf("seed %d: New(%s, %v) disagrees with Generate", seed, want.Kind, want.Buggy)
		}
	}
}

// Every label must be well-formed: a known kind, a non-empty template,
// a function name that appears in the source, and an injection line
// inside the program.
func TestLabelsWellFormed(t *testing.T) {
	known := map[Kind]bool{}
	for _, k := range Kinds {
		known[k] = true
	}
	for seed := int64(0); seed < 300; seed++ {
		p := Generate(seed)
		if !known[p.Kind] {
			t.Fatalf("seed %d: unknown kind %q", seed, p.Kind)
		}
		if p.Template == "" || p.FuncName == "" {
			t.Fatalf("seed %d: empty template or function name: %s", seed, p)
		}
		// FuncName may be qualified ("Type::method").
		base := p.FuncName
		if i := strings.LastIndex(base, "::"); i >= 0 {
			base = base[i+2:]
		}
		if !strings.Contains(p.Source, "fn "+base) {
			t.Fatalf("seed %d: function %q not in source", seed, base)
		}
		lines := strings.Count(p.Source, "\n")
		if p.Line < 1 || p.Line > lines {
			t.Fatalf("seed %d: line %d outside program (%d lines)", seed, p.Line, lines)
		}
	}
}

// Both variants of every registered template must be reachable from the
// seed space (the differential suites otherwise never exercise them).
func TestAllTemplatesReachable(t *testing.T) {
	type key struct {
		tmpl  string
		buggy bool
	}
	want := map[key]bool{}
	for _, tmpls := range templates {
		for _, tm := range tmpls {
			want[key{tm.name, true}] = false
			want[key{tm.name, false}] = false
		}
	}
	for seed := int64(0); seed < 3000; seed++ {
		p := Generate(seed)
		want[key{p.Template, p.Buggy}] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("template %s (buggy=%v) never generated in 3000 seeds", k.tmpl, k.buggy)
		}
	}
}

// Seeds split roughly evenly between buggy and clean so both halves of
// the oracle get comparable coverage.
func TestVariantSplit(t *testing.T) {
	buggy := 0
	const n = 1000
	for seed := int64(0); seed < n; seed++ {
		if Generate(seed).Buggy {
			buggy++
		}
	}
	if buggy < n/3 || buggy > 2*n/3 {
		t.Fatalf("buggy split %d/%d is far from even", buggy, n)
	}
}
