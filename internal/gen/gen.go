// Package gen is a deterministic, seeded generator of Rust-subset
// programs with known-label bug injections — the manufactured ground
// truth the differential harness (internal/difftest) measures every
// detector against. The paper's §7 evaluation rests on hand-picked
// known-buggy code; SafeDrop and the all-Rust-CVEs study both argue
// detector quality claims need a corpus at scale, and because the whole
// pipeline is deterministic we can manufacture one: each seed expands a
// composable template (moves, drops, raw-pointer derefs, Mutex/RwLock
// guards, thread::spawn closures, Arc clones) and either injects exactly
// one bug of a known kind at a known line or emits the patched clean
// variant, so every generated program carries an oracle label.
//
// Determinism contract: Generate(seed) returns byte-identical source for
// the same seed, forever. The templates are grown from corpus shapes the
// detectors provably handle (internal/corpus/rust), with identifiers,
// constants and clean filler functions varied per seed so the harness
// exercises the frontend and analyses beyond the fixed fixtures.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind labels the injected bug. The values match detect.Kind strings so
// the harness can compare without importing this package into detect.
type Kind string

// Injectable bug kinds.
const (
	KindUseAfterFree Kind = "use-after-free"
	KindDoubleLock   Kind = "double-lock"
	KindLockOrder    Kind = "conflicting-lock-order"
	KindUninitRead   Kind = "uninitialized-read"
	KindDataRace     Kind = "data-race"
	KindInvalidFree  Kind = "invalid-free"
	KindDoubleFree   Kind = "double-free"
	KindBlocking     Kind = "blocking"
)

// Kinds is the injection menu in stable order.
var Kinds = []Kind{
	KindUseAfterFree, KindDoubleLock, KindLockOrder, KindUninitRead,
	KindDataRace, KindInvalidFree, KindDoubleFree, KindBlocking,
}

// Program is one generated source with its oracle label.
type Program struct {
	Seed     int64
	Kind     Kind   // the injected (or patched-out) bug kind
	Buggy    bool   // false: the patched clean variant
	Template string // template name, for discrepancy logs
	Source   string
	// FuncName is the qualified function holding the injection site
	// ("Type::method" or a free function name).
	FuncName string
	// Line is the 1-based source line of the injected statement in the
	// buggy variant (the patch site in the clean one).
	Line int
	// DynVisible reports whether the dynamic explorer (internal/interp)
	// can structurally witness this template's bug. False for shapes the
	// static detectors prove inter-procedurally but interp's
	// lock-context-only call inlining cannot observe; the differential
	// harness skips the static-vs-dynamic cross-check for those and
	// counts them instead of logging spurious discrepancies.
	DynVisible bool
	// FPProne marks templates whose clean variant is safe but reported
	// by the default (paper-faithful) detectors anyway — the §7
	// false-positive shapes. The differential harness treats clean-variant
	// findings on these as expected in default mode and as hard failures
	// in precise mode, which must refute all of them.
	FPProne bool
}

// String summarizes the program for logs.
func (p *Program) String() string {
	variant := "clean"
	if p.Buggy {
		variant = "buggy"
	}
	return fmt.Sprintf("seed=%d %s/%s (%s) at %s:%d", p.Seed, p.Kind, variant, p.Template, p.FuncName, p.Line)
}

// Generate derives everything — kind, buggy-or-clean, template, names,
// filler — from the seed. Even split: half of all seeds are clean.
func Generate(seed int64) *Program {
	rng := rand.New(rand.NewSource(seed))
	kind := Kinds[rng.Intn(len(Kinds))]
	buggy := rng.Intn(2) == 0
	return build(seed, rng, kind, buggy)
}

// New generates the program for an explicit kind and variant; the seed
// still controls the template and all identifier/filler choices.
func New(seed int64, kind Kind, buggy bool) *Program {
	rng := rand.New(rand.NewSource(seed))
	// Burn the same two draws Generate makes so New(seed, k, b) and
	// Generate(seed) agree on template choice for matching (k, b).
	rng.Intn(len(Kinds))
	rng.Intn(2)
	return build(seed, rng, kind, buggy)
}

func build(seed int64, rng *rand.Rand, kind Kind, buggy bool) *Program {
	e := &emitter{rng: rng, line: 1, used: map[string]bool{}}
	tmpls := templates[kind]
	t := tmpls[rng.Intn(len(tmpls))]

	p := &Program{Seed: seed, Kind: kind, Buggy: buggy, Template: t.name, DynVisible: !t.dynInvisible, FPProne: t.fpProne}
	variant := "clean"
	if buggy {
		variant = "buggy"
	}
	e.lnf("// generated: seed=%d kind=%s variant=%s template=%s", seed, kind, variant, t.name)
	e.ln("")
	e.fillerFns(rng.Intn(3))
	t.emit(e, p, buggy)
	e.fillerFns(rng.Intn(2))
	p.Source = e.b.String()
	return p
}

// emitter accumulates source and tracks the current 1-based line.
type emitter struct {
	rng  *rand.Rand
	b    strings.Builder
	line int
	used map[string]bool
}

func (e *emitter) ln(s string) {
	e.b.WriteString(s)
	e.b.WriteByte('\n')
	e.line++
}

func (e *emitter) lnf(format string, args ...any) { e.ln(fmt.Sprintf(format, args...)) }

// mark returns the line number the next ln() call will occupy.
func (e *emitter) mark() int { return e.line }

// Name pools. None of these collide with the std names the lowering
// models (Mutex, Arc, Vec, ...), and picks are de-duplicated per program.
var (
	structPool = []string{"Packet", "Frame", "Entry", "Ledger", "Node", "Record", "Shard", "Job", "Registry", "Batch"}
	fieldPool  = []string{"len", "count", "seq", "ticks", "size", "val", "acc", "bits", "gen_id", "slots"}
	verbPool   = []string{"poll", "flush", "drain", "merge", "scan", "sync_up", "probe", "reap", "advance", "audit"}
	nounPool   = []string{"queue", "cache", "index", "store", "batch", "ring", "table", "log", "pool", "chunk"}
)

func (e *emitter) pick(pool []string) string {
	for {
		s := pool[e.rng.Intn(len(pool))]
		if !e.used[s] {
			e.used[s] = true
			return s
		}
	}
}

func (e *emitter) structName() string { return e.pick(structPool) }
func (e *emitter) fieldName() string  { return e.pick(fieldPool) }

func (e *emitter) fnName() string {
	for {
		s := verbPool[e.rng.Intn(len(verbPool))] + "_" + nounPool[e.rng.Intn(len(nounPool))]
		if !e.used[s] {
			e.used[s] = true
			return s
		}
	}
}

// fillerFns emits n clean arithmetic helpers: pure, lock-free,
// pointer-free, thread-free, so they can never contribute findings and
// only exercise the frontend and dataflow at varied shapes.
func (e *emitter) fillerFns(n int) {
	for i := 0; i < n; i++ {
		name := e.fnName()
		k := e.rng.Intn(90) + 1
		switch e.rng.Intn(3) {
		case 0:
			e.lnf("fn %s(x: i32) -> i32 {", name)
			e.lnf("    let y = x + %d;", k)
			e.ln("    y * 2")
			e.ln("}")
		case 1:
			e.lnf("fn %s(x: i32) -> i32 {", name)
			e.lnf("    let mut acc_v = 0;")
			e.lnf("    for i in 0..%d {", e.rng.Intn(6)+2)
			e.ln("        acc_v += x + i;")
			e.ln("    }")
			e.ln("    acc_v")
			e.ln("}")
		default:
			e.lnf("fn %s(x: i32) -> i32 {", name)
			e.lnf("    if x > %d { x - 1 } else { x + 1 }", k)
			e.ln("}")
		}
		e.ln("")
	}
}

// template is one composable program shape with a buggy and a patched
// emission.
type template struct {
	name string
	emit func(e *emitter, p *Program, buggy bool)
	// dynInvisible marks shapes interp cannot witness (see Program.DynVisible).
	dynInvisible bool
	// fpProne marks shapes whose clean variant the default detectors
	// report anyway (see Program.FPProne).
	fpProne bool
}

var templates = map[Kind][]template{
	KindUseAfterFree: {
		{name: "uaf-block-escape", emit: emitUAFBlockEscape},
		{name: "uaf-scratch-buffer", emit: emitUAFScratchBuffer},
		{name: "uaf-drop-then-deref", emit: emitUAFDropThenDeref},
		{name: "uaf-interproc-sink", emit: emitUAFInterprocSink, dynInvisible: true},
		{name: "uaf-intoraw-roundtrip", emit: emitUAFIntoRawRoundtrip},
		{name: "uaf-branch-correlated-free", emit: emitUAFBranchCorrelated, dynInvisible: true, fpProne: true},
		{name: "uaf-context-split", emit: emitUAFContextSplit, dynInvisible: true, fpProne: true},
	},
	KindDoubleLock: {
		{name: "dl-sequential", emit: emitDLSequential},
		{name: "dl-cond-guard", emit: emitDLCondGuard},
		{name: "dl-rwlock-upgrade", emit: emitDLRwUpgrade},
		{name: "dl-interproc", emit: emitDLInterproc},
		{name: "dl-match-scrutinee", emit: emitDLMatchScrutinee},
	},
	KindLockOrder: {
		{name: "lo-inverted-pair", emit: emitLOInvertedPair},
	},
	KindUninitRead: {
		{name: "un-direct-read", emit: emitUNDirectRead},
		{name: "un-binop-read", emit: emitUNBinopRead},
		{name: "un-ptr-read", emit: emitUNPtrRead},
	},
	KindDataRace: {
		{name: "race-spawner-vs-worker", emit: emitRaceSpawnerWorker},
		{name: "race-loop-spawn", emit: emitRaceLoopSpawn},
	},
	KindInvalidFree: {
		{name: "if-assign-uninit", emit: emitIFAssignUninit},
	},
	KindDoubleFree: {
		{name: "df-ptr-read-dup", emit: emitDFPtrReadDup},
	},
	// All blocking shapes are static-only: the single-threaded valueless
	// explorer cannot witness a thread that blocks forever.
	KindBlocking: {
		{name: "blk-chan-recv-no-sender", emit: emitBlkChanOrphan, dynInvisible: true},
		{name: "blk-condvar-lost-signal", emit: emitBlkCondvarLostSignal, dynInvisible: true},
		{name: "blk-once-reentrant", emit: emitBlkOnceReentrant, dynInvisible: true},
		{name: "blk-all-ends-waiting", emit: emitBlkAllEndsWaiting, dynInvisible: true},
		{name: "blk-condvar-param-wait", emit: emitBlkCondvarParamWait, dynInvisible: true},
		{name: "blk-once-closure-param", emit: emitBlkOnceClosureParam, dynInvisible: true},
	},
}

// --- use-after-free ------------------------------------------------------

// The Redox localtime shape (corpus bug 1): a pointer into a block-scoped
// Box escapes the block. Patch: the owner outlives the dereference.
func emitUAFBlockEscape(e *emitter, p *Program, buggy bool) {
	s, f, fn := e.structName(), e.fieldName(), e.fnName()
	p.FuncName = fn
	e.lnf("struct %s { %s: i32 }", s, f)
	e.ln("")
	e.lnf("impl %s {", s)
	e.lnf("    fn new(v: i32) -> %s { %s { %s: v } }", s, s, f)
	e.ln("}")
	e.ln("")
	e.lnf("pub fn %s(t: i32) {", fn)
	if buggy {
		e.ln("    let p = {")
		p.Line = e.mark()
		e.lnf("        let owner = Box::new(%s::new(t));", s)
		e.ln("        owner.as_ptr()")
		e.ln("    };")
	} else {
		p.Line = e.mark()
		e.lnf("    let owner = Box::new(%s::new(t));", s)
		e.ln("    let p = owner.as_ptr();")
	}
	e.ln("    unsafe {")
	e.lnf("        let got = (*p).%s;", f)
	e.ln("        consume(got);")
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// The Redox realpath shape (corpus bug 3): a scratch vec dies with its
// block; the saved pointer is dereferenced after.
func emitUAFScratchBuffer(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	size := 16 << e.rng.Intn(5)
	p.FuncName = fn
	e.lnf("pub fn %s(n: i32) -> u8 {", fn)
	if buggy {
		e.ln("    let p = {")
		p.Line = e.mark()
		e.lnf("        let scratch = vec![0u8; %d];", size)
		e.ln("        consume(n);")
		e.ln("        scratch.as_ptr()")
		e.ln("    };")
	} else {
		p.Line = e.mark()
		e.lnf("    let scratch = vec![0u8; %d];", size)
		e.ln("    consume(n);")
		e.ln("    let p = scratch.as_ptr();")
	}
	e.ln("    unsafe { *p }")
	e.ln("}")
	e.ln("")
}

// Explicit drop before the dereference; the patch drops after.
func emitUAFDropThenDeref(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	p.FuncName = fn
	e.lnf("pub fn %s() {", fn)
	e.ln("    let data = Vec::new();")
	e.ln("    let p = data.as_ptr();")
	if buggy {
		p.Line = e.mark()
		e.ln("    drop(data);")
		e.ln("    unsafe { let x = *p; }")
	} else {
		p.Line = e.mark()
		e.ln("    unsafe { let x = *p; }")
		e.ln("    drop(data);")
	}
	e.ln("}")
	e.ln("")
}

// The Figure 7 CMS_sign shape, inter-procedural: the dangling pointer is
// handed to a local helper whose summary proves it dereferences its
// argument. interp's call inlining carries only lock context, so only the
// static detector can witness this one (DynVisible=false).
func emitUAFInterprocSink(e *emitter, p *Program, buggy bool) {
	fn, sink := e.fnName(), e.fnName()
	size := 16 << e.rng.Intn(5)
	p.FuncName = fn
	e.lnf("fn %s(p: *const u8) -> u8 {", sink)
	e.ln("    unsafe { *p }")
	e.ln("}")
	e.ln("")
	e.lnf("pub fn %s(n: i32) -> u8 {", fn)
	if buggy {
		e.ln("    let p = {")
		p.Line = e.mark()
		e.lnf("        let scratch = vec![0u8; %d];", size)
		e.ln("        consume(n);")
		e.ln("        scratch.as_ptr()")
		e.ln("    };")
		e.lnf("    %s(p)", sink)
	} else {
		p.Line = e.mark()
		e.lnf("    let scratch = vec![0u8; %d];", size)
		e.ln("    consume(n);")
		e.ln("    let p = scratch.as_ptr();")
		e.lnf("    %s(p)", sink)
	}
	e.ln("}")
	e.ln("")
}

// A Box::into_raw/from_raw round-trip woven around a plain drop-then-deref.
// The buggy variant dereferences the vec's pointer after dropping the vec
// (dynamically visible); the clean variant's raw pointer outlives the
// owner's scope legitimately because into_raw released ownership — the
// alias class survives the round-trip, so neither mode may report it.
func emitUAFIntoRawRoundtrip(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	p.FuncName = fn
	e.lnf("pub fn %s(t: i32) {", fn)
	e.ln("    let data = Vec::new();")
	e.ln("    let q = data.as_ptr();")
	e.ln("    let raw = {")
	e.ln("        let owner = Box::new(t);")
	e.ln("        Box::into_raw(owner)")
	e.ln("    };")
	if buggy {
		p.Line = e.mark()
		e.ln("    drop(data);")
		e.ln("    unsafe {")
		e.ln("        let x = *q;")
		e.ln("        let back = Box::from_raw(raw);")
		e.ln("        drop(back);")
		e.ln("        consume(x);")
		e.ln("    }")
	} else {
		p.Line = e.mark()
		e.ln("    unsafe {")
		e.ln("        let x = *q;")
		e.ln("        let got = *raw;")
		e.ln("        let back = Box::from_raw(raw);")
		e.ln("        drop(back);")
		e.ln("        consume(x);")
		e.ln("        consume(got);")
		e.ln("    }")
		e.ln("    drop(data);")
	}
	e.ln("}")
	e.ln("")
}

// The fp_path shape (paper FP 3): the buggy variant drops and dereferences
// under the same condition; the clean variant drops under c and
// dereferences under !c — exclusive paths the default detector's joined
// dataflow cannot separate, so its clean variant is an expected default
// false positive. interp forks both arms valuelessly and would report the
// infeasible path, so the template is static-only.
func emitUAFBranchCorrelated(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	p.FuncName = fn
	e.lnf("pub fn %s(c: bool) {", fn)
	e.ln("    let data = Vec::new();")
	e.ln("    let p = data.as_ptr();")
	if buggy {
		e.ln("    if c {")
		p.Line = e.mark()
		e.ln("        drop(data);")
		e.ln("        unsafe { let x = *p; }")
		e.ln("    }")
	} else {
		e.ln("    if c {")
		p.Line = e.mark()
		e.ln("        drop(data);")
		e.ln("    }")
		e.ln("    if !c {")
		e.ln("        unsafe { let x = *p; }")
		e.ln("    }")
	}
	e.ln("}")
	e.ln("")
}

// The fp_context shape (paper FP 1): a helper dereferences its pointer
// parameter only when its flag parameter holds. The buggy variant passes
// true with a dangling pointer; the clean one passes false, which the
// default context-insensitive summary cannot see — an expected default
// false positive that the precise mode's guarded summaries refute.
func emitUAFContextSplit(e *emitter, p *Program, buggy bool) {
	fn, helper := e.fnName(), e.fnName()
	size := 16 << e.rng.Intn(5)
	p.FuncName = fn
	e.lnf("fn %s(p: *const u8, deep: bool) -> u8 {", helper)
	e.ln("    if deep {")
	e.ln("        unsafe { return *p; }")
	e.ln("    }")
	e.ln("    0")
	e.ln("}")
	e.ln("")
	e.lnf("pub fn %s(n: i32) -> u8 {", fn)
	e.lnf("    let scratch = vec![0u8; %d];", size)
	e.ln("    consume(n);")
	e.ln("    let p = scratch.as_ptr();")
	p.Line = e.mark()
	e.ln("    drop(scratch);")
	if buggy {
		e.lnf("    %s(p, true)", helper)
	} else {
		e.lnf("    %s(p, false)", helper)
	}
	e.ln("}")
	e.ln("")
}

// --- double lock ---------------------------------------------------------

// lockStruct emits the shared state struct double-lock templates use:
// two Mutex fields and one RwLock field over a named inner.
type lockNames struct {
	s, inner, f, a, b, c string
}

func (e *emitter) lockStruct() lockNames {
	n := lockNames{
		s:     e.structName(),
		inner: e.structName(),
		f:     e.fieldName(),
		a:     e.fieldName(),
		b:     e.fieldName(),
		c:     e.fieldName(),
	}
	e.lnf("struct %s { %s: i32 }", n.inner, n.f)
	e.ln("")
	e.lnf("struct %s {", n.s)
	e.lnf("    %s: Mutex<%s>,", n.a, n.inner)
	e.lnf("    %s: Mutex<%s>,", n.b, n.inner)
	e.lnf("    %s: RwLock<%s>,", n.c, n.inner)
	e.ln("}")
	e.ln("")
	return n
}

// Corpus bug 3 shape: plain sequential re-acquisition with the first
// guard still bound. Patch: an explicit drop ends the critical section.
func emitDLSequential(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	m := e.fnName()
	p.FuncName = n.s + "::" + m
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) {", m)
	e.lnf("        let g = self.%s.lock().unwrap();", n.a)
	if buggy {
		p.Line = e.mark()
		e.lnf("        let h = self.%s.lock().unwrap();", n.a)
		e.lnf("        use_both(g.%s, h.%s);", n.f, n.f)
	} else {
		e.lnf("        let v = g.%s;", n.f)
		p.Line = e.mark()
		e.ln("        drop(g);")
		e.lnf("        let h = self.%s.lock().unwrap();", n.a)
		e.lnf("        use_both(v, h.%s);", n.f)
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// Corpus bug 2 shape: the if-condition's temporary guard is held through
// the branch. Patch: bind the read to a let so the temp dies first.
func emitDLCondGuard(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	m := e.fnName()
	p.FuncName = n.s + "::" + m
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) {", m)
	if buggy {
		e.lnf("        if self.%s.lock().unwrap().%s > 0 {", n.a, n.f)
		p.Line = e.mark()
		e.lnf("            let mut g = self.%s.lock().unwrap();", n.a)
		e.lnf("            g.%s = 0;", n.f)
		e.ln("        }")
	} else {
		p.Line = e.mark()
		e.lnf("        let v = self.%s.lock().unwrap().%s;", n.a, n.f)
		e.ln("        if v > 0 {")
		e.lnf("            let mut g = self.%s.lock().unwrap();", n.a)
		e.lnf("            g.%s = 0;", n.f)
		e.ln("        }")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// Corpus bug 5 shape: RwLock upgrade attempt — write() while the read
// guard lives. Patch: drop the read guard before upgrading.
func emitDLRwUpgrade(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	m := e.fnName()
	p.FuncName = n.s + "::" + m
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) {", m)
	e.lnf("        let r = self.%s.read().unwrap();", n.c)
	if buggy {
		e.lnf("        if r.%s > 0 {", n.f)
		p.Line = e.mark()
		e.lnf("            let mut w = self.%s.write().unwrap();", n.c)
		e.lnf("            w.%s = 0;", n.f)
		e.ln("        }")
	} else {
		e.lnf("        let v = r.%s;", n.f)
		p.Line = e.mark()
		e.ln("        drop(r);")
		e.ln("        if v > 0 {")
		e.lnf("            let mut w = self.%s.write().unwrap();", n.c)
		e.lnf("            w.%s = 0;", n.f)
		e.ln("        }")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// Corpus bug 4 shape: the callee locks a field the caller still holds.
// Patch: the caller ends its critical section before the call.
func emitDLInterproc(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	caller, callee := e.fnName(), e.fnName()
	p.FuncName = n.s + "::" + caller
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) -> i32 {", callee)
	e.lnf("        let q = self.%s.lock().unwrap();", n.b)
	e.lnf("        q.%s", n.f)
	e.ln("    }")
	e.ln("")
	e.lnf("    fn %s(&self) {", caller)
	e.lnf("        let g = self.%s.lock().unwrap();", n.b)
	if buggy {
		p.Line = e.mark()
		e.lnf("        let v = self.%s();", callee)
		e.lnf("        use_both(g.%s, v);", n.f)
	} else {
		e.lnf("        let held = g.%s;", n.f)
		p.Line = e.mark()
		e.ln("        drop(g);")
		e.lnf("        let v = self.%s();", callee)
		e.ln("        use_both(held, v);")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// Corpus bug 1 shape (the paper's Figure 8): the match scrutinee's guard
// temporary lives until the end of the match, so locking again inside an
// arm self-deadlocks. Patch: bind the scrutinee to a let first.
func emitDLMatchScrutinee(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	m, helper := e.fnName(), e.fnName()
	p.FuncName = n.s + "::" + m
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) {", m)
	if buggy {
		e.lnf("        match %s(self.%s.read().unwrap().%s) {", helper, n.c, n.f)
		p.Line = e.mark()
		e.ln("            Ok(v) => {")
		e.lnf("                let mut w = self.%s.write().unwrap();", n.c)
		e.lnf("                w.%s = v;", n.f)
		e.ln("            }")
		e.ln("            Err(x) => {}")
		e.ln("        };")
	} else {
		p.Line = e.mark()
		e.lnf("        let checked = %s(self.%s.read().unwrap().%s);", helper, n.c, n.f)
		e.ln("        match checked {")
		e.ln("            Ok(v) => {")
		e.lnf("                let mut w = self.%s.write().unwrap();", n.c)
		e.lnf("                w.%s = v;", n.f)
		e.ln("            }")
		e.ln("            Err(x) => {}")
		e.ln("        };")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
	e.lnf("fn %s(n: i32) -> Result<i32, i32> {", helper)
	e.lnf("    if n > %d { Ok(n) } else { Err(n) }", e.rng.Intn(50))
	e.ln("}")
	e.ln("")
}

// --- conflicting lock order ----------------------------------------------

// The parity-ethereum ledger shape: two methods acquire the same two
// locks in opposite orders. Patch: consistent ordering.
func emitLOInvertedPair(e *emitter, p *Program, buggy bool) {
	n := e.lockStruct()
	m1, m2 := e.fnName(), e.fnName()
	p.FuncName = n.s + "::" + m2
	e.lnf("impl %s {", n.s)
	e.lnf("    fn %s(&self) {", m1)
	e.lnf("        let x = self.%s.lock().unwrap();", n.a)
	e.lnf("        let y = self.%s.lock().unwrap();", n.b)
	e.lnf("        use_both(x.%s, y.%s);", n.f, n.f)
	e.ln("    }")
	e.ln("")
	e.lnf("    fn %s(&self) {", m2)
	if buggy {
		p.Line = e.mark()
		e.lnf("        let y = self.%s.lock().unwrap();", n.b)
		e.lnf("        let x = self.%s.lock().unwrap();", n.a)
	} else {
		p.Line = e.mark()
		e.lnf("        let x = self.%s.lock().unwrap();", n.a)
		e.lnf("        let y = self.%s.lock().unwrap();", n.b)
	}
	e.lnf("        use_both(x.%s, y.%s);", n.f, n.f)
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// --- uninitialized read --------------------------------------------------

// The Table 2 unsafe->safe shape: an alloc()'d buffer read before any
// initializing write. Patch: ptr::write first.
func emitUNDirectRead(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	size := 8 << e.rng.Intn(6)
	k := e.rng.Intn(200) + 1
	p.FuncName = fn
	e.lnf("pub unsafe fn %s() -> u8 {", fn)
	e.lnf("    let buf = alloc(%d) as *mut u8;", size)
	if !buggy {
		e.lnf("    ptr::write(buf, %du8);", k)
	}
	p.Line = e.mark()
	e.ln("    *buf")
	e.ln("}")
	e.ln("")
}

// The read feeds arithmetic instead of returning directly.
func emitUNBinopRead(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	size := 8 << e.rng.Intn(6)
	k := e.rng.Intn(200) + 1
	p.FuncName = fn
	e.lnf("pub unsafe fn %s(n: u8) -> u8 {", fn)
	e.lnf("    let buf = alloc(%d) as *mut u8;", size)
	if !buggy {
		e.lnf("    ptr::write(buf, %du8);", k)
	}
	p.Line = e.mark()
	e.ln("    let v = *buf + n;")
	e.ln("    v")
	e.ln("}")
	e.ln("")
}

// ptr::read from the uninitialized allocation.
func emitUNPtrRead(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	size := 8 << e.rng.Intn(6)
	k := e.rng.Intn(200) + 1
	p.FuncName = fn
	e.lnf("pub unsafe fn %s() -> u8 {", fn)
	e.lnf("    let buf = alloc(%d) as *mut u8;", size)
	if !buggy {
		e.lnf("    ptr::write(buf, %du8);", k)
	}
	p.Line = e.mark()
	e.ln("    let v = ptr::read(buf);")
	e.ln("    v")
	e.ln("}")
	e.ln("")
}

// --- data race -----------------------------------------------------------

// The Servo reflow shape: spawner and worker both write through Arc
// aliases with no synchronization. Patch: both sides take the mutex.
func emitRaceSpawnerWorker(e *emitter, p *Program, buggy bool) {
	s, f, g, fn := e.structName(), e.fieldName(), e.fieldName(), e.fnName()
	p.FuncName = fn
	e.lnf("struct %s {", s)
	e.lnf("    %s: u64,", f)
	e.lnf("    %s: u64,", g)
	e.ln("}")
	e.ln("")
	if buggy {
		e.lnf("fn %s(shared: Arc<%s>) {", fn, s)
		e.ln("    let worker = Arc::clone(&shared);")
		e.ln("    thread::spawn(move || {")
		p.Line = e.mark()
		e.lnf("        worker.%s += 1;", f)
		e.lnf("        worker.%s = 0;", g)
		e.ln("    });")
		e.lnf("    shared.%s += 1;", f)
	} else {
		e.lnf("fn %s(shared: Arc<Mutex<%s>>) {", fn, s)
		e.ln("    let worker = Arc::clone(&shared);")
		e.ln("    thread::spawn(move || {")
		p.Line = e.mark()
		e.ln("        let mut st = worker.lock().unwrap();")
		e.lnf("        st.%s += 1;", f)
		e.lnf("        st.%s = 0;", g)
		e.ln("    });")
		e.ln("    let mut st2 = shared.lock().unwrap();")
		e.lnf("    st2.%s += 1;", f)
	}
	e.ln("}")
	e.ln("")
}

// The TiKV shard-counter shape: one closure spawned per iteration; its
// instances race with each other. Patch: the mutex serializes them.
func emitRaceLoopSpawn(e *emitter, p *Program, buggy bool) {
	s, f, fn := e.structName(), e.fieldName(), e.fnName()
	iters := e.rng.Intn(6) + 2
	p.FuncName = fn
	e.lnf("struct %s {", s)
	e.lnf("    %s: u64,", f)
	e.ln("}")
	e.ln("")
	if buggy {
		e.lnf("fn %s(db: Arc<%s>) {", fn, s)
		e.lnf("    for i in 0..%d {", iters)
		e.ln("        let shard = Arc::clone(&db);")
		e.ln("        thread::spawn(move || {")
		p.Line = e.mark()
		e.lnf("            shard.%s += 1;", f)
		e.ln("        });")
		e.ln("    }")
	} else {
		e.lnf("fn %s(db: Arc<Mutex<%s>>) {", fn, s)
		e.lnf("    for i in 0..%d {", iters)
		e.ln("        let shard = Arc::clone(&db);")
		e.ln("        thread::spawn(move || {")
		p.Line = e.mark()
		e.ln("            let mut st = shard.lock().unwrap();")
		e.lnf("            st.%s += 1;", f)
		e.ln("        });")
		e.ln("    }")
	}
	e.ln("}")
	e.ln("")
}

// --- invalid free --------------------------------------------------------

// The Figure 6 relibc _fdopen shape: assigning a struct with drop glue
// through a pointer to fresh (uninitialized) memory drops the garbage
// previous value. Patch: ptr::write initializes without dropping.
func emitIFAssignUninit(e *emitter, p *Program, buggy bool) {
	s, f, fn := e.structName(), e.fieldName(), e.fnName()
	size := 32 << e.rng.Intn(4)
	cap := 16 << e.rng.Intn(5)
	p.FuncName = fn
	e.lnf("pub struct %s {", s)
	e.lnf("    %s: Vec<u8>,", f)
	e.ln("}")
	e.ln("")
	e.lnf("pub unsafe fn %s() -> *mut %s {", fn, s)
	e.lnf("    let slot = alloc(%d) as *mut %s;", size, s)
	p.Line = e.mark()
	if buggy {
		e.lnf("    *slot = %s { %s: vec![0u8; %d] };", s, f, cap)
	} else {
		e.lnf("    ptr::write(slot, %s { %s: vec![0u8; %d] });", s, f, cap)
	}
	e.ln("    slot")
	e.ln("}")
	e.ln("")
}

// --- double free ---------------------------------------------------------

// The §5.1 shape: ptr::read duplicates ownership, so the original and the
// duplicate both drop the same heap value. Two patch styles: a plain move
// (single owner), or mem::forget on the original.
func emitDFPtrReadDup(e *emitter, p *Program, buggy bool) {
	s, f, fn := e.structName(), e.fieldName(), e.fnName()
	forgetPatch := e.rng.Intn(2) == 0
	p.FuncName = fn
	e.lnf("struct %s {", s)
	e.lnf("    %s: Box<i32>,", f)
	e.ln("}")
	e.ln("")
	e.lnf("pub fn %s(t1: %s) -> i32 {", fn, s)
	if buggy {
		p.Line = e.mark()
		e.ln("    let t2 = unsafe { ptr::read(&t1) };")
	} else if forgetPatch {
		e.ln("    let t2 = unsafe { ptr::read(&t1) };")
		p.Line = e.mark()
		e.ln("    mem::forget(t1);")
	} else {
		p.Line = e.mark()
		e.ln("    let t2 = t1;")
	}
	e.lnf("    consume(0);")
	e.ln("    0")
	e.ln("}")
	e.ln("")
}

// --- blocking (§6.1) -------------------------------------------------------

// The orphaned-receive shape (Servo's channel bugs): the only sender half
// is dropped unused, so recv() can never complete. Patch: send before
// dropping.
func emitBlkChanOrphan(e *emitter, p *Program, buggy bool) {
	fn := e.fnName()
	k := e.rng.Intn(90) + 1
	p.FuncName = fn
	e.lnf("pub fn %s(n: i32) -> i32 {", fn)
	e.ln("    let (tx, rx) = mpsc::channel();")
	if buggy {
		p.Line = e.mark()
		e.ln("    drop(tx);")
	} else {
		p.Line = e.mark()
		e.ln("    tx.send(n);")
		e.ln("    drop(tx);")
	}
	e.ln("    let v = rx.recv().unwrap();")
	e.lnf("    v + %d", k)
	e.ln("}")
	e.ln("")
}

// The lost-signal shape (ethereum's Condvar bugs): the waiter's only
// wake-up is behind a condition and can be skipped. Patch: the signaller
// notifies unconditionally after updating the state.
func emitBlkCondvarLostSignal(e *emitter, p *Program, buggy bool) {
	s, f, waiter, signaller := e.structName(), e.fieldName(), e.fnName(), e.fnName()
	p.FuncName = s + "::" + waiter
	e.lnf("struct %s {", s)
	e.lnf("    %s: Mutex<bool>,", f)
	e.ln("    cv: Condvar,")
	e.ln("}")
	e.ln("")
	e.lnf("impl %s {", s)
	e.lnf("    fn %s(&self) {", waiter)
	e.lnf("        let g = self.%s.lock().unwrap();", f)
	e.ln("        let g2 = self.cv.wait(g);")
	e.ln("        consume_guard(g2);")
	e.ln("    }")
	e.ln("")
	e.lnf("    fn %s(&self, done: bool) {", signaller)
	if buggy {
		e.ln("        if done {")
		p.Line = e.mark()
		e.ln("            self.cv.notify_all();")
		e.ln("        }")
	} else {
		e.lnf("        let mut g = self.%s.lock().unwrap();", f)
		e.ln("        *g = true;")
		e.ln("        drop(g);")
		p.Line = e.mark()
		e.ln("        self.cv.notify_all();")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
}

// The all-ends-waiting shape (Servo's cross-wired pipeline): both
// spawned workers pull before either pushes, and the coordinator
// cross-wires the channel halves, so no message is ever in flight.
// Patch: the coordinator seeds the ring before spawning, so the first
// recv completes and the ring drains.
func emitBlkAllEndsWaiting(e *emitter, p *Program, buggy bool) {
	w1, w2, coord := e.fnName(), e.fnName(), e.fnName()
	inc := e.rng.Intn(9) + 2
	seed := e.rng.Intn(90)
	p.FuncName = w1
	e.lnf("fn %s(rx: Receiver<i32>, tx: Sender<i32>) {", w1)
	if buggy {
		p.Line = e.mark()
	}
	e.ln("    let job = rx.recv().unwrap();")
	e.ln("    tx.send(job + 1);")
	e.ln("}")
	e.ln("")
	e.lnf("fn %s(rx: Receiver<i32>, tx: Sender<i32>) {", w2)
	e.ln("    let job = rx.recv().unwrap();")
	e.lnf("    tx.send(job + %d);", inc)
	e.ln("}")
	e.ln("")
	e.lnf("pub fn %s() {", coord)
	e.ln("    let (tx_a, rx_a) = mpsc::channel();")
	e.ln("    let (tx_b, rx_b) = mpsc::channel();")
	if !buggy {
		p.Line = e.mark()
		e.lnf("    tx_a.send(%d);", seed)
	}
	e.ln("    thread::spawn(move || {")
	e.lnf("        %s(rx_a, tx_b);", w1)
	e.ln("    });")
	e.ln("    thread::spawn(move || {")
	e.lnf("        %s(rx_b, tx_a);", w2)
	e.ln("    });")
	e.ln("}")
	e.ln("")
}

// The param-rooted lost-signal shape (ethereum's Relay): the wait lives
// in a free helper that receives the condvar from its caller, and the
// owner's only notify is behind a condition. Patch: the owner notifies
// unconditionally.
func emitBlkCondvarParamWait(e *emitter, p *Program, buggy bool) {
	s, f, block, wake, helper := e.structName(), e.fieldName(), e.fnName(), e.fnName(), e.fnName()
	p.FuncName = helper
	e.lnf("struct %s {", s)
	e.lnf("    %s: Mutex<bool>,", f)
	e.ln("    cv: Condvar,")
	e.ln("}")
	e.ln("")
	e.lnf("impl %s {", s)
	e.lnf("    fn %s(&self) {", block)
	e.lnf("        %s(self.%s, self.cv);", helper, f)
	e.ln("    }")
	e.ln("")
	// Both variants keep the same signature so a variant toggle is a
	// body-only edit (the session sweep flips twins incrementally).
	e.lnf("    fn %s(&self, go: bool) {", wake)
	if buggy {
		e.ln("        if go {")
		p.Line = e.mark()
		e.ln("            self.cv.notify_all();")
		e.ln("        }")
	} else {
		e.ln("        consume(go);")
		p.Line = e.mark()
		e.ln("        self.cv.notify_all();")
	}
	e.ln("    }")
	e.ln("}")
	e.ln("")
	e.lnf("fn %s(m: Mutex<bool>, cv: Condvar) {", helper)
	e.ln("    let g = m.lock().unwrap();")
	e.ln("    let g2 = cv.wait(g);")
	e.ln("    consume_guard(g2);")
	e.ln("}")
	e.ln("")
}

// The closure-through-parameter Once shape (lazy_static's deep init):
// the initializer closure is bound to a variable and handed through a
// helper that runs it under call_once on the same cell the closure
// re-enters. Patch: the closure initializes a second, distinct cell.
func emitBlkOnceClosureParam(e *emitter, p *Program, buggy bool) {
	fn, helper := e.fnName(), e.fnName()
	k := e.rng.Intn(90) + 1
	p.FuncName = fn
	// Both variants share the two-cell signature so a variant toggle is a
	// body-only edit: the bug is which cell the closure re-enters.
	e.lnf("pub fn %s(first: Once, second: Once) {", fn)
	e.ln("    let f = || {")
	p.Line = e.mark()
	if buggy {
		e.ln("        first.call_once(|| {")
	} else {
		e.ln("        second.call_once(|| {")
	}
	e.lnf("            consume(%d);", k)
	e.ln("        });")
	e.ln("    };")
	e.lnf("    %s(first, f);", helper)
	e.ln("}")
	e.ln("")
	e.lnf("fn %s(once: Once, f: F) {", helper)
	e.ln("    once.call_once(f);")
	e.ln("}")
	e.ln("")
}

// The Once-reentrancy shape: the initializer re-enters call_once on its
// own cell through a helper and waits on itself. Patch: the initializer
// does plain work.
func emitBlkOnceReentrant(e *emitter, p *Program, buggy bool) {
	fn, helper := e.fnName(), e.fnName()
	k := e.rng.Intn(90) + 1
	p.FuncName = fn
	e.lnf("pub fn %s(once: Once) {", fn)
	e.ln("    once.call_once(|| {")
	if buggy {
		p.Line = e.mark()
		e.lnf("        %s(once);", helper)
	} else {
		p.Line = e.mark()
		e.lnf("        consume(%d);", k)
	}
	e.ln("    });")
	e.ln("}")
	e.ln("")
	e.lnf("fn %s(once: Once) {", helper)
	e.ln("    once.call_once(|| {")
	e.lnf("        consume(%d);", k+1)
	e.ln("    });")
	e.ln("}")
	e.ln("")
}
