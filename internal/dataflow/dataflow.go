// Package dataflow implements a generic worklist dataflow engine over MIR
// CFGs using bit sets as the fact domain. The detectors instantiate it for
// live-storage, live-guard and pointer-validity analyses.
package dataflow

import (
	"math/bits"

	"rustprobe/internal/cfg"
	"rustprobe/internal/mir"
)

// BitSet is a fixed-capacity bit set.
type BitSet []uint64

// NewBitSet returns a set with capacity for n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << uint(i%64) }

// Clear clears bit i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << uint(i%64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }

// Clone copies the set.
func (s BitSet) Clone() BitSet {
	out := make(BitSet, len(s))
	copy(out, s)
	return out
}

// UnionWith ors other into s, reporting whether s changed.
func (s BitSet) UnionWith(other BitSet) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] |= other[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// IntersectWith ands other into s, reporting whether s changed.
func (s BitSet) IntersectWith(other BitSet) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] &= other[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Equal reports set equality.
func (s BitSet) Equal(other BitSet) bool {
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every set bit in ascending order.
func (s BitSet) ForEach(f func(int)) {
	for wi, w := range s {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &^= 1 << uint(i)
		}
	}
}

// Fill sets all n bits.
func (s BitSet) Fill(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// JoinKind selects the confluence operator.
type JoinKind int

// Join kinds: may-analyses union, must-analyses intersect.
const (
	JoinUnion JoinKind = iota
	JoinIntersect
)

// Problem defines a forward dataflow problem over one body.
type Problem struct {
	// Bits is the domain size.
	Bits int
	// Join selects union (may) or intersection (must).
	Join JoinKind
	// Entry seeds the state at function entry.
	Entry func(state BitSet)
	// TransferStmt updates state across one statement.
	TransferStmt func(state BitSet, blk mir.BlockID, idx int, st mir.Statement)
	// TransferTerm updates state across a terminator, before edges fan
	// out. Optional.
	TransferTerm func(state BitSet, blk mir.BlockID, term mir.Terminator)
}

// Result holds per-block entry states of a converged analysis.
type Result struct {
	Graph *cfg.Graph
	In    []BitSet // state at block entry
	prob  *Problem
}

// Forward runs a forward analysis to fixpoint and returns per-block entry
// states.
func Forward(g *cfg.Graph, p *Problem) *Result {
	n := len(g.Body.Blocks)
	in := make([]BitSet, n)
	for i := range in {
		in[i] = NewBitSet(p.Bits)
		if p.Join == JoinIntersect {
			in[i].Fill(p.Bits) // top = all for must-analyses
		}
	}
	if n == 0 {
		return &Result{Graph: g, In: in, prob: p}
	}
	entryState := NewBitSet(p.Bits)
	if p.Entry != nil {
		p.Entry(entryState)
	}
	in[0] = entryState.Clone()

	// Worklist in RPO order.
	inWork := make([]bool, n)
	var work []mir.BlockID
	for _, b := range g.RPO {
		work = append(work, b)
		inWork[b] = true
	}
	visited := make([]bool, n)
	visited[0] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		state := in[b].Clone()
		applyBlock(state, g.Body.Blocks[b], p)

		for _, s := range g.Succs[b] {
			var changed bool
			if !visited[s] {
				// First touch: copy state directly (important for
				// intersection joins, where top would mask it).
				copy(in[s], state)
				visited[s] = true
				changed = true
			} else if p.Join == JoinUnion {
				changed = in[s].UnionWith(state)
			} else {
				changed = in[s].IntersectWith(state)
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return &Result{Graph: g, In: in, prob: p}
}

func applyBlock(state BitSet, blk *mir.Block, p *Problem) {
	for i, st := range blk.Stmts {
		if p.TransferStmt != nil {
			p.TransferStmt(state, blk.ID, i, st)
		}
	}
	if blk.Term != nil && p.TransferTerm != nil {
		p.TransferTerm(state, blk.ID, blk.Term)
	}
}

// StateAt recomputes the state just before statement idx of block b
// (idx == len(stmts) gives the state before the terminator).
func (r *Result) StateAt(b mir.BlockID, idx int) BitSet {
	state := r.In[b].Clone()
	blk := r.Graph.Body.Blocks[b]
	for i := 0; i < idx && i < len(blk.Stmts); i++ {
		if r.prob.TransferStmt != nil {
			r.prob.TransferStmt(state, b, i, blk.Stmts[i])
		}
	}
	return state
}
