package dataflow

import (
	"testing"

	"rustprobe/internal/cfg"
	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func lowerFor(t *testing.T, src, fn string) *mir.Body {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return body
}

func localByName(b *mir.Body, name string) mir.LocalID {
	for _, l := range b.Locals {
		if l.Name == name {
			return l.ID
		}
	}
	return -1
}

func TestLivenessStraightLine(t *testing.T) {
	body := lowerFor(t, `
fn f() -> i32 {
    let a = 1;
    let b = a + 1;
    b
}
`, "f")
	g := cfg.New(body)
	live := LiveLocals(g)
	a := localByName(body, "a")
	b := localByName(body, "b")
	// At entry, nothing is live (a and b are defined before use).
	entry := live.In(0)
	if entry.Has(int(a)) || entry.Has(int(b)) {
		t.Errorf("entry liveness wrong: a=%v b=%v", entry.Has(int(a)), entry.Has(int(b)))
	}
}

func TestLivenessAcrossBranch(t *testing.T) {
	body := lowerFor(t, `
fn f(c: bool) -> i32 {
    let x = 1;
    if c {
        return x;
    }
    0
}
`, "f")
	g := cfg.New(body)
	live := LiveLocals(g)
	x := localByName(body, "x")
	// x is defined before the SwitchInt in the same block, so it is dead
	// at the block's *entry* but live at its *exit* (the then-path reads
	// it).
	found := false
	for _, blk := range body.Blocks {
		if _, ok := blk.Term.(mir.SwitchInt); ok {
			if live.Out[blk.ID].Has(int(x)) {
				found = true
			}
			if live.In(blk.ID).Has(int(x)) {
				t.Errorf("x live at entry despite being defined in the block")
			}
		}
	}
	if !found {
		t.Errorf("x not live at the branch exit\n%s", body)
	}
}

func TestLivenessDeadStore(t *testing.T) {
	body := lowerFor(t, `
fn f() -> i32 {
    let mut x = 1;
    x = 2;
    x
}
`, "f")
	g := cfg.New(body)
	live := LiveLocals(g)
	x := localByName(body, "x")
	// Before the first store, x is not live (the store kills the previous
	// value): at function entry x must be dead.
	if live.In(0).Has(int(x)) {
		t.Errorf("x live at entry despite being defined before use")
	}
}

// TestBackwardIntersect: a must-analysis joins with intersection.
func TestBackwardIntersect(t *testing.T) {
	// Diamond: bit 0 is generated (backward) only on one arm; the must
	// analysis clears it at the split point, the may analysis keeps it.
	b := &mir.Body{}
	for i := 0; i < 4; i++ {
		b.NewBlock()
	}
	b.Blocks[0].Term = mir.SwitchInt{Disc: mir.Const{Text: "c"},
		Targets: []mir.SwitchTarget{{Value: "t", Block: 1}}, Otherwise: 2}
	b.Blocks[1].Stmts = []mir.Statement{mir.StorageLive{Local: 0}}
	b.Blocks[1].Term = mir.Goto{Target: 3}
	b.Blocks[2].Term = mir.Goto{Target: 3}
	b.Blocks[3].Term = mir.Return{}
	g := cfg.New(b)

	transfer := func(state BitSet, _ mir.BlockID, _ int, st mir.Statement) {
		if _, ok := st.(mir.StorageLive); ok {
			state.Set(0)
		}
	}
	may := Backward(g, &BackwardProblem{Bits: 1, Join: JoinUnion, TransferStmt: transfer})
	if !may.Out[0].Has(0) {
		t.Error("may-backward: bit should flow to the split's out state")
	}
	must := Backward(g, &BackwardProblem{Bits: 1, Join: JoinIntersect, TransferStmt: transfer})
	if must.Out[0].Has(0) {
		t.Error("must-backward: one-armed bit must not survive the split")
	}
}
