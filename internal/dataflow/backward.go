package dataflow

import (
	"rustprobe/internal/cfg"
	"rustprobe/internal/mir"
)

// BackwardProblem defines a backward dataflow problem (e.g. liveness).
// Transfer functions run in reverse: the terminator first, then statements
// from last to first.
type BackwardProblem struct {
	Bits int
	Join JoinKind
	// Exit seeds the state at every exit block (Return/Unreachable).
	Exit func(state BitSet)
	// TransferStmt updates state across one statement, applied in reverse
	// program order.
	TransferStmt func(state BitSet, blk mir.BlockID, idx int, st mir.Statement)
	// TransferTerm updates state across a terminator.
	TransferTerm func(state BitSet, blk mir.BlockID, term mir.Terminator)
}

// BackwardResult holds per-block exit states (the state at the end of the
// block, before its terminator's effect has been applied in reverse).
type BackwardResult struct {
	Graph *cfg.Graph
	// Out is the converged state at each block's exit.
	Out  []BitSet
	prob *BackwardProblem
}

// Backward runs a backward analysis to fixpoint.
func Backward(g *cfg.Graph, p *BackwardProblem) *BackwardResult {
	n := len(g.Body.Blocks)
	out := make([]BitSet, n)
	for i := range out {
		out[i] = NewBitSet(p.Bits)
		if p.Join == JoinIntersect {
			out[i].Fill(p.Bits)
		}
	}
	res := &BackwardResult{Graph: g, Out: out, prob: p}
	if n == 0 {
		return res
	}

	exitSeed := NewBitSet(p.Bits)
	if p.Exit != nil {
		p.Exit(exitSeed)
	}

	// Worklist seeded with all reachable blocks in postorder (reverse of
	// RPO), which converges fastest for backward problems.
	inWork := make([]bool, n)
	var work []mir.BlockID
	for i := len(g.RPO) - 1; i >= 0; i-- {
		work = append(work, g.RPO[i])
		inWork[g.RPO[i]] = true
	}
	visited := make([]bool, n)

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk := g.Body.Blocks[b]

		// The out state of b joins the in states of its successors; exit
		// blocks take the exit seed.
		var state BitSet
		if blk.Term == nil || len(blk.Term.Successors()) == 0 {
			state = exitSeed.Clone()
		} else {
			state = NewBitSet(p.Bits)
			if p.Join == JoinIntersect {
				state.Fill(p.Bits)
			}
			first := true
			for _, s := range blk.Term.Successors() {
				succIn := res.inState(s)
				if first {
					copy(state, succIn)
					first = false
				} else if p.Join == JoinUnion {
					state.UnionWith(succIn)
				} else {
					state.IntersectWith(succIn)
				}
			}
		}

		if state.Equal(out[b]) && visited[b] {
			continue
		}
		visited[b] = true
		copy(out[b], state)

		// Changing b's out state may change its predecessors' views.
		for _, pred := range g.Preds[b] {
			if !inWork[pred] {
				work = append(work, pred)
				inWork[pred] = true
			}
		}
	}
	return res
}

// inState computes the state at a block's entry by applying the block's
// transfer functions backward from its exit state.
func (r *BackwardResult) inState(b mir.BlockID) BitSet {
	state := r.Out[b].Clone()
	blk := r.Graph.Body.Blocks[b]
	if blk.Term != nil && r.prob.TransferTerm != nil {
		r.prob.TransferTerm(state, b, blk.Term)
	}
	for i := len(blk.Stmts) - 1; i >= 0; i-- {
		if r.prob.TransferStmt != nil {
			r.prob.TransferStmt(state, b, i, blk.Stmts[i])
		}
	}
	return state
}

// In exposes the entry state of a block.
func (r *BackwardResult) In(b mir.BlockID) BitSet { return r.inState(b) }

// LiveLocals computes classic backward liveness over a body: bit l set at
// a point means local l may be read later. Used by consumers that need
// last-use information (e.g. precise NLL-style ranges).
func LiveLocals(g *cfg.Graph) *BackwardResult {
	n := len(g.Body.Locals)
	use := func(state BitSet, op mir.Operand) {
		if pl, ok := mir.OperandPlace(op); ok {
			state.Set(int(pl.Local))
		}
	}
	return Backward(g, &BackwardProblem{
		Bits: n,
		Join: JoinUnion,
		TransferStmt: func(state BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			switch st := st.(type) {
			case mir.Assign:
				if st.Place.IsLocal() {
					state.Clear(int(st.Place.Local))
				} else {
					// Writing through a projection reads the base.
					state.Set(int(st.Place.Local))
				}
				switch rv := st.Rvalue.(type) {
				case mir.Use:
					use(state, rv.X)
				case mir.Cast:
					use(state, rv.X)
				case mir.BinaryOp:
					use(state, rv.L)
					use(state, rv.R)
				case mir.UnaryOp:
					use(state, rv.X)
				case mir.Aggregate:
					for _, op := range rv.Ops {
						use(state, op)
					}
				case mir.Ref:
					state.Set(int(rv.Place.Local))
				case mir.AddrOf:
					state.Set(int(rv.Place.Local))
				case mir.Discriminant:
					state.Set(int(rv.Place.Local))
				}
			}
		},
		TransferTerm: func(state BitSet, _ mir.BlockID, term mir.Terminator) {
			switch term := term.(type) {
			case mir.Call:
				if term.Dest.IsLocal() {
					state.Clear(int(term.Dest.Local))
				}
				for _, a := range term.Args {
					use(state, a)
				}
			case mir.SwitchInt:
				use(state, term.Disc)
			case mir.Drop:
				state.Set(int(term.Place.Local))
			case mir.Return:
				state.Set(int(mir.ReturnLocal))
			}
		},
	})
}
