package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rustprobe/internal/cfg"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("Set/Has broken")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear broken")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("ForEach = %v", got)
	}
}

func TestBitSetLattice(t *testing.T) {
	// Union and intersection laws over random sets.
	prop := func(xs, ys []uint8) bool {
		a, b := NewBitSet(256), NewBitSet(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		// a ∪ b ⊇ a and idempotent.
		u := a.Clone()
		u.UnionWith(b)
		for _, x := range xs {
			if !u.Has(int(x)) {
				return false
			}
		}
		u2 := u.Clone()
		if u2.UnionWith(b) { // no change the second time
			return false
		}
		// a ∩ b ⊆ a.
		i := a.Clone()
		i.IntersectWith(b)
		ok := true
		i.ForEach(func(bit int) {
			if !a.Has(bit) || !b.Has(bit) {
				ok = false
			}
		})
		return ok && u.Equal(u2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// gen/kill problem over a known diamond: verify the union join merges both
// branch effects and StateAt replays a block prefix.
func TestForwardDiamond(t *testing.T) {
	b := &mir.Body{}
	for i := 0; i < 4; i++ {
		b.NewBlock()
	}
	b.NewLocal("", types.UnknownType, false, source.Span{})
	// bb0: switch -> bb1, bb2 ; bb1: StorageLive(0) ; bb2: nothing ; both -> bb3.
	b.Blocks[0].Term = mir.SwitchInt{Disc: mir.Const{Text: "c"},
		Targets: []mir.SwitchTarget{{Value: "t", Block: 1}}, Otherwise: 2}
	b.Blocks[1].Stmts = []mir.Statement{mir.StorageLive{Local: 0}}
	b.Blocks[1].Term = mir.Goto{Target: 3}
	b.Blocks[2].Term = mir.Goto{Target: 3}
	b.Blocks[3].Term = mir.Return{}

	g := cfg.New(b)
	prob := &Problem{
		Bits: 1,
		Join: JoinUnion,
		TransferStmt: func(state BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			if _, ok := st.(mir.StorageLive); ok {
				state.Set(0)
			}
		},
	}
	res := Forward(g, prob)
	if !res.In[3].Has(0) {
		t.Error("may-analysis: bit should reach the join via bb1")
	}
	if res.In[2].Has(0) {
		t.Error("bit must not appear on the untouched branch")
	}

	// Must-analysis: intersection kills the bit at the join.
	probMust := &Problem{Bits: 1, Join: JoinIntersect, TransferStmt: prob.TransferStmt}
	resMust := Forward(g, probMust)
	if resMust.In[3].Has(0) {
		t.Error("must-analysis: bit only set on one branch must not survive the join")
	}
}

func TestStateAtReplaysPrefix(t *testing.T) {
	b := &mir.Body{}
	b.NewBlock()
	b.NewLocal("", types.UnknownType, false, source.Span{})
	b.NewLocal("", types.UnknownType, false, source.Span{})
	b.Blocks[0].Stmts = []mir.Statement{
		mir.StorageLive{Local: 0},
		mir.StorageLive{Local: 1},
	}
	b.Blocks[0].Term = mir.Return{}
	g := cfg.New(b)
	prob := &Problem{
		Bits: 2,
		Join: JoinUnion,
		TransferStmt: func(state BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			if sl, ok := st.(mir.StorageLive); ok {
				state.Set(int(sl.Local))
			}
		},
	}
	res := Forward(g, prob)
	if res.StateAt(0, 0).Count() != 0 {
		t.Error("state before stmt 0 should be empty")
	}
	if !res.StateAt(0, 1).Has(0) || res.StateAt(0, 1).Has(1) {
		t.Error("state before stmt 1 wrong")
	}
	if res.StateAt(0, 2).Count() != 2 {
		t.Error("state before terminator wrong")
	}
}

// TestMonotoneConvergence: on random CFGs with random gen/kill sets the
// union analysis converges and its fixpoint is stable under one more
// application.
func TestMonotoneConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(8)
		bits := 8
		body := &mir.Body{}
		gens := make([][]int, n)
		for i := 0; i < n; i++ {
			body.NewBlock()
			for j := 0; j < r.Intn(3); j++ {
				gens[i] = append(gens[i], r.Intn(bits))
			}
		}
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				body.Blocks[i].Term = mir.Return{}
			case 1:
				body.Blocks[i].Term = mir.Goto{Target: mir.BlockID(r.Intn(n))}
			default:
				body.Blocks[i].Term = mir.SwitchInt{Disc: mir.Const{Text: "c"},
					Targets:   []mir.SwitchTarget{{Value: "t", Block: mir.BlockID(r.Intn(n))}},
					Otherwise: mir.BlockID(r.Intn(n))}
			}
		}
		g := cfg.New(body)
		prob := &Problem{
			Bits: bits,
			Join: JoinUnion,
			TransferTerm: func(state BitSet, blk mir.BlockID, _ mir.Terminator) {
				for _, bit := range gens[blk] {
					state.Set(bit)
				}
			},
		}
		res := Forward(g, prob)
		// Stability: for every edge u->v, transfer(In[u]) ⊆ In[v].
		for _, u := range g.RPO {
			state := res.In[u].Clone()
			if body.Blocks[u].Term != nil {
				prob.TransferTerm(state, u, body.Blocks[u].Term)
			}
			for _, v := range g.Succs[u] {
				merged := res.In[v].Clone()
				if merged.UnionWith(state) {
					t.Fatalf("fixpoint not stable on edge bb%d->bb%d", u, v)
				}
			}
		}
	}
}
