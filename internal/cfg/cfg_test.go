package cfg

import (
	"math/rand"
	"testing"

	"rustprobe/internal/mir"
)

// buildBody constructs a Body whose block i jumps to the listed successors
// (nil = Return; one = Goto; two = SwitchInt).
func buildBody(succs [][]mir.BlockID) *mir.Body {
	b := &mir.Body{}
	for range succs {
		b.NewBlock()
	}
	for i, ss := range succs {
		switch len(ss) {
		case 0:
			b.Blocks[i].Term = mir.Return{}
		case 1:
			b.Blocks[i].Term = mir.Goto{Target: ss[0]}
		default:
			var targets []mir.SwitchTarget
			for _, s := range ss[:len(ss)-1] {
				targets = append(targets, mir.SwitchTarget{Value: "v", Block: s})
			}
			b.Blocks[i].Term = mir.SwitchInt{
				Disc:      mir.Const{Text: "c"},
				Targets:   targets,
				Otherwise: ss[len(ss)-1],
			}
		}
	}
	return b
}

func TestLinearCFG(t *testing.T) {
	b := buildBody([][]mir.BlockID{{1}, {2}, nil})
	g := New(b)
	if len(g.RPO) != 3 || g.RPO[0] != 0 || g.RPO[2] != 2 {
		t.Errorf("RPO = %v", g.RPO)
	}
	idom := g.Dominators()
	if idom[1] != 0 || idom[2] != 1 {
		t.Errorf("idom = %v", idom)
	}
	if !Dominates(idom, 0, 2) || Dominates(idom, 2, 0) {
		t.Error("Dominates wrong on a chain")
	}
}

func TestDiamond(t *testing.T) {
	//      0
	//    /   \
	//   1     2
	//    \   /
	//      3
	b := buildBody([][]mir.BlockID{{1, 2}, {3}, {3}, nil})
	g := New(b)
	idom := g.Dominators()
	if idom[3] != 0 {
		t.Errorf("join's idom = %d, want 0", idom[3])
	}
	if Dominates(idom, 1, 3) || Dominates(idom, 2, 3) {
		t.Error("branch arms must not dominate the join")
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry dominates everything")
	}
	if len(g.Preds[3]) != 2 {
		t.Errorf("join preds = %v", g.Preds[3])
	}
}

func TestLoop(t *testing.T) {
	// 0 -> 1 (head) -> {2 (body), 3 (exit)}; 2 -> 1
	b := buildBody([][]mir.BlockID{{1}, {2, 3}, {1}, nil})
	g := New(b)
	idom := g.Dominators()
	if idom[2] != 1 || idom[3] != 1 {
		t.Errorf("idom = %v", idom)
	}
	reach := g.ReachableFrom(2)
	if !reach[1] || !reach[3] {
		t.Errorf("reach from body = %v", reach)
	}
}

func TestUnreachableBlock(t *testing.T) {
	b := buildBody([][]mir.BlockID{{2}, nil, nil}) // block 1 unreachable
	g := New(b)
	if g.Reachable(1) {
		t.Error("block 1 should be unreachable")
	}
	idom := g.Dominators()
	if idom[1] != -1 {
		t.Errorf("unreachable idom = %d", idom[1])
	}
}

// TestDominatorPropertiesRandom checks dominator-tree laws over random
// CFGs: the entry dominates every reachable block, idom(b) dominates b,
// and every path from entry to b passes through idom(b) (verified by
// deleting idom(b) and checking unreachability).
func TestDominatorPropertiesRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(12)
		succs := make([][]mir.BlockID, n)
		for i := range succs {
			switch r.Intn(3) {
			case 0: // return
			case 1:
				succs[i] = []mir.BlockID{mir.BlockID(r.Intn(n))}
			default:
				succs[i] = []mir.BlockID{mir.BlockID(r.Intn(n)), mir.BlockID(r.Intn(n))}
			}
		}
		b := buildBody(succs)
		g := New(b)
		idom := g.Dominators()
		for _, blk := range g.RPO {
			if !Dominates(idom, 0, blk) {
				t.Fatalf("entry must dominate bb%d (succs=%v)", blk, succs)
			}
			if blk == 0 {
				continue
			}
			if !Dominates(idom, idom[blk], blk) {
				t.Fatalf("idom(bb%d)=bb%d does not dominate it", blk, idom[blk])
			}
			// Removing idom(b) must disconnect b from entry.
			if idom[blk] != 0 && reachAvoiding(g, blk, idom[blk]) {
				t.Fatalf("bb%d reachable avoiding its idom bb%d (succs=%v)", blk, idom[blk], succs)
			}
		}
	}
}

// reachAvoiding reports whether target is reachable from entry without
// visiting the avoid block.
func reachAvoiding(g *Graph, target, avoid mir.BlockID) bool {
	if avoid == 0 {
		return false
	}
	seen := map[mir.BlockID]bool{0: true}
	work := []mir.BlockID{0}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur == target {
			return true
		}
		for _, s := range g.Succs[cur] {
			if s != avoid && !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}
