// Package cfg provides control-flow-graph utilities over MIR bodies:
// predecessor maps, postorder/reverse-postorder traversals, reachability,
// and dominator trees (Cooper-Harvey-Kennedy iterative algorithm).
package cfg

import "rustprobe/internal/mir"

// Graph caches CFG structure for one body.
type Graph struct {
	Body  *mir.Body
	Preds [][]mir.BlockID
	Succs [][]mir.BlockID
	// RPO is the reverse postorder over reachable blocks from entry (bb0).
	RPO []mir.BlockID
	// RPOIndex maps a block to its position in RPO, or -1 if unreachable.
	RPOIndex []int
}

// New builds the Graph for a body.
func New(b *mir.Body) *Graph {
	n := len(b.Blocks)
	g := &Graph{
		Body:     b,
		Preds:    make([][]mir.BlockID, n),
		Succs:    make([][]mir.BlockID, n),
		RPOIndex: make([]int, n),
	}
	for _, blk := range b.Blocks {
		if blk.Term == nil {
			continue
		}
		for _, s := range blk.Term.Successors() {
			g.Succs[blk.ID] = append(g.Succs[blk.ID], s)
			g.Preds[s] = append(g.Preds[s], blk.ID)
		}
	}
	// Postorder DFS from entry.
	visited := make([]bool, n)
	var post []mir.BlockID
	var dfs func(mir.BlockID)
	dfs = func(id mir.BlockID) {
		visited[id] = true
		for _, s := range g.Succs[id] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	if n > 0 {
		dfs(0)
	}
	for i := range g.RPOIndex {
		g.RPOIndex[i] = -1
	}
	for i := len(post) - 1; i >= 0; i-- {
		g.RPOIndex[post[i]] = len(g.RPO)
		g.RPO = append(g.RPO, post[i])
	}
	return g
}

// Reachable reports whether the block is reachable from entry.
func (g *Graph) Reachable(id mir.BlockID) bool { return g.RPOIndex[id] >= 0 }

// ReachableFrom returns the set of blocks reachable from start, inclusive.
func (g *Graph) ReachableFrom(start mir.BlockID) map[mir.BlockID]bool {
	seen := map[mir.BlockID]bool{start: true}
	work := []mir.BlockID{start}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succs[cur] {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// Dominators computes the immediate-dominator array using the iterative
// algorithm of Cooper, Harvey and Kennedy. idom[entry] == entry;
// unreachable blocks get -1.
func (g *Graph) Dominators() []mir.BlockID {
	n := len(g.Body.Blocks)
	idom := make([]mir.BlockID, n)
	for i := range idom {
		idom[i] = -1
	}
	if len(g.RPO) == 0 {
		return idom
	}
	entry := g.RPO[0]
	idom[entry] = entry

	intersect := func(a, b mir.BlockID) mir.BlockID {
		for a != b {
			for g.RPOIndex[a] > g.RPOIndex[b] {
				a = idom[a]
			}
			for g.RPOIndex[b] > g.RPOIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO[1:] {
			var newIdom mir.BlockID = -1
			for _, p := range g.Preds[b] {
				if !g.Reachable(p) || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom array.
func Dominates(idom []mir.BlockID, a, b mir.BlockID) bool {
	if a == b {
		return true
	}
	for b != -1 {
		parent := idom[b]
		if parent == b {
			return false // reached entry
		}
		if parent == a {
			return true
		}
		b = parent
	}
	return false
}
