package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStrings(t *testing.T) {
	tests := []struct {
		ty   Type
		want string
	}{
		{UnitType, "()"},
		{I32Type, "i32"},
		{RefTo(StrType), "&str"},
		{MutRefTo(NamedOf("Inner")), "&mut Inner"},
		{&RawPtr{Mut: true, Elem: U8Type}, "*mut u8"},
		{&RawPtr{Elem: U8Type}, "*const u8"},
		{NamedOf("Arc", NamedOf("Mutex", I32Type)), "Arc<Mutex<i32>>"},
		{&Tuple{Elems: []Type{I32Type, BoolType}}, "(i32, bool)"},
		{&Slice{Elem: U8Type}, "[u8]"},
		{&Array{Elem: U8Type, Len: 4}, "[u8; 4]"},
		{&Fn{Params: []Type{I32Type}, Ret: BoolType}, "fn(i32) -> bool"},
		{UnknownType, "?"},
		{NeverType, "!"},
	}
	for _, tt := range tests {
		if got := tt.ty.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPeel(t *testing.T) {
	ty := RefTo(&RawPtr{Elem: NamedOf("T")})
	if Peel(ty).String() != "*const T" {
		t.Errorf("Peel = %s", Peel(ty))
	}
	if PeelAll(ty).String() != "T" {
		t.Errorf("PeelAll = %s", PeelAll(ty))
	}
	if Peel(I32Type) != I32Type {
		t.Error("Peel of non-pointer should be identity")
	}
}

func TestIsCopy(t *testing.T) {
	copyable := []Type{I32Type, BoolType, RefTo(I32Type), &RawPtr{Elem: U8Type},
		&Tuple{Elems: []Type{I32Type, BoolType}}, NeverType}
	for _, ty := range copyable {
		if !IsCopy(ty) {
			t.Errorf("%s should be Copy", ty)
		}
	}
	moveOnly := []Type{MutRefTo(I32Type), NamedOf("Vec", U8Type), NamedOf("String"),
		NamedOf("MutexGuard", I32Type), &Tuple{Elems: []Type{I32Type, NamedOf("Box", I32Type)}},
		UnknownType}
	for _, ty := range moveOnly {
		if IsCopy(ty) {
			t.Errorf("%s should move", ty)
		}
	}
}

func TestLockGuards(t *testing.T) {
	if lt, ok := IsLockGuard(NamedOf("MutexGuard", I32Type)); !ok || lt != "Mutex" {
		t.Errorf("MutexGuard: %q %v", lt, ok)
	}
	if lt, ok := IsLockGuard(NamedOf("RwLockReadGuard", I32Type)); !ok || lt != "RwLock" {
		t.Errorf("RwLockReadGuard: %q %v", lt, ok)
	}
	if _, ok := IsLockGuard(NamedOf("Vec", I32Type)); ok {
		t.Error("Vec is not a guard")
	}
	if !IsLock(NamedOf("Mutex", I32Type)) || !IsLock(NamedOf("RwLock", I32Type)) || IsLock(I32Type) {
		t.Error("IsLock wrong")
	}
}

func TestOwningContainers(t *testing.T) {
	for _, name := range []string{"Box", "Vec", "String", "Arc", "Rc", "HashMap"} {
		if !IsOwningContainer(NamedOf(name)) {
			t.Errorf("%s should own heap", name)
		}
	}
	if IsOwningContainer(NamedOf("Inner")) || IsOwningContainer(I32Type) {
		t.Error("non-containers misclassified")
	}
}

// genType builds a random type of bounded depth for property tests.
func genType(r *rand.Rand, depth int) Type {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return I32Type
		case 1:
			return BoolType
		case 2:
			return UnknownType
		default:
			return NamedOf("T")
		}
	}
	switch r.Intn(6) {
	case 0:
		return RefTo(genType(r, depth-1))
	case 1:
		return MutRefTo(genType(r, depth-1))
	case 2:
		return &RawPtr{Mut: r.Intn(2) == 0, Elem: genType(r, depth-1)}
	case 3:
		return &Tuple{Elems: []Type{genType(r, depth-1), genType(r, depth-1)}}
	case 4:
		return NamedOf("Vec", genType(r, depth-1))
	default:
		return &Slice{Elem: genType(r, depth-1)}
	}
}

func TestEqualProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	// Reflexivity and symmetry over random structural types.
	for i := 0; i < 500; i++ {
		a := genType(r, 3)
		b := genType(r, 3)
		if !Equal(a, a) {
			t.Fatalf("Equal not reflexive for %s", a)
		}
		if Equal(a, b) != Equal(b, a) {
			t.Fatalf("Equal not symmetric for %s / %s", a, b)
		}
		// Equal implies equal strings.
		if Equal(a, b) && a.String() != b.String() {
			t.Fatalf("equal types render differently: %s vs %s", a, b)
		}
	}
}

func TestPeelAllTerminates(t *testing.T) {
	prop := func(depth uint8) bool {
		r := rand.New(rand.NewSource(int64(depth)))
		ty := genType(r, int(depth%6))
		out := PeelAll(ty)
		// The result is never pointer-like.
		return !IsPointerLike(out)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPrimByName(t *testing.T) {
	if PrimByName["i32"] != I32 || PrimByName["usize"] != USize || PrimByName["bool"] != Bool {
		t.Error("PrimByName wrong")
	}
	if _, ok := PrimByName["Vec"]; ok {
		t.Error("Vec is not a primitive")
	}
	p := &Prim{Kind: U64}
	if !p.IsInteger() {
		t.Error("u64 is an integer")
	}
	if (&Prim{Kind: F32}).IsInteger() {
		t.Error("f32 is not an integer")
	}
	_ = reflect.TypeOf(p)
}

func TestNamedArg(t *testing.T) {
	n := NamedOf("Result", I32Type, BoolType)
	if n.Arg(0) != I32Type || n.Arg(1) != BoolType {
		t.Error("Arg wrong")
	}
	if n.Arg(5) != UnknownType {
		t.Error("out-of-range Arg should be Unknown")
	}
}
