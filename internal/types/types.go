// Package types defines the semantic type representation used by lowering
// and the MIR analyses. It is deliberately simpler than rustc's: generic
// parameters erase to Unknown unless instantiated syntactically, which is
// sufficient for the ownership/lifetime facts the paper's detectors need.
package types

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all semantic types.
type Type interface {
	String() string
	isType()
}

// PrimKind enumerates primitive types.
type PrimKind int

// Primitive kinds.
const (
	Unit PrimKind = iota
	Bool
	Char
	Str // the unsized str type; &str is Ref{Elem: Prim(Str)}
	I8
	I16
	I32
	I64
	I128
	ISize
	U8
	U16
	U32
	U64
	U128
	USize
	F32
	F64
)

var primNames = map[PrimKind]string{
	Unit: "()", Bool: "bool", Char: "char", Str: "str",
	I8: "i8", I16: "i16", I32: "i32", I64: "i64", I128: "i128", ISize: "isize",
	U8: "u8", U16: "u16", U32: "u32", U64: "u64", U128: "u128", USize: "usize",
	F32: "f32", F64: "f64",
}

// PrimByName maps a source-level name to its primitive kind.
var PrimByName = func() map[string]PrimKind {
	m := make(map[string]PrimKind, len(primNames))
	for k, v := range primNames {
		m[v] = k
	}
	return m
}()

// Prim is a primitive type.
type Prim struct{ Kind PrimKind }

func (p *Prim) isType() {}

func (p *Prim) String() string { return primNames[p.Kind] }

// IsInteger reports whether the primitive is an integer type.
func (p *Prim) IsInteger() bool { return p.Kind >= I8 && p.Kind <= USize }

// Named is a nominal type: a user struct/enum or a known library type
// (Vec, Box, Arc, Rc, Mutex, RwLock, Option, Result, ...), possibly with
// type arguments.
type Named struct {
	Name string
	Args []Type
}

func (n *Named) isType() {}

func (n *Named) String() string {
	if len(n.Args) == 0 {
		return n.Name
	}
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.String()
	}
	return n.Name + "<" + strings.Join(parts, ", ") + ">"
}

// Arg returns the i'th type argument or Unknown.
func (n *Named) Arg(i int) Type {
	if i < len(n.Args) {
		return n.Args[i]
	}
	return UnknownType
}

// Ref is `&T` / `&mut T`.
type Ref struct {
	Mut  bool
	Elem Type
}

func (r *Ref) isType() {}

func (r *Ref) String() string {
	if r.Mut {
		return "&mut " + r.Elem.String()
	}
	return "&" + r.Elem.String()
}

// RawPtr is `*const T` / `*mut T`.
type RawPtr struct {
	Mut  bool
	Elem Type
}

func (r *RawPtr) isType() {}

func (r *RawPtr) String() string {
	if r.Mut {
		return "*mut " + r.Elem.String()
	}
	return "*const " + r.Elem.String()
}

// Tuple is `(A, B, ...)`.
type Tuple struct{ Elems []Type }

func (t *Tuple) isType() {}

func (t *Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Slice is `[T]`.
type Slice struct{ Elem Type }

func (s *Slice) isType() {}

func (s *Slice) String() string { return "[" + s.Elem.String() + "]" }

// Array is `[T; N]`; N is kept only when syntactically constant.
type Array struct {
	Elem Type
	Len  int // -1 when unknown
}

func (a *Array) isType() {}

func (a *Array) String() string {
	if a.Len >= 0 {
		return fmt.Sprintf("[%s; %d]", a.Elem, a.Len)
	}
	return "[" + a.Elem.String() + "; _]"
}

// Fn is a function type (used for closures and fn pointers).
type Fn struct {
	Params []Type
	Ret    Type
}

func (f *Fn) isType() {}

func (f *Fn) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.String()
	}
	return "fn(" + strings.Join(parts, ", ") + ") -> " + f.Ret.String()
}

// Unknown is the bottom of our lattice: a type we could not determine
// (unresolved generic, inference failure). Analyses treat it conservatively.
type Unknown struct{}

func (u *Unknown) isType() {}

func (u *Unknown) String() string { return "?" }

// Never is `!`.
type Never struct{}

func (n *Never) isType() {}

func (n *Never) String() string { return "!" }

// Shared singletons for common types.
var (
	UnitType    Type = &Prim{Kind: Unit}
	BoolType    Type = &Prim{Kind: Bool}
	I32Type     Type = &Prim{Kind: I32}
	USizeType   Type = &Prim{Kind: USize}
	U8Type      Type = &Prim{Kind: U8}
	F64Type     Type = &Prim{Kind: F64}
	StrType     Type = &Prim{Kind: Str}
	CharType    Type = &Prim{Kind: Char}
	UnknownType Type = &Unknown{}
	NeverType   Type = &Never{}
)

// NamedOf builds a Named type.
func NamedOf(name string, args ...Type) *Named { return &Named{Name: name, Args: args} }

// RefTo builds a shared reference type.
func RefTo(elem Type) *Ref { return &Ref{Elem: elem} }

// MutRefTo builds a mutable reference type.
func MutRefTo(elem Type) *Ref { return &Ref{Mut: true, Elem: elem} }

// Peel removes one layer of reference or raw pointer, returning the element
// type; it returns its input unchanged for other types.
func Peel(t Type) Type {
	switch t := t.(type) {
	case *Ref:
		return t.Elem
	case *RawPtr:
		return t.Elem
	default:
		return t
	}
}

// PeelAll removes every layer of references and raw pointers.
func PeelAll(t Type) Type {
	for {
		switch tt := t.(type) {
		case *Ref:
			t = tt.Elem
		case *RawPtr:
			t = tt.Elem
		default:
			return t
		}
	}
}

// IsPointerLike reports whether t is a reference or raw pointer.
func IsPointerLike(t Type) bool {
	switch t.(type) {
	case *Ref, *RawPtr:
		return true
	}
	return false
}

// smartPointers are std container types whose value owns a heap allocation
// reachable through it; dropping the container frees the pointee.
var smartPointers = map[string]bool{
	"Box": true, "Vec": true, "String": true, "VecDeque": true,
	"Rc": true, "Arc": true, "BTreeMap": true, "HashMap": true,
	"HashSet": true, "BTreeSet": true, "CString": true,
}

// IsOwningContainer reports whether a Named type owns heap memory that is
// freed on drop.
func IsOwningContainer(t Type) bool {
	n, ok := t.(*Named)
	return ok && smartPointers[n.Name]
}

// guardTypes are the lock-guard types returned by locking operations; their
// drop releases the lock.
var guardTypes = map[string]string{
	"MutexGuard":       "Mutex",
	"RwLockReadGuard":  "RwLock",
	"RwLockWriteGuard": "RwLock",
}

// IsLockGuard reports whether t is a lock guard and, if so, which lock type
// produced it.
func IsLockGuard(t Type) (lockType string, ok bool) {
	n, isNamed := t.(*Named)
	if !isNamed {
		return "", false
	}
	lt, ok := guardTypes[n.Name]
	return lt, ok
}

// IsLock reports whether t is a lock (Mutex or RwLock).
func IsLock(t Type) bool {
	n, ok := t.(*Named)
	return ok && (n.Name == "Mutex" || n.Name == "RwLock")
}

// copyPrims: all primitives are Copy.
//
// IsCopy reports whether values of t are copied rather than moved on
// assignment. Shared references and raw pointers are Copy; mutable
// references are treated as move (a reborrow-free approximation).
func IsCopy(t Type) bool {
	switch t := t.(type) {
	case *Prim:
		return t.Kind != Str // str is unsized, only behind refs anyway
	case *Ref:
		return !t.Mut
	case *RawPtr:
		return true
	case *Tuple:
		for _, e := range t.Elems {
			if !IsCopy(e) {
				return false
			}
		}
		return true
	case *Array:
		return IsCopy(t.Elem)
	case *Named:
		switch t.Name {
		// Std types that are Copy or behave as Copy for our analyses.
		case "Ordering", "Duration", "Instant", "NonNull", "PhantomData":
			return true
		}
		return false
	case *Never:
		return true
	default:
		return false
	}
}

// Equal reports structural type equality, with Unknown equal only to
// Unknown.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case *Prim:
		b, ok := b.(*Prim)
		return ok && a.Kind == b.Kind
	case *Named:
		bn, ok := b.(*Named)
		if !ok || a.Name != bn.Name || len(a.Args) != len(bn.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], bn.Args[i]) {
				return false
			}
		}
		return true
	case *Ref:
		br, ok := b.(*Ref)
		return ok && a.Mut == br.Mut && Equal(a.Elem, br.Elem)
	case *RawPtr:
		bp, ok := b.(*RawPtr)
		return ok && a.Mut == bp.Mut && Equal(a.Elem, bp.Elem)
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(a.Elems) != len(bt.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], bt.Elems[i]) {
				return false
			}
		}
		return true
	case *Slice:
		bs, ok := b.(*Slice)
		return ok && Equal(a.Elem, bs.Elem)
	case *Array:
		ba, ok := b.(*Array)
		return ok && a.Len == ba.Len && Equal(a.Elem, ba.Elem)
	case *Fn:
		bf, ok := b.(*Fn)
		if !ok || len(a.Params) != len(bf.Params) {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], bf.Params[i]) {
				return false
			}
		}
		return Equal(a.Ret, bf.Ret)
	case *Unknown:
		_, ok := b.(*Unknown)
		return ok
	case *Never:
		_, ok := b.(*Never)
		return ok
	default:
		return false
	}
}
