package lower

import (
	"testing"

	"rustprobe/internal/corpus"
	"rustprobe/internal/mir"
)

// TestAllCorpusBodiesValidate lowers every corpus group and runs the MIR
// validator over every body: lowering must only ever produce well-formed
// MIR.
func TestAllCorpusBodiesValidate(t *testing.T) {
	for _, group := range []corpus.Group{corpus.GroupDetectorEval, corpus.GroupPatterns, corpus.GroupUnsafe, corpus.GroupApps} {
		prog, diags, err := corpus.Load(group)
		if err != nil {
			t.Fatalf("%s: %v", group, err)
		}
		bodies := Program(prog, diags)
		for name, body := range bodies {
			if errs := mir.Validate(body); len(errs) != 0 {
				t.Errorf("%s/%s: invalid MIR:\n  %v\n%s", group, name, errs, body)
			}
		}
	}
}

// TestStorageLiveDeadBalance: in every corpus body, each non-arg,
// non-static local with a StorageLive also gets at least one StorageDead
// on some path (drop elaboration never leaks storage markers), and vice
// versa.
func TestStorageLiveDeadBalance(t *testing.T) {
	prog, diags, err := corpus.Load(corpus.GroupPatterns)
	if err != nil {
		t.Fatal(err)
	}
	bodies := Program(prog, diags)
	for name, body := range bodies {
		lives := map[mir.LocalID]bool{}
		deads := map[mir.LocalID]bool{}
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				switch st := st.(type) {
				case mir.StorageLive:
					lives[st.Local] = true
				case mir.StorageDead:
					deads[st.Local] = true
				}
			}
		}
		for l := range deads {
			if !lives[l] && !body.Local(l).IsArg {
				t.Errorf("%s: local %s dies without StorageLive", name, body.Local(l))
			}
		}
		// Locals that become live must die somewhere unless control never
		// reaches a scope exit (diverging fns); tolerate up to the
		// function's diverging paths by only checking when a Return is
		// reachable.
		hasReturn := false
		for _, blk := range body.Blocks {
			if _, ok := blk.Term.(mir.Return); ok {
				hasReturn = true
			}
		}
		if !hasReturn {
			continue
		}
		for l := range lives {
			if !deads[l] {
				t.Errorf("%s: local %s made live but never dead", name, body.Local(l))
			}
		}
	}
}

// TestLoweringDeterministic: lowering the same corpus twice produces
// byte-identical MIR (no map-iteration nondeterminism anywhere in the
// pipeline).
func TestLoweringDeterministic(t *testing.T) {
	render := func() map[string]string {
		prog, diags, err := corpus.Load(corpus.GroupAll)
		if err != nil {
			t.Fatal(err)
		}
		bodies := Program(prog, diags)
		out := map[string]string{}
		for name, b := range bodies {
			out[name] = b.String()
		}
		return out
	}
	a, b := render(), render()
	if len(a) != len(b) {
		t.Fatalf("body counts differ: %d vs %d", len(a), len(b))
	}
	for name, s := range a {
		if b[name] != s {
			t.Errorf("%s lowered differently across runs", name)
		}
	}
}
