package lower

import (
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// exprPath renders a receiver expression as a stable source-level path
// ("client", "self.proposed", "(*ptr).field") used as lock identity by the
// double-lock detector; it returns "" for receivers that are not simple
// paths.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.PathExpr:
		return strings.Join(e.Segments, "::")
	case *ast.FieldExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Name
	case *ast.UnaryExpr:
		if e.Op == ast.UnDeref {
			return exprPath(e.X)
		}
	case *ast.BorrowExpr:
		return exprPath(e.X)
	case *ast.MethodCallExpr:
		// client.inner().lock(): identity includes the accessor chain.
		base := exprPath(e.Recv)
		if base == "" {
			return ""
		}
		return base + "." + e.Name + "()"
	case *ast.IndexExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	}
	return ""
}

// emitCall appends a Call terminator writing to a fresh temp and continues
// in a new block; it returns the destination operand.
func (b *builder) emitCall(callee string, def *hir.FuncDef, intr mir.Intrinsic, args []mir.Operand, retTy types.Type, recvPath string, sp source.Span) (mir.Operand, types.Type) {
	dest := b.newTemp(retTy, sp)
	next := b.body.NewBlock()
	b.setTerm(mir.Call{
		Callee:    callee,
		Def:       def,
		Intrinsic: intr,
		Args:      args,
		Dest:      mir.PlaceOf(dest),
		Target:    next.ID,
		Span:      sp,
		RecvPath:  recvPath,
	})
	b.startBlock(next)
	return b.operandFor(mir.PlaceOf(dest), retTy), retTy
}

// lowerCall lowers free-function and path calls: user functions, enum
// variant constructors, and modeled std functions.
func (b *builder) lowerCall(e *ast.CallExpr) (mir.Operand, types.Type) {
	pe, isPath := ast.Unparen(e.Fn).(*ast.PathExpr)
	if !isPath {
		// Calling a closure or fn-pointer value.
		b.lowerExpr(e.Fn)
		args := b.lowerArgs(e.Args)
		return b.emitCall("<indirect>", nil, mir.IntrinsicNone, args, types.UnknownType, "", e.Sp)
	}
	name := pe.Name()

	// Enum variant constructors: Some(x), Ok(x), Err(x), user variants.
	if ctor, ok := b.variantCtor(pe, e.Args); ok {
		return ctor()
	}

	// Struct tuple constructors: Pair(1, s).
	if sd, ok := b.prog.Structs[name]; ok && sd.IsTuple {
		args := b.lowerArgs(e.Args)
		ty := types.Type(types.NamedOf(name))
		tmp := b.newTemp(ty, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: mir.AggStruct, Name: name, Ops: args}, Span: e.Sp})
		return b.operandFor(mir.PlaceOf(tmp), ty), ty
	}

	qual := strings.Join(pe.Segments, "::")
	short := qual
	if len(pe.Segments) >= 2 {
		short = pe.Segments[len(pe.Segments)-2] + "::" + name
	}

	// mem::drop / drop: an explicit Drop terminator — the §6.1 fix idiom.
	if short == "mem::drop" || (qual == "drop" && len(e.Args) == 1) {
		return b.lowerExplicitDrop(e)
	}
	// mem::forget: suppress the drop without running it.
	if short == "mem::forget" || qual == "forget" {
		if len(e.Args) == 1 {
			op, _ := b.lowerExpr(e.Args[0])
			if pl, ok := mir.OperandPlace(op); ok {
				b.markMoved(pl)
			}
		}
		return nil, types.UnitType
	}

	// Known std constructors and functions.
	if intr, retFn, ok := stdFunction(short, qual); ok {
		args := b.lowerArgs(e.Args)
		genArg := types.Type(types.UnknownType)
		if len(pe.Generics) == 1 {
			genArg = b.convertType(pe.Generics[0])
		}
		ret := retFn(b, args, genArg)
		return b.emitCall(short, nil, intr, args, ret, exprPath(argExpr(e.Args, 0)), e.Sp)
	}

	// User function.
	if def, ok := b.prog.Funcs[qual]; ok {
		args := b.lowerArgs(e.Args)
		return b.emitCall(qual, def, mir.IntrinsicNone, args, def.Ret, "", e.Sp)
	}
	if def, ok := b.prog.Funcs[short]; ok {
		args := b.lowerArgs(e.Args)
		return b.emitCall(short, def, mir.IntrinsicNone, args, def.Ret, "", e.Sp)
	}
	if def, ok := b.prog.Funcs[name]; ok {
		args := b.lowerArgs(e.Args)
		return b.emitCall(name, def, mir.IntrinsicNone, args, def.Ret, "", e.Sp)
	}

	// Unknown external function.
	args := b.lowerArgs(e.Args)
	return b.emitCall(qual, nil, mir.IntrinsicNone, args, types.UnknownType, "", e.Sp)
}

func argExpr(args []ast.Expr, i int) ast.Expr {
	if i < len(args) {
		return args[i]
	}
	return nil
}

func (b *builder) lowerArgs(args []ast.Expr) []mir.Operand {
	var out []mir.Operand
	for _, a := range args {
		op, _ := b.lowerExpr(a)
		if op == nil {
			op = mir.Const{Text: "()", Ty: types.UnitType}
		}
		out = append(out, op)
	}
	return out
}

// variantCtor recognizes enum variant constructor calls.
func (b *builder) variantCtor(pe *ast.PathExpr, argExprs []ast.Expr) (func() (mir.Operand, types.Type), bool) {
	name := pe.Name()
	build := func(enumName, variant string, resTy func([]types.Type) types.Type) func() (mir.Operand, types.Type) {
		return func() (mir.Operand, types.Type) {
			var ops []mir.Operand
			var tys []types.Type
			for _, a := range argExprs {
				op, ty := b.lowerExpr(a)
				ops = append(ops, op)
				tys = append(tys, ty)
			}
			ty := resTy(tys)
			tmp := b.newTemp(ty, pe.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{
				Kind: mir.AggVariant, Name: enumName + "::" + variant, Ops: ops,
			}, Span: pe.Sp})
			return b.operandFor(mir.PlaceOf(tmp), ty), ty
		}
	}
	first := func(tys []types.Type) types.Type {
		if len(tys) > 0 {
			return tys[0]
		}
		return types.UnknownType
	}
	switch name {
	case "Some":
		return build("Option", "Some", func(tys []types.Type) types.Type {
			return types.NamedOf("Option", first(tys))
		}), true
	case "Ok":
		return build("Result", "Ok", func(tys []types.Type) types.Type {
			return types.NamedOf("Result", first(tys), types.UnknownType)
		}), true
	case "Err":
		return build("Result", "Err", func(tys []types.Type) types.Type {
			return types.NamedOf("Result", types.UnknownType, first(tys))
		}), true
	}
	if ed, ok := b.prog.VariantOwner[name]; ok {
		// Qualified form Enum::Variant or bare Variant.
		if len(pe.Segments) == 1 || (len(pe.Segments) >= 2 && pe.Segments[len(pe.Segments)-2] == ed.Name) {
			return build(ed.Name, name, func([]types.Type) types.Type {
				return types.NamedOf(ed.Name)
			}), true
		}
	}
	return nil, false
}

// lowerExplicitDrop lowers `drop(x)` / `mem::drop(x)` to a Drop terminator.
func (b *builder) lowerExplicitDrop(e *ast.CallExpr) (mir.Operand, types.Type) {
	if len(e.Args) != 1 {
		return nil, types.UnitType
	}
	op, ty := b.lowerExpr(e.Args[0])
	pl, ok := mir.OperandPlace(op)
	if !ok {
		return nil, types.UnitType
	}
	// The value moves into drop(): its scope-end drop is suppressed and
	// the destructor runs here instead.
	b.markMoved(pl)
	if !needsDrop(ty) {
		return nil, types.UnitType
	}
	next := b.body.NewBlock()
	b.setTerm(mir.Drop{Place: pl, Target: next.ID, Span: e.Sp})
	b.startBlock(next)
	return nil, types.UnitType
}

// retFn computes a modeled std function's return type from its lowered
// arguments and an optional explicit generic argument.
type retFn func(b *builder, args []mir.Operand, genArg types.Type) types.Type

func retConst(t types.Type) retFn {
	return func(*builder, []mir.Operand, types.Type) types.Type { return t }
}

func retWrap(name string) retFn {
	return func(b *builder, args []mir.Operand, _ types.Type) types.Type {
		inner := types.Type(types.UnknownType)
		if len(args) > 0 {
			inner = b.operandType(args[0])
		}
		return types.NamedOf(name, inner)
	}
}

// operandType recovers the type of an operand.
func (b *builder) operandType(op mir.Operand) types.Type {
	switch op := op.(type) {
	case mir.Copy:
		return b.placeType(op.Place)
	case mir.Move:
		return b.placeType(op.Place)
	case mir.Const:
		return op.Ty
	}
	return types.UnknownType
}

// placeType computes the type of a place by walking projections.
func (b *builder) placeType(p mir.Place) types.Type {
	t := b.body.Local(p.Local).Ty
	for _, pr := range p.Proj {
		switch pr := pr.(type) {
		case mir.DerefProj:
			t = derefOnce(t)
		case mir.FieldProj:
			if pr.Ty != nil {
				t = pr.Ty
			} else {
				t = b.fieldType(t, pr.Name)
			}
		case mir.IndexProj:
			t = elemType(t)
		}
	}
	return t
}

// derefOnce peels one pointer/smart-pointer layer.
func derefOnce(t types.Type) types.Type {
	switch t := t.(type) {
	case *types.Ref:
		return t.Elem
	case *types.RawPtr:
		return t.Elem
	case *types.Named:
		switch t.Name {
		case "Box", "Arc", "Rc", "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard", "Ref", "RefMut":
			return t.Arg(0)
		}
	}
	return types.UnknownType
}

// stdFunction models well-known free/associated std functions.
func stdFunction(short, qual string) (mir.Intrinsic, retFn, bool) {
	switch short {
	case "Box::new":
		return mir.IntrinsicBoxNew, retWrap("Box"), true
	case "Arc::new":
		return mir.IntrinsicBoxNew, retWrap("Arc"), true
	case "Rc::new":
		return mir.IntrinsicBoxNew, retWrap("Rc"), true
	case "Mutex::new":
		return mir.IntrinsicBoxNew, retWrap("Mutex"), true
	case "RwLock::new":
		return mir.IntrinsicBoxNew, retWrap("RwLock"), true
	case "RefCell::new":
		return mir.IntrinsicBoxNew, retWrap("RefCell"), true
	case "Cell::new":
		return mir.IntrinsicBoxNew, retWrap("Cell"), true
	case "Vec::new", "Vec::with_capacity":
		return mir.IntrinsicBoxNew, retConst(types.NamedOf("Vec", types.UnknownType)), true
	case "String::new", "String::from", "String::from_utf8_unchecked":
		return mir.IntrinsicBoxNew, retConst(types.NamedOf("String")), true
	case "Arc::clone", "Rc::clone":
		return mir.IntrinsicArcClone, func(b *builder, args []mir.Operand, _ types.Type) types.Type {
			if len(args) > 0 {
				return types.Peel(b.operandType(args[0]))
			}
			return types.UnknownType
		}, true
	case "ptr::read":
		return mir.IntrinsicPtrRead, func(b *builder, args []mir.Operand, gen types.Type) types.Type {
			if _, unknown := gen.(*types.Unknown); !unknown {
				return gen
			}
			if len(args) > 0 {
				return derefOnce(b.operandType(args[0]))
			}
			return types.UnknownType
		}, true
	case "ptr::write", "ptr::copy", "ptr::copy_nonoverlapping":
		return mir.IntrinsicPtrWrite, retConst(types.UnitType), true
	case "ptr::null", "ptr::null_mut":
		mut := short == "ptr::null_mut"
		return mir.IntrinsicNone, retConst(&types.RawPtr{Mut: mut, Elem: types.UnknownType}), true
	case "Box::into_raw", "Arc::into_raw", "CString::into_raw":
		return mir.IntrinsicIntoRaw, func(b *builder, args []mir.Operand, _ types.Type) types.Type {
			inner := types.Type(types.UnknownType)
			if len(args) > 0 {
				inner = derefOnce(b.operandType(args[0]))
			}
			return &types.RawPtr{Mut: true, Elem: inner}
		}, true
	case "Box::from_raw", "Arc::from_raw", "CString::from_raw":
		owner := strings.SplitN(short, "::", 2)[0]
		return mir.IntrinsicFromRaw, func(b *builder, args []mir.Operand, _ types.Type) types.Type {
			inner := types.Type(types.UnknownType)
			if len(args) > 0 {
				inner = derefOnce(b.operandType(args[0]))
			}
			return types.NamedOf(owner, inner)
		}, true
	case "Vec::from_raw_parts":
		return mir.IntrinsicFromRaw, retConst(types.NamedOf("Vec", types.UnknownType)), true
	case "mem::transmute":
		return mir.IntrinsicTransmute, func(_ *builder, _ []mir.Operand, gen types.Type) types.Type { return gen }, true
	case "mem::uninitialized", "MaybeUninit::uninit":
		return mir.IntrinsicAlloc, func(_ *builder, _ []mir.Operand, gen types.Type) types.Type { return gen }, true
	case "thread::spawn":
		return mir.IntrinsicSpawn, retConst(types.NamedOf("JoinHandle", types.UnknownType)), true
	case "mem::size_of", "size_of":
		return mir.IntrinsicNone, retConst(types.USizeType), true
	case "channel::unbounded", "mpsc::channel", "mpsc::sync_channel":
		return mir.IntrinsicNone, retConst(&types.Tuple{Elems: []types.Type{
			types.NamedOf("Sender", types.UnknownType),
			types.NamedOf("Receiver", types.UnknownType),
		}}), true
	}
	switch qual {
	case "alloc":
		return mir.IntrinsicAlloc, retConst(&types.RawPtr{Mut: true, Elem: types.UnknownType}), true
	case "dealloc", "free":
		return mir.IntrinsicDealloc, retConst(types.UnitType), true
	}
	return mir.IntrinsicNone, nil, false
}

// lowerMethodCall lowers `recv.m(args)` including the modeled std methods
// that matter to the detectors (lock/read/write, unwrap, clone, as_ptr,
// get_unchecked, Condvar::wait, channel ops).
func (b *builder) lowerMethodCall(e *ast.MethodCallExpr) (mir.Operand, types.Type) {
	recvPath := exprPath(e.Recv)

	// as_ptr/as_mut_ptr: a pointer *into* the receiver's storage — lower
	// as AddrOf so points-to ties the pointer to the receiver place, which
	// is what makes Figure 7's UAF detectable.
	if e.Name == "as_ptr" || e.Name == "as_mut_ptr" {
		pl, pty, ok := b.lowerPlace(e.Recv)
		if !ok {
			op, vty := b.lowerExpr(e.Recv)
			tmp := b.newTemp(vty, e.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
			pl, pty = mir.PlaceOf(tmp), vty
		}
		mut := e.Name == "as_mut_ptr"
		ptrTy := types.Type(&types.RawPtr{Mut: mut, Elem: types.PeelAll(pty)})
		dest := b.newTemp(ptrTy, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(dest), Rvalue: mir.AddrOf{Mut: mut, Place: pl}, Span: e.Sp})
		return mir.Copy{Place: mir.PlaceOf(dest)}, ptrTy
	}

	// Evaluate the receiver. Methods taking &self keep the receiver place
	// alive; we lower the receiver as a place when possible so projections
	// and points-to stay precise.
	var recvOp mir.Operand
	var recvTy types.Type
	if pl, pty, ok := b.lowerPlace(e.Recv); ok {
		recvTy = pty
		recvOp = mir.Copy{Place: pl} // borrow-like use; move decided below
	} else {
		recvOp, recvTy = b.lowerExpr(e.Recv)
	}

	base := autoDeref(recvTy)
	baseName := ""
	if n, ok := base.(*types.Named); ok {
		baseName = n.Name
	}

	// Modeled std methods.
	if intr, ret, handled := b.stdMethod(e.Name, base, baseName, recvOp); handled {
		args := append([]mir.Operand{recvOp}, b.lowerArgs(e.Args)...)
		callee := baseName + "::" + e.Name
		if baseName == "" {
			callee = e.Name
		}
		// A by-value consuming method moves the receiver.
		if consumesReceiver(e.Name) {
			if pl, ok := mir.OperandPlace(recvOp); ok && !types.IsCopy(recvTy) {
				b.markMoved(pl)
				args[0] = mir.Move{Place: pl}
			}
		}
		return b.emitCall(callee, nil, intr, args, ret, recvPath, e.Sp)
	}

	// User-defined method.
	if def := b.lookupUserMethod(base, e.Name); def != nil {
		args := append([]mir.Operand{recvOp}, b.lowerArgs(e.Args)...)
		if def.SelfKind == ast.SelfValue {
			if pl, ok := mir.OperandPlace(recvOp); ok && !types.IsCopy(recvTy) {
				b.markMoved(pl)
				args[0] = mir.Move{Place: pl}
			}
		}
		ret := instantiateRet(def.Ret, base)
		return b.emitCall(def.Qualified, def, mir.IntrinsicNone, args, ret, recvPath, e.Sp)
	}

	// Unknown method.
	args := append([]mir.Operand{recvOp}, b.lowerArgs(e.Args)...)
	callee := e.Name
	if baseName != "" {
		callee = baseName + "::" + e.Name
	}
	return b.emitCall(callee, nil, mir.IntrinsicNone, args, types.UnknownType, recvPath, e.Sp)
}

// instantiateRet substitutes the receiver's single type argument for a bare
// generic parameter name in the return type (Queue<T>::pop -> Option<T>).
func instantiateRet(ret types.Type, base types.Type) types.Type {
	bn, ok := base.(*types.Named)
	if !ok || len(bn.Args) != 1 {
		return ret
	}
	arg := bn.Args[0]
	var subst func(types.Type) types.Type
	subst = func(t types.Type) types.Type {
		switch t := t.(type) {
		case *types.Named:
			if len(t.Args) == 0 && len(t.Name) == 1 && t.Name[0] >= 'A' && t.Name[0] <= 'Z' {
				return arg
			}
			args := make([]types.Type, len(t.Args))
			for i, a := range t.Args {
				args[i] = subst(a)
			}
			return &types.Named{Name: t.Name, Args: args}
		case *types.Ref:
			return &types.Ref{Mut: t.Mut, Elem: subst(t.Elem)}
		case *types.RawPtr:
			return &types.RawPtr{Mut: t.Mut, Elem: subst(t.Elem)}
		default:
			return t
		}
	}
	return subst(ret)
}

// autoDeref peels references and deref-coercing smart pointers to find the
// method-receiver base type, as rustc's autoderef does.
func autoDeref(t types.Type) types.Type {
	for i := 0; i < 8; i++ {
		switch tt := t.(type) {
		case *types.Ref:
			t = tt.Elem
		case *types.RawPtr:
			t = tt.Elem
		case *types.Named:
			switch tt.Name {
			case "Arc", "Rc", "Box", "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard", "Ref", "RefMut":
				// Deref only when it exposes a locking/base type; keep
				// guards and containers as base when the inner type is
				// unknown.
				inner := tt.Arg(0)
				if _, unknown := inner.(*types.Unknown); unknown {
					return tt
				}
				t = inner
			default:
				return tt
			}
		default:
			return t
		}
	}
	return t
}

func consumesReceiver(method string) bool {
	switch method {
	case "unwrap", "expect", "into_iter", "into", "join", "to_owned", "take", "into_inner":
		return true
	}
	return false
}

// stdMethod models method intrinsics; handled reports recognition.
func (b *builder) stdMethod(name string, base types.Type, baseName string, recvOp mir.Operand) (mir.Intrinsic, types.Type, bool) {
	bn, _ := base.(*types.Named)
	argOf := func(i int) types.Type {
		if bn != nil {
			return bn.Arg(i)
		}
		return types.UnknownType
	}
	switch name {
	case "lock":
		if baseName == "Mutex" || baseName == "" {
			return mir.IntrinsicLock, types.NamedOf("MutexGuard", argOf(0)), true
		}
	case "read":
		if baseName == "RwLock" {
			return mir.IntrinsicRead, types.NamedOf("RwLockReadGuard", argOf(0)), true
		}
	case "write":
		if baseName == "RwLock" {
			return mir.IntrinsicWrite, types.NamedOf("RwLockWriteGuard", argOf(0)), true
		}
	case "try_lock":
		if baseName == "Mutex" || baseName == "" {
			return mir.IntrinsicTryLock, types.NamedOf("TryLockResult", types.NamedOf("MutexGuard", argOf(0))), true
		}
	case "try_read":
		if baseName == "RwLock" {
			return mir.IntrinsicTryLock, types.NamedOf("TryLockResult", types.NamedOf("RwLockReadGuard", argOf(0))), true
		}
	case "try_write":
		if baseName == "RwLock" {
			return mir.IntrinsicTryLock, types.NamedOf("TryLockResult", types.NamedOf("RwLockWriteGuard", argOf(0))), true
		}
	case "borrow":
		if baseName == "RefCell" {
			return mir.IntrinsicLock, types.NamedOf("Ref", argOf(0)), true
		}
	case "borrow_mut":
		if baseName == "RefCell" {
			return mir.IntrinsicLock, types.NamedOf("RefMut", argOf(0)), true
		}
	case "unwrap", "expect":
		ty := b.operandType(recvOp)
		inner := unwrapResultish(ty)
		if _, unknown := inner.(*types.Unknown); unknown {
			// unwrap on a non-Result/Option (e.g. a guard from our lock
			// model): forward the receiver type unchanged.
			inner = ty
		}
		return mir.IntrinsicUnwrap, inner, true
	case "clone":
		ty := b.operandType(recvOp)
		peeled := types.Peel(ty)
		if n, ok := peeled.(*types.Named); ok && (n.Name == "Arc" || n.Name == "Rc") {
			return mir.IntrinsicArcClone, peeled, true
		}
		return mir.IntrinsicClone, peeled, true
	case "wait":
		if baseName == "Condvar" {
			return mir.IntrinsicCondvarWait, types.UnknownType, true
		}
	case "notify_one", "notify_all":
		if baseName == "Condvar" || baseName == "" {
			return mir.IntrinsicNone, types.UnitType, true
		}
	case "send":
		if baseName == "Sender" || baseName == "SyncSender" {
			return mir.IntrinsicChanSend, types.NamedOf("Result", types.UnitType, types.UnknownType), true
		}
	case "recv":
		if baseName == "Receiver" {
			return mir.IntrinsicChanRecv, types.NamedOf("Result", argOf(0), types.UnknownType), true
		}
	case "get_unchecked", "get_unchecked_mut":
		return mir.IntrinsicGetUnchecked, types.RefTo(elemType(base)), true
	case "spawn":
		if baseName == "Builder" || baseName == "ThreadPool" {
			return mir.IntrinsicSpawn, types.UnknownType, true
		}
	case "load":
		if strings.HasPrefix(baseName, "Atomic") {
			return mir.IntrinsicNone, atomicValueType(baseName), true
		}
	case "store", "fetch_add", "fetch_sub":
		if strings.HasPrefix(baseName, "Atomic") {
			return mir.IntrinsicNone, atomicValueType(baseName), true
		}
	case "compare_and_swap", "compare_exchange", "swap":
		if strings.HasPrefix(baseName, "Atomic") {
			return mir.IntrinsicNone, atomicValueType(baseName), true
		}
	case "len", "capacity":
		return mir.IntrinsicNone, types.USizeType, true
	case "is_empty", "is_some", "is_none", "is_ok", "is_err", "contains", "contains_key":
		return mir.IntrinsicNone, types.BoolType, true
	case "push", "push_back", "push_front", "insert", "set_len":
		if baseName == "Vec" || baseName == "VecDeque" || baseName == "HashMap" || baseName == "BTreeMap" || baseName == "String" || baseName == "HashSet" {
			return mir.IntrinsicNone, types.UnitType, true
		}
	case "pop":
		if baseName == "Vec" || baseName == "VecDeque" {
			return mir.IntrinsicNone, types.NamedOf("Option", elemType(base)), true
		}
	case "iter", "iter_mut", "drain":
		return mir.IntrinsicNone, base, true
	case "as_ref", "as_mut", "as_slice", "as_mut_slice", "as_str", "deref":
		return mir.IntrinsicNone, types.RefTo(types.PeelAll(base)), true
	case "offset", "add", "sub":
		if _, isPtr := b.operandType(recvOp).(*types.RawPtr); isPtr {
			return mir.IntrinsicNone, b.operandType(recvOp), true
		}
	}
	return mir.IntrinsicNone, nil, false
}

func atomicValueType(atomicName string) types.Type {
	switch atomicName {
	case "AtomicBool":
		return types.BoolType
	case "AtomicUsize":
		return types.USizeType
	default:
		return types.I32Type
	}
}

// lookupUserMethod resolves a method against the program registry with a
// tolerant autoderef: Named base name first, then wrapper-arg names.
func (b *builder) lookupUserMethod(base types.Type, name string) *hir.FuncDef {
	if n, ok := base.(*types.Named); ok {
		if def := b.prog.LookupMethod(n.Name, name); def != nil {
			return def
		}
		for _, a := range n.Args {
			if an, ok := a.(*types.Named); ok {
				if def := b.prog.LookupMethod(an.Name, name); def != nil {
					return def
				}
			}
		}
	}
	// Receiver type unknown: match a uniquely named method anywhere.
	var found *hir.FuncDef
	count := 0
	for _, def := range b.prog.Funcs {
		if def.Name == name && def.IsMethod() {
			found = def
			count++
		}
	}
	if count == 1 {
		return found
	}
	return nil
}

// lowerMacro models the common expression macros.
func (b *builder) lowerMacro(e *ast.MacroCallExpr) (mir.Operand, types.Type) {
	switch e.Name {
	case "vec":
		args := b.lowerArgs(e.Args)
		elem := types.Type(types.UnknownType)
		if len(args) > 0 {
			elem = b.operandType(args[0])
		}
		ty := types.Type(types.NamedOf("Vec", elem))
		return b.emitCall("vec!", nil, mir.IntrinsicBoxNew, args, ty, "", e.Sp)
	case "panic", "unreachable", "todo", "unimplemented":
		b.lowerArgs(e.Args)
		b.setTerm(mir.Unreachable{Span: e.Sp})
		b.terminated = true
		return mir.Const{Text: "!", Ty: types.NeverType}, types.NeverType
	case "format":
		b.lowerArgs(e.Args)
		return mir.Const{Text: "format!", Ty: types.NamedOf("String")}, types.NamedOf("String")
	case "matches":
		b.lowerArgs(e.Args)
		return mir.Const{Text: "matches!", Ty: types.BoolType}, types.BoolType
	default:
		// println!, assert!, write!, custom macros: evaluate arguments
		// for effect, produce unit.
		b.lowerArgs(e.Args)
		return nil, types.UnitType
	}
}
