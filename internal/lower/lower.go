// Package lower translates resolved AST function bodies into MIR. The
// translation performs drop elaboration (every owned local gets a Drop and
// StorageDead at the end of its scope, in reverse declaration order),
// tracks ownership moves so moved-out locals are not double-dropped, and
// implements rustc's temporary-lifetime rule for match scrutinees and if
// conditions — the rule whose misunderstanding causes the double-lock bugs
// of §6.1.
package lower

import (
	"fmt"

	"rustprobe/internal/hir"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// Program lowers every function with a body and returns bodies keyed by
// qualified name. Closures become extra bodies named "<owner>::closure#N".
func Program(prog *hir.Program, diags *source.Diagnostics) map[string]*mir.Body {
	out := make(map[string]*mir.Body, len(prog.Funcs))
	for _, fd := range prog.SortedFuncs() {
		if fd.Syntax == nil || fd.Syntax.Body == nil {
			continue
		}
		lowerInto(prog, diags, fd, out)
	}
	return out
}

// ProgramFiltered lowers only the functions keep selects (closures ride
// with their owner). Incremental sessions use it to re-lower just the
// functions whose source changed, merging the result with bodies reused
// from the previous round.
func ProgramFiltered(prog *hir.Program, diags *source.Diagnostics, keep func(qualified string) bool) map[string]*mir.Body {
	out := map[string]*mir.Body{}
	for _, fd := range prog.SortedFuncs() {
		if fd.Syntax == nil || fd.Syntax.Body == nil || !keep(fd.Qualified) {
			continue
		}
		lowerInto(prog, diags, fd, out)
	}
	return out
}

// Func lowers a single function (plus its closures) and returns its body.
func Func(prog *hir.Program, diags *source.Diagnostics, fd *hir.FuncDef) *mir.Body {
	out := map[string]*mir.Body{}
	lowerInto(prog, diags, fd, out)
	return out[fd.Qualified]
}

func lowerInto(prog *hir.Program, diags *source.Diagnostics, fd *hir.FuncDef, out map[string]*mir.Body) {
	b := newBuilder(prog, diags, fd, out)
	body := b.lowerFn()
	out[fd.Qualified] = body
}

// scopeKind classifies drop scopes.
type scopeKind int

const (
	scopeFn scopeKind = iota
	scopeBlock
	scopeStmt // temporaries of one statement
	scopeTail // match-scrutinee / if-condition temporaries (live to join)
	scopeLoop // loop body boundary for break/continue unwinding
	scopeArm  // match arm / if branch
)

type scope struct {
	kind   scopeKind
	locals []mir.LocalID // declaration order; dropped in reverse
}

type loopCtx struct {
	label      string
	breakBlock mir.BlockID
	contBlock  mir.BlockID
	result     mir.LocalID // destination of `break value` for loop exprs
	scopeDepth int         // scopes above (and including) the loop scope
}

type builder struct {
	prog  *hir.Program
	diags *source.Diagnostics
	fd    *hir.FuncDef
	body  *mir.Body
	out   map[string]*mir.Body

	cur       *mir.Block
	scopes    []*scope
	vars      []map[string]mir.LocalID // lexical frames for name lookup
	loops     []*loopCtx
	moved     map[mir.LocalID]bool // locals whose value has been moved out
	statics   map[string]mir.LocalID
	exitBlock *mir.Block
	nclosures int

	// terminated is set after return/break/continue so trailing lowering
	// in the same block appends to a fresh unreachable block.
	terminated bool
}

func newBuilder(prog *hir.Program, diags *source.Diagnostics, fd *hir.FuncDef, out map[string]*mir.Body) *builder {
	return &builder{
		prog:    prog,
		diags:   diags,
		fd:      fd,
		out:     out,
		moved:   map[mir.LocalID]bool{},
		statics: map[string]mir.LocalID{},
	}
}

func (b *builder) lowerFn() *mir.Body {
	b.body = &mir.Body{Func: b.fd, Span: b.fd.Span}
	// Local 0: return place.
	b.body.NewLocal("", b.fd.Ret, false, b.fd.Span)
	b.cur = b.body.NewBlock()
	b.exitBlock = b.body.NewBlock()
	b.exitBlock.Term = mir.Return{Span: b.fd.Span}

	b.pushVarFrame()
	b.pushScope(scopeFn)

	// Arguments. By-value parameters are owned by the function and drop
	// at its end like any other local.
	fnScope := b.scopes[len(b.scopes)-1]
	for _, p := range b.fd.Params {
		l := b.body.NewLocal(p.Name, p.Ty, false, b.fd.Span)
		l.IsArg = true
		b.body.ArgCount++
		fnScope.locals = append(fnScope.locals, l.ID)
		if p.Name != "" {
			b.defineVar(p.Name, l.ID)
		}
		if p.Pat != nil {
			// Destructuring parameter pattern: bind sub-names to
			// projections of the argument.
			b.bindPattern(p.Pat, mir.PlaceOf(l.ID), p.Ty, false)
		}
	}

	astBody := b.fd.Syntax.Body
	op, ty := b.lowerBlock(astBody, astBody.Unsafety)
	if !b.terminated {
		if op != nil && !isUnit(ty) {
			b.emit(mir.Assign{Place: mir.PlaceOf(mir.ReturnLocal), Rvalue: mir.Use{X: op}, Span: astBody.Sp})
		}
		b.popScopeEmit(astBody.Sp)
		b.setTerm(mir.Goto{Target: b.exitBlock.ID, Span: astBody.Sp})
	} else {
		b.scopes = b.scopes[:len(b.scopes)-1]
	}
	b.popVarFrame()
	return b.body
}

func isUnit(t types.Type) bool {
	p, ok := t.(*types.Prim)
	return ok && p.Kind == types.Unit
}

// --- scope and variable plumbing -------------------------------------------

func (b *builder) pushScope(k scopeKind) *scope {
	s := &scope{kind: k}
	b.scopes = append(b.scopes, s)
	return s
}

// popScopeEmit pops the innermost scope, emitting Drop+StorageDead for its
// locals in reverse declaration order.
func (b *builder) popScopeEmit(sp source.Span) {
	s := b.scopes[len(b.scopes)-1]
	b.scopes = b.scopes[:len(b.scopes)-1]
	if !b.terminated {
		b.emitScopeExit(s, sp)
	}
}

func (b *builder) emitScopeExit(s *scope, sp source.Span) {
	for i := len(s.locals) - 1; i >= 0; i-- {
		id := s.locals[i]
		l := b.body.Local(id)
		if needsDrop(l.Ty) && !b.moved[id] {
			next := b.body.NewBlock()
			b.setTerm(mir.Drop{Place: mir.PlaceOf(id), Target: next.ID, Span: sp})
			b.cur = next
		}
		b.emit(mir.StorageDead{Local: id, Span: sp})
	}
}

// unwindTo emits scope exits for every scope deeper than depth without
// popping them (used by return/break/continue which jump out of scopes).
func (b *builder) unwindTo(depth int, sp source.Span) {
	for i := len(b.scopes) - 1; i >= depth; i-- {
		b.emitScopeExit(b.scopes[i], sp)
	}
}

func (b *builder) pushVarFrame() { b.vars = append(b.vars, map[string]mir.LocalID{}) }
func (b *builder) popVarFrame()  { b.vars = b.vars[:len(b.vars)-1] }

func (b *builder) defineVar(name string, id mir.LocalID) {
	b.vars[len(b.vars)-1][name] = id
}

func (b *builder) lookupVar(name string) (mir.LocalID, bool) {
	for i := len(b.vars) - 1; i >= 0; i-- {
		if id, ok := b.vars[i][name]; ok {
			return id, true
		}
	}
	return 0, false
}

// newNamed allocates a user variable local, registered in the innermost
// non-stmt scope (so let-bound variables outlive the statement).
func (b *builder) newNamed(name string, ty types.Type, sp source.Span) mir.LocalID {
	l := b.body.NewLocal(name, ty, false, sp)
	b.emit(mir.StorageLive{Local: l.ID, Span: sp})
	for i := len(b.scopes) - 1; i >= 0; i-- {
		k := b.scopes[i].kind
		if k != scopeStmt && k != scopeTail {
			b.scopes[i].locals = append(b.scopes[i].locals, l.ID)
			break
		}
	}
	b.defineVar(name, l.ID)
	return l.ID
}

// newTemp allocates a compiler temporary in the innermost scope.
func (b *builder) newTemp(ty types.Type, sp source.Span) mir.LocalID {
	l := b.body.NewLocal("", ty, true, sp)
	b.emit(mir.StorageLive{Local: l.ID, Span: sp})
	s := b.scopes[len(b.scopes)-1]
	s.locals = append(s.locals, l.ID)
	return l.ID
}

func (b *builder) emit(st mir.Statement) {
	if b.terminated {
		return
	}
	b.cur.Stmts = append(b.cur.Stmts, st)
}

func (b *builder) setTerm(t mir.Terminator) {
	if b.terminated {
		return
	}
	if b.cur.Term != nil {
		return
	}
	b.cur.Term = t
}

// startBlock begins lowering into blk, clearing the terminated flag.
func (b *builder) startBlock(blk *mir.Block) {
	b.cur = blk
	b.terminated = false
}

// needsDrop reports whether a type has drop glue in our model.
func needsDrop(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		switch t.Name {
		case "PhantomData", "Ordering", "NonNull", "Duration", "Instant":
			return false
		}
		return true
	case *types.Tuple:
		for _, e := range t.Elems {
			if needsDrop(e) {
				return true
			}
		}
		return false
	case *types.Array:
		return needsDrop(t.Elem)
	default:
		return false
	}
}

// markMoved records that a whole local's value moved out, suppressing its
// scope-end drop. Projections (moving a field) keep the parent's drop: our
// corpus never partially moves droppable structs.
func (b *builder) markMoved(p mir.Place) {
	if p.IsLocal() {
		b.moved[p.Local] = true
	}
}

// operandFor wraps a place read as Move or Copy according to its type, and
// records moves.
func (b *builder) operandFor(p mir.Place, ty types.Type) mir.Operand {
	if types.IsCopy(ty) {
		return mir.Copy{Place: p}
	}
	b.markMoved(p)
	return mir.Move{Place: p}
}

// staticLocal returns (allocating on first use) the pseudo-local standing
// for a static item; statics are never storage-dead.
func (b *builder) staticLocal(name string, ty types.Type) mir.LocalID {
	if id, ok := b.statics[name]; ok {
		return id
	}
	l := b.body.NewLocal("static "+name, ty, false, source.Span{})
	b.statics[name] = l.ID
	return l.ID
}

func (b *builder) closureName() string {
	b.nclosures++
	return fmt.Sprintf("%s::closure#%d", b.fd.Qualified, b.nclosures-1)
}
