package lower

import (
	"strings"
	"testing"
)

// TestFigure8MIRGolden pins the load-bearing structure of the Figure 8
// lowering — the MIR facts the double-lock diagnosis rests on. A full
// textual golden would be brittle; instead this asserts the exact event
// sequence along the buggy path.
func TestFigure8MIRGolden(t *testing.T) {
	bodies := lowerSrc(t, `
struct Inner { m: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }
fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`)
	b := body(t, bodies, "do_request")
	out := b.String()

	// The critical facts, in order of appearance in the rendered MIR:
	// read acquisition, write acquisition, the write guard's drop, and
	// only then the read guard's drop (at the match join).
	idx := func(sub string) int {
		i := strings.Index(out, sub)
		if i < 0 {
			t.Fatalf("MIR missing %q:\n%s", sub, out)
		}
		return i
	}
	readAt := idx("RwLock::read")
	writeAt := idx("RwLock::write")
	if readAt > writeAt {
		t.Errorf("read must precede write\n%s", out)
	}

	// The read guard that survives to the match join is whichever
	// read-guard-typed local actually gets a Drop terminator (the original
	// call destination is moved through unwrap and the tail-temp scope).
	writeGuardSeen := false
	readDrop := -1
	for _, l := range b.Locals {
		ty := l.Ty.String()
		if l.Name == "inner" && strings.Contains(ty, "RwLockWriteGuard") {
			writeGuardSeen = true
		}
		if !strings.Contains(ty, "RwLockReadGuard") {
			continue
		}
		needle := "drop(_" + strings.TrimPrefix(strings.Split(l.String(), "(")[0], "_")
		if i := strings.Index(out, needle); i >= 0 && i > readDrop {
			readDrop = i
		}
	}
	if !writeGuardSeen {
		t.Fatalf("write guard local missing\n%s", out)
	}
	if readDrop < 0 {
		t.Fatalf("read guard never dropped\n%s", out)
	}
	// The read guard's drop must come after the write acquisition in the
	// CFG text: it lives to the end of the match.
	if readDrop < writeAt {
		t.Errorf("read guard dropped before write acquisition: the bug's root cause is gone\n%s", out)
	}
}

// TestFigure6MIRGolden pins the invalid-free structure: alloc, cast, and
// a plain Assign through the raw pointer (not a ptr::write call).
func TestFigure6MIRGolden(t *testing.T) {
	bodies := lowerSrc(t, `
pub struct FILE { buf: Vec<u8> }
pub unsafe fn _fdopen() {
    let f = alloc(16) as *mut FILE;
    *f = FILE { buf: Vec::new() };
}
`)
	b := body(t, bodies, "_fdopen")
	out := b.String()
	for _, want := range []string{"= alloc(", "as *mut FILE", ".* = "} {
		if !strings.Contains(out, want) {
			t.Errorf("MIR missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ptr::write") {
		t.Errorf("buggy version must not contain ptr::write\n%s", out)
	}
}
