package lower

import (
	"strings"
	"testing"

	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

// lowerSrc parses, resolves and lowers src, returning all bodies.
func lowerSrc(t *testing.T, src string) map[string]*mir.Body {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := Program(prog, diags)
	if diags.HasErrors() {
		t.Fatalf("lowering errors:\n%s", diags.String())
	}
	return bodies
}

func body(t *testing.T, bodies map[string]*mir.Body, name string) *mir.Body {
	t.Helper()
	b, ok := bodies[name]
	if !ok {
		var names []string
		for n := range bodies {
			names = append(names, n)
		}
		t.Fatalf("no body %q; have %v", name, names)
	}
	return b
}

// collect returns all statements and terminators flattened.
func collect(b *mir.Body) (stmts []mir.Statement, terms []mir.Terminator) {
	for _, blk := range b.Blocks {
		stmts = append(stmts, blk.Stmts...)
		if blk.Term != nil {
			terms = append(terms, blk.Term)
		}
	}
	return
}

func TestLowerSimpleLet(t *testing.T) {
	bodies := lowerSrc(t, `fn f() { let x = 1; let y = x; }`)
	b := body(t, bodies, "f")
	stmts, _ := collect(b)
	var lives, deads int
	for _, s := range stmts {
		switch s.(type) {
		case mir.StorageLive:
			lives++
		case mir.StorageDead:
			deads++
		}
	}
	if lives == 0 || lives != deads {
		t.Errorf("StorageLive=%d StorageDead=%d; want equal and nonzero\n%s", lives, deads, b)
	}
}

func TestLowerDropElaboration(t *testing.T) {
	// v owns heap memory; it must be dropped exactly once at scope end.
	bodies := lowerSrc(t, `fn f() { let v = Vec::new(); }`)
	b := body(t, bodies, "f")
	_, terms := collect(b)
	drops := 0
	for _, tm := range terms {
		if _, ok := tm.(mir.Drop); ok {
			drops++
		}
	}
	if drops != 1 {
		t.Errorf("drops = %d, want 1\n%s", drops, b)
	}
}

func TestLowerMoveSuppressesDrop(t *testing.T) {
	bodies := lowerSrc(t, `
fn consume(v: Vec<u8>) {}
fn f() { let v = Vec::new(); consume(v); }
`)
	b := body(t, bodies, "f")
	// v moved into consume: caller must not drop it.
	for _, blk := range b.Blocks {
		if d, ok := blk.Term.(mir.Drop); ok {
			l := b.Local(d.Place.Local)
			if l.Name == "v" {
				t.Errorf("moved local v still dropped\n%s", b)
			}
		}
	}
}

func TestLowerExplicitDrop(t *testing.T) {
	bodies := lowerSrc(t, `fn f() { let v = Vec::new(); drop(v); other(); }`)
	b := body(t, bodies, "f")
	_, terms := collect(b)
	var dropIdx, callIdx = -1, -1
	for i, tm := range terms {
		switch tm := tm.(type) {
		case mir.Drop:
			if b.Local(tm.Place.Local).Name == "v" {
				dropIdx = i
			}
		case mir.Call:
			if tm.Callee == "other" {
				callIdx = i
			}
		}
	}
	if dropIdx == -1 {
		t.Fatalf("no explicit drop of v\n%s", b)
	}
	if callIdx == -1 || dropIdx > callIdx {
		t.Errorf("drop should precede call (drop=%d call=%d)\n%s", dropIdx, callIdx, b)
	}
	// And only one drop of v total.
	count := 0
	for _, tm := range terms {
		if d, ok := tm.(mir.Drop); ok && b.Local(d.Place.Local).Name == "v" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("v dropped %d times, want 1\n%s", count, b)
	}
}

func TestLowerLockIntrinsics(t *testing.T) {
	bodies := lowerSrc(t, `
struct Inner { m: i32 }
fn f(mu: Mutex<Inner>, rw: RwLock<Inner>) {
    let g = mu.lock().unwrap();
    let r = rw.read().unwrap();
    let w = rw.write().unwrap();
}
`)
	b := body(t, bodies, "f")
	_, terms := collect(b)
	var haveLock, haveRead, haveWrite bool
	for _, tm := range terms {
		if c, ok := tm.(mir.Call); ok {
			switch c.Intrinsic {
			case mir.IntrinsicLock:
				haveLock = true
				if c.RecvPath != "mu" {
					t.Errorf("lock RecvPath = %q, want mu", c.RecvPath)
				}
			case mir.IntrinsicRead:
				haveRead = true
			case mir.IntrinsicWrite:
				haveWrite = true
			}
		}
	}
	if !haveLock || !haveRead || !haveWrite {
		t.Errorf("intrinsics: lock=%v read=%v write=%v\n%s", haveLock, haveRead, haveWrite, b)
	}
	// Guard types propagate through unwrap to the named locals.
	var sawGuard bool
	for _, l := range b.Locals {
		if l.Name == "g" && strings.Contains(l.Ty.String(), "MutexGuard") {
			sawGuard = true
		}
	}
	if !sawGuard {
		t.Errorf("local g should have MutexGuard type\n%s", b)
	}
}

// TestLowerMatchTempLifetime verifies the rustc rule at the heart of §6.1:
// a guard temporary created in a match scrutinee is dropped at the END of
// the match, after the arms run.
func TestLowerMatchTempLifetime(t *testing.T) {
	bodies := lowerSrc(t, `
struct Inner { m: i32 }
fn f(client: RwLock<Inner>) {
    match client.read().unwrap().m {
        1 => { body1(); }
        _ => { body2(); }
    };
}
`)
	b := body(t, bodies, "f")

	// Find the read call, the arm-body calls, and the guard drop.
	readBlock, body1Block, dropBlock := mir.InvalidBlock, mir.InvalidBlock, mir.InvalidBlock
	var guardLocal mir.LocalID = -1
	for _, blk := range b.Blocks {
		switch tm := blk.Term.(type) {
		case mir.Call:
			if tm.Intrinsic == mir.IntrinsicRead {
				readBlock = blk.ID
				guardLocal = tm.Dest.Local
			}
			if tm.Callee == "body1" {
				body1Block = blk.ID
			}
		}
	}
	if readBlock == mir.InvalidBlock || body1Block == mir.InvalidBlock {
		t.Fatalf("missing read/body1 calls\n%s", b)
	}
	_ = guardLocal
	// The drop of any guard-typed temp must be reachable FROM body1 (i.e.
	// the guard is still held during the arm).
	reach := reachableFrom(b, body1Block)
	for _, blk := range b.Blocks {
		if d, ok := blk.Term.(mir.Drop); ok {
			ty := b.Local(d.Place.Local).Ty.String()
			if strings.Contains(ty, "Guard") {
				dropBlock = blk.ID
			}
		}
	}
	if dropBlock == mir.InvalidBlock {
		t.Fatalf("guard never dropped\n%s", b)
	}
	if !reach[dropBlock] {
		t.Errorf("guard drop (bb%d) not after arm body (bb%d): guard should live to end of match\n%s", dropBlock, body1Block, b)
	}
}

// TestLowerLetTempLifetime verifies the §6.1 FIX pattern: saving the
// lock-using expression into a let releases the guard at the end of the
// statement, BEFORE subsequent statements.
func TestLowerLetTempLifetime(t *testing.T) {
	bodies := lowerSrc(t, `
struct Inner { m: i32 }
fn f(client: RwLock<Inner>) {
    let result = client.read().unwrap().m;
    after(result);
}
`)
	b := body(t, bodies, "f")
	afterBlock, dropBlock := mir.InvalidBlock, mir.InvalidBlock
	for _, blk := range b.Blocks {
		switch tm := blk.Term.(type) {
		case mir.Call:
			if tm.Callee == "after" {
				afterBlock = blk.ID
			}
		case mir.Drop:
			if strings.Contains(b.Local(tm.Place.Local).Ty.String(), "Guard") {
				dropBlock = blk.ID
			}
		}
	}
	if dropBlock == mir.InvalidBlock || afterBlock == mir.InvalidBlock {
		t.Fatalf("missing drop/after\n%s", b)
	}
	reach := reachableFrom(b, dropBlock)
	if !reach[afterBlock] {
		t.Errorf("guard drop (bb%d) should precede after() (bb%d)\n%s", dropBlock, afterBlock, b)
	}
}

func TestLowerReturnUnwindsScopes(t *testing.T) {
	bodies := lowerSrc(t, `
fn f(c: bool) -> i32 {
    let v = Vec::new();
    if c { return 1; }
    2
}
`)
	b := body(t, bodies, "f")
	// v must be dropped on the early-return path too: there must be >= 2
	// drops of v-typed locals OR the single drop dominates both paths; we
	// simply require at least 2 drop terminators of v.
	count := 0
	for _, blk := range b.Blocks {
		if d, ok := blk.Term.(mir.Drop); ok && b.Local(d.Place.Local).Name == "v" {
			count++
		}
	}
	if count < 2 {
		t.Errorf("early return should emit its own drop of v (got %d)\n%s", count, b)
	}
}

func TestLowerClosureBody(t *testing.T) {
	bodies := lowerSrc(t, `
fn f() {
    thread::spawn(move || { work(); });
}
`)
	if _, ok := bodies["f::closure#0"]; !ok {
		var names []string
		for n := range bodies {
			names = append(names, n)
		}
		t.Fatalf("closure body not lowered; have %v", names)
	}
	cb := bodies["f::closure#0"]
	found := false
	for _, blk := range cb.Blocks {
		if c, ok := blk.Term.(mir.Call); ok && c.Callee == "work" {
			found = true
		}
	}
	if !found {
		t.Errorf("closure body missing work() call\n%s", cb)
	}
}

func TestLowerClosureCaptures(t *testing.T) {
	bodies := lowerSrc(t, `
fn f() {
    let shared = Arc::new(0);
    let limit = 3;
    thread::spawn(move || { consume(shared, limit); });
}
`)
	cb := body(t, bodies, "f::closure#0")
	if len(cb.Captures) != 2 || cb.Captures[0] != "shared" || cb.Captures[1] != "limit" {
		t.Fatalf("captures = %v, want [shared limit]", cb.Captures)
	}
	// Captures are trailing pseudo-arguments so names resolve inside the
	// closure body and paths translate like parameters.
	var capLocals []string
	for i := 1; i <= cb.ArgCount && i < len(cb.Locals); i++ {
		if cb.Locals[i].IsCapture {
			capLocals = append(capLocals, cb.Locals[i].Name)
		}
	}
	if len(capLocals) != 2 {
		t.Errorf("capture locals = %v, want 2 IsCapture args\n%s", capLocals, cb)
	}
	// The closure aggregate in f carries one operand per capture; the
	// move closure moves the non-Copy Arc out of the enclosing frame.
	fb := body(t, bodies, "f")
	found := false
	for _, blk := range fb.Blocks {
		for _, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			agg, ok := as.Rvalue.(mir.Aggregate)
			if !ok || agg.Kind != mir.AggClosure {
				continue
			}
			found = true
			if len(agg.Ops) != 2 {
				t.Errorf("closure aggregate ops = %d, want 2\n%s", len(agg.Ops), fb)
			}
			if len(agg.Ops) > 0 {
				if _, isMove := agg.Ops[0].(mir.Move); !isMove {
					t.Errorf("move closure should move Arc capture, got %T", agg.Ops[0])
				}
			}
		}
	}
	if !found {
		t.Fatalf("no closure aggregate in f\n%s", fb)
	}
}

func TestLowerClosureCaptureNotFreeVar(t *testing.T) {
	// Names bound inside the closure (params, lets) are not captures.
	bodies := lowerSrc(t, `
fn g() {
    let outer = 1;
    let cl = |x: u32| { let y = x; y + outer };
}
`)
	cb := body(t, bodies, "g::closure#0")
	if len(cb.Captures) != 1 || cb.Captures[0] != "outer" {
		t.Fatalf("captures = %v, want [outer]", cb.Captures)
	}
}

func TestLowerStaticAccess(t *testing.T) {
	bodies := lowerSrc(t, `
static mut COUNTER: u32 = 0;
fn f() { unsafe { COUNTER += 1; } }
`)
	b := body(t, bodies, "f")
	found := false
	for _, l := range b.Locals {
		if strings.HasPrefix(l.Name, "static ") {
			found = true
		}
	}
	if !found {
		t.Errorf("static access should allocate a static pseudo-local\n%s", b)
	}
}

func TestLowerMethodResolution(t *testing.T) {
	bodies := lowerSrc(t, `
struct Queue { items: Vec<i32> }
impl Queue {
    fn pop(&self) -> Option<i32> { None }
}
fn f(q: Queue) { let x = q.pop(); }
`)
	b := body(t, bodies, "f")
	found := false
	for _, blk := range b.Blocks {
		if c, ok := blk.Term.(mir.Call); ok && c.Callee == "Queue::pop" && c.Def != nil {
			found = true
		}
	}
	if !found {
		t.Errorf("method call not resolved to Queue::pop\n%s", b)
	}
}

// reachableFrom computes blocks reachable from start (inclusive).
func reachableFrom(b *mir.Body, start mir.BlockID) map[mir.BlockID]bool {
	seen := map[mir.BlockID]bool{start: true}
	work := []mir.BlockID{start}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if b.Blocks[cur].Term == nil {
			continue
		}
		for _, s := range b.Blocks[cur].Term.Successors() {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
