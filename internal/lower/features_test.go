package lower

import (
	"strings"
	"testing"

	"rustprobe/internal/mir"
)

func TestShadowing(t *testing.T) {
	bodies := lowerSrc(t, `
fn f() {
    let x = 1;
    let x = x + 1;
    let y = x;
}
`)
	b := body(t, bodies, "f")
	// Two distinct locals named x.
	count := 0
	for _, l := range b.Locals {
		if l.Name == "x" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("x locals = %d, want 2 (shadowing)", count)
	}
}

func TestNestedBlockScopesDropInOrder(t *testing.T) {
	bodies := lowerSrc(t, `
fn f() {
    let a = Vec::new();
    {
        let b = Vec::new();
    }
    let c = Vec::new();
}
`)
	b := body(t, bodies, "f")
	var order []string
	for _, blk := range b.Blocks {
		if d, ok := blk.Term.(mir.Drop); ok {
			order = append(order, b.Local(d.Place.Local).Name)
		}
	}
	if len(order) != 3 || order[0] != "b" {
		t.Errorf("drop order = %v, want b first (inner scope)", order)
	}
	// a and c drop at fn end in reverse declaration order: c then a.
	if order[1] != "c" || order[2] != "a" {
		t.Errorf("drop order = %v, want [b c a]", order)
	}
}

func TestTupleStructConstructor(t *testing.T) {
	bodies := lowerSrc(t, `
struct Pair(i32, Vec<u8>);
fn f() {
    let p = Pair(1, Vec::new());
    let n = p.0;
}
`)
	b := body(t, bodies, "f")
	found := false
	for _, blk := range b.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(mir.Assign); ok {
				if agg, ok := as.Rvalue.(mir.Aggregate); ok && agg.Name == "Pair" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("tuple struct ctor not lowered as aggregate\n%s", b)
	}
}

func TestCompoundAssignment(t *testing.T) {
	bodies := lowerSrc(t, `fn f() { let mut x = 1; x += 2; }`)
	b := body(t, bodies, "f")
	found := false
	for _, blk := range b.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(mir.Assign); ok {
				if bo, ok := as.Rvalue.(mir.BinaryOp); ok && bo.Op == "Compound" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("compound assignment not lowered\n%s", b)
	}
}

func TestIfLetBindsPayload(t *testing.T) {
	bodies := lowerSrc(t, `
fn f(o: Option<i32>) -> i32 {
    if let Some(v) = o {
        return v;
    }
    0
}
`)
	b := body(t, bodies, "f")
	found := false
	for _, l := range b.Locals {
		if l.Name == "v" {
			found = true
		}
	}
	if !found {
		t.Errorf("if-let binding missing\n%s", b)
	}
}

func TestWhileLetLowering(t *testing.T) {
	bodies := lowerSrc(t, `
fn f(rx: Receiver<i32>) {
    while let Ok(v) = rx.recv() {
        work(v);
    }
}
`)
	b := body(t, bodies, "f")
	// The loop must contain the recv call and a backedge.
	g := 0
	for _, blk := range b.Blocks {
		if c, ok := blk.Term.(mir.Call); ok && c.Intrinsic == mir.IntrinsicChanRecv {
			g++
		}
	}
	if g != 1 {
		t.Errorf("recv calls = %d\n%s", g, b)
	}
}

func TestBreakWithValue(t *testing.T) {
	bodies := lowerSrc(t, `
fn f() -> i32 {
    let x = loop {
        break 42;
    };
    x
}
`)
	b := body(t, bodies, "f")
	if !strings.Contains(b.String(), "const 42") {
		t.Errorf("break value lost\n%s", b)
	}
}

func TestMatchGuardLowered(t *testing.T) {
	bodies := lowerSrc(t, `
fn f(x: i32) -> i32 {
    match x {
        n if n > 0 => 1,
        _ => 0,
    }
}
`)
	b := body(t, bodies, "f")
	if len(b.Blocks) < 4 {
		t.Errorf("match with guard lowered too small\n%s", b)
	}
}

func TestStructUpdateSyntax(t *testing.T) {
	bodies := lowerSrc(t, `
struct Config { a: i32, b: i32 }
fn f(base: Config) -> Config {
    Config { a: 1, ..base }
}
`)
	b := body(t, bodies, "f")
	found := false
	for _, blk := range b.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(mir.Assign); ok {
				if agg, ok := as.Rvalue.(mir.Aggregate); ok && agg.Name == "Config" && len(agg.Ops) == 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("struct update syntax not lowered\n%s", b)
	}
}

func TestQuestionMarkForwards(t *testing.T) {
	bodies := lowerSrc(t, `
fn g() -> Result<i32, i32> { Ok(1) }
fn f() -> Result<i32, i32> {
    let v = g()?;
    Ok(v + 1)
}
`)
	b := body(t, bodies, "f")
	// v gets the unwrapped i32 type.
	for _, l := range b.Locals {
		if l.Name == "v" && l.Ty.String() != "i32" {
			t.Errorf("v type = %s, want i32", l.Ty)
		}
	}
}

func TestUnsafeBlockValue(t *testing.T) {
	bodies := lowerSrc(t, `
fn f(p: *const i32) -> i32 {
    unsafe { *p }
}
`)
	b := body(t, bodies, "f")
	out := b.String()
	if !strings.Contains(out, "_1.*") {
		t.Errorf("deref through param missing\n%s", out)
	}
}
