package lower

import (
	"rustprobe/internal/ast"
	"rustprobe/internal/mir"
	"rustprobe/internal/types"
)

// lowerIf lowers `if`/`if let` with rustc's temporary-lifetime rule: any
// temporary created while evaluating the condition lives until the end of
// the *whole if expression* — which is why a lock guard acquired in an `if`
// condition is still held inside both branches (§6.1).
func (b *builder) lowerIf(e *ast.IfExpr) (mir.Operand, types.Type) {
	// Tail-temp scope: condition temporaries drop at the join point.
	tailScope := b.pushScope(scopeTail)

	var condOp mir.Operand
	var scrutPlace mir.Place
	var scrutTy types.Type
	if e.LetPat != nil {
		// if let pat = scrutinee
		op, ty := b.lowerExpr(e.Cond)
		l := b.body.NewLocal("", ty, true, e.Sp)
		b.emit(mir.StorageLive{Local: l.ID, Span: e.Sp})
		tailScope.locals = append(tailScope.locals, l.ID)
		b.emit(mir.Assign{Place: mir.PlaceOf(l.ID), Rvalue: mir.Use{X: op}, Span: e.Sp})
		scrutPlace, scrutTy = mir.PlaceOf(l.ID), ty
		dtmp := b.newTemp(types.BoolType, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(dtmp), Rvalue: mir.Discriminant{Place: scrutPlace}, Span: e.Sp})
		condOp = mir.Copy{Place: mir.PlaceOf(dtmp)}
	} else {
		condOp, _ = b.lowerExpr(e.Cond)
	}
	if b.terminated {
		b.scopes = b.scopes[:len(b.scopes)-1]
		return nil, types.UnitType
	}

	thenBlk := b.body.NewBlock()
	elseBlk := b.body.NewBlock()
	joinBlk := b.body.NewBlock()

	result := b.body.NewLocal("", types.UnknownType, true, e.Sp)

	b.setTerm(mir.SwitchInt{
		Disc:      condOp,
		Targets:   []mir.SwitchTarget{{Value: "true", Block: thenBlk.ID}},
		Otherwise: elseBlk.ID,
		Span:      e.Sp,
	})

	var resultTy types.Type = types.UnitType

	// Then branch.
	b.startBlock(thenBlk)
	b.pushVarFrame()
	b.pushScope(scopeArm)
	if e.LetPat != nil {
		b.bindPattern(e.LetPat, scrutPlace, scrutTy, false)
	}
	op, ty := b.lowerBlock(e.Then, e.Then.Unsafety)
	resultTy = ty
	if !b.terminated && op != nil && !isUnit(ty) {
		b.emit(mir.Assign{Place: mir.PlaceOf(result.ID), Rvalue: mir.Use{X: op}, Span: e.Sp})
	}
	b.popScopeEmit(e.Sp)
	b.popVarFrame()
	b.setTerm(mir.Goto{Target: joinBlk.ID, Span: e.Sp})

	// Else branch.
	b.startBlock(elseBlk)
	if e.Else != nil {
		b.pushVarFrame()
		b.pushScope(scopeArm)
		op, ety := b.lowerExpr(e.Else)
		if isUnit(resultTy) {
			resultTy = ety
		}
		if !b.terminated && op != nil && !isUnit(ety) {
			b.emit(mir.Assign{Place: mir.PlaceOf(result.ID), Rvalue: mir.Use{X: op}, Span: e.Sp})
		}
		b.popScopeEmit(e.Sp)
		b.popVarFrame()
	}
	b.setTerm(mir.Goto{Target: joinBlk.ID, Span: e.Sp})

	// Join: condition temporaries drop here.
	b.startBlock(joinBlk)
	result.Ty = resultTy
	b.popScopeEmit(e.Sp) // pops the tail scope: Drop + StorageDead of cond temps
	if isUnit(resultTy) {
		return nil, types.UnitType
	}
	return b.operandFor(mir.PlaceOf(result.ID), resultTy), resultTy
}

// lowerMatch lowers `match` with the same temporary-lifetime rule: the
// scrutinee's temporaries (e.g. a lock guard in
// `match client.read().unwrap().m { ... }`) live until the end of the
// whole match — the root cause of the Figure 8 double lock.
func (b *builder) lowerMatch(e *ast.MatchExpr) (mir.Operand, types.Type) {
	tailScope := b.pushScope(scopeTail)

	op, scrutTy := b.lowerExpr(e.Scrutinee)
	if b.terminated {
		b.scopes = b.scopes[:len(b.scopes)-1]
		return nil, types.UnitType
	}
	scrut := b.body.NewLocal("", scrutTy, true, e.Sp)
	b.emit(mir.StorageLive{Local: scrut.ID, Span: e.Sp})
	tailScope.locals = append(tailScope.locals, scrut.ID)
	b.emit(mir.Assign{Place: mir.PlaceOf(scrut.ID), Rvalue: mir.Use{X: op}, Span: e.Sp})

	dtmp := b.newTemp(types.UnknownType, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(dtmp), Rvalue: mir.Discriminant{Place: mir.PlaceOf(scrut.ID)}, Span: e.Sp})

	joinBlk := b.body.NewBlock()
	result := b.body.NewLocal("", types.UnknownType, true, e.Sp)
	var resultTy types.Type = types.UnitType

	// One block per arm; the switch targets them by pattern head name.
	var targets []mir.SwitchTarget
	armBlocks := make([]*mir.Block, len(e.Arms))
	for i, arm := range e.Arms {
		armBlocks[i] = b.body.NewBlock()
		targets = append(targets, mir.SwitchTarget{Value: patternHead(arm.Pat), Block: armBlocks[i].ID})
	}
	var otherwise mir.BlockID = mir.InvalidBlock
	if len(targets) > 0 {
		// Route the last arm (typically `_`) through otherwise as well.
		otherwise = targets[len(targets)-1].Block
		targets = targets[:len(targets)-1]
	}
	b.setTerm(mir.SwitchInt{
		Disc:      mir.Copy{Place: mir.PlaceOf(dtmp)},
		Targets:   targets,
		Otherwise: otherwise,
		Span:      e.Sp,
	})

	for i, arm := range e.Arms {
		b.startBlock(armBlocks[i])
		b.pushVarFrame()
		b.pushScope(scopeArm)
		b.bindPattern(arm.Pat, mir.PlaceOf(scrut.ID), scrutTy, false)
		if arm.Guard != nil {
			b.pushScope(scopeStmt)
			b.lowerExpr(arm.Guard)
			b.popScopeEmit(arm.Sp)
		}
		op, ty := b.lowerExpr(arm.Body)
		if isUnit(resultTy) {
			resultTy = ty
		}
		if !b.terminated && op != nil && !isUnit(ty) {
			b.emit(mir.Assign{Place: mir.PlaceOf(result.ID), Rvalue: mir.Use{X: op}, Span: arm.Sp})
		}
		b.popScopeEmit(arm.Sp)
		b.popVarFrame()
		b.setTerm(mir.Goto{Target: joinBlk.ID, Span: arm.Sp})
	}

	// Join: scrutinee temporaries (lock guards!) drop here.
	b.startBlock(joinBlk)
	result.Ty = resultTy
	b.popScopeEmit(e.Sp)
	if isUnit(resultTy) {
		return nil, types.UnitType
	}
	return b.operandFor(mir.PlaceOf(result.ID), resultTy), resultTy
}

// patternHead returns the switch-target label for an arm pattern.
func patternHead(p ast.Pat) string {
	switch p := p.(type) {
	case *ast.TupleStructPat:
		return p.Name()
	case *ast.StructPat:
		if len(p.Segments) > 0 {
			return p.Segments[len(p.Segments)-1]
		}
	case *ast.PathPat:
		return p.Name()
	case *ast.LitPat:
		if lit, ok := p.Value.(*ast.LitExpr); ok {
			return lit.Text
		}
	case *ast.RefPat:
		return patternHead(p.Sub)
	case *ast.OrPat:
		if len(p.Alts) > 0 {
			return patternHead(p.Alts[0])
		}
	}
	return "_"
}

func (b *builder) lowerWhile(e *ast.WhileExpr) {
	headBlk := b.body.NewBlock()
	bodyBlk := b.body.NewBlock()
	exitBlk := b.body.NewBlock()

	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})
	b.startBlock(headBlk)

	b.pushScope(scopeLoop)
	b.loops = append(b.loops, &loopCtx{
		label:      e.Label,
		breakBlock: exitBlk.ID,
		contBlock:  headBlk.ID,
		scopeDepth: len(b.scopes),
	})

	// Condition temporaries drop before entering the body or exiting: in
	// while-loop conditions rustc drops temporaries at the end of the
	// condition, not the loop (unlike if/match) — model with a stmt scope.
	b.pushScope(scopeStmt)
	var condOp mir.Operand
	var scrutPlace mir.Place
	var scrutTy types.Type
	if e.LetPat != nil {
		op, ty := b.lowerExpr(e.Cond)
		tmp := b.newTemp(ty, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
		scrutPlace, scrutTy = mir.PlaceOf(tmp), ty
		dt := b.newTemp(types.BoolType, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(dt), Rvalue: mir.Discriminant{Place: scrutPlace}, Span: e.Sp})
		condOp = mir.Copy{Place: mir.PlaceOf(dt)}
	} else {
		condOp, _ = b.lowerExpr(e.Cond)
	}
	// NOTE: popping the stmt scope here means while-let scrutinee temps
	// drop before the body; the binding copies out first below.
	var bindFrom mir.Place
	if e.LetPat != nil {
		// Copy the payload into a loop-scoped temp before the guard temp
		// dies (models rustc's desugaring into a match whose arm moves
		// the binding).
		hold := b.body.NewLocal("", scrutTy, true, e.Sp)
		b.emit(mir.StorageLive{Local: hold.ID, Span: e.Sp})
		b.scopes[len(b.scopes)-2].locals = append(b.scopes[len(b.scopes)-2].locals, hold.ID)
		b.emit(mir.Assign{Place: mir.PlaceOf(hold.ID), Rvalue: mir.Use{X: b.operandFor(scrutPlace, scrutTy)}, Span: e.Sp})
		bindFrom = mir.PlaceOf(hold.ID)
	}
	b.popScopeEmit(e.Sp)

	b.setTerm(mir.SwitchInt{
		Disc:      condOp,
		Targets:   []mir.SwitchTarget{{Value: "true", Block: bodyBlk.ID}},
		Otherwise: exitBlk.ID,
		Span:      e.Sp,
	})

	b.startBlock(bodyBlk)
	b.pushVarFrame()
	b.pushScope(scopeArm)
	if e.LetPat != nil {
		b.bindPattern(e.LetPat, bindFrom, scrutTy, false)
	}
	b.lowerBlock(e.Body, e.Body.Unsafety)
	b.popScopeEmit(e.Sp)
	b.popVarFrame()
	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})

	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exitBlk)
	b.scopes = b.scopes[:len(b.scopes)-1] // pop loop scope (no locals)
}

func (b *builder) lowerLoop(e *ast.LoopExpr) (mir.Operand, types.Type) {
	headBlk := b.body.NewBlock()
	exitBlk := b.body.NewBlock()
	result := b.body.NewLocal("", types.UnknownType, true, e.Sp)

	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})
	b.startBlock(headBlk)

	b.pushScope(scopeLoop)
	b.loops = append(b.loops, &loopCtx{
		label:      e.Label,
		breakBlock: exitBlk.ID,
		contBlock:  headBlk.ID,
		result:     result.ID,
		scopeDepth: len(b.scopes),
	})

	b.pushVarFrame()
	b.pushScope(scopeArm)
	b.lowerBlock(e.Body, e.Body.Unsafety)
	b.popScopeEmit(e.Sp)
	b.popVarFrame()
	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})

	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exitBlk)
	b.scopes = b.scopes[:len(b.scopes)-1]
	return b.operandFor(mir.PlaceOf(result.ID), result.Ty), result.Ty
}

func (b *builder) lowerFor(e *ast.ForExpr) {
	// Desugar: evaluate the iterator, then loop with a nondeterministic
	// exit; the pattern binds an element of unknown provenance each round.
	b.pushScope(scopeStmt)
	iterOp, iterTy := b.lowerExpr(e.Iter)
	iter := b.body.NewLocal("", iterTy, true, e.Sp)
	b.emit(mir.StorageLive{Local: iter.ID, Span: e.Sp})
	// The iterator lives for the whole loop: register outside stmt scope.
	b.scopes[len(b.scopes)-2].locals = append(b.scopes[len(b.scopes)-2].locals, iter.ID)
	if iterOp != nil {
		b.emit(mir.Assign{Place: mir.PlaceOf(iter.ID), Rvalue: mir.Use{X: iterOp}, Span: e.Sp})
	}
	b.popScopeEmit(e.Sp)

	headBlk := b.body.NewBlock()
	bodyBlk := b.body.NewBlock()
	exitBlk := b.body.NewBlock()
	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})
	b.startBlock(headBlk)

	b.pushScope(scopeLoop)
	b.loops = append(b.loops, &loopCtx{
		label:      e.Label,
		breakBlock: exitBlk.ID,
		contBlock:  headBlk.ID,
		scopeDepth: len(b.scopes),
	})

	b.setTerm(mir.SwitchInt{
		Disc:      mir.Const{Text: "next?", Ty: types.BoolType},
		Targets:   []mir.SwitchTarget{{Value: "true", Block: bodyBlk.ID}},
		Otherwise: exitBlk.ID,
		Span:      e.Sp,
	})

	b.startBlock(bodyBlk)
	b.pushVarFrame()
	b.pushScope(scopeArm)
	elem := elemType(iterTy)
	b.bindPattern(e.Pat, mir.PlaceOf(iter.ID).WithProj(mir.IndexProj{}), elem, isRefIter(iterTy))
	b.lowerBlock(e.Body, e.Body.Unsafety)
	b.popScopeEmit(e.Sp)
	b.popVarFrame()
	b.setTerm(mir.Goto{Target: headBlk.ID, Span: e.Sp})

	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exitBlk)
	b.scopes = b.scopes[:len(b.scopes)-1]
}

func isRefIter(t types.Type) bool {
	_, ok := t.(*types.Ref)
	return ok
}

func (b *builder) lowerReturn(e *ast.ReturnExpr) {
	if e.X != nil {
		op, ty := b.lowerExpr(e.X)
		if op != nil && !isUnit(ty) {
			b.emit(mir.Assign{Place: mir.PlaceOf(mir.ReturnLocal), Rvalue: mir.Use{X: op}, Span: e.Sp})
		}
	}
	// Unwind every open scope (releasing guards, freeing owners), then
	// jump to the exit block.
	b.unwindTo(0, e.Sp)
	b.setTerm(mir.Goto{Target: b.exitBlock.ID, Span: e.Sp})
	b.terminated = true
}

func (b *builder) findLoop(label string) *loopCtx {
	if len(b.loops) == 0 {
		return nil
	}
	if label == "" {
		return b.loops[len(b.loops)-1]
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].label == label {
			return b.loops[i]
		}
	}
	return b.loops[len(b.loops)-1]
}

func (b *builder) lowerBreak(e *ast.BreakExpr) {
	lc := b.findLoop(e.Label)
	if e.X != nil {
		op, ty := b.lowerExpr(e.X)
		if lc != nil && lc.result != 0 && op != nil && !isUnit(ty) {
			b.body.Local(lc.result).Ty = ty
			b.emit(mir.Assign{Place: mir.PlaceOf(lc.result), Rvalue: mir.Use{X: op}, Span: e.Sp})
		}
	}
	if lc == nil {
		b.setTerm(mir.Goto{Target: b.exitBlock.ID, Span: e.Sp})
		b.terminated = true
		return
	}
	b.unwindTo(lc.scopeDepth, e.Sp)
	b.setTerm(mir.Goto{Target: lc.breakBlock, Span: e.Sp})
	b.terminated = true
}

func (b *builder) lowerContinue(e *ast.ContinueExpr) {
	lc := b.findLoop(e.Label)
	if lc == nil {
		b.setTerm(mir.Goto{Target: b.exitBlock.ID, Span: e.Sp})
		b.terminated = true
		return
	}
	b.unwindTo(lc.scopeDepth, e.Sp)
	b.setTerm(mir.Goto{Target: lc.contBlock, Span: e.Sp})
	b.terminated = true
}
