package lower

import (
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/hir"
	"rustprobe/internal/mir"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// convertTypeShim converts syntax types via the resolver's table.
func convertTypeShim(t ast.Type) types.Type { return resolve.ConvertType(t) }

// closureFuncDef wraps a closure as a standalone FuncDef for lowering.
func (b *builder) closureFuncDef(name string, e *ast.ClosureExpr) *hir.FuncDef {
	body, ok := e.Body.(*ast.BlockExpr)
	if !ok {
		body = &ast.BlockExpr{
			Stmts: []ast.Stmt{&ast.ExprStmt{X: e.Body, Semi: false, Sp: e.Body.Span()}},
			Sp:    e.Body.Span(),
		}
	}
	fd := &hir.FuncDef{
		Name:      name,
		Qualified: name,
		Ret:       types.UnknownType,
		Span:      e.Sp,
		Syntax: &ast.FnItem{
			Name: name,
			Decl: &ast.FnDecl{},
			Body: body,
			Sp:   e.Sp,
		},
	}
	for _, p := range e.Params {
		ty := types.Type(types.UnknownType)
		if p.Ty != nil {
			ty = resolve.ConvertType(p.Ty)
		}
		fd.Params = append(fd.Params, hir.ParamDef{Name: p.Name, Ty: ty, Pat: paramPat(p)})
	}
	return fd
}

func paramPat(p *ast.Param) ast.Pat {
	if p.Name == "" && p.Pat != nil {
		return p.Pat
	}
	return nil
}

// lowerBlock lowers a block and returns its tail value (nil for unit).
func (b *builder) lowerBlock(blk *ast.BlockExpr, _ bool) (mir.Operand, types.Type) {
	b.pushVarFrame()
	b.pushScope(scopeBlock)
	var tail mir.Operand
	var tailTy types.Type = types.UnitType
	for i, st := range blk.Stmts {
		if b.terminated {
			break
		}
		if es, ok := st.(*ast.ExprStmt); ok && !es.Semi && i == len(blk.Stmts)-1 {
			// Block tail value. Evaluate into a local of the *enclosing*
			// scope so it survives the block's drops.
			op, ty := b.lowerExpr(es.X)
			if op != nil && !isUnit(ty) {
				// Hoist: materialize into a temp owned by the parent
				// scope, after this block's drops run.
				tmp := b.hoistToParent(op, ty, es.Sp)
				tail, tailTy = tmp, ty
			} else {
				tail, tailTy = op, ty
			}
			break
		}
		b.lowerStmt(st)
	}
	b.popScopeEmit(blk.Sp)
	b.popVarFrame()
	return tail, tailTy
}

// hoistToParent stores op in a fresh temp registered one scope up, so block
// tail values survive the block's own drops.
func (b *builder) hoistToParent(op mir.Operand, ty types.Type, sp source.Span) mir.Operand {
	if b.terminated {
		return op
	}
	l := b.body.NewLocal("", ty, true, sp)
	b.emit(mir.StorageLive{Local: l.ID, Span: sp})
	// Register in the parent scope (skip the current block scope).
	if len(b.scopes) >= 2 {
		s := b.scopes[len(b.scopes)-2]
		s.locals = append(s.locals, l.ID)
	} else {
		s := b.scopes[len(b.scopes)-1]
		s.locals = append(s.locals, l.ID)
	}
	b.emit(mir.Assign{Place: mir.PlaceOf(l.ID), Rvalue: mir.Use{X: op}, Span: sp})
	return b.operandFor(mir.PlaceOf(l.ID), ty)
}

func (b *builder) lowerStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.LetStmt:
		b.lowerLet(st)
	case *ast.ExprStmt:
		b.pushScope(scopeStmt)
		b.lowerExpr(st.X)
		b.popScopeEmit(st.Sp)
	case *ast.ItemStmt:
		// Nested items were already registered by resolve (top-level
		// collection does not descend into bodies; nested fns are rare in
		// the corpus and ignored).
	case *ast.EmptyStmt:
	}
}

func (b *builder) lowerLet(st *ast.LetStmt) {
	var declTy types.Type = types.UnknownType
	if st.Ty != nil {
		declTy = b.convertType(st.Ty)
	}
	if st.Init == nil {
		// Uninitialized let: allocate storage only.
		if bp, ok := st.Pat.(*ast.BindPat); ok {
			b.newNamed(bp.Name, declTy, st.Sp)
		}
		return
	}
	// Temporaries in the initializer die at the end of the let statement.
	b.pushScope(scopeStmt)
	op, ty := b.lowerExpr(st.Init)
	if st.Ty != nil {
		ty = declTy
	}
	if op == nil {
		op = mir.Const{Text: "()", Ty: types.UnitType}
	}
	// Bind the pattern against a local holding the value. For a plain
	// binding the local *is* the variable.
	switch pat := st.Pat.(type) {
	case *ast.BindPat:
		// Allocate the variable in the enclosing block scope, then pop the
		// statement temp scope.
		id := b.newNamed(pat.Name, ty, st.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(id), Rvalue: mir.Use{X: op}, Span: st.Sp})
		b.popScopeEmit(st.Sp)
	case *ast.WildPat:
		// `let _ = x;` drops the value at the end of the statement: keep
		// it in the statement scope.
		if pl, ok := mir.OperandPlace(op); ok && needsDrop(ty) && mir.IsMove(op) {
			// Re-own into a temp so the drop is visible.
			tmp := b.newTemp(ty, st.Sp)
			b.moved[pl.Local] = true
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: st.Sp})
		}
		b.popScopeEmit(st.Sp)
	default:
		// Destructuring: store to a temp that lives in the enclosing
		// scope, then bind pattern names to projections.
		l := b.body.NewLocal("", ty, true, st.Sp)
		b.emit(mir.StorageLive{Local: l.ID, Span: st.Sp})
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].kind != scopeStmt && b.scopes[i].kind != scopeTail {
				b.scopes[i].locals = append(b.scopes[i].locals, l.ID)
				break
			}
		}
		b.emit(mir.Assign{Place: mir.PlaceOf(l.ID), Rvalue: mir.Use{X: op}, Span: st.Sp})
		b.popScopeEmit(st.Sp)
		b.bindPattern(st.Pat, mir.PlaceOf(l.ID), ty, false)
	}
	if st.Else != nil {
		// let-else diverging block: lower for effects on a side path.
		cont := b.body.NewBlock()
		elseBlk := b.body.NewBlock()
		b.setTerm(mir.SwitchInt{
			Disc:      mir.Const{Text: "binds?", Ty: types.BoolType},
			Targets:   []mir.SwitchTarget{{Value: "true", Block: cont.ID}},
			Otherwise: elseBlk.ID,
			Span:      st.Sp,
		})
		b.startBlock(elseBlk)
		b.lowerBlock(st.Else, false)
		if !b.terminated {
			b.setTerm(mir.Unreachable{Span: st.Sp})
		}
		b.startBlock(cont)
	}
}

// bindPattern introduces pattern bindings as locals assigned from
// projections of place.
func (b *builder) bindPattern(pat ast.Pat, place mir.Place, ty types.Type, byRef bool) {
	switch pat := pat.(type) {
	case *ast.BindPat:
		bty := ty
		if byRef || pat.Ref {
			bty = types.RefTo(ty)
		}
		id := b.newNamed(pat.Name, bty, pat.Sp)
		var rv mir.Rvalue
		if byRef || pat.Ref {
			rv = mir.Ref{Place: place}
		} else {
			rv = mir.Use{X: b.operandFor(place, ty)}
		}
		b.emit(mir.Assign{Place: mir.PlaceOf(id), Rvalue: rv, Span: pat.Sp})
		if pat.Sub != nil {
			b.bindPattern(pat.Sub, place, ty, byRef)
		}
	case *ast.WildPat, *ast.PathPat, *ast.LitPat, *ast.RangePat:
	case *ast.TupleStructPat:
		payload := b.variantPayload(pat.Name(), ty)
		for i, sub := range pat.Elems {
			fname := tupleFieldName(i)
			fty := types.UnknownType
			if i < len(payload) {
				fty = payload[i]
			}
			b.bindPattern(sub, place.WithProj(mir.FieldProj{Name: fname, Ty: fty}), fty, byRef)
		}
	case *ast.StructPat:
		sd := b.prog.Structs[pat.Segments[len(pat.Segments)-1]]
		for _, f := range pat.Fields {
			fty := types.UnknownType
			if sd != nil {
				fty = sd.FieldType(f.Name)
			}
			b.bindPattern(f.Pat, place.WithProj(mir.FieldProj{Name: f.Name, Ty: fty}), fty, byRef)
		}
	case *ast.TuplePat:
		tup, _ := ty.(*types.Tuple)
		for i, sub := range pat.Elems {
			fty := types.UnknownType
			if tup != nil && i < len(tup.Elems) {
				fty = tup.Elems[i]
			}
			b.bindPattern(sub, place.WithProj(mir.FieldProj{Name: tupleFieldName(i), Ty: fty}), fty, byRef)
		}
	case *ast.RefPat:
		inner := types.Peel(ty)
		b.bindPattern(pat.Sub, place.WithProj(mir.DerefProj{}), inner, byRef)
	case *ast.OrPat:
		if len(pat.Alts) > 0 {
			b.bindPattern(pat.Alts[0], place, ty, byRef)
		}
	}
}

func tupleFieldName(i int) string {
	return [...]string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"}[min(i, 9)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// variantPayload returns the payload types of an enum variant pattern
// matched against a scrutinee of type ty.
func (b *builder) variantPayload(variant string, ty types.Type) []types.Type {
	base := types.PeelAll(ty)
	if n, ok := base.(*types.Named); ok {
		switch n.Name {
		case "Option":
			if variant == "Some" {
				return []types.Type{n.Arg(0)}
			}
			return nil
		case "Result", "LockResult", "TryLockResult":
			if variant == "Ok" {
				return []types.Type{n.Arg(0)}
			}
			if variant == "Err" {
				return []types.Type{n.Arg(1)}
			}
			return nil
		}
		if ed, ok := b.prog.Enums[n.Name]; ok {
			return ed.Variants[variant]
		}
	}
	if ed, ok := b.prog.VariantOwner[variant]; ok {
		return ed.Variants[variant]
	}
	return nil
}

func (b *builder) convertType(t ast.Type) types.Type {
	return convertTypeShim(t)
}

// --- expressions ------------------------------------------------------------

// lowerExpr lowers an expression for its value, returning an operand and
// its type. Unit-valued expressions may return a nil operand.
func (b *builder) lowerExpr(e ast.Expr) (mir.Operand, types.Type) {
	if b.terminated {
		return mir.Const{Text: "!", Ty: types.NeverType}, types.NeverType
	}
	switch e := e.(type) {
	case *ast.LitExpr:
		return b.lowerLit(e)
	case *ast.ParenExpr:
		return b.lowerExpr(e.X)
	case *ast.PathExpr:
		return b.lowerPathExpr(e)
	case *ast.UnaryExpr, *ast.FieldExpr, *ast.IndexExpr:
		pl, ty, ok := b.lowerPlace(e)
		if ok {
			return b.operandFor(pl, ty), ty
		}
		// Non-place unary (negation etc.).
		if ue, isU := e.(*ast.UnaryExpr); isU {
			op, ty := b.lowerExpr(ue.X)
			tmp := b.newTemp(ty, ue.Sp)
			opName := map[ast.UnOp]string{ast.UnNeg: "Neg", ast.UnNot: "Not", ast.UnDeref: "Deref"}[ue.Op]
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.UnaryOp{Op: opName, X: op}, Span: ue.Sp})
			return b.operandFor(mir.PlaceOf(tmp), ty), ty
		}
		return mir.Const{Text: "?", Ty: types.UnknownType}, types.UnknownType
	case *ast.BorrowExpr:
		pl, ty, ok := b.lowerPlace(e.X)
		if !ok {
			// Borrow of a temporary: materialize it first.
			op, vty := b.lowerExpr(e.X)
			tmp := b.newTemp(vty, e.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
			pl, ty = mir.PlaceOf(tmp), vty
		}
		refTy := types.Type(&types.Ref{Mut: e.Mut, Elem: ty})
		tmp := b.newTemp(refTy, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Ref{Mut: e.Mut, Place: pl}, Span: e.Sp})
		return mir.Copy{Place: mir.PlaceOf(tmp)}, refTy
	case *ast.BinaryExpr:
		return b.lowerBinary(e)
	case *ast.AssignExpr:
		b.lowerAssign(e)
		return nil, types.UnitType
	case *ast.CastExpr:
		return b.lowerCast(e)
	case *ast.CallExpr:
		return b.lowerCall(e)
	case *ast.MethodCallExpr:
		return b.lowerMethodCall(e)
	case *ast.MacroCallExpr:
		return b.lowerMacro(e)
	case *ast.BlockExpr:
		return b.lowerBlock(e, e.Unsafety)
	case *ast.IfExpr:
		return b.lowerIf(e)
	case *ast.MatchExpr:
		return b.lowerMatch(e)
	case *ast.WhileExpr:
		b.lowerWhile(e)
		return nil, types.UnitType
	case *ast.LoopExpr:
		return b.lowerLoop(e)
	case *ast.ForExpr:
		b.lowerFor(e)
		return nil, types.UnitType
	case *ast.ReturnExpr:
		b.lowerReturn(e)
		return mir.Const{Text: "!", Ty: types.NeverType}, types.NeverType
	case *ast.BreakExpr:
		b.lowerBreak(e)
		return mir.Const{Text: "!", Ty: types.NeverType}, types.NeverType
	case *ast.ContinueExpr:
		b.lowerContinue(e)
		return mir.Const{Text: "!", Ty: types.NeverType}, types.NeverType
	case *ast.StructExpr:
		return b.lowerStructExpr(e)
	case *ast.TupleExpr:
		return b.lowerTupleExpr(e)
	case *ast.ArrayExpr:
		return b.lowerArrayExpr(e)
	case *ast.RangeExpr:
		var ops []mir.Operand
		if e.Lo != nil {
			op, _ := b.lowerExpr(e.Lo)
			ops = append(ops, op)
		}
		if e.Hi != nil {
			op, _ := b.lowerExpr(e.Hi)
			ops = append(ops, op)
		}
		ty := types.NamedOf("Range")
		tmp := b.newTemp(ty, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: mir.AggStruct, Name: "Range", Ops: ops}, Span: e.Sp})
		return mir.Copy{Place: mir.PlaceOf(tmp)}, ty
	case *ast.ClosureExpr:
		return b.lowerClosure(e)
	case *ast.TryExpr:
		// `x?` forwards the success value; the early-return path is
		// modeled as an alternative exit without drops (see DESIGN.md).
		op, ty := b.lowerExpr(e.X)
		inner := unwrapResultish(ty)
		tmp := b.newTemp(inner, e.Sp)
		b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
		return b.operandFor(mir.PlaceOf(tmp), inner), inner
	case *ast.AwaitExpr:
		return b.lowerExpr(e.X)
	default:
		return mir.Const{Text: "?", Ty: types.UnknownType}, types.UnknownType
	}
}

func unwrapResultish(t types.Type) types.Type {
	if n, ok := t.(*types.Named); ok {
		switch n.Name {
		case "Result", "Option", "LockResult", "TryLockResult":
			return n.Arg(0)
		}
	}
	return types.UnknownType
}

func (b *builder) lowerLit(e *ast.LitExpr) (mir.Operand, types.Type) {
	var ty types.Type
	switch e.Kind {
	case ast.LitInt:
		ty = types.I32Type
		if strings.Contains(e.Text, "usize") {
			ty = types.USizeType
		} else if strings.Contains(e.Text, "u8") {
			ty = types.U8Type
		}
	case ast.LitFloat:
		ty = types.F64Type
	case ast.LitBool:
		ty = types.BoolType
	case ast.LitStr:
		ty = types.RefTo(types.StrType)
	case ast.LitChar:
		ty = types.CharType
	case ast.LitByte:
		ty = types.U8Type
	case ast.LitByteStr:
		ty = types.RefTo(&types.Slice{Elem: types.U8Type})
	default:
		ty = types.UnknownType
	}
	return mir.Const{Text: e.Text, Ty: ty}, ty
}

// lowerPathExpr lowers a bare or qualified path in value position.
func (b *builder) lowerPathExpr(e *ast.PathExpr) (mir.Operand, types.Type) {
	if e.IsLocal() {
		name := e.Name()
		if id, ok := b.lookupVar(name); ok {
			ty := b.body.Local(id).Ty
			return b.operandFor(mir.PlaceOf(id), ty), ty
		}
		if sd, ok := b.prog.Statics[name]; ok {
			id := b.staticLocal(name, sd.Ty)
			return mir.Copy{Place: mir.PlaceOf(id)}, sd.Ty
		}
	}
	// Unit enum variants (None, a unit variant path).
	name := e.Name()
	if len(e.Segments) >= 2 {
		if ed, ok := b.prog.Enums[e.Segments[len(e.Segments)-2]]; ok {
			ty := types.NamedOf(ed.Name)
			return mir.Const{Text: strings.Join(e.Segments, "::"), Ty: ty}, ty
		}
	}
	if name == "None" {
		ty := types.NamedOf("Option", types.UnknownType)
		return mir.Const{Text: "None", Ty: ty}, ty
	}
	if ed, ok := b.prog.VariantOwner[name]; ok {
		ty := types.NamedOf(ed.Name)
		return mir.Const{Text: name, Ty: ty}, ty
	}
	if sd, ok := b.prog.Statics[name]; ok {
		id := b.staticLocal(name, sd.Ty)
		return mir.Copy{Place: mir.PlaceOf(id)}, sd.Ty
	}
	// Function item used as a value, or an unresolved path: constant.
	return mir.Const{Text: strings.Join(e.Segments, "::"), Ty: types.UnknownType}, types.UnknownType
}

// lowerPlace lowers an expression as an lvalue place when possible.
func (b *builder) lowerPlace(e ast.Expr) (mir.Place, types.Type, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.PathExpr:
		if e.IsLocal() {
			if id, ok := b.lookupVar(e.Name()); ok {
				return mir.PlaceOf(id), b.body.Local(id).Ty, true
			}
		}
		if sd, ok := b.prog.Statics[e.Name()]; ok {
			id := b.staticLocal(e.Name(), sd.Ty)
			return mir.PlaceOf(id), sd.Ty, true
		}
		return mir.Place{}, types.UnknownType, false
	case *ast.FieldExpr:
		base, bty, ok := b.lowerPlace(e.X)
		if !ok {
			// Field of an rvalue: materialize the base.
			op, vty := b.lowerExpr(e.X)
			tmp := b.newTemp(vty, e.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
			base, bty = mir.PlaceOf(tmp), vty
		}
		// Auto-deref through references for field access.
		for {
			if r, isRef := bty.(*types.Ref); isRef {
				base = base.WithProj(mir.DerefProj{})
				bty = r.Elem
				continue
			}
			break
		}
		fty := b.fieldType(bty, e.Name)
		return base.WithProj(mir.FieldProj{Name: e.Name, Ty: fty}), fty, true
	case *ast.IndexExpr:
		base, bty, ok := b.lowerPlace(e.X)
		if !ok {
			op, vty := b.lowerExpr(e.X)
			tmp := b.newTemp(vty, e.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
			base, bty = mir.PlaceOf(tmp), vty
		}
		b.pushScope(scopeStmt)
		b.lowerExpr(e.Index) // evaluate the index for effects
		b.popScopeEmit(e.Sp)
		elem := elemType(bty)
		return base.WithProj(mir.IndexProj{}), elem, true
	case *ast.UnaryExpr:
		if e.Op != ast.UnDeref {
			return mir.Place{}, types.UnknownType, false
		}
		base, bty, ok := b.lowerPlace(e.X)
		if !ok {
			op, vty := b.lowerExpr(e.X)
			tmp := b.newTemp(vty, e.Sp)
			b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Use{X: op}, Span: e.Sp})
			base, bty = mir.PlaceOf(tmp), vty
		}
		return base.WithProj(mir.DerefProj{}), types.Peel(bty), true
	default:
		return mir.Place{}, types.UnknownType, false
	}
}

func (b *builder) fieldType(base types.Type, field string) types.Type {
	base = types.PeelAll(base)
	switch base := base.(type) {
	case *types.Named:
		if sd, ok := b.prog.Structs[base.Name]; ok {
			return sd.FieldType(field)
		}
	case *types.Tuple:
		for i, e := range base.Elems {
			if tupleFieldName(i) == field {
				return e
			}
		}
	}
	return types.UnknownType
}

func elemType(t types.Type) types.Type {
	t = types.PeelAll(t)
	switch t := t.(type) {
	case *types.Slice:
		return t.Elem
	case *types.Array:
		return t.Elem
	case *types.Named:
		switch t.Name {
		case "Vec", "VecDeque":
			return t.Arg(0)
		case "HashMap", "BTreeMap":
			return t.Arg(1)
		}
	}
	return types.UnknownType
}

func (b *builder) lowerBinary(e *ast.BinaryExpr) (mir.Operand, types.Type) {
	lop, lty := b.lowerExpr(e.L)
	rop, _ := b.lowerExpr(e.R)
	var ty types.Type
	switch e.Op {
	case ast.BinEq, ast.BinNe, ast.BinLt, ast.BinLe, ast.BinGt, ast.BinGe, ast.BinAnd, ast.BinOr:
		ty = types.BoolType
	default:
		ty = lty
	}
	opNames := map[ast.BinOp]string{
		ast.BinAdd: "Add", ast.BinSub: "Sub", ast.BinMul: "Mul", ast.BinDiv: "Div",
		ast.BinRem: "Rem", ast.BinAnd: "And", ast.BinOr: "Or", ast.BinBitAnd: "BitAnd",
		ast.BinBitOr: "BitOr", ast.BinBitXor: "BitXor", ast.BinShl: "Shl", ast.BinShr: "Shr",
		ast.BinEq: "Eq", ast.BinNe: "Ne", ast.BinLt: "Lt", ast.BinLe: "Le",
		ast.BinGt: "Gt", ast.BinGe: "Ge",
	}
	tmp := b.newTemp(ty, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.BinaryOp{Op: opNames[e.Op], L: lop, R: rop}, Span: e.Sp})
	return mir.Copy{Place: mir.PlaceOf(tmp)}, ty
}

func (b *builder) lowerAssign(e *ast.AssignExpr) {
	// Evaluate RHS first (Rust evaluates LHS place first, but the
	// difference is immaterial to our analyses).
	op, _ := b.lowerExpr(e.R)
	pl, _, ok := b.lowerPlace(e.L)
	if !ok {
		return
	}
	if e.Op != nil {
		b.emit(mir.Assign{Place: pl, Rvalue: mir.BinaryOp{Op: "Compound", L: mir.Copy{Place: pl}, R: op}, Span: e.Sp})
		return
	}
	// A fresh assignment un-moves the destination local.
	if pl.IsLocal() {
		delete(b.moved, pl.Local)
	}
	b.emit(mir.Assign{Place: pl, Rvalue: mir.Use{X: op}, Span: e.Sp})
}

func (b *builder) lowerCast(e *ast.CastExpr) (mir.Operand, types.Type) {
	to := b.convertType(e.Ty)
	// `&x as *const T` / `ptr as *mut T`: keep the place association so
	// points-to survives the cast chain.
	if be, ok := ast.Unparen(e.X).(*ast.BorrowExpr); ok {
		if _, isPtr := to.(*types.RawPtr); isPtr {
			pl, _, okp := b.lowerPlace(be.X)
			if okp {
				mut := false
				if rp, isRaw := to.(*types.RawPtr); isRaw {
					mut = rp.Mut
				}
				tmp := b.newTemp(to, e.Sp)
				b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.AddrOf{Mut: mut, Place: pl}, Span: e.Sp})
				return mir.Copy{Place: mir.PlaceOf(tmp)}, to
			}
		}
	}
	op, _ := b.lowerExpr(e.X)
	tmp := b.newTemp(to, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Cast{X: op, To: to}, Span: e.Sp})
	return b.operandFor(mir.PlaceOf(tmp), to), to
}

func (b *builder) lowerStructExpr(e *ast.StructExpr) (mir.Operand, types.Type) {
	name := e.Name()
	if name == "Self" && b.fd.SelfType != "" {
		name = b.fd.SelfType
	}
	// Enum variant struct literal `Enum::Variant { .. }`.
	aggName := name
	kind := mir.AggStruct
	if len(e.Segments) >= 2 {
		if _, isEnum := b.prog.Enums[e.Segments[len(e.Segments)-2]]; isEnum {
			kind = mir.AggVariant
			aggName = e.Segments[len(e.Segments)-2] + "::" + name
			name = e.Segments[len(e.Segments)-2]
		}
	}
	var fields []string
	var ops []mir.Operand
	for _, f := range e.Fields {
		op, _ := b.lowerExpr(f.Value)
		fields = append(fields, f.Name)
		ops = append(ops, op)
	}
	if e.Base != nil {
		op, _ := b.lowerExpr(e.Base)
		fields = append(fields, "..")
		ops = append(ops, op)
	}
	ty := types.Type(types.NamedOf(name))
	tmp := b.newTemp(ty, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: kind, Name: aggName, Fields: fields, Ops: ops}, Span: e.Sp})
	return b.operandFor(mir.PlaceOf(tmp), ty), ty
}

func (b *builder) lowerTupleExpr(e *ast.TupleExpr) (mir.Operand, types.Type) {
	if len(e.Elems) == 0 {
		return mir.Const{Text: "()", Ty: types.UnitType}, types.UnitType
	}
	var ops []mir.Operand
	var tys []types.Type
	for _, el := range e.Elems {
		op, ty := b.lowerExpr(el)
		ops = append(ops, op)
		tys = append(tys, ty)
	}
	ty := types.Type(&types.Tuple{Elems: tys})
	tmp := b.newTemp(ty, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: mir.AggTuple, Ops: ops}, Span: e.Sp})
	return b.operandFor(mir.PlaceOf(tmp), ty), ty
}

func (b *builder) lowerArrayExpr(e *ast.ArrayExpr) (mir.Operand, types.Type) {
	var ops []mir.Operand
	var elemTy types.Type = types.UnknownType
	for _, el := range e.Elems {
		op, ty := b.lowerExpr(el)
		ops = append(ops, op)
		elemTy = ty
	}
	if e.Repeat != nil {
		b.lowerExpr(e.Repeat)
	}
	ty := types.Type(&types.Array{Elem: elemTy, Len: len(e.Elems)})
	tmp := b.newTemp(ty, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: mir.AggArray, Ops: ops}, Span: e.Sp})
	return b.operandFor(mir.PlaceOf(tmp), ty), ty
}

func (b *builder) lowerClosure(e *ast.ClosureExpr) (mir.Operand, types.Type) {
	// Lower the closure body as a standalone pseudo-function so detectors
	// see inside it.
	name := b.closureName()
	fd := b.closureFuncDef(name, e)
	// Captured variables become trailing pseudo-parameters: names inside
	// the closure body resolve to real locals, and inter-procedural
	// analyses translate capture-rooted paths like ordinary arguments.
	// The closure aggregate carries one operand per capture (a move for
	// `move` closures, matching Rust ownership transfer into the closure
	// environment).
	captures := b.freeVars(e)
	var ops []mir.Operand
	for _, cap := range captures {
		id, _ := b.lookupVar(cap)
		l := b.body.Local(id)
		fd.Params = append(fd.Params, hir.ParamDef{Name: cap, Ty: l.Ty})
		if e.Move {
			ops = append(ops, b.operandFor(mir.PlaceOf(id), l.Ty))
		} else {
			ops = append(ops, mir.Copy{Place: mir.PlaceOf(id)})
		}
	}
	sub := newBuilder(b.prog, b.diags, fd, b.out)
	cbody := sub.lowerFn()
	cbody.Captures = captures
	capSet := map[string]bool{}
	for _, c := range captures {
		capSet[c] = true
	}
	for i := 1; i <= cbody.ArgCount && i < len(cbody.Locals); i++ {
		if capSet[cbody.Locals[i].Name] {
			cbody.Locals[i].IsCapture = true
		}
	}
	b.out[name] = cbody
	ty := types.NamedOf("Closure")
	tmp := b.newTemp(ty, e.Sp)
	b.emit(mir.Assign{Place: mir.PlaceOf(tmp), Rvalue: mir.Aggregate{Kind: mir.AggClosure, Name: name, Ops: ops}, Span: e.Sp})
	return b.operandFor(mir.PlaceOf(tmp), ty), ty
}

// freeVars returns the closure's free variables: single-segment paths used
// in its body that are not bound by its parameters or by any pattern inside
// it, yet resolve to a variable of the enclosing function. Order is first
// use, so capture lists are deterministic.
func (b *builder) freeVars(e *ast.ClosureExpr) []string {
	bound := map[string]bool{}
	for _, p := range e.Params {
		if p.Name != "" {
			bound[p.Name] = true
		}
		if p.Pat != nil {
			ast.Inspect(p.Pat, func(n ast.Node) {
				if bp, ok := n.(*ast.BindPat); ok {
					bound[bp.Name] = true
				}
			})
		}
	}
	ast.Inspect(e.Body, func(n ast.Node) {
		if bp, ok := n.(*ast.BindPat); ok {
			bound[bp.Name] = true
		}
	})
	var names []string
	seen := map[string]bool{}
	ast.Inspect(e.Body, func(n ast.Node) {
		pe, ok := n.(*ast.PathExpr)
		if !ok || !pe.IsLocal() {
			return
		}
		name := pe.Name()
		if name == "" || bound[name] || seen[name] {
			return
		}
		if _, ok := b.lookupVar(name); !ok {
			return
		}
		seen[name] = true
		names = append(names, name)
	})
	return names
}
