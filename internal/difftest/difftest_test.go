package difftest

import (
	"os"
	"strconv"
	"testing"

	"rustprobe/internal/gen"
)

// TestDifferential200Seeds is the tier-1 gate: the first 200 seeds must
// be panic-free, deterministic, with zero strict false negatives and
// zero false positives on clean variants. Race/lockorder misses would be
// reported as known-gaps; the acceptance bar keeps this log empty too on
// this fixed range.
func TestDifferential200Seeds(t *testing.T) {
	s := Run(0, 200)
	if s.Seeds != 200 {
		t.Fatalf("ran %d seeds, want 200", s.Seeds)
	}
	for _, v := range s.Violations() {
		t.Errorf("violation: %s", v)
	}
	for _, g := range s.KnownGaps {
		t.Logf("known gap: %s", g)
	}
	if t.Failed() {
		t.Log("\n" + s.Table())
	}
}

// TestDifferentialPrecise200Seeds is the precise-mode tier-1 gate: with
// the path-sensitive suite on, the same 200 seeds must additionally be
// free of the FP-prone templates' expected false positives — every clean
// variant, FP-prone or not, is a hard failure if reported.
func TestDifferentialPrecise200Seeds(t *testing.T) {
	s := RunMode(0, 200, true)
	if !s.Precise {
		t.Fatal("summary not marked precise")
	}
	for _, v := range s.Violations() {
		t.Errorf("violation: %s", v)
	}
	for _, g := range s.KnownGaps {
		t.Errorf("precise mode must not log expected false positives: %s", g)
	}
	if t.Failed() {
		t.Log("\n" + s.Table())
	}
}

// TestFPProneTemplatesSplitByMode pins the contract the three FP-shaped
// templates exist for: the default detectors report their clean variants
// (that is the documented imprecision), the precise detectors do not, and
// both modes still catch the buggy variants.
func TestFPProneTemplatesSplitByMode(t *testing.T) {
	cleanBySeed := map[string]int64{}
	buggyBySeed := map[string]int64{}
	for seed := int64(0); seed < 3000 && (len(cleanBySeed) < 2 || len(buggyBySeed) < 2); seed++ {
		p := gen.Generate(seed)
		if !p.FPProne {
			continue
		}
		if p.Buggy {
			if _, ok := buggyBySeed[p.Template]; !ok {
				buggyBySeed[p.Template] = seed
			}
		} else if _, ok := cleanBySeed[p.Template]; !ok {
			cleanBySeed[p.Template] = seed
		}
	}
	if len(cleanBySeed) == 0 {
		t.Fatal("no FP-prone clean variants generated in 3000 seeds")
	}
	for tmpl, seed := range cleanBySeed {
		p := gen.Generate(seed)
		def := RunProgramMode(p, nil, false)
		if def.PipelineErr != nil {
			t.Fatalf("%s clean default: %v", tmpl, def.PipelineErr)
		}
		if len(def.ExpectedFPs) == 0 {
			t.Errorf("%s clean variant (seed %d): default detectors were silent — template no longer FP-prone", tmpl, seed)
		}
		if len(def.FalsePositives) > 0 {
			t.Errorf("%s clean variant (seed %d): findings routed as hard FPs in default mode: %v", tmpl, seed, def.FalsePositives)
		}
		prec := RunProgramMode(p, nil, true)
		if prec.PipelineErr != nil {
			t.Fatalf("%s clean precise: %v", tmpl, prec.PipelineErr)
		}
		if len(prec.FalsePositives) > 0 || len(prec.ExpectedFPs) > 0 {
			t.Errorf("%s clean variant (seed %d): precise mode still reports: hard=%v expected=%v",
				tmpl, seed, prec.FalsePositives, prec.ExpectedFPs)
		}
	}
	for tmpl, seed := range buggyBySeed {
		p := gen.Generate(seed)
		for _, precise := range []bool{false, true} {
			v := RunProgramMode(p, nil, precise)
			if v.PipelineErr != nil {
				t.Fatalf("%s buggy precise=%v: %v", tmpl, precise, v.PipelineErr)
			}
			if v.FalseNegative {
				t.Errorf("%s buggy variant (seed %d, precise=%v): injected %s missed", tmpl, seed, precise, p.Kind)
			}
		}
	}
}

// TestBlockingTemplatesBothVariants pins the §6.1 blocking templates at
// the verdict level: every template's buggy variant must be caught by the
// static suite (strict — blocking is in strictFN) and every clean variant
// must be silent, for at least one generated seed per (template, variant).
func TestBlockingTemplatesBothVariants(t *testing.T) {
	type combo struct {
		template string
		buggy    bool
	}
	seeds := map[combo]int64{}
	for seed := int64(0); seed < 3000 && len(seeds) < 6; seed++ {
		p := gen.Generate(seed)
		if p.Kind != gen.KindBlocking {
			continue
		}
		c := combo{p.Template, p.Buggy}
		if _, ok := seeds[c]; !ok {
			seeds[c] = seed
		}
	}
	if len(seeds) < 6 {
		t.Fatalf("only %d of 6 blocking (template, variant) combos generated in 3000 seeds: %v", len(seeds), seeds)
	}
	for c, seed := range seeds {
		v := RunProgram(gen.Generate(seed), nil)
		if v.PipelineErr != nil {
			t.Errorf("%s buggy=%v (seed %d): %v", c.template, c.buggy, seed, v.PipelineErr)
			continue
		}
		if c.buggy && v.FalseNegative {
			t.Errorf("%s (seed %d): injected blocking bug missed", c.template, seed)
		}
		if !c.buggy && len(v.FalsePositives) > 0 {
			t.Errorf("%s clean (seed %d): %v", c.template, seed, v.FalsePositives)
		}
	}
}

// TestDifferentialExhaustive scales with DIFFTEST_SEEDS (default: skip)
// for the long run: DIFFTEST_SEEDS=5000 go test ./internal/difftest/ -run Exhaustive
func TestDifferentialExhaustive(t *testing.T) {
	n, err := strconv.ParseInt(os.Getenv("DIFFTEST_SEEDS"), 10, 64)
	if err != nil || n <= 0 {
		t.Skip("set DIFFTEST_SEEDS=<n> to run the exhaustive differential sweep")
	}
	s := Run(0, n)
	t.Log("\n" + s.Table())
	for _, v := range s.Violations() {
		t.Errorf("violation: %s", v)
	}
}

// Per-kind spot checks at the verdict level: a buggy program of every
// kind passes all cross-checks, as does its clean counterpart built from
// the same seed.
func TestVerdictPerKind(t *testing.T) {
	for _, k := range gen.Kinds {
		for _, buggy := range []bool{true, false} {
			p := gen.New(7, k, buggy)
			v := RunProgram(p, nil)
			if !v.OK() {
				t.Errorf("%s: PipelineErr=%v FN=%v FP=%v disc=%v nondet=%q",
					p, v.PipelineErr, v.FalseNegative, v.FalsePositives, v.Discrepancies, v.NonDeterministic)
			}
		}
	}
}

// The summary table must carry one row per injected kind so the
// EXPERIMENTS.md table and -selftest output stay complete.
func TestSummaryTableComplete(t *testing.T) {
	s := Run(0, 60)
	table := s.Table()
	for k := range s.PerKind {
		if !containsLine(table, string(k)) {
			t.Errorf("table is missing a row for %s:\n%s", k, table)
		}
	}
}

func containsLine(table, kind string) bool {
	for _, ln := range splitLines(table) {
		if len(ln) >= len(kind) && ln[:len(kind)] == kind {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
