// Package difftest is the differential detector-testing harness: it runs
// the full pipeline over internal/gen's labeled programs and cross-checks
// three ways.
//
//  1. Static detectors vs the injected label: a missed injection is a
//     false negative, any finding on a patched clean variant is a false
//     positive.
//  2. Static findings vs the interp dynamic oracle, for the kinds both
//     sides cover (use-after-free, double-lock, uninitialized-read):
//     every disagreement is logged with its reproducing seed.
//  3. Invariants: the pipeline never panics on generated programs, every
//     generated program is diagnostics-clean, and the same seed yields
//     byte-identical findings on re-analysis — both through a fresh
//     frontend run and through the engine's content-hash cache.
//
// The harness is the correctness backstop future perf and refactor PRs
// run against (a fast 200-seed tier-1 suite, an env-scaled exhaustive
// suite, and the CLIs' -selftest mode all call into Run).
package difftest

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rustprobe"
	"rustprobe/internal/detect"
	"rustprobe/internal/engine"
	"rustprobe/internal/gen"
	"rustprobe/internal/interp"
)

// interpKind maps injected kinds onto the dynamic oracle's error kinds,
// for the bug classes both sides cover. Lock-order inversions and data
// races need a second thread, which the single-threaded explorer cannot
// schedule — those stay static-only.
var interpKind = map[gen.Kind]interp.ErrorKind{
	gen.KindUseAfterFree: interp.ErrUseAfterFree,
	gen.KindDoubleLock:   interp.ErrDeadlock,
	gen.KindUninitRead:   interp.ErrUninitRead,
	gen.KindInvalidFree:  interp.ErrInvalidFree,
	gen.KindDoubleFree:   interp.ErrDoubleDrop,
}

// InterpCovers reports whether the dynamic oracle can witness the kind.
func InterpCovers(k gen.Kind) bool {
	_, ok := interpKind[k]
	return ok
}

// Verdict is the cross-checked outcome for one generated program.
type Verdict struct {
	Program  *gen.Program
	Findings []detect.Finding
	Rendered []string // position-resolved findings, the determinism unit
	Dynamic  []interp.DynamicError

	// PipelineErr records a panic or diagnostics on a generated program —
	// both are generator-or-pipeline bugs, never acceptable.
	PipelineErr error
	// FalseNegative: buggy variant with no static finding of the injected
	// kind.
	FalseNegative bool
	// FalsePositives: findings on a clean variant (all of them).
	FalsePositives []string
	// ExpectedFPs: findings on a clean variant of an FPProne template under
	// the default (paper-faithful) detectors. These are the documented
	// imprecision the precise mode exists to remove — logged as known gaps
	// in default mode, hard FalsePositives when precise is on.
	ExpectedFPs []string
	// Discrepancies: static-vs-dynamic disagreements, each tagged with
	// the seed and template.
	Discrepancies []string
	// NonDeterministic describes a re-run that produced different output.
	NonDeterministic string
}

// OK reports whether the program passed every cross-check.
func (v *Verdict) OK() bool {
	return v.PipelineErr == nil && !v.FalseNegative && len(v.FalsePositives) == 0 &&
		len(v.Discrepancies) == 0 && v.NonDeterministic == ""
}

func (v *Verdict) tag() string { return v.Program.String() }

// analyzeOnce runs the frontend and full static suite, converting panics
// into errors so one bad seed fails its verdict rather than the harness.
func analyzeOnce(p *gen.Program, precise bool) (res *rustprobe.Result, rendered []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline panic: %v", r)
		}
	}()
	res, err = rustprobe.AnalyzeSource("gen.rs", p.Source)
	if err != nil {
		return nil, nil, fmt.Errorf("generated program has diagnostics: %w", err)
	}
	res.Precise = precise
	for _, f := range res.Detect() {
		rendered = append(rendered, f.Format(res.Fset))
	}
	return res, rendered, nil
}

// runInterp explores every body, converting panics into errors.
func runInterp(res *rustprobe.Result, cfg interp.Config) (errs []interp.DynamicError, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("interp panic: %v", r)
		}
	}()
	for _, r := range interp.RunAll(res.Bodies, cfg) {
		errs = append(errs, r.Errors...)
	}
	return errs, nil
}

func renderDynamic(errs []interp.DynamicError) []string {
	out := make([]string, 0, len(errs))
	for _, e := range errs {
		out = append(out, e.String())
	}
	return out
}

// RunProgram cross-checks one generated program under the default
// detectors. The optional engine is used for the cached-replay determinism
// check; pass nil to skip it.
func RunProgram(p *gen.Program, eng *engine.Engine) *Verdict {
	return RunProgramMode(p, eng, false)
}

// RunProgramMode is RunProgram with an explicit detector mode; precise
// selects the path-sensitive (dropflow-refuting) suite, under which
// FP-prone clean variants must come back silent.
func RunProgramMode(p *gen.Program, eng *engine.Engine, precise bool) *Verdict {
	v := &Verdict{Program: p}

	res, rendered, err := analyzeOnce(p, precise)
	if err != nil {
		v.PipelineErr = err
		return v
	}
	v.Findings = res.Detect()
	v.Rendered = rendered

	// Invariant: same seed, fresh frontend => byte-identical findings.
	if _, rendered2, err2 := analyzeOnce(p, precise); err2 != nil {
		v.PipelineErr = fmt.Errorf("re-analysis failed: %w", err2)
		return v
	} else if d := diffStrings(rendered, rendered2); d != "" {
		v.NonDeterministic = "static re-run differs: " + d
	}

	// Oracle label check.
	staticHit := false
	for _, f := range v.Findings {
		if string(f.Kind) == string(p.Kind) {
			staticHit = true
			break
		}
	}
	if p.Buggy && !staticHit {
		v.FalseNegative = true
	}
	if !p.Buggy {
		if p.FPProne && !precise {
			v.ExpectedFPs = append(v.ExpectedFPs, rendered...)
		} else {
			v.FalsePositives = append(v.FalsePositives, rendered...)
		}
	}

	// Dynamic oracle cross-check.
	dyn, err := runInterp(res, interp.Config{})
	if err != nil {
		v.PipelineErr = err
		return v
	}
	v.Dynamic = dyn
	if dyn2, err2 := runInterp(res, interp.Config{}); err2 != nil {
		v.PipelineErr = err2
		return v
	} else if d := diffStrings(renderDynamic(dyn), renderDynamic(dyn2)); d != "" {
		v.NonDeterministic = "dynamic re-run differs: " + d
	}

	if want, covered := interpKind[p.Kind]; covered && p.Buggy && p.DynVisible {
		dynHit := false
		for _, e := range dyn {
			if e.Kind == want {
				dynHit = true
				break
			}
		}
		switch {
		case staticHit && !dynHit:
			v.Discrepancies = append(v.Discrepancies,
				fmt.Sprintf("static-only: %s found statically but the dynamic oracle saw no %s [%s]", p.Kind, want, v.tag()))
		case dynHit && !staticHit:
			v.Discrepancies = append(v.Discrepancies,
				fmt.Sprintf("dynamic-only: %s seen dynamically but no static finding [%s]", want, v.tag()))
		}
	}
	// A clean variant must be dynamically silent — but only for templates
	// interp can model faithfully: DynVisible=false shapes make the
	// valueless explorer walk infeasible paths (e.g. the drop arm and the
	// deref arm of exclusive branches in sequence), so their dynamic
	// errors are structural noise, not pipeline bugs.
	if !p.Buggy && p.DynVisible {
		for _, e := range dyn {
			v.Discrepancies = append(v.Discrepancies,
				fmt.Sprintf("dynamic error on clean variant: %s [%s]", e, v.tag()))
		}
	}

	// Engine cross-check: the cached replay must be a hit and identical
	// to the direct run.
	if eng != nil {
		if msg := checkEngine(eng, p, res, v.Findings, precise); msg != "" {
			v.NonDeterministic = msg
		}
	}
	return v
}

// checkEngine submits the program twice and compares both responses to
// the direct findings; the second submission must come from the cache.
func checkEngine(eng *engine.Engine, p *gen.Program, res *rustprobe.Result, direct []detect.Finding, precise bool) string {
	req := engine.Request{Files: map[string]string{"gen.rs": p.Source}, Precise: precise}
	want := make([]string, 0, len(direct))
	for _, f := range direct {
		pos := res.Fset.Position(f.Span.Start)
		want = append(want, fmt.Sprintf("%s:%d:%d [%s] %s", pos.File, pos.Line, pos.Column, f.Kind, f.Message))
	}
	for pass := 0; pass < 2; pass++ {
		resp, err := eng.Analyze(context.Background(), req)
		if err != nil {
			return fmt.Sprintf("engine pass %d failed: %v [%s]", pass, err, p)
		}
		got := make([]string, 0, len(resp.Findings))
		for _, f := range resp.Findings {
			got = append(got, fmt.Sprintf("%s:%d:%d [%s] %s", f.File, f.Line, f.Column, f.Kind, f.Message))
		}
		if d := diffStrings(want, got); d != "" {
			return fmt.Sprintf("engine pass %d differs from direct run: %s [%s]", pass, d, p)
		}
		if pass == 1 && !resp.CacheHit {
			return fmt.Sprintf("engine replay missed the cache [%s]", p)
		}
	}
	return ""
}

func diffStrings(a, b []string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("entry %d: %q vs %q", i, a[i], b[i])
		}
	}
	return ""
}

// KindStats aggregates label-oracle outcomes for one injected kind.
type KindStats struct {
	Buggy, Clean int // programs generated
	TP, FN, FP   int // vs the injection label
}

// Summary is the aggregate over a seed range.
type Summary struct {
	Seeds   int
	Precise bool // which detector mode produced these numbers
	PerKind map[gen.Kind]*KindStats

	// Hard failures (must be empty for the suite to pass).
	PipelineErrors   []string
	FalseNegatives   []string // uaf/doublelock/uninit only
	FalsePositives   []string
	NonDeterministic []string
	Discrepancies    []string

	// KnownGaps: missed race/lockorder injections — logged with seeds,
	// never silently dropped, but not hard failures (the static-only
	// detectors for these kinds are heuristic by design).
	KnownGaps []string
	// DynSkipped counts buggy programs of interp-covered kinds whose
	// template is marked DynVisible=false (static-only shapes, e.g.
	// inter-procedural sinks): the cross-check is skipped, not failed.
	DynSkipped int
}

// strictFN lists the kinds whose injections the static suite must never
// miss (the acceptance bar).
var strictFN = map[gen.Kind]bool{
	gen.KindUseAfterFree: true,
	gen.KindDoubleLock:   true,
	gen.KindUninitRead:   true,
	gen.KindInvalidFree:  true,
	gen.KindDoubleFree:   true,
	gen.KindBlocking:     true,
}

// Violations renders every hard failure.
func (s *Summary) Violations() []string {
	var out []string
	out = append(out, s.PipelineErrors...)
	out = append(out, s.FalseNegatives...)
	out = append(out, s.FalsePositives...)
	out = append(out, s.NonDeterministic...)
	out = append(out, s.Discrepancies...)
	return out
}

// add folds one verdict into the summary.
func (s *Summary) add(v *Verdict) {
	s.Seeds++
	ks := s.PerKind[v.Program.Kind]
	if ks == nil {
		ks = &KindStats{}
		s.PerKind[v.Program.Kind] = ks
	}
	if v.Program.Buggy {
		ks.Buggy++
	} else {
		ks.Clean++
	}
	if v.PipelineErr != nil {
		s.PipelineErrors = append(s.PipelineErrors, fmt.Sprintf("%v [%s]", v.PipelineErr, v.tag()))
		return
	}
	switch {
	case v.FalseNegative:
		ks.FN++
		msg := fmt.Sprintf("false negative: injected %s not found [%s]", v.Program.Kind, v.tag())
		if strictFN[v.Program.Kind] {
			s.FalseNegatives = append(s.FalseNegatives, msg)
		} else {
			s.KnownGaps = append(s.KnownGaps, msg)
		}
	case v.Program.Buggy:
		ks.TP++
	}
	if len(v.FalsePositives) > 0 {
		ks.FP++
		for _, fp := range v.FalsePositives {
			s.FalsePositives = append(s.FalsePositives, fmt.Sprintf("false positive on clean variant: %s [%s]", fp, v.tag()))
		}
	}
	if len(v.ExpectedFPs) > 0 {
		ks.FP++
		for _, fp := range v.ExpectedFPs {
			s.KnownGaps = append(s.KnownGaps, fmt.Sprintf("expected false positive (default mode): %s [%s]", fp, v.tag()))
		}
	}
	if v.NonDeterministic != "" {
		s.NonDeterministic = append(s.NonDeterministic, v.NonDeterministic)
	}
	if !v.Program.DynVisible && InterpCovers(v.Program.Kind) {
		s.DynSkipped++
	}
	s.Discrepancies = append(s.Discrepancies, v.Discrepancies...)
}

// Run cross-checks seeds [lo, hi) under the default detectors and
// aggregates. It builds a private engine (small pool, caching on) for the
// cached-replay invariant.
func Run(lo, hi int64) *Summary {
	return RunMode(lo, hi, false)
}

// RunMode is Run with an explicit detector mode. In precise mode every
// clean-variant finding — including the FP-prone templates' — is a hard
// false positive: the path-sensitive suite has no excuse.
func RunMode(lo, hi int64, precise bool) *Summary {
	eng := engine.New(engine.Config{Workers: 2, QueueDepth: 16, CacheCapacity: 64})
	defer eng.Close()
	return RunWithEngineMode(lo, hi, eng, precise)
}

// RunWithEngine is Run against a caller-owned engine, so the daemon's
// -selftest exercises the exact pool/cache configuration it will serve
// with. Pass nil to skip the engine cross-check.
func RunWithEngine(lo, hi int64, eng *engine.Engine) *Summary {
	return RunWithEngineMode(lo, hi, eng, false)
}

// RunWithEngineMode is RunWithEngine with an explicit detector mode.
func RunWithEngineMode(lo, hi int64, eng *engine.Engine, precise bool) *Summary {
	s := &Summary{Precise: precise, PerKind: map[gen.Kind]*KindStats{}}
	for seed := lo; seed < hi; seed++ {
		s.add(RunProgramMode(gen.Generate(seed), eng, precise))
	}
	return s
}

// Table renders the per-detector differential results (the EXPERIMENTS
// "Differential evaluation" table and the -selftest report).
func (s *Summary) Table() string {
	var b strings.Builder
	mode := "default"
	if s.Precise {
		mode = "precise"
	}
	fmt.Fprintf(&b, "differential evaluation over %d seeded programs (%s detectors)\n", s.Seeds, mode)
	fmt.Fprintf(&b, "%-24s %6s %6s %4s %4s %4s\n", "injected kind", "buggy", "clean", "TP", "FN", "FP")
	kinds := make([]string, 0, len(s.PerKind))
	for k := range s.PerKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := s.PerKind[gen.Kind(k)]
		fmt.Fprintf(&b, "%-24s %6d %6d %4d %4d %4d\n", k, ks.Buggy, ks.Clean, ks.TP, ks.FN, ks.FP)
	}
	if s.DynSkipped > 0 {
		fmt.Fprintf(&b, "dynamic cross-check skipped for %d static-only (DynVisible=false) programs\n", s.DynSkipped)
	}
	if len(s.KnownGaps) > 0 {
		fmt.Fprintf(&b, "known gaps (logged, non-fatal):\n")
		for _, g := range s.KnownGaps {
			fmt.Fprintf(&b, "  %s\n", g)
		}
	}
	for _, v := range s.Violations() {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}
