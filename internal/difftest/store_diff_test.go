package difftest

import (
	"testing"

	"rustprobe/internal/engine"
	"rustprobe/internal/store"
)

// TestStoreBackedEngineDifferential runs the differential harness through
// an engine with the persistent result store underneath its LRU, twice
// over the same seeds with an engine restart in between. The first pass
// populates the store; the second is served from disk (fresh engine, so
// every request is an LRU miss). Both passes must be violation-free —
// i.e. findings decoded from store entries are indistinguishable from
// findings computed by the pipeline — which gates the store's encode/
// decode round-trip and version keying against every detector at once.
func TestStoreBackedEngineDifferential(t *testing.T) {
	const seedCount = 50
	dir := t.TempDir()

	run := func(pass string) *Summary {
		st, err := store.Open(dir, engine.StoreVersion())
		if err != nil {
			t.Fatalf("%s: open store: %v", pass, err)
		}
		eng := engine.New(engine.Config{Workers: 2, QueueDepth: 16, CacheCapacity: 64, Store: st})
		defer eng.Close()
		s := RunWithEngine(0, seedCount, eng)
		if v := s.Violations(); len(v) > 0 {
			t.Fatalf("%s pass: %d violation(s), first: %s", pass, len(v), v[0])
		}
		return s
	}

	run("cold")

	// Restarted engine, same store directory: the harness's engine-vs-
	// direct cross-check now compares disk-served results against fresh
	// pipeline runs.
	st, err := store.Open(dir, engine.StoreVersion())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Workers: 2, QueueDepth: 16, CacheCapacity: 64, Store: st})
	defer eng.Close()
	s := RunWithEngine(0, seedCount, eng)
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("warm pass: %d violation(s), first: %s", len(v), v[0])
	}
	if stats := st.Stats(); stats.Hits == 0 {
		t.Fatalf("warm pass never hit the store: %+v", stats)
	}
}
