package detect

import (
	"strings"
	"testing"

	"rustprobe/internal/hir"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
)

func TestFindingFormat(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("lib.rs", "fn main() {\n    boom();\n}\n")
	sp := source.NewSpan(f.Base+16, f.Base+22)
	fd := Finding{
		Kind:     KindDoubleLock,
		Severity: SeverityError,
		Function: "main",
		Span:     sp,
		Message:  "second lock of \"mu\"",
		Notes:    []string{"first guard still live"},
	}
	out := fd.Format(fset)
	for _, want := range []string{"lib.rs:2:5", "error", "double-lock", "second lock", "(in main)", "note: first guard"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Kind: KindUseAfterFree, Span: source.NewSpan(50, 60)},
		{Kind: KindDoubleLock, Span: source.NewSpan(10, 20)},
		{Kind: KindInvalidFree, Span: source.NewSpan(10, 20)},
	}
	SortFindings(fs)
	if fs[0].Span.Start != 10 || fs[2].Span.Start != 50 {
		t.Errorf("order: %+v", fs)
	}
	// Ties break by kind.
	if fs[0].Kind > fs[1].Kind {
		t.Errorf("tie-break wrong: %s before %s", fs[0].Kind, fs[1].Kind)
	}
}

// TestContextPointsToUnknownFunction: an unresolved callee name must get
// an empty result, not a nil-body dereference panic inside the analysis.
func TestContextPointsToUnknownFunction(t *testing.T) {
	prog := hir.NewProgram(source.NewFileSet())
	ctx := NewContext(prog, map[string]*mir.Body{})
	r := ctx.PointsTo("does_not_exist")
	if r == nil {
		t.Fatal("nil result for unknown function")
	}
	if len(r.PointsTo) != 0 {
		t.Errorf("unknown function has points-to facts: %v", r.PointsTo)
	}
	if tg := r.Targets(0); tg != nil {
		t.Errorf("Targets on empty result = %v", tg)
	}
}

func TestContextPointsToCached(t *testing.T) {
	prog := hir.NewProgram(source.NewFileSet())
	body := &mir.Body{Func: &hir.FuncDef{Qualified: "f"}}
	body.NewLocal("", nil, false, source.Span{})
	blk := body.NewBlock()
	blk.Term = mir.Return{}
	ctx := NewContext(prog, map[string]*mir.Body{"f": body})
	r1 := ctx.PointsTo("f")
	r2 := ctx.PointsTo("f")
	if r1 != r2 {
		t.Error("points-to result not cached")
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityWarning.String() != "warning" || SeverityError.String() != "error" {
		t.Error("severity strings wrong")
	}
}
