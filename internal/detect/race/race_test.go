package race

import (
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func dump(fs []detect.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(string(f.Kind) + "|" + f.Function + ": " + f.Message + "\n")
	}
	return b.String()
}

// Two spawned closures mutate the same captured shared structure with no
// lock: the canonical §6.2 shape.
func TestRaceTwoSpawnsOnSharedField(t *testing.T) {
	fs := analyze(t, `
struct Stats { hits: u64 }
fn tally(stats: Arc<Stats>) {
    let a = Arc::clone(&stats);
    let b = Arc::clone(&stats);
    thread::spawn(move || { a.hits += 1; });
    thread::spawn(move || { b.hits += 1; });
}
`)
	if len(fs) == 0 {
		t.Fatalf("expected a race on stats.hits, got none")
	}
	for _, f := range fs {
		if f.Function != "tally" {
			t.Errorf("finding in %s, want tally:\n%s", f.Function, dump(fs))
		}
	}
}

// The spawner keeps writing after the spawn: spawner-vs-thread race.
func TestRaceSpawnerContinuation(t *testing.T) {
	fs := analyze(t, `
struct Shared { n: u64 }
fn run(s: Arc<Shared>) {
    let h = Arc::clone(&s);
    thread::spawn(move || { h.n += 1; });
    s.n += 1;
}
`)
	if len(fs) == 0 {
		t.Fatal("expected a spawner-vs-thread race on s.n")
	}
}

// A static mut incremented from a spawned thread and the spawner.
func TestRaceStaticMut(t *testing.T) {
	fs := analyze(t, `
static mut COUNTER: u64 = 0;
fn bump() {
    thread::spawn(move || { unsafe { COUNTER += 1; } });
    unsafe { COUNTER += 1; }
}
`)
	if len(fs) == 0 {
		t.Fatal("expected a race on static COUNTER")
	}
}

// One closure spawned in a loop races with its own other instances.
func TestRaceSpawnInLoop(t *testing.T) {
	fs := analyze(t, `
struct Queue { items: u64 }
fn fan_out(q: Arc<Queue>) {
    for i in 0..4 {
        let h = Arc::clone(&q);
        thread::spawn(move || { h.items += 1; });
    }
}
`)
	if len(fs) == 0 {
		t.Fatal("expected a race between loop-spawned instances")
	}
}

// Negative: both sides lock the mutex around the access.
func TestNoRaceWhenLockProtected(t *testing.T) {
	fs := analyze(t, `
struct State { n: u64 }
fn protected(m: Arc<Mutex<State>>) {
    let h = Arc::clone(&m);
    thread::spawn(move || {
        let mut g = h.lock().unwrap();
        g.n += 1;
    });
    let mut g2 = m.lock().unwrap();
    g2.n += 1;
}
`)
	if len(fs) != 0 {
		t.Fatalf("lock-protected accesses flagged:\n%s", dump(fs))
	}
}

// Negative: Rc never crosses a thread boundary — single-threaded sharing
// is not a race.
func TestNoRaceSingleThreadedRc(t *testing.T) {
	fs := analyze(t, `
struct Doc { edits: u64 }
fn single(doc: Rc<Doc>) {
    let alias = Rc::clone(&doc);
    alias.edits += 1;
    doc.edits += 1;
}
`)
	if len(fs) != 0 {
		t.Fatalf("single-threaded Rc flagged:\n%s", dump(fs))
	}
}

// Negative: the guard moves into the spawned closure; the thread works on
// locked data while the spawner never touches it again.
func TestNoRaceGuardMovedAcrossSpawn(t *testing.T) {
	fs := analyze(t, `
struct Buf { data: u64 }
fn handoff(m: Arc<Mutex<Buf>>) {
    let g = m.lock().unwrap();
    thread::spawn(move || {
        g.data += 1;
    });
}
`)
	if len(fs) != 0 {
		t.Fatalf("guard handoff flagged:\n%s", dump(fs))
	}
}

// Negative: atomics synchronize; fetch_add from two threads is not a race.
func TestNoRaceAtomics(t *testing.T) {
	fs := analyze(t, `
struct Metrics { hits: AtomicU64 }
fn count(m: Arc<Metrics>) {
    let h = Arc::clone(&m);
    thread::spawn(move || { h.hits.fetch_add(1, Ordering::SeqCst); });
    m.hits.fetch_add(1, Ordering::SeqCst);
}
`)
	if len(fs) != 0 {
		t.Fatalf("atomic accesses flagged:\n%s", dump(fs))
	}
}

// Negative: accesses before the spawn are ordered by the spawn edge.
func TestNoRacePreSpawnAccess(t *testing.T) {
	fs := analyze(t, `
struct Cfg { n: u64 }
fn setup(c: Arc<Cfg>) {
    c.n = 4;
    let h = Arc::clone(&c);
    thread::spawn(move || { let v = h.n; });
}
`)
	if len(fs) != 0 {
		t.Fatalf("pre-spawn write flagged:\n%s", dump(fs))
	}
}

// Inter-procedural: the write happens in a helper the closure calls, with
// the lockset computed through the call chain on the callee side only —
// the spawner side takes no lock, so the race remains.
func TestRaceThroughHelperCall(t *testing.T) {
	fs := analyze(t, `
struct Book { entries: u64 }
fn append(b: Arc<Book>) {
    b.entries += 1;
}
fn run(book: Arc<Book>) {
    let h = Arc::clone(&book);
    thread::spawn(move || { append(h); });
    book.entries += 1;
}
`)
	if len(fs) == 0 {
		t.Fatal("expected race through helper call")
	}
}

// Negative: the mutex lives in a struct field. The receiver read at the
// lock() call site resolves to the same canonical path the guard derefs
// do, and must not count as an unguarded access to that field.
func TestNoRaceFieldMutexBothSides(t *testing.T) {
	fs := analyze(t, `
struct State { jobs: Mutex<u64> }
fn worker(s: Arc<State>) {
    let h = Arc::clone(&s);
    thread::spawn(move || {
        let mut g = h.jobs.lock().unwrap();
        *g += 1;
    });
    let mut g2 = s.jobs.lock().unwrap();
    *g2 += 1;
}
`)
	if len(fs) != 0 {
		t.Fatalf("field-mutex guarded accesses flagged:\n%s", dump(fs))
	}
}

// Negative: with two spawns, the spawner's post-spawn accesses are
// program-ordered on one thread and must not be paired against themselves
// (the threads only read, and read/read never races).
func TestNoRaceSpawnerSelfPair(t *testing.T) {
	fs := analyze(t, `
struct Pair { a: u64, b: u64 }
fn run(p: Arc<Pair>) {
    let h1 = Arc::clone(&p);
    let h2 = Arc::clone(&p);
    thread::spawn(move || { let x = h1.a; });
    thread::spawn(move || { let y = h2.a; });
    p.b += 1;
    p.b += 1;
}
`)
	if len(fs) != 0 {
		t.Fatalf("spawner paired against itself:\n%s", dump(fs))
	}
}

// Two spawns where the spawner's post-spawn write to the root captured by
// the FIRST spawn comes after the second spawn: the escape set must be
// complete before continuations are filtered, and the write still races
// with the first thread.
func TestRaceContinuationAfterSecondSpawn(t *testing.T) {
	fs := analyze(t, `
struct A { n: u64 }
struct B { m: u64 }
fn run(a: Arc<A>, b: Arc<B>) {
    let h1 = Arc::clone(&a);
    thread::spawn(move || { h1.n += 1; });
    let h2 = Arc::clone(&b);
    thread::spawn(move || { let v = h2.m; });
    a.n += 1;
}
`)
	if len(fs) == 0 {
		t.Fatal("expected race on a.n between first thread and post-spawn write")
	}
	for _, f := range fs {
		if strings.Contains(f.Message, "\"b.m\"") {
			t.Errorf("read-only b.m flagged:\n%s", dump(fs))
		}
	}
}

// Inter-procedural negative: both sides reach the write through a helper
// that locks first.
func TestNoRaceThroughLockingHelper(t *testing.T) {
	fs := analyze(t, `
struct Ledger { total: u64 }
fn add(m: Arc<Mutex<Ledger>>) {
    let mut g = m.lock().unwrap();
    g.total += 1;
}
fn run(led: Arc<Mutex<Ledger>>) {
    let h = Arc::clone(&led);
    thread::spawn(move || { add(h); });
    add(led);
}
`)
	if len(fs) != 0 {
		t.Fatalf("locking helper flagged:\n%s", dump(fs))
	}
}
