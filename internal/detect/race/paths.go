package race

import (
	"strings"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/mir"
	"rustprobe/internal/pointsto"
	"rustprobe/internal/summary"
	"rustprobe/internal/types"
)

// resolver renders MIR places of one function as canonical source-level
// path strings — the same namespace the lock identities already use
// ("self.client", "queue", "static COUNTER") — so accesses made through
// different handles to the same storage compare equal. It layers three
// alias sources:
//
//   - pointee: a symbolic-path alias map seeded by Ref/AddrOf and forwarded
//     through Arc::clone / .clone() on handle types / unwrap, so
//     `let svc = Arc::clone(&service)` makes svc-rooted paths
//     service-rooted;
//   - guards: a guard-holding local resolves to its lock's path, so
//     `*queue.lock().unwrap()` and the other thread's copy unify on
//     "queue";
//   - pointsto: locals whose storage root is known from internal/pointsto
//     fall back to the root local's name when the symbolic map has no
//     entry.
type resolver struct {
	body    *mir.Body
	guards  map[mir.LocalID]doublelock.Guard
	pts     *pointsto.Result
	pointee map[mir.LocalID]string
	byName  map[string]mir.LocalID
}

func newResolver(ctx *detect.Context, name string, body *mir.Body, guards map[mir.LocalID]doublelock.Guard) *resolver {
	r := &resolver{
		body:    body,
		guards:  guards,
		pts:     ctx.PointsTo(name),
		pointee: map[mir.LocalID]string{},
		byName:  map[string]mir.LocalID{},
	}
	for _, l := range body.Locals {
		if l.Name != "" {
			if _, dup := r.byName[l.Name]; !dup {
				r.byName[l.Name] = l.ID
			}
		}
	}
	r.propagate()
	return r
}

// canonName resolves a variable name to its canonical root path (following
// the alias map, so "svc" canonicalizes to "service" after
// `let svc = Arc::clone(&service)`). Unknown names return "".
func (r *resolver) canonName(name string) string {
	l, ok := r.byName[name]
	if !ok {
		return ""
	}
	return r.rootPath(l)
}

// canonPath canonicalizes a source-level path (like a Call.RecvPath) by
// rewriting its root through the alias map.
func (r *resolver) canonPath(path string) string {
	path = summary.NormalizePath(path)
	root := pathRoot(path)
	if strings.HasPrefix(root, "static ") {
		return path
	}
	if canon := r.canonName(root); canon != "" && canon != root {
		return rewriteRoot(path, root, canon)
	}
	return path
}

// handleLike reports whether a value of type t is a shared handle: copying
// or cloning it yields another name for the same storage.
func handleLike(t types.Type) bool {
	if types.IsPointerLike(t) {
		return true
	}
	n, ok := t.(*types.Named)
	return ok && (n.Name == "Arc" || n.Name == "Rc")
}

// propagate fills the pointee map to a fixpoint. First assignment wins
// (deterministic in block/statement order), mirroring guard-origin
// propagation: a local that may alias two different paths keeps the first,
// an under-approximation that favors precision over recall.
func (r *resolver) propagate() {
	set := func(l mir.LocalID, p string) bool {
		if p == "" {
			return false
		}
		if _, ok := r.pointee[l]; ok {
			return false
		}
		r.pointee[l] = p
		return true
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range r.body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				dest := as.Place.Local
				switch rv := as.Rvalue.(type) {
				case mir.Ref:
					if set(dest, r.placePath(rv.Place)) {
						changed = true
					}
				case mir.AddrOf:
					if set(dest, r.placePath(rv.Place)) {
						changed = true
					}
				case mir.Use:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if p, has := r.pointee[pl.Local]; has && set(dest, p) {
							changed = true
						}
					}
				case mir.Cast:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if p, has := r.pointee[pl.Local]; has && set(dest, p) {
							changed = true
						}
					}
				}
			}
			c, ok := blk.Term.(mir.Call)
			if !ok || !c.Dest.IsLocal() {
				continue
			}
			switch c.Intrinsic {
			case mir.IntrinsicArcClone, mir.IntrinsicUnwrap, mir.IntrinsicCondvarWait:
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok {
						if set(c.Dest.Local, r.valuePath(pl)) {
							changed = true
						}
					}
				}
			case mir.IntrinsicClone:
				// .clone() duplicates the value; only handle types (Arc,
				// Rc, references) keep the clone aliased to the original
				// storage. Deep clones of owned data are fresh.
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok {
						if handleLike(r.localType(pl.Local)) {
							if set(c.Dest.Local, r.valuePath(pl)) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

func (r *resolver) localType(l mir.LocalID) types.Type {
	if int(l) < len(r.body.Locals) {
		return r.body.Locals[l].Ty
	}
	return types.UnknownType
}

// rootPath resolves the canonical path of a local's storage-or-referent:
// a guard local names its lock's contents, a handle/reference names what it
// points at, a named local names itself. Temporaries with no alias
// information resolve to "" and their accesses are dropped.
func (r *resolver) rootPath(l mir.LocalID) string {
	if g, ok := r.guards[l]; ok {
		return g.Lock
	}
	if p, ok := r.pointee[l]; ok {
		return p
	}
	loc := r.body.Local(l)
	if loc.Name != "" {
		return loc.Name
	}
	// Last resort: a single known points-to root lends the temp its name.
	if targets := r.pts.Targets(l); len(targets) == 1 {
		for t := range targets {
			if t != l && int(t) < len(r.body.Locals) && r.body.Locals[t].Name != "" {
				return r.body.Locals[t].Name
			}
		}
	}
	return ""
}

// placePath renders a place as a canonical path. Dereferences are elided —
// a deref never changes which abstract location a path denotes, only how
// it is reached — matching summary.NormalizePath's treatment of lock ids.
func (r *resolver) placePath(p mir.Place) string {
	root := r.rootPath(p.Local)
	if root == "" {
		return ""
	}
	var b strings.Builder
	b.WriteString(root)
	for _, pr := range p.Proj {
		switch pr := pr.(type) {
		case mir.FieldProj:
			b.WriteString(".")
			b.WriteString(pr.Name)
		case mir.IndexProj:
			b.WriteString("[_]")
		}
	}
	return b.String()
}

// valuePath is the path denoted by the *value* stored at a place: for a
// bare local that's its referent (or itself, for named locals); with
// projections it is the projected path (our paths conflate a reference
// with its target, like the lock-id scheme).
func (r *resolver) valuePath(p mir.Place) string {
	return r.placePath(p)
}

// pathRoot returns the leading segment of a canonical path ("self.a.b" →
// "self", "static C" → "static C", "jobs[_]" → "jobs").
func pathRoot(p string) string {
	if rest, ok := strings.CutPrefix(p, "static "); ok {
		if i := strings.IndexAny(rest, ".["); i >= 0 {
			return "static " + rest[:i]
		}
		return p
	}
	if i := strings.IndexAny(p, ".["); i >= 0 {
		return p[:i]
	}
	return p
}

// rewriteRoot replaces the root segment of path with to.
func rewriteRoot(path, root, to string) string {
	if path == root {
		return to
	}
	return to + path[len(root):]
}

// overlap reports whether two canonical paths may name overlapping
// storage: equal, or one a field/index extension of the other.
func overlap(a, b string) bool {
	if a == b {
		return true
	}
	if strings.HasPrefix(a, b) && (a[len(b)] == '.' || a[len(b)] == '[') {
		return true
	}
	if strings.HasPrefix(b, a) && (b[len(a)] == '.' || b[len(a)] == '[') {
		return true
	}
	return false
}

// pathDepth counts path segments, bounding translated paths through
// recursive call chains.
func pathDepth(p string) int {
	return 1 + strings.Count(p, ".") + strings.Count(p, "[")
}
