// Package race implements a static data-race detector for the paper's
// §6.2 non-blocking bugs: unsynchronized accesses to memory shared across
// a thread::spawn boundary. Three cooperating analyses feed the report:
//
//  1. a thread-escape analysis marks the abstract places reachable from
//     spawn-closure captures (recorded by internal/lower as capture
//     pseudo-arguments), from Arc::clone aliases, and from `static mut`
//     items, layered on the per-function points-to results;
//  2. an inter-procedural lockset computation — which locks are held at
//     each MIR statement — runs as a monotone transfer function on the
//     internal/summary SCC fixpoint, reusing the double-lock detector's
//     guard-lifetime machinery and extending it across calls;
//  3. a conflicting-access pairer reports two accesses to the same escaped
//     place, at least one a write, from distinct spawn contexts, whose
//     locksets share no common lock.
//
// Known approximations (documented in DESIGN.md): join() establishing
// happens-before is ignored (a post-spawn access in the spawner is assumed
// concurrent with the thread), RefCell borrows count as locks, and paths
// conflate a reference with its referent exactly like the lock-id scheme.
package race

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/cfg"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/summary"
)

// maxPathDepth bounds translated paths through recursive call chains, the
// same role the summary iteration cap plays for lock ids.
const maxPathDepth = 8

// Access is one shared-memory access in a function's summary, expressed
// in that function's namespace.
type Access struct {
	Path     string
	Write    bool
	Interior bool // mutation via an unknown &self-style method (push, insert, ...)
	Fn       string
	Span     source.Span
	At       mir.BlockID // block in the summary owner's body, for post-spawn filtering
	Locks    map[string]doublelock.Mode
}

func (a *Access) key() string {
	return fmt.Sprintf("%s|%t|%s|%d|%d", a.Path, a.Write, a.Fn, a.Span.Start, a.At)
}

func (a *Access) clone() *Access {
	c := *a
	c.Locks = make(map[string]doublelock.Mode, len(a.Locks))
	for k, v := range a.Locks {
		c.Locks[k] = v
	}
	return &c
}

// accSummary is a function's access set keyed by Access.key. The lattice
// is monotone: the key set only grows and the per-key locksets only shrink
// (intersection), so the SCC fixpoint terminates.
type accSummary map[string]*Access

// mutatingMethods names container methods that mutate their receiver; a
// call through an unknown callee with such a name is an interior write.
// Atomic operations (store, fetch_add, swap, ...) are deliberately absent:
// they synchronize.
var mutatingMethods = map[string]bool{
	"push": true, "push_back": true, "push_front": true, "push_str": true,
	"insert": true, "remove": true, "pop": true, "pop_front": true,
	"clear": true, "truncate": true, "extend": true, "append": true,
	"set": true, "replace": true, "set_len": true, "write_all": true,
	"retain": true, "sort": true, "drain": true,
}

// Detector is the data-race detector.
type Detector struct{}

// New returns the detector with default configuration.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "race" }

type spawnSite struct {
	at      mir.BlockID
	target  mir.BlockID
	closure string
	span    source.Span
}

type callSite struct {
	callee   string
	at       mir.BlockID
	argPaths []string
	held     map[string]doublelock.Mode
}

// funcInfo caches the per-function analyses shared by the summary
// transfer (which the SCC fixpoint re-runs) and the pairing phase.
type funcInfo struct {
	name   string
	body   *mir.Body
	g      *cfg.Graph
	res    *resolver
	own    []*Access
	calls  []callSite
	spawns []spawnSite
}

// carry is the detector's cached cross-round state: per-function facts
// keyed by body identity plus the last summary fixpoint for the SCC warm
// start. See detect.Incremental for the reuse contract.
type carry struct {
	infos map[string]*funcInfo
	sums  *summary.Result[accSummary]
}

// FactCount implements detect.FactCounter.
func (c *carry) FactCount() int { return len(c.infos) }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	out, _, _ := d.RunIncremental(ctx, nil, nil)
	return out
}

// RunIncremental implements detect.Incremental: per-function fact
// extraction is skipped for clean functions whose cached facts were
// derived from the exact body object in ctx.Bodies, and the summary
// fixpoint warm-starts from the prior round. The pairing phase always
// re-runs in full — it is the cheap, global part.
func (d *Detector) RunIncremental(ctx *detect.Context, prior detect.Carry, dirty map[string]bool) ([]detect.Finding, detect.Carry, int) {
	prev, _ := prior.(*carry)
	infos := map[string]*funcInfo{}
	recompute := map[string]bool{}
	reused := 0
	var warm *summary.Result[accSummary]
	if prev != nil {
		warm = prev.sums
	}
	for _, name := range ctx.Graph.Names() {
		if prev != nil && !dirty[name] {
			if old := prev.infos[name]; old != nil && old.body == ctx.Bodies[name] {
				infos[name] = old
				reused++
				continue
			}
		}
		infos[name] = d.analyze(ctx, name)
		recompute[name] = true
	}
	detect.CloseOverCallers(ctx.Graph, recompute)
	sums := d.buildSummaries(ctx, infos, warm, recompute)

	var out []detect.Finding
	seen := map[string]bool{}
	for _, name := range ctx.Graph.Names() {
		out = append(out, d.pair(ctx, infos, sums.Summaries, name, seen)...)
	}
	detect.SortFindings(out)
	return out, &carry{infos: infos, sums: sums}, reused
}

// analyze collects the intra-procedural facts of one function: its own
// accesses with locksets, its resolved call sites, and its spawn sites.
func (d *Detector) analyze(ctx *detect.Context, name string) *funcInfo {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	guards := doublelock.Guards(body)
	live := doublelock.LiveGuards(body, g, guards)
	res := newResolver(ctx, name, body, guards)
	info := &funcInfo{name: name, body: body, g: g, res: res}

	closureOf := closureLocals(body)

	heldAt := func(blk mir.BlockID, idx int) map[string]doublelock.Mode {
		held := doublelock.Held(live.StateAt(blk, idx), guards)
		canon := make(map[string]doublelock.Mode, len(held))
		for id, m := range held {
			canon[res.canonPath(id)] = m
		}
		return canon
	}
	record := func(pl mir.Place, write, interior bool, sp source.Span, blk mir.BlockID, held map[string]doublelock.Mode) {
		if len(pl.Proj) == 0 && !isStaticLocal(body, pl.Local) {
			return // a bare binding is not a shared-memory access
		}
		p := res.placePath(pl)
		if p == "" || pathDepth(p) > maxPathDepth {
			return
		}
		info.own = append(info.own, &Access{
			Path: p, Write: write, Interior: interior,
			// Every Access owns its lock map: the held map is shared by all
			// accesses recorded at one statement, and summary merging must
			// never reach back into a sibling's (or info.own's) lockset.
			Fn: name, Span: sp, At: blk, Locks: cloneLocks(held),
		})
	}
	readOperand := func(op mir.Operand, sp source.Span, blk mir.BlockID, held map[string]doublelock.Mode) {
		if pl, ok := mir.OperandPlace(op); ok {
			record(pl, false, false, sp, blk, held)
		}
	}

	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		for i, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			held := heldAt(blk.ID, i)
			record(as.Place, true, false, as.Span, blk.ID, held)
			switch rv := as.Rvalue.(type) {
			case mir.Use:
				readOperand(rv.X, as.Span, blk.ID, held)
			case mir.Cast:
				readOperand(rv.X, as.Span, blk.ID, held)
			case mir.BinaryOp:
				readOperand(rv.L, as.Span, blk.ID, held)
				readOperand(rv.R, as.Span, blk.ID, held)
			case mir.UnaryOp:
				readOperand(rv.X, as.Span, blk.ID, held)
			case mir.Aggregate:
				for _, op := range rv.Ops {
					readOperand(op, as.Span, blk.ID, held)
				}
			case mir.Discriminant:
				record(rv.Place, false, false, as.Span, blk.ID, held)
			}
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		held := heldAt(blk.ID, len(blk.Stmts))
		if c.Intrinsic == mir.IntrinsicSpawn {
			for _, a := range c.Args {
				pl, ok := mir.OperandPlace(a)
				if !ok {
					continue
				}
				if cn, isClosure := closureOf[pl.Local]; isClosure {
					info.spawns = append(info.spawns, spawnSite{
						at: blk.ID, target: c.Target, closure: cn, span: c.Span,
					})
					break
				}
			}
			continue
		}
		switch c.Intrinsic {
		case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite, mir.IntrinsicTryLock:
			// An acquire does read the mutex/rwlock value, but that read is
			// serialized by the lock's own internal synchronization — and its
			// receiver path is the very lock id the guarded accesses resolve
			// through, so recording it would flag correctly-guarded code.
		default:
			for _, a := range c.Args {
				readOperand(a, c.Span, blk.ID, held)
			}
		}
		callee := resolvedCallee(ctx, c)
		if callee != "" {
			cs := callSite{callee: callee, at: blk.ID, held: held}
			for _, a := range c.Args {
				p := ""
				if pl, ok := mir.OperandPlace(a); ok {
					p = res.valuePath(pl)
				}
				cs.argPaths = append(cs.argPaths, p)
			}
			info.calls = append(info.calls, cs)
		} else if c.Intrinsic == mir.IntrinsicNone && c.RecvPath != "" && mutatingMethods[methodName(c.Callee)] {
			// A mutating container method through an unknown callee is an
			// interior write to the receiver's storage.
			p := res.canonPath(c.RecvPath)
			if p != "" && pathDepth(p) <= maxPathDepth {
				info.own = append(info.own, &Access{
					Path: p, Write: true, Interior: true,
					Fn: name, Span: c.Span, At: blk.ID, Locks: cloneLocks(held),
				})
			}
		}
	}
	return info
}

// buildSummaries runs the inter-procedural access/lockset computation:
// each function's summary is its own accesses plus its callees' summaries
// translated through the call-site argument paths, with the caller's held
// locks added to inherited accesses. Same-site duplicates intersect their
// locksets, keeping the transfer monotone. With a warm prior result, SCCs
// outside the recompute closure reuse their fixpoint unchanged.
func (d *Detector) buildSummaries(ctx *detect.Context, infos map[string]*funcInfo, warm *summary.Result[accSummary], recompute map[string]bool) *summary.Result[accSummary] {
	prob := &summary.Problem[accSummary]{
		Bottom: func(string) accSummary { return accSummary{} },
		Equal:  summariesEqual,
		Transfer: func(name string, get summary.Lookup[accSummary]) accSummary {
			info := infos[name]
			s := accSummary{}
			for _, a := range info.own {
				mergeAccess(s, a)
			}
			for _, cs := range info.calls {
				calleeSum, known := get(cs.callee)
				if !known {
					continue
				}
				params := paramNames(ctx.Bodies[cs.callee])
				for _, a := range calleeSum {
					p := summary.TranslateRoot(a.Path, params, cs.argPaths)
					if p == "" || pathDepth(p) > maxPathDepth {
						continue
					}
					t := a.clone()
					t.Path = p
					t.At = cs.at
					t.Locks = translateLocks(a.Locks, params, cs.argPaths)
					for id, m := range cs.held {
						if cur, ok := t.Locks[id]; !ok || m > cur {
							t.Locks[id] = m
						}
					}
					mergeAccess(s, t)
				}
			}
			return s
		},
	}
	return summary.ComputeFrom(ctx.Graph, prob, warm, recompute)
}

// mergeAccess inserts a into s, intersecting locksets on key collision
// (an access reachable along two call paths is only protected by locks
// held along both). The stored access is cloned before the intersection:
// summary entries alias info.own and prior-iteration summaries, and
// mutating those in place would break the transfer's purity — shrinking
// locksets across fixpoint iterations and sibling accesses.
func mergeAccess(s accSummary, a *Access) {
	prev, ok := s[a.key()]
	if !ok {
		s[a.key()] = a
		return
	}
	merged := prev.clone()
	for id, m := range merged.Locks {
		am, has := a.Locks[id]
		if !has {
			delete(merged.Locks, id)
			continue
		}
		if am < m {
			merged.Locks[id] = am
		}
	}
	s[a.key()] = merged
}

func cloneLocks(locks map[string]doublelock.Mode) map[string]doublelock.Mode {
	out := make(map[string]doublelock.Mode, len(locks))
	for id, m := range locks {
		out[id] = m
	}
	return out
}

func translateLocks(locks map[string]doublelock.Mode, params, argPaths []string) map[string]doublelock.Mode {
	out := map[string]doublelock.Mode{}
	for id, m := range locks {
		if t := summary.TranslateRoot(id, params, argPaths); t != "" {
			out[t] = m
		}
	}
	return out
}

func summariesEqual(a, b accSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av.Locks) != len(bv.Locks) {
			return false
		}
		for id, m := range av.Locks {
			if bm, has := bv.Locks[id]; !has || bm != m {
				return false
			}
		}
	}
	return true
}

// sortedAccs flattens a summary into a deterministic slice: by span,
// then path, writes before reads. The write-first tiebreak matters for
// compound assignments (`x += 1` is a read and a write at one span):
// pairKey ignores the access kind, so the first pair encountered wins,
// and sorting keeps that choice stable across runs.
func sortedAccs(s accSummary) []*Access {
	out := make([]*Access, 0, len(s))
	for _, a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Span.Start != out[j].Span.Start {
			return out[i].Span.Start < out[j].Span.Start
		}
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		if out[i].Write != out[j].Write {
			return out[i].Write
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].At < out[j].At
	})
	return out
}

// spawnCtx is one thread context at the pairing stage: the accesses a
// spawned closure may perform, rewritten into the spawning function's
// namespace, plus the spawn site's continuation block for pairing against
// the spawner's post-spawn accesses.
type spawnCtx struct {
	label  string
	accs   []*Access
	target mir.BlockID
	inLoop bool
}

// pair reports conflicting access pairs for one spawning function.
func (d *Detector) pair(ctx *detect.Context, infos map[string]*funcInfo, sums map[string]accSummary, name string, seen map[string]bool) []detect.Finding {
	info := infos[name]
	if len(info.spawns) == 0 {
		return nil
	}

	// First pass — thread-escape set: the canonical roots captured by any
	// spawned closure, collected over all spawns before any context is
	// built so the result cannot depend on spawn order. Statics always
	// escape.
	escaped := map[string]bool{}
	for _, sp := range info.spawns {
		cbody := ctx.Bodies[sp.closure]
		if cbody == nil {
			continue
		}
		for _, c := range cbody.Captures {
			if root := info.res.canonName(c); root != "" {
				escaped[pathRoot(root)] = true
			}
		}
	}

	// Second pass — one context per spawn site, holding the closure's
	// summary accesses rewritten into the spawner's namespace.
	var ctxs []spawnCtx
	for _, sp := range info.spawns {
		cbody := ctx.Bodies[sp.closure]
		if cbody == nil {
			continue
		}
		caps := map[string]bool{}
		for _, c := range cbody.Captures {
			caps[c] = true
		}
		sc := spawnCtx{
			label:  sp.closure,
			target: sp.target,
			inLoop: info.g.ReachableFrom(sp.target)[sp.at],
		}
		for _, a := range sortedAccs(sums[sp.closure]) {
			root := pathRoot(a.Path)
			var rewritten *Access
			switch {
			case strings.HasPrefix(root, "static "):
				rewritten = a.clone()
			case caps[root]:
				// Capture-rooted: rename into the spawner's namespace
				// through the alias map (svc → service).
				canon := info.res.canonName(root)
				if canon == "" {
					canon = root
				}
				rewritten = a.clone()
				rewritten.Path = rewriteRoot(a.Path, root, canon)
				newLocks := map[string]doublelock.Mode{}
				for id, m := range rewritten.Locks {
					lr := pathRoot(id)
					if caps[lr] {
						if lc := info.res.canonName(lr); lc != "" {
							id = rewriteRoot(id, lr, lc)
						}
					}
					newLocks[id] = m
				}
				rewritten.Locks = newLocks
			default:
				// Rooted in closure-local storage: thread-private.
				continue
			}
			sc.accs = append(sc.accs, rewritten)
		}
		ctxs = append(ctxs, sc)
	}

	// The spawner's post-spawn accesses on escaped roots form its
	// continuation. They are paired per spawn below — never against each
	// other, since they are program-ordered on the spawner thread.
	var spawnerAccs []*Access
	for _, a := range sortedAccs(sums[name]) {
		root := pathRoot(a.Path)
		if escaped[root] || strings.HasPrefix(root, "static ") {
			spawnerAccs = append(spawnerAccs, a)
		}
	}

	var out []detect.Finding
	emit := func(a, b *Access) {
		root := pathRoot(a.Path)
		if !escaped[root] && !strings.HasPrefix(root, "static ") &&
			!escaped[pathRoot(b.Path)] && !strings.HasPrefix(pathRoot(b.Path), "static ") {
			return
		}
		key := pairKey(a, b)
		if seen[key] {
			return
		}
		seen[key] = true
		primary, other := a, b
		if !primary.Write {
			primary, other = other, primary
		}
		out = append(out, detect.Finding{
			Kind:     detect.KindDataRace,
			Severity: detect.SeverityError,
			Function: name,
			Span:     primary.Span,
			Message: fmt.Sprintf("data race on %q: %s in %s is concurrent with %s in %s and no common lock protects them",
				primary.Path, verb(primary), primary.Fn, verb(other), other.Fn),
			Notes: []string{
				fmt.Sprintf("first access: %s at %s holding %s", verb(primary), ctx.Fset.Position(primary.Span.Start), locksString(primary.Locks)),
				fmt.Sprintf("second access: %s at %s holding %s", verb(other), ctx.Fset.Position(other.Span.Start), locksString(other.Locks)),
				fmt.Sprintf("the place escapes to another thread via the closure spawned in %s", name),
			},
		})
	}
	// Thread vs thread: distinct spawn sites always run concurrently; a
	// loop-spawned closure additionally races with its own other instances.
	for i := range ctxs {
		for j := i; j < len(ctxs); j++ {
			if i == j && !ctxs[i].inLoop {
				continue
			}
			conflicts(ctxs[i].accs, ctxs[j].accs, i == j, emit)
		}
	}
	// Thread vs spawner continuation: a spawner access races with spawn k's
	// thread only if it sits at a program point reachable after spawn k —
	// accesses before the spawn happen-before the thread starts.
	for i := range ctxs {
		reach := info.g.ReachableFrom(ctxs[i].target)
		var cont []*Access
		for _, a := range spawnerAccs {
			if reach[a.At] {
				cont = append(cont, a)
			}
		}
		conflicts(ctxs[i].accs, cont, false, emit)
	}
	return out
}

// conflicts pairs the accesses of two thread contexts. For a self-pair
// (one closure spawned in a loop), an access races with its own other
// instance, so identical sites are allowed.
func conflicts(as, bs []*Access, selfPair bool, emit func(a, b *Access)) {
	for i, a := range as {
		start := 0
		if selfPair {
			start = i // avoid reporting each unordered pair twice
		}
		for _, b := range bs[start:] {
			if a == b && !selfPair {
				// A pointer-identical access across two contexts is one
				// event, not two concurrent ones; only a loop self-pair
				// makes the same site mean two thread instances.
				continue
			}
			if !a.Write && !b.Write {
				continue
			}
			if !overlap(a.Path, b.Path) {
				continue
			}
			if protected(a, b) {
				continue
			}
			emit(a, b)
		}
	}
}

// protected reports whether a common lock serializes the two accesses
// (shared read-locks do not serialize two readers, but two readers never
// race anyway; a shared read-lock against a write-lock does).
func protected(a, b *Access) bool {
	for id, am := range a.Locks {
		if bm, ok := b.Locks[id]; ok {
			if am == doublelock.ModeRead && bm == doublelock.ModeRead {
				continue
			}
			return true
		}
	}
	return false
}

// pairKey identifies a conflicting site pair. The access kind is left out:
// a `+=` desugars into a read and a write at the same span, and reporting
// both pairings of the same two source sites would read as duplicates.
func pairKey(a, b *Access) string {
	ka := fmt.Sprintf("%s|%s:%d", a.Path, a.Fn, a.Span.Start)
	kb := fmt.Sprintf("%s|%s:%d", b.Path, b.Fn, b.Span.Start)
	if kb < ka {
		ka, kb = kb, ka
	}
	return ka + "||" + kb
}

func verb(a *Access) string {
	switch {
	case a.Interior:
		return "an interior mutation"
	case a.Write:
		return "a write"
	default:
		return "a read"
	}
}

func locksString(locks map[string]doublelock.Mode) string {
	if len(locks) == 0 {
		return "no locks"
	}
	ids := make([]string, 0, len(locks))
	for id := range locks {
		ids = append(ids, fmt.Sprintf("%s(%s)", id, locks[id]))
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// closureLocals maps locals holding a closure value to the closure body
// name, propagated through moves so `let cl = || ...; spawn(cl)` resolves.
func closureLocals(body *mir.Body) map[mir.LocalID]string {
	out := map[mir.LocalID]string{}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				if _, done := out[as.Place.Local]; done {
					continue
				}
				switch rv := as.Rvalue.(type) {
				case mir.Aggregate:
					if rv.Kind == mir.AggClosure {
						out[as.Place.Local] = rv.Name
						changed = true
					}
				case mir.Use:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if cn, has := out[pl.Local]; has {
							out[as.Place.Local] = cn
							changed = true
						}
					}
				}
			}
		}
	}
	return out
}

func paramNames(body *mir.Body) []string {
	if body == nil {
		return nil
	}
	out := make([]string, 0, body.ArgCount)
	for i := 1; i <= body.ArgCount && i < len(body.Locals); i++ {
		out = append(out, body.Locals[i].Name)
	}
	return out
}

func methodName(callee string) string {
	if i := strings.LastIndex(callee, "::"); i >= 0 {
		return callee[i+2:]
	}
	return callee
}

func isStaticLocal(body *mir.Body, l mir.LocalID) bool {
	return int(l) < len(body.Locals) && strings.HasPrefix(body.Locals[l].Name, "static ")
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}
