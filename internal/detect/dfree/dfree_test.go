package dfree

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func count(fs []detect.Finding, kind detect.Kind) int {
	n := 0
	for _, f := range fs {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

// Figure 6 (Redox): assigning a struct through a pointer to uninitialized
// memory drops the garbage previous value.
const figure6Buggy = `
pub struct FILE { buf: Vec<u8> }

pub unsafe fn _fdopen() {
    let f = alloc(size_of::<FILE>()) as *mut FILE;
    *f = FILE { buf: vec![0u8; 100] };
}
`

// The committed fix: ptr::write initializes without dropping.
const figure6Fixed = `
pub struct FILE { buf: Vec<u8> }

pub unsafe fn _fdopen() {
    let f = alloc(size_of::<FILE>()) as *mut FILE;
    ptr::write(f, FILE { buf: vec![0u8; 100] });
}
`

func TestFigure6BuggyFlagged(t *testing.T) {
	findings := analyze(t, figure6Buggy)
	if count(findings, detect.KindInvalidFree) != 1 {
		t.Fatalf("findings = %+v, want 1 invalid-free", findings)
	}
}

func TestFigure6FixedClean(t *testing.T) {
	findings := analyze(t, figure6Fixed)
	if n := count(findings, detect.KindInvalidFree); n != 0 {
		t.Fatalf("fixed version flagged: %+v", findings)
	}
}

// §5.1 double free: t2 = ptr::read(&t1) gives the pointee two owners.
const doubleFreeBuggy = `
struct Holder { b: Box<i32> }

fn f(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
}
`

// The safe alternative moves ownership.
const doubleFreeFixed = `
struct Holder { b: Box<i32> }

fn f(t1: Holder) {
    let t2 = t1;
}
`

func TestDoubleFreeFlagged(t *testing.T) {
	findings := analyze(t, doubleFreeBuggy)
	if count(findings, detect.KindDoubleFree) != 1 {
		t.Fatalf("findings = %+v, want 1 double-free", findings)
	}
}

func TestMoveInsteadOfPtrReadClean(t *testing.T) {
	findings := analyze(t, doubleFreeFixed)
	if n := count(findings, detect.KindDoubleFree); n != 0 {
		t.Fatalf("move version flagged: %+v", findings)
	}
}

func TestPtrReadWithForgetClean(t *testing.T) {
	// mem::forget on the original owner prevents the double drop.
	src := `
struct Holder { b: Box<i32> }

fn f(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
    mem::forget(t1);
}
`
	findings := analyze(t, src)
	if n := count(findings, detect.KindDoubleFree); n != 0 {
		t.Fatalf("forget version flagged: %+v", findings)
	}
}
