// Package dfree detects the two drop-related memory bug classes of Table 2
// that the paper singles out as unique to Rust:
//
//   - invalid free (Figure 6): assigning a new value through a pointer to
//     uninitialized memory (`*f = FILE{...}` where f came from alloc())
//     runs the destructor of the garbage "previous value";
//   - double free: `ptr::read` duplicates ownership of a value, so both
//     the original and the copy run destructors when their lifetimes end.
package dfree

import (
	"fmt"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/dropflow"
	"rustprobe/internal/mir"
	"rustprobe/internal/types"
)

// Detector finds invalid-free and double-free patterns.
type Detector struct {
	// Precise drops candidate findings the shared dropflow walk proves
	// safe on every feasible path. See internal/dropflow.
	Precise bool
}

// New returns the detector.
func New() *Detector { return &Detector{} }

// NewPrecise returns the detector with path-sensitive refutation enabled.
func NewPrecise() *Detector { return &Detector{Precise: true} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "drop-bugs" }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var out []detect.Finding
	for _, name := range ctx.Graph.Names() {
		out = append(out, d.checkInvalidFree(ctx, name)...)
		out = append(out, d.checkDoubleFree(ctx, name)...)
	}
	detect.SortFindings(out)
	return out
}

// checkInvalidFree tracks pointers to uninitialized allocations: alloc()
// (and mem::uninitialized/MaybeUninit::uninit) gen an "uninit" bit on the
// destination and everything it flows into by cast/copy; a plain MIR
// Assign through such a pointer drops the uninitialized previous value —
// invalid free. ptr::write initializes without dropping and clears the bit.
func (d *Detector) checkInvalidFree(ctx *detect.Context, name string) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	pts := ctx.PointsTo(name)
	var df *dropflow.Result
	if d.Precise {
		df = ctx.DropFlow(name)
	}

	// Locals that (may) hold pointers to uninitialized memory, seeded by
	// alloc intrinsics and spread through copies/casts; flow-sensitive so
	// ptr::write can clear.
	prob := &dataflow.Problem{
		Bits: len(body.Locals),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			as, ok := st.(mir.Assign)
			if !ok {
				return
			}
			if !as.Place.IsLocal() {
				return
			}
			switch rv := as.Rvalue.(type) {
			case mir.Use:
				if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
					state.Set(int(as.Place.Local))
					return
				}
			case mir.Cast:
				if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
					state.Set(int(as.Place.Local))
					return
				}
			}
			state.Clear(int(as.Place.Local))
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			c, ok := term.(mir.Call)
			if !ok {
				return
			}
			switch c.Intrinsic {
			case mir.IntrinsicAlloc:
				if c.Dest.IsLocal() {
					state.Set(int(c.Dest.Local))
				}
			case mir.IntrinsicPtrWrite:
				// ptr::write(p, v): p's target is now initialized.
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
						state.Clear(int(pl.Local))
					}
				}
			default:
				if c.Dest.IsLocal() {
					state.Clear(int(c.Dest.Local))
				}
			}
		},
	}
	res := dataflow.Forward(g, prob)

	var out []detect.Finding
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		for i, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok || !as.Place.HasDeref() {
				continue
			}
			base := as.Place.Local
			if _, isRaw := body.Local(base).Ty.(*types.RawPtr); !isRaw {
				continue
			}
			// The assigned value must have drop glue for the implicit
			// drop of the previous value to matter.
			assignedTy := assignedType(body, as)
			if !typeNeedsDrop(assignedTy) {
				continue
			}
			state := res.StateAt(blk.ID, i)
			if state.Has(int(base)) {
				if df.RefutesUninit(dropflow.SiteKey{Block: blk.ID, Stmt: i, Local: base}) {
					continue
				}
				out = append(out, detect.Finding{
					Kind:     detect.KindInvalidFree,
					Severity: detect.SeverityError,
					Function: name,
					Span:     as.Span,
					Message:  fmt.Sprintf("assignment through %s drops the uninitialized previous value (invalid free)", body.Local(base)),
					Notes: []string{
						"the pointee comes from alloc() and was never initialized",
						"use ptr::write to initialize without dropping",
					},
				})
			}
		}
	}
	_ = pts
	return out
}

func assignedType(body *mir.Body, as mir.Assign) types.Type {
	switch rv := as.Rvalue.(type) {
	case mir.Use:
		return operandType(body, rv.X)
	case mir.Aggregate:
		return types.NamedOf(rv.Name)
	default:
		return types.UnknownType
	}
}

func operandType(body *mir.Body, op mir.Operand) types.Type {
	switch op := op.(type) {
	case mir.Copy:
		return body.Local(op.Place.Local).Ty
	case mir.Move:
		return body.Local(op.Place.Local).Ty
	case mir.Const:
		return op.Ty
	}
	return types.UnknownType
}

func typeNeedsDrop(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		switch t.Name {
		case "PhantomData", "Ordering":
			return false
		}
		return true
	case *types.Tuple:
		for _, e := range t.Elems {
			if typeNeedsDrop(e) {
				return true
			}
		}
	}
	return false
}

// checkDoubleFree flags ptr::read duplications where both the original
// owner and the duplicate are dropped.
func (d *Detector) checkDoubleFree(ctx *detect.Context, name string) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	pts := ctx.PointsTo(name)
	var df *dropflow.Result
	if d.Precise {
		df = ctx.DropFlow(name)
	}

	// Which locals are dropped somewhere (reachable)?
	dropped := map[mir.LocalID]bool{}
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		if dr, ok := blk.Term.(mir.Drop); ok && dr.Place.IsLocal() {
			dropped[dr.Place.Local] = true
		}
	}

	// duplicates[d] = original owner o when d was produced by
	// ptr::read(&o) (directly or through a pointer).
	var out []detect.Finding
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok || c.Intrinsic != mir.IntrinsicPtrRead {
			continue
		}
		if len(c.Args) == 0 || !c.Dest.IsLocal() {
			continue
		}
		pl, isPlace := mir.OperandPlace(c.Args[0])
		if !isPlace {
			continue
		}
		// Resolve the original owner: the pointer argument's targets.
		var owners []mir.LocalID
		if pl.IsLocal() {
			for t := range pts.Targets(pl.Local) {
				owners = append(owners, t)
			}
		}
		dup := c.Dest.Local
		// Follow one move of the duplicate into a named local.
		dupHolders := map[mir.LocalID]bool{dup: true}
		for _, blk2 := range body.Blocks {
			for _, st := range blk2.Stmts {
				if as, ok := st.(mir.Assign); ok && as.Place.IsLocal() {
					if use, ok := as.Rvalue.(mir.Use); ok {
						if p2, ok := mir.OperandPlace(use.X); ok && p2.IsLocal() && dupHolders[p2.Local] {
							dupHolders[as.Place.Local] = true
						}
					}
				}
			}
		}
		dupDropped := false
		for h := range dupHolders {
			if dropped[h] {
				dupDropped = true
			}
		}
		if !dupDropped {
			continue
		}
		for _, o := range owners {
			if dropped[o] {
				if df.RefutesDoubleFree(dropflow.SiteKey{Block: blk.ID, Stmt: -1, Local: pl.Local}) {
					break
				}
				out = append(out, detect.Finding{
					Kind:     detect.KindDoubleFree,
					Severity: detect.SeverityError,
					Function: name,
					Span:     c.Span,
					Message: fmt.Sprintf("ptr::read duplicates ownership of %s; both copies are dropped (double free)",
						body.Local(o)),
					Notes: []string{
						"move the value (t2 = t1) instead of ptr::read to transfer ownership",
					},
				})
				break
			}
		}
	}
	return out
}
