// Package blocking implements the §6.1 blocking-bug detector for the
// non-double-lock shapes the study attributes most blocking bugs to:
// channel hold-and-wait deadlocks, receives whose every sender half is
// gone, Condvar waits with no reachable (unconditional) signaller, and
// Once initializers that re-enter their own cell.
//
// The detector builds a wait-for relation between blocking operations and
// the resources that would unblock them. Nodes are canonical resource
// paths — channel endpoints, condvars and Once cells named in the same
// path language the lock detectors use ("self.client", "queue",
// "static CONFIG") and qualified by impl type or owning function so
// facts from different functions compare. Edges come from two sources:
// the locks held at each blocking operation (reusing the double-lock
// detector's guard tracking), and the operation's own resource. A report
// is a cycle (the receiver holds the lock its sender needs; an
// initializer waits on the Once it is initializing) or an orphaned wait
// (a recv or Condvar::wait whose wake-up edge provably never fires).
//
// Like the race detector, per-function facts are summarized bottom-up
// over the call graph (SCC fixpoint), so a recv buried in a helper still
// reports against the caller that holds the lock.
package blocking

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/cfg"
	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/summary"
)

const (
	maxBlockingIter = 64
	// maxPathDepth bounds translated paths through recursive call chains.
	maxPathDepth = 8
)

// channel constructors whose tuple result provides sender/receiver
// provenance for the orphaned-receive rule. Mirrors the lowering's
// intrinsic table.
var chanCtors = map[string]bool{
	"channel::unbounded": true,
	"mpsc::channel":      true,
	"mpsc::sync_channel": true,
}

// Detector is the blocking-bug detector.
type Detector struct{}

// New returns the detector with default configuration.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "blocking" }

type opKind int

const (
	opRecv opKind = iota
	opSend
	opOnce
	opWait
	opNotify
)

func (k opKind) String() string {
	switch k {
	case opRecv:
		return "recv"
	case opSend:
		return "send"
	case opWait:
		return "wait"
	case opNotify:
		return "notify"
	default:
		return "call_once"
	}
}

// event is one blocking-relevant operation, expressed in the namespace of
// the function whose summary holds it.
type event struct {
	Kind opKind
	Res  string // canonical resource path (channel endpoint or Once cell)
	Fn   string // function whose body literally performs the operation
	Span source.Span
	// Locks held at the operation (recv/send only). Shrinks under merge:
	// a lock counts only if held on every path that reaches the op.
	Locks map[string]doublelock.Mode
	// LocalProv marks endpoints derived from a channel constructor that
	// is visible in the recording function; such endpoints are excluded
	// from the same-impl-type pairing heuristic.
	LocalProv bool
	// Guaranteed marks an operation that executes on every entry→return
	// path of every function on the summarized call chain down to the
	// op. ANDs under merge.
	Guaranteed bool
	// After holds, for send ops, the channels whose recv must complete
	// on every path before the send can execute — the dependency edge
	// the all-ends-waiting rule follows. Shrinks under merge like Locks.
	After map[string]bool
}

func (e *event) key() string {
	return fmt.Sprintf("%d|%s|%s|%d", e.Kind, e.Res, e.Fn, e.Span.Start)
}

func (e *event) clone() *event {
	c := *e
	if e.Locks != nil {
		c.Locks = cloneLocks(e.Locks)
	}
	if e.After != nil {
		c.After = make(map[string]bool, len(e.After))
		for a := range e.After {
			c.After[a] = true
		}
	}
	return &c
}

// resSummary maps event keys to events; the inter-procedural fixpoint
// grows the key set and shrinks locksets, both monotone.
type resSummary map[string]*event

type waitSite struct {
	cv   string
	span source.Span
}

type notifySite struct {
	cv         string
	span       source.Span
	guaranteed bool // the notify lies on every entry→return path
}

type onceSite struct {
	once    string
	closure string // closure body name passed as initializer, "" if opaque
	// closureParam is the parameter index the initializer came in
	// through when it is an unresolved parameter of the enclosing
	// function (run_init(once, f) { once.call_once(f) }), -1 otherwise.
	// Callers resolve it against their own closure bindings.
	closureParam int
	span         source.Span
}

type callSite struct {
	callee   string
	argPaths []string
	// argClosures names, per argument, the locally-defined closure body
	// the argument carries ("" if it is not a closure binding).
	argClosures []string
	held        map[string]doublelock.Mode
	span        source.Span
	// guaranteed marks a call site on every entry→return path.
	guaranteed bool
}

// spawnSite is a thread::spawn whose closure body is resolved.
type spawnSite struct {
	closure string
	span    source.Span
}

// chanProv tracks one visible channel construction: which locals alias
// its sender/receiver halves and whether any sender stays live.
type chanProv struct {
	span      source.Span
	tuple     map[mir.LocalID]bool
	senders   map[mir.LocalID]bool
	receivers map[mir.LocalID]bool
}

type funcInfo struct {
	name     string
	body     *mir.Body
	res      *resolver
	own      []*event // recv/send/once/wait/notify events in this body
	calls    []callSite
	spawns   []spawnSite
	waits    []waitSite
	notifies []notifySite
	onces    []onceSite
	chans    []*chanProv
	captures map[string]bool
	params   map[string]bool
	// orphans caches the intra-procedural orphaned-receive findings so
	// the incremental path can replay them without rescanning the body.
	orphans []detect.Finding
}

// carry is the detector's incremental fact cache: the per-function
// extraction results and the summary fixpoint of the previous round.
// Facts are revalidated by body pointer identity — the session reuses
// body objects for unchanged functions, so a cached funcInfo is valid
// exactly when ctx.Bodies still holds the body it was extracted from.
type carry struct {
	infos map[string]*funcInfo
	sums  *summary.Result[resSummary]
}

// FactCount implements detect.FactCounter.
func (c *carry) FactCount() int { return len(c.infos) }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	out, _, _ := d.RunIncremental(ctx, nil, nil)
	return out
}

// RunIncremental implements detect.Incremental: per-function fact
// extraction is skipped for functions whose cached facts are still
// valid (not dirty, same body object), the summary fixpoint warm-starts
// from the previous round's SCC results, and only the cheap global
// pairing phase runs over the whole program.
func (d *Detector) RunIncremental(ctx *detect.Context, prior detect.Carry, dirty map[string]bool) ([]detect.Finding, detect.Carry, int) {
	prev, _ := prior.(*carry)
	names := ctx.Graph.Names()
	infos := make(map[string]*funcInfo, len(names))
	recompute := map[string]bool{}
	reused := 0
	for _, name := range names {
		if prev != nil && !dirty[name] {
			if old := prev.infos[name]; old != nil && old.body == ctx.Bodies[name] {
				infos[name] = old
				reused++
				continue
			}
		}
		infos[name] = d.analyze(ctx, name)
		recompute[name] = true
	}
	var warm *summary.Result[resSummary]
	if prev != nil {
		warm = prev.sums
	}
	detect.CloseOverCallers(ctx.Graph, recompute)
	sres := d.buildSummaries(ctx, infos, warm, recompute)
	sums := sres.Summaries

	var out []detect.Finding
	reported := map[int]bool{}
	emit := func(f detect.Finding) {
		if reported[f.Span.Start] {
			return
		}
		reported[f.Span.Start] = true
		out = append(out, f)
	}

	// Orphaned receives first: "the sender is gone" is the more precise
	// diagnosis for a recv site than any lock-cycle pairing.
	for _, name := range names {
		for _, f := range infos[name].orphans {
			emit(f)
		}
	}
	d.channelCycles(ctx, names, infos, sums, emit)
	d.allEndsWaiting(ctx, names, infos, sums, emit)
	d.lostSignals(ctx, names, infos, sums, emit)
	d.onceReentry(ctx, names, infos, sums, emit)

	detect.SortFindings(out)
	return out, &carry{infos: infos, sums: sres}, reused
}

// analyze collects the per-function blocking facts.
func (d *Detector) analyze(ctx *detect.Context, name string) *funcInfo {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	guards := doublelock.Guards(body)
	live := doublelock.LiveGuards(body, g, guards)
	res := newResolver(ctx, name, body, guards)
	info := &funcInfo{
		name:     name,
		body:     body,
		res:      res,
		captures: map[string]bool{},
		params:   map[string]bool{},
	}
	for _, c := range body.Captures {
		info.captures[c] = true
	}
	for _, p := range paramNames(body) {
		if p != "" {
			info.params[p] = true
		}
	}
	closureOf := closureLocals(body)
	info.chans = channelProvenance(body)
	endpoint := map[mir.LocalID]bool{}
	for _, ch := range info.chans {
		for l := range ch.senders {
			endpoint[l] = true
		}
		for l := range ch.receivers {
			endpoint[l] = true
		}
	}
	localProv := func(path string) bool {
		l, ok := res.byName[pathRoot(path)]
		return ok && endpoint[l]
	}

	heldAt := func(blk mir.BlockID, idx int) map[string]doublelock.Mode {
		held := doublelock.Held(live.StateAt(blk, idx), guards)
		canon := make(map[string]doublelock.Mode, len(held))
		for id, m := range held {
			canon[res.canonPath(id)] = m
		}
		return canon
	}
	valid := func(p string) bool { return p != "" && pathDepth(p) <= maxPathDepth }
	mustRecv := mustRecvIn(body, g, res)
	afterAt := func(blk mir.BlockID) map[string]bool {
		in := mustRecv[blk]
		if len(in) == 0 {
			return nil
		}
		out := make(map[string]bool, len(in))
		for p := range in {
			out[p] = true
		}
		return out
	}

	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		switch c.Intrinsic {
		case mir.IntrinsicChanRecv, mir.IntrinsicChanSend:
			p := res.canonPath(c.RecvPath)
			if c.RecvPath == "" || !valid(p) {
				continue
			}
			kind := opRecv
			var after map[string]bool
			if c.Intrinsic == mir.IntrinsicChanSend {
				kind = opSend
				after = afterAt(blk.ID)
			}
			info.own = append(info.own, &event{
				Kind:       kind,
				Res:        p,
				Fn:         name,
				Span:       c.Span,
				Locks:      heldAt(blk.ID, len(blk.Stmts)),
				LocalProv:  localProv(p),
				Guaranteed: unavoidable(body, g, blk.ID),
				After:      after,
			})
			continue
		case mir.IntrinsicCondvarWait:
			if p := res.canonPath(c.RecvPath); c.RecvPath != "" && valid(p) {
				info.waits = append(info.waits, waitSite{cv: p, span: c.Span})
				info.own = append(info.own, &event{
					Kind: opWait, Res: p, Fn: name, Span: c.Span,
					Guaranteed: unavoidable(body, g, blk.ID),
				})
			}
			continue
		case mir.IntrinsicSpawn:
			for _, a := range c.Args {
				if pl, ok := mir.OperandPlace(a); ok && pl.IsLocal() && len(pl.Proj) == 0 {
					if cn, isClosure := closureOf[pl.Local]; isClosure {
						info.spawns = append(info.spawns, spawnSite{closure: cn, span: c.Span})
						break
					}
				}
			}
			continue
		case mir.IntrinsicNone:
			switch methodName(c.Callee) {
			case "notify_one", "notify_all":
				if p := res.canonPath(c.RecvPath); c.RecvPath != "" && valid(p) {
					guaranteed := unavoidable(body, g, blk.ID)
					info.notifies = append(info.notifies, notifySite{
						cv:         p,
						span:       c.Span,
						guaranteed: guaranteed,
					})
					info.own = append(info.own, &event{
						Kind: opNotify, Res: p, Fn: name, Span: c.Span,
						Guaranteed: guaranteed,
					})
					continue
				}
			case "call_once":
				if p := res.canonPath(c.RecvPath); c.RecvPath != "" && valid(p) {
					site := onceSite{once: p, span: c.Span, closureParam: -1}
					for _, a := range c.Args[1:] {
						if pl, ok := mir.OperandPlace(a); ok && pl.IsLocal() {
							if cn, isClosure := closureOf[pl.Local]; isClosure {
								site.closure = cn
								break
							}
							if len(pl.Proj) == 0 && int(pl.Local) >= 1 && int(pl.Local) <= body.ArgCount {
								site.closureParam = int(pl.Local) - 1
								break
							}
						}
					}
					info.onces = append(info.onces, site)
					info.own = append(info.own, &event{Kind: opOnce, Res: p, Fn: name, Span: c.Span})
					continue
				}
			}
		}
		callee := resolvedCallee(ctx, c)
		if callee == "" {
			continue
		}
		cs := callSite{
			callee:     callee,
			held:       heldAt(blk.ID, len(blk.Stmts)),
			span:       c.Span,
			guaranteed: unavoidable(body, g, blk.ID),
		}
		for _, a := range c.Args {
			p := ""
			cn := ""
			if pl, ok := mir.OperandPlace(a); ok {
				p = res.valuePath(pl)
				if pl.IsLocal() && len(pl.Proj) == 0 {
					cn = closureOf[pl.Local]
				}
			}
			cs.argPaths = append(cs.argPaths, p)
			cs.argClosures = append(cs.argClosures, cn)
		}
		info.calls = append(info.calls, cs)
	}
	d.collectOrphans(ctx, info)
	return info
}

// mustRecvIn computes, per block, the set of canonical channel paths
// whose recv has completed on every path reaching the block's
// terminator — the must-precede relation behind send events' After
// sets. Forward must-dataflow: intersection at joins, recv terminators
// generate their resource.
func mustRecvIn(body *mir.Body, g *cfg.Graph, res *resolver) map[mir.BlockID]map[string]bool {
	gen := map[mir.BlockID]string{}
	for _, blk := range body.Blocks {
		if c, ok := blk.Term.(mir.Call); ok && c.Intrinsic == mir.IntrinsicChanRecv && c.RecvPath != "" {
			if p := res.canonPath(c.RecvPath); p != "" && pathDepth(p) <= maxPathDepth {
				gen[blk.ID] = p
			}
		}
	}
	in := map[mir.BlockID]map[string]bool{}
	seen := map[mir.BlockID]bool{}
	equal := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	for iter := 0; iter < maxBlockingIter; iter++ {
		changed := false
		for _, id := range g.RPO {
			var next map[string]bool
			first := true
			for _, p := range g.Preds[id] {
				if !g.Reachable(p) {
					continue
				}
				if !seen[p] {
					// Unvisited pred on a back edge: treat as top
					// (no constraint) so the intersection stays must.
					continue
				}
				pout := map[string]bool{}
				for k := range in[p] {
					pout[k] = true
				}
				if gp, ok := gen[p]; ok {
					pout[gp] = true
				}
				if first {
					next = pout
					first = false
					continue
				}
				for k := range next {
					if !pout[k] {
						delete(next, k)
					}
				}
			}
			if next == nil {
				next = map[string]bool{}
			}
			if !seen[id] || !equal(in[id], next) {
				in[id] = next
				seen[id] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// buildSummaries runs the SCC fixpoint: a function's summary is its own
// recv/send/once/wait/notify events plus its callees' events translated
// into the caller's namespace and augmented with the locks held at the
// call site. With a warm-start result from a prior round, only SCCs in
// the recompute closure re-run their transfer.
func (d *Detector) buildSummaries(ctx *detect.Context, infos map[string]*funcInfo, warm *summary.Result[resSummary], recompute map[string]bool) *summary.Result[resSummary] {
	prob := &summary.Problem[resSummary]{
		Bottom:  func(string) resSummary { return resSummary{} },
		Equal:   summariesEqual,
		MaxIter: maxBlockingIter,
		Transfer: func(name string, get summary.Lookup[resSummary]) resSummary {
			info := infos[name]
			s := resSummary{}
			for _, e := range info.own {
				mergeEvent(s, e)
			}
			for _, cs := range info.calls {
				calleeSum, known := get(cs.callee)
				if !known {
					continue
				}
				params := paramNames(ctx.Bodies[cs.callee])
				for _, e := range calleeSum {
					p := summary.TranslateRoot(e.Res, params, cs.argPaths)
					if p == "" || pathDepth(p) > maxPathDepth {
						continue
					}
					t := e.clone()
					t.Res = p
					t.Guaranteed = e.Guaranteed && cs.guaranteed
					if t.Kind == opRecv || t.Kind == opSend {
						t.Locks = translateLocks(e.Locks, params, cs.argPaths)
						for id, m := range cs.held {
							if cur, ok := t.Locks[id]; !ok || m > cur {
								t.Locks[id] = m
							}
						}
					}
					if len(e.After) > 0 {
						t.After = map[string]bool{}
						for a := range e.After {
							if ta := summary.TranslateRoot(a, params, cs.argPaths); ta != "" && pathDepth(ta) <= maxPathDepth {
								t.After[ta] = true
							}
						}
					}
					mergeEvent(s, t)
				}
			}
			return s
		},
	}
	return summary.ComputeFrom(ctx.Graph, prob, warm, recompute)
}

func mergeEvent(s resSummary, e *event) {
	k := e.key()
	prev, ok := s[k]
	if !ok {
		s[k] = e.clone()
		return
	}
	// Same op via two paths: only locks held on both count, the op is
	// guaranteed only if both paths guarantee it, and only recvs that
	// must precede it on both paths stay in After.
	merged := prev.clone()
	for id, m := range merged.Locks {
		if em, has := e.Locks[id]; !has || em != m {
			delete(merged.Locks, id)
		}
	}
	merged.Guaranteed = merged.Guaranteed && e.Guaranteed
	for a := range merged.After {
		if !e.After[a] {
			delete(merged.After, a)
		}
	}
	s[k] = merged
}

func summariesEqual(a, b resSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av.Locks) != len(bv.Locks) {
			return false
		}
		if av.Guaranteed != bv.Guaranteed || len(av.After) != len(bv.After) {
			return false
		}
		for id, m := range av.Locks {
			if bm, has := bv.Locks[id]; !has || bm != m {
				return false
			}
		}
		for id := range av.After {
			if !bv.After[id] {
				return false
			}
		}
	}
	return true
}

// qualify renders a function-namespace path as a program-wide resource
// id: statics stand alone, self-rooted paths attach to the impl type, and
// everything else attaches to the owning function.
func qualify(owner, path string) string {
	if strings.HasPrefix(path, "static ") {
		return path
	}
	path = summary.NormalizePath(path)
	if path == "self" || strings.HasPrefix(path, "self.") || strings.HasPrefix(path, "self[") {
		if t := implTypeOf(owner); t != "" {
			return t + "::" + path
		}
	}
	return owner + "::" + path
}

// implTypeOf extracts the impl type from a qualified function name,
// looking through closure suffixes: "Miner::seal::closure#0" → "Miner".
func implTypeOf(fn string) string {
	for {
		i := strings.LastIndex(fn, "::")
		if i < 0 {
			return ""
		}
		if strings.HasPrefix(fn[i+2:], "closure#") {
			fn = fn[:i]
			continue
		}
		return fn[:i]
	}
}

func sortedEvents(s resSummary) []*event {
	out := make([]*event, 0, len(s))
	for _, e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Span.Start != out[j].Span.Start {
			return out[i].Span.Start < out[j].Span.Start
		}
		if out[i].Res != out[j].Res {
			return out[i].Res < out[j].Res
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// channelCycles is the hold-and-wait rule: a recv that blocks while
// holding a lock some send needs first is a two-thread wait cycle —
// the receiver waits for the message, the sender waits for the lock.
func (d *Detector) channelCycles(ctx *detect.Context, names []string, infos map[string]*funcInfo, sums map[string]resSummary, emit func(detect.Finding)) {
	type qsend struct {
		chanPath string
		owner    string
		fn       string
		span     source.Span
		locks    map[string]bool
		local    bool
	}
	var qsends []qsend
	for _, name := range names {
		for _, e := range sortedEvents(sums[name]) {
			if e.Kind != opSend {
				continue
			}
			qs := qsend{
				chanPath: qualify(name, e.Res),
				owner:    implTypeOf(name),
				fn:       e.Fn,
				span:     e.Span,
				locks:    map[string]bool{},
				local:    e.LocalProv,
			}
			for id := range e.Locks {
				qs.locks[qualify(name, id)] = true
			}
			qsends = append(qsends, qs)
		}
	}

	for _, name := range names {
		owner := implTypeOf(name)
		for _, e := range sortedEvents(sums[name]) {
			if e.Kind != opRecv || len(e.Locks) == 0 {
				continue
			}
			qchan := qualify(name, e.Res)
			// qualified lock id → the recv's own spelling of it
			qlocks := map[string]string{}
			for id := range e.Locks {
				qlocks[qualify(name, id)] = id
			}
			for _, s := range qsends {
				if s.fn == e.Fn {
					continue
				}
				// The endpoints must plausibly be the same channel:
				// identical resource id, or two channel fields of the
				// same type (a pipe pair like to_paint/from_paint).
				if s.chanPath != qchan &&
					(owner == "" || s.owner != owner || e.LocalProv || s.local) {
					continue
				}
				common := ""
				for ql := range qlocks {
					if s.locks[ql] {
						common = ql
						break
					}
				}
				if common == "" {
					continue
				}
				emit(detect.Finding{
					Kind:     detect.KindBlocking,
					Severity: detect.SeverityError,
					Function: e.Fn,
					Span:     e.Span,
					Message: fmt.Sprintf("blocking recv() on %q while holding %q, which %s must acquire before it can send",
						e.Res, qlocks[common], s.fn),
					Notes: []string{
						fmt.Sprintf("receiver: recv at %s holding %s", ctx.Fset.Position(e.Span.Start), locksString(e.Locks)),
						fmt.Sprintf("sender: %s sends on %q at %s only after acquiring %q", s.fn, s.chanPath, ctx.Fset.Position(s.span.Start), common),
						"hold-and-wait cycle: with these two threads interleaved, neither the message nor the lock can ever be released",
					},
				})
				break
			}
		}
	}
}

// collectOrphans is the no-live-sender rule, intra-procedural over
// visible channel constructions: if every alias of the sender half is
// only ever defined and dropped — never sent on, stored, captured, or
// passed on — the paired recv can never complete. Findings are cached
// on the funcInfo so incremental rounds replay them without rescanning.
func (d *Detector) collectOrphans(ctx *detect.Context, info *funcInfo) {
	emit := func(f detect.Finding) { info.orphans = append(info.orphans, f) }
	body := info.body
	for _, ch := range info.chans {
		live := false
		dropped := false
		var dropSpan source.Span
		var recvs []source.Span
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok {
					continue
				}
				if isAliasMove(as, ch) {
					continue
				}
				for _, pl := range rvaluePlaces(as.Rvalue) {
					if len(pl.Proj) == 0 && ch.senders[pl.Local] {
						live = true
					}
				}
			}
			switch t := blk.Term.(type) {
			case mir.Drop:
				if len(t.Place.Proj) == 0 && ch.senders[t.Place.Local] {
					dropped = true
					dropSpan = t.Span
				}
			case mir.SwitchInt:
				if pl, ok := mir.OperandPlace(t.Disc); ok && len(pl.Proj) == 0 && ch.senders[pl.Local] {
					live = true
				}
			case mir.Call:
				if t.Intrinsic == mir.IntrinsicChanRecv {
					if pl, ok := firstArgPlace(t); ok && len(pl.Proj) == 0 && ch.receivers[pl.Local] {
						recvs = append(recvs, t.Span)
					}
					continue
				}
				if t.Intrinsic == mir.IntrinsicDrop {
					if pl, ok := firstArgPlace(t); ok && len(pl.Proj) == 0 && ch.senders[pl.Local] {
						dropped = true
						dropSpan = t.Span
						continue
					}
				}
				if t.Intrinsic == mir.IntrinsicClone && t.Dest.IsLocal() && ch.senders[t.Dest.Local] {
					continue // recognized alias clone
				}
				for _, a := range t.Args {
					if pl, ok := mir.OperandPlace(a); ok && len(pl.Proj) == 0 && ch.senders[pl.Local] {
						live = true
					}
				}
			}
		}
		if live || len(recvs) == 0 {
			continue
		}
		why := "the sender half is never used and is dropped without sending"
		notes := []string{
			fmt.Sprintf("channel created at %s", ctx.Fset.Position(ch.span.Start)),
		}
		if dropped {
			notes = append(notes, fmt.Sprintf("last sender half dropped at %s", ctx.Fset.Position(dropSpan.Start)))
		} else {
			why = "no sender half is ever used"
			notes = append(notes, "no alias of the sender half is sent on, stored, or moved to another thread")
		}
		notes = append(notes, "recv() on a channel with no live sender blocks forever (or returns RecvError, which unwrap turns into a panic)")
		emit(detect.Finding{
			Kind:     detect.KindBlocking,
			Severity: detect.SeverityError,
			Function: info.name,
			Span:     recvs[0],
			Message:  fmt.Sprintf("recv() can never complete: %s", why),
			Notes:    notes,
		})
	}
}

// isAliasMove reports whether an assignment only shuffles a tracked
// endpoint between tracked aliases (tuple projection or endpoint move).
func isAliasMove(as mir.Assign, ch *chanProv) bool {
	if !as.Place.IsLocal() {
		return false
	}
	u, ok := as.Rvalue.(mir.Use)
	if !ok {
		return false
	}
	pl, ok := mir.OperandPlace(u.X)
	if !ok {
		return false
	}
	if ch.tuple[pl.Local] {
		return true
	}
	if len(pl.Proj) == 0 && (ch.senders[pl.Local] || ch.receivers[pl.Local]) {
		dst := as.Place.Local
		return ch.senders[dst] || ch.receivers[dst]
	}
	return false
}

// channelProvenance finds visible channel constructions and propagates
// their sender/receiver halves through tuple projections, moves, and
// clones.
func channelProvenance(body *mir.Body) []*chanProv {
	var chans []*chanProv
	for _, blk := range body.Blocks {
		c, ok := blk.Term.(mir.Call)
		if !ok || c.Intrinsic != mir.IntrinsicNone || !chanCtors[c.Callee] || !c.Dest.IsLocal() {
			continue
		}
		chans = append(chans, &chanProv{
			span:      c.Span,
			tuple:     map[mir.LocalID]bool{c.Dest.Local: true},
			senders:   map[mir.LocalID]bool{},
			receivers: map[mir.LocalID]bool{},
		})
	}
	if len(chans) == 0 {
		return nil
	}
	changed := true
	for changed {
		changed = false
		track := func(m map[mir.LocalID]bool, l mir.LocalID) {
			if !m[l] {
				m[l] = true
				changed = true
			}
		}
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				u, ok := as.Rvalue.(mir.Use)
				if !ok {
					continue
				}
				pl, ok := mir.OperandPlace(u.X)
				if !ok {
					continue
				}
				for _, ch := range chans {
					if ch.tuple[pl.Local] && len(pl.Proj) == 1 {
						if f, ok := pl.Proj[0].(mir.FieldProj); ok {
							switch f.Name {
							case "0":
								track(ch.senders, as.Place.Local)
							case "1":
								track(ch.receivers, as.Place.Local)
							}
						}
					}
					if len(pl.Proj) == 0 {
						if ch.tuple[pl.Local] {
							track(ch.tuple, as.Place.Local)
						}
						if ch.senders[pl.Local] {
							track(ch.senders, as.Place.Local)
						}
						if ch.receivers[pl.Local] {
							track(ch.receivers, as.Place.Local)
						}
					}
				}
			}
			c, ok := blk.Term.(mir.Call)
			if !ok || c.Intrinsic != mir.IntrinsicClone || !c.Dest.IsLocal() {
				continue
			}
			pl, ok := firstArgPlace(c)
			if !ok || len(pl.Proj) != 0 {
				continue
			}
			for _, ch := range chans {
				if ch.senders[pl.Local] {
					track(ch.senders, c.Dest.Local)
				}
				if ch.receivers[pl.Local] {
					track(ch.receivers, c.Dest.Local)
				}
			}
		}
	}
	return chans
}

func firstArgPlace(c mir.Call) (mir.Place, bool) {
	if len(c.Args) == 0 {
		return mir.Place{}, false
	}
	return mir.OperandPlace(c.Args[0])
}

// rvaluePlaces lists the places an rvalue reads.
func rvaluePlaces(rv mir.Rvalue) []mir.Place {
	var out []mir.Place
	add := func(op mir.Operand) {
		if pl, ok := mir.OperandPlace(op); ok {
			out = append(out, pl)
		}
	}
	switch rv := rv.(type) {
	case mir.Use:
		add(rv.X)
	case mir.Ref:
		out = append(out, rv.Place)
	case mir.AddrOf:
		out = append(out, rv.Place)
	case mir.Cast:
		add(rv.X)
	case mir.BinaryOp:
		add(rv.L)
		add(rv.R)
	case mir.UnaryOp:
		add(rv.X)
	case mir.Aggregate:
		for _, op := range rv.Ops {
			add(op)
		}
	case mir.Discriminant:
		out = append(out, rv.Place)
	}
	return out
}

// lostSignals is the missing/conditional-notify rule: a Condvar::wait
// whose condvar no other function unconditionally notifies can sleep
// forever — the paper's lost-signal shape, where the only wake-up is
// behind a condition the waiter itself controls. Two passes share the
// report logic: the direct pass over each function's own waits, and a
// propagated pass over summary wait events whose parameter-rooted
// condvar a caller resolved to a concrete identity (the DESIGN.md
// caveat this detector used to skip).
func (d *Detector) lostSignals(ctx *detect.Context, names []string, infos map[string]*funcInfo, sums map[string]resSummary, emit func(detect.Finding)) {
	type qnotify struct {
		fn         string
		span       source.Span
		guaranteed bool
	}
	notifyIdx := map[string][]qnotify{}
	for _, name := range names {
		for _, n := range infos[name].notifies {
			q := qualify(name, n.cv)
			notifyIdx[q] = append(notifyIdx[q], qnotify{fn: name, span: n.span, guaranteed: n.guaranteed})
		}
	}
	// Notifies that reached a caller's summary through translation count
	// at the caller's identity too: a notify on a condvar parameter is
	// a notify on whatever the caller passed in. Strictly additive over
	// the direct entries (own events are skipped — already indexed).
	for _, name := range names {
		for _, e := range sortedEvents(sums[name]) {
			if e.Kind != opNotify || e.Fn == name {
				continue
			}
			root := pathRoot(e.Res)
			info := infos[name]
			if root != "self" && (info.params[root] || info.captures[root]) {
				continue // still unresolved at this level
			}
			q := qualify(name, e.Res)
			notifyIdx[q] = append(notifyIdx[q], qnotify{fn: e.Fn, span: e.Span, guaranteed: e.Guaranteed})
		}
	}
	report := func(name, waiter, cv string, span source.Span) {
		q := qualify(name, cv)
		rescued := false
		var conditional []qnotify
		for _, n := range notifyIdx[q] {
			if n.fn == name || n.fn == waiter {
				continue
			}
			if n.guaranteed {
				rescued = true
				break
			}
			conditional = append(conditional, n)
		}
		if rescued {
			return
		}
		notes := []string{
			fmt.Sprintf("wait at %s blocks until %q is notified", ctx.Fset.Position(span.Start), q),
		}
		if len(conditional) > 0 {
			n := conditional[0]
			notes = append(notes, fmt.Sprintf("the only notify, in %s at %s, is behind a condition and can be skipped — the classic lost-signal shape", n.fn, ctx.Fset.Position(n.span.Start)))
		} else {
			notes = append(notes, fmt.Sprintf("no other function ever calls notify_one/notify_all on %q", q))
		}
		emit(detect.Finding{
			Kind:     detect.KindBlocking,
			Severity: detect.SeverityError,
			Function: waiter,
			Span:     span,
			Message:  fmt.Sprintf("Condvar::wait on %q can block forever: no other function unconditionally notifies it", cv),
			Notes:    notes,
		})
	}
	for _, name := range names {
		info := infos[name]
		for _, w := range info.waits {
			root := pathRoot(w.cv)
			// A condvar handed in from outside (parameter or closure
			// capture) is judged at the caller that can name it — the
			// propagated pass below — and stays silent if no caller can.
			if root != "self" && (info.params[root] || info.captures[root]) {
				continue
			}
			report(name, name, w.cv, w.span)
		}
	}
	for _, name := range names {
		info := infos[name]
		for _, e := range sortedEvents(sums[name]) {
			if e.Kind != opWait || e.Fn == name {
				continue
			}
			root := pathRoot(e.Res)
			if root != "self" && (info.params[root] || info.captures[root]) {
				continue // the identity never resolved: escape = silence
			}
			report(name, e.Fn, e.Res, e.Span)
		}
	}
}

// onceReentry is the self-deadlock rule for Once: call_once blocks until
// the winning initializer finishes, so an initializer that reaches
// call_once on its own cell (directly or through helpers) waits on
// itself. The second pass closes the closure-through-parameter gap: a
// call_once whose initializer arrived as a parameter is resolved at
// each caller that passes a locally-defined closure binding in.
func (d *Detector) onceReentry(ctx *detect.Context, names []string, infos map[string]*funcInfo, sums map[string]resSummary, emit func(detect.Finding)) {
	// reentrant finds the opOnce event inside closureName's summary that
	// names the same cell as sitePath, with capture roots rewritten into
	// info's (the closure-defining function's) namespace.
	reentrant := func(info *funcInfo, closureName, sitePath string) *event {
		site := summary.NormalizePath(sitePath)
		closureInfo := infos[closureName]
		for _, e := range sortedEvents(sums[closureName]) {
			if e.Kind != opOnce {
				continue
			}
			t := e.Res
			root := pathRoot(t)
			if closureInfo != nil && closureInfo.captures[root] {
				if canon := info.res.canonName(root); canon != "" {
					t = rewriteRoot(t, root, canon)
				}
			}
			if summary.NormalizePath(t) == site {
				return e
			}
		}
		return nil
	}
	for _, name := range names {
		info := infos[name]
		for _, oc := range info.onces {
			if oc.closure == "" {
				continue
			}
			e := reentrant(info, oc.closure, oc.once)
			if e == nil {
				continue
			}
			via := ""
			if e.Fn != oc.closure {
				via = fmt.Sprintf(" through %s", e.Fn)
			}
			emit(detect.Finding{
				Kind:     detect.KindBlocking,
				Severity: detect.SeverityError,
				Function: name,
				Span:     oc.span,
				Message:  fmt.Sprintf("Once::call_once on %q re-enters call_once on the same Once from its initializer%s", oc.once, via),
				Notes: []string{
					fmt.Sprintf("the initializer reaches call_once on the same cell in %s at %s", e.Fn, ctx.Fset.Position(e.Span.Start)),
					"call_once blocks until the in-flight initializer completes, so the inner call waits on its own caller forever",
				},
			})
		}
	}
	// Closure-through-parameter pass: the helper runs call_once on a
	// cell and an initializer it both received; the caller knows which
	// closure it passed and what the cell parameter names on its side.
	for _, name := range names {
		info := infos[name]
		for _, cs := range info.calls {
			calleeInfo := infos[cs.callee]
			if calleeInfo == nil {
				continue
			}
			params := paramNames(ctx.Bodies[cs.callee])
			for _, oc := range calleeInfo.onces {
				if oc.closure != "" || oc.closureParam < 0 || oc.closureParam >= len(cs.argClosures) {
					continue
				}
				cn := cs.argClosures[oc.closureParam]
				if cn == "" {
					continue
				}
				oncePath := summary.TranslateRoot(oc.once, params, cs.argPaths)
				if oncePath == "" || pathDepth(oncePath) > maxPathDepth {
					continue
				}
				e := reentrant(info, cn, oncePath)
				if e == nil {
					continue
				}
				emit(detect.Finding{
					Kind:     detect.KindBlocking,
					Severity: detect.SeverityError,
					Function: name,
					Span:     cs.span,
					Message:  fmt.Sprintf("Once::call_once on %q re-enters call_once on the same Once from the initializer passed through %s", oncePath, cs.callee),
					Notes: []string{
						fmt.Sprintf("%s runs the closure under call_once on %q at %s", cs.callee, oc.once, ctx.Fset.Position(oc.span.Start)),
						fmt.Sprintf("the closure reaches call_once on the same cell in %s at %s", e.Fn, ctx.Fset.Position(e.Span.Start)),
						"call_once blocks until the in-flight initializer completes, so the inner call waits on its own caller forever",
					},
				})
			}
		}
	}
}

// allEndsWaiting is the every-thread-blocked rule from the study's
// channel-deadlock taxonomy: two spawned workers each perform a
// guaranteed recv first, and the only sends that could wake either are
// stuck behind the other worker's recv. Channel identities come from
// the spawner's visible constructions; worker-side params resolve
// through the same summary translation the lock rules use.
func (d *Detector) allEndsWaiting(ctx *detect.Context, names []string, infos map[string]*funcInfo, sums map[string]resSummary, emit func(detect.Finding)) {
	for _, name := range names {
		info := infos[name]
		if len(info.spawns) < 2 || len(info.chans) == 0 {
			continue
		}
		// chanOf resolves a path in the spawner's namespace (or a capture
		// name shared with a spawned closure) to a visible channel and
		// which half it is.
		chanOf := func(path string) (idx int, recvHalf bool, ok bool) {
			root := pathRoot(path)
			if path != root {
				return 0, false, false // projections: not a plain endpoint
			}
			l, has := info.res.byName[root]
			if !has {
				return 0, false, false
			}
			for i, ch := range info.chans {
				if ch.receivers[l] {
					return i, true, true
				}
				if ch.senders[l] {
					return i, false, true
				}
			}
			return 0, false, false
		}
		// Channels whose endpoints leave the contexts we can enumerate
		// (unresolved calls, non-spawn closures, stores) are unanalyzable.
		tainted := d.escapedChannels(ctx, info)

		type ctxRecv struct {
			chanIdx int
			ev      *event
			spawn   int
		}
		type ctxSend struct {
			chanIdx int
			after   map[int]bool
			spawn   int // -1 for the spawner's own context
		}
		var recvs []ctxRecv
		var sends []ctxSend
		collect := func(spawnIdx int, sum resSummary, capInfo *funcInfo) {
			for _, e := range sortedEvents(sum) {
				if e.Kind != opRecv && e.Kind != opSend {
					continue
				}
				// In a spawned context, only capture-rooted paths name
				// the spawner's channels; closure-local channels are a
				// different resource even under a colliding name.
				if capInfo != nil && !capInfo.captures[pathRoot(e.Res)] {
					continue
				}
				ci, recvHalf, ok := chanOf(e.Res)
				if !ok || tainted[ci] {
					continue
				}
				if e.Kind == opRecv {
					if recvHalf && spawnIdx >= 0 && e.Guaranteed {
						recvs = append(recvs, ctxRecv{chanIdx: ci, ev: e, spawn: spawnIdx})
					}
					continue
				}
				if recvHalf {
					continue
				}
				after := map[int]bool{}
				for a := range e.After {
					if capInfo != nil && !capInfo.captures[pathRoot(a)] {
						continue
					}
					if ai, aRecv, ok := chanOf(a); ok && aRecv {
						after[ai] = true
					}
				}
				sends = append(sends, ctxSend{chanIdx: ci, after: after, spawn: spawnIdx})
			}
		}
		for si, sp := range info.spawns {
			collect(si, sums[sp.closure], infos[sp.closure])
		}
		collect(-1, sums[name], nil)

		// A send can wake channel c unless it is stuck behind one of the
		// two deadlocked recvs.
		for i := 0; i < len(recvs); i++ {
			for j := i + 1; j < len(recvs); j++ {
				ri, rj := recvs[i], recvs[j]
				if ri.spawn == rj.spawn || ri.chanIdx == rj.chanIdx {
					continue
				}
				crossIJ := false // a send on ri's channel in rj's context behind rj's recv
				crossJI := false
				rescued := false
				for _, s := range sends {
					switch s.chanIdx {
					case ri.chanIdx:
						if s.spawn == rj.spawn && s.after[rj.chanIdx] {
							crossIJ = true
						} else if s.spawn != ri.spawn || !s.after[ri.chanIdx] {
							rescued = true
						}
					case rj.chanIdx:
						if s.spawn == ri.spawn && s.after[ri.chanIdx] {
							crossJI = true
						} else if s.spawn != rj.spawn || !s.after[rj.chanIdx] {
							rescued = true
						}
					}
					if rescued {
						break
					}
				}
				if rescued || !crossIJ || !crossJI {
					continue
				}
				first, second := ri, rj
				if second.ev.Span.Start < first.ev.Span.Start {
					first, second = second, first
				}
				emit(detect.Finding{
					Kind:     detect.KindBlocking,
					Severity: detect.SeverityError,
					Function: first.ev.Fn,
					Span:     first.ev.Span,
					Message: fmt.Sprintf("all ends waiting: recv() in %s and recv() in %s each block until the other sends, and every send is behind the other recv",
						first.ev.Fn, second.ev.Fn),
					Notes: []string{
						fmt.Sprintf("%s blocks on recv at %s; its reply is sent only after %s's recv at %s completes",
							first.ev.Fn, ctx.Fset.Position(first.ev.Span.Start), second.ev.Fn, ctx.Fset.Position(second.ev.Span.Start)),
						fmt.Sprintf("both threads are spawned by %s with the channel halves cross-wired; no third sender exists", name),
						"every thread pulls before it pushes, so no message is ever in flight — the study's all-ends-waiting channel deadlock",
					},
				})
			}
		}
	}
}

// escapedChannels marks visible channels whose sender or receiver half
// flows somewhere the all-ends-waiting rule cannot enumerate: an
// unresolved call, a closure that is never spawned here, a projected
// store, or a non-closure aggregate.
func (d *Detector) escapedChannels(ctx *detect.Context, info *funcInfo) map[int]bool {
	spawned := map[string]bool{}
	for _, sp := range info.spawns {
		spawned[sp.closure] = true
	}
	endpointOf := func(l mir.LocalID) (int, bool) {
		for i, ch := range info.chans {
			if ch.senders[l] || ch.receivers[l] {
				return i, true
			}
		}
		return 0, false
	}
	tainted := map[int]bool{}
	taintOp := func(op mir.Operand) {
		if pl, ok := mir.OperandPlace(op); ok && pl.IsLocal() && len(pl.Proj) == 0 {
			if ci, ok := endpointOf(pl.Local); ok {
				tainted[ci] = true
			}
		}
	}
	for _, blk := range info.body.Blocks {
		for _, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			if agg, isAgg := as.Rvalue.(mir.Aggregate); isAgg {
				if agg.Kind == mir.AggClosure && spawned[agg.Name] {
					continue // captures of a spawned closure are analyzed
				}
				for _, op := range agg.Ops {
					taintOp(op)
				}
				continue
			}
			if len(as.Place.Proj) > 0 {
				for _, pl := range rvaluePlaces(as.Rvalue) {
					if len(pl.Proj) == 0 {
						if ci, ok := endpointOf(pl.Local); ok {
							tainted[ci] = true
						}
					}
				}
			}
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		switch c.Intrinsic {
		case mir.IntrinsicChanRecv, mir.IntrinsicChanSend, mir.IntrinsicDrop, mir.IntrinsicClone:
			continue
		case mir.IntrinsicSpawn:
			// The spawned closure itself was built from an aggregate the
			// statement scan already classified.
			continue
		case mir.IntrinsicNone:
			if resolvedCallee(ctx, c) != "" {
				continue // flows into summaries we scan
			}
			for _, a := range c.Args {
				taintOp(a)
			}
		default:
			for _, a := range c.Args {
				taintOp(a)
			}
		}
	}
	return tainted
}

// unavoidable reports whether every entry→return path passes through
// block at: a notify there fires on every call.
func unavoidable(body *mir.Body, g *cfg.Graph, at mir.BlockID) bool {
	if len(body.Blocks) == 0 {
		return false
	}
	entry := body.Blocks[0].ID
	if entry == at {
		return true
	}
	byID := make(map[mir.BlockID]*mir.Block, len(body.Blocks))
	for _, blk := range body.Blocks {
		byID[blk.ID] = blk
	}
	seen := map[mir.BlockID]bool{at: true, entry: true}
	stack := []mir.BlockID{entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := byID[id]
		if blk == nil {
			continue
		}
		if _, isRet := blk.Term.(mir.Return); isRet {
			return false
		}
		for _, s := range blk.Term.Successors() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

func cloneLocks(locks map[string]doublelock.Mode) map[string]doublelock.Mode {
	out := make(map[string]doublelock.Mode, len(locks))
	for id, m := range locks {
		out[id] = m
	}
	return out
}

func translateLocks(locks map[string]doublelock.Mode, params, argPaths []string) map[string]doublelock.Mode {
	out := map[string]doublelock.Mode{}
	for id, m := range locks {
		if t := summary.TranslateRoot(id, params, argPaths); t != "" {
			out[t] = m
		}
	}
	return out
}

func locksString(locks map[string]doublelock.Mode) string {
	if len(locks) == 0 {
		return "no locks"
	}
	ids := make([]string, 0, len(locks))
	for id := range locks {
		ids = append(ids, fmt.Sprintf("%s(%s)", id, locks[id]))
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

// closureLocals maps locals holding a closure value to the closure body
// name, propagated through moves.
func closureLocals(body *mir.Body) map[mir.LocalID]string {
	out := map[mir.LocalID]string{}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				if _, done := out[as.Place.Local]; done {
					continue
				}
				switch rv := as.Rvalue.(type) {
				case mir.Aggregate:
					if rv.Kind == mir.AggClosure {
						out[as.Place.Local] = rv.Name
						changed = true
					}
				case mir.Use:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if cn, has := out[pl.Local]; has {
							out[as.Place.Local] = cn
							changed = true
						}
					}
				}
			}
		}
	}
	return out
}

func paramNames(body *mir.Body) []string {
	if body == nil {
		return nil
	}
	out := make([]string, 0, body.ArgCount)
	for i := 1; i <= body.ArgCount && i < len(body.Locals); i++ {
		out = append(out, body.Locals[i].Name)
	}
	return out
}

func methodName(callee string) string {
	if i := strings.LastIndex(callee, "::"); i >= 0 {
		return callee[i+2:]
	}
	return callee
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}
