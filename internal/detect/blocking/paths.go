package blocking

import (
	"strings"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/mir"
	"rustprobe/internal/pointsto"
	"rustprobe/internal/summary"
	"rustprobe/internal/types"
)

// resolver renders MIR places of one function as canonical source-level
// path strings — the namespace the lock identities already use
// ("self.client", "queue", "static COUNTER") — so channel endpoints,
// condvars and Once cells reached through different handles compare
// equal. It mirrors the race detector's resolver: a guard-holding local
// resolves to its lock's path, Ref/AddrOf/Arc::clone/handle-clone aliases
// forward symbolically, and points-to roots lend temporaries a name.
type resolver struct {
	body    *mir.Body
	guards  map[mir.LocalID]doublelock.Guard
	pts     *pointsto.Result
	pointee map[mir.LocalID]string
	byName  map[string]mir.LocalID
}

func newResolver(ctx *detect.Context, name string, body *mir.Body, guards map[mir.LocalID]doublelock.Guard) *resolver {
	r := &resolver{
		body:    body,
		guards:  guards,
		pts:     ctx.PointsTo(name),
		pointee: map[mir.LocalID]string{},
		byName:  map[string]mir.LocalID{},
	}
	for _, l := range body.Locals {
		if l.Name != "" {
			if _, dup := r.byName[l.Name]; !dup {
				r.byName[l.Name] = l.ID
			}
		}
	}
	r.propagate()
	return r
}

// canonName resolves a variable name to its canonical root path through
// the alias map. Unknown names return "".
func (r *resolver) canonName(name string) string {
	l, ok := r.byName[name]
	if !ok {
		return ""
	}
	return r.rootPath(l)
}

// canonPath canonicalizes a source-level path (like a Call.RecvPath) by
// rewriting its root through the alias map.
func (r *resolver) canonPath(path string) string {
	path = summary.NormalizePath(path)
	root := pathRoot(path)
	if strings.HasPrefix(root, "static ") {
		return path
	}
	if canon := r.canonName(root); canon != "" && canon != root {
		return rewriteRoot(path, root, canon)
	}
	return path
}

// handleLike reports whether a value of type t is a shared handle: copying
// or cloning it yields another name for the same storage. Sender halves
// are handles too: clone() on a Sender aliases the same channel.
func handleLike(t types.Type) bool {
	if types.IsPointerLike(t) {
		return true
	}
	n, ok := t.(*types.Named)
	return ok && (n.Name == "Arc" || n.Name == "Rc" || n.Name == "Sender" || n.Name == "SyncSender")
}

// propagate fills the pointee map to a fixpoint; first assignment wins,
// exactly like the race resolver.
func (r *resolver) propagate() {
	set := func(l mir.LocalID, p string) bool {
		if p == "" {
			return false
		}
		if _, ok := r.pointee[l]; ok {
			return false
		}
		r.pointee[l] = p
		return true
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range r.body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				dest := as.Place.Local
				switch rv := as.Rvalue.(type) {
				case mir.Ref:
					if set(dest, r.placePath(rv.Place)) {
						changed = true
					}
				case mir.AddrOf:
					if set(dest, r.placePath(rv.Place)) {
						changed = true
					}
				case mir.Use:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if p, has := r.pointee[pl.Local]; has && set(dest, p) {
							changed = true
						}
					}
				case mir.Cast:
					if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() {
						if p, has := r.pointee[pl.Local]; has && set(dest, p) {
							changed = true
						}
					}
				}
			}
			c, ok := blk.Term.(mir.Call)
			if !ok || !c.Dest.IsLocal() {
				continue
			}
			switch c.Intrinsic {
			case mir.IntrinsicArcClone, mir.IntrinsicUnwrap, mir.IntrinsicCondvarWait:
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok {
						if set(c.Dest.Local, r.valuePath(pl)) {
							changed = true
						}
					}
				}
			case mir.IntrinsicClone:
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok {
						if handleLike(r.localType(pl.Local)) {
							if set(c.Dest.Local, r.valuePath(pl)) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

func (r *resolver) localType(l mir.LocalID) types.Type {
	if int(l) < len(r.body.Locals) {
		return r.body.Locals[l].Ty
	}
	return types.UnknownType
}

// rootPath resolves the canonical path of a local's storage-or-referent.
func (r *resolver) rootPath(l mir.LocalID) string {
	if g, ok := r.guards[l]; ok {
		return g.Lock
	}
	if p, ok := r.pointee[l]; ok {
		return p
	}
	loc := r.body.Local(l)
	if loc.Name != "" {
		return loc.Name
	}
	if targets := r.pts.Targets(l); len(targets) == 1 {
		for t := range targets {
			if t != l && int(t) < len(r.body.Locals) && r.body.Locals[t].Name != "" {
				return r.body.Locals[t].Name
			}
		}
	}
	return ""
}

// placePath renders a place as a canonical path; derefs are elided.
func (r *resolver) placePath(p mir.Place) string {
	root := r.rootPath(p.Local)
	if root == "" {
		return ""
	}
	var b strings.Builder
	b.WriteString(root)
	for _, pr := range p.Proj {
		switch pr := pr.(type) {
		case mir.FieldProj:
			b.WriteString(".")
			b.WriteString(pr.Name)
		case mir.IndexProj:
			b.WriteString("[_]")
		}
	}
	return b.String()
}

// valuePath is the path denoted by the value stored at a place (paths
// conflate a reference with its target, like the lock-id scheme).
func (r *resolver) valuePath(p mir.Place) string {
	return r.placePath(p)
}

// pathRoot returns the leading segment of a canonical path.
func pathRoot(p string) string {
	if rest, ok := strings.CutPrefix(p, "static "); ok {
		if i := strings.IndexAny(rest, ".["); i >= 0 {
			return "static " + rest[:i]
		}
		return p
	}
	if i := strings.IndexAny(p, ".["); i >= 0 {
		return p[:i]
	}
	return p
}

// rewriteRoot replaces the root segment of path with to.
func rewriteRoot(path, root, to string) string {
	if path == root {
		return to
	}
	return to + path[len(root):]
}

// pathDepth counts path segments, bounding translated paths through
// recursive call chains.
func pathDepth(p string) int {
	return 1 + strings.Count(p, ".") + strings.Count(p, "[")
}
