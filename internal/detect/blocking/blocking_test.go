package blocking

import (
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func dump(fs []detect.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(string(f.Kind) + "|" + f.Function + ": " + f.Message + "\n")
	}
	return b.String()
}

func wantOne(t *testing.T, fs []detect.Finding, fn string) {
	t.Helper()
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding in %s, got %d:\n%s", fn, len(fs), dump(fs))
	}
	if fs[0].Function != fn {
		t.Errorf("finding in %s, want %s:\n%s", fs[0].Function, fn, dump(fs))
	}
	if fs[0].Kind != detect.KindBlocking {
		t.Errorf("kind %s, want blocking", fs[0].Kind)
	}
}

func wantNone(t *testing.T, fs []detect.Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Fatalf("want no findings, got:\n%s", dump(fs))
	}
}

// --- Rule: hold-and-wait channel cycles -----------------------------------

// The receiver blocks on recv() while holding the lock the sender must
// acquire before it can send: a two-thread wait cycle.
func TestChannelRecvWhileHoldingSendersLock(t *testing.T) {
	fs := analyze(t, `
struct Hub { state: Mutex<i32> }
impl Hub {
    fn pull(&self, rx: Receiver<i32>) {
        let g = self.state.lock().unwrap();
        let v = rx.recv().unwrap();
        use_both(*g, v);
    }
    fn push(&self, tx: Sender<i32>) {
        let g = self.state.lock().unwrap();
        tx.send(*g);
    }
}
`)
	wantOne(t, fs, "Hub::pull")
}

// Releasing the lock before blocking breaks the cycle.
func TestChannelRecvAfterReleasingLock(t *testing.T) {
	fs := analyze(t, `
struct Hub { state: Mutex<i32> }
impl Hub {
    fn pull(&self, rx: Receiver<i32>) {
        let snapshot = { let g = self.state.lock().unwrap(); *g };
        let v = rx.recv().unwrap();
        use_both(snapshot, v);
    }
    fn push(&self, tx: Sender<i32>) {
        let g = self.state.lock().unwrap();
        tx.send(*g);
    }
}
`)
	wantNone(t, fs)
}

// A sender that needs no lock can always make progress: no cycle.
func TestChannelRecvSenderNeedsNoLock(t *testing.T) {
	fs := analyze(t, `
struct Hub { state: Mutex<i32> }
impl Hub {
    fn pull(&self, rx: Receiver<i32>) {
        let g = self.state.lock().unwrap();
        let v = rx.recv().unwrap();
        use_both(*g, v);
    }
    fn push(&self, tx: Sender<i32>) {
        tx.send(1);
    }
}
`)
	wantNone(t, fs)
}

// The recv hides in a helper; the summary carries it (with the helper's
// endpoint translated to the caller's field) up to the lock-holding
// caller.
func TestChannelRecvThroughHelper(t *testing.T) {
	fs := analyze(t, `
struct Hub { state: Mutex<i32>, inbox: Receiver<i32>, outbox: Sender<i32> }
impl Hub {
    fn pull(&self) {
        let g = self.state.lock().unwrap();
        let v = self.drain();
        use_both(*g, v);
    }
    fn drain(&self) -> i32 {
        let v = self.inbox.recv().unwrap();
        v
    }
    fn push(&self) {
        let g = self.state.lock().unwrap();
        self.outbox.send(*g);
    }
}
`)
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding, got %d:\n%s", len(fs), dump(fs))
	}
	if fs[0].Function != "Hub::drain" {
		t.Errorf("finding attributed to %s, want the literal recv site Hub::drain:\n%s", fs[0].Function, dump(fs))
	}
}

// --- Rule: orphaned receive ------------------------------------------------

func TestOrphanedRecvDroppedSender(t *testing.T) {
	fs := analyze(t, `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    drop(tx);
    let v = rx.recv().unwrap();
    v
}
`)
	wantOne(t, fs, "poll")
}

// The sender escapes into a spawned closure: someone may send.
func TestOrphanedRecvNegativeSenderEscapes(t *testing.T) {
	fs := analyze(t, `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || { tx.send(7); });
    let v = rx.recv().unwrap();
    v
}
`)
	wantNone(t, fs)
}

// A used sender (send before recv) is live even if dropped afterwards.
func TestOrphanedRecvNegativeSenderUsed(t *testing.T) {
	fs := analyze(t, `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    tx.send(7);
    drop(tx);
    let v = rx.recv().unwrap();
    v
}
`)
	wantNone(t, fs)
}

// A cloned-then-dropped sender is still orphaned: no alias survives.
func TestOrphanedRecvCloneStillOrphaned(t *testing.T) {
	fs := analyze(t, `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    let tx2 = tx.clone();
    drop(tx);
    drop(tx2);
    let v = rx.recv().unwrap();
    v
}
`)
	wantOne(t, fs, "poll")
}

// Passing the sender to another function counts as escape.
func TestOrphanedRecvNegativeSenderPassedOn(t *testing.T) {
	fs := analyze(t, `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    hand_off(tx);
    let v = rx.recv().unwrap();
    v
}
fn hand_off(tx: Sender<i32>) {
    tx.send(1);
}
`)
	wantNone(t, fs)
}

// --- Rule: condvar lost signal ---------------------------------------------

func TestCondvarNoNotifier(t *testing.T) {
	fs := analyze(t, `
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
}
`)
	wantOne(t, fs, "W::wait")
}

func TestCondvarConditionalNotifyStillLost(t *testing.T) {
	fs := analyze(t, `
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
    fn signal(&self, go: bool) {
        if go {
            self.cv.notify_all();
        }
    }
}
`)
	wantOne(t, fs, "W::wait")
	if !strings.Contains(fs[0].Notes[1], "behind a condition") {
		t.Errorf("note should name the conditional notify, got %q", fs[0].Notes[1])
	}
}

func TestCondvarGuaranteedNotifyRescues(t *testing.T) {
	fs := analyze(t, `
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
    fn signal(&self) {
        let mut g = self.ready.lock().unwrap();
        *g = true;
        drop(g);
        self.cv.notify_all();
    }
}
`)
	wantNone(t, fs)
}

// A condvar received as a parameter with no caller giving it a concrete
// identity has unknowable notifiers: silent.
func TestCondvarParameterSilent(t *testing.T) {
	fs := analyze(t, `
fn waiter(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}
`)
	wantNone(t, fs)
}

// A param-rooted wait resolves at the caller that passes a concrete
// condvar in: the caller-side identity is matched against program-wide
// notifies, closing the documented parameter false negative.
func TestCondvarParamWaitResolvedAtCaller(t *testing.T) {
	fs := analyze(t, `
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn block(&self) {
        wait_on(self.ready, self.cv);
    }
    fn signal(&self, go: bool) {
        if go {
            self.cv.notify_all();
        }
    }
}
fn wait_on(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}
`)
	wantOne(t, fs, "wait_on")
	if !strings.Contains(fs[0].Notes[1], "behind a condition") {
		t.Errorf("note should name the conditional notify, got %q", fs[0].Notes[1])
	}
}

// The same propagated identity is rescued by a guaranteed notify on the
// caller's condvar: no false positive from the new pass.
func TestCondvarParamWaitGuaranteedNotifyRescues(t *testing.T) {
	fs := analyze(t, `
struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn block(&self) {
        wait_on(self.ready, self.cv);
    }
    fn signal(&self) {
        self.cv.notify_all();
    }
}
fn wait_on(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}
`)
	wantNone(t, fs)
}

// A wait whose condvar stays parameter-rooted through the whole call
// chain never resolves: escape = silence, not a false positive.
func TestCondvarParamChainNeverResolvesSilent(t *testing.T) {
	fs := analyze(t, `
fn outer(m: Mutex<bool>, cv: Condvar) {
    wait_on(m, cv);
}
fn wait_on(m: Mutex<bool>, cv: Condvar) {
    let g = m.lock().unwrap();
    let g2 = cv.wait(g);
    consume(g2);
}
`)
	wantNone(t, fs)
}

// --- Rule: all ends waiting --------------------------------------------------

// Two spawned workers with cross-wired channel parameters each pull
// before pushing: no message is ever in flight.
func TestAllEndsWaitingCrossWiredWorkers(t *testing.T) {
	fs := analyze(t, `
fn worker_a(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}
fn worker_b(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 2);
}
fn pipeline() {
    let (tx_a, rx_a) = mpsc::channel();
    let (tx_b, rx_b) = mpsc::channel();
    thread::spawn(move || { worker_a(rx_a, tx_b); });
    thread::spawn(move || { worker_b(rx_b, tx_a); });
}
`)
	wantOne(t, fs, "worker_a")
	if !strings.Contains(fs[0].Message, "all ends waiting") {
		t.Errorf("message should name the shape, got %q", fs[0].Message)
	}
}

// Seeding the ring with a message before spawning rescues the cycle:
// the spawner's own send has no recv dependency.
func TestAllEndsWaitingSeededSendRescues(t *testing.T) {
	fs := analyze(t, `
fn worker_a(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}
fn worker_b(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 2);
}
fn pipeline() {
    let (tx_a, rx_a) = mpsc::channel();
    let (tx_b, rx_b) = mpsc::channel();
    tx_a.send(0);
    thread::spawn(move || { worker_a(rx_a, tx_b); });
    thread::spawn(move || { worker_b(rx_b, tx_a); });
}
`)
	wantNone(t, fs)
}

// A worker that pushes before it pulls keeps the ring live: no cycle.
func TestAllEndsWaitingSendFirstWorkerRescues(t *testing.T) {
	fs := analyze(t, `
fn worker_a(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}
fn worker_push(rx: Receiver<i32>, tx: Sender<i32>) {
    tx.send(0);
    let job = rx.recv().unwrap();
    consume(job);
}
fn pipeline() {
    let (tx_a, rx_a) = mpsc::channel();
    let (tx_b, rx_b) = mpsc::channel();
    thread::spawn(move || { worker_a(rx_a, tx_b); });
    thread::spawn(move || { worker_push(rx_b, tx_a); });
}
`)
	wantNone(t, fs)
}

// An endpoint escaping to an unresolvable callee taints the channel:
// silence rather than a guess.
func TestAllEndsWaitingEscapedEndpointSilent(t *testing.T) {
	fs := analyze(t, `
fn worker_a(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 1);
}
fn worker_b(rx: Receiver<i32>, tx: Sender<i32>) {
    let job = rx.recv().unwrap();
    tx.send(job + 2);
}
fn pipeline() {
    let (tx_a, rx_a) = mpsc::channel();
    let (tx_b, rx_b) = mpsc::channel();
    let tx_extra = tx_a.clone();
    mystery::stash(tx_extra);
    thread::spawn(move || { worker_a(rx_a, tx_b); });
    thread::spawn(move || { worker_b(rx_b, tx_a); });
}
`)
	wantNone(t, fs)
}

// Distinct condvars on distinct types don't rescue each other.
func TestCondvarWrongNotifierDoesNotRescue(t *testing.T) {
	fs := analyze(t, `
struct A { m: Mutex<bool>, cv: Condvar }
struct B { m: Mutex<bool>, cv: Condvar }
impl A {
    fn wait(&self) {
        let g = self.m.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
}
impl B {
    fn signal(&self) {
        self.cv.notify_all();
    }
}
`)
	wantOne(t, fs, "A::wait")
}

// --- Rule: Once reentrancy --------------------------------------------------

func TestOnceReentrantThroughHelper(t *testing.T) {
	fs := analyze(t, `
fn init(once: Once) {
    once.call_once(|| {
        helper(once);
    });
}
fn helper(once: Once) {
    once.call_once(|| {
        work();
    });
}
`)
	wantOne(t, fs, "init")
	if !strings.Contains(fs[0].Message, "helper") {
		t.Errorf("message should name the re-entry path, got %q", fs[0].Message)
	}
}

func TestOnceDistinctCellsClean(t *testing.T) {
	fs := analyze(t, `
fn init(first: Once, second: Once) {
    first.call_once(|| {
        inner(second);
    });
}
fn inner(second: Once) {
    second.call_once(|| {
        work();
    });
}
`)
	wantNone(t, fs)
}

// The initializer closure is handed through a helper parameter; the
// caller resolves both the closure binding and the cell identity.
func TestOnceReentrantClosureThroughParam(t *testing.T) {
	fs := analyze(t, `
fn run_init(once: Once, f: F) {
    once.call_once(f);
}
fn init(once: Once) {
    let f = || {
        once.call_once(|| { work(); });
    };
    run_init(once, f);
}
`)
	wantOne(t, fs, "init")
	if !strings.Contains(fs[0].Message, "run_init") {
		t.Errorf("message should name the helper, got %q", fs[0].Message)
	}
}

// Distinct cells through the same helper shape: no re-entry.
func TestOnceDistinctCellsThroughParamClean(t *testing.T) {
	fs := analyze(t, `
fn run_init(once: Once, f: F) {
    once.call_once(f);
}
fn init(first: Once, second: Once) {
    let f = || {
        second.call_once(|| { work(); });
    };
    run_init(first, f);
}
`)
	wantNone(t, fs)
}

// A locally-bound closure (let f = || …; cell.call_once(f)) resolves
// through the binding, including a move binding.
func TestOnceReentrantClosureByVariable(t *testing.T) {
	fs := analyze(t, `
fn init(once: Once) {
    let f = move || {
        once.call_once(|| { work(); });
    };
    once.call_once(f);
}
`)
	wantOne(t, fs, "init")
}

func TestOncePlainInitClean(t *testing.T) {
	fs := analyze(t, `
static mut CONFIG: i32 = 0;
fn init(once: Once) -> i32 {
    once.call_once(|| {
        unsafe { CONFIG = 42; }
    });
    unsafe { CONFIG }
}
`)
	wantNone(t, fs)
}
