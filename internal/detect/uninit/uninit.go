// Package uninit detects reads of uninitialized memory (Table 2's
// "Uninitialized" category, all unsafe→safe in the paper): a buffer created
// by alloc()/mem::uninitialized is read — dereferenced in rvalue position
// or passed to a dereferencing callee — before any initializing write.
package uninit

import (
	"fmt"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/dropflow"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
)

// Detector finds uninitialized reads.
type Detector struct {
	// Precise drops candidate findings the shared dropflow walk proves
	// safe on every feasible path. See internal/dropflow.
	Precise bool
}

// New returns the detector.
func New() *Detector { return &Detector{} }

// NewPrecise returns the detector with path-sensitive refutation enabled.
func NewPrecise() *Detector { return &Detector{Precise: true} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "uninitialized-read" }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var out []detect.Finding
	for _, name := range ctx.Graph.Names() {
		out = append(out, d.check(ctx, name)...)
	}
	detect.SortFindings(out)
	return out
}

func (d *Detector) check(ctx *detect.Context, name string) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	var df *dropflow.Result
	if d.Precise {
		df = ctx.DropFlow(name)
	}

	// Bit l: local l holds a pointer to (or is a value of) uninitialized
	// memory.
	prob := &dataflow.Problem{
		Bits: len(body.Locals),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			as, ok := st.(mir.Assign)
			if !ok {
				return
			}
			if as.Place.HasDeref() {
				// Writing through the pointer initializes it.
				state.Clear(int(as.Place.Local))
				return
			}
			switch rv := as.Rvalue.(type) {
			case mir.Use:
				if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
					state.Set(int(as.Place.Local))
					return
				}
			case mir.Cast:
				if pl, ok := mir.OperandPlace(rv.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
					state.Set(int(as.Place.Local))
					return
				}
			}
			state.Clear(int(as.Place.Local))
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			c, ok := term.(mir.Call)
			if !ok {
				return
			}
			switch c.Intrinsic {
			case mir.IntrinsicAlloc:
				if c.Dest.IsLocal() {
					state.Set(int(c.Dest.Local))
				}
			case mir.IntrinsicPtrWrite:
				if len(c.Args) > 0 {
					if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
						state.Clear(int(pl.Local))
					}
				}
			default:
				if c.Dest.IsLocal() {
					state.Clear(int(c.Dest.Local))
				}
			}
		},
	}
	res := dataflow.Forward(g, prob)

	var out []detect.Finding
	report := func(span source.Span, l mir.LocalID) {
		out = append(out, detect.Finding{
			Kind:     detect.KindUninitRead,
			Severity: detect.SeverityError,
			Function: name,
			Span:     span,
			Message:  fmt.Sprintf("read through %s before its allocation is initialized", body.Local(l)),
			Notes:    []string{"initialize with ptr::write or zero-fill before reading"},
		})
	}

	checkRead := func(state dataflow.BitSet, span source.Span, blk mir.BlockID, stmt int) func(mir.Place) {
		return func(p mir.Place) {
			if p.HasDeref() && state.Has(int(p.Local)) {
				if df.RefutesUninit(dropflow.SiteKey{Block: blk, Stmt: stmt, Local: p.Local}) {
					return
				}
				report(span, p.Local)
			}
		}
	}

	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		for i, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			state := res.StateAt(blk.ID, i)
			check := checkRead(state, as.Span, blk.ID, i)
			// Only rvalue-side reads: the assigned place is a write.
			switch rv := as.Rvalue.(type) {
			case mir.Use:
				if pl, ok := mir.OperandPlace(rv.X); ok {
					check(pl)
				}
			case mir.BinaryOp:
				if pl, ok := mir.OperandPlace(rv.L); ok {
					check(pl)
				}
				if pl, ok := mir.OperandPlace(rv.R); ok {
					check(pl)
				}
			case mir.UnaryOp:
				if pl, ok := mir.OperandPlace(rv.X); ok {
					check(pl)
				}
			}
		}
		// ptr::read from uninitialized memory is also an uninit read.
		if c, ok := blk.Term.(mir.Call); ok && c.Intrinsic == mir.IntrinsicPtrRead {
			state := res.StateAt(blk.ID, len(blk.Stmts))
			if len(c.Args) > 0 {
				if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
					if !df.RefutesUninit(dropflow.SiteKey{Block: blk.ID, Stmt: -1, Local: pl.Local}) {
						report(c.Span, pl.Local)
					}
				}
			}
		}
	}
	return out
}
