package uninit

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func TestReadBeforeInitFlagged(t *testing.T) {
	src := `
unsafe fn f() -> u8 {
    let buf = alloc(16) as *mut u8;
    *buf
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindUninitRead {
		t.Errorf("kind = %s", findings[0].Kind)
	}
}

func TestReadAfterPtrWriteClean(t *testing.T) {
	src := `
unsafe fn f() -> u8 {
    let buf = alloc(16) as *mut u8;
    ptr::write(buf, 0u8);
    *buf
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("initialized read flagged: %+v", findings)
	}
}

func TestReadAfterAssignClean(t *testing.T) {
	src := `
unsafe fn f() -> u8 {
    let buf = alloc(16) as *mut u8;
    *buf = 1u8;
    *buf
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("assigned read flagged: %+v", findings)
	}
}

func TestConditionalInitStillFlagged(t *testing.T) {
	// May-analysis: one path leaves the buffer uninitialized.
	src := `
unsafe fn f(c: bool) -> u8 {
    let buf = alloc(16) as *mut u8;
    if c {
        ptr::write(buf, 0u8);
    }
    *buf
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}
