// Package detect defines the shared detector infrastructure: the Finding
// type, the analysis Context handed to each detector, and the registry of
// built-in detectors (the paper's two headline detectors plus the
// extensions its §7 recommendations call for).
package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rustprobe/internal/callgraph"
	"rustprobe/internal/dropflow"
	"rustprobe/internal/hir"
	"rustprobe/internal/mir"
	"rustprobe/internal/pointsto"
	"rustprobe/internal/source"
)

// Kind classifies a finding.
type Kind string

// Finding kinds.
const (
	KindUseAfterFree   Kind = "use-after-free"
	KindDoubleLock     Kind = "double-lock"
	KindLockOrder      Kind = "conflicting-lock-order"
	KindDoubleFree     Kind = "double-free"
	KindInvalidFree    Kind = "invalid-free"
	KindUninitRead     Kind = "uninitialized-read"
	KindInteriorMut    Kind = "unsynchronized-interior-mutability"
	KindBorrowConflict Kind = "borrow-conflict"
	KindDataRace       Kind = "data-race"
	KindBlocking       Kind = "blocking"
)

// Severity ranks findings.
type Severity int

// Severity levels.
const (
	SeverityWarning Severity = iota
	SeverityError
)

func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Finding is one detector report.
type Finding struct {
	Kind     Kind
	Severity Severity
	Function string // qualified function name
	Span     source.Span
	Message  string
	Notes    []string
}

// Format renders the finding with a resolved position.
func (f Finding) Format(fset *source.FileSet) string {
	pos := fset.Position(f.Span.Start)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s: [%s] %s (in %s)", pos, f.Severity, f.Kind, f.Message, f.Function)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "\n    note: %s", n)
	}
	return b.String()
}

// Context carries everything a detector needs. Program, Bodies, Graph
// and Fset are immutable after NewContext, and the points-to cache is
// mutex-guarded, so independent detectors may share one Context from
// concurrent goroutines.
type Context struct {
	Program *hir.Program
	Bodies  map[string]*mir.Body
	Graph   *callgraph.Graph
	Fset    *source.FileSet

	mu  sync.Mutex
	pts map[string]*pointsto.Result

	dropOnce sync.Once
	dropSums map[string]*dropflow.FnSummary
	dropMu   sync.Mutex
	dropRes  map[string]*dropflow.Result
}

// NewContext builds a Context, precomputing the call graph.
func NewContext(prog *hir.Program, bodies map[string]*mir.Body) *Context {
	return NewContextWithGraph(prog, bodies, callgraph.Build(bodies))
}

// NewContextWithGraph builds a Context around a caller-supplied call
// graph — the incremental session path, where the graph is patched
// in place per round instead of rebuilt from the full body set. The
// graph must describe exactly the given bodies.
func NewContextWithGraph(prog *hir.Program, bodies map[string]*mir.Body, g *callgraph.Graph) *Context {
	return &Context{
		Program: prog,
		Bodies:  bodies,
		Graph:   g,
		Fset:    prog.Fset,
		pts:     map[string]*pointsto.Result{},
		dropRes: map[string]*dropflow.Result{},
	}
}

// PointsTo returns (caching) the points-to result for a function. The
// analysis runs outside the lock so concurrent detectors never serialize
// on each other's fixpoints; a rare duplicate computation is discarded.
// Unknown function names yield an empty result rather than panicking on
// a nil body.
func (c *Context) PointsTo(fn string) *pointsto.Result {
	c.mu.Lock()
	if r, ok := c.pts[fn]; ok {
		c.mu.Unlock()
		return r
	}
	c.mu.Unlock()
	body := c.Bodies[fn]
	if body == nil {
		return &pointsto.Result{PointsTo: map[mir.LocalID]map[mir.LocalID]bool{}}
	}
	r := pointsto.Analyze(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.pts[fn]; ok {
		return prev
	}
	c.pts[fn] = r
	return r
}

// DropFlowSummaries returns (computing once) the shared context-sensitive
// parameter-dereference summaries used by the precise detectors. The map
// and the summaries it holds are shared across detectors and must be
// treated as immutable.
func (c *Context) DropFlowSummaries() map[string]*dropflow.FnSummary {
	c.dropOnce.Do(func() {
		c.dropSums = dropflow.ComputeSummaries(c.Bodies, c.Graph)
	})
	return c.dropSums
}

// DropFlow returns (caching) the path-sensitive drop-and-alias walk for a
// function. Like PointsTo, the walk runs outside the lock; the shared
// Result must be treated as immutable by all detectors.
func (c *Context) DropFlow(fn string) *dropflow.Result {
	c.dropMu.Lock()
	if r, ok := c.dropRes[fn]; ok {
		c.dropMu.Unlock()
		return r
	}
	c.dropMu.Unlock()
	sums := c.DropFlowSummaries()
	body := c.Bodies[fn]
	r := dropflow.Analyze(body, dropflow.Options{Lookup: func(name string) (*dropflow.FnSummary, bool) {
		s, ok := sums[name]
		return s, ok
	}})
	c.dropMu.Lock()
	defer c.dropMu.Unlock()
	if prev, ok := c.dropRes[fn]; ok {
		return prev
	}
	c.dropRes[fn] = r
	return r
}

// Detector is one analysis pass over a Context.
type Detector interface {
	Name() string
	Run(*Context) []Finding
}

// Carry is a detector's opaque incremental fact cache, threaded between
// rounds by the session. Carries hold per-function extraction results
// keyed by body identity; they are process-local and never serialized.
type Carry interface{}

// Incremental is a detector whose whole-program pass splits into
// per-function fact extraction (cacheable) and a cheap global pairing
// phase. RunIncremental re-extracts facts only for functions in dirty
// (or whose cached body no longer matches), warm-starts any summary
// fixpoints from the carry, and re-runs pairing over the full fact set.
//
// The contract is byte-identity: RunIncremental(ctx, carry, dirty) must
// return exactly the findings Run(ctx) would, for any carry produced by
// a prior round whose unchanged functions kept their body objects. A
// nil carry (or nil dirty) degrades to a full extraction and seeds a
// fresh carry. The int is the number of functions whose cached facts
// were reused, for serving-layer stats.
//
// Callers must not thread a carry across a round that changed the set
// of function names or anything outside function bodies: cached facts
// embed call resolution, which such changes can flip without touching
// the caller's body. The session enforces this by rebuilding from
// scratch (dropping carries) on any interface or file-set change.
type Incremental interface {
	Detector
	RunIncremental(ctx *Context, carry Carry, dirty map[string]bool) ([]Finding, Carry, int)
}

// FactCounter is the optional sizing interface a Carry may implement;
// the session's exported-state manifest records the counts so operators
// can see how much process-local cache a restart will cost.
type FactCounter interface {
	FactCount() int
}

// CloseOverCallers expands a recompute set in place with the transitive
// callers of its members — the closure summary.ComputeFrom requires
// before a warm-started fixpoint may reuse an SCC: a clean function must
// have no recomputed transitive callee, or its cached summary could be
// stale. Fact extraction stays per-function; only the summary phase
// widens to this closure.
func CloseOverCallers(g *callgraph.Graph, recompute map[string]bool) {
	if len(recompute) == 0 {
		return
	}
	seeds := make([]string, 0, len(recompute))
	for n := range recompute {
		seeds = append(seeds, n)
	}
	for n := range g.TransitiveCallers(seeds...) {
		recompute[n] = true
	}
}

// SortFindings orders findings by position then kind for stable output.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Span.Start != fs[j].Span.Start {
			return fs[i].Span.Start < fs[j].Span.Start
		}
		return fs[i].Kind < fs[j].Kind
	})
}
