// Package dynamic adapts the interp explorer to the detect.Detector
// interface so the bounded Miri-style checker can be selected by name
// (`-detect dynamic`) alongside the static detectors. It is opt-in rather
// than part of the default suite: like all dynamic tools (the paper's
// §2.4 critique of Miri), its findings depend on which paths the bounded
// exploration reaches.
package dynamic

import (
	"fmt"
	"strings"

	"rustprobe/internal/detect"
	"rustprobe/internal/interp"
)

// Detector wraps interp.RunAll.
type Detector struct {
	Config interp.Config
}

// New returns the detector with default exploration bounds.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "dynamic" }

// kindOf maps dynamic error kinds onto finding kinds.
func kindOf(k interp.ErrorKind) detect.Kind {
	switch k {
	case interp.ErrUseAfterFree:
		return detect.KindUseAfterFree
	case interp.ErrDeadlock:
		return detect.KindDoubleLock
	case interp.ErrInvalidFree:
		return detect.KindInvalidFree
	case interp.ErrDoubleDrop:
		return detect.KindDoubleFree
	case interp.ErrUninitRead:
		return detect.KindUninitRead
	default:
		return detect.Kind(string(k))
	}
}

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var out []detect.Finding
	for _, r := range interp.RunAll(ctx.Bodies, d.Config) {
		for _, e := range r.Errors {
			notes := []string{"found by bounded dynamic exploration"}
			if len(e.Trace) > 0 {
				notes = append(notes, fmt.Sprintf("path: %s", strings.Join(e.Trace, " ")))
			}
			out = append(out, detect.Finding{
				Kind:     kindOf(e.Kind),
				Severity: detect.SeverityError,
				Function: e.Function,
				Span:     e.Span,
				Message:  e.Message + " (dynamic)",
				Notes:    notes,
			})
		}
	}
	detect.SortFindings(out)
	return out
}
