// Tests that the precise detectors treat the Context's shared dropflow
// state (summaries and per-function walk results) as immutable: running
// the full precise suite twice over one Context must neither change the
// cached analyses nor the findings. This mirrors the engine's
// TestEngineCacheNotesDeepCopy guard against aliasing bugs where one
// consumer's mutation poisons every later consumer of a shared cache.
package detect_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/detect/blocking"
	"rustprobe/internal/detect/dfree"
	"rustprobe/internal/detect/doublelock"
	"rustprobe/internal/detect/uaf"
	"rustprobe/internal/detect/uninit"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

// sharedStateSrc exercises every dropflow feature the three precise
// detectors consult: alias classes, uninit tracking, dup tracking, branch
// correlation, and context-sensitive summaries.
const sharedStateSrc = `
fn helper(p: *const i32, go_deep: bool) {
    if go_deep {
        unsafe { let v = *p; }
    }
}

fn use_after_drop() {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}

fn guarded(c: bool) {
    let v = Vec::new();
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    if !c {
        unsafe { let x = *p; }
    }
    helper(p, false);
}

struct Wrap { buf: Vec<u8> }

fn dup_and_drop() {
    let w = Wrap { buf: Vec::new() };
    let p = &w as *const Wrap;
    unsafe {
        let w2 = ptr::read(p);
        drop(w2);
    }
    drop(w);
}

fn alloc_then_assign() {
    unsafe {
        let f = alloc(64) as *mut Wrap;
        *f = Wrap { buf: Vec::new() };
        let v = *f;
    }
}
`

func buildContext(t *testing.T, src string) *detect.Context {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("shared.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	return detect.NewContext(prog, bodies)
}

// snapshotDropflow renders the Context's shared dropflow state canonically.
func snapshotDropflow(ctx *detect.Context) string {
	var b strings.Builder
	sums := ctx.DropFlowSummaries()
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "sum %s: %s\n", n, sums[n].String())
	}
	for _, n := range ctx.Graph.Names() {
		res := ctx.DropFlow(n)
		keys := make([]string, 0, len(res.Sites))
		byKey := map[string]string{}
		for k, v := range res.Sites {
			ks := k.String()
			keys = append(keys, ks)
			byKey[ks] = fmt.Sprintf("dead=%t uninit=%t dfree=%t", v.MayUseDead, v.MayUninit, v.MayDoubleFree)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "fn %s bailed=%t\n", n, res.Bailed)
		for _, ks := range keys {
			fmt.Fprintf(&b, "  %s %s\n", ks, byKey[ks])
		}
	}
	return b.String()
}

func runPreciseSuite(ctx *detect.Context) string {
	var all []detect.Finding
	for _, d := range []detect.Detector{uaf.NewPrecise(), dfree.NewPrecise(), uninit.NewPrecise()} {
		all = append(all, d.Run(ctx)...)
	}
	detect.SortFindings(all)
	var b strings.Builder
	for _, f := range all {
		fmt.Fprintf(&b, "%s %s %s %s\n", f.Kind, f.Function, f.Message, strings.Join(f.Notes, ";"))
	}
	return b.String()
}

// blockingStateSrc plants two §6.1 blocking bugs (an orphaned recv and a
// condvar wait with no notifier) next to a double-lock, so the blocking
// detector and the lockset machinery it borrows (doublelock.Guards /
// LiveGuards) both have real work to do on the shared Context.
const blockingStateSrc = `
fn poll() -> i32 {
    let (tx, rx) = mpsc::channel();
    drop(tx);
    let v = rx.recv().unwrap();
    v
}

struct W { ready: Mutex<bool>, cv: Condvar }
impl W {
    fn wait(&self) {
        let g = self.ready.lock().unwrap();
        let g2 = self.cv.wait(g);
        consume(g2);
    }
    fn relock(&self) {
        let a = self.ready.lock().unwrap();
        let b = self.ready.lock().unwrap();
    }
}
`

func formatFindings(fs []detect.Finding) string {
	detect.SortFindings(fs)
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s %s %s %s\n", f.Kind, f.Function, f.Message, strings.Join(f.Notes, ";"))
	}
	return b.String()
}

// TestBlockingDetectorPureUnderParallelFanout is the shared-state audit
// entry for the §6.1 blocking detector: under the parallel detector
// fan-out (concurrent blocking runs interleaved with doublelock, whose
// guard analysis blocking reuses, all over ONE Context) every run must
// see identical findings, and the Context's shared dropflow caches must
// come through untouched.
func TestBlockingDetectorPureUnderParallelFanout(t *testing.T) {
	ctx := buildContext(t, blockingStateSrc)
	before := snapshotDropflow(ctx)
	baseline := formatFindings(blocking.New().Run(ctx))
	if strings.Count(baseline, "\n") != 2 {
		t.Fatalf("baseline blocking findings:\n%s", baseline)
	}
	const fanout = 8
	results := make([]string, fanout)
	var wg sync.WaitGroup
	for i := 0; i < fanout; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				results[i] = formatFindings(blocking.New().Run(ctx))
			} else {
				doublelock.New().Run(ctx)
				results[i] = formatFindings(blocking.New().Run(ctx))
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != baseline {
			t.Errorf("fan-out run %d diverged:\nbaseline:\n%s\ngot:\n%s", i, baseline, r)
		}
	}
	if after := snapshotDropflow(ctx); after != before {
		t.Fatalf("blocking fan-out mutated shared dropflow state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestPreciseDetectorsDoNotMutateSharedDropflow(t *testing.T) {
	ctx := buildContext(t, sharedStateSrc)
	before := snapshotDropflow(ctx)
	first := runPreciseSuite(ctx)
	mid := snapshotDropflow(ctx)
	if mid != before {
		t.Fatalf("first precise run mutated shared dropflow state:\nbefore:\n%s\nafter:\n%s", before, mid)
	}
	second := runPreciseSuite(ctx)
	if second != first {
		t.Fatalf("second precise run saw different findings:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if after := snapshotDropflow(ctx); after != before {
		t.Fatalf("second precise run mutated shared dropflow state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// The default (paper-faithful) detectors share the same Context; running
// them interleaved with precise ones must not change either's results.
func TestDefaultAndPreciseShareContextSafely(t *testing.T) {
	ctx := buildContext(t, sharedStateSrc)
	preciseAlone := runPreciseSuite(buildContext(t, sharedStateSrc))

	var def []detect.Finding
	for _, d := range []detect.Detector{uaf.New(), dfree.New(), uninit.New()} {
		def = append(def, d.Run(ctx)...)
	}
	precise := runPreciseSuite(ctx)
	if precise != preciseAlone {
		t.Fatalf("precise results differ when defaults ran first on the same Context:\nalone:\n%s\nshared:\n%s", preciseAlone, precise)
	}
	var def2 []detect.Finding
	for _, d := range []detect.Detector{uaf.New(), dfree.New(), uninit.New()} {
		def2 = append(def2, d.Run(ctx)...)
	}
	if len(def2) != len(def) {
		t.Fatalf("default findings changed after precise run: %d -> %d", len(def), len(def2))
	}
	// Precise findings must be a subset of default findings.
	if strings.Count(precise, "\n") > len(def) {
		t.Fatalf("precise produced more findings (%d) than default (%d)", strings.Count(precise, "\n"), len(def))
	}
}
