// Package doublelock implements the paper's §7.2 double-lock detector. It
// identifies every lock() / read() / write() call site, extracts the lock
// being acquired (a source-level path such as "self.client") and the
// guard-holding local, then computes guard lifetimes: Rust releases a lock
// when the guard's lifetime ends, i.e. at its Drop/StorageDead or an
// explicit mem::drop. A second acquisition of the same lock while a guard
// is live is a double lock. The check is inter-procedural: per-function
// "locks acquired" summaries are propagated bottom-up and translated
// through receiver paths at call sites.
package doublelock

import (
	"fmt"
	"strings"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/mir"
	"rustprobe/internal/summary"
)

// Mode distinguishes guard kinds.
type Mode int

// Guard modes.
const (
	ModeLock  Mode = iota // Mutex::lock
	ModeRead              // RwLock::read
	ModeWrite             // RwLock::write
)

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return "lock"
	}
}

// Guard describes a guard-holding local: the lock it came from (a
// source-level path such as "self.client") and the acquisition mode.
// Exported because the race detector reuses the same guard machinery for
// its lockset computation.
type Guard struct {
	Lock string
	Mode Mode
}

// Detector is the double-lock detector.
type Detector struct {
	// FlagReadRead also reports read()-after-read() on the same RwLock
	// (can deadlock when a writer is queued); defaults to false to match
	// the paper's reported-bug set.
	FlagReadRead bool
	// IntraOnly disables the bottom-up lock-set summaries (the ablation
	// in DESIGN.md's index): caller-holds/callee-locks bugs are then
	// missed.
	IntraOnly bool
}

// New returns the detector with default configuration.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "double-lock" }

// acquireIntrinsic maps a call intrinsic to a guard mode.
func acquireIntrinsic(i mir.Intrinsic) (Mode, bool) {
	switch i {
	case mir.IntrinsicLock:
		return ModeLock, true
	case mir.IntrinsicRead:
		return ModeRead, true
	case mir.IntrinsicWrite:
		return ModeWrite, true
	}
	return ModeLock, false
}

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var summaries map[string]map[string]Mode
	if !d.IntraOnly {
		summaries = d.buildSummaries(ctx)
	}
	var out []detect.Finding
	for _, name := range ctx.Graph.Names() {
		out = append(out, d.checkFunction(ctx, name, summaries)...)
	}
	detect.SortFindings(out)
	return out
}

// Guards statically assigns a Guard to each local that may hold
// a guard, by propagating from acquiring calls through moves and unwrap.
func Guards(body *mir.Body) map[mir.LocalID]Guard {
	origins := map[mir.LocalID]Guard{}
	changed := true
	for changed {
		changed = false
		set := func(l mir.LocalID, gi Guard) {
			if _, ok := origins[l]; !ok {
				origins[l] = gi
				changed = true
			}
		}
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() {
					continue
				}
				if use, ok := as.Rvalue.(mir.Use); ok {
					if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
						if gi, has := origins[pl.Local]; has {
							set(as.Place.Local, gi)
						}
					}
				}
			}
			if c, ok := blk.Term.(mir.Call); ok && c.Dest.IsLocal() {
				if mode, isAcq := acquireIntrinsic(c.Intrinsic); isAcq && c.RecvPath != "" {
					set(c.Dest.Local, Guard{Lock: c.RecvPath, Mode: mode})
				}
				// A successful try_lock also yields a guard that blocks a
				// later lock(); the try itself never deadlocks.
				if c.Intrinsic == mir.IntrinsicTryLock && c.RecvPath != "" {
					set(c.Dest.Local, Guard{Lock: c.RecvPath, Mode: ModeLock})
				}
				switch c.Intrinsic {
				case mir.IntrinsicUnwrap, mir.IntrinsicTryLock, mir.IntrinsicCondvarWait:
					argIdx := 0
					if c.Intrinsic == mir.IntrinsicCondvarWait {
						argIdx = 1
					}
					if argIdx < len(c.Args) {
						if pl, ok := mir.OperandPlace(c.Args[argIdx]); ok && pl.IsLocal() {
							if gi, has := origins[pl.Local]; has {
								set(c.Dest.Local, gi)
							}
						}
					}
				}
			}
		}
	}
	return origins
}

// LiveGuards runs the forward may-analysis: bit l set means local l holds
// a live (unreleased) guard.
func LiveGuards(body *mir.Body, g *cfg.Graph, origins map[mir.LocalID]Guard) *dataflow.Result {
	prob := &dataflow.Problem{
		Bits: len(body.Locals),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			switch st := st.(type) {
			case mir.StorageDead:
				state.Clear(int(st.Local))
			case mir.Assign:
				// Guards moved into an aggregate (a struct literal or a
				// closure environment) leave their source locals: ownership
				// transfers into the aggregate value, so the source no
				// longer releases on scope end.
				if agg, ok := st.Rvalue.(mir.Aggregate); ok {
					for _, op := range agg.Ops {
						if pl, ok := mir.OperandPlace(op); ok && pl.IsLocal() && mir.IsMove(op) {
							if _, isGuard := origins[pl.Local]; isGuard {
								state.Clear(int(pl.Local))
							}
						}
					}
				}
				if !st.Place.IsLocal() {
					// A guard moved into a non-local place (a struct
					// field, a slot behind a pointer) leaves the source
					// local: clear it so a later reacquisition is not a
					// false positive. The destination's storage is not a
					// tracked local, so ownership conservatively escapes.
					if use, ok := st.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if _, isGuard := origins[pl.Local]; isGuard {
								state.Clear(int(pl.Local))
							}
						}
					}
					return
				}
				if use, ok := st.Rvalue.(mir.Use); ok {
					if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
						if _, isGuard := origins[pl.Local]; isGuard && state.Has(int(pl.Local)) {
							// The guard moves: source releases, dest holds.
							state.Clear(int(pl.Local))
							state.Set(int(st.Place.Local))
							return
						}
					}
				}
				// Overwriting a guard-holding local drops the old guard.
				state.Clear(int(st.Place.Local))
			}
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			switch term := term.(type) {
			case mir.Drop:
				if term.Place.IsLocal() {
					state.Clear(int(term.Place.Local))
				}
			case mir.Call:
				if mode, isAcq := acquireIntrinsic(term.Intrinsic); isAcq && term.Dest.IsLocal() {
					_ = mode
					if _, tracked := origins[term.Dest.Local]; tracked {
						state.Set(int(term.Dest.Local))
					}
					return
				}
				switch term.Intrinsic {
				case mir.IntrinsicUnwrap, mir.IntrinsicTryLock:
					if len(term.Args) > 0 {
						if pl, ok := mir.OperandPlace(term.Args[0]); ok && pl.IsLocal() {
							if _, isGuard := origins[pl.Local]; isGuard && state.Has(int(pl.Local)) {
								state.Clear(int(pl.Local))
								if term.Dest.IsLocal() {
									state.Set(int(term.Dest.Local))
								}
								return
							}
						}
					}
					// try_lock acquires directly from the lock receiver.
					if term.Intrinsic == mir.IntrinsicTryLock && term.Dest.IsLocal() {
						if _, tracked := origins[term.Dest.Local]; tracked {
							state.Set(int(term.Dest.Local))
						}
					}
				case mir.IntrinsicCondvarWait:
					// wait(cv, guard) releases during the wait and returns
					// a reacquired guard: transfer, never double-lock.
					if len(term.Args) > 1 {
						if pl, ok := mir.OperandPlace(term.Args[1]); ok && pl.IsLocal() {
							state.Clear(int(pl.Local))
						}
					}
					if term.Dest.IsLocal() {
						if _, tracked := origins[term.Dest.Local]; tracked {
							state.Set(int(term.Dest.Local))
						}
					}
				case mir.IntrinsicForget:
					if len(term.Args) > 0 {
						if pl, ok := mir.OperandPlace(term.Args[0]); ok && pl.IsLocal() {
							state.Clear(int(pl.Local))
						}
					}
				default:
					// A guard moved into a call is consumed there.
					for _, a := range term.Args {
						if pl, ok := mir.OperandPlace(a); ok && pl.IsLocal() && mir.IsMove(a) {
							if _, isGuard := origins[pl.Local]; isGuard {
								state.Clear(int(pl.Local))
							}
						}
					}
					if term.Dest.IsLocal() {
						state.Clear(int(term.Dest.Local))
					}
				}
			}
		},
	}
	return dataflow.Forward(g, prob)
}

// Held returns the lock identities live at a program point.
func Held(state dataflow.BitSet, origins map[mir.LocalID]Guard) map[string]Mode {
	held := map[string]Mode{}
	state.ForEach(func(l int) {
		if gi, ok := origins[mir.LocalID(l)]; ok {
			// Writes dominate in the merged view.
			if cur, exists := held[gi.Lock]; !exists || gi.Mode > cur {
				held[gi.Lock] = gi.Mode
			}
		}
	})
	return held
}

// buildSummaries computes, bottom-up over the call graph, the set of lock
// ids each function may acquire (transitively), expressed in its own
// namespace (only self-rooted and static ids propagate upward). The SCC
// fixpoint in internal/summary makes the propagation sound through
// mutual recursion and call chains of any length — the previous bounded
// two-round pass silently under-approximated cyclic call graphs.
func (d *Detector) buildSummaries(ctx *detect.Context) map[string]map[string]Mode {
	prob := &summary.Problem[map[string]Mode]{
		Bottom: func(string) map[string]Mode { return map[string]Mode{} },
		Equal: func(a, b map[string]Mode) bool {
			if len(a) != len(b) {
				return false
			}
			for id, m := range a {
				if bm, ok := b[id]; !ok || bm != m {
					return false
				}
			}
			return true
		},
		Transfer: func(name string, get summary.Lookup[map[string]Mode]) map[string]Mode {
			body := ctx.Bodies[name]
			s := map[string]Mode{}
			add := func(id string, mode Mode) {
				if cur, exists := s[id]; !exists || mode > cur {
					s[id] = mode
				}
			}
			for _, blk := range body.Blocks {
				c, ok := blk.Term.(mir.Call)
				if !ok {
					continue
				}
				if mode, isAcq := acquireIntrinsic(c.Intrinsic); isAcq && c.RecvPath != "" {
					add(c.RecvPath, mode)
					continue
				}
				calleeName := resolvedCallee(ctx, c)
				if calleeName == "" {
					continue
				}
				cs, known := get(calleeName)
				if !known {
					continue
				}
				for id, mode := range cs {
					tid := summary.Translate(id, c.RecvPath)
					if tid == "" {
						continue
					}
					// Only ids that remain self-rooted or static are part
					// of this function's upward summary.
					if strings.HasPrefix(tid, "self") || strings.HasPrefix(tid, "static ") {
						add(tid, mode)
					}
				}
			}
			return s
		},
	}
	return summary.Compute(ctx.Graph, prob).Summaries
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}

// conflicts reports whether acquiring `mode` on a lock already held in
// `heldMode` deadlocks.
func (d *Detector) conflicts(heldMode, mode Mode) bool {
	if heldMode == ModeRead && mode == ModeRead {
		return d.FlagReadRead
	}
	return true
}

func (d *Detector) checkFunction(ctx *detect.Context, name string, sums map[string]map[string]Mode) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	origins := Guards(body)
	res := LiveGuards(body, g, origins)

	var out []detect.Finding
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		state := res.StateAt(blk.ID, len(blk.Stmts))
		held := Held(state, origins)

		if mode, isAcq := acquireIntrinsic(c.Intrinsic); isAcq && c.RecvPath != "" {
			if heldMode, isHeld := held[c.RecvPath]; isHeld && d.conflicts(heldMode, mode) {
				out = append(out, detect.Finding{
					Kind:     detect.KindDoubleLock,
					Severity: detect.SeverityError,
					Function: name,
					Span:     c.Span,
					Message: fmt.Sprintf("%s() on %q while a %s guard of the same lock is still live",
						mode, c.RecvPath, heldMode),
					Notes: []string{
						"Rust releases a lock when the guard's lifetime ends; the first guard is still in scope here",
					},
				})
			}
			continue
		}

		// Inter-procedural: calling a function that (transitively)
		// acquires a lock we hold.
		calleeName := resolvedCallee(ctx, c)
		if calleeName == "" || len(held) == 0 {
			continue
		}
		for id, mode := range sums[calleeName] {
			tid := summary.Translate(id, c.RecvPath)
			if tid == "" {
				continue
			}
			if heldMode, isHeld := held[tid]; isHeld && d.conflicts(heldMode, mode) {
				out = append(out, detect.Finding{
					Kind:     detect.KindDoubleLock,
					Severity: detect.SeverityError,
					Function: name,
					Span:     c.Span,
					Message: fmt.Sprintf("call to %s acquires %q (%s) while a %s guard of the same lock is held",
						calleeName, tid, mode, heldMode),
					Notes: []string{
						fmt.Sprintf("%s acquires the lock internally; the caller's guard has not been dropped", calleeName),
					},
				})
			}
		}
	}
	return out
}
