package doublelock

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

// Figure 8 (TiKV): read lock held across the match arms; write() inside an
// arm deadlocks.
const figure8Buggy = `
struct Inner { m: i32 }
struct Client { inner: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }

fn do_request(client: Arc<RwLock<Inner>>) {
    match connect(client.read().unwrap().m) {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`

// The committed fix: the read guard dies at the end of the let statement.
const figure8Fixed = `
struct Inner { m: i32 }
fn connect(m: i32) -> Result<i32, i32> { Ok(m) }

fn do_request(client: Arc<RwLock<Inner>>) {
    let result = connect(client.read().unwrap().m);
    match result {
        Ok(mbrs) => {
            let mut inner = client.write().unwrap();
            inner.m = mbrs;
        }
        Err(e) => {}
    };
}
`

func TestFigure8BuggyFlagged(t *testing.T) {
	findings := analyze(t, figure8Buggy)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindDoubleLock {
		t.Errorf("kind = %s", findings[0].Kind)
	}
	if findings[0].Function != "do_request" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestFigure8FixedClean(t *testing.T) {
	findings := analyze(t, figure8Fixed)
	if len(findings) != 0 {
		t.Fatalf("fixed version flagged: %+v", findings)
	}
}

func TestDoubleLockInIfCondition(t *testing.T) {
	// §6.1: "the first lock is in an if condition, and the second lock is
	// in the if block".
	src := `
struct State { v: i32 }
fn f(mu: Arc<Mutex<State>>) {
    if mu.lock().unwrap().v > 0 {
        let mut g = mu.lock().unwrap();
        g.v = 2;
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}

func TestSequentialLocksClean(t *testing.T) {
	// Two critical sections in sequence: the first guard dies at the end
	// of its statement-bound temporary.
	src := `
struct State { v: i32 }
fn f(mu: Mutex<State>) {
    let a = mu.lock().unwrap().v;
    let b = mu.lock().unwrap().v;
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("sequential locks flagged: %+v", findings)
	}
}

func TestExplicitDropAvoidsDoubleLock(t *testing.T) {
	// §6.1 avoidance idiom: mem::drop ends the critical section early.
	src := `
struct State { v: i32 }
fn f(mu: Mutex<State>) {
    let g = mu.lock().unwrap();
    drop(g);
    let h = mu.lock().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("explicit drop still flagged: %+v", findings)
	}
}

func TestDoubleLockWithoutDropFlagged(t *testing.T) {
	src := `
struct State { v: i32 }
fn f(mu: Mutex<State>) {
    let g = mu.lock().unwrap();
    let h = mu.lock().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}

func TestDifferentLocksClean(t *testing.T) {
	src := `
struct State { v: i32 }
fn f(a: Mutex<State>, b: Mutex<State>) {
    let g = a.lock().unwrap();
    let h = b.lock().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("different locks flagged: %+v", findings)
	}
}

func TestInterProceduralDoubleLock(t *testing.T) {
	// The paper's found bugs (e.g. parity-ethereum #11172): a method
	// holding self.state's lock calls another method that locks it again.
	src := `
struct Engine { state: Mutex<i32>, extra: i32 }
impl Engine {
    fn helper(&self) -> i32 {
        let s = self.state.lock().unwrap();
        *s
    }
    fn broken(&self) {
        let g = self.state.lock().unwrap();
        let v = self.helper();
    }
    fn okay(&self) {
        let v0 = { let g = self.state.lock().unwrap(); *g };
        let v = self.helper();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Function != "Engine::broken" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestCondvarWaitReleasesLock(t *testing.T) {
	src := `
fn f(mu: Mutex<bool>, cv: Condvar) {
    let mut g = mu.lock().unwrap();
    let g2 = cv.wait(g);
    let h = mu.lock().unwrap();
}
`
	// g2 holds the reacquired guard, so the second explicit lock IS a
	// double lock; but wait() itself must not be flagged.
	findings := analyze(t, src)
	for _, f := range findings {
		if f.Kind == detect.KindDoubleLock && f.Message == "wait" {
			t.Errorf("wait flagged: %+v", f)
		}
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (the lock after wait): %+v", len(findings), findings)
	}
}

func TestReadReadNotFlaggedByDefault(t *testing.T) {
	src := `
struct S { v: i32 }
fn f(rw: RwLock<S>) {
    let a = rw.read().unwrap();
    let b = rw.read().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("read-read flagged by default: %+v", findings)
	}
}

func TestGuardMovedIntoFunctionReleasesTracking(t *testing.T) {
	src := `
fn consume(g: MutexGuard<i32>) {}
fn f(mu: Mutex<i32>) {
    let g = mu.lock().unwrap();
    consume(g);
    let h = mu.lock().unwrap();
}
`
	// After moving the guard into consume(), the guard is dropped there
	// (conservatively treated as released at the call).
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("moved-guard case flagged: %+v", findings)
	}
}

func TestIfLetScrutineeGuardHeld(t *testing.T) {
	// `if let` scrutinee temporaries live to the end of the whole if —
	// same rule as match.
	src := `
struct S { v: Option<i32> }
fn f(mu: Mutex<S>) {
    if let Some(n) = mu.lock().unwrap().v {
        let g = mu.lock().unwrap();
        report(n, g.v);
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}

func TestTryLockNotADoubleLock(t *testing.T) {
	// try_lock does not block: acquiring while holding returns Err rather
	// than deadlocking, so no finding — but a later blocking lock() while
	// the try_lock guard is live IS one.
	src := `
struct S { v: i32 }
fn ok_case(mu: Mutex<S>) {
    let g = mu.lock().unwrap();
    let maybe = mu.try_lock();
}
fn bad_case(mu: Mutex<S>) {
    let g = mu.try_lock().unwrap();
    let h = mu.lock().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1 (only bad_case): %+v", len(findings), findings)
	}
	if findings[0].Function != "bad_case" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestWhileLetConditionGuardReleased(t *testing.T) {
	// In while-loop conditions temporaries drop at the end of each
	// condition evaluation (not the loop): locking in the body is fine.
	src := `
struct S { v: Option<i32> }
fn f(mu: Mutex<S>) {
    while let Some(n) = mu.lock().unwrap().v {
        let g = mu.lock().unwrap();
        report(n, g.v);
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("while-let condition guard should be released before the body: %+v", findings)
	}
}

func TestNestedMatchGuards(t *testing.T) {
	// Two different locks in nested matches: fine.
	src := `
struct S { v: i32 }
fn f(a: Mutex<S>, b: Mutex<S>) {
    match a.lock().unwrap().v {
        0 => {
            match b.lock().unwrap().v {
                _ => {}
            };
        }
        _ => {}
    };
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("different nested locks flagged: %+v", findings)
	}
}

// --- SCC-fixpoint summary regressions ----------------------------------
// The previous buildSummaries ran exactly two bounded post-order rounds,
// so lock-sets never converged on cyclic call graphs. These cases lock in
// the fixpoint behaviour.

func TestMutualRecursionDoubleLock(t *testing.T) {
	// A→B→A: the lock-set must travel around the two-cycle to reach the
	// caller-holds/callee-locks site in broken().
	src := `
struct S { m: Mutex<i32> }
impl S {
    fn a(&self, n: i32) -> i32 {
        let v = { let g = self.m.lock().unwrap(); *g };
        if n > 0 { return self.b(n - 1); }
        v
    }
    fn b(&self, n: i32) -> i32 {
        if n > 1 { return self.a(n - 1); }
        1
    }
    fn broken(&self) {
        let g = self.m.lock().unwrap();
        let v = self.b(2);
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Function != "S::broken" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestThreeCycleDoubleLock(t *testing.T) {
	// A→B→C→A with the acquisition inside the cycle.
	src := `
struct S { m: Mutex<i32> }
impl S {
    fn a(&self, n: i32) -> i32 {
        let v = { let g = self.m.lock().unwrap(); *g };
        if n > 0 { return self.b(n - 1); }
        v
    }
    fn b(&self, n: i32) -> i32 {
        if n > 0 { return self.c(n - 1); }
        1
    }
    fn c(&self, n: i32) -> i32 {
        if n > 0 { return self.a(n - 1); }
        2
    }
    fn broken(&self) {
        let g = self.m.lock().unwrap();
        let v = self.c(3);
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Function != "S::broken" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

// TestInterlockedCyclesDoubleLock is the shape the bounded two-round pass
// provably missed: two cycles sharing a node (audit↔balance,
// balance↔compact). The lock acquired in audit needs three propagation
// waves to reach compact's summary — post-order processes compact first
// and balance's summary is still empty for the first two rounds, so the
// old pass left compact's lock-set empty and broken() went unflagged.
func TestInterlockedCyclesDoubleLock(t *testing.T) {
	src := `
struct R { regions: Mutex<i32> }
impl R {
    fn audit(&self, n: i32) -> i32 {
        let v = { let g = self.regions.lock().unwrap(); *g };
        if n > 0 { return self.balance(n - 1); }
        v
    }
    fn balance(&self, n: i32) -> i32 {
        if n > 2 { return self.audit(n - 1); }
        if n > 0 { return self.compact(n - 1); }
        0
    }
    fn compact(&self, n: i32) -> i32 {
        if n > 0 { return self.balance(n - 1); }
        1
    }
    fn broken(&self) {
        let g = self.regions.lock().unwrap();
        let v = self.compact(4);
    }
    fn fixed(&self) {
        let v0 = { let g = self.regions.lock().unwrap(); *g };
        let v = self.compact(4);
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Function != "R::broken" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

// TestGuardMovedIntoStructReleasesTracking: an Assign whose destination
// is a field projection moves the guard out of the source local; the old
// transfer ignored non-local destinations entirely, leaving the local
// "held" forever and false-positives on the later reacquisition.
func TestGuardMovedIntoStructReleasesTracking(t *testing.T) {
	src := `
struct Holder { slot: MutexGuard<i32> }
fn f(mu: Mutex<i32>, h: Holder) {
    let g = mu.lock().unwrap();
    h.slot = g;
    let k = mu.lock().unwrap();
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("guard moved into struct still flagged: %+v", findings)
	}
}
