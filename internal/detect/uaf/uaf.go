// Package uaf implements the paper's §7.1 use-after-free detector: it
// maintains the alive/dead state of every MIR local by monitoring
// StorageLive/StorageDead (and Drop, which frees heap owned by a value
// before its stack storage dies), runs a points-to analysis over
// references and raw pointers including ownership moves, and reports
// dereferences of pointers whose pointee may be dead. The inter-procedural
// part propagates "dereferences its i-th parameter" summaries bottom-up
// over the call graph; like the paper's prototype it is context-insensitive,
// which is exactly the imprecision behind the paper's three false
// positives.
package uaf

import (
	"fmt"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/dropflow"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/summary"
	"rustprobe/internal/types"
)

// Detector is the use-after-free detector.
type Detector struct {
	// IntraOnly disables the inter-procedural parameter-dereference
	// summaries (the ablation the DESIGN.md index calls out): pointers
	// passed to callees are then never reported, trading the Figure 7
	// class of bugs for zero summary-induced false positives.
	IntraOnly bool
	// Precise enables the SafeDrop-style path-sensitive refutation pass:
	// candidate findings from the paper-faithful analysis are dropped
	// when the shared dropflow walk proves the site safe on every
	// feasible path. Off by default so the §7 table stays reproducible.
	Precise bool
}

// New returns the detector with inter-procedural analysis enabled.
func New() *Detector { return &Detector{} }

// NewPrecise returns the detector with path-sensitive refutation enabled.
func NewPrecise() *Detector { return &Detector{Precise: true} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "use-after-free" }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var derefSummaries map[string]map[int]bool
	if !d.IntraOnly {
		derefSummaries = buildDerefSummaries(ctx)
	}
	var out []detect.Finding
	for _, name := range ctx.Graph.Names() {
		out = append(out, d.checkFunction(ctx, name, derefSummaries)...)
	}
	detect.SortFindings(out)
	return out
}

// buildDerefSummaries computes, bottom-up, which parameters each function
// may dereference (directly or through calls), as an SCC fixpoint so
// facts converge through arbitrarily interlocked recursion.
func buildDerefSummaries(ctx *detect.Context) map[string]map[int]bool {
	prob := &summary.Problem[map[int]bool]{
		Bottom: func(string) map[int]bool { return map[int]bool{} },
		Transfer: func(name string, get summary.Lookup[map[int]bool]) map[int]bool {
			return scanDerefParams(ctx, name, get)
		},
		Equal: func(a, b map[int]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	return summary.Compute(ctx.Graph, prob).Summaries
}

// scanDerefParams recomputes one function's parameter-dereference summary
// from its body, reading callee summaries through get. It always builds a
// fresh map so fixpoint iterations never alias each other's state.
func scanDerefParams(ctx *detect.Context, name string, get summary.Lookup[map[int]bool]) map[int]bool {
	body := ctx.Bodies[name]
	s := map[int]bool{}
	if body == nil {
		return s
	}
	isParam := func(l mir.LocalID) (int, bool) {
		idx := int(l) - 1
		if idx >= 0 && idx < body.ArgCount {
			return idx, true
		}
		return 0, false
	}
	// Track which locals alias parameters (flow-insensitive).
	pts := ctx.PointsTo(name)
	aliasParam := func(l mir.LocalID) (int, bool) {
		if i, ok := isParam(l); ok {
			return i, true
		}
		for t := range pts.Targets(l) {
			if i, ok := isParam(t); ok {
				return i, true
			}
		}
		return 0, false
	}
	scanPlace := func(p mir.Place) {
		if !p.HasDeref() {
			return
		}
		if i, ok := aliasParam(p.Local); ok {
			s[i] = true
		}
	}
	for _, blk := range body.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(mir.Assign); ok {
				scanPlace(as.Place)
				forEachRvaluePlace(as.Rvalue, scanPlace)
			}
		}
		if c, ok := blk.Term.(mir.Call); ok {
			// Propagate callee summaries.
			calleeName := resolvedCallee(ctx, c)
			if calleeName != "" {
				callee, _ := get(calleeName)
				for i := range callee {
					if i < len(c.Args) {
						if pl, ok := mir.OperandPlace(c.Args[i]); ok {
							if pi, isP := aliasParam(pl.Local); isP {
								s[pi] = true
							}
						}
					}
				}
			}
			// External pointer-consuming calls conservatively
			// dereference raw-pointer arguments.
			if calleeName == "" && c.Intrinsic == mir.IntrinsicNone {
				for _, a := range c.Args {
					if pl, ok := mir.OperandPlace(a); ok {
						if _, isRaw := body.Local(pl.Local).Ty.(*types.RawPtr); isRaw {
							if pi, isP := aliasParam(pl.Local); isP {
								s[pi] = true
							}
						}
					}
				}
			}
		}
	}
	return s
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}

// checkFunction runs the flow-sensitive dead-storage analysis and reports
// dereferences of may-dead storage.
func (d *Detector) checkFunction(ctx *detect.Context, name string, sums map[string]map[int]bool) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	pts := ctx.PointsTo(name)
	n := len(body.Locals)

	// Precise mode: consult the shared path-sensitive walk. A candidate
	// finding is dropped only when dropflow positively proves its site
	// safe on every feasible path; missing or bailed results keep it.
	var df *dropflow.Result
	if d.Precise {
		df = ctx.DropFlow(name)
	}

	// May-dead forward analysis: gen at StorageDead and at Drop of
	// heap-owning values; kill at StorageLive and full reassignment.
	prob := &dataflow.Problem{
		Bits: n,
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			switch st := st.(type) {
			case mir.StorageDead:
				state.Set(int(st.Local))
			case mir.StorageLive:
				state.Clear(int(st.Local))
			case mir.Assign:
				if st.Place.IsLocal() {
					// Full reinitialization revives the storage.
					state.Clear(int(st.Place.Local))
				}
			}
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			switch term := term.(type) {
			case mir.Drop:
				if term.Place.IsLocal() && ownsHeap(body.Local(term.Place.Local).Ty) {
					state.Set(int(term.Place.Local))
				}
			case mir.Call:
				if term.Dest.IsLocal() {
					state.Clear(int(term.Dest.Local))
				}
			}
		},
	}
	res := dataflow.Forward(g, prob)

	var out []detect.Finding
	report := func(span source.Span, ptr mir.LocalID, dead mir.LocalID, via string) {
		ptrName := body.Local(ptr).String()
		deadName := body.Local(dead).String()
		out = append(out, detect.Finding{
			Kind:     detect.KindUseAfterFree,
			Severity: detect.SeverityError,
			Function: name,
			Span:     span,
			Message:  fmt.Sprintf("pointer %s may dereference storage of %s after it is dead%s", ptrName, deadName, via),
			Notes: []string{
				fmt.Sprintf("%s's storage ends before this use", deadName),
			},
		})
	}

	// deadPointees returns the may-dead storage roots of a pointer local.
	deadPointees := func(state dataflow.BitSet, l mir.LocalID) (mir.LocalID, bool) {
		for t := range pts.Targets(l) {
			if t == l {
				continue
			}
			if body.Local(t).Name != "" && isStaticLocal(body.Local(t).Name) {
				continue
			}
			if state.Has(int(t)) {
				return t, true
			}
		}
		return 0, false
	}

	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		for i, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok {
				continue
			}
			state := res.StateAt(blk.ID, i)
			stmtIdx := i
			check := func(p mir.Place) {
				if !p.HasDeref() {
					return
				}
				if !isPointer(body.Local(p.Local).Ty) {
					return
				}
				if dead, isDead := deadPointees(state, p.Local); isDead {
					if df.RefutesUseDead(dropflow.SiteKey{Block: blk.ID, Stmt: stmtIdx, Local: p.Local}) {
						return
					}
					report(as.Span, p.Local, dead, "")
				}
			}
			check(as.Place)
			forEachRvaluePlace(as.Rvalue, check)
		}
		// Calls: intra-procedural deref through operands plus the
		// inter-procedural summary check.
		if c, ok := blk.Term.(mir.Call); ok {
			state := res.StateAt(blk.ID, len(blk.Stmts))
			for argIdx, a := range c.Args {
				pl, isPlace := mir.OperandPlace(a)
				if !isPlace {
					continue
				}
				if pl.HasDeref() && isPointer(body.Local(pl.Local).Ty) {
					if dead, isDead := deadPointees(state, pl.Local); isDead {
						if df.RefutesUseDead(dropflow.SiteKey{Block: blk.ID, Stmt: -1, Local: pl.Local}) {
							continue
						}
						report(c.Span, pl.Local, dead, "")
					}
					continue
				}
				// Passing a pointer to a callee that dereferences it —
				// the inter-procedural half, disabled under IntraOnly.
				if d.IntraOnly {
					continue
				}
				if !isPointer(body.Local(pl.Local).Ty) {
					continue
				}
				derefs := false
				if calleeName := resolvedCallee(ctx, c); calleeName != "" {
					derefs = sums[calleeName][argIdx]
				} else if c.Intrinsic == mir.IntrinsicNone {
					// Unknown external callee: assume raw pointers are
					// dereferenced (the paper's detector does the same,
					// e.g. CMS_sign in Figure 7).
					_, derefs = body.Local(pl.Local).Ty.(*types.RawPtr)
				}
				if !derefs {
					continue
				}
				if dead, isDead := deadPointees(state, pl.Local); isDead {
					if df.RefutesUseDead(dropflow.SiteKey{Block: blk.ID, Stmt: -1, Local: pl.Local}) {
						continue
					}
					report(c.Span, pl.Local, dead, fmt.Sprintf(" (passed to %s which dereferences it)", c.Callee))
				}
			}
		}
	}
	return out
}

func forEachRvaluePlace(rv mir.Rvalue, f func(mir.Place)) {
	visit := func(op mir.Operand) {
		if pl, ok := mir.OperandPlace(op); ok {
			f(pl)
		}
	}
	switch rv := rv.(type) {
	case mir.Use:
		visit(rv.X)
	case mir.Ref:
		f(rv.Place)
	case mir.AddrOf:
		// Taking an address is not a dereference.
	case mir.Cast:
		visit(rv.X)
	case mir.BinaryOp:
		visit(rv.L)
		visit(rv.R)
	case mir.UnaryOp:
		visit(rv.X)
	case mir.Aggregate:
		for _, op := range rv.Ops {
			visit(op)
		}
	case mir.Discriminant:
		f(rv.Place)
	}
}

func isPointer(t types.Type) bool {
	switch t.(type) {
	case *types.RawPtr, *types.Ref:
		return true
	}
	return false
}

// ownsHeap reports whether dropping a value of t frees heap memory that
// pointers may still reference.
func ownsHeap(t types.Type) bool {
	if types.IsOwningContainer(t) {
		return true
	}
	if n, ok := t.(*types.Named); ok {
		switch n.Name {
		case "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard":
			return false
		}
		return true // user structs may own heap through fields
	}
	return false
}

func isStaticLocal(name string) bool {
	return len(name) > 7 && name[:7] == "static "
}
