package uaf

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func count(fs []detect.Finding, kind detect.Kind) int {
	n := 0
	for _, f := range fs {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

// Figure 7 (RustSec): the BioSlice temporary created inside the match arm
// is dropped at the arm's end; p escapes and is dereferenced by CMS_sign.
const figure7Buggy = `
struct BioSlice { buf: Vec<u8> }
impl BioSlice {
    fn new(data: i32) -> BioSlice { BioSlice { buf: Vec::new() } }
}

pub fn sign(data: Option<i32>) {
    let p = match data {
        Some(data) => BioSlice::new(data).as_ptr(),
        None => ptr::null_mut(),
    };
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}
`

// The committed fix: bind the BioSlice to a variable that outlives the use.
const figure7Fixed = `
struct BioSlice { buf: Vec<u8> }
impl BioSlice {
    fn new(data: i32) -> BioSlice { BioSlice { buf: Vec::new() } }
}

pub fn sign(data: Option<i32>) {
    let bio = match data {
        Some(data) => Some(BioSlice::new(data)),
        None => None,
    };
    let p = bio.as_ptr();
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}
`

func TestFigure7BuggyFlagged(t *testing.T) {
	findings := analyze(t, figure7Buggy)
	if count(findings, detect.KindUseAfterFree) != 1 {
		t.Fatalf("findings = %+v, want 1 UAF", findings)
	}
	if findings[0].Function != "sign" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestFigure7FixedClean(t *testing.T) {
	findings := analyze(t, figure7Fixed)
	if n := count(findings, detect.KindUseAfterFree); n != 0 {
		t.Fatalf("fixed version flagged: %+v", findings)
	}
}

// Figure 5 (Rust std queue): a reference returned by peek() is used after
// pop() drops the element — modeled here intra-procedurally.
func TestDerefAfterScopeEnd(t *testing.T) {
	src := `
fn f() {
    let p = {
        let x = Box::new(5);
        x.as_ptr()
    };
    unsafe { let v = *p; }
}
`
	findings := analyze(t, src)
	if count(findings, detect.KindUseAfterFree) != 1 {
		t.Fatalf("findings = %+v, want 1", findings)
	}
}

func TestDerefInScopeClean(t *testing.T) {
	src := `
fn f() {
    let x = Box::new(5);
    let p = x.as_ptr();
    unsafe { let v = *p; }
}
`
	findings := analyze(t, src)
	if n := count(findings, detect.KindUseAfterFree); n != 0 {
		t.Fatalf("in-scope deref flagged: %+v", findings)
	}
}

func TestDerefAfterExplicitDrop(t *testing.T) {
	src := `
fn f() {
    let x = Vec::new();
    let p = x.as_ptr();
    drop(x);
    unsafe { let v = *p; }
}
`
	findings := analyze(t, src)
	if count(findings, detect.KindUseAfterFree) != 1 {
		t.Fatalf("findings = %+v, want 1", findings)
	}
}

func TestInterProceduralDerefSummary(t *testing.T) {
	// The callee dereferences its parameter; the caller passes a dangling
	// pointer.
	src := `
fn deref_it(p: *const i32) -> i32 {
    unsafe { *p }
}
fn f() {
    let p = {
        let x = Box::new(5);
        x.as_ptr()
    };
    let v = deref_it(p);
}
`
	findings := analyze(t, src)
	if count(findings, detect.KindUseAfterFree) != 1 {
		t.Fatalf("findings = %+v, want 1", findings)
	}
}

func TestNoDerefCalleeClean(t *testing.T) {
	// The callee never dereferences: passing a dangling pointer is not
	// (yet) a use-after-free.
	src := `
fn just_store(p: *const i32) -> *const i32 { p }
fn f() {
    let p = {
        let x = Box::new(5);
        x.as_ptr()
    };
    let v = just_store(p);
}
`
	findings := analyze(t, src)
	if n := count(findings, detect.KindUseAfterFree); n != 0 {
		t.Fatalf("non-deref callee flagged: %+v", findings)
	}
}

func TestReferenceEscapeFromBlock(t *testing.T) {
	src := `
fn f() {
    let r = {
        let v = vec![1, 2, 3];
        let q = &v;
        q
    };
    let x = *r;
}
`
	findings := analyze(t, src)
	if count(findings, detect.KindUseAfterFree) != 1 {
		t.Fatalf("findings = %+v, want 1", findings)
	}
}

// TestSummaryConvergesThroughInterlockedRecursion pins the SCC-fixpoint
// semantics of buildDerefSummaries. The call graph below is one strongly
// connected component whose deterministic DFS post-order is
// [cc_c2, xx_hop, mm_c1, aa_src]: the "p is dereferenced" fact starts at
// aa_src (last in the order) and must hop against the iteration order
// twice (aa_src -> mm_c1 -> cc_c2) before cc_c2's summary is correct, so
// any fixed round count below three leaves cc_c2 empty and the dangling
// pointer passed to it in trigger goes unreported. The historical
// implementation iterated exactly twice and provably missed this finding.
func TestSummaryConvergesThroughInterlockedRecursion(t *testing.T) {
	src := `
fn aa_src(p: *const i32) {
    unsafe { let v = *p; }
    mm_c1(p);
}
fn mm_c1(p: *const i32) {
    xx_hop(p);
    aa_src(p);
}
fn xx_hop(p: *const i32) {
    cc_c2(p);
}
fn cc_c2(p: *const i32) {
    mm_c1(p);
}
fn trigger() {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    cc_c2(p);
}
`
	findings := analyze(t, src)
	got := 0
	for _, f := range findings {
		if f.Kind == detect.KindUseAfterFree && f.Function == "trigger" {
			got++
		}
	}
	if got != 1 {
		t.Fatalf("findings = %+v, want exactly 1 UAF in trigger (summary fact needs 3 propagation waves)", findings)
	}
}
