// Package lockorder detects conflicting lock acquisition orders (an AB-BA
// deadlock), the second-most-common blocking-bug cause in the paper's §6.1
// (7 of 38 Mutex/RwLock bugs). It reuses the double-lock machinery's guard
// lifetimes: for every acquisition performed while another lock is held it
// records an ordered pair, then reports pairs observed in both directions.
// The check is inter-procedural: per-function acquisition summaries built
// on the shared SCC-fixpoint framework (internal/summary) let a call made
// while a lock is held contribute pairs for every lock the callee may
// transitively acquire.
package lockorder

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/summary"
)

// Detector finds AB-BA lock order conflicts.
type Detector struct {
	// IntraOnly disables the bottom-up acquisition summaries:
	// caller-holds/callee-acquires orderings are then invisible.
	IntraOnly bool
}

// New returns the detector.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "conflicting-lock-order" }

type acquisition struct {
	first, second string // lock ids, second acquired while first held
	fn            string
	span          source.Span
}

// heldCall is a resolved call site executed while locks are held — the
// summary-independent half of the inter-procedural check. The held set
// is expanded against the callee's acquisition summary at pairing time.
type heldCall struct {
	callee string
	recv   string // receiver path for summary.Translate
	span   source.Span
	held   []string
}

// funcInfo is the cached per-function extraction: direct AB pairs and
// held call sites, both derived from the body alone (plus which callee
// names resolved, so a cached entry can be revalidated when the body
// set changes).
type funcInfo struct {
	body   *mir.Body
	direct []acquisition
	calls  []heldCall
}

// carry is the detector's cross-round state; see detect.Incremental.
type carry struct {
	infos map[string]*funcInfo
	sums  *summary.Result[map[string]bool]
}

// FactCount implements detect.FactCounter.
func (c *carry) FactCount() int { return len(c.infos) }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	out, _, _ := d.RunIncremental(ctx, nil, nil)
	return out
}

// RunIncremental implements detect.Incremental: direct-pair and
// held-call extraction is reused for clean functions (validated by body
// identity), the acquisition summaries warm-start from the prior SCC
// fixpoint, and the AB-BA index pairing — the cheap global phase —
// re-runs in full.
func (d *Detector) RunIncremental(ctx *detect.Context, prior detect.Carry, dirty map[string]bool) ([]detect.Finding, detect.Carry, int) {
	prev, _ := prior.(*carry)
	infos := map[string]*funcInfo{}
	recompute := map[string]bool{}
	reused := 0
	var warm *summary.Result[map[string]bool]
	if prev != nil {
		warm = prev.sums
	}
	for _, name := range ctx.Graph.Names() {
		if prev != nil && !dirty[name] {
			if old := prev.infos[name]; old != nil && old.body == ctx.Bodies[name] {
				infos[name] = old
				reused++
				continue
			}
		}
		infos[name] = extract(ctx, name)
		recompute[name] = true
	}
	var sres *summary.Result[map[string]bool]
	var sums map[string]map[string]bool
	if !d.IntraOnly {
		detect.CloseOverCallers(ctx.Graph, recompute)
		sres = buildSummaries(ctx, warm, recompute)
		sums = sres.Summaries
	}
	var acqs []acquisition
	for _, name := range ctx.Graph.Names() {
		info := infos[name]
		acqs = append(acqs, info.direct...)
		for _, hc := range info.calls {
			if sums == nil {
				continue
			}
			for id := range sums[hc.callee] {
				tid := summary.Translate(id, hc.recv)
				if tid == "" {
					continue
				}
				for _, h := range hc.held {
					if h == tid {
						continue // same lock twice: the double-lock detector's case
					}
					acqs = append(acqs, acquisition{first: h, second: tid, fn: name, span: hc.span})
				}
			}
		}
	}

	// Normalize lock ids across functions: methods of the same type refer
	// to "self.x"; free functions to parameter paths. Pair keys combine
	// the holder's id with the acquired id.
	index := map[[2]string][]acquisition{}
	for _, a := range acqs {
		index[[2]string{a.first, a.second}] = append(index[[2]string{a.first, a.second}], a)
	}

	var out []detect.Finding
	seen := map[[2]string]bool{}
	var keys [][2]string
	for k := range index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rev := [2]string{k[1], k[0]}
		if k[0] == k[1] {
			continue // same lock twice is the double-lock detector's job
		}
		if _, hasRev := index[rev]; !hasRev {
			continue
		}
		canon := k
		if strings.Compare(canon[0], canon[1]) > 0 {
			canon = rev
		}
		if seen[canon] {
			continue
		}
		seen[canon] = true
		a := index[k][0]
		b := index[rev][0]
		out = append(out, detect.Finding{
			Kind:     detect.KindLockOrder,
			Severity: detect.SeverityError,
			Function: a.fn,
			Span:     a.span,
			Message: fmt.Sprintf("locks %q and %q are acquired in conflicting orders (%s acquires %q then %q; %s acquires %q then %q)",
				k[0], k[1], a.fn, a.first, a.second, b.fn, b.first, b.second),
			Notes: []string{"two threads interleaving these paths deadlock"},
		})
	}
	detect.SortFindings(out)
	return out, &carry{infos: infos, sums: sres}, reused
}

// buildSummaries computes, bottom-up, the set of lock ids each function
// may (transitively) acquire, in its own namespace; shares the SCC
// fixpoint engine with the double-lock detector so cyclic call graphs
// converge instead of being cut off after a bounded number of rounds.
// SCCs outside the recompute closure reuse warm's fixpoint unchanged.
func buildSummaries(ctx *detect.Context, warm *summary.Result[map[string]bool], recompute map[string]bool) *summary.Result[map[string]bool] {
	prob := &summary.Problem[map[string]bool]{
		Bottom: func(string) map[string]bool { return map[string]bool{} },
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for id := range a {
				if !b[id] {
					return false
				}
			}
			return true
		},
		Transfer: func(name string, get summary.Lookup[map[string]bool]) map[string]bool {
			body := ctx.Bodies[name]
			s := map[string]bool{}
			for _, blk := range body.Blocks {
				c, ok := blk.Term.(mir.Call)
				if !ok {
					continue
				}
				switch c.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if c.RecvPath != "" {
						s[c.RecvPath] = true
					}
					continue
				}
				calleeName := resolvedCallee(ctx, c)
				if calleeName == "" {
					continue
				}
				cs, known := get(calleeName)
				if !known {
					continue
				}
				for id := range cs {
					tid := summary.Translate(id, c.RecvPath)
					if tid == "" {
						continue
					}
					if strings.HasPrefix(tid, "self") || strings.HasPrefix(tid, "static ") {
						s[tid] = true
					}
				}
			}
			return s
		},
	}
	return summary.ComputeFrom(ctx.Graph, prob, warm, recompute)
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}

// extract finds the summary-independent facts of one function: direct
// (held, acquired) pairs, plus resolved calls made while a guard is live
// — the latter expanded against callee acquisition summaries at pairing
// time.
func extract(ctx *detect.Context, name string) *funcInfo {
	body := ctx.Bodies[name]
	g := cfg.New(body)

	// Reuse a small local version of the double-lock guard analysis.
	origins := map[mir.LocalID]string{}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				if as, ok := st.(mir.Assign); ok && as.Place.IsLocal() {
					if use, ok := as.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if id, has := origins[pl.Local]; has {
								if _, dup := origins[as.Place.Local]; !dup {
									origins[as.Place.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
			if c, ok := blk.Term.(mir.Call); ok && c.Dest.IsLocal() {
				switch c.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if c.RecvPath != "" {
						if _, dup := origins[c.Dest.Local]; !dup {
							origins[c.Dest.Local] = c.RecvPath
							changed = true
						}
					}
				case mir.IntrinsicUnwrap:
					if len(c.Args) > 0 {
						if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
							if id, has := origins[pl.Local]; has {
								if _, dup := origins[c.Dest.Local]; !dup {
									origins[c.Dest.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}

	prob := &dataflow.Problem{
		Bits: len(body.Locals),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			switch st := st.(type) {
			case mir.StorageDead:
				state.Clear(int(st.Local))
			case mir.Assign:
				if !st.Place.IsLocal() {
					// Guard moved into a field/deref place: the source
					// local no longer holds it (same rule as doublelock).
					if use, ok := st.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if _, isGuard := origins[pl.Local]; isGuard {
								state.Clear(int(pl.Local))
							}
						}
					}
					return
				}
				if use, ok := st.Rvalue.(mir.Use); ok {
					if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
						if _, isGuard := origins[pl.Local]; isGuard {
							state.Clear(int(pl.Local))
							state.Set(int(st.Place.Local))
							return
						}
					}
				}
				state.Clear(int(st.Place.Local))
			}
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			switch term := term.(type) {
			case mir.Drop:
				if term.Place.IsLocal() {
					state.Clear(int(term.Place.Local))
				}
			case mir.Call:
				switch term.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if term.Dest.IsLocal() {
						if _, tracked := origins[term.Dest.Local]; tracked {
							state.Set(int(term.Dest.Local))
						}
					}
				case mir.IntrinsicUnwrap:
					if len(term.Args) > 0 {
						if pl, ok := mir.OperandPlace(term.Args[0]); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
							state.Clear(int(pl.Local))
							if term.Dest.IsLocal() {
								state.Set(int(term.Dest.Local))
							}
						}
					}
				}
			}
		},
	}
	res := dataflow.Forward(g, prob)

	info := &funcInfo{body: body}
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		state := res.StateAt(blk.ID, len(blk.Stmts))
		held := map[string]bool{}
		state.ForEach(func(l int) {
			if id, isGuard := origins[mir.LocalID(l)]; isGuard {
				held[id] = true
			}
		})
		if len(held) == 0 {
			continue
		}
		switch c.Intrinsic {
		case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
			if c.RecvPath == "" {
				continue
			}
			for id := range held {
				if id == c.RecvPath {
					continue
				}
				info.direct = append(info.direct, acquisition{first: id, second: c.RecvPath, fn: name, span: c.Span})
			}
		default:
			// Inter-procedural: a call made while a guard is live orders
			// the held lock before everything the callee may acquire.
			calleeName := resolvedCallee(ctx, c)
			if calleeName == "" {
				continue
			}
			hc := heldCall{callee: calleeName, recv: c.RecvPath, span: c.Span}
			for id := range held {
				hc.held = append(hc.held, id)
			}
			sort.Strings(hc.held)
			info.calls = append(info.calls, hc)
		}
	}
	return info
}
