// Package lockorder detects conflicting lock acquisition orders (an AB-BA
// deadlock), the second-most-common blocking-bug cause in the paper's §6.1
// (7 of 38 Mutex/RwLock bugs). It reuses the double-lock machinery's guard
// lifetimes: for every acquisition performed while another lock is held it
// records an ordered pair, then reports pairs observed in both directions.
// The check is inter-procedural: per-function acquisition summaries built
// on the shared SCC-fixpoint framework (internal/summary) let a call made
// while a lock is held contribute pairs for every lock the callee may
// transitively acquire.
package lockorder

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/cfg"
	"rustprobe/internal/dataflow"
	"rustprobe/internal/detect"
	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/summary"
)

// Detector finds AB-BA lock order conflicts.
type Detector struct {
	// IntraOnly disables the bottom-up acquisition summaries:
	// caller-holds/callee-acquires orderings are then invisible.
	IntraOnly bool
}

// New returns the detector.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "conflicting-lock-order" }

type acquisition struct {
	first, second string // lock ids, second acquired while first held
	fn            string
	span          source.Span
}

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	var sums map[string]map[string]bool
	if !d.IntraOnly {
		sums = buildSummaries(ctx)
	}
	var acqs []acquisition
	for _, name := range ctx.Graph.Names() {
		acqs = append(acqs, collect(ctx, name, sums)...)
	}

	// Normalize lock ids across functions: methods of the same type refer
	// to "self.x"; free functions to parameter paths. Pair keys combine
	// the holder's id with the acquired id.
	index := map[[2]string][]acquisition{}
	for _, a := range acqs {
		index[[2]string{a.first, a.second}] = append(index[[2]string{a.first, a.second}], a)
	}

	var out []detect.Finding
	seen := map[[2]string]bool{}
	var keys [][2]string
	for k := range index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rev := [2]string{k[1], k[0]}
		if k[0] == k[1] {
			continue // same lock twice is the double-lock detector's job
		}
		if _, hasRev := index[rev]; !hasRev {
			continue
		}
		canon := k
		if strings.Compare(canon[0], canon[1]) > 0 {
			canon = rev
		}
		if seen[canon] {
			continue
		}
		seen[canon] = true
		a := index[k][0]
		b := index[rev][0]
		out = append(out, detect.Finding{
			Kind:     detect.KindLockOrder,
			Severity: detect.SeverityError,
			Function: a.fn,
			Span:     a.span,
			Message: fmt.Sprintf("locks %q and %q are acquired in conflicting orders (%s acquires %q then %q; %s acquires %q then %q)",
				k[0], k[1], a.fn, a.first, a.second, b.fn, b.first, b.second),
			Notes: []string{"two threads interleaving these paths deadlock"},
		})
	}
	detect.SortFindings(out)
	return out
}

// buildSummaries computes, bottom-up, the set of lock ids each function
// may (transitively) acquire, in its own namespace; shares the SCC
// fixpoint engine with the double-lock detector so cyclic call graphs
// converge instead of being cut off after a bounded number of rounds.
func buildSummaries(ctx *detect.Context) map[string]map[string]bool {
	prob := &summary.Problem[map[string]bool]{
		Bottom: func(string) map[string]bool { return map[string]bool{} },
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for id := range a {
				if !b[id] {
					return false
				}
			}
			return true
		},
		Transfer: func(name string, get summary.Lookup[map[string]bool]) map[string]bool {
			body := ctx.Bodies[name]
			s := map[string]bool{}
			for _, blk := range body.Blocks {
				c, ok := blk.Term.(mir.Call)
				if !ok {
					continue
				}
				switch c.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if c.RecvPath != "" {
						s[c.RecvPath] = true
					}
					continue
				}
				calleeName := resolvedCallee(ctx, c)
				if calleeName == "" {
					continue
				}
				cs, known := get(calleeName)
				if !known {
					continue
				}
				for id := range cs {
					tid := summary.Translate(id, c.RecvPath)
					if tid == "" {
						continue
					}
					if strings.HasPrefix(tid, "self") || strings.HasPrefix(tid, "static ") {
						s[tid] = true
					}
				}
			}
			return s
		},
	}
	return summary.Compute(ctx.Graph, prob).Summaries
}

func resolvedCallee(ctx *detect.Context, c mir.Call) string {
	if c.Def != nil {
		if _, ok := ctx.Bodies[c.Def.Qualified]; ok {
			return c.Def.Qualified
		}
	}
	if _, ok := ctx.Bodies[c.Callee]; ok {
		return c.Callee
	}
	return ""
}

// collect finds (held, acquired) pairs in one function: direct
// acquisitions made while another guard is live, plus — through sums —
// calls made while a guard is live to functions that transitively
// acquire other locks.
func collect(ctx *detect.Context, name string, sums map[string]map[string]bool) []acquisition {
	body := ctx.Bodies[name]
	g := cfg.New(body)

	// Reuse a small local version of the double-lock guard analysis.
	origins := map[mir.LocalID]string{}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				if as, ok := st.(mir.Assign); ok && as.Place.IsLocal() {
					if use, ok := as.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if id, has := origins[pl.Local]; has {
								if _, dup := origins[as.Place.Local]; !dup {
									origins[as.Place.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
			if c, ok := blk.Term.(mir.Call); ok && c.Dest.IsLocal() {
				switch c.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if c.RecvPath != "" {
						if _, dup := origins[c.Dest.Local]; !dup {
							origins[c.Dest.Local] = c.RecvPath
							changed = true
						}
					}
				case mir.IntrinsicUnwrap:
					if len(c.Args) > 0 {
						if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
							if id, has := origins[pl.Local]; has {
								if _, dup := origins[c.Dest.Local]; !dup {
									origins[c.Dest.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}

	prob := &dataflow.Problem{
		Bits: len(body.Locals),
		Join: dataflow.JoinUnion,
		TransferStmt: func(state dataflow.BitSet, _ mir.BlockID, _ int, st mir.Statement) {
			switch st := st.(type) {
			case mir.StorageDead:
				state.Clear(int(st.Local))
			case mir.Assign:
				if !st.Place.IsLocal() {
					// Guard moved into a field/deref place: the source
					// local no longer holds it (same rule as doublelock).
					if use, ok := st.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if _, isGuard := origins[pl.Local]; isGuard {
								state.Clear(int(pl.Local))
							}
						}
					}
					return
				}
				if use, ok := st.Rvalue.(mir.Use); ok {
					if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
						if _, isGuard := origins[pl.Local]; isGuard {
							state.Clear(int(pl.Local))
							state.Set(int(st.Place.Local))
							return
						}
					}
				}
				state.Clear(int(st.Place.Local))
			}
		},
		TransferTerm: func(state dataflow.BitSet, _ mir.BlockID, term mir.Terminator) {
			switch term := term.(type) {
			case mir.Drop:
				if term.Place.IsLocal() {
					state.Clear(int(term.Place.Local))
				}
			case mir.Call:
				switch term.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if term.Dest.IsLocal() {
						if _, tracked := origins[term.Dest.Local]; tracked {
							state.Set(int(term.Dest.Local))
						}
					}
				case mir.IntrinsicUnwrap:
					if len(term.Args) > 0 {
						if pl, ok := mir.OperandPlace(term.Args[0]); ok && pl.IsLocal() && state.Has(int(pl.Local)) {
							state.Clear(int(pl.Local))
							if term.Dest.IsLocal() {
								state.Set(int(term.Dest.Local))
							}
						}
					}
				}
			}
		},
	}
	res := dataflow.Forward(g, prob)

	var out []acquisition
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok {
			continue
		}
		state := res.StateAt(blk.ID, len(blk.Stmts))
		held := map[string]bool{}
		state.ForEach(func(l int) {
			if id, isGuard := origins[mir.LocalID(l)]; isGuard {
				held[id] = true
			}
		})
		if len(held) == 0 {
			continue
		}
		switch c.Intrinsic {
		case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
			if c.RecvPath == "" {
				continue
			}
			for id := range held {
				if id == c.RecvPath {
					continue
				}
				out = append(out, acquisition{first: id, second: c.RecvPath, fn: name, span: c.Span})
			}
		default:
			// Inter-procedural: a call made while a guard is live orders
			// the held lock before everything the callee may acquire.
			calleeName := resolvedCallee(ctx, c)
			if calleeName == "" || sums == nil {
				continue
			}
			for id := range sums[calleeName] {
				tid := summary.Translate(id, c.RecvPath)
				if tid == "" {
					continue
				}
				for h := range held {
					if h == tid {
						continue // same lock twice: the double-lock detector's case
					}
					out = append(out, acquisition{first: h, second: tid, fn: name, span: c.Span})
				}
			}
		}
	}
	return out
}
