package lockorder

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func TestABBAConflictFlagged(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindLockOrder {
		t.Errorf("kind = %s", findings[0].Kind)
	}
}

func TestConsistentOrderClean(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("consistent order flagged: %+v", findings)
	}
}

func TestDropBetweenAcquisitionsClean(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        drop(gb);
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("drop-separated acquisitions flagged: %+v", findings)
	}
}

// --- inter-procedural acquisition summaries ----------------------------

// TestInterProceduralABBA: path1 orders a before b only through a callee
// that takes b internally; path2 orders b before a directly. The
// SCC-fixpoint acquisition summaries make the callee's lock visible at
// path1's call site.
func TestInterProceduralABBA(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn read_b(&self) -> i32 {
        let g = self.b.lock().unwrap();
        *g
    }
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let v = self.read_b();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindLockOrder {
		t.Errorf("kind = %s", findings[0].Kind)
	}
}

// TestInterProceduralABBAIntraOnlyMisses pins the ablation: without
// summaries the callee acquisition is invisible and no conflict exists.
func TestInterProceduralABBAIntraOnlyMisses(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn read_b(&self) -> i32 {
        let g = self.b.lock().unwrap();
        *g
    }
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let v = self.read_b();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }
}
`
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	findings := (&Detector{IntraOnly: true}).Run(ctx)
	if len(findings) != 0 {
		t.Fatalf("intra-only should miss the callee acquisition: %+v", findings)
	}
}

// TestRecursiveCalleeOrdering: the callee's acquisition sits behind a
// mutual-recursion cycle, so only a converged fixpoint sees it.
func TestRecursiveCalleeOrdering(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn ping(&self, n: i32) -> i32 {
        if n > 0 { return self.pong(n - 1); }
        0
    }
    fn pong(&self, n: i32) -> i32 {
        let v = { let g = self.b.lock().unwrap(); *g };
        if n > 0 { return self.ping(n - 1); }
        v
    }
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let v = self.ping(2);
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}

// TestConsistentInterProceduralOrderClean: both paths take a then b (one
// via a callee) — consistent order, no conflict.
func TestConsistentInterProceduralOrderClean(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn read_b(&self) -> i32 {
        let g = self.b.lock().unwrap();
        *g
    }
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let v = self.read_b();
    }
    fn path2(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("consistent order flagged: %+v", findings)
	}
}
