package lockorder

import (
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

func TestABBAConflictFlagged(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindLockOrder {
		t.Errorf("kind = %s", findings[0].Kind)
	}
}

func TestConsistentOrderClean(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("consistent order flagged: %+v", findings)
	}
}

func TestDropBetweenAcquisitionsClean(t *testing.T) {
	src := `
struct Shared { a: Mutex<i32>, b: Mutex<i32> }
impl Shared {
    fn path1(&self) {
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
    }
    fn path2(&self) {
        let gb = self.b.lock().unwrap();
        drop(gb);
        let ga = self.a.lock().unwrap();
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("drop-separated acquisitions flagged: %+v", findings)
	}
}
