package interiormut

import (
	"strings"
	"testing"

	"rustprobe/internal/detect"
	"rustprobe/internal/lower"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyze(t *testing.T, src string) []detect.Finding {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	ctx := detect.NewContext(prog, bodies)
	return New().Run(ctx)
}

// Figure 9 (parity-ethereum AuthorityRound): load-check-store on an atomic
// field of a Sync type is not atomic as a whole.
const figure9Buggy = `
struct AuthorityRound { proposed: AtomicBool }
unsafe impl Sync for AuthorityRound {}
enum Seal { None, Regular(i32) }

impl AuthorityRound {
    fn generate_seal(&self) -> Seal {
        if self.proposed.load() { return Seal::None; }
        self.proposed.store(true);
        return Seal::Regular(1);
    }
}
`

// The committed fix: a single compare_and_swap.
const figure9Fixed = `
struct AuthorityRound { proposed: AtomicBool }
unsafe impl Sync for AuthorityRound {}
enum Seal { None, Regular(i32) }

impl AuthorityRound {
    fn generate_seal(&self) -> Seal {
        if !self.proposed.compare_and_swap(false, true) {
            return Seal::Regular(1);
        }
        return Seal::None;
    }
}
`

func TestFigure9BuggyFlagged(t *testing.T) {
	findings := analyze(t, figure9Buggy)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if findings[0].Kind != detect.KindInteriorMut {
		t.Errorf("kind = %s", findings[0].Kind)
	}
	if findings[0].Function != "AuthorityRound::generate_seal" {
		t.Errorf("function = %s", findings[0].Function)
	}
}

func TestFigure9FixedClean(t *testing.T) {
	findings := analyze(t, figure9Fixed)
	if len(findings) != 0 {
		t.Fatalf("fixed version flagged: %+v", findings)
	}
}

// Figure 4 (TestCell): pointer-cast write through &self on a Sync type.
const figure4 = `
struct TestCell { value: i32 }
unsafe impl Sync for TestCell {}

impl TestCell {
    fn set(&self, i: i32) {
        let p = &self.value as *const i32 as *mut i32;
        unsafe { *p = i };
    }
}
`

func TestFigure4RawWriteFlagged(t *testing.T) {
	findings := analyze(t, figure4)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
}

func TestNonSyncTypeNotFlagged(t *testing.T) {
	src := `
struct Plain { value: i32 }
impl Plain {
    fn set(&self, i: i32) {
        let p = &self.value as *const i32 as *mut i32;
        unsafe { *p = i };
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("non-Sync type flagged: %+v", findings)
	}
}

func TestLockedWriteNotFlagged(t *testing.T) {
	// Mutating self under a self-rooted lock is properly synchronized.
	src := `
struct Locked { inner: Mutex<i32> }
unsafe impl Sync for Locked {}
impl Locked {
    fn set(&self, i: i32) {
        let mut g = self.inner.lock().unwrap();
        let p = &self.inner as *const Mutex<i32> as *mut Mutex<i32>;
        unsafe { *p = Mutex::new(i) };
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("locked write flagged: %+v", findings)
	}
}

func TestUnsafeImplSyncWithRawPointerField(t *testing.T) {
	src := `
struct SharedPtr { data: *mut u8, len: usize }
unsafe impl Send for SharedPtr {}
unsafe impl Sync for SharedPtr {}
`
	findings := analyze(t, src)
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2 (Send + Sync audits): %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Severity != detect.SeverityWarning {
			t.Errorf("severity = %v, want warning", f.Severity)
		}
	}
}

func TestUnsafeImplSyncSafeFieldsClean(t *testing.T) {
	src := `
struct Plain { n: i32 }
unsafe impl Sync for Plain {}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("safe-field impl flagged: %+v", findings)
	}
}

// Figure 5: peek() returns a reference into self while pop() mutates self
// through interior mutability — both on &self.
func TestFigure5EscapingRefFlagged(t *testing.T) {
	src := `
struct Queue { items: Vec<i32> }
impl Queue {
    pub fn peek(&self) -> Option<&i32> { None }
    pub fn pop(&self) -> Option<i32> {
        let p = &self.items as *const Vec<i32> as *mut Vec<i32>;
        unsafe { (*p).pop() }
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1: %+v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "invalidate references") {
		t.Errorf("message = %q", findings[0].Message)
	}
}

// The suggested fix takes &mut self for the mutating method: the borrow
// checker then rejects a live peek() reference, and the checker is silent.
func TestFigure5FixedClean(t *testing.T) {
	src := `
struct Queue { items: Vec<i32> }
impl Queue {
    pub fn peek(&self) -> Option<&i32> { None }
    pub fn pop(&mut self) -> Option<i32> {
        self.items.pop()
    }
}
`
	findings := analyze(t, src)
	if len(findings) != 0 {
		t.Fatalf("fixed queue flagged: %+v", findings)
	}
}
