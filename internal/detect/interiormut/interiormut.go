// Package interiormut implements the static check the paper proposes in
// §7.2 for non-blocking bugs caused by interior mutability on shared
// types (Insight 10, Suggestion 8, Figure 9): when a struct is sharable
// across threads (implements Sync) and a method immutably borrows self
// (&self), any unsynchronized modification of self inside the method is a
// race risk. Two patterns are reported:
//
//  1. a non-atomic check-then-act on an atomic field of self: load() feeds
//     a branch and a reachable branch arm store()s the same field (the
//     Figure 9 AuthorityRound::generate_seal bug);
//  2. a plain write to self's storage through a pointer-cast of an
//     immutable borrow without holding any self-rooted lock (the Figure 4
//     TestCell::set pattern).
package interiormut

import (
	"fmt"
	"strings"

	"rustprobe/internal/ast"
	"rustprobe/internal/cfg"
	"rustprobe/internal/detect"
	"rustprobe/internal/mir"
	"rustprobe/internal/types"
)

// Detector finds unsynchronized interior mutability on Sync types.
type Detector struct{}

// New returns the detector.
func New() *Detector { return &Detector{} }

// Name implements detect.Detector.
func (*Detector) Name() string { return "interior-mutability" }

// funcInfo is the cached per-function extraction: the &self-method
// shape facts the global pairing needs, plus the two per-function
// checks' findings computed unconditionally — the sharable() filter
// (which depends on the round's impl set, not the body) is applied at
// emission time so a cached entry never goes stale when only impls
// change.
type funcInfo struct {
	body     *mir.Body
	selfRef  bool // &self method with a known receiver type
	selfType string
	escaper  bool // returns a reference into self
	mutator  bool // writes self's storage through a pointer
	perFn    []detect.Finding
}

// carry is the detector's cross-round state; see detect.Incremental.
type carry struct {
	infos map[string]*funcInfo
}

// FactCount implements detect.FactCounter.
func (c *carry) FactCount() int { return len(c.infos) }

// Run implements detect.Detector.
func (d *Detector) Run(ctx *detect.Context) []detect.Finding {
	out, _, _ := d.RunIncremental(ctx, nil, nil)
	return out
}

// RunIncremental implements detect.Incremental: the per-function checks
// and escape/mutation facts are reused for clean functions (validated by
// body identity); the impl audit and the cross-method pairing — both
// cheap and global — re-run in full every round.
func (d *Detector) RunIncremental(ctx *detect.Context, prior detect.Carry, dirty map[string]bool) ([]detect.Finding, detect.Carry, int) {
	prev, _ := prior.(*carry)
	infos := map[string]*funcInfo{}
	reused := 0
	for _, name := range ctx.Graph.Names() {
		if prev != nil && !dirty[name] {
			if old := prev.infos[name]; old != nil && old.body == ctx.Bodies[name] {
				infos[name] = old
				reused++
				continue
			}
		}
		infos[name] = d.extract(ctx, name)
	}
	var out []detect.Finding
	for _, name := range ctx.Graph.Names() {
		info := infos[name]
		if info.selfRef && sharable(ctx, info.selfType) {
			out = append(out, info.perFn...)
		}
	}
	out = append(out, d.checkUnsafeImplWithRawFields(ctx)...)
	out = append(out, d.checkEscapingRefWithInteriorMut(ctx, infos)...)
	detect.SortFindings(out)
	return out, &carry{infos: infos}, reused
}

// extract computes one function's cached facts.
func (d *Detector) extract(ctx *detect.Context, name string) *funcInfo {
	body := ctx.Bodies[name]
	info := &funcInfo{body: body}
	fd := body.Func
	if fd == nil || fd.SelfKind != ast.SelfRef || fd.SelfType == "" {
		return info
	}
	info.selfRef = true
	info.selfType = fd.SelfType
	info.escaper = returnsReference(fd.Ret)
	info.mutator = mutatesSelfInterior(ctx, name)
	info.perFn = append(info.perFn, d.checkCheckThenAct(ctx, name)...)
	info.perFn = append(info.perFn, d.checkRawWrite(ctx, name)...)
	return info
}

// checkEscapingRefWithInteriorMut implements the paper's Suggestion 4 on
// the Figure 5 pattern (Rust std's Queue::peek/pop): a type where one
// &self method hands out a reference into self while another &self method
// mutates self through interior mutability. The borrow checker cannot see
// the conflict because both methods borrow immutably; the reference can
// dangle. This applies to any type, Sync or not — Figure 5's queue is a
// single-threaded memory-safety issue.
func (d *Detector) checkEscapingRefWithInteriorMut(ctx *detect.Context, infos map[string]*funcInfo) []detect.Finding {
	// Group &self methods by type.
	escapers := map[string][]string{} // type -> methods returning refs into self
	mutators := map[string][]*mir.Body{}
	for _, name := range ctx.Graph.Names() {
		info := infos[name]
		if !info.selfRef {
			continue
		}
		if info.escaper {
			escapers[info.selfType] = append(escapers[info.selfType], info.body.Func.Qualified)
		}
		if info.mutator {
			mutators[info.selfType] = append(mutators[info.selfType], info.body)
		}
	}
	var out []detect.Finding
	for typeName, esc := range escapers {
		for _, mutBody := range mutators[typeName] {
			out = append(out, detect.Finding{
				Kind:     detect.KindInteriorMut,
				Severity: detect.SeverityWarning,
				Function: mutBody.Func.Qualified,
				Span:     mutBody.Func.Span,
				Message: fmt.Sprintf("interior mutability in a &self method of %s can invalidate references handed out by %s",
					typeName, strings.Join(esc, ", ")),
				Notes: []string{
					"both methods borrow &self, so the borrow checker cannot see the conflict (the std Queue::peek/pop issue)",
					"take &mut self in the mutating method, or return by value instead of by reference (paper Suggestion 4)",
				},
			})
		}
	}
	return out
}

// returnsReference reports whether a return type contains a reference.
func returnsReference(t types.Type) bool {
	switch t := t.(type) {
	case *types.Ref:
		return true
	case *types.Named:
		for _, a := range t.Args {
			if returnsReference(a) {
				return true
			}
		}
	case *types.Tuple:
		for _, e := range t.Elems {
			if returnsReference(e) {
				return true
			}
		}
	}
	return false
}

// mutatingMethods are container methods that modify their receiver.
var mutatingMethods = map[string]bool{
	"pop": true, "push": true, "insert": true, "remove": true, "clear": true,
	"set": true, "write": true, "push_back": true, "push_front": true,
	"pop_front": true, "pop_back": true, "truncate": true, "drain": true,
}

// mutatesSelfInterior reports whether a &self method writes self's storage
// through a pointer (assignment or a mutating container method on a
// self-aliased deref).
func mutatesSelfInterior(ctx *detect.Context, name string) bool {
	body := ctx.Bodies[name]
	pts := ctx.PointsTo(name)
	const selfLocal = mir.LocalID(1)
	aliasesSelf := func(l mir.LocalID) bool {
		if l == selfLocal {
			return true
		}
		return pts.Targets(l)[selfLocal]
	}
	for _, blk := range body.Blocks {
		for _, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok || !as.Place.HasDeref() {
				continue
			}
			if aliasesSelf(as.Place.Local) {
				// Self methods legitimately write through &mut projections;
				// interior mutation goes through a raw pointer.
				if _, isRaw := body.Local(as.Place.Local).Ty.(*types.RawPtr); isRaw {
					return true
				}
			}
		}
		if c, ok := blk.Term.(mir.Call); ok && len(c.Args) > 0 {
			short := c.Callee
			if i := strings.LastIndex(short, "::"); i >= 0 {
				short = short[i+2:]
			}
			if !mutatingMethods[short] {
				continue
			}
			if pl, isPlace := mir.OperandPlace(c.Args[0]); isPlace && pl.HasDeref() && aliasesSelf(pl.Local) {
				if _, isRaw := body.Local(pl.Local).Ty.(*types.RawPtr); isRaw {
					return true
				}
			}
		}
	}
	return false
}

// checkUnsafeImplWithRawFields audits `unsafe impl Send/Sync for T` where
// T stores raw pointers: the impl asserts thread safety for aliased
// mutable memory the compiler cannot see — the pattern behind Table 4's
// "Sync" sharing bugs, and the audit Suggestion 8 asks for.
func (d *Detector) checkUnsafeImplWithRawFields(ctx *detect.Context) []detect.Finding {
	var out []detect.Finding
	for _, im := range ctx.Program.Impls {
		if !im.Unsafety || (im.TraitName != "Sync" && im.TraitName != "Send") {
			continue
		}
		sd, ok := ctx.Program.Structs[im.TypeName]
		if !ok {
			continue
		}
		for _, field := range sd.Order {
			if _, isRaw := sd.Fields[field].(*types.RawPtr); !isRaw {
				continue
			}
			out = append(out, detect.Finding{
				Kind:     detect.KindInteriorMut,
				Severity: detect.SeverityWarning,
				Function: im.TypeName,
				Span:     im.Span,
				Message: fmt.Sprintf("unsafe impl %s for %s: field %q is a raw pointer the compiler cannot prove thread-safe",
					im.TraitName, im.TypeName, field),
				Notes: []string{
					"the impl is a manual assertion; audit every access to the pointed-to memory for synchronization",
				},
			})
			break
		}
	}
	return out
}

// sharable reports whether the type is shared across threads: an explicit
// (unsafe) impl of Sync or Send.
func sharable(ctx *detect.Context, typeName string) bool {
	return ctx.Program.ImplementsTrait(typeName, "Sync") ||
		ctx.Program.ImplementsTrait(typeName, "Send")
}

// checkCheckThenAct finds load(self.X) → branch → store(self.X) chains.
func (d *Detector) checkCheckThenAct(ctx *detect.Context, name string) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)

	// Gather atomic loads/stores on self-rooted paths.
	type site struct {
		block mir.BlockID
		call  mir.Call
	}
	var loads, stores, rmws []site
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		c, ok := blk.Term.(mir.Call)
		if !ok || c.RecvPath == "" || !strings.HasPrefix(c.RecvPath, "self.") {
			continue
		}
		switch {
		case strings.HasSuffix(c.Callee, "::load"):
			loads = append(loads, site{blk.ID, c})
		case strings.HasSuffix(c.Callee, "::store"):
			stores = append(stores, site{blk.ID, c})
		case strings.HasSuffix(c.Callee, "::compare_and_swap"),
			strings.HasSuffix(c.Callee, "::compare_exchange"),
			strings.HasSuffix(c.Callee, "::fetch_add"),
			strings.HasSuffix(c.Callee, "::fetch_sub"),
			strings.HasSuffix(c.Callee, "::swap"):
			rmws = append(rmws, site{blk.ID, c})
		}
	}
	if len(loads) == 0 || len(stores) == 0 {
		return nil
	}

	// A load whose destination (transitively) feeds a SwitchInt, with a
	// store to the same field reachable from the load: check-then-act.
	var out []detect.Finding
	for _, ld := range loads {
		if !feedsBranch(body, g, ld.call.Dest.Local, ld.block) {
			continue
		}
		reach := g.ReachableFrom(ld.block)
		for _, st := range stores {
			if st.call.RecvPath != ld.call.RecvPath || !reach[st.block] {
				continue
			}
			out = append(out, detect.Finding{
				Kind:     detect.KindInteriorMut,
				Severity: detect.SeverityError,
				Function: name,
				Span:     st.call.Span,
				Message: fmt.Sprintf("non-atomic check-then-act on %q: load() guards a branch that store()s the same atomic",
					ld.call.RecvPath),
				Notes: []string{
					"two threads can both observe the old value before either stores",
					"use compare_and_swap/compare_exchange to make the step atomic",
				},
			})
			break
		}
	}
	return out
}

// feedsBranch reports whether a local's value (propagated through copies
// and pure ops) reaches a SwitchInt discriminant.
func feedsBranch(body *mir.Body, g *cfg.Graph, start mir.LocalID, from mir.BlockID) bool {
	derived := map[mir.LocalID]bool{start: true}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok || !as.Place.IsLocal() || derived[as.Place.Local] {
					continue
				}
				uses := false
				scan := func(op mir.Operand) {
					if pl, ok := mir.OperandPlace(op); ok && derived[pl.Local] {
						uses = true
					}
				}
				switch rv := as.Rvalue.(type) {
				case mir.Use:
					scan(rv.X)
				case mir.BinaryOp:
					scan(rv.L)
					scan(rv.R)
				case mir.UnaryOp:
					scan(rv.X)
				case mir.Cast:
					scan(rv.X)
				}
				if uses {
					derived[as.Place.Local] = true
					changed = true
				}
			}
		}
	}
	reach := g.ReachableFrom(from)
	for _, blk := range body.Blocks {
		if !reach[blk.ID] {
			continue
		}
		if sw, ok := blk.Term.(mir.SwitchInt); ok {
			if pl, ok := mir.OperandPlace(sw.Disc); ok && derived[pl.Local] {
				return true
			}
		}
	}
	return false
}

// checkRawWrite finds writes through pointers derived from &self without a
// self-rooted lock guard in scope anywhere in the function.
func (d *Detector) checkRawWrite(ctx *detect.Context, name string) []detect.Finding {
	body := ctx.Bodies[name]
	g := cfg.New(body)
	pts := ctx.PointsTo(name)

	// self is always local _1 for methods.
	const selfLocal = mir.LocalID(1)

	// Does the function ever hold a lock rooted at self?
	locksSelf := false
	for _, blk := range body.Blocks {
		if c, ok := blk.Term.(mir.Call); ok {
			switch c.Intrinsic {
			case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
				if strings.HasPrefix(c.RecvPath, "self") {
					locksSelf = true
				}
			}
		}
	}
	if locksSelf {
		return nil
	}

	var out []detect.Finding
	for _, blk := range body.Blocks {
		if !g.Reachable(blk.ID) {
			continue
		}
		for _, st := range blk.Stmts {
			as, ok := st.(mir.Assign)
			if !ok || !as.Place.HasDeref() {
				continue
			}
			// The written-through pointer must alias self's storage.
			for t := range pts.Targets(as.Place.Local) {
				if t != selfLocal {
					continue
				}
				out = append(out, detect.Finding{
					Kind:     detect.KindInteriorMut,
					Severity: detect.SeverityWarning,
					Function: name,
					Span:     as.Span,
					Message:  "write to self's storage through a pointer in a &self method of a Sync type, with no synchronization",
					Notes: []string{
						"interior mutability on a shared type must guarantee internal mutual exclusion (paper Suggestion 8)",
					},
				})
				break
			}
		}
	}
	return out
}
