package hir

import (
	"testing"

	"rustprobe/internal/ast"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

func TestProgramRegistries(t *testing.T) {
	p := NewProgram(source.NewFileSet())
	p.Impls = append(p.Impls,
		&ImplDef{TypeName: "Cell", TraitName: "Sync", Unsafety: true},
		&ImplDef{TypeName: "Cell", TraitName: "Engine"},
	)
	if !p.ImplementsTrait("Cell", "Sync") || p.ImplementsTrait("Cell", "Send") {
		t.Error("ImplementsTrait wrong")
	}
	if p.UnsafeImpl("Cell", "Sync") == nil || p.UnsafeImpl("Cell", "Engine") != nil {
		t.Error("UnsafeImpl wrong")
	}
}

func TestLookupMethodFallsBackToTraitDefault(t *testing.T) {
	p := NewProgram(source.NewFileSet())
	p.Funcs["Engine::step"] = &FuncDef{Name: "step", Qualified: "Engine::step"}
	p.Impls = append(p.Impls, &ImplDef{TypeName: "Cell", TraitName: "Engine"})
	if got := p.LookupMethod("Cell", "step"); got == nil || got.Qualified != "Engine::step" {
		t.Errorf("LookupMethod = %+v", got)
	}
	// Direct method wins over trait default.
	p.Funcs["Cell::step"] = &FuncDef{Name: "step", Qualified: "Cell::step"}
	if got := p.LookupMethod("Cell", "step"); got.Qualified != "Cell::step" {
		t.Errorf("LookupMethod = %+v", got)
	}
	if p.LookupMethod("Cell", "missing") != nil {
		t.Error("missing method should be nil")
	}
}

func TestSortedFuncsDeterministic(t *testing.T) {
	p := NewProgram(source.NewFileSet())
	for _, n := range []string{"z", "a", "M::m", "B::b"} {
		p.Funcs[n] = &FuncDef{Qualified: n}
	}
	got := p.SortedFuncs()
	want := []string{"B::b", "M::m", "a", "z"}
	for i, fd := range got {
		if fd.Qualified != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, fd.Qualified, want[i])
		}
	}
}

func TestStructFieldType(t *testing.T) {
	sd := &StructDef{
		Name:   "S",
		Fields: map[string]types.Type{"v": types.I32Type},
	}
	if sd.FieldType("v") != types.I32Type {
		t.Error("field lookup wrong")
	}
	if sd.FieldType("w") != types.UnknownType {
		t.Error("missing field should be Unknown")
	}
}

func TestIsMethod(t *testing.T) {
	if (&FuncDef{SelfKind: ast.SelfNone}).IsMethod() {
		t.Error("free fn misdetected as method")
	}
	if !(&FuncDef{SelfKind: ast.SelfRef}).IsMethod() {
		t.Error("&self method not detected")
	}
}
