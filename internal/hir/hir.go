// Package hir defines the resolved program representation sitting between
// the AST and MIR: a registry of structs, enums, traits, impls, statics and
// functions with semantic types attached. Function bodies remain AST; the
// lower package consumes them together with this registry.
package hir

import (
	"sort"

	"rustprobe/internal/ast"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// Program is a fully resolved crate set.
type Program struct {
	Fset *source.FileSet

	Structs map[string]*StructDef
	Enums   map[string]*EnumDef
	Traits  map[string]*TraitDef
	Statics map[string]*StaticDef

	// Funcs holds every function with a body, keyed by qualified name:
	// free functions by "name", methods by "Type::name".
	Funcs map[string]*FuncDef

	// VariantOwner maps an enum variant name (e.g. "Some") to its enum.
	VariantOwner map[string]*EnumDef

	// Impls records which named types implement which traits, including
	// whether the impl was declared unsafe (e.g. `unsafe impl Sync`).
	Impls []*ImplDef

	// Crates retains the parsed sources for AST-level passes (the §4
	// unsafety scanner walks these).
	Crates []*ast.Crate
}

// NewProgram allocates an empty program.
func NewProgram(fset *source.FileSet) *Program {
	return &Program{
		Fset:         fset,
		Structs:      map[string]*StructDef{},
		Enums:        map[string]*EnumDef{},
		Traits:       map[string]*TraitDef{},
		Statics:      map[string]*StaticDef{},
		Funcs:        map[string]*FuncDef{},
		VariantOwner: map[string]*EnumDef{},
	}
}

// StructDef is a resolved struct.
type StructDef struct {
	Name    string
	Fields  map[string]types.Type
	Order   []string // declaration order of fields
	IsTuple bool
	Span    source.Span
	Syntax  *ast.StructItem
}

// FieldType returns the type of the named field, or Unknown.
func (s *StructDef) FieldType(name string) types.Type {
	if t, ok := s.Fields[name]; ok {
		return t
	}
	return types.UnknownType
}

// EnumDef is a resolved enum.
type EnumDef struct {
	Name     string
	Variants map[string][]types.Type // variant name -> payload field types
	Order    []string
	Span     source.Span
	Syntax   *ast.EnumItem
}

// TraitDef is a resolved trait.
type TraitDef struct {
	Name     string
	Unsafety bool
	Methods  []string
	Span     source.Span
	Syntax   *ast.TraitItem
}

// StaticDef is a `static`/`const` item.
type StaticDef struct {
	Name    string
	Mut     bool
	IsConst bool
	Ty      types.Type
	Span    source.Span
	Syntax  *ast.StaticItem
}

// ImplDef records one `impl` block.
type ImplDef struct {
	TypeName  string // name of the self type
	TraitName string // "" for inherent impls
	Unsafety  bool
	Span      source.Span
	Syntax    *ast.ImplItem
}

// FuncDef is a function or method with resolved signature.
type FuncDef struct {
	Name      string // unqualified name
	Qualified string // "Type::name" for methods, "name" otherwise
	SelfType  string // "" for free functions
	SelfKind  ast.SelfKind
	Unsafety  bool
	Params    []ParamDef
	Ret       types.Type
	Span      source.Span
	Syntax    *ast.FnItem
	TraitName string // trait this method implements, if any
}

// ParamDef is one resolved parameter.
type ParamDef struct {
	Name string
	Ty   types.Type
	Pat  ast.Pat // non-nil when the parameter pattern is not a plain name
}

// IsMethod reports whether the function has a self receiver.
func (f *FuncDef) IsMethod() bool { return f.SelfKind != ast.SelfNone }

// ImplementsTrait reports whether typeName has an impl of traitName.
func (p *Program) ImplementsTrait(typeName, traitName string) bool {
	for _, im := range p.Impls {
		if im.TypeName == typeName && im.TraitName == traitName {
			return true
		}
	}
	return false
}

// UnsafeImpl returns the unsafe impl of traitName for typeName, or nil.
func (p *Program) UnsafeImpl(typeName, traitName string) *ImplDef {
	for _, im := range p.Impls {
		if im.TypeName == typeName && im.TraitName == traitName && im.Unsafety {
			return im
		}
	}
	return nil
}

// LookupMethod finds "Type::name", falling back to a trait default.
func (p *Program) LookupMethod(typeName, method string) *FuncDef {
	if f, ok := p.Funcs[typeName+"::"+method]; ok {
		return f
	}
	// Fall back: find any trait the type implements that defines the
	// method as a provided (default) method.
	for _, im := range p.Impls {
		if im.TypeName != typeName || im.TraitName == "" {
			continue
		}
		if f, ok := p.Funcs[im.TraitName+"::"+method]; ok {
			return f
		}
	}
	return nil
}

// SortedFuncs returns the functions in deterministic (qualified-name) order.
func (p *Program) SortedFuncs() []*FuncDef {
	out := make([]*FuncDef, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Qualified < out[j].Qualified })
	return out
}
