package sessionpool

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rustprobe"
	"rustprobe/internal/incrstate"
	"rustprobe/internal/store"
)

var (
	uafSrc = `fn stale(v: Vec<i32>) {
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
fn helper(x: i32) -> i32 {
    x + 1
}
`
	dlockSrc = `struct Shared { mu: Mutex<i32> }
impl Shared {
    fn twice(&self) {
        let a = self.mu.lock().unwrap();
        let b = self.mu.lock().unwrap();
    }
}
`
)

func baseTree() map[string]string {
	return map[string]string{"util.rs": uafSrc, "lib.rs": dlockSrc}
}

// oracleFindings is the stateless reference: a from-scratch analysis of
// the same tree in the pool's wire shape.
func oracleFindings(t *testing.T, files map[string]string) []incrstate.Finding {
	t.Helper()
	res, err := rustprobe.AnalyzeFiles(files)
	if err != nil {
		t.Fatalf("oracle analysis: %v", err)
	}
	out := make([]incrstate.Finding, 0)
	for _, f := range res.Detect() {
		pos := res.Fset.Position(f.Span.Start)
		out = append(out, incrstate.Finding{
			Kind: string(f.Kind), Severity: f.Severity.String(), Function: f.Function,
			File: pos.File, Line: pos.Line, Column: pos.Column, Message: f.Message, Notes: f.Notes,
		})
	}
	incrstate.SortFindings(out)
	return out
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPoolPushAndDiff(t *testing.T) {
	p := New(Config{})
	ctx := context.Background()
	files := baseTree()

	res, err := p.Push(ctx, "repo-a", files)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Full || res.Stats.SessionHit {
		t.Fatalf("first push stats: %+v", res.Stats)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, files)); got != want {
		t.Fatalf("first push findings diverge\n got: %s\nwant: %s", got, want)
	}

	// Body-only diff push: incremental, hits the live session, replays
	// the untouched double-lock, recomputes only the dirty closure.
	changed := map[string]string{"util.rs": strings.Replace(uafSrc, "x + 1", "x + 2", 1)}
	res, err = p.PushDiff(ctx, "repo-a", changed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Full || !res.Stats.SessionHit {
		t.Fatalf("diff push stats: %+v", res.Stats)
	}
	if res.Stats.FindingsReused == 0 || res.Stats.RootsDetected >= res.Stats.FuncsTotal {
		t.Fatalf("diff push not dirty-closure-only: %+v", res.Stats)
	}
	after := baseTree()
	after["util.rs"] = changed["util.rs"]
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, after)); got != want {
		t.Fatalf("diff push findings diverge\n got: %s\nwant: %s", got, want)
	}

	// Diff removal of a file is a structural change — still correct.
	res, err = p.PushDiff(ctx, "repo-a", nil, []string{"lib.rs"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, map[string]string{"util.rs": after["util.rs"]})); got != want {
		t.Fatalf("removal push findings diverge\n got: %s\nwant: %s", got, want)
	}

	st := p.Stats()
	if st.Live != 1 || st.Pushes != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("pool stats: %+v", st)
	}
}

func TestPoolDiffWithoutSession(t *testing.T) {
	p := New(Config{})
	if _, err := p.PushDiff(context.Background(), "never-pushed", map[string]string{"a.rs": "fn f() {}\n"}, nil); err != ErrNoSession {
		t.Fatalf("diff without session: err = %v, want ErrNoSession", err)
	}
}

func TestPoolSyntaxErrorKeepsSession(t *testing.T) {
	p := New(Config{})
	ctx := context.Background()
	if _, err := p.Push(ctx, "r", baseTree()); err != nil {
		t.Fatal(err)
	}
	_, err := p.PushDiff(ctx, "r", map[string]string{"util.rs": "fn oops( {"}, nil)
	var syn *rustprobe.SyntaxError
	if err == nil || !errors.As(err, &syn) {
		t.Fatalf("broken push err = %v, want *rustprobe.SyntaxError", err)
	}
	// The diff base is still the last good tree.
	res, err := p.PushDiff(ctx, "r", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, baseTree())); got != want {
		t.Fatal("session state corrupted by failed push")
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := New(Config{MaxSessions: 2})
	ctx := context.Background()
	tree := map[string]string{"a.rs": "fn f() {}\n"}
	for _, repo := range []string{"r1", "r2", "r3"} {
		if _, err := p.Push(ctx, repo, tree); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Live != 2 || st.EvictionsLRU != 1 {
		t.Fatalf("after 3 pushes with cap 2: %+v", st)
	}
	// r1 was the LRU victim; its next push is a miss.
	if res, err := p.Push(ctx, "r1", tree); err != nil {
		t.Fatal(err)
	} else if res.Stats.SessionHit {
		t.Fatal("evicted repo reported a session hit")
	}
}

func TestPoolTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	p := New(Config{IdleTTL: time.Minute, Now: clock})
	ctx := context.Background()
	tree := map[string]string{"a.rs": "fn f() {}\n"}
	if _, err := p.Push(ctx, "r", tree); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := p.Push(ctx, "other", tree); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.EvictionsTTL != 1 || st.Live != 1 {
		t.Fatalf("TTL eviction stats: %+v", st)
	}
}

func TestPoolStoreRestore(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		s, err := store.Open(dir, "test-v1")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ctx := context.Background()
	files := baseTree()

	p1 := New(Config{Store: open()})
	if _, err := p1.Push(ctx, "repo", files); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	// New pool, same store: the first push restores and a body-only edit
	// runs incrementally.
	p2 := New(Config{Store: open()})
	edited := baseTree()
	edited["util.rs"] = strings.Replace(uafSrc, "x + 1", "x + 9", 1)
	res, err := p2.Push(ctx, "repo", edited)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Full || !res.Stats.Restored || res.Stats.FindingsReused == 0 {
		t.Fatalf("restored push stats: %+v", res.Stats)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, edited)); got != want {
		t.Fatalf("restored push findings diverge\n got: %s\nwant: %s", got, want)
	}
	if st := p2.Stats(); st.Restores != 1 {
		t.Fatalf("restore counter: %+v", st)
	}

	// A diff push right after restart still fails: the diff base is the
	// in-memory tree, which did not survive.
	p3 := New(Config{Store: open()})
	if _, err := p3.PushDiff(ctx, "repo", map[string]string{"util.rs": uafSrc}, nil); err != ErrNoSession {
		t.Fatalf("post-restart diff err = %v, want ErrNoSession", err)
	}
}

func TestPoolCorruptAndStaleStoreState(t *testing.T) {
	ctx := context.Background()
	files := baseTree()

	t.Run("corrupt on disk", func(t *testing.T) {
		dir := t.TempDir()
		s1, err := store.Open(dir, "test-v1")
		if err != nil {
			t.Fatal(err)
		}
		p1 := New(Config{Store: s1})
		if _, err := p1.Push(ctx, "repo", files); err != nil {
			t.Fatal(err)
		}
		// Smash the persisted snapshot's bytes on disk. The store's
		// checksum catches it, quarantines the entry, and the next epoch's
		// push runs a clean full round.
		smashed := 0
		filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.Contains(path, "sess-") {
				return err
			}
			smashed++
			return os.WriteFile(path, []byte("garbage"), 0o644)
		})
		if smashed == 0 {
			t.Fatal("no persisted session snapshot found to corrupt")
		}
		s2, err := store.Open(dir, "test-v1")
		if err != nil {
			t.Fatal(err)
		}
		p2 := New(Config{Store: s2})
		res, err := p2.Push(ctx, "repo", files)
		if err != nil {
			t.Fatalf("push over corrupt state failed: %v", err)
		}
		if !res.Stats.Full {
			t.Fatalf("corrupt state should force a full round: %+v", res.Stats)
		}
		if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, files)); got != want {
			t.Fatal("full round over corrupt state diverges")
		}
		if st := p2.Stats(); st.Restores != 0 {
			t.Fatalf("corrupt state counted as a restore: %+v", st)
		}
	})

	t.Run("stale version payload", func(t *testing.T) {
		dir := t.TempDir()
		s1, err := store.Open(dir, "test-v1")
		if err != nil {
			t.Fatal(err)
		}
		// A checksum-valid store entry whose incrstate payload names an
		// old analyzer version: decodes fail, push falls back to full.
		stale := &incrstate.State{
			Version: "0:ancient", Files: map[string]string{}, Interfaces: map[string]string{},
			FnBodies: map[string]string{}, FnPos: map[string]string{},
		}
		payload, err := incrstate.Encode(stale)
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Put(SessionKey("repo"), payload); err != nil {
			t.Fatal(err)
		}
		p := New(Config{Store: s1})
		res, err := p.Push(ctx, "repo", files)
		if err != nil {
			t.Fatalf("push over stale state failed: %v", err)
		}
		if !res.Stats.Full {
			t.Fatalf("stale state should force a full round: %+v", res.Stats)
		}
		if st := p.Stats(); st.Restores != 0 {
			t.Fatalf("stale state counted as a restore: %+v", st)
		}
	})
}

func TestPoolClosed(t *testing.T) {
	p := New(Config{})
	p.Close()
	if _, err := p.Push(context.Background(), "r", map[string]string{"a.rs": "fn f() {}\n"}); err != ErrClosed {
		t.Fatalf("push after close: err = %v, want ErrClosed", err)
	}
}

func TestPoolContextCancelled(t *testing.T) {
	p := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Push(ctx, "r", map[string]string{"a.rs": "fn f() {}\n"}); err != context.Canceled {
		t.Fatalf("cancelled push err = %v, want context.Canceled", err)
	}
}

// TestPoolCallerOwnedInputs: the pool must copy the pushed file map —
// a client reusing its map buffer between pushes cannot corrupt the
// session's diff base.
func TestPoolCallerOwnedInputs(t *testing.T) {
	p := New(Config{})
	ctx := context.Background()
	files := baseTree()
	if _, err := p.Push(ctx, "r", files); err != nil {
		t.Fatal(err)
	}
	files["util.rs"] = "fn changed() {}\n" // caller mutates its map
	res, err := p.PushDiff(ctx, "r", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, res.Findings), mustJSON(t, oracleFindings(t, baseTree())); got != want {
		t.Fatal("caller mutation leaked into the session's diff base")
	}
}
