// Package sessionpool holds live rustprobe.Sessions keyed by repository
// name — the daemon's stateful tier. Where the engine's caches make
// identical content cheap, the pool makes *evolving* content cheap: a CI
// fleet re-pushing a tree with a 1-file diff hits the repo's live
// session and pays one dirty-closure detection instead of a per-file
// cache sweep.
//
// Concurrency contract: pushes to the same repo serialize on the
// session entry's lock (a session round mutates shared reuse state;
// interleaving two rounds would diff against a moving base), while
// pushes to distinct repos run fully in parallel. The pool lock guards
// only the entry table and is never held across an analysis round.
//
// Lifecycle: entries are created on first push, touched on every push,
// and evicted LRU once the pool exceeds MaxSessions or idle past
// IdleTTL — but never while a push holds a reference. With a backing
// store, every successful round synchronously persists the session's
// exported state (the shared incrstate codec, same format as the CLI's
// .rustprobe-state.json), so an evicted or restarted session's next
// push restores hashes + findings from disk and still runs only the
// dirty closure; a corrupt, stale, or version-bumped snapshot only
// costs that one push a full round.
package sessionpool

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rustprobe"
	"rustprobe/internal/incrstate"
	"rustprobe/internal/store"
)

// ErrNoSession is returned for a diff push to a repo the pool holds no
// live session for (never pushed, evicted, or daemon restarted): a diff
// needs a base tree to apply against, so the client must re-push the
// full file map.
var ErrNoSession = errors.New("sessionpool: no live session for repo; push the full file map")

// ErrClosed is returned for pushes after Close.
var ErrClosed = errors.New("sessionpool: pool is closed")

// DefaultMaxSessions bounds the pool when Config.MaxSessions is unset.
const DefaultMaxSessions = 64

// Config parameterizes a Pool.
type Config struct {
	// MaxSessions caps live sessions; past it the least-recently-used
	// idle entry is evicted. 0 means DefaultMaxSessions.
	MaxSessions int

	// IdleTTL evicts sessions idle longer than this. 0 disables TTL
	// eviction.
	IdleTTL time.Duration

	// Store, when non-nil, persists each session's exported state after
	// every successful round and seeds new entries from it.
	Store *store.Store

	// Precise selects path-sensitive sessions (rustprobe.NewPreciseSession).
	Precise bool

	// Now is the clock (tests tighten TTL races with it); nil means
	// time.Now.
	Now func() time.Time

	// TestRoundHook, when set, is called at the start of every analysis
	// round while the entry lock is held; the returned func runs at round
	// end. Tests use it to assert same-repo serialization.
	TestRoundHook func(repo string) func()
}

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Live              int    `json:"live"`
	Pushes            uint64 `json:"pushes"`
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Restores          uint64 `json:"restores"`
	EvictionsLRU      uint64 `json:"evictions_lru"`
	EvictionsTTL      uint64 `json:"evictions_ttl"`
	FullRounds        uint64 `json:"full_rounds"`
	IncrementalRounds uint64 `json:"incremental_rounds"`
	RootsDetected     uint64 `json:"roots_detected"`
	FindingsReplayed  uint64 `json:"findings_replayed"`
	StateSaveErrors   uint64 `json:"state_save_errors"`

	// GlobalFactsReused sums, over all rounds, the per-function fact
	// extractions the global detectors skipped by reusing carried
	// caches; GraphPatchedRounds counts rounds whose call graph was
	// patched from the previous round instead of rebuilt.
	GlobalFactsReused  uint64 `json:"global_facts_reused"`
	GraphPatchedRounds uint64 `json:"graph_patched_rounds"`
}

// PushStats is the per-round stat block a push returns: the session's
// own round stats (dirty-closure size in RootsDetected, replayed
// findings in FindingsReused, ...) plus pool-level context.
type PushStats struct {
	rustprobe.UpdateStats

	// SessionHit marks a push served by an already-live session.
	SessionHit bool `json:"session_hit"`
}

// Result is one successful push: resolved findings (position-
// materialized, sorted) and the round's stats.
type Result struct {
	Findings []incrstate.Finding `json:"findings"`
	Stats    PushStats           `json:"stats"`
}

type entry struct {
	repo string

	// mu serializes analysis rounds for this repo. Held across the whole
	// round (restore, analyze, persist) — that is the single-writer
	// guarantee.
	mu           sync.Mutex
	sess         *rustprobe.Session
	src          map[string]string // last successfully pushed tree (diff base)
	restoreTried bool

	// Guarded by the pool lock, not mu:
	lastUsed time.Time
	refs     int
}

// Pool is a repo-keyed session pool. Safe for concurrent use.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool

	pushes             atomic.Uint64
	hits               atomic.Uint64
	misses             atomic.Uint64
	restores           atomic.Uint64
	evictionsLRU       atomic.Uint64
	evictionsTTL       atomic.Uint64
	fullRounds         atomic.Uint64
	incrementalRounds  atomic.Uint64
	rootsDetected      atomic.Uint64
	findingsReplayed   atomic.Uint64
	stateSaveErrors    atomic.Uint64
	globalFactsReused  atomic.Uint64
	graphPatchedRounds atomic.Uint64
}

// New builds a pool from cfg.
func New(cfg Config) *Pool {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Pool{cfg: cfg, entries: make(map[string]*entry)}
}

// SessionKey names a repo's persisted session state in the store. The
// repo name is hashed (store keys have a restricted alphabet; repo
// names don't) under a fixed domain prefix so session snapshots can
// never collide with the engine's content-addressed result entries.
func SessionKey(repo string) string {
	sum := sha256.Sum256([]byte("session\x00" + repo))
	return "sess-" + hex.EncodeToString(sum[:])
}

// Push runs one session round for repo over the full file map and
// returns the resolved findings plus round stats. Concurrent pushes to
// the same repo serialize; distinct repos run in parallel.
func (p *Pool) Push(ctx context.Context, repo string, files map[string]string) (*Result, error) {
	if repo == "" {
		return nil, errors.New("sessionpool: empty repo name")
	}
	// The session retains the submitted map as its diff base; copy so a
	// caller mutating its map can't corrupt later rounds.
	owned := make(map[string]string, len(files))
	for k, v := range files {
		owned[k] = v
	}
	return p.run(ctx, repo, func(e *entry) (map[string]string, error) {
		return owned, nil
	})
}

// PushDiff runs one round over the last successfully pushed tree with
// changed overlaid and removed deleted. Without a live session (first
// push, eviction, restart) it fails with ErrNoSession: the diff base is
// the daemon's in-memory tree, which no longer exists.
func (p *Pool) PushDiff(ctx context.Context, repo string, changed map[string]string, removed []string) (*Result, error) {
	if repo == "" {
		return nil, errors.New("sessionpool: empty repo name")
	}
	return p.run(ctx, repo, func(e *entry) (map[string]string, error) {
		if e.src == nil {
			return nil, ErrNoSession
		}
		files := make(map[string]string, len(e.src)+len(changed))
		for k, v := range e.src {
			files[k] = v
		}
		for k, v := range changed {
			files[k] = v
		}
		for _, k := range removed {
			delete(files, k)
		}
		return files, nil
	})
}

// run is the shared push core: acquire/create the entry, serialize on
// it, restore from the store if this is the entry's first round,
// analyze, persist, release.
func (p *Pool) run(ctx context.Context, repo string, mkFiles func(*entry) (map[string]string, error)) (*Result, error) {
	now := p.cfg.Now()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	e, hit := p.entries[repo]
	if !hit {
		e = &entry{repo: repo, lastUsed: now}
		if p.cfg.Precise {
			e.sess = rustprobe.NewPreciseSession()
		} else {
			e.sess = rustprobe.NewSession()
		}
		p.entries[repo] = e
		p.misses.Add(1)
	} else {
		p.hits.Add(1)
	}
	e.refs++
	e.lastUsed = now
	p.evictLocked(now)
	p.mu.Unlock()

	p.pushes.Add(1)
	res, err := p.round(ctx, e, mkFiles)

	p.mu.Lock()
	e.refs--
	e.lastUsed = p.cfg.Now()
	p.mu.Unlock()

	if res != nil {
		res.Stats.SessionHit = hit
	}
	return res, err
}

// round runs the analysis under the entry lock.
func (p *Pool) round(ctx context.Context, e *entry, mkFiles func(*entry) (map[string]string, error)) (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p.cfg.TestRoundHook != nil {
		done := p.cfg.TestRoundHook(e.repo)
		defer done()
	}
	// A push that queued behind a long round may have outlived its
	// client; don't start work for it.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// First round of this entry: seed from the persisted snapshot, if
	// any. Decode failures (corrupt payload past the store's checksum,
	// stale version) and Restore refusals just mean a full round.
	if !e.restoreTried {
		e.restoreTried = true
		if p.cfg.Store != nil {
			if payload, ok := p.cfg.Store.Get(SessionKey(e.repo)); ok {
				if st := incrstate.Decode(payload, rustprobe.StateVersion()); st != nil {
					if err := e.sess.Restore(st); err == nil {
						p.restores.Add(1)
					}
				}
			}
		}
	}

	files, err := mkFiles(e)
	if err != nil {
		return nil, err
	}
	up, err := e.sess.Analyze(files)
	if err != nil {
		return nil, err
	}
	e.src = files

	if up.Stats.Full {
		p.fullRounds.Add(1)
	} else {
		p.incrementalRounds.Add(1)
	}
	p.rootsDetected.Add(uint64(up.Stats.RootsDetected))
	p.findingsReplayed.Add(uint64(up.Stats.FindingsReused))
	p.globalFactsReused.Add(uint64(up.Stats.GlobalFactsReused))
	if up.Stats.GraphPatched {
		p.graphPatchedRounds.Add(1)
	}

	// Persist synchronously: once the push returns, a restart can
	// restore this round. An unsaveable state only degrades the next
	// epoch's first push to a full round, so it is counted, not fatal.
	if p.cfg.Store != nil {
		if st := e.sess.ExportState(); st != nil {
			if payload, err := incrstate.Encode(st); err == nil {
				if err := p.cfg.Store.Put(SessionKey(e.repo), payload); err != nil {
					p.stateSaveErrors.Add(1)
				}
			} else {
				p.stateSaveErrors.Add(1)
			}
		}
	}

	findings := make([]incrstate.Finding, 0, len(up.Findings))
	for _, f := range up.Findings {
		pos := up.Result.Fset.Position(f.Span.Start)
		findings = append(findings, incrstate.Finding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    f.Notes,
		})
	}
	return &Result{Findings: findings, Stats: PushStats{UpdateStats: up.Stats}}, nil
}

// evictLocked enforces TTL then the LRU cap. Callers hold p.mu. Entries
// with in-flight pushes (refs > 0) are never evicted — eviction would
// not abort their round anyway, and re-creating the entry concurrently
// would break same-repo serialization.
func (p *Pool) evictLocked(now time.Time) {
	if p.cfg.IdleTTL > 0 {
		for repo, e := range p.entries {
			if e.refs == 0 && now.Sub(e.lastUsed) > p.cfg.IdleTTL {
				delete(p.entries, repo)
				p.evictionsTTL.Add(1)
			}
		}
	}
	for len(p.entries) > p.cfg.MaxSessions {
		var oldest *entry
		for _, e := range p.entries {
			if e.refs > 0 {
				continue
			}
			if oldest == nil || e.lastUsed.Before(oldest.lastUsed) {
				oldest = e
			}
		}
		if oldest == nil {
			return // every excess entry is mid-push; retry on the next push
		}
		delete(p.entries, oldest.repo)
		p.evictionsLRU.Add(1)
	}
}

// Len reports the number of live sessions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	live := len(p.entries)
	p.mu.Unlock()
	return Stats{
		Live:               live,
		Pushes:             p.pushes.Load(),
		Hits:               p.hits.Load(),
		Misses:             p.misses.Load(),
		Restores:           p.restores.Load(),
		EvictionsLRU:       p.evictionsLRU.Load(),
		EvictionsTTL:       p.evictionsTTL.Load(),
		FullRounds:         p.fullRounds.Load(),
		IncrementalRounds:  p.incrementalRounds.Load(),
		RootsDetected:      p.rootsDetected.Load(),
		FindingsReplayed:   p.findingsReplayed.Load(),
		StateSaveErrors:    p.stateSaveErrors.Load(),
		GlobalFactsReused:  p.globalFactsReused.Load(),
		GraphPatchedRounds: p.graphPatchedRounds.Load(),
	}
}

// Close rejects further pushes and drops the entry table. In-flight
// rounds finish normally (their entries are simply no longer reachable);
// persisted state was already written per round, so nothing is flushed.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.entries = make(map[string]*entry)
}
