package sessionpool

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolConcurrentStress is the pool's -race gauntlet: 16 clients
// interleave pushes to a handful of repo keys (heavy same-repo
// contention plus distinct-repo parallelism) while a tiny LRU cap and a
// racing TTL clock force evictions against in-flight pushes.
//
// Three invariants:
//
//  1. Serialized same-repo rounds — at no instant do two analysis
//     rounds for one repo run concurrently (checked by a per-repo
//     in-round counter from the round hook, which fires under the
//     entry lock).
//  2. No torn Updates — every response's findings must byte-match one
//     of the per-variant full-analysis oracles; a response assembled
//     from two interleaved rounds' state would match neither. Clients
//     also mutate the returned slices afterwards, which must not
//     corrupt other clients' responses (the defensive-copy contract).
//  3. The pool survives: no deadlock (the test finishes), no lost
//     counters (pushes == successes since every push here is valid).
func TestPoolConcurrentStress(t *testing.T) {
	const (
		clients = 16
		rounds  = 12
		repos   = 5
	)

	// Two content variants per repo; each has a distinct planted-bug mix
	// so a torn merge of variant A's replayed findings with variant B's
	// fresh ones cannot accidentally equal either oracle.
	variant := func(repo, v int) map[string]string {
		util := uafSrc
		if v == 1 {
			// Body-only edit that fixes the UAF: the deref moves before
			// the drop, so variant 1's oracle has strictly fewer findings.
			util = strings.Replace(util, "drop(v);\n    unsafe { let x = *p; }", "unsafe { let x = *p; }\n    drop(v);", 1)
		}
		return map[string]string{
			fmt.Sprintf("r%d_util.rs", repo): util,
			fmt.Sprintf("r%d_lib.rs", repo):  dlockSrc,
		}
	}

	oracles := make(map[int][2]string, repos)
	for r := 0; r < repos; r++ {
		var pair [2]string
		for v := 0; v < 2; v++ {
			pair[v] = mustJSON(t, oracleFindings(t, variant(r, v)))
		}
		if pair[0] == pair[1] {
			t.Fatal("test invariant: variants must have distinguishable findings")
		}
		oracles[r] = pair
	}

	// Wall clock advanced atomically by a dedicated goroutine so TTL
	// expiry races live pushes.
	var clockNs atomic.Int64
	clockNs.Store(time.Now().UnixNano())

	inRound := make([]atomic.Int32, repos)
	var maxConcurrentDistinct atomic.Int32
	var active atomic.Int32
	p := New(Config{
		MaxSessions: 3, // < repos: constant LRU pressure
		IdleTTL:     2 * time.Millisecond,
		Now:         func() time.Time { return time.Unix(0, clockNs.Load()) },
		TestRoundHook: func(repo string) func() {
			var r int
			fmt.Sscanf(repo, "stress-%d", &r)
			if n := inRound[r].Add(1); n > 1 {
				t.Errorf("repo %s: %d rounds in flight at once", repo, n)
			}
			if a := active.Add(1); a > maxConcurrentDistinct.Load() {
				maxConcurrentDistinct.Store(a)
			}
			return func() {
				active.Add(-1)
				inRound[r].Add(-1)
			}
		},
	})

	stopClock := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stopClock:
				return
			default:
				clockNs.Add(int64(time.Millisecond))
			}
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	var pushesOK atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r := (c + i) % repos
				v := (c + i) % 2
				repo := fmt.Sprintf("stress-%d", r)
				res, err := p.Push(ctx, repo, variant(r, v))
				if err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
				got := mustJSON(t, res.Findings)
				want := oracles[r]
				if got != want[v] {
					t.Errorf("client %d round %d repo %s variant %d: torn or wrong findings\n got: %s\nwant: %s",
						c, i, repo, v, got, want[v])
					return
				}
				// Exercise the caller-owned contract: trash the response.
				for j := range res.Findings {
					res.Findings[j].Message = "mutated"
					res.Findings[j].Notes = append(res.Findings[j].Notes, "mutated")
				}
				pushesOK.Add(1)
			}
		}(c)
	}
	wg.Wait()
	close(stopClock)
	clockWG.Wait()

	st := p.Stats()
	if got, want := pushesOK.Load(), int64(clients*rounds); got != want {
		t.Fatalf("completed %d of %d pushes", got, want)
	}
	if st.Pushes != uint64(clients*rounds) {
		t.Fatalf("pool counted %d pushes, want %d", st.Pushes, clients*rounds)
	}
	if st.Live > 3 {
		t.Fatalf("pool exceeded MaxSessions: %+v", st)
	}
	if st.EvictionsLRU == 0 {
		t.Fatalf("stress never hit LRU eviction (cap 3, %d repos): %+v", repos, st)
	}
	t.Logf("stress: %+v, max concurrent distinct-repo rounds %d", st, maxConcurrentDistinct.Load())
}

// TestPoolDistinctReposRunInParallel pins the other half of the locking
// contract: two pushes to different repos must be able to overlap. A
// rendezvous in the round hook forces the overlap — if pool-level
// locking serialized distinct repos, both pushes would block in the
// hook forever (guarded by a timeout).
func TestPoolDistinctReposRunInParallel(t *testing.T) {
	barrier := make(chan struct{})
	arrived := make(chan string, 2)
	p := New(Config{
		TestRoundHook: func(repo string) func() {
			arrived <- repo
			<-barrier
			return func() {}
		},
	})
	tree := func(n string) map[string]string {
		return map[string]string{n + ".rs": "fn " + n + "() {}\n"}
	}
	var wg sync.WaitGroup
	for _, repo := range []string{"par-a", "par-b"} {
		wg.Add(1)
		go func(repo string) {
			defer wg.Done()
			if _, err := p.Push(context.Background(), repo, tree(strings.ReplaceAll(repo, "-", "_"))); err != nil {
				t.Error(err)
			}
		}(repo)
	}
	seen := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(seen) < 2 {
		select {
		case r := <-arrived:
			seen[r] = true
		case <-timeout:
			t.Fatalf("distinct repos did not reach their rounds concurrently (saw %v)", seen)
		}
	}
	close(barrier)
	wg.Wait()
}
