package visualize

import (
	"strings"
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func lowerFn(t *testing.T, src, fn string) (*mir.Body, *source.FileSet) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return body, fset
}

const guardSrc = `
struct Inner { m: i32 }
fn f(client: RwLock<Inner>) {
    match client.read().unwrap().m {
        1 => { body1(); }
        _ => { body2(); }
    };
    after();
}
`

func TestAnnotateGuardEvents(t *testing.T) {
	body, fset := lowerFn(t, guardSrc, "f")
	events := Annotate(body, fset)
	var acquire, release *Event
	for i := range events {
		switch events[i].Kind {
		case EventAcquire:
			acquire = &events[i]
		case EventRelease:
			release = &events[i]
		}
	}
	if acquire == nil || release == nil {
		t.Fatalf("missing events: %+v", events)
	}
	if acquire.Line != 4 {
		t.Errorf("acquire line = %d, want 4", acquire.Line)
	}
	// The implicit unlock is at the END of the match (line 7's closing).
	if release.Line <= acquire.Line {
		t.Errorf("release (line %d) should follow acquire (line %d): the guard lives to the end of the match", release.Line, acquire.Line)
	}
	if !strings.Contains(release.Detail, "client") {
		t.Errorf("release detail = %q", release.Detail)
	}
}

func TestCriticalSections(t *testing.T) {
	body, fset := lowerFn(t, guardSrc, "f")
	cs := CriticalSections(body, fset)
	rng, ok := cs["client"]
	if !ok {
		t.Fatalf("no critical section for client: %v", cs)
	}
	if rng[0] != 4 || rng[1] <= rng[0] {
		t.Errorf("critical section = %v, want start 4 and span the match", rng)
	}
}

func TestRenderInterleavesAnnotations(t *testing.T) {
	body, fset := lowerFn(t, guardSrc, "f")
	out := Render(body, fset)
	for _, want := range []string{"ACQUIRE", "RELEASE", "implicit unlock", "match client"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The RELEASE annotation must appear after the body1 line: the guard
	// outlives the arms.
	relIdx := strings.Index(out, "RELEASE")
	bodyIdx := strings.Index(out, "body1")
	if relIdx < bodyIdx {
		t.Errorf("RELEASE rendered before the arm body:\n%s", out)
	}
}

func TestDropEventsForOwnedValues(t *testing.T) {
	body, fset := lowerFn(t, `
fn g() {
    let v = Vec::new();
    use_it(&v);
}
`, "g")
	events := Annotate(body, fset)
	var sawDrop, sawStorageEnd bool
	for _, e := range events {
		if e.Kind == EventDrop && strings.Contains(e.Detail, "v") {
			sawDrop = true
		}
		if e.Kind == EventStorageEnd && e.Detail == "v" {
			sawStorageEnd = true
		}
	}
	if !sawDrop || !sawStorageEnd {
		t.Errorf("drop/storage events missing: %+v", events)
	}
}
