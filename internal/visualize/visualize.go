// Package visualize implements the IDE-tool direction the paper proposes
// (§7, Suggestions 6 and 7): given a function's MIR, it renders the source
// with per-line annotations of lifetime events — where lock guards are
// acquired and implicitly released (the critical-section boundary Rust
// never writes down), where owned values are dropped, and where storage
// ends. Misjudging exactly these invisible points causes most of the
// paper's §6.1 blocking bugs.
package visualize

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/mir"
	"rustprobe/internal/source"
	"rustprobe/internal/types"
)

// EventKind classifies a lifetime event.
type EventKind int

// Event kinds.
const (
	EventAcquire    EventKind = iota // lock()/read()/write() acquires
	EventRelease                     // guard drop: the implicit unlock
	EventDrop                        // owned value dropped (heap freed)
	EventStorageEnd                  // stack storage ends
)

func (k EventKind) String() string {
	switch k {
	case EventAcquire:
		return "ACQUIRE"
	case EventRelease:
		return "RELEASE"
	case EventDrop:
		return "DROP"
	default:
		return "STORAGE-END"
	}
}

// Event is one annotated lifetime event.
type Event struct {
	Kind   EventKind
	Line   int // 1-based source line
	Detail string
}

// Annotate computes the lifetime events of a body against fset.
func Annotate(body *mir.Body, fset *source.FileSet) []Event {
	var events []Event
	lineOf := func(sp source.Span) int {
		pos := fset.Position(sp.Start)
		return pos.Line
	}
	// Scope-exit events (drops, storage ends) carry the span of the whole
	// scope they close; the *end* of that span is where the event happens.
	endLineOf := func(sp source.Span) int {
		pos := fset.Position(sp.End)
		return pos.Line
	}

	// Map guard-holding locals to their lock identity (propagated through
	// moves and unwrap like the double-lock detector).
	guardOf := map[mir.LocalID]string{}
	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				if as, ok := st.(mir.Assign); ok && as.Place.IsLocal() {
					if use, ok := as.Rvalue.(mir.Use); ok {
						if pl, ok := mir.OperandPlace(use.X); ok && pl.IsLocal() {
							if id, has := guardOf[pl.Local]; has {
								if _, dup := guardOf[as.Place.Local]; !dup {
									guardOf[as.Place.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
			if c, ok := blk.Term.(mir.Call); ok && c.Dest.IsLocal() {
				switch c.Intrinsic {
				case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
					if c.RecvPath != "" {
						if _, dup := guardOf[c.Dest.Local]; !dup {
							guardOf[c.Dest.Local] = c.RecvPath
							changed = true
						}
					}
				case mir.IntrinsicUnwrap:
					if len(c.Args) > 0 {
						if pl, ok := mir.OperandPlace(c.Args[0]); ok && pl.IsLocal() {
							if id, has := guardOf[pl.Local]; has {
								if _, dup := guardOf[c.Dest.Local]; !dup {
									guardOf[c.Dest.Local] = id
									changed = true
								}
							}
						}
					}
				}
			}
		}
	}

	describe := func(l mir.LocalID) string {
		loc := body.Local(l)
		if loc.Name != "" {
			return loc.Name
		}
		return fmt.Sprintf("temporary %s", loc)
	}

	seen := map[string]bool{}
	add := func(e Event) {
		key := fmt.Sprintf("%d/%d/%s", e.Kind, e.Line, e.Detail)
		if !seen[key] {
			seen[key] = true
			events = append(events, e)
		}
	}

	for _, blk := range body.Blocks {
		for _, st := range blk.Stmts {
			if sd, ok := st.(mir.StorageDead); ok {
				l := body.Local(sd.Local)
				if l.Name == "" || strings.HasPrefix(l.Name, "static ") {
					continue // temps end constantly; only named locals are shown
				}
				add(Event{Kind: EventStorageEnd, Line: endLineOf(sd.Span), Detail: l.Name})
			}
		}
		switch term := blk.Term.(type) {
		case mir.Call:
			switch term.Intrinsic {
			case mir.IntrinsicLock, mir.IntrinsicRead, mir.IntrinsicWrite:
				mode := map[mir.Intrinsic]string{
					mir.IntrinsicLock: "lock", mir.IntrinsicRead: "read", mir.IntrinsicWrite: "write",
				}[term.Intrinsic]
				add(Event{Kind: EventAcquire, Line: lineOf(term.Span),
					Detail: fmt.Sprintf("%s(%s)", mode, term.RecvPath)})
			}
		case mir.Drop:
			if !term.Place.IsLocal() {
				continue
			}
			l := term.Place.Local
			if id, isGuard := guardOf[l]; isGuard {
				add(Event{Kind: EventRelease, Line: endLineOf(term.Span),
					Detail: fmt.Sprintf("implicit unlock of %s (guard %s)", id, describe(l))})
				continue
			}
			if types.IsOwningContainer(body.Local(l).Ty) || body.Local(l).Name != "" {
				add(Event{Kind: EventDrop, Line: endLineOf(term.Span),
					Detail: fmt.Sprintf("%s (%s)", describe(l), body.Local(l).Ty)})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Line != events[j].Line {
			return events[i].Line < events[j].Line
		}
		return events[i].Kind < events[j].Kind
	})
	return events
}

// Render prints the function's source with event annotations interleaved,
// one `// ^` comment line per event after the source line it refers to.
func Render(body *mir.Body, fset *source.FileSet) string {
	events := Annotate(body, fset)
	f := fset.FileFor(body.Span.Start)
	if f == nil {
		return ""
	}
	startLine := fset.Position(body.Span.Start).Line
	endLine := fset.Position(body.Span.End).Line

	byLine := map[int][]Event{}
	for _, e := range events {
		byLine[e.Line] = append(byLine[e.Line], e)
	}

	var b strings.Builder
	name := "?"
	if body.Func != nil {
		name = body.Func.Qualified
	}
	fmt.Fprintf(&b, "lifetime events in %s:\n", name)
	for line := startLine; line <= endLine; line++ {
		text := f.Line(line)
		fmt.Fprintf(&b, "%4d | %s\n", line, text)
		for _, e := range byLine[line] {
			fmt.Fprintf(&b, "     | %s>> %s: %s\n", strings.Repeat(" ", indentOf(text)), e.Kind, e.Detail)
		}
	}
	return b.String()
}

func indentOf(line string) int {
	n := 0
	for n < len(line) && (line[n] == ' ' || line[n] == '\t') {
		n++
	}
	return n
}

// CriticalSections summarizes, per lock, the line ranges where it is held
// (first acquire to last release seen in source order) — the visualization
// Suggestion 6 asks IDEs to surface.
func CriticalSections(body *mir.Body, fset *source.FileSet) map[string][2]int {
	events := Annotate(body, fset)
	out := map[string][2]int{}
	for _, e := range events {
		switch e.Kind {
		case EventAcquire:
			id := strings.TrimSuffix(strings.SplitN(e.Detail, "(", 2)[1], ")")
			if cur, ok := out[id]; !ok {
				out[id] = [2]int{e.Line, e.Line}
			} else if e.Line < cur[0] {
				cur[0] = e.Line
				out[id] = cur
			}
		case EventRelease:
			// Detail: "implicit unlock of ID (guard ...)"
			rest := strings.TrimPrefix(e.Detail, "implicit unlock of ")
			id := strings.SplitN(rest, " ", 2)[0]
			cur, ok := out[id]
			if !ok {
				continue
			}
			if e.Line > cur[1] {
				cur[1] = e.Line
				out[id] = cur
			}
		}
	}
	return out
}
