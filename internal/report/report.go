// Package report renders every table and figure of the paper as text from
// the study database, in the same row/column layout as published. Each
// renderer takes the data explicitly so benchmarks and tests can call them
// on fresh builds.
package report

import (
	"fmt"
	"sort"
	"strings"

	"rustprobe/internal/study"
)

// Table1 renders the studied-software table.
func Table1(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Table 1. Studied Applications and Libraries.\n")
	fmt.Fprintf(&b, "%-10s %-11s %7s %8s %6s %5s %5s %5s\n",
		"Software", "Start Time", "Stars", "Commits", "LOC", "Mem", "Blk", "NBlk")
	counts := db.Table1Counts()
	for _, row := range study.Table1 {
		c := counts[row.Project]
		fmt.Fprintf(&b, "%-10s %-11s %7d %8d %5dK %5d %5d %5d\n",
			row.Project, row.StartTime, row.Stars, row.Commits, row.KLOC, c[0], c[1], c[2])
	}
	adv := counts[study.Advisories]
	fmt.Fprintf(&b, "%-10s %-11s %7s %8s %6s %5d %5d %5d\n",
		"CVE/RustSec", "-", "-", "-", "-", adv[0], adv[1], adv[2])
	fmt.Fprintf(&b, "Total bugs: %d (%d from the two CVE databases)\n",
		len(db.Bugs), adv[0]+adv[1]+adv[2])
	return b.String()
}

// Table2 renders the memory-bug category matrix with interior-unsafe
// sub-counts in parentheses.
func Table2(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Table 2. Memory Bugs Category.\n")
	fmt.Fprintf(&b, "%-16s", "Category")
	for _, eff := range study.MemEffects {
		fmt.Fprintf(&b, " %13s", eff)
	}
	fmt.Fprintf(&b, " %6s\n", "Total")
	counts := db.Table2Counts()
	grand := 0
	for _, prop := range study.MemProps {
		fmt.Fprintf(&b, "%-16s", prop)
		rowTotal := 0
		for _, eff := range study.MemEffects {
			cell := counts[prop][eff]
			rowTotal += cell[0]
			if cell[1] > 0 {
				fmt.Fprintf(&b, " %9d (%d)", cell[0], cell[1])
			} else {
				fmt.Fprintf(&b, " %13d", cell[0])
			}
		}
		grand += rowTotal
		fmt.Fprintf(&b, " %6d\n", rowTotal)
	}
	fmt.Fprintf(&b, "%-16s", "Total")
	for _, eff := range study.MemEffects {
		colTotal := 0
		for _, prop := range study.MemProps {
			colTotal += counts[prop][eff][0]
		}
		fmt.Fprintf(&b, " %13d", colTotal)
	}
	fmt.Fprintf(&b, " %6d\n", grand)
	return b.String()
}

// Table3 renders the blocking-bug synchronization table.
func Table3(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Table 3. Types of Synchronization in Blocking Bugs.\n")
	fmt.Fprintf(&b, "%-10s", "Software")
	for _, prim := range study.SyncPrimitives {
		fmt.Fprintf(&b, " %13s", prim)
	}
	fmt.Fprintf(&b, " %6s\n", "Total")
	counts := db.Table3Counts()
	colTotals := map[study.SyncPrimitive]int{}
	for _, proj := range study.Projects {
		fmt.Fprintf(&b, "%-10s", proj)
		rowTotal := 0
		for _, prim := range study.SyncPrimitives {
			n := counts[proj][prim]
			colTotals[prim] += n
			rowTotal += n
			fmt.Fprintf(&b, " %13d", n)
		}
		fmt.Fprintf(&b, " %6d\n", rowTotal)
	}
	fmt.Fprintf(&b, "%-10s", "Total")
	grand := 0
	for _, prim := range study.SyncPrimitives {
		fmt.Fprintf(&b, " %13d", colTotals[prim])
		grand += colTotals[prim]
	}
	fmt.Fprintf(&b, " %6d\n", grand)
	return b.String()
}

// Table4 renders the non-blocking data-sharing table.
func Table4(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Table 4. How threads communicate (non-blocking bugs).\n")
	fmt.Fprintf(&b, "%-10s", "Software")
	for _, mode := range study.ShareModes {
		fmt.Fprintf(&b, " %8s", mode)
	}
	b.WriteString("\n")
	counts := db.Table4Counts()
	colTotals := map[study.ShareMode]int{}
	for _, proj := range study.Projects {
		fmt.Fprintf(&b, "%-10s", proj)
		for _, mode := range study.ShareModes {
			n := counts[proj][mode]
			colTotals[mode] += n
			fmt.Fprintf(&b, " %8d", n)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-10s", "Total")
	for _, mode := range study.ShareModes {
		fmt.Fprintf(&b, " %8d", colTotals[mode])
	}
	b.WriteString("\n")
	return b.String()
}

// Figure1 renders the Rust release-history series.
func Figure1() string {
	var b strings.Builder
	b.WriteString("Figure 1. Rust History (feature changes and KLOC per release).\n")
	fmt.Fprintf(&b, "%-10s %-8s %9s %6s  %s\n", "Version", "Date", "Changes", "KLOC", "")
	maxChanges := 0
	for _, r := range study.ReleaseHistory {
		if r.Changes > maxChanges {
			maxChanges = r.Changes
		}
	}
	for _, r := range study.ReleaseHistory {
		bar := strings.Repeat("#", r.Changes*40/maxChanges)
		fmt.Fprintf(&b, "%-10s %-8s %9d %6d  %s\n",
			r.Version, r.Date.Format("2006-01"), r.Changes, r.KLOC, bar)
	}
	fmt.Fprintf(&b, "Stable since %s: mean changes/release %.0f (vs %.0f before)\n",
		study.StableSince.Format("2006-01"),
		study.MeanChanges(study.StableSince, study.ReleaseHistory[len(study.ReleaseHistory)-1].Date.AddDate(0, 1, 0)),
		study.MeanChanges(study.ReleaseHistory[0].Date, study.StableSince))
	return b.String()
}

// Figure2 renders bug-fix dates in 3-month buckets per project.
func Figure2(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Figure 2. Time of Studied Bugs (fixes per 3-month period).\n")
	buckets := db.Figure2Buckets()
	projs := append(append([]study.Project{}, study.Projects...), study.Advisories)
	fmt.Fprintf(&b, "%-8s", "Quarter")
	for _, p := range projs {
		fmt.Fprintf(&b, " %11s", p)
	}
	fmt.Fprintf(&b, " %6s\n", "Total")
	after2016 := 0
	for _, bucket := range buckets {
		fmt.Fprintf(&b, "%d-Q%d ", bucket.Start.Year(), (int(bucket.Start.Month())-1)/3+1)
		total := 0
		for _, p := range projs {
			fmt.Fprintf(&b, " %11d", bucket.Counts[p])
			total += bucket.Counts[p]
		}
		fmt.Fprintf(&b, " %6d\n", total)
		if !bucket.Start.Before(study.StableSince) {
			after2016 += total
		}
	}
	fmt.Fprintf(&b, "Bugs fixed after Rust stabilized (2016): %d of %d\n", after2016, len(db.Bugs))
	return b.String()
}

// UnsafeUsageSection renders the §4 headline statistics.
func UnsafeUsageSection() string {
	var b strings.Builder
	b.WriteString("Section 4. Unsafe usages.\n")
	fmt.Fprintf(&b, "Applications: %d unsafe usages (%d code regions, %d functions, %d traits)\n",
		study.AppUnsafe.Total(), study.AppUnsafe.Regions, study.AppUnsafe.Fns, study.AppUnsafe.Traits)
	fmt.Fprintf(&b, "Rust std:     %d unsafe usages (%d code regions, %d functions, %d traits)\n",
		study.StdUnsafe.Total(), study.StdUnsafe.Regions, study.StdUnsafe.Fns, study.StdUnsafe.Traits)
	b.WriteString("Sampled operations:\n")
	for _, k := range sortedKeys(study.UnsafeOpPercent) {
		fmt.Fprintf(&b, "  %-22s %3d%%\n", k, study.UnsafeOpPercent[k])
	}
	b.WriteString("Sampled purposes:\n")
	for _, k := range sortedKeys(study.UnsafePurposePercent) {
		fmt.Fprintf(&b, "  %-22s %3d%%\n", k, study.UnsafePurposePercent[k])
	}
	fmt.Fprintf(&b, "Removable without compile error: %d (%d for consistency, %d as warnings; %d constructor labels in apps, %d in std)\n",
		study.RemovableUnsafe, study.RemovableForConsistency, study.RemovableAsWarning,
		study.WarningCtorsInApps, study.WarningCtorsInStd)
	return b.String()
}

// RemovalSection renders §4.2.
func RemovalSection() string {
	var b strings.Builder
	b.WriteString("Section 4.2. Unsafe removals.\n")
	fmt.Fprintf(&b, "%d removal cases from %d commits\n", study.RemovalCases, study.RemovalCommits)
	for _, k := range sortedKeys(study.RemovalPurposePercent) {
		fmt.Fprintf(&b, "  %-24s %3d%%\n", k, study.RemovalPurposePercent[k])
	}
	b.WriteString("Destinations:\n")
	for _, k := range sortedKeys(study.RemovalDestinations) {
		fmt.Fprintf(&b, "  %-26s %3d\n", k, study.RemovalDestinations[k])
	}
	return b.String()
}

// InteriorSection renders §4.3.
func InteriorSection() string {
	var b strings.Builder
	b.WriteString("Section 4.3. Interior-unsafe encapsulation audit.\n")
	fmt.Fprintf(&b, "Sampled: %d std + %d app interior-unsafe functions\n",
		study.SampledStdInterior, study.SampledAppInterior)
	fmt.Fprintf(&b, "No explicit condition check: %d%% of std samples\n", study.StdInteriorNoExplicitCheckPct)
	fmt.Fprintf(&b, "Conditions: %d%% valid memory/UTF-8, %d%% lifetime/ownership\n",
		study.StdInteriorMemConditionPct, study.StdInteriorLifetimeCondPct)
	fmt.Fprintf(&b, "Improper encapsulations: %d (%d std, %d apps; %d unchecked returns, %d unchecked parameter deref/index)\n",
		study.BadEncapsulations, study.BadEncapsStd, study.BadEncapsApps,
		study.BadEncapsNoRetCheck, study.BadEncapsParamDeref)
	return b.String()
}

// MemFixSection renders §5.2.
func MemFixSection(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Section 5.2. Memory bug fix strategies.\n")
	order := []study.MemFix{study.FixCondSkip, study.FixLifetime, study.FixOperands, study.FixOtherMem}
	for _, fix := range order {
		n := db.CountWhere(func(bug study.Bug) bool {
			return bug.Class == study.MemoryBug && bug.MemFix == fix
		})
		fmt.Fprintf(&b, "  %-26s %3d\n", fix, n)
	}
	return b.String()
}

// BlkFixSection renders §6.1's fix summary.
func BlkFixSection(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Section 6.1. Blocking bug fix strategies.\n")
	adjust := db.CountWhere(func(bug study.Bug) bool {
		return bug.Class == study.BlockingBug &&
			(bug.BlkFix == study.BlkFixAdjustSync || bug.BlkFix == study.BlkFixGuardLifetime)
	})
	guard := db.CountWhere(func(bug study.Bug) bool {
		return bug.Class == study.BlockingBug && bug.BlkFix == study.BlkFixGuardLifetime
	})
	other := db.CountWhere(func(bug study.Bug) bool {
		return bug.Class == study.BlockingBug && bug.BlkFix == study.BlkFixOtherStrategy
	})
	fmt.Fprintf(&b, "  adjust synchronization     %3d / 59\n", adjust)
	fmt.Fprintf(&b, "    ... by guard lifetime    %3d\n", guard)
	fmt.Fprintf(&b, "  other strategies           %3d\n", other)
	fmt.Fprintf(&b, "  explicit mem::drop usages in apps: %d\n", study.ExplicitDropUsages)
	return b.String()
}

// NBlkFixSection renders §6.2's fix summary.
func NBlkFixSection(db *study.Database) string {
	var b strings.Builder
	b.WriteString("Section 6.2. Non-blocking bug fix strategies.\n")
	order := []study.NBlkFix{
		study.NBlkFixAtomicity, study.NBlkFixOrdering, study.NBlkFixAvoidShare,
		study.NBlkFixLocalCopy, study.NBlkFixAppLogic,
	}
	for _, fix := range order {
		n := db.CountWhere(func(bug study.Bug) bool {
			return bug.Class == study.NonBlockingBug && bug.Share != study.ShareMessage && bug.NBlkFix == fix
		})
		fmt.Fprintf(&b, "  %-22s %3d\n", fix, n)
	}
	return b.String()
}

// DetectorSection renders §7's detector results given measured counts,
// plus the §6.2 data-race and §6.1 blocking detector rows measured on
// the patterns corpus.
func DetectorSection(uafTP, uafFP, dlTP, dlFP, raceTP, raceFP, blkTP, blkFP int) string {
	var b strings.Builder
	b.WriteString("Section 7. Detector results (paper vs measured on corpus).\n")
	fmt.Fprintf(&b, "  %-22s %8s %8s\n", "", "paper", "measured")
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "UAF bugs found", study.UAFBugsFound, uafTP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "UAF false positives", study.UAFFalsePositives, uafFP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "double-lock bugs", study.DoubleLockBugsFound, dlTP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "double-lock false pos", study.DoubleLockFalsePos, dlFP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "data races (6.2)", study.RaceBugsFound, raceTP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "data-race false pos", study.RaceFalsePos, raceFP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "blocking bugs (6.1)", study.BlockingBugsFound, blkTP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "blocking false pos", study.BlockingFalsePos, blkFP)
	return b.String()
}

// DetectorPreciseSection renders the §7 precision delta: the default
// (paper-faithful) UAF numbers next to the SafeDrop-style path-sensitive
// mode's, measured on the same evaluation corpus.
func DetectorPreciseSection(defTP, defFP, preTP, preFP int) string {
	var b strings.Builder
	b.WriteString("Section 7 precision delta (default vs precise UAF detector).\n")
	fmt.Fprintf(&b, "  %-22s %8s %8s\n", "", "default", "precise")
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "UAF bugs found", defTP, preTP)
	fmt.Fprintf(&b, "  %-22s %8d %8d\n", "UAF false positives", defFP, preFP)
	fmt.Fprintf(&b, "  expected: %d/%d default, %d/%d precise (all planted fp_ patterns refuted)\n",
		study.UAFBugsFound, study.UAFFalsePositives, study.UAFPreciseBugsFound, study.UAFPreciseFalsePositives)
	return b.String()
}

// InsightsSection renders the paper's insight/suggestion catalog with the
// rustprobe component that operationalizes each.
func InsightsSection() string {
	var b strings.Builder
	b.WriteString("Insights and suggestions (paper sections 4-6).\n")
	for _, in := range study.Insights {
		comp := in.Component
		if comp == "" {
			comp = "-"
		}
		fmt.Fprintf(&b, "  %-4s (sec %-3s) %-28s %s\n", in.ID, in.Section, comp, in.Text)
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
