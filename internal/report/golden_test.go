package report

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"rustprobe/internal/study"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current report output")

// golden renders every table, figure, and text section that is a pure
// function of the study database — the full bugstudy surface except the
// corpus-measured detector numbers, which have their own differential
// harness (internal/difftest).
func golden() string {
	db := study.Build()
	var b strings.Builder
	emit := func(title, body string) {
		fmt.Fprintf(&b, "===== %s =====\n%s\n", title, body)
	}
	emit("Table 1", Table1(db))
	emit("Table 2", Table2(db))
	emit("Table 3", Table3(db))
	emit("Table 4", Table4(db))
	emit("Figure 1", Figure1())
	emit("Figure 2", Figure2(db))
	emit("Section: unsafe usage", UnsafeUsageSection())
	emit("Section: unsafe removals", RemovalSection())
	emit("Section: interior unsafe", InteriorSection())
	emit("Section: memory fixes", MemFixSection(db))
	emit("Section: blocking fixes", BlkFixSection(db))
	emit("Section: non-blocking fixes", NBlkFixSection(db))
	emit("Section: insights", InsightsSection())
	return b.String()
}

// TestGoldenReport pins the complete report output byte-for-byte. On an
// intentional change, regenerate with:
//
//	go test ./internal/report -run TestGoldenReport -update
func TestGoldenReport(t *testing.T) {
	got := golden()
	const path = "testdata/golden.txt"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("report output diverged from golden at line %d:\n got: %q\nwant: %q\n(regenerate intentionally with -update)",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("report output length changed: got %d lines, golden %d lines (regenerate intentionally with -update)",
		len(gotLines), len(wantLines))
}
