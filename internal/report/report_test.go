package report

import (
	"strings"
	"testing"

	"rustprobe/internal/study"
)

func TestTable1Render(t *testing.T) {
	out := Table1(study.Build())
	for _, want := range []string{
		"Servo", "14574", "38096", "271K",
		"Redox", "Total bugs: 170", "(22 from the two CVE databases)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	out := Table2(study.Build())
	// The signature cells with interior-unsafe sub-counts.
	for _, want := range []string{"17 (10)", "12 (4)", "11 (4)", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
	// Row totals 1 / 23 / 31 / 15 and grand total 70.
	if !strings.Contains(out, "70") {
		t.Errorf("Table 2 missing grand total:\n%s", out)
	}
}

func TestTable3Render(t *testing.T) {
	out := Table3(study.Build())
	for _, want := range []string{"Mutex&Rwlock", "Condvar", "Ethereum", "59"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Render(t *testing.T) {
	out := Table4(study.Build())
	for _, want := range []string{"Global", "Pointer", "O. H.", "MSG"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenders(t *testing.T) {
	f1 := Figure1()
	if !strings.Contains(f1, "1.39") || !strings.Contains(f1, "Stable since 2016-01") {
		t.Errorf("Figure 1 malformed:\n%s", f1)
	}
	f2 := Figure2(study.Build())
	if !strings.Contains(f2, "145 of 170") {
		t.Errorf("Figure 2 headline missing:\n%s", f2)
	}
}

func TestSectionRenders(t *testing.T) {
	db := study.Build()
	checks := map[string][]string{
		UnsafeUsageSection():              {"4990", "3665", "1302", "23", "1581"},
		RemovalSection():                  {"130", "108", "61%"},
		InteriorSection():                 {"250", "58%", "19"},
		MemFixSection(db):                 {"30", "22"},
		BlkFixSection(db):                 {"51 / 59", "21"},
		NBlkFixSection(db):                {"20", "10"},
		DetectorSection(4, 3, 6, 0, 5, 0, 6, 0): {"paper", "measured", "4", "6", "data races (6.2)", "5", "blocking bugs (6.1)"},
	}
	for out, wants := range checks {
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("section missing %q:\n%s", w, out)
			}
		}
	}
}
