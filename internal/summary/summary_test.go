package summary

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"rustprobe/internal/callgraph"
	"rustprobe/internal/mir"
)

// graphOf builds a call graph directly from an adjacency list (edges in
// declaration order, like block order in a real body).
func graphOf(adj map[string][]string) *callgraph.Graph {
	g := &callgraph.Graph{
		Bodies:  map[string]*mir.Body{},
		Callees: map[string][]callgraph.Edge{},
		Callers: map[string][]callgraph.Edge{},
	}
	for fn := range adj {
		g.Bodies[fn] = &mir.Body{}
	}
	for fn, callees := range adj {
		for _, c := range callees {
			if _, ok := g.Bodies[c]; !ok {
				g.Bodies[c] = &mir.Body{}
			}
			e := callgraph.Edge{Caller: fn, Callee: c}
			g.Callees[fn] = append(g.Callees[fn], e)
			g.Callers[c] = append(g.Callers[c], e)
		}
	}
	return g
}

// setProblem is the canonical monotone problem: each function's summary
// is seeds[fn] unioned with every callee summary.
func setProblem(seeds map[string][]string) *Problem[map[string]bool] {
	return &Problem[map[string]bool]{
		Bottom: func(string) map[string]bool { return map[string]bool{} },
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(fn string, get Lookup[map[string]bool]) map[string]bool {
			out := map[string]bool{}
			for _, s := range seeds[fn] {
				out[s] = true
			}
			return out
		},
	}
}

func keys(m map[string]bool) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func TestComputeChain(t *testing.T) {
	g := graphOf(map[string][]string{"a": {"b"}, "b": {"c"}, "c": nil})
	p := setProblem(map[string][]string{"c": {"L"}})
	p.Transfer = unionTransfer(g, map[string][]string{"c": {"L"}})
	res := Compute(g, p)
	for _, fn := range []string{"a", "b", "c"} {
		if !res.Summaries[fn]["L"] {
			t.Errorf("%s missing L: %v", fn, res.Summaries[fn])
		}
	}
	if len(res.Truncated) != 0 || res.TruncatedSCCs != 0 {
		t.Errorf("acyclic chain truncated: %+v", res)
	}
}

// unionTransfer seeds each function and unions in all callee summaries —
// the lock-set shape both detectors use.
func unionTransfer(g *callgraph.Graph, seeds map[string][]string) func(string, Lookup[map[string]bool]) map[string]bool {
	return func(fn string, get Lookup[map[string]bool]) map[string]bool {
		out := map[string]bool{}
		for _, s := range seeds[fn] {
			out[s] = true
		}
		for _, e := range g.Callees[fn] {
			cs, ok := get(e.Callee)
			if !ok {
				continue
			}
			for k := range cs {
				out[k] = true
			}
		}
		return out
	}
}

// TestComputeFigureEightFixpoint: two cycles sharing a node (a<->b,
// b<->c) need three propagation waves for a seed in `a` to reach `c` —
// the shape the old bounded two-round pass missed.
func TestComputeFigureEightFixpoint(t *testing.T) {
	g := graphOf(map[string][]string{
		"a": {"b"},
		"b": {"a", "c"},
		"c": {"b"},
	})
	p := setProblem(nil)
	p.Transfer = unionTransfer(g, map[string][]string{"a": {"L"}})
	res := Compute(g, p)
	for _, fn := range []string{"a", "b", "c"} {
		if !res.Summaries[fn]["L"] {
			t.Errorf("%s missing L after fixpoint: %v", fn, res.Summaries[fn])
		}
	}
	if res.TruncatedSCCs != 0 {
		t.Errorf("well-behaved cycle truncated")
	}
}

// TestComputeTruncation: a transfer that grows forever hits the per-SCC
// cap and is reported, not looped.
func TestComputeTruncation(t *testing.T) {
	g := graphOf(map[string][]string{"x": {"y"}, "y": {"x"}, "z": nil})
	round := 0
	p := &Problem[map[string]bool]{
		MaxIter: 8,
		Bottom:  func(string) map[string]bool { return map[string]bool{} },
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(fn string, get Lookup[map[string]bool]) map[string]bool {
			round++
			return map[string]bool{fmt.Sprintf("v%d", round): true}
		},
	}
	res := Compute(g, p)
	if res.TruncatedSCCs != 1 {
		t.Fatalf("TruncatedSCCs = %d, want 1", res.TruncatedSCCs)
	}
	if !res.Truncated["x"] || !res.Truncated["y"] {
		t.Errorf("cycle members not marked truncated: %v", res.Truncated)
	}
	if res.Truncated["z"] {
		t.Error("acyclic function marked truncated")
	}
}

func TestComputeDeterministic(t *testing.T) {
	adj := map[string][]string{
		"a": {"b"}, "b": {"a", "c"}, "c": {"b"}, "d": {"a", "c"},
	}
	seeds := map[string][]string{"a": {"L1"}, "c": {"L2"}}
	ref := ""
	for trial := 0; trial < 10; trial++ {
		g := graphOf(adj)
		p := setProblem(nil)
		p.Transfer = unionTransfer(g, seeds)
		res := Compute(g, p)
		var lines []string
		for fn, s := range res.Summaries {
			lines = append(lines, fn+"="+keys(s))
		}
		sort.Strings(lines)
		got := strings.Join(lines, ";")
		if trial == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("trial %d differs:\n%s\nvs\n%s", trial, got, ref)
		}
	}
}

func TestTranslate(t *testing.T) {
	cases := []struct {
		calleeID, recvPath, want string
	}{
		{"self", "self.client", "self.client"},
		{"self.state", "self.inner", "self.inner.state"},
		{"self.state", "registry", "registry.state"},
		{"static GLOBAL", "", "static GLOBAL"},
		{"static GLOBAL", "anything", "static GLOBAL"},
		{"mu", "self.inner", ""},                                // callee-parameter lock: untranslatable
		{"self.state", "", ""},                                  // no receiver path
		{"(*self).state", "conn", "conn.state"},                 // deref-shaped callee id
		{"*self.state", "conn", "conn.state"},                   // prefix-deref form
		{"(*(*self).a).b", "conn", "conn.a.b"},                  // nested derefs
		{"self.state", "(*handle).inner", "handle.inner.state"}, // deref-shaped receiver
		{"(*self)", "conn", "conn"},
	}
	for _, c := range cases {
		if got := Translate(c.calleeID, c.recvPath); got != c.want {
			t.Errorf("Translate(%q, %q) = %q, want %q", c.calleeID, c.recvPath, got, c.want)
		}
	}
}

func TestTranslateRoot(t *testing.T) {
	params := []string{"self", "queue", "n"}
	args := []string{"self.inner", "self.jobs", ""}
	cases := []struct {
		calleeID, want string
	}{
		{"self", "self.inner"},
		{"self.state", "self.inner.state"},
		{"queue", "self.jobs"},
		{"queue.head", "self.jobs.head"},
		{"queue[0]", "self.jobs[0]"},
		{"queuex", ""}, // prefix match must stop at a separator
		{"n", ""},      // argument has no caller-side path
		{"local", ""},  // callee-local root: untranslatable
		{"static G", "static G"},
		{"(*queue).head", "self.jobs.head"},
	}
	for _, c := range cases {
		if got := TranslateRoot(c.calleeID, params, args); got != c.want {
			t.Errorf("TranslateRoot(%q) = %q, want %q", c.calleeID, got, c.want)
		}
	}
}

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"self.a":         "self.a",
		"(*self).a":      "self.a",
		"*self":          "self",
		"(*(*self).a).b": "self.a.b",
		"plain":          "plain",
		"":               "",
	}
	for in, want := range cases {
		if got := NormalizePath(in); got != want {
			t.Errorf("NormalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestComputeFromWarmStart: ComputeFrom must equal Compute while only
// re-running Transfer for the requested dirty closure.
func TestComputeFromWarmStart(t *testing.T) {
	adj := map[string][]string{
		"a": {"b"}, "b": {"c"}, "c": nil,
		"x": {"y"}, "y": nil,
	}
	g := graphOf(adj)
	seeds := map[string][]string{"c": {"L"}, "y": {"M"}}
	p := setProblem(seeds)
	transferred := map[string]int{}
	p.Transfer = func(fn string, get Lookup[map[string]bool]) map[string]bool {
		transferred[fn]++
		return unionTransfer(g, seeds)(fn, get)
	}
	prev := Compute(g, p)

	// "c" changed: its dirty closure is {a, b, c}; x and y are reusable.
	transferred = map[string]int{}
	seeds["c"] = []string{"L2"}
	res := ComputeFrom(g, p, prev, map[string]bool{"a": true, "b": true, "c": true})
	for _, fn := range []string{"a", "b", "c"} {
		if transferred[fn] != 1 {
			t.Errorf("%s transferred %d times, want 1", fn, transferred[fn])
		}
		if !res.Summaries[fn]["L2"] {
			t.Errorf("%s missing propagated L2: %v", fn, res.Summaries[fn])
		}
	}
	for _, fn := range []string{"x", "y"} {
		if transferred[fn] != 0 {
			t.Errorf("clean %s recomputed", fn)
		}
		if keys(res.Summaries[fn]) != keys(prev.Summaries[fn]) {
			t.Errorf("%s summary changed on reuse: %v vs %v", fn, res.Summaries[fn], prev.Summaries[fn])
		}
	}

	// The warm result must equal a cold recomputation.
	cold := Compute(g, p)
	for fn := range g.Bodies {
		if keys(res.Summaries[fn]) != keys(cold.Summaries[fn]) {
			t.Errorf("%s: warm %v != cold %v", fn, res.Summaries[fn], cold.Summaries[fn])
		}
	}
}

// TestComputeFromRecursiveSCCUnit: a recursive component reuses or
// recomputes as a unit, and nil prev degrades to Compute.
func TestComputeFromRecursiveSCCUnit(t *testing.T) {
	g := graphOf(map[string][]string{"a": {"b"}, "b": {"a"}, "z": nil})
	seeds := map[string][]string{"a": {"L"}, "z": {"Z"}}
	p := setProblem(seeds)
	p.Transfer = unionTransfer(g, seeds)
	prev := Compute(g, p)

	// Dirtying only "a" must still recompute "b": the SCC fixpoint is
	// indivisible.
	transferred := map[string]int{}
	inner := p.Transfer
	p.Transfer = func(fn string, get Lookup[map[string]bool]) map[string]bool {
		transferred[fn]++
		return inner(fn, get)
	}
	res := ComputeFrom(g, p, prev, map[string]bool{"a": true})
	if transferred["b"] == 0 {
		t.Error("SCC member b not recomputed with its dirty partner")
	}
	if transferred["z"] != 0 {
		t.Error("clean singleton z recomputed")
	}
	if !res.Summaries["b"]["L"] {
		t.Errorf("b lost the cycle seed: %v", res.Summaries["b"])
	}

	if nilPrev := ComputeFrom(g, p, nil, nil); !nilPrev.Summaries["b"]["L"] {
		t.Error("nil prev did not fall back to full Compute")
	}
}
