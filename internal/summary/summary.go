// Package summary is the shared bottom-up inter-procedural summary
// framework used by the double-lock and lock-order detectors. It walks
// the Tarjan condensation of the call graph in callee-before-caller
// order and, inside each strongly connected component, iterates a
// detector-supplied transfer function to fixpoint — so summaries
// propagate soundly through mutual recursion and arbitrarily long call
// chains, which a bounded number of post-order passes cannot guarantee.
// A per-SCC iteration cap keeps pathological (non-monotone or fuzzed)
// transfer functions from looping; components that hit the cap are
// reported via Truncated rather than silently producing partial results.
package summary

import (
	"strings"

	"rustprobe/internal/callgraph"
)

// DefaultMaxIter caps fixpoint rounds per SCC when Problem.MaxIter is
// unset. A monotone transfer over a finite lock-id universe converges in
// at most |SCC| rounds; the default leaves generous headroom while
// bounding fuzz-shaped cycles.
const DefaultMaxIter = 64

// Lookup reads the current summary of a callee. ok is false for
// functions outside the analyzed body set.
type Lookup[S any] func(callee string) (S, bool)

// Problem describes one bottom-up summary computation.
type Problem[S any] struct {
	// Bottom returns the initial (least) summary for fn.
	Bottom func(fn string) S
	// Transfer recomputes fn's summary from its body, reading callee
	// summaries through get. It must be monotone in the callee summaries
	// for the fixpoint to converge; the iteration cap backstops it.
	Transfer func(fn string, get Lookup[S]) S
	// Equal reports summary equality (the convergence check).
	Equal func(a, b S) bool
	// MaxIter caps iterations per SCC; <= 0 selects DefaultMaxIter.
	MaxIter int
}

// Result holds the computed summaries.
type Result[S any] struct {
	Summaries map[string]S
	// Truncated marks functions whose SCC hit the iteration cap before
	// converging; their summaries are a sound-so-far under-approximation.
	Truncated map[string]bool
	// TruncatedSCCs counts capped components (0 on healthy programs).
	TruncatedSCCs int
}

// Compute runs the framework over every function in the call graph.
// Iteration order is deterministic: SCCs in condensation order, members
// in sorted name order.
func Compute[S any](g *callgraph.Graph, p *Problem[S]) *Result[S] {
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	res := &Result[S]{Summaries: map[string]S{}, Truncated: map[string]bool{}}
	get := func(callee string) (S, bool) {
		s, ok := res.Summaries[callee]
		return s, ok
	}
	for _, scc := range g.SCCs() {
		for _, fn := range scc.Members {
			res.Summaries[fn] = p.Bottom(fn)
		}
		if !scc.Recursive {
			fn := scc.Members[0]
			res.Summaries[fn] = p.Transfer(fn, get)
			continue
		}
		converged := false
		for iter := 0; iter < maxIter && !converged; iter++ {
			converged = true
			for _, fn := range scc.Members {
				next := p.Transfer(fn, get)
				if !p.Equal(res.Summaries[fn], next) {
					converged = false
				}
				res.Summaries[fn] = next
			}
		}
		if !converged {
			res.TruncatedSCCs++
			for _, fn := range scc.Members {
				res.Truncated[fn] = true
			}
		}
	}
	return res
}

// ComputeFrom is Compute with a warm start for incremental re-analysis:
// functions outside recompute copy their summaries (and truncation marks)
// from prev instead of re-running Transfer; recomputed functions read the
// copied callee summaries through the usual lookup.
//
// Soundness is the caller's contract: a function may be reused only if
// its body and the summaries of all its transitive callees are unchanged
// since prev was computed. The dirty closure "changed functions plus
// their transitive callers" satisfies this — a clean function can have no
// dirty callee, or it would itself be a transitive caller of the change.
// Functions missing from prev are recomputed regardless.
func ComputeFrom[S any](g *callgraph.Graph, p *Problem[S], prev *Result[S], recompute map[string]bool) *Result[S] {
	if prev == nil {
		return Compute(g, p)
	}
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	res := &Result[S]{Summaries: map[string]S{}, Truncated: map[string]bool{}}
	get := func(callee string) (S, bool) {
		s, ok := res.Summaries[callee]
		return s, ok
	}
	for _, scc := range g.SCCs() {
		// An SCC is reusable only as a unit: a recursive component's
		// fixpoint entangles all members.
		reuse := true
		for _, fn := range scc.Members {
			if _, ok := prev.Summaries[fn]; !ok || recompute[fn] {
				reuse = false
				break
			}
		}
		if reuse {
			for _, fn := range scc.Members {
				res.Summaries[fn] = prev.Summaries[fn]
				if prev.Truncated[fn] {
					res.Truncated[fn] = true
				}
			}
			continue
		}
		for _, fn := range scc.Members {
			res.Summaries[fn] = p.Bottom(fn)
		}
		if !scc.Recursive {
			fn := scc.Members[0]
			res.Summaries[fn] = p.Transfer(fn, get)
			continue
		}
		converged := false
		for iter := 0; iter < maxIter && !converged; iter++ {
			converged = true
			for _, fn := range scc.Members {
				next := p.Transfer(fn, get)
				if !p.Equal(res.Summaries[fn], next) {
					converged = false
				}
				res.Summaries[fn] = next
			}
		}
		if !converged {
			res.TruncatedSCCs++
			for _, fn := range scc.Members {
				res.Truncated[fn] = true
			}
		}
	}
	return res
}

// Translate maps a callee-namespace resource id (a lock path such as
// "self.client") into the caller's namespace through the call's receiver
// path. Static ids are namespace-free. Returns "" when the id cannot be
// expressed in the caller ("mu" rooted at a callee parameter, or a call
// with no receiver path).
func Translate(calleeID, recvPath string) string {
	if strings.HasPrefix(calleeID, "static ") {
		return calleeID
	}
	calleeID = NormalizePath(calleeID)
	recvPath = NormalizePath(recvPath)
	if recvPath == "" {
		return ""
	}
	if calleeID == "self" {
		return recvPath
	}
	if strings.HasPrefix(calleeID, "self.") {
		return recvPath + calleeID[len("self"):]
	}
	return ""
}

// TranslateRoot generalizes Translate to arbitrary parameter roots: a
// callee-namespace path rooted at the i-th parameter name is rewritten
// onto the caller's i-th argument path. Static-rooted ids pass through
// unchanged (they name the same item in every namespace). Paths rooted at
// a callee local that is not a parameter — or at a parameter whose
// argument has no caller-side path — do not survive translation and
// return "".
func TranslateRoot(calleeID string, params, argPaths []string) string {
	if strings.HasPrefix(calleeID, "static ") {
		return calleeID
	}
	calleeID = NormalizePath(calleeID)
	for i, p := range params {
		if p == "" || i >= len(argPaths) || argPaths[i] == "" {
			continue
		}
		if calleeID == p {
			return NormalizePath(argPaths[i])
		}
		if strings.HasPrefix(calleeID, p) && (calleeID[len(p)] == '.' || calleeID[len(p)] == '[') {
			return NormalizePath(argPaths[i]) + calleeID[len(p):]
		}
	}
	return ""
}

// NormalizePath canonicalizes deref-shaped receiver paths: "(*self).f",
// "*self.f" and "self.f" all name the same lock, so derefs are stripped
// before prefix matching (a deref never changes which lock a path
// denotes, only how it is reached).
func NormalizePath(p string) string {
	for {
		switch {
		case strings.HasPrefix(p, "(*") && strings.Contains(p, ")"):
			i := strings.Index(p, ")")
			p = p[2:i] + p[i+1:]
		case strings.HasPrefix(p, "*"):
			p = p[1:]
		default:
			return p
		}
	}
}
