package engine_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"rustprobe"
	"rustprobe/internal/engine"
)

const uafSrc = `
fn f() {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
`

const doubleLockSrc = `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`

const cleanSrc = `
fn add(a: i32, b: i32) -> i32 { a + b }
`

// mixedRequests is the shared job set: corpus groups plus synthetic
// sources, with and without detector selections.
func mixedRequests() []engine.Request {
	return []engine.Request{
		{Corpus: "detector-eval"},
		{Corpus: "patterns"},
		{Corpus: "unsafe"},
		{Files: map[string]string{"uaf.rs": uafSrc}},
		{Files: map[string]string{"dl.rs": doubleLockSrc}, Detectors: []string{"double-lock"}},
		{Files: map[string]string{"clean.rs": cleanSrc}},
		{Files: map[string]string{"a.rs": uafSrc, "b.rs": doubleLockSrc}},
	}
}

// serialResponse computes the expected response for req with the plain
// serial pipeline: rustprobe.Analyze* + Result.Detect.
func serialResponse(t testing.TB, req engine.Request) []engine.Finding {
	t.Helper()
	var (
		res *rustprobe.Result
		err error
	)
	if req.Corpus != "" {
		res, err = rustprobe.AnalyzeCorpus(req.Corpus)
	} else {
		res, err = rustprobe.AnalyzeFiles(req.Files)
	}
	if err != nil {
		t.Fatalf("serial analyze: %v", err)
	}
	return engine.FindingsFrom(res.Fset, res.Detect(req.Detectors...))
}

func TestEngineMatchesSerialUnderConcurrency(t *testing.T) {
	reqs := mixedRequests()
	want := make([][]engine.Finding, len(reqs))
	for i, r := range reqs {
		want[i] = serialResponse(t, r)
	}

	eng := engine.New(engine.Config{Workers: 4, QueueDepth: 4})
	defer eng.Close()

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(reqs))
	for round := 0; round < rounds; round++ {
		for i, r := range reqs {
			wg.Add(1)
			go func(i int, r engine.Request) {
				defer wg.Done()
				resp, err := eng.Analyze(context.Background(), r)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(resp.Findings, want[i]) {
					t.Errorf("request %d: engine findings diverge from serial pipeline\n got: %+v\nwant: %+v", i, resp.Findings, want[i])
				}
			}(i, r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := eng.Stats()
	if s.JobsSubmitted != rounds*uint64(len(reqs)) {
		t.Errorf("submitted = %d, want %d", s.JobsSubmitted, rounds*len(reqs))
	}
	// Every submission is either analyzed, served from cache, or
	// coalesced onto an identical in-flight analysis (singleflight).
	if s.JobsCompleted+s.CacheHits+s.DedupHits != s.JobsSubmitted {
		t.Errorf("completed(%d) + hits(%d) + dedup(%d) != submitted(%d)",
			s.JobsCompleted, s.CacheHits, s.DedupHits, s.JobsSubmitted)
	}
	if s.JobsInFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("idle engine reports in-flight=%d queue=%d", s.JobsInFlight, s.QueueDepth)
	}
}

func TestEngineCacheHitOnResubmission(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	req := engine.Request{Files: map[string]string{"uaf.rs": uafSrc}}

	first, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	if len(first.Findings) != 1 || first.Findings[0].Kind != "use-after-free" {
		t.Fatalf("findings = %+v", first.Findings)
	}

	second, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical resubmission was not served from cache")
	}
	if !reflect.DeepEqual(first.Findings, second.Findings) {
		t.Errorf("cached findings diverge: %+v vs %+v", first.Findings, second.Findings)
	}

	// A different detector selection is a different cache key.
	third, err := eng.Analyze(context.Background(), engine.Request{
		Files: req.Files, Detectors: []string{"double-lock"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different detector selection must not hit the cache")
	}

	s := eng.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", s.CacheHits, s.CacheMisses)
	}
	if s.CacheSize != 2 {
		t.Errorf("cache size = %d, want 2", s.CacheSize)
	}
}

func TestEngineCacheLRUEviction(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, CacheCapacity: 1})
	defer eng.Close()
	a := engine.Request{Files: map[string]string{"a.rs": cleanSrc}}
	b := engine.Request{Files: map[string]string{"b.rs": cleanSrc}}

	for _, r := range []engine.Request{a, b, a} {
		resp, err := eng.Analyze(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Error("every submission should miss: capacity 1 evicts the other entry")
		}
	}
	s := eng.Stats()
	if s.CacheMisses != 3 || s.CacheHits != 0 || s.CacheSize != 1 {
		t.Errorf("stats = %+v, want 3 misses, 0 hits, size 1", s)
	}
}

// TestEnginePerDetectorStats: the /stats breakdown accumulates wall time
// under each detector that actually ran, and only those.
func TestEnginePerDetectorStats(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1, CacheCapacity: -1})
	defer eng.Close()

	if _, err := eng.Analyze(context.Background(), engine.Request{
		Files: map[string]string{"dl.rs": doubleLockSrc}, Detectors: []string{"double-lock"},
	}); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if len(s.DetectorMSTotal) != 1 {
		t.Fatalf("breakdown after a single-detector job = %+v, want only double-lock", s.DetectorMSTotal)
	}
	if _, ok := s.DetectorMSTotal["double-lock"]; !ok {
		t.Fatalf("breakdown missing double-lock: %+v", s.DetectorMSTotal)
	}

	if _, err := eng.Analyze(context.Background(), engine.Request{Corpus: "patterns"}); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	for _, name := range []string{"use-after-free", "double-lock", "race"} {
		if _, ok := s.DetectorMSTotal[name]; !ok {
			t.Errorf("full-suite job left no %s entry: %+v", name, s.DetectorMSTotal)
		}
	}
}

func TestEngineRequestValidation(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	bad := []engine.Request{
		{},
		{Files: map[string]string{"a.rs": cleanSrc}, Corpus: "patterns"},
		{Corpus: "no-such-group"},
		{Files: map[string]string{"a.rs": cleanSrc}, Detectors: []string{"no-such-detector"}},
	}
	for i, r := range bad {
		_, err := eng.Analyze(context.Background(), r)
		var reqErr *engine.RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("request %d: err = %v, want RequestError", i, err)
		}
	}
}

func TestEngineSourceError(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 1})
	defer eng.Close()
	_, err := eng.Analyze(context.Background(), engine.Request{
		Files: map[string]string{"bad.rs": "fn broken( {"},
	})
	var srcErr *engine.SourceError
	if !errors.As(err, &srcErr) {
		t.Fatalf("err = %v, want SourceError", err)
	}
	if srcErr.Diags == "" {
		t.Error("SourceError carries no diagnostics")
	}
	if s := eng.Stats(); s.JobsFailed != 1 {
		t.Errorf("failed = %d, want 1", s.JobsFailed)
	}
}

func TestEngineClose(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Analyze(context.Background(), engine.Request{Corpus: "unsafe"}); err == nil {
		t.Error("Analyze after Close should fail")
	}
}

// TestEngineCacheHitsAreIsolated: every cache hit must receive its own
// Findings slice — a caller sorting, truncating, or rewriting its
// response must not be visible to any other caller or corrupt the
// cached value for future submissions.
func TestEngineCacheHitsAreIsolated(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	req := engine.Request{Files: map[string]string{"multi.rs": `
fn use_after_free() {
    let v = Vec::new();
    let p = v.as_ptr();
    drop(v);
    unsafe { let x = *p; }
}
struct S { v: i32 }
fn relock(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`}}

	baseline, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Findings) < 2 {
		t.Fatalf("want >= 2 findings to make mutation observable, got %+v", baseline.Findings)
	}
	want := append([]engine.Finding(nil), baseline.Findings...)

	hit, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("resubmission was not a cache hit")
	}
	// Vandalize the hit's response in place.
	hit.Findings[0], hit.Findings[1] = hit.Findings[1], hit.Findings[0]
	hit.Findings[0].Message = "mutated"
	hit.Findings = hit.Findings[:1]

	again, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("third submission was not a cache hit")
	}
	if !reflect.DeepEqual(again.Findings, want) {
		t.Errorf("mutation through a cache hit leaked into the cache:\ngot  %+v\nwant %+v", again.Findings, want)
	}

	// Concurrent hits mutating their own copies must be race-free
	// (meaningful under -race) and observation-free.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := eng.Analyze(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			for j := range r.Findings {
				r.Findings[j].Message = "scribbled"
			}
		}()
	}
	wg.Wait()
	final, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Findings, want) {
		t.Errorf("concurrent mutation leaked into the cache: %+v", final.Findings)
	}
}
