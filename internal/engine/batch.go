package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"
)

// BatchRequest is one repo-shaped unit of traffic: many named files
// analyzed independently in a single call. Each file becomes its own
// engine job with its own content-hash cache key, so an unchanged file
// in a re-pushed tree is a cache (or store) hit even when its siblings
// changed, and the whole set is additionally keyed as a unit so a fully
// unchanged tree costs one lookup instead of len(Files).
type BatchRequest struct {
	Files     map[string]string `json:"files"`
	Detectors []string          `json:"detectors,omitempty"`
	// Precise selects the path-sensitive detector variants for every file
	// in the set; like Detectors it is part of both the per-file and the
	// set-level cache keys.
	Precise bool `json:"precise,omitempty"`
}

// Batch error kinds, classifying per-file failures for clients deciding
// whether to retry.
const (
	BatchErrSource   = "source"   // syntax errors: deterministic, do not retry
	BatchErrRequest  = "request"  // invalid sub-request: deterministic
	BatchErrOverload = "overload" // queue full / shutting down: retry later
	BatchErrCanceled = "canceled" // the batch's context expired mid-set
	BatchErrInternal = "internal" // analysis panicked on this file
)

// BatchEntry is one file's isolated result: either findings or an
// error, never both. One unparseable (or panicking) file costs only its
// own entry — every other file in the set still gets its result.
type BatchEntry struct {
	Findings []Finding     `json:"findings,omitempty"`
	Unsafe   UnsafeSummary `json:"unsafe"`
	CacheHit bool          `json:"cache_hit"`
	StoreHit bool          `json:"store_hit,omitempty"`

	Error       string `json:"error,omitempty"`
	ErrorKind   string `json:"error_kind,omitempty"`
	Diagnostics string `json:"diagnostics,omitempty"`
}

func (e *BatchEntry) clone() *BatchEntry {
	out := *e
	if e.Findings != nil {
		out.Findings = make([]Finding, len(e.Findings))
		copy(out.Findings, e.Findings)
		for i := range out.Findings {
			if notes := out.Findings[i].Notes; notes != nil {
				out.Findings[i].Notes = append([]string(nil), notes...)
			}
		}
	}
	return &out
}

// BatchResponse maps each submitted file name to its isolated result.
type BatchResponse struct {
	Results map[string]*BatchEntry `json:"results"`
	Files   int                    `json:"files"`
	Errors  int                    `json:"errors"`
	// SetCacheHit marks the whole response as served from the set-level
	// cache: every per-file entry came back without any per-file work.
	SetCacheHit bool          `json:"set_cache_hit"`
	Elapsed     time.Duration `json:"-"`
}

func (r *BatchResponse) clone() *BatchResponse {
	out := *r
	out.Results = make(map[string]*BatchEntry, len(r.Results))
	for name, e := range r.Results {
		out.Results[name] = e.clone()
	}
	return &out
}

// setKey content-hashes the whole batch (files plus detector selection)
// under a distinct domain from single-file request keys.
func (r BatchRequest) setKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "batch\x00")
	names := make([]string, 0, len(r.Files))
	for n := range r.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		src := r.Files[n]
		fmt.Fprintf(h, "file\x00%d\x00%s\x00%d\x00%s\x00", len(n), n, len(src), src)
	}
	ds := append([]string(nil), r.Detectors...)
	sort.Strings(ds)
	for _, d := range ds {
		fmt.Fprintf(h, "detector\x00%s\x00", d)
	}
	if r.Precise {
		fmt.Fprintf(h, "precise\x00")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// batchEntryFor maps one sub-analysis outcome onto an isolated entry.
func batchEntryFor(resp *Response, err error) *BatchEntry {
	if err == nil {
		return &BatchEntry{
			Findings: resp.Findings,
			Unsafe:   resp.Unsafe,
			CacheHit: resp.CacheHit,
			StoreHit: resp.StoreHit,
		}
	}
	e := &BatchEntry{Error: err.Error()}
	var reqErr *RequestError
	var srcErr *SourceError
	var intErr *InternalError
	switch {
	case errors.As(err, &srcErr):
		e.ErrorKind = BatchErrSource
		e.Diagnostics = srcErr.Diags
	case errors.As(err, &reqErr):
		e.ErrorKind = BatchErrRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		e.ErrorKind = BatchErrOverload
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		e.ErrorKind = BatchErrCanceled
	case errors.As(err, &intErr):
		e.ErrorKind = BatchErrInternal
	default:
		e.ErrorKind = BatchErrInternal
	}
	return e
}

// retryableBatch reports whether any entry failed transiently (overload,
// cancellation, panic). A set containing such entries is not cached: the
// same submission later deserves a fresh attempt.
func retryableBatch(entries map[string]*BatchEntry) bool {
	for _, e := range entries {
		switch e.ErrorKind {
		case BatchErrOverload, BatchErrCanceled, BatchErrInternal:
			return true
		}
	}
	return false
}

// AnalyzeBatch analyzes every file in the request independently and
// returns one response with per-file findings and per-file error
// isolation. Each file rides the normal single-file path — content-hash
// LRU + persistent store lookup, singleflight dedup against identical
// concurrent submissions (including duplicates inside one fleet's
// burst), queue backpressure, and cancellation — so the semantics under
// load are exactly the engine's. The whole set is also keyed as a unit:
// resubmitting an unchanged tree is one cache lookup.
//
// The batch fails as a whole only for malformed requests (nil/empty
// Files, unknown detector) or when ctx dies; per-file problems are
// reported in their entries.
func (e *Engine) AnalyzeBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	start := time.Now()
	if len(req.Files) == 0 {
		return nil, &RequestError{"empty batch: provide files"}
	}
	// Detector names gate the whole batch: a typo should be a 400, not
	// len(Files) identical per-file errors.
	if err := validate(Request{Files: map[string]string{"probe.rs": ""}, Detectors: req.Detectors}); err != nil {
		return nil, err
	}
	e.ctr.batchSubmitted.Add(1)

	key := req.setKey()
	if e.batchCache != nil {
		if cached, ok := e.batchCache.get(key); ok {
			e.ctr.batchSetHits.Add(1)
			cached.SetCacheHit = true
			cached.Elapsed = time.Since(start)
			return cached, nil
		}
	}

	names := make([]string, 0, len(req.Files))
	for n := range req.Files {
		names = append(names, n)
	}
	sort.Strings(names)

	// Fan out with bounded concurrency: enough to fill the pool, never
	// so much that one huge batch floods the queue past the backpressure
	// limit for everyone else.
	maxConc := e.cfg.Workers
	if maxConc > len(names) {
		maxConc = len(names)
	}
	if maxConc < 1 {
		maxConc = 1
	}
	sem := make(chan struct{}, maxConc)
	entries := make([]*BatchEntry, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		sem <- struct{}{}
		go func(i int, name string) {
			defer func() { <-sem; done <- i }()
			resp, err := e.Analyze(ctx, Request{
				Files:     map[string]string{name: req.Files[name]},
				Detectors: req.Detectors,
				Precise:   req.Precise,
			})
			entries[i] = batchEntryFor(resp, err)
		}(i, name)
	}
	for range names {
		<-done
	}
	if err := ctx.Err(); err != nil {
		// The whole batch's budget expired; a partial map would be
		// mistaken for a complete answer.
		return nil, err
	}

	resp := &BatchResponse{Results: make(map[string]*BatchEntry, len(names)), Files: len(names)}
	for i, name := range names {
		resp.Results[name] = entries[i]
		if entries[i].Error != "" {
			resp.Errors++
		}
	}
	e.ctr.batchFiles.Add(uint64(len(names)))
	e.ctr.batchFileErrors.Add(uint64(resp.Errors))
	if e.batchCache != nil && !retryableBatch(resp.Results) {
		e.batchCache.put(key, resp)
	}
	out := resp.clone()
	out.Elapsed = time.Since(start)
	return out, nil
}
