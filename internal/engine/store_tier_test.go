package engine_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"rustprobe/internal/engine"
	"rustprobe/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, engine.StoreVersion())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreTierSurvivesRestart is the fleet-scale core claim: results
// computed before a daemon restart are served from disk by the next
// process, observable as store hits.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := engine.Request{Files: map[string]string{"uaf.rs": uafSrc}}

	// First engine lifetime: compute and persist.
	e1 := engine.New(engine.Config{Workers: 2, Store: openStore(t, dir)})
	first, err := e1.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first analysis reported a cache hit")
	}
	e1.Close() // drains the write-behind put

	// Second engine lifetime (fresh LRU = simulated restart): the
	// result must come from the persistent tier without re-analysis.
	e2 := engine.New(engine.Config{Workers: 2, Store: openStore(t, dir)})
	defer e2.Close()
	second, err := e2.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || !second.StoreHit {
		t.Fatalf("restart replay: CacheHit=%v StoreHit=%v, want both true", second.CacheHit, second.StoreHit)
	}
	if !reflect.DeepEqual(first.Findings, second.Findings) {
		t.Fatalf("store round-trip changed findings:\n%v\nvs\n%v", first.Findings, second.Findings)
	}
	st := e2.Stats()
	if st.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1", st.StoreHits)
	}
	if st.JobsCompleted != 0 {
		t.Fatalf("restart replay ran %d jobs, want 0", st.JobsCompleted)
	}

	// The store hit was promoted into the LRU: a third submission is a
	// memory hit, not a disk read.
	third, err := e2.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit || third.StoreHit {
		t.Fatalf("post-promotion: CacheHit=%v StoreHit=%v, want memory hit", third.CacheHit, third.StoreHit)
	}
}

// TestStoreTierSharedByReplicas runs two engines concurrently over one
// store directory — the shared-volume replica shape — and checks both
// serve correct results and at least one benefits from the other's
// writes.
func TestStoreTierSharedByReplicas(t *testing.T) {
	dir := t.TempDir()
	a := engine.New(engine.Config{Workers: 2, Store: openStore(t, dir)})
	b := engine.New(engine.Config{Workers: 2, Store: openStore(t, dir)})

	reqs := mixedRequests()
	want := make([][]engine.Finding, len(reqs))
	for i, req := range reqs {
		want[i] = serialResponse(t, req)
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			for _, e := range []*engine.Engine{a, b} {
				wg.Add(1)
				go func(e *engine.Engine, i int, req engine.Request) {
					defer wg.Done()
					resp, err := e.Analyze(context.Background(), req)
					if err != nil {
						t.Errorf("replica analyze: %v", err)
						return
					}
					if !reflect.DeepEqual(normalize(resp.Findings), normalize(want[i])) {
						t.Errorf("replica req %d: findings differ", i)
					}
				}(e, i, req)
			}
		}
	}
	wg.Wait()
	a.Close()
	b.Close()
	sa, sb := a.Stats(), b.Stats()
	if sa.StoreQuarantined+sb.StoreQuarantined != 0 {
		t.Fatalf("replica sharing quarantined entries: %d/%d", sa.StoreQuarantined, sb.StoreQuarantined)
	}
	if sa.StorePutErrors+sb.StorePutErrors != 0 {
		t.Fatalf("replica sharing put errors: %d/%d", sa.StorePutErrors, sb.StorePutErrors)
	}
}

// TestStoreTierQuarantineIsolatesPoison poisons persisted entries in
// every way the store guards against and checks the engine transparently
// re-analyzes instead of failing or serving garbage.
func TestStoreTierQuarantineIsolatesPoison(t *testing.T) {
	dir := t.TempDir()
	req := engine.Request{Files: map[string]string{"dl.rs": doubleLockSrc}}

	e1 := engine.New(engine.Config{Workers: 1, Store: openStore(t, dir)})
	want, err := e1.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()

	// Truncate every persisted entry (torn write at the worst moment).
	var poisoned int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.Contains(path, "quarantine") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		poisoned++
		return os.WriteFile(path, data[:len(data)/3], 0o644)
	})
	if poisoned == 0 {
		t.Fatal("no persisted entries to poison; write-behind broken?")
	}

	e2 := engine.New(engine.Config{Workers: 1, Store: openStore(t, dir)})
	defer e2.Close()
	got, err := e2.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit || got.StoreHit {
		t.Fatal("poisoned entry served as a hit")
	}
	if !reflect.DeepEqual(got.Findings, want.Findings) {
		t.Fatal("re-analysis after quarantine produced different findings")
	}
	if st := e2.Stats(); st.StoreQuarantined == 0 {
		t.Fatalf("StoreQuarantined = 0 after poisoning, stats=%+v", st)
	}
}

// TestStoreTierVersionMismatchInvalidates writes entries under an old
// analyzer version and checks a current-version engine refuses them.
func TestStoreTierVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	req := engine.Request{Files: map[string]string{"clean.rs": cleanSrc}}
	key := req.Key()

	old, err := store.Open(dir, "rustprobe-0-obsolete")
	if err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(map[string]any{"findings": []any{map[string]any{
		"kind": "use-after-free", "severity": "error", "function": "ghost",
		"file": "clean.rs", "line": 1, "column": 1, "message": "stale result that must never surface",
	}}})
	if err := old.Put(key, stale); err != nil {
		t.Fatal(err)
	}

	e := engine.New(engine.Config{Workers: 1, Store: openStore(t, dir)})
	defer e.Close()
	resp, err := e.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StoreHit {
		t.Fatal("stale-version entry served")
	}
	for _, f := range resp.Findings {
		if f.Function == "ghost" {
			t.Fatal("stale findings leaked into a fresh analysis")
		}
	}
	if st := e.Stats(); st.StoreQuarantined != 1 {
		t.Fatalf("StoreQuarantined = %d, want 1", st.StoreQuarantined)
	}
}

// normalize sorts findings into a comparison-stable order matching the
// engine's output (already sorted) — it exists so reflect.DeepEqual
// treats nil and empty slices alike.
func normalize(fs []engine.Finding) []engine.Finding {
	if len(fs) == 0 {
		return nil
	}
	return fs
}
