// Package engine wraps the rustprobe pipeline in a concurrent analysis
// engine: a bounded worker pool serves independent analysis requests in
// parallel, each job overlaps its per-detector passes (every detector in
// rustprobe.Detectors() is independent given the shared detect.Context),
// and a content-hash LRU cache answers repeated submissions of unchanged
// code without re-analysis. cmd/rustprobed fronts this engine with an
// HTTP JSON API; cmd and library clients can embed it directly.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"rustprobe"
	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/source"
)

// Config sizes the engine.
type Config struct {
	// Workers is the analysis pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-job buffer; 0 means 64.
	QueueDepth int
	// CacheCapacity is the LRU entry bound; 0 means 256, negative
	// disables caching entirely (used by benchmarks).
	CacheCapacity int
}

// Request is one unit of analysis work: either an inline file set or the
// name of an embedded corpus group, plus an optional detector selection
// (empty means the full static suite, as in rustprobe.Result.Detect).
type Request struct {
	Files     map[string]string `json:"files,omitempty"`
	Corpus    string            `json:"corpus,omitempty"`
	Detectors []string          `json:"detectors,omitempty"`
}

// Finding is a fully resolved, serializable detector report (positions
// are materialized so cached responses need no FileSet).
type Finding struct {
	Kind     string   `json:"kind"`
	Severity string   `json:"severity"`
	Function string   `json:"function"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// UnsafeSummary condenses the §4 unsafe-usage scan of the analyzed code.
type UnsafeSummary struct {
	Regions int `json:"regions"`
	Fns     int `json:"fns"`
	Traits  int `json:"traits"`
	Total   int `json:"total"`
}

// Response is the result of one analysis request. Cached responses are
// shared between submissions; treat Findings as read-only.
type Response struct {
	Findings []Finding     `json:"findings"`
	Unsafe   UnsafeSummary `json:"unsafe"`
	CacheHit bool          `json:"cache_hit"`
	Elapsed  time.Duration `json:"-"`
}

// RequestError reports an invalid request (bad shape, unknown corpus
// group or detector name); servers map it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return "engine: " + e.msg }

// SourceError reports that the submitted sources failed to parse;
// servers map it to 422. Diags carries the rendered diagnostics.
type SourceError struct{ Diags string }

func (e *SourceError) Error() string { return "engine: syntax errors in submitted sources" }

// Engine is the concurrent analysis engine. Create with New, submit
// with Analyze, snapshot activity with Stats, stop with Close.
type Engine struct {
	cfg   Config
	jobs  chan *job
	cache *cache // nil when disabled
	ctr   counters

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	wg     sync.WaitGroup
}

type job struct {
	req  Request
	key  string
	done chan jobResult
}

type jobResult struct {
	resp *Response
	err  error
}

// New starts an engine with cfg's pool and cache sizes.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	e := &Engine{cfg: cfg, jobs: make(chan *job, cfg.QueueDepth)}
	switch {
	case cfg.CacheCapacity == 0:
		e.cache = newCache(256)
	case cfg.CacheCapacity > 0:
		e.cache = newCache(cfg.CacheCapacity)
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.jobs {
				e.run(j)
			}
		}()
	}
	return e
}

// Close stops accepting work, drains queued jobs, and waits for in-flight
// analyses to finish. Analyze calls after Close return an error.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

// Analyze submits a request and blocks until its response, a request
// error, or ctx cancellation. On cancellation the job may still complete
// in the background and populate the cache for the next submission.
func (e *Engine) Analyze(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	if err := validate(req); err != nil {
		return nil, err
	}
	e.ctr.submitted.Add(1)
	key := req.key()
	if e.cache != nil {
		if cached, ok := e.cache.get(key); ok {
			e.ctr.cacheHits.Add(1)
			out := *cached
			out.CacheHit = true
			out.Elapsed = time.Since(start)
			return &out, nil
		}
		e.ctr.cacheMisses.Add(1)
	}
	j := &job{req: req, key: key, done: make(chan jobResult, 1)}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, fmt.Errorf("engine: closed")
	}
	// The read lock is held across the send so Close cannot close the
	// channel mid-send; workers keep draining, so the send cannot block
	// Close indefinitely.
	select {
	case e.jobs <- j:
		e.mu.RUnlock()
	case <-ctx.Done():
		e.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case r := <-j.done:
		if r.resp == nil {
			return nil, r.err
		}
		// Copy before stamping Elapsed: the cached response is shared.
		out := *r.resp
		out.Elapsed = time.Since(start)
		return &out, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run executes one job on a worker goroutine: frontend, then the
// detector fan-out and the unsafe scan in parallel.
func (e *Engine) run(j *job) {
	e.ctr.inFlight.Add(1)
	defer e.ctr.inFlight.Add(-1)
	start := time.Now()

	res, err := analyzeFrontend(j.req)
	e.ctr.frontendNs.Add(int64(time.Since(start)))
	if err != nil {
		e.ctr.failed.Add(1)
		j.done <- jobResult{nil, err}
		return
	}

	var (
		wg       sync.WaitGroup
		findings []rustprobe.Finding
		scan     UnsafeSummary
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		t := time.Now()
		var times map[string]time.Duration
		findings, times = res.DetectParallelTimed(j.req.Detectors...)
		e.ctr.detectNs.Add(int64(time.Since(t)))
		e.ctr.addDetectorTimes(times)
	}()
	go func() {
		defer wg.Done()
		t := time.Now()
		rep := res.ScanUnsafe()
		scan = UnsafeSummary{Regions: rep.Regions, Fns: rep.Fns, Traits: rep.Traits, Total: rep.TotalUsages()}
		e.ctr.scanNs.Add(int64(time.Since(t)))
	}()
	wg.Wait()

	resp := &Response{Findings: FindingsFrom(res.Fset, findings), Unsafe: scan}
	if e.cache != nil {
		e.cache.put(j.key, resp)
	}
	e.ctr.completed.Add(1)
	e.ctr.analyzeNs.Add(int64(time.Since(start)))
	j.done <- jobResult{resp, nil}
}

func analyzeFrontend(req Request) (*rustprobe.Result, error) {
	if req.Corpus != "" {
		res, err := rustprobe.AnalyzeCorpus(req.Corpus)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		return res, nil
	}
	res, err := rustprobe.AnalyzeFiles(req.Files)
	if err != nil {
		if res != nil && res.Diags.HasErrors() {
			return nil, &SourceError{Diags: res.Diags.String()}
		}
		return nil, fmt.Errorf("engine: %w", err)
	}
	return res, nil
}

func validate(req Request) error {
	if len(req.Files) == 0 && req.Corpus == "" {
		return &RequestError{"empty request: provide files or a corpus group"}
	}
	if len(req.Files) > 0 && req.Corpus != "" {
		return &RequestError{"files and corpus are mutually exclusive"}
	}
	if req.Corpus != "" {
		switch corpus.Group(req.Corpus) {
		case corpus.GroupDetectorEval, corpus.GroupPatterns, corpus.GroupUnsafe, corpus.GroupApps, corpus.GroupAll:
		default:
			return &RequestError{fmt.Sprintf("unknown corpus group %q", req.Corpus)}
		}
	}
	known := map[string]bool{}
	for _, n := range rustprobe.DetectorNames() {
		known[n] = true
	}
	for _, n := range req.Detectors {
		if !known[n] {
			return &RequestError{fmt.Sprintf("unknown detector %q", n)}
		}
	}
	return nil
}

// key content-hashes the request: SHA-256 over the sorted filename+source
// pairs (length-prefixed so boundaries cannot collide), the corpus group,
// and the sorted detector selection.
func (r Request) key() string {
	h := sha256.New()
	fmt.Fprintf(h, "corpus\x00%s\x00", r.Corpus)
	names := make([]string, 0, len(r.Files))
	for n := range r.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		src := r.Files[n]
		fmt.Fprintf(h, "file\x00%d\x00%s\x00%d\x00%s\x00", len(n), n, len(src), src)
	}
	ds := append([]string(nil), r.Detectors...)
	sort.Strings(ds)
	for _, d := range ds {
		fmt.Fprintf(h, "detector\x00%s\x00", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FindingsFrom resolves detector findings against fset into the
// serializable engine shape.
func FindingsFrom(fset *source.FileSet, fs []detect.Finding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		pos := fset.Position(f.Span.Start)
		out = append(out, Finding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    f.Notes,
		})
	}
	return out
}
