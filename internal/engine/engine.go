// Package engine wraps the rustprobe pipeline in a concurrent analysis
// engine: a bounded worker pool serves independent analysis requests in
// parallel, each job overlaps its per-detector passes (every detector in
// rustprobe.Detectors() is independent given the shared detect.Context),
// and a content-hash LRU cache answers repeated submissions of unchanged
// code without re-analysis. cmd/rustprobed fronts this engine with an
// HTTP JSON API; cmd and library clients can embed it directly.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rustprobe"
	"rustprobe/internal/corpus"
	"rustprobe/internal/detect"
	"rustprobe/internal/source"
	"rustprobe/internal/store"
)

// StoreVersion derives the persistent result-store entry version from
// the analyzer release and the detector registry: a new analyzer version
// or any detector-set change produces a new version string, so entries
// written by an older build self-invalidate (quarantine on read) instead
// of serving stale findings.
func StoreVersion() string {
	h := sha256.New()
	fmt.Fprintf(h, "analyzer\x00%s\x00", rustprobe.AnalyzerVersion)
	for _, n := range rustprobe.DetectorNames() {
		fmt.Fprintf(h, "detector\x00%s\x00", n)
	}
	return "rustprobe-" + rustprobe.AnalyzerVersion + "-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Config sizes the engine.
type Config struct {
	// Workers is the analysis pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-job buffer; 0 means 64.
	QueueDepth int
	// CacheCapacity is the LRU entry bound; 0 means 256, negative
	// disables caching entirely (used by benchmarks).
	CacheCapacity int
	// QueueReject makes Analyze fail fast with ErrQueueFull when the
	// pending-job queue is saturated, instead of blocking for a slot.
	// Servers enable it to convert saturation into 503 backpressure.
	QueueReject bool
	// Store, when non-nil, is the persistent content-addressed result
	// tier under the in-memory LRU: read-through on an LRU miss,
	// write-behind on completion. It survives restarts and may be shared
	// by several engines (replicas on one volume). Open it with
	// store.Open(dir, StoreVersion()).
	Store *store.Store
	// TestDetectHook, when non-nil, runs on the worker goroutine after
	// the frontend and before the detector fan-out. Tests use it to
	// inject panics and stalls into a job; production never sets it.
	TestDetectHook func(ctx context.Context, req Request)
}

// Request is one unit of analysis work: either an inline file set or the
// name of an embedded corpus group, plus an optional detector selection
// (empty means the full static suite, as in rustprobe.Result.Detect).
type Request struct {
	Files     map[string]string `json:"files,omitempty"`
	Corpus    string            `json:"corpus,omitempty"`
	Detectors []string          `json:"detectors,omitempty"`
	// Precise selects the path-sensitive (dropflow-refuting) variants of
	// the memory detectors. It is part of the cache key: default and
	// precise results for the same sources are distinct entries.
	Precise bool `json:"precise,omitempty"`
}

// Finding is a fully resolved, serializable detector report (positions
// are materialized so cached responses need no FileSet).
type Finding struct {
	Kind     string   `json:"kind"`
	Severity string   `json:"severity"`
	Function string   `json:"function"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Notes    []string `json:"notes,omitempty"`
}

// UnsafeSummary condenses the §4 unsafe-usage scan of the analyzed code.
type UnsafeSummary struct {
	Regions int `json:"regions"`
	Fns     int `json:"fns"`
	Traits  int `json:"traits"`
	Total   int `json:"total"`
}

// Response is the result of one analysis request. Every caller gets its
// own deep copy (see clone), so responses are safe to mutate.
type Response struct {
	Findings []Finding     `json:"findings"`
	Unsafe   UnsafeSummary `json:"unsafe"`
	CacheHit bool          `json:"cache_hit"`
	// StoreHit marks a CacheHit that was served from the persistent
	// store tier (disk) rather than the in-memory LRU — e.g. the first
	// resubmission after a daemon restart.
	StoreHit bool          `json:"store_hit,omitempty"`
	Elapsed  time.Duration `json:"-"`
}

// clone deep-copies the response: a fresh Findings slice and fresh Notes
// backing arrays, so a caller sorting, truncating, or appending to its
// response cannot race or corrupt another caller's view of the shared
// cached/singleflighted value.
func (r *Response) clone() *Response {
	out := *r
	if r.Findings != nil {
		out.Findings = make([]Finding, len(r.Findings))
		copy(out.Findings, r.Findings)
		for i := range out.Findings {
			if notes := out.Findings[i].Notes; notes != nil {
				out.Findings[i].Notes = append([]string(nil), notes...)
			}
		}
	}
	return &out
}

// RequestError reports an invalid request (bad shape, unknown corpus
// group or detector name); servers map it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return "engine: " + e.msg }

// SourceError reports that the submitted sources failed to parse;
// servers map it to 422. Diags carries the rendered diagnostics.
type SourceError struct{ Diags string }

func (e *SourceError) Error() string { return "engine: syntax errors in submitted sources" }

// ErrQueueFull reports that the pending-job queue was saturated and the
// engine was configured to reject rather than block (Config.QueueReject);
// servers map it to 503 with a Retry-After hint.
var ErrQueueFull = errors.New("engine: analysis queue is full")

// ErrClosed reports a submission after Close; servers map it to 503.
var ErrClosed = errors.New("engine: closed")

// InternalError reports that an analysis pass panicked. The panic was
// recovered on the worker, the pool stays at full strength, and only the
// offending request fails; servers map it to 500 and log the stack.
type InternalError struct {
	Panic string // rendered recover() value
	Stack string // stack of the panicking goroutine
}

func (e *InternalError) Error() string {
	return "engine: internal error: analysis panicked: " + e.Panic
}

// Engine is the concurrent analysis engine. Create with New, submit
// with Analyze, snapshot activity with Stats, stop with Close.
type Engine struct {
	cfg        Config
	jobs       chan *job
	cache      *lru[*Response]      // nil when disabled
	batchCache *lru[*BatchResponse] // whole-set batch results; nil when disabled
	ctr        counters
	storeWG    sync.WaitGroup // in-flight write-behind store puts

	flightMu sync.Mutex // guards flights
	flights  map[string]*flight

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	wg     sync.WaitGroup
}

// job is one queued unit of work. Its ctx is the owning flight's
// context: cancelled once every waiter has given up, which lets a
// worker skip (or stop fanning out) work nobody is waiting for.
type job struct {
	req    Request
	key    string
	ctx    context.Context
	flight *flight
}

// New starts an engine with cfg's pool and cache sizes.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	e := &Engine{cfg: cfg, jobs: make(chan *job, cfg.QueueDepth), flights: make(map[string]*flight)}
	cacheCap := cfg.CacheCapacity
	if cacheCap == 0 {
		cacheCap = 256
	}
	if cacheCap > 0 {
		e.cache = newLRU(cacheCap, (*Response).clone)
		// Whole-set batch results are assembled from per-file entries,
		// so a small set-level cache suffices to make an unchanged-repo
		// resubmission O(1) instead of O(files).
		batchCap := cacheCap / 4
		if batchCap < 16 {
			batchCap = 16
		}
		e.batchCache = newLRU(batchCap, (*BatchResponse).clone)
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.jobs {
				e.run(j)
			}
		}()
	}
	return e
}

// Close shuts the engine down reject-then-drain, deterministically:
// first new submissions start failing fast with ErrClosed, then the
// workers drain every already-queued job to completion (a client waiting
// on a queued job gets its real response, not an error), and finally
// Close returns once the pool is idle. Calling Close twice is a no-op.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
	// Flush write-behind puts so a restart (or a replica) sees every
	// result this engine completed.
	e.storeWG.Wait()
}

// Analyze submits a request and blocks until its response, a request
// error, or ctx cancellation. Identical concurrent submissions are
// singleflighted on the content-hash key: one analysis runs and every
// waiter receives its own deep copy of the result. The underlying job
// is cancelled only when the last waiter gives up, so a cancelled
// client frees its worker instead of burning it to completion. With
// Config.QueueReject set, a saturated queue fails fast with ErrQueueFull
// instead of blocking.
func (e *Engine) Analyze(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	if err := validate(req); err != nil {
		return nil, err
	}
	e.ctr.submitted.Add(1)
	key := req.Key()
	if e.cache != nil {
		if cached, ok := e.cache.get(key); ok {
			e.ctr.cacheHits.Add(1)
			cached.CacheHit = true
			cached.Elapsed = time.Since(start)
			return cached, nil
		}
		e.ctr.cacheMisses.Add(1)
	}
	// Read-through to the persistent tier: a result computed before the
	// last restart (or by another replica sharing the store) is served
	// from disk and promoted into the LRU.
	if hit, ok := e.storeGet(key); ok {
		out := hit.clone()
		out.CacheHit = true
		out.StoreHit = true
		out.Elapsed = time.Since(start)
		return out, nil
	}

	f, leader := e.joinFlight(key)
	if !leader {
		// An identical request is already in flight: wait for its
		// result instead of analyzing the same content again.
		e.ctr.dedupHits.Add(1)
		return e.await(ctx, f, start)
	}

	j := &job{req: req, key: key, ctx: f.ctx, flight: f}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		e.finishFlight(f, key, nil, ErrClosed)
		return e.await(ctx, f, start)
	}
	// The read lock is held across the send so Close cannot close the
	// channel mid-send; workers keep draining, so the send cannot block
	// Close indefinitely.
	if e.cfg.QueueReject {
		select {
		case e.jobs <- j:
			e.mu.RUnlock()
		default:
			e.mu.RUnlock()
			e.ctr.queueRejected.Add(1)
			e.finishFlight(f, key, nil, ErrQueueFull)
			return e.await(ctx, f, start)
		}
	} else {
		select {
		case e.jobs <- j:
			e.mu.RUnlock()
		case <-ctx.Done():
			e.mu.RUnlock()
			e.ctr.canceled.Add(1)
			e.finishFlight(f, key, nil, ctx.Err())
			return e.await(ctx, f, start)
		}
	}
	return e.await(ctx, f, start)
}

// run executes one job on a worker goroutine: frontend, then the
// detector fan-out and the unsafe scan in parallel. Every exit path —
// including a panic anywhere in the pipeline — finishes the job's
// flight exactly once, so clients never block on a lost worker and the
// pool never shrinks.
func (e *Engine) run(j *job) {
	e.ctr.inFlight.Add(1)
	defer e.ctr.inFlight.Add(-1)
	start := time.Now()

	finished := false
	finish := func(resp *Response, err error) {
		finished = true
		e.finishFlight(j.flight, j.key, resp, err)
	}
	defer func() {
		if v := recover(); v != nil {
			e.ctr.panics.Add(1)
			e.ctr.failed.Add(1)
			if !finished {
				finish(nil, &InternalError{Panic: fmt.Sprint(v), Stack: string(debug.Stack())})
			}
		}
	}()

	if err := j.ctx.Err(); err != nil {
		// Every waiter gave up while the job sat in the queue: skip
		// the work entirely and free the worker for live requests.
		e.ctr.canceled.Add(1)
		finish(nil, err)
		return
	}

	res, err := analyzeFrontend(j.req)
	e.ctr.frontendNs.Add(int64(time.Since(start)))
	if err != nil {
		e.ctr.failed.Add(1)
		finish(nil, err)
		return
	}

	if hook := e.cfg.TestDetectHook; hook != nil {
		hook(j.ctx, j.req)
	}

	// The §4 unsafe scan overlaps the detector fan-out. Its recover
	// keeps a scanner panic on this side goroutine from killing the
	// whole process instead of just this job.
	var (
		scan      UnsafeSummary
		scanPanic *InternalError
		scanDone  = make(chan struct{})
	)
	go func() {
		defer close(scanDone)
		defer func() {
			if v := recover(); v != nil {
				scanPanic = &InternalError{Panic: fmt.Sprint(v), Stack: string(debug.Stack())}
			}
		}()
		t := time.Now()
		rep := res.ScanUnsafe()
		scan = UnsafeSummary{Regions: rep.Regions, Fns: rep.Fns, Traits: rep.Traits, Total: rep.TotalUsages()}
		e.ctr.scanNs.Add(int64(time.Since(t)))
	}()
	t := time.Now()
	findings, times, derr := res.DetectParallelTimedCtx(j.ctx, j.req.Detectors...)
	e.ctr.detectNs.Add(int64(time.Since(t)))
	e.ctr.addDetectorTimes(times)
	<-scanDone

	switch {
	case scanPanic != nil:
		e.ctr.panics.Add(1)
		e.ctr.failed.Add(1)
		finish(nil, scanPanic)
		return
	case derr != nil:
		var pe *rustprobe.PanicError
		if errors.As(derr, &pe) {
			e.ctr.panics.Add(1)
			e.ctr.failed.Add(1)
			finish(nil, &InternalError{
				Panic: fmt.Sprintf("detector %s: %v", pe.Detector, pe.Value),
				Stack: string(pe.Stack),
			})
			return
		}
		// Cancelled mid-job: the fan-out stopped early, nobody is
		// waiting for the result.
		e.ctr.canceled.Add(1)
		finish(nil, derr)
		return
	}

	resp := &Response{Findings: FindingsFrom(res.Fset, findings), Unsafe: scan}
	if e.cache != nil {
		e.cache.put(j.key, resp)
	}
	e.storePut(j.key, resp)
	e.ctr.completed.Add(1)
	e.ctr.analyzeNs.Add(int64(time.Since(start)))
	finish(resp, nil)
}

// storeGet consults the persistent tier (read-through). A hit is
// promoted into the LRU so repeat traffic stays in memory.
func (e *Engine) storeGet(key string) (*Response, bool) {
	if e.cfg.Store == nil {
		return nil, false
	}
	payload, ok := e.cfg.Store.Get(key)
	if !ok {
		return nil, false
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		// The entry passed its checksum but no longer decodes — a
		// same-version engine with a different Response shape wrote it.
		// Treat as a miss; the fresh result overwrites it.
		return nil, false
	}
	if e.cache != nil {
		e.cache.put(key, &resp)
	}
	return &resp, true
}

// storePut persists a completed response write-behind: the waiter's
// reply never blocks on disk, and Close drains the in-flight writes.
func (e *Engine) storePut(key string, resp *Response) {
	if e.cfg.Store == nil {
		return
	}
	e.storeWG.Add(1)
	go func() {
		defer e.storeWG.Done()
		payload, err := json.Marshal(resp)
		if err != nil {
			return
		}
		e.cfg.Store.Put(key, payload) // put failures are counted by the store
	}()
}

func analyzeFrontend(req Request) (*rustprobe.Result, error) {
	if req.Corpus != "" {
		res, err := rustprobe.AnalyzeCorpus(req.Corpus)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		res.Precise = req.Precise
		return res, nil
	}
	res, err := rustprobe.AnalyzeFiles(req.Files)
	if err != nil {
		if res != nil && res.Diags.HasErrors() {
			return nil, &SourceError{Diags: res.Diags.String()}
		}
		return nil, fmt.Errorf("engine: %w", err)
	}
	res.Precise = req.Precise
	return res, nil
}

func validate(req Request) error {
	if len(req.Files) == 0 && req.Corpus == "" {
		return &RequestError{"empty request: provide files or a corpus group"}
	}
	if len(req.Files) > 0 && req.Corpus != "" {
		return &RequestError{"files and corpus are mutually exclusive"}
	}
	if req.Corpus != "" {
		switch corpus.Group(req.Corpus) {
		case corpus.GroupDetectorEval, corpus.GroupPatterns, corpus.GroupUnsafe, corpus.GroupApps, corpus.GroupAll:
		default:
			return &RequestError{fmt.Sprintf("unknown corpus group %q", req.Corpus)}
		}
	}
	known := map[string]bool{}
	for _, n := range rustprobe.DetectorNames() {
		known[n] = true
	}
	for _, n := range req.Detectors {
		if !known[n] {
			return &RequestError{fmt.Sprintf("unknown detector %q", n)}
		}
	}
	return nil
}

// Key content-hashes the request: SHA-256 over the sorted filename+source
// pairs (length-prefixed so boundaries cannot collide), the corpus group,
// and the sorted detector selection. It is the cache key at both tiers
// (LRU and persistent store), exported so tools can address stored
// entries for a known input.
func (r Request) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "corpus\x00%s\x00", r.Corpus)
	names := make([]string, 0, len(r.Files))
	for n := range r.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		src := r.Files[n]
		fmt.Fprintf(h, "file\x00%d\x00%s\x00%d\x00%s\x00", len(n), n, len(src), src)
	}
	ds := append([]string(nil), r.Detectors...)
	sort.Strings(ds)
	for _, d := range ds {
		fmt.Fprintf(h, "detector\x00%s\x00", d)
	}
	if r.Precise {
		fmt.Fprintf(h, "precise\x00")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FindingsFrom resolves detector findings against fset into the
// serializable engine shape.
func FindingsFrom(fset *source.FileSet, fs []detect.Finding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		pos := fset.Position(f.Span.Start)
		out = append(out, Finding{
			Kind:     string(f.Kind),
			Severity: f.Severity.String(),
			Function: f.Function,
			File:     pos.File,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  f.Message,
			Notes:    f.Notes,
		})
	}
	return out
}
