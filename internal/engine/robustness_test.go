package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rustprobe/internal/engine"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// uniqueReq builds a request whose content (and therefore cache /
// singleflight key) is unique per (tag, i).
func uniqueReq(tag string, i int) engine.Request {
	return engine.Request{Files: map[string]string{
		tag + ".rs": fmt.Sprintf("// %s %d\nfn f() { let x = %d; }\n", tag, i, i),
	}}
}

// TestEnginePanicIsolation: a panicking analysis pass must cost only its
// own request — the pool stays at configured size, the client gets a
// typed InternalError, and Stats counts the panic. More panics than
// workers proves no worker is ever lost.
func TestEnginePanicIsolation(t *testing.T) {
	eng := engine.New(engine.Config{
		Workers:       2,
		CacheCapacity: -1,
		TestDetectHook: func(_ context.Context, req engine.Request) {
			if _, ok := req.Files["panic.rs"]; ok {
				panic("injected detector panic")
			}
		},
	})
	defer eng.Close()

	const panics = 8 // 4x the pool size
	for i := 0; i < panics; i++ {
		_, err := eng.Analyze(context.Background(), uniqueReq("panic", i))
		var intErr *engine.InternalError
		if !errors.As(err, &intErr) {
			t.Fatalf("panic request %d: err = %v, want InternalError", i, err)
		}
		if intErr.Panic == "" || intErr.Stack == "" {
			t.Fatalf("InternalError missing panic value or stack: %+v", intErr)
		}
	}

	// The pool must still have both workers: more concurrent normal
	// jobs than one worker could serve before the test deadline hang.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.Analyze(context.Background(), uniqueReq("ok", i)); err != nil {
				t.Errorf("post-panic request %d failed: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	s := eng.Stats()
	if s.Panics != panics {
		t.Errorf("Panics = %d, want %d", s.Panics, panics)
	}
	if s.JobsFailed != panics {
		t.Errorf("JobsFailed = %d, want %d", s.JobsFailed, panics)
	}
	if s.JobsCompleted != 4 {
		t.Errorf("JobsCompleted = %d, want 4", s.JobsCompleted)
	}
	if s.JobsInFlight != 0 {
		t.Errorf("JobsInFlight = %d after drain", s.JobsInFlight)
	}
}

// TestEngineQueueFullFastFail: with QueueReject, a saturated queue must
// return ErrQueueFull immediately instead of blocking the caller.
func TestEngineQueueFullFastFail(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	eng := engine.New(engine.Config{
		Workers:       1,
		QueueDepth:    1,
		QueueReject:   true,
		CacheCapacity: -1,
		TestDetectHook: func(_ context.Context, req engine.Request) {
			if _, ok := req.Files["slow.rs"]; ok {
				<-gate
			}
		},
	})
	defer eng.Close()
	defer release() // a waitFor failure must not deadlock the deferred Close

	// Occupy the single worker first, THEN fill the single queue slot:
	// submitting both at once races the worker's queue pop, and the
	// second request could be rejected while the first is still queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.Analyze(context.Background(), uniqueReq("slow", i)); err != nil {
				t.Errorf("blocked request %d failed: %v", i, err)
			}
		}(i)
		if i == 0 {
			waitFor(t, "worker busy", func() bool { return eng.Stats().JobsInFlight == 1 })
		}
	}
	waitFor(t, "queue full", func() bool { return eng.Stats().QueueDepth == 1 })

	start := time.Now()
	_, err := eng.Analyze(context.Background(), uniqueReq("rejected", 0))
	elapsed := time.Since(start)
	if !errors.Is(err, engine.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("queue-full rejection took %s, want fast fail", elapsed)
	}
	if s := eng.Stats(); s.QueueRejected != 1 {
		t.Errorf("QueueRejected = %d, want 1", s.QueueRejected)
	}

	release()
	wg.Wait()
}

// TestEngineSingleflight: N concurrent identical submissions run exactly
// one analysis; every waiter gets its own deep-copied response.
func TestEngineSingleflight(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	eng := engine.New(engine.Config{
		Workers:        4,
		TestDetectHook: func(context.Context, engine.Request) { <-gate },
	})
	defer eng.Close()
	defer release()

	req := engine.Request{Files: map[string]string{"uaf.rs": uafSrc}}
	const clients = 16
	resps := make([]*engine.Response, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := eng.Analyze(context.Background(), req)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			resps[i] = resp
		}(i)
	}
	// Release the one real analysis only once all 15 followers have
	// coalesced onto it, so the count below is deterministic.
	waitFor(t, "15 dedup hits", func() bool { return eng.Stats().DedupHits == clients-1 })
	release()
	wg.Wait()

	s := eng.Stats()
	if s.JobsCompleted != 1 {
		t.Errorf("JobsCompleted = %d, want exactly 1 analysis for %d identical requests", s.JobsCompleted, clients)
	}
	if s.DedupHits != clients-1 {
		t.Errorf("DedupHits = %d, want %d", s.DedupHits, clients-1)
	}
	for i := 1; i < clients; i++ {
		if !reflect.DeepEqual(resps[i].Findings, resps[0].Findings) {
			t.Fatalf("client %d findings diverge: %+v vs %+v", i, resps[i].Findings, resps[0].Findings)
		}
	}
	// Deep-copy isolation across waiters, down to the Notes backing
	// arrays.
	if len(resps[0].Findings) == 0 || len(resps[0].Findings[0].Notes) == 0 {
		t.Fatal("test needs a finding with notes")
	}
	resps[0].Findings[0].Notes[0] = "vandalized"
	resps[0].Findings[0].Message = "vandalized"
	if resps[1].Findings[0].Notes[0] == "vandalized" || resps[1].Findings[0].Message == "vandalized" {
		t.Error("singleflight waiters share response backing arrays")
	}
}

// TestEngineCancellationFreesWorker: a timed-out client must cancel its
// job — the worker observes ctx.Done, skips the detector fan-out, and is
// free for the next request instead of burning to completion.
func TestEngineCancellationFreesWorker(t *testing.T) {
	cancelled := make(chan struct{}, 1)
	eng := engine.New(engine.Config{
		Workers:       1,
		CacheCapacity: -1,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			if _, ok := req.Files["slow.rs"]; !ok {
				return
			}
			<-ctx.Done() // stall until the client gives up
			cancelled <- struct{}{}
		},
	})
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.Analyze(ctx, uniqueReq("slow", 0))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled Analyze returned after %s", elapsed)
	}
	select {
	case <-cancelled:
		// the stalled job really observed the cancellation
	case <-time.After(10 * time.Second):
		t.Fatal("job never observed ctx cancellation")
	}

	// The (single) worker is free again: a normal request completes.
	if _, err := eng.Analyze(context.Background(), uniqueReq("ok", 0)); err != nil {
		t.Fatalf("post-cancel request failed: %v", err)
	}
	waitFor(t, "canceled counter", func() bool { return eng.Stats().JobsCanceled == 1 })
	if s := eng.Stats(); s.JobsCompleted != 1 {
		t.Errorf("JobsCompleted = %d, want 1 (the cancelled job must not complete)", s.JobsCompleted)
	}
}

// TestEngineCancelledWhileQueued: a job whose only waiter gives up while
// it is still in the queue is skipped entirely by the worker.
func TestEngineCancelledWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	eng := engine.New(engine.Config{
		Workers:       1,
		QueueDepth:    4,
		CacheCapacity: -1,
		TestDetectHook: func(_ context.Context, req engine.Request) {
			if _, ok := req.Files["slow.rs"]; ok {
				<-gate
			}
		},
	})
	defer eng.Close()
	defer release()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := eng.Analyze(context.Background(), uniqueReq("slow", 0)); err != nil {
			t.Errorf("slow request failed: %v", err)
		}
	}()
	waitFor(t, "worker busy", func() bool { return eng.Stats().JobsInFlight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := eng.Analyze(ctx, uniqueReq("queued", 0))
		errc <- err
	}()
	waitFor(t, "job queued", func() bool { return eng.Stats().QueueDepth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued client err = %v, want Canceled", err)
	}

	release()
	wg.Wait()
	waitFor(t, "queued job skipped", func() bool { return eng.Stats().JobsCanceled == 1 })
	if s := eng.Stats(); s.JobsCompleted != 1 {
		t.Errorf("JobsCompleted = %d, want 1 (abandoned job must be skipped, not analyzed)", s.JobsCompleted)
	}
}

// TestEngineCloseRejectThenDrain pins Close's ordering: new submissions
// fail fast with ErrClosed while already-queued jobs drain to completion
// and their waiting clients get real responses.
func TestEngineCloseRejectThenDrain(t *testing.T) {
	gate := make(chan struct{})
	eng := engine.New(engine.Config{
		Workers:       1,
		QueueDepth:    4,
		CacheCapacity: -1,
		TestDetectHook: func(_ context.Context, req engine.Request) {
			if _, ok := req.Files["slow.rs"]; ok {
				<-gate
			}
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := eng.Analyze(context.Background(), uniqueReq("slow", 0)); err != nil {
			t.Errorf("in-flight request failed across Close: %v", err)
		}
	}()
	waitFor(t, "worker busy", func() bool { return eng.Stats().JobsInFlight == 1 })

	queuedResp := make(chan *engine.Response, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := eng.Analyze(context.Background(), uniqueReq("queued", 0))
		if err != nil {
			t.Errorf("queued request failed across Close: %v", err)
			return
		}
		queuedResp <- resp
	}()
	waitFor(t, "job queued", func() bool { return eng.Stats().QueueDepth == 1 })

	closed := make(chan struct{})
	go func() {
		eng.Close()
		close(closed)
	}()
	// Reject: once Close has begun, new submissions fail fast even
	// while the queue still holds work. A probe issued in the window
	// before Close flips the flag can still be accepted (and would then
	// block on the gated worker), so each probe carries its own short
	// deadline and key.
	probe := 0
	waitFor(t, "ErrClosed on new submissions", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := eng.Analyze(ctx, uniqueReq("late", probe))
		probe++
		return errors.Is(err, engine.ErrClosed)
	})
	select {
	case <-closed:
		t.Fatal("Close returned before queued jobs drained")
	default:
	}

	// Drain: release the worker; the queued client gets its response.
	close(gate)
	wg.Wait()
	select {
	case resp := <-queuedResp:
		if resp == nil {
			t.Error("queued client got a nil response")
		}
	default:
		t.Error("queued client never received its response")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
}

// TestEngineCacheNotesDeepCopy pins the Notes deep copy: responses
// handed out on cache hits (and the original miss) must not share Notes
// backing arrays, so one client appending or rewriting notes cannot
// corrupt another client's response or the cached value. Run under
// -race, the concurrent section also proves the absence of data races.
func TestEngineCacheNotesDeepCopy(t *testing.T) {
	eng := engine.New(engine.Config{Workers: 2})
	defer eng.Close()
	req := engine.Request{Files: map[string]string{"uaf.rs": uafSrc}}

	first, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Findings) == 0 || len(first.Findings[0].Notes) == 0 {
		t.Fatalf("test needs a finding with notes, got %+v", first.Findings)
	}
	wantNote := first.Findings[0].Notes[0]

	// Vandalize the miss response's notes in place: the cached value
	// must be unaffected.
	first.Findings[0].Notes[0] = "mutated"
	first.Findings[0].Notes = append(first.Findings[0].Notes, "extra")

	hit, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("resubmission was not a cache hit")
	}
	if got := hit.Findings[0].Notes; len(got) != 1 || got[0] != wantNote {
		t.Errorf("miss-response mutation leaked into the cache: notes = %q", got)
	}

	// Two hits must not share backing arrays with each other either.
	other, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	hit.Findings[0].Notes[0] = "scribbled"
	if other.Findings[0].Notes[0] != wantNote {
		t.Error("two cache hits share the same Notes backing array")
	}

	// Concurrent clients appending/sorting their own notes: -race
	// proves the isolation.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := eng.Analyze(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			for j := range r.Findings {
				r.Findings[j].Notes = append(r.Findings[j].Notes, "local")
				for k := range r.Findings[j].Notes {
					r.Findings[j].Notes[k] = fmt.Sprintf("client-%d", i)
				}
			}
		}(i)
	}
	wg.Wait()
	final, err := eng.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Findings[0].Notes; len(got) != 1 || got[0] != wantNote {
		t.Errorf("concurrent note mutation leaked into the cache: %q", got)
	}
}
