package engine_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rustprobe/internal/engine"
)

const badSrc = `fn broken( { let = ; }`

func newBatchEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{Workers: 4})
	t.Cleanup(e.Close)
	return e
}

// TestBatchMixedFiles submits a set mixing buggy, clean, and unparseable
// files: every parseable file gets its findings, the unparseable one
// gets an isolated source error, and nothing fails the set.
func TestBatchMixedFiles(t *testing.T) {
	e := newBatchEngine(t)
	resp, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: map[string]string{
		"uaf.rs":    uafSrc,
		"dl.rs":     doubleLockSrc,
		"clean.rs":  cleanSrc,
		"broken.rs": badSrc,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Files != 4 || resp.Errors != 1 {
		t.Fatalf("Files=%d Errors=%d, want 4/1", resp.Files, resp.Errors)
	}

	if got := resp.Results["broken.rs"]; got.ErrorKind != engine.BatchErrSource || got.Diagnostics == "" {
		t.Fatalf("broken.rs entry = %+v, want isolated source error with diagnostics", got)
	}
	for name, wantSrc := range map[string]string{"uaf.rs": uafSrc, "dl.rs": doubleLockSrc} {
		entry := resp.Results[name]
		if entry.Error != "" {
			t.Fatalf("%s: unexpected error %q", name, entry.Error)
		}
		want := serialResponse(t, engine.Request{Files: map[string]string{name: wantSrc}})
		if !reflect.DeepEqual(normalize(entry.Findings), normalize(want)) {
			t.Fatalf("%s: batch findings differ from direct analysis", name)
		}
		if len(entry.Findings) == 0 {
			t.Fatalf("%s: expected findings", name)
		}
	}
	if entry := resp.Results["clean.rs"]; entry.Error != "" || len(entry.Findings) != 0 {
		t.Fatalf("clean.rs entry = %+v, want clean success", entry)
	}
}

// TestBatchPerFileAndSetCaching checks the two cache granularities: a
// resubmitted identical set is an O(1) set-level hit, and a partially
// changed set still hits per-file for the unchanged members.
func TestBatchPerFileAndSetCaching(t *testing.T) {
	e := newBatchEngine(t)
	files := map[string]string{"uaf.rs": uafSrc, "dl.rs": doubleLockSrc, "clean.rs": cleanSrc}

	first, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if first.SetCacheHit {
		t.Fatal("first batch claimed a set-level hit")
	}

	// Identical resubmission: whole-set hit, no per-file lookups needed.
	second, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if !second.SetCacheHit {
		t.Fatal("unchanged-set resubmission missed the set cache")
	}
	if got, want := e.Stats().BatchSetHits, uint64(1); got != want {
		t.Fatalf("BatchSetHits = %d, want %d", got, want)
	}

	// One file changes: the set key misses, but the two unchanged files
	// ride their per-file cache entries — only the changed file runs.
	jobsBefore := e.Stats().JobsCompleted
	changed := map[string]string{"uaf.rs": uafSrc, "dl.rs": doubleLockSrc, "clean.rs": cleanSrc + "\nfn extra() {}\n"}
	third, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: changed})
	if err != nil {
		t.Fatal(err)
	}
	if third.SetCacheHit {
		t.Fatal("changed set served from set cache")
	}
	for _, name := range []string{"uaf.rs", "dl.rs"} {
		if !third.Results[name].CacheHit {
			t.Fatalf("%s unchanged but missed the per-file cache", name)
		}
	}
	if third.Results["clean.rs"].CacheHit {
		t.Fatal("changed file reported a cache hit")
	}
	if ran := e.Stats().JobsCompleted - jobsBefore; ran != 1 {
		t.Fatalf("partial change ran %d jobs, want 1 (O(diff), not O(repo))", ran)
	}
}

// TestBatchSetCacheSkipsTransientFailures: a batch containing an
// isolated panic entry must not be pinned into the set cache.
func TestBatchSetCacheSkipsTransientFailures(t *testing.T) {
	panics := 0
	e := engine.New(engine.Config{
		Workers: 1,
		TestDetectHook: func(ctx context.Context, req engine.Request) {
			if _, ok := req.Files["boom.rs"]; ok && panics == 0 {
				panics++
				panic("injected batch panic")
			}
		},
	})
	t.Cleanup(e.Close)
	files := map[string]string{"boom.rs": cleanSrc, "ok.rs": cleanSrc}

	first, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Results["boom.rs"]; got.ErrorKind != engine.BatchErrInternal {
		t.Fatalf("boom.rs = %+v, want internal error entry", got)
	}
	if got := first.Results["ok.rs"]; got.Error != "" {
		t.Fatalf("panic leaked across batch entries: %+v", got)
	}

	// Resubmission re-runs the failed file (hook no longer panics) and
	// must succeed — a cached transient failure would be served forever.
	second, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	if second.SetCacheHit {
		t.Fatal("batch with transient failure was served from the set cache")
	}
	if got := second.Results["boom.rs"]; got.Error != "" {
		t.Fatalf("retry still failing: %+v", got)
	}
}

// TestBatchValidation: malformed batches fail as a unit with a request
// error.
func TestBatchValidation(t *testing.T) {
	e := newBatchEngine(t)
	var reqErr *engine.RequestError
	if _, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{}); !errors.As(err, &reqErr) {
		t.Fatalf("empty batch: err = %v, want RequestError", err)
	}
	if _, err := e.AnalyzeBatch(context.Background(), engine.BatchRequest{
		Files:     map[string]string{"a.rs": cleanSrc},
		Detectors: []string{"nope"},
	}); !errors.As(err, &reqErr) {
		t.Fatalf("unknown detector: err = %v, want RequestError", err)
	}
}

// TestBatchCancellation: a dead context fails the batch as a whole
// rather than returning a partial map.
func TestBatchCancellation(t *testing.T) {
	e := newBatchEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	files := map[string]string{}
	for i := 0; i < 8; i++ {
		files[fmt.Sprintf("f%d.rs", i)] = fmt.Sprintf("fn f%d() {}\n", i)
	}
	if _, err := e.AnalyzeBatch(ctx, engine.BatchRequest{Files: files}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v, want context.Canceled", err)
	}
}

// TestBatchLargeSetThroughStore: a generated many-file repo flows
// through batch + store; a second engine (restart) serves the whole set
// from disk with zero fresh jobs.
func TestBatchLargeSetThroughStore(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{}
	for i := 0; i < 24; i++ {
		files[fmt.Sprintf("mod_%02d.rs", i)] = fmt.Sprintf("fn work_%02d(x: i32) -> i32 { x + %d }\n", i, i)
	}

	e1 := engine.New(engine.Config{Workers: 4, Store: openStore(t, dir)})
	if _, err := e1.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files}); err != nil {
		t.Fatal(err)
	}
	e1.Close()

	e2 := engine.New(engine.Config{Workers: 4, Store: openStore(t, dir)})
	defer e2.Close()
	resp, err := e2.AnalyzeBatch(context.Background(), engine.BatchRequest{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	for name, entry := range resp.Results {
		if entry.Error != "" {
			t.Fatalf("%s: %s", name, entry.Error)
		}
		if !entry.StoreHit {
			t.Fatalf("%s not served from the persistent tier after restart", name)
		}
	}
	st := e2.Stats()
	if st.JobsCompleted != 0 {
		t.Fatalf("restart replay ran %d jobs, want 0", st.JobsCompleted)
	}
	if st.StoreHits != uint64(len(files)) {
		t.Fatalf("StoreHits = %d, want %d", st.StoreHits, len(files))
	}
}
