package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of engine activity, cheap enough to
// serve from a hot /stats endpoint. Cumulative per-stage latencies are
// reported in milliseconds; divide by JobsCompleted for averages.
type Stats struct {
	Workers       int    `json:"workers"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	JobsInFlight  int64  `json:"jobs_in_flight"`
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	// JobsCanceled counts jobs abandoned by every waiter (timeout or
	// disconnect) before completion; their analysis work was skipped or
	// cut short at the fan-out boundary.
	JobsCanceled uint64 `json:"jobs_canceled"`
	// Panics counts analysis passes that panicked; each cost only its
	// own request (HTTP 500), never a pool worker.
	Panics uint64 `json:"panics"`
	// QueueRejected counts fast-fail ErrQueueFull rejections
	// (Config.QueueReject backpressure).
	QueueRejected uint64 `json:"queue_rejected"`
	// DedupHits counts submissions coalesced onto an identical
	// in-flight analysis (singleflight) instead of running their own.
	DedupHits uint64 `json:"dedup_hits"`

	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheSize     int    `json:"cache_size"`
	CacheCapacity int    `json:"cache_capacity"`
	// CacheEntries mirrors CacheSize under the name the eviction metrics
	// use; CacheEvictions counts entries pushed out by LRU pressure
	// since start (0 until the working set exceeds CacheCapacity).
	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`

	// Store* snapshot the persistent content-addressed tier (zero when
	// no store is configured). StoreHits are cold-start/replica hits
	// served from disk; StoreQuarantined counts corrupt, truncated, or
	// version-mismatched entries moved aside at read time.
	StoreHits        uint64 `json:"store_hits"`
	StoreMisses      uint64 `json:"store_misses"`
	StorePuts        uint64 `json:"store_puts"`
	StorePutErrors   uint64 `json:"store_put_errors"`
	StoreQuarantined uint64 `json:"store_quarantined"`
	StoreEntries     int64  `json:"store_entries"`

	// Batch API activity: whole-set submissions, O(1) set-level cache
	// hits, per-file fan-out volume and isolated per-file failures.
	BatchSubmitted  uint64 `json:"batch_submitted"`
	BatchSetHits    uint64 `json:"batch_set_hits"`
	BatchFiles      uint64 `json:"batch_files"`
	BatchFileErrors uint64 `json:"batch_file_errors"`

	FrontendMSTotal   float64 `json:"frontend_ms_total"`
	DetectMSTotal     float64 `json:"detect_ms_total"`
	UnsafeScanMSTotal float64 `json:"unsafe_scan_ms_total"`
	AnalyzeMSTotal    float64 `json:"analyze_ms_total"`

	// DetectorMSTotal breaks DetectMSTotal down by detector name
	// (cumulative wall time per pass across all completed jobs).
	DetectorMSTotal map[string]float64 `json:"detector_ms_total"`
}

// counters is the engine-internal atomic backing for Stats.
type counters struct {
	inFlight      atomic.Int64
	submitted     atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	canceled      atomic.Uint64
	panics        atomic.Uint64
	queueRejected atomic.Uint64
	dedupHits     atomic.Uint64

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	batchSubmitted  atomic.Uint64
	batchSetHits    atomic.Uint64
	batchFiles      atomic.Uint64
	batchFileErrors atomic.Uint64

	frontendNs atomic.Int64
	detectNs   atomic.Int64
	scanNs     atomic.Int64
	analyzeNs  atomic.Int64

	detectorMu sync.Mutex
	detectorNs map[string]int64
}

// addDetectorTimes folds one job's per-detector wall times into the
// cumulative breakdown.
func (c *counters) addDetectorTimes(times map[string]time.Duration) {
	if len(times) == 0 {
		return
	}
	c.detectorMu.Lock()
	defer c.detectorMu.Unlock()
	if c.detectorNs == nil {
		c.detectorNs = make(map[string]int64, len(times))
	}
	for name, d := range times {
		c.detectorNs[name] += int64(d)
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:       e.cfg.Workers,
		QueueDepth:    len(e.jobs),
		QueueCapacity: cap(e.jobs),
		JobsInFlight:  e.ctr.inFlight.Load(),
		JobsSubmitted: e.ctr.submitted.Load(),
		JobsCompleted: e.ctr.completed.Load(),
		JobsFailed:    e.ctr.failed.Load(),
		JobsCanceled:  e.ctr.canceled.Load(),
		Panics:        e.ctr.panics.Load(),
		QueueRejected: e.ctr.queueRejected.Load(),
		DedupHits:     e.ctr.dedupHits.Load(),
		CacheHits:     e.ctr.cacheHits.Load(),
		CacheMisses:   e.ctr.cacheMisses.Load(),

		BatchSubmitted:  e.ctr.batchSubmitted.Load(),
		BatchSetHits:    e.ctr.batchSetHits.Load(),
		BatchFiles:      e.ctr.batchFiles.Load(),
		BatchFileErrors: e.ctr.batchFileErrors.Load(),

		FrontendMSTotal:   float64(e.ctr.frontendNs.Load()) / 1e6,
		DetectMSTotal:     float64(e.ctr.detectNs.Load()) / 1e6,
		UnsafeScanMSTotal: float64(e.ctr.scanNs.Load()) / 1e6,
		AnalyzeMSTotal:    float64(e.ctr.analyzeNs.Load()) / 1e6,
	}
	e.ctr.detectorMu.Lock()
	if len(e.ctr.detectorNs) > 0 {
		s.DetectorMSTotal = make(map[string]float64, len(e.ctr.detectorNs))
		for name, ns := range e.ctr.detectorNs {
			s.DetectorMSTotal[name] = float64(ns) / 1e6
		}
	}
	e.ctr.detectorMu.Unlock()
	if e.cache != nil {
		s.CacheSize = e.cache.len()
		s.CacheEntries = s.CacheSize
		s.CacheCapacity = e.cache.cap
		s.CacheEvictions = e.cache.evicted()
	}
	if st := e.cfg.Store; st != nil {
		ss := st.Stats()
		s.StoreHits = ss.Hits
		s.StoreMisses = ss.Misses
		s.StorePuts = ss.Puts
		s.StorePutErrors = ss.PutErrors
		s.StoreQuarantined = ss.Quarantined
		s.StoreEntries = ss.Entries
	}
	return s
}
