package engine

import (
	"context"
	"sync"
	"time"
)

// flight is one in-progress analysis shared by every concurrent
// submission of the same content-hash key (singleflight): the first
// submitter (the leader) enqueues the job, later identical submissions
// join as waiters, and all of them receive the one result when the
// worker finishes. The flight owns the job's context: it is cancelled
// only once the last waiter has given up, so one impatient client among
// several does not cancel work the others still want, while a job whose
// waiters have all left stops burning a worker.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed after resp/err are set

	resp *Response
	err  error

	mu      sync.Mutex
	waiters int
}

// leave records one waiter giving up or finishing; the last one out
// cancels the job's context (harmless after completion).
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	if f.waiters == 0 {
		f.cancel()
	}
	f.mu.Unlock()
}

// joinFlight returns the in-flight analysis for key, creating it (and
// reporting leader=true) when none exists.
func (e *Engine) joinFlight(key string) (f *flight, leader bool) {
	e.flightMu.Lock()
	defer e.flightMu.Unlock()
	if f, ok := e.flights[key]; ok {
		f.mu.Lock()
		f.waiters++
		f.mu.Unlock()
		return f, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	f = &flight{ctx: ctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	e.flights[key] = f
	return f, true
}

// finishFlight publishes the result (or error) to every waiter and
// retires the flight; later identical submissions start fresh (and, on
// success, hit the cache instead).
func (e *Engine) finishFlight(f *flight, key string, resp *Response, err error) {
	e.flightMu.Lock()
	if e.flights[key] == f {
		delete(e.flights, key)
	}
	e.flightMu.Unlock()
	f.resp, f.err = resp, err
	close(f.done)
	f.cancel()
}

// await blocks until the flight completes or ctx is cancelled, handing
// back a defensive deep copy of the shared response.
func (e *Engine) await(ctx context.Context, f *flight, start time.Time) (*Response, error) {
	select {
	case <-f.done:
		f.leave()
		if f.err != nil {
			return nil, f.err
		}
		out := f.resp.clone()
		out.Elapsed = time.Since(start)
		return out, nil
	case <-ctx.Done():
		f.leave()
		return nil, ctx.Err()
	}
}
