package engine

import (
	"container/list"
	"sync"
)

// cache is a mutex-guarded LRU over analysis responses, keyed by the
// request content hash. Stored responses are immutable; hits hand back a
// deep defensive copy (fresh Findings slice AND fresh Notes backing
// arrays — see Response.clone) so one caller sorting, filtering, or
// appending to its response cannot race another's read of the shared
// cached value.
type cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *Response
}

func newCache(capacity int) *cache {
	return &cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *cache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp.clone(), true
}

func (c *cache) put(key string, resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
