package engine

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded LRU keyed by request content hash, generic over
// the cached value (single-file responses and batch set responses each
// get their own instance). Stored values are immutable; hits hand back a
// deep defensive copy via the configured clone (fresh Findings slice AND
// fresh Notes backing arrays — see Response.clone) so one caller
// sorting, filtering, or appending to its response cannot race another's
// read of the shared cached value. Evictions are counted so /stats and
// /metrics can show cache pressure instead of hiding it.
type lru[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	clone     func(V) V
	evictions uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int, clone func(V) V) *lru[V] {
	return &lru[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
		clone: clone,
	}
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return c.clone(el.Value.(*lruEntry[V]).val), true
}

func (c *lru[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru[V]) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
