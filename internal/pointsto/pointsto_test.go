package pointsto

import (
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func analyzeFn(t *testing.T, src, fn string) (*mir.Body, *Result) {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return body, Analyze(body)
}

func localByName(b *mir.Body, name string) mir.LocalID {
	for _, l := range b.Locals {
		if l.Name == name {
			return l.ID
		}
	}
	return -1
}

func TestBorrowTargets(t *testing.T) {
	body, r := analyzeFn(t, `
fn f() {
    let x = 1;
    let p = &x;
    let q = p;
}
`, "f")
	x := localByName(body, "x")
	for _, name := range []string{"p", "q"} {
		l := localByName(body, name)
		if !r.Targets(l)[x] {
			t.Errorf("%s should point to x: %v", name, r.Targets(l))
		}
	}
}

func TestAsPtrAndCastChain(t *testing.T) {
	body, r := analyzeFn(t, `
fn f() {
    let v = Vec::new();
    let p = v.as_ptr();
    let q = p as *mut u8;
}
`, "f")
	v := localByName(body, "v")
	q := localByName(body, "q")
	if !r.Targets(q)[v] {
		t.Errorf("cast chain lost the target: %v", r.Targets(q))
	}
}

func TestUnwrapForwardsAliases(t *testing.T) {
	body, r := analyzeFn(t, `
fn f() {
    let v = Vec::new();
    let o = Some(&v);
    let p = o.unwrap();
}
`, "f")
	v := localByName(body, "v")
	p := localByName(body, "p")
	if !r.Targets(p)[v] {
		t.Errorf("unwrap should forward aliases: %v", r.Targets(p))
	}
}

func TestPointerParamsSelfSeeded(t *testing.T) {
	body, r := analyzeFn(t, `
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
`, "f")
	p := localByName(body, "p")
	if !r.Targets(p)[p] {
		t.Errorf("pointer param should be self-seeded: %v", r.Targets(p))
	}
}

func TestNonPointersUntracked(t *testing.T) {
	body, r := analyzeFn(t, `
fn f() {
    let a = 1;
    let b = a + 2;
}
`, "f")
	b := localByName(body, "b")
	if len(r.Targets(b)) != 0 {
		t.Errorf("integer locals must have no targets: %v", r.Targets(b))
	}
}

func TestFixpointTerminatesOnCycle(t *testing.T) {
	// A pointer copied in a loop must converge.
	body, r := analyzeFn(t, `
fn f() {
    let x = 1;
    let mut p = &x;
    loop {
        p = p;
        break;
    }
    let q = p;
}
`, "f")
	q := localByName(body, "q")
	x := localByName(body, "x")
	if !r.Targets(q)[x] {
		t.Errorf("cycle lost target: %v", r.Targets(q))
	}
}
