// Package pointsto computes, per function, which local storages each
// pointer-like local may point into. It is flow-insensitive within a
// function (iterated to fixpoint over assignments) and mirrors the paper's
// §7.1 detector design: a "points-to" analysis over MIR places, including
// ownership moves, feeding the use-after-free check.
package pointsto

import (
	"rustprobe/internal/mir"
	"rustprobe/internal/types"
)

// Result maps each local to the set of locals whose storage it may point
// into. Only pointer-like locals (references, raw pointers, and values
// forwarded from them) get entries.
type Result struct {
	Body *mir.Body
	// PointsTo[l] is the set of storage roots local l may reference.
	PointsTo map[mir.LocalID]map[mir.LocalID]bool
}

// Targets returns the storage roots of l (nil when untracked).
func (r *Result) Targets(l mir.LocalID) map[mir.LocalID]bool { return r.PointsTo[l] }

// Analyze runs the analysis to fixpoint.
func Analyze(body *mir.Body) *Result {
	r := &Result{Body: body, PointsTo: map[mir.LocalID]map[mir.LocalID]bool{}}

	// Seed: a pointer-typed parameter points at (a proxy for) its own
	// storage root, so derived pointers keep a self-rooted identity (used
	// by the interior-mutability checker on &self receivers). Parameter
	// storage is never dead while the function runs, so this cannot fake
	// a use-after-free.
	for i := 0; i < body.ArgCount; i++ {
		l := body.Locals[i+1]
		if types.IsPointerLike(l.Ty) {
			r.PointsTo[l.ID] = map[mir.LocalID]bool{l.ID: true}
		}
	}

	add := func(l mir.LocalID, target mir.LocalID) bool {
		set := r.PointsTo[l]
		if set == nil {
			set = map[mir.LocalID]bool{}
			r.PointsTo[l] = set
		}
		if set[target] {
			return false
		}
		set[target] = true
		return true
	}
	addAll := func(l mir.LocalID, targets map[mir.LocalID]bool) bool {
		changed := false
		for t := range targets {
			if add(l, t) {
				changed = true
			}
		}
		return changed
	}

	// rootsOf returns the storage roots a place's *address* refers to:
	// for a projection-free local that is the local itself; through a
	// deref it is whatever the base pointer points to.
	rootsOf := func(p mir.Place) map[mir.LocalID]bool {
		if !p.HasDeref() {
			return map[mir.LocalID]bool{p.Local: true}
		}
		return r.PointsTo[p.Local]
	}

	changed := true
	for changed {
		changed = false
		for _, blk := range body.Blocks {
			for _, st := range blk.Stmts {
				as, ok := st.(mir.Assign)
				if !ok {
					continue
				}
				dest := as.Place.Local
				if as.Place.HasDeref() {
					// Storing a pointer through a pointer: targets of the
					// stored value flow into every root the destination
					// may reach. Approximate by merging into those roots'
					// own sets only when they are pointer-typed; skipped
					// for simplicity — the corpus does not need
					// pointer-through-pointer stores.
					continue
				}
				switch rv := as.Rvalue.(type) {
				case mir.Ref:
					if addAll(dest, rootsOf(rv.Place)) {
						changed = true
					}
				case mir.AddrOf:
					if addAll(dest, rootsOf(rv.Place)) {
						changed = true
					}
				case mir.Use:
					if pl, ok := mir.OperandPlace(rv.X); ok {
						if addAll(dest, r.PointsTo[pl.Local]) {
							changed = true
						}
					}
				case mir.Cast:
					if pl, ok := mir.OperandPlace(rv.X); ok {
						if addAll(dest, r.PointsTo[pl.Local]) {
							changed = true
						}
					}
				case mir.Aggregate:
					// A pointer stored into an aggregate: the aggregate
					// local inherits the pointees (field-insensitive).
					for _, op := range rv.Ops {
						if pl, ok := mir.OperandPlace(op); ok {
							if addAll(dest, r.PointsTo[pl.Local]) {
								changed = true
							}
						}
					}
				}
			}
			// Calls that forward pointees: unwrap/expect and identity-ish
			// moves keep the alias chain alive across the call.
			if c, ok := blk.Term.(mir.Call); ok {
				switch c.Intrinsic {
				case mir.IntrinsicUnwrap, mir.IntrinsicClone, mir.IntrinsicCondvarWait,
					mir.IntrinsicArcClone:
					// Arc::clone(&x) yields a second handle on x's storage:
					// the clone aliases the original allocation, which is
					// what lets the race detector unify accesses made
					// through different Arc handles.
					if len(c.Args) > 0 {
						if pl, ok := mir.OperandPlace(c.Args[0]); ok {
							if addAll(c.Dest.Local, r.PointsTo[pl.Local]) {
								changed = true
							}
						}
					}
				case mir.IntrinsicGetUnchecked:
					// Reference into the receiver's storage.
					if len(c.Args) > 0 {
						if pl, ok := mir.OperandPlace(c.Args[0]); ok {
							if addAll(c.Dest.Local, map[mir.LocalID]bool{pl.Local: true}) {
								changed = true
							}
							if addAll(c.Dest.Local, r.PointsTo[pl.Local]) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return r
}
