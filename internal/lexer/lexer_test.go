package lexer

import (
	"strings"
	"testing"

	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

func tokenize(t *testing.T, src string) []token.Token {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	toks := New(f, diags).Tokenize()
	if diags.HasErrors() {
		t.Fatalf("lex errors for %q: %s", src, diags.String())
	}
	return toks
}

func kinds(toks []token.Token) []token.Kind {
	var ks []token.Kind
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		ks = append(ks, tk.Kind)
	}
	return ks
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(tokenize(t, src))
	if len(got) != len(want) {
		t.Fatalf("%q: got %v want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: token %d = %v want %v (all: %v)", src, i, got[i], want[i], got)
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "fn main", token.KwFn, token.Ident)
	expectKinds(t, "unsafe impl Sync for T", token.KwUnsafe, token.KwImpl, token.Ident, token.KwFor, token.Ident)
	expectKinds(t, "let mut x", token.KwLet, token.KwMut, token.Ident)
	expectKinds(t, "_", token.Underscore)
	expectKinds(t, "_x", token.Ident)
	expectKinds(t, "Self self", token.KwSelfType, token.KwSelfValue)
}

func TestNumbers(t *testing.T) {
	expectKinds(t, "0 42 0xff 0b1010 0o777 1_000", token.Int, token.Int, token.Int, token.Int, token.Int, token.Int)
	expectKinds(t, "3.5 1e10 2.5e-3 1f64", token.Float, token.Float, token.Float, token.Float)
	expectKinds(t, "32u8 100usize", token.Int, token.Int)
	// Range must not lex as a float.
	expectKinds(t, "0..10", token.Int, token.DotDot, token.Int)
	expectKinds(t, "0..=10", token.Int, token.DotDotEq, token.Int)
}

func TestStringsAndChars(t *testing.T) {
	expectKinds(t, `"hello"`, token.Str)
	expectKinds(t, `"esc \" quote"`, token.Str)
	expectKinds(t, `r"raw"`, token.RawStr)
	expectKinds(t, `r#"with "quotes""#`, token.RawStr)
	expectKinds(t, `'a'`, token.Char)
	expectKinds(t, `'\n'`, token.Char)
	expectKinds(t, `'\u{1F600}'`, token.Char)
	expectKinds(t, `b'x'`, token.Byte)
	expectKinds(t, `b"bytes"`, token.ByteStr)
}

func TestLifetimes(t *testing.T) {
	expectKinds(t, "&'a str", token.And, token.Lifetime, token.Ident)
	expectKinds(t, "'static", token.Lifetime)
	// 'a' is a char, 'a is a lifetime.
	expectKinds(t, "'a' 'a", token.Char, token.Lifetime)
	expectKinds(t, "<'a, T>", token.Lt, token.Lifetime, token.Comma, token.Ident, token.Gt)
}

func TestOperators(t *testing.T) {
	expectKinds(t, ":: -> => == != <= >= && || << >> ..= ...",
		token.PathSep, token.Arrow, token.FatArrow, token.EqEq, token.Ne,
		token.Le, token.Ge, token.AndAnd, token.OrOr, token.Shl, token.Shr,
		token.DotDotEq, token.DotDotDot)
	expectKinds(t, "+= -= *= /= %= ^= &= |= <<= >>=",
		token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq, token.PercentEq,
		token.CaretEq, token.AndEq, token.OrEq, token.ShlEq, token.ShrEq)
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // comment\nb", token.Ident, token.Ident)
	expectKinds(t, "a /* block */ b", token.Ident, token.Ident)
	expectKinds(t, "a /* nested /* deep */ still */ b", token.Ident, token.Ident)
	expectKinds(t, "/// doc comment\nfn", token.KwFn)
}

func TestCommentTokensKept(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", "a // hi\nb")
	lx := New(f, source.NewDiagnostics(fset))
	lx.KeepComments = true
	toks := lx.Tokenize()
	var hasComment bool
	for _, tk := range toks {
		if tk.Kind == token.Comment {
			hasComment = true
			if !strings.Contains(tk.Text, "hi") {
				t.Errorf("comment text = %q", tk.Text)
			}
		}
	}
	if !hasComment {
		t.Error("expected a Comment token")
	}
}

func TestSpans(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", "let x = 1;")
	toks := New(f, source.NewDiagnostics(fset)).Tokenize()
	if got := fset.SpanText(toks[1].Span); got != "x" {
		t.Errorf("span text = %q, want x", got)
	}
	pos := fset.Position(toks[1].Span.Start)
	if pos.Line != 1 || pos.Column != 5 {
		t.Errorf("position = %v, want 1:5", pos)
	}
}

func TestUnterminatedString(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", `"unterminated`)
	diags := source.NewDiagnostics(fset)
	New(f, diags).Tokenize()
	if !diags.HasErrors() {
		t.Error("expected an error for unterminated string")
	}
}

func TestRealisticSnippet(t *testing.T) {
	src := `
pub fn sign(data: Option<&[u8]>) {
    let p = match data {
        Some(data) => BioSlice::new(data).as_ptr(),
        None => ptr::null_mut(),
    };
    unsafe {
        let cms = cvt_p(CMS_sign(p));
    }
}
`
	toks := tokenize(t, src)
	if len(toks) < 30 {
		t.Fatalf("too few tokens: %d", len(toks))
	}
	if toks[len(toks)-1].Kind != token.EOF {
		t.Error("missing EOF")
	}
}

// TestNulByteMakesProgress: a literal NUL in the source must lex as an
// Illegal token and advance — found by FuzzPipeline, where an embedded
// "\x00" left the scanner stuck emitting Illegal tokens forever.
func TestNulByteMakesProgress(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", "fn\x00\x80f")
	diags := source.NewDiagnostics(fset)
	toks := New(f, diags).Tokenize()
	if toks[len(toks)-1].Kind != token.EOF {
		t.Fatal("missing EOF")
	}
	if !diags.HasErrors() {
		t.Error("expected errors for NUL and invalid UTF-8 bytes")
	}
	if n := len(toks); n > 8 {
		t.Errorf("lexer emitted %d tokens for a 5-byte input; not making progress", n)
	}
}
