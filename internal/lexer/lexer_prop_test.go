package lexer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

// TestLexerTotal: the lexer never panics and always terminates with EOF,
// for arbitrary byte soup.
func TestLexerTotal(t *testing.T) {
	prop := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		fset := source.NewFileSet()
		f := fset.Add("fuzz.rs", src)
		toks := New(f, source.NewDiagnostics(fset)).Tokenize()
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTokenSpansOrderedAndFaithful: token spans are strictly increasing,
// non-overlapping, in-bounds, and each token's Text equals the source text
// its span covers.
func TestTokenSpansOrderedAndFaithful(t *testing.T) {
	prop := func(seed int64) bool {
		src := randomRustish(rand.New(rand.NewSource(seed)))
		fset := source.NewFileSet()
		f := fset.Add("gen.rs", src)
		toks := New(f, source.NewDiagnostics(fset)).Tokenize()
		prevEnd := f.Base - 1
		for _, tk := range toks {
			if tk.Kind == token.EOF {
				break
			}
			if tk.Span.Start < prevEnd {
				return false
			}
			if fset.SpanText(tk.Span) != tk.Text {
				return false
			}
			prevEnd = tk.Span.End
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRelexingTokenTextIsStable: lexing the space-joined token texts of a
// valid program yields the same token kinds (a round-trip property modulo
// whitespace).
func TestRelexingTokenTextIsStable(t *testing.T) {
	prop := func(seed int64) bool {
		src := randomRustish(rand.New(rand.NewSource(seed)))
		k1 := kindsOf(src)
		var b strings.Builder
		fset := source.NewFileSet()
		f := fset.Add("gen.rs", src)
		for _, tk := range New(f, source.NewDiagnostics(fset)).Tokenize() {
			if tk.Kind == token.EOF {
				break
			}
			b.WriteString(tk.Text)
			b.WriteByte(' ')
		}
		k2 := kindsOf(b.String())
		if len(k1) != len(k2) {
			return false
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func kindsOf(src string) []token.Kind {
	fset := source.NewFileSet()
	f := fset.Add("k.rs", src)
	var out []token.Kind
	for _, tk := range New(f, source.NewDiagnostics(fset)).Tokenize() {
		if tk.Kind == token.EOF {
			break
		}
		out = append(out, tk.Kind)
	}
	return out
}

// randomRustish emits a random but lexically valid token stream.
func randomRustish(r *rand.Rand) string {
	words := []string{
		"fn", "let", "mut", "unsafe", "impl", "struct", "match", "if", "else",
		"x", "y", "client", "lock", "unwrap", "self",
		"42", "0xff", "3.25", `"str"`, "'c'", "'a", "b'q'",
		"::", "->", "=>", "==", "&&", "<<=", "..", "..=",
		"(", ")", "{", "}", "[", "]", ";", ",", ":", ".", "&", "*", "+", "=",
	}
	n := 1 + r.Intn(60)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(words[r.Intn(len(words))])
		b.WriteByte(' ')
	}
	return b.String()
}
