// Package lexer implements a hand-written scanner for the Rust subset. It
// handles nested block comments, lifetimes vs char literals, raw strings
// with hash guards, byte/byte-string literals, numeric literals with type
// suffixes, and maximal-munch operator recognition.
package lexer

import (
	"unicode"
	"unicode/utf8"

	"rustprobe/internal/source"
	"rustprobe/internal/token"
)

// Lexer scans one source file into tokens.
type Lexer struct {
	file  *source.File
	src   string
	pos   int // byte offset of the next rune to scan
	diags *source.Diagnostics
	// KeepComments causes Comment tokens to be emitted instead of skipped.
	KeepComments bool
}

// New returns a Lexer over file, reporting malformed input to diags.
// diags may be nil, in which case errors are silently folded into Illegal
// tokens.
func New(file *source.File, diags *source.Diagnostics) *Lexer {
	return &Lexer{file: file, src: file.Content, diags: diags}
}

// Tokenize scans the whole file, appending the terminating EOF token.
func (l *Lexer) Tokenize() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(start int, format string, args ...any) {
	if l.diags != nil {
		l.diags.Errorf(l.span(start), format, args...)
	}
}

func (l *Lexer) span(start int) source.Span {
	return source.NewSpan(l.file.Base+start, l.file.Base+l.pos)
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) bump() byte {
	// Advance on any in-bounds byte — including a literal NUL, which peek()
	// cannot distinguish from end-of-input. Gating the advance on c != 0
	// would leave pos stuck on embedded NULs and loop Tokenize forever.
	if l.pos >= len(l.src) {
		return 0
	}
	c := l.src[l.pos]
	l.pos++
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= utf8.RuneSelf
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, skipping whitespace and (by default)
// comments.
func (l *Lexer) Next() token.Token {
	for {
		l.skipWhitespace()
		if l.pos >= len(l.src) {
			return l.make(token.EOF, l.pos)
		}
		if l.peek() == '/' && (l.peekAt(1) == '/' || l.peekAt(1) == '*') {
			start := l.pos
			l.scanComment()
			if l.KeepComments {
				return l.make(token.Comment, start)
			}
			continue
		}
		break
	}

	start := l.pos
	c := l.peek()
	// Multibyte runes are identifiers only when they begin with a letter;
	// anything else (symbols, combining marks, invalid UTF-8) is consumed
	// as one Illegal token so the lexer always makes progress.
	if c >= utf8.RuneSelf {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) {
			l.pos += size
			l.errorf(start, "unexpected character %q", string(r))
			return l.make(token.Illegal, start)
		}
	}
	switch {
	case isIdentStart(c) && !(c == 'r' && l.isRawStrStart()) && !(c == 'b' && l.isByteLitStart()):
		return l.scanIdent(start)
	case isDigit(c):
		return l.scanNumber(start)
	case c == '"':
		return l.scanString(start)
	case c == '\'':
		return l.scanCharOrLifetime(start)
	case c == 'r' && l.isRawStrStart():
		return l.scanRawString(start)
	case c == 'b' && l.isByteLitStart():
		return l.scanByteLit(start)
	default:
		return l.scanOperator(start)
	}
}

func (l *Lexer) isRawStrStart() bool {
	if l.peek() != 'r' {
		return false
	}
	i := 1
	for l.peekAt(i) == '#' {
		i++
	}
	return l.peekAt(i) == '"'
}

func (l *Lexer) isByteLitStart() bool {
	if l.peek() != 'b' {
		return false
	}
	n := l.peekAt(1)
	return n == '\'' || n == '"'
}

func (l *Lexer) skipWhitespace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.pos++
		default:
			return
		}
	}
}

func (l *Lexer) scanComment() {
	start := l.pos
	l.pos++ // consume '/'
	if l.peek() == '/' {
		for l.pos < len(l.src) && l.src[l.pos] != '\n' {
			l.pos++
		}
		return
	}
	// Block comment; Rust block comments nest.
	l.pos++ // consume '*'
	depth := 1
	for l.pos < len(l.src) && depth > 0 {
		if l.peek() == '/' && l.peekAt(1) == '*' {
			depth++
			l.pos += 2
		} else if l.peek() == '*' && l.peekAt(1) == '/' {
			depth--
			l.pos += 2
		} else {
			l.pos++
		}
	}
	if depth > 0 {
		l.errorf(start, "unterminated block comment")
	}
}

func (l *Lexer) make(kind token.Kind, start int) token.Token {
	return token.Token{Kind: kind, Text: l.src[start:l.pos], Span: l.span(start)}
}

func (l *Lexer) scanIdent(start int) token.Token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c < utf8.RuneSelf {
			if !isIdentCont(c) {
				break
			}
			l.pos++
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	if text == "_" {
		return l.make(token.Underscore, start)
	}
	if kw, ok := token.Keywords[text]; ok {
		return l.make(kw, start)
	}
	return l.make(token.Ident, start)
}

func (l *Lexer) scanNumber(start int) token.Token {
	kind := token.Int
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'o' || l.peekAt(1) == 'b') {
		l.pos += 2
		for isHexDigit(l.peek()) || l.peek() == '_' {
			l.pos++
		}
	} else {
		for isDigit(l.peek()) || l.peek() == '_' {
			l.pos++
		}
		// A '.' begins a float only when followed by a digit: `0..1` must
		// stay Int DotDot Int, and `x.0` tuple access is handled by the
		// parser. `1.5` is a float.
		if l.peek() == '.' && isDigit(l.peekAt(1)) {
			kind = token.Float
			l.pos++
			for isDigit(l.peek()) || l.peek() == '_' {
				l.pos++
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.pos
			l.pos++
			if l.peek() == '+' || l.peek() == '-' {
				l.pos++
			}
			if isDigit(l.peek()) {
				kind = token.Float
				for isDigit(l.peek()) || l.peek() == '_' {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
	}
	// Type suffix: 1u8, 3.5f64, 100usize.
	if isIdentStart(l.peek()) {
		suffStart := l.pos
		for isIdentCont(l.peek()) {
			l.pos++
		}
		suffix := l.src[suffStart:l.pos]
		if suffix == "f32" || suffix == "f64" {
			kind = token.Float
		}
	}
	return l.make(kind, start)
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) scanEscape(start int) {
	// Caller consumed the backslash.
	switch l.bump() {
	case 'n', 'r', 't', '\\', '\'', '"', '0':
	case 'x':
		l.bump()
		l.bump()
	case 'u':
		if l.peek() == '{' {
			for l.pos < len(l.src) && l.bump() != '}' {
			}
		}
	case 0:
		l.errorf(start, "unterminated escape sequence")
	}
}

func (l *Lexer) scanString(start int) token.Token {
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		c := l.bump()
		if c == '"' {
			return l.make(token.Str, start)
		}
		if c == '\\' {
			l.scanEscape(start)
		}
	}
	l.errorf(start, "unterminated string literal")
	return l.make(token.Illegal, start)
}

func (l *Lexer) scanRawString(start int) token.Token {
	l.pos++ // 'r'
	hashes := 0
	for l.peek() == '#' {
		hashes++
		l.pos++
	}
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		if l.bump() == '"' {
			n := 0
			for n < hashes && l.peek() == '#' {
				l.pos++
				n++
			}
			if n == hashes {
				return l.make(token.RawStr, start)
			}
		}
	}
	l.errorf(start, "unterminated raw string literal")
	return l.make(token.Illegal, start)
}

// scanCharOrLifetime disambiguates 'a' (char) from 'a (lifetime). A quote
// introduces a lifetime when an identifier follows and the next character
// after the identifier is not a closing quote.
func (l *Lexer) scanCharOrLifetime(start int) token.Token {
	l.pos++ // opening quote
	if isIdentStart(l.peek()) && l.peek() != '\\' {
		// Look ahead past the identifier.
		i := l.pos
		for i < len(l.src) && isIdentCont(l.src[i]) {
			i++
		}
		if i >= len(l.src) || l.src[i] != '\'' {
			// Lifetime.
			l.pos = i
			return l.make(token.Lifetime, start)
		}
	}
	// Char literal.
	c := l.bump()
	if c == '\\' {
		l.scanEscape(start)
	} else if c >= utf8.RuneSelf {
		// Re-decode the multibyte rune from its first byte.
		l.pos--
		_, size := utf8.DecodeRuneInString(l.src[l.pos:])
		l.pos += size
	}
	if l.bump() != '\'' {
		l.errorf(start, "unterminated character literal")
		return l.make(token.Illegal, start)
	}
	return l.make(token.Char, start)
}

func (l *Lexer) scanByteLit(start int) token.Token {
	l.pos++ // 'b'
	if l.peek() == '\'' {
		l.pos++
		c := l.bump()
		if c == '\\' {
			l.scanEscape(start)
		}
		if l.bump() != '\'' {
			l.errorf(start, "unterminated byte literal")
			return l.make(token.Illegal, start)
		}
		return l.make(token.Byte, start)
	}
	// b"..."
	l.pos++
	for l.pos < len(l.src) {
		c := l.bump()
		if c == '"' {
			return l.make(token.ByteStr, start)
		}
		if c == '\\' {
			l.scanEscape(start)
		}
	}
	l.errorf(start, "unterminated byte string literal")
	return l.make(token.Illegal, start)
}

// twoByteOps maps two-character operator prefixes to kinds (checked before
// single-character operators; three-character forms are checked first).
func (l *Lexer) scanOperator(start int) token.Token {
	three := ""
	if l.pos+3 <= len(l.src) {
		three = l.src[l.pos : l.pos+3]
	}
	switch three {
	case "..=":
		l.pos += 3
		return l.make(token.DotDotEq, start)
	case "...":
		l.pos += 3
		return l.make(token.DotDotDot, start)
	case "<<=":
		l.pos += 3
		return l.make(token.ShlEq, start)
	case ">>=":
		l.pos += 3
		return l.make(token.ShrEq, start)
	}
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	if k, ok := twoByte[two]; ok {
		l.pos += 2
		return l.make(k, start)
	}
	c := l.bump()
	if k, ok := oneByte[c]; ok {
		return l.make(k, start)
	}
	l.errorf(start, "unexpected character %q", string(rune(c)))
	return l.make(token.Illegal, start)
}

var twoByte = map[string]token.Kind{
	"::": token.PathSep,
	"->": token.Arrow,
	"=>": token.FatArrow,
	"==": token.EqEq,
	"!=": token.Ne,
	"<=": token.Le,
	">=": token.Ge,
	"&&": token.AndAnd,
	"||": token.OrOr,
	"<<": token.Shl,
	">>": token.Shr,
	"+=": token.PlusEq,
	"-=": token.MinusEq,
	"*=": token.StarEq,
	"/=": token.SlashEq,
	"%=": token.PercentEq,
	"^=": token.CaretEq,
	"&=": token.AndEq,
	"|=": token.OrEq,
	"..": token.DotDot,
}

var oneByte = map[byte]token.Kind{
	'(': token.LParen,
	')': token.RParen,
	'{': token.LBrace,
	'}': token.RBrace,
	'[': token.LBracket,
	']': token.RBracket,
	',': token.Comma,
	';': token.Semi,
	':': token.Colon,
	'#': token.Pound,
	'$': token.Dollar,
	'?': token.Question,
	'.': token.Dot,
	'@': token.At,
	'=': token.Eq,
	'<': token.Lt,
	'>': token.Gt,
	'!': token.Not,
	'+': token.Plus,
	'-': token.Minus,
	'*': token.Star,
	'/': token.Slash,
	'%': token.Percent,
	'^': token.Caret,
	'&': token.And,
	'|': token.Or,
}
