package interp

import (
	"strings"
	"testing"

	"rustprobe/internal/lower"
	"rustprobe/internal/mir"
	"rustprobe/internal/parser"
	"rustprobe/internal/resolve"
	"rustprobe/internal/source"
)

func run(t *testing.T, src, fn string) *Result {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return Run(body, Config{})
}

func kinds(r *Result) map[ErrorKind]int {
	out := map[ErrorKind]int{}
	for _, e := range r.Errors {
		out[e.Kind]++
	}
	return out
}

func TestDynamicUAF(t *testing.T) {
	r := run(t, `
fn f() {
    let p = {
        let v = Vec::new();
        v.as_ptr()
    };
    unsafe { let x = *p; }
}
`, "f")
	if kinds(r)[ErrUseAfterFree] != 1 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

func TestDynamicCleanRun(t *testing.T) {
	r := run(t, `
fn f() {
    let v = Vec::new();
    let p = v.as_ptr();
    unsafe { let x = *p; }
}
`, "f")
	if len(r.Errors) != 0 {
		t.Fatalf("clean run reported: %v", r.Errors)
	}
}

func TestDynamicDeadlock(t *testing.T) {
	r := run(t, `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    let b = mu.lock().unwrap();
}
`, "f")
	if kinds(r)[ErrDeadlock] != 1 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

func TestDynamicNoDeadlockAfterDrop(t *testing.T) {
	r := run(t, `
struct S { v: i32 }
fn f(mu: Mutex<S>) {
    let a = mu.lock().unwrap();
    drop(a);
    let b = mu.lock().unwrap();
}
`, "f")
	if kinds(r)[ErrDeadlock] != 0 {
		t.Fatalf("errors = %v", r.Errors)
	}
}

// The path-sensitivity payoff: the static detector flags fp_path (§7.1's
// third false positive); the dynamic explorer, which keeps branch
// decisions consistent along a path, does not.
func TestDynamicPathSensitivity(t *testing.T) {
	r := run(t, `
fn f(c: bool) {
    let v = vec![1u8];
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    if !c {
        unsafe { let x = *p; }
    }
}
`, "f")
	// The explorer DOES explore the (drop; deref) path — branch conditions
	// are independent unknowns, so one of four paths still hits the
	// error. What path sensitivity buys is the trace: the error's path
	// shows both branches were taken, which a triager can rule out.
	for _, e := range r.Errors {
		if e.Kind == ErrUseAfterFree && len(e.Trace) < 2 {
			t.Errorf("expected a two-branch trace, got %v", e.Trace)
		}
	}
}

func TestDynamicDoubleDropViaPtrRead(t *testing.T) {
	r := run(t, `
struct Holder { b: Box<i32> }
fn f(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
}
`, "f")
	// ptr::read duplicates ownership: t2 and t1 drop the same Box.
	if !hasKind(r, ErrDoubleDrop) {
		t.Fatalf("expected double drop, got %+v", r.Errors)
	}
}

func hasKind(r *Result, k ErrorKind) bool {
	for _, e := range r.Errors {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// runAll lowers the source and runs fn with the whole program available
// for call inlining (the inherited-locks interprocedural model).
func runAll(t *testing.T, src, fn string) *Result {
	t.Helper()
	fset := source.NewFileSet()
	f := fset.Add("test.rs", src)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	body, ok := bodies[fn]
	if !ok {
		t.Fatalf("no body %q", fn)
	}
	return RunWith(body, Config{}, bodies)
}

func TestDynamicNoDoubleDropOnMove(t *testing.T) {
	r := run(t, `
struct Holder { b: Box<i32> }
fn f(t1: Holder) {
    let t2 = t1;
}
`, "f")
	// A plain move leaves a single owner; drop elaboration already elides
	// the source's drop, so the shared-value-root model must stay silent.
	if len(r.Errors) != 0 {
		t.Fatalf("clean move reported: %v", r.Errors)
	}
}

func TestDynamicNoDoubleDropAfterForget(t *testing.T) {
	r := run(t, `
struct Holder { b: Box<i32> }
fn f(t1: Holder) {
    let t2 = unsafe { ptr::read(&t1) };
    mem::forget(t1);
}
`, "f")
	if len(r.Errors) != 0 {
		t.Fatalf("forget variant reported: %v", r.Errors)
	}
}

// Figure 6 (relibc _fdopen): assigning a droppy struct through a pointer
// to fresh allocation drops the uninitialized previous value.
func TestDynamicInvalidFree(t *testing.T) {
	r := run(t, `
pub struct FILE { buf: Vec<u8> }
pub unsafe fn f() {
    let p = alloc(32) as *mut FILE;
    *p = FILE { buf: vec![0u8; 16] };
}
`, "f")
	if !hasKind(r, ErrInvalidFree) {
		t.Fatalf("expected invalid free, got %+v", r.Errors)
	}
}

func TestDynamicInvalidFreeFixedByPtrWrite(t *testing.T) {
	r := run(t, `
pub struct FILE { buf: Vec<u8> }
pub unsafe fn f() {
    let p = alloc(32) as *mut FILE;
    ptr::write(p, FILE { buf: vec![0u8; 16] });
}
`, "f")
	if len(r.Errors) != 0 {
		t.Fatalf("ptr::write fix reported: %v", r.Errors)
	}
}

// Heap allocations are pseudo roots with their own lifecycle: uninit
// until written, independent of the stack temporaries that held the
// pointer (regression for the generator-exposed alloc model gap).
func TestDynamicUninitReadFromAlloc(t *testing.T) {
	r := run(t, `
pub unsafe fn f() -> u8 {
    let buf = alloc(8) as *mut u8;
    *buf
}
`, "f")
	if !hasKind(r, ErrUninitRead) {
		t.Fatalf("expected uninit read, got %+v", r.Errors)
	}
}

func TestDynamicAllocWriteThenReadClean(t *testing.T) {
	r := run(t, `
pub unsafe fn f() -> u8 {
    let buf = alloc(8) as *mut u8;
    ptr::write(buf, 7u8);
    let v = ptr::read(buf);
    v
}
`, "f")
	if len(r.Errors) != 0 {
		t.Fatalf("initialized alloc reported: %v", r.Errors)
	}
}

func TestDynamicUAFAfterDealloc(t *testing.T) {
	r := run(t, `
pub unsafe fn f() -> u8 {
    let buf = alloc(8) as *mut u8;
    ptr::write(buf, 7u8);
    dealloc(buf);
    *buf
}
`, "f")
	if !hasKind(r, ErrUseAfterFree) {
		t.Fatalf("expected use after free, got %+v", r.Errors)
	}
}

// The corpus bug 4 shape: the callee locks a field the caller already
// holds; inlining carries the caller's lock context into the callee.
func TestDynamicDeadlockInterproc(t *testing.T) {
	r := runAll(t, `
struct Inner { v: i32 }
struct S { mu: Mutex<Inner> }
impl S {
    fn callee(&self) -> i32 {
        let q = self.mu.lock().unwrap();
        q.v
    }
    fn caller(&self) {
        let g = self.mu.lock().unwrap();
        let v = self.callee();
        use_both(g.v, v);
    }
}
`, "S::caller")
	if !hasKind(r, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %+v", r.Errors)
	}
	// The error's trace must record the inlined call so a triager can see
	// the acquisition context.
	found := false
	for _, e := range r.Errors {
		if e.Kind == ErrDeadlock {
			for _, step := range e.Trace {
				if strings.Contains(step, "call ") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("deadlock trace has no call step: %+v", r.Errors)
	}
}

// Branch decisions along the erroring path are recorded as bbN->bbM trace
// steps.
func TestBranchTraceRecorded(t *testing.T) {
	r := run(t, `
fn f(c: bool) {
    let v = vec![1u8];
    let p = v.as_ptr();
    if c {
        drop(v);
    }
    unsafe { let x = *p; }
}
`, "f")
	found := false
	for _, e := range r.Errors {
		if e.Kind != ErrUseAfterFree {
			continue
		}
		for _, step := range e.Trace {
			if strings.Contains(step, "->") && strings.HasPrefix(step, "bb") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no branch step in any UAF trace: %+v", r.Errors)
	}
}

func TestLoopsTerminate(t *testing.T) {
	r := run(t, `
fn f() {
    let mut i = 0;
    loop {
        i += 1;
        if i > 3 { break; }
    }
    while i > 0 { i -= 1; }
    for j in 0..10 { work(j); }
}
`, "f")
	if r.Paths == 0 {
		t.Fatal("no paths explored")
	}
}

func TestPathBudget(t *testing.T) {
	// 2^12 branch combinations exceed the path budget: must truncate, not
	// hang.
	src := "fn f(c: bool) {\n"
	for i := 0; i < 12; i++ {
		src += "    if c { a(); } else { b(); }\n"
	}
	src += "}\n"
	r := run(t, src, "f")
	if !r.Truncated && r.Paths < 256 {
		t.Errorf("paths = %d truncated = %v", r.Paths, r.Truncated)
	}
}

func TestRunAllOrdered(t *testing.T) {
	fset := source.NewFileSet()
	f := fset.Add("t.rs", `
fn a() {}
fn b() {}
`)
	diags := source.NewDiagnostics(fset)
	crate := parser.ParseFile(f, diags)
	prog := resolve.Crates(fset, diags, crate)
	bodies := lower.Program(prog, diags)
	results := RunAll(bodies, Config{})
	if len(results) != 2 || results[0].Function != "a" || results[1].Function != "b" {
		t.Errorf("results order wrong: %+v", results)
	}
	_ = mir.ReturnLocal
}
